// Benchmark harness: one benchmark per table and figure of the
// paper's evaluation (see DESIGN.md §4 for the index). Each benchmark
// runs the experiment's core measurement under b.N and reports the
// relevant *simulated* quantity (sim_us, GB/s, updates/s) alongside
// the wall-clock cost of regenerating it.
//
// Run everything:   go test -bench=. -benchmem
// One figure:       go test -bench=Fig9 -benchmem
package msgroofline

import (
	"encoding/json"
	"os"
	"runtime"
	"testing"
	"time"

	"msgroofline/internal/bench"
	"msgroofline/internal/ccl"
	"msgroofline/internal/comm"
	"msgroofline/internal/experiments"
	"msgroofline/internal/hashtable"
	"msgroofline/internal/machine"
	"msgroofline/internal/pointcache"
	simruntime "msgroofline/internal/runtime"
	"msgroofline/internal/shmem"
	"msgroofline/internal/sim"
	"msgroofline/internal/sim/simbench"
	"msgroofline/internal/spmat"
	"msgroofline/internal/sptrsv"
	"msgroofline/internal/stencil"
)

func mc(b *testing.B, name string) *machine.Config {
	b.Helper()
	c, err := machine.Get(name)
	if err != nil {
		b.Fatal(err)
	}
	return c
}

// BenchmarkSuiteQuick regenerates the entire quick-scale experiment
// suite through the concurrent scheduler (the cmd/experiments path).
func BenchmarkSuiteQuick(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, _, _, err := experiments.RunSuite(experiments.Registry(), experiments.SuiteOptions{Scale: experiments.Quick, Jobs: sweepJobs}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTableI regenerates the platform table.
func BenchmarkTableI(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.TableI(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTableII regenerates the workload characterization from
// traced runs.
func BenchmarkTableII(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.TableII(&experiments.Env{Scale: experiments.Quick}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig1MessageRoofline measures the Frontier one-sided sweep
// and fits the roofline.
func BenchmarkFig1MessageRoofline(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Fig1(&experiments.Env{Scale: experiments.Quick}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig2Topology rebuilds and queries all five fabrics.
func BenchmarkFig2Topology(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Fig2(); err != nil {
			b.Fatal(err)
		}
	}
}

// sweepJobs is the scheduler width the benchmark suite's sweeps use:
// all cores, so the suite itself exercises (and benefits from) the
// parallel sweep scheduler.
var sweepJobs = runtime.GOMAXPROCS(0)

// Fig 3: two-sided vs one-sided MPI bandwidth per CPU machine. The
// reported GB/s metric is the 256-msg/sync 64 KiB point.
func benchFig3(b *testing.B, machineName string, oneSided bool) {
	cfg := mc(b, machineName)
	transport := bench.TwoSided
	if oneSided {
		transport = bench.OneSided
	}
	spec := bench.Spec{Transport: transport, Ns: []int{256}, Sizes: []int64{65536}, Jobs: sweepJobs}
	var gbs float64
	for i := 0; i < b.N; i++ {
		res, err := bench.Sweep(cfg, spec)
		if err != nil {
			b.Fatal(err)
		}
		p, _ := res.At(256, 65536)
		gbs = p.GBs
	}
	b.ReportMetric(gbs, "simGB/s")
}

func BenchmarkFig3PerlmutterCPUTwoSided(b *testing.B) { benchFig3(b, "perlmutter-cpu", false) }
func BenchmarkFig3PerlmutterCPUOneSided(b *testing.B) { benchFig3(b, "perlmutter-cpu", true) }
func BenchmarkFig3FrontierCPUTwoSided(b *testing.B)   { benchFig3(b, "frontier-cpu", false) }
func BenchmarkFig3FrontierCPUOneSided(b *testing.B)   { benchFig3(b, "frontier-cpu", true) }
func BenchmarkFig3SummitCPUTwoSided(b *testing.B)     { benchFig3(b, "summit-cpu", false) }
func BenchmarkFig3SummitCPUOneSided(b *testing.B)     { benchFig3(b, "summit-cpu", true) }

// Fig 4: GPU put-with-signal sweeps and CAS latency.
func benchFig4Put(b *testing.B, machineName string) {
	cfg := mc(b, machineName)
	spec := bench.Spec{Transport: bench.ShmemPutSignal, Ns: []int{256}, Sizes: []int64{65536}, Jobs: sweepJobs}
	var gbs float64
	for i := 0; i < b.N; i++ {
		res, err := bench.Sweep(cfg, spec)
		if err != nil {
			b.Fatal(err)
		}
		p, _ := res.At(256, 65536)
		gbs = p.GBs
	}
	b.ReportMetric(gbs, "simGB/s")
}

func BenchmarkFig4PerlmutterGPUPutSignal(b *testing.B) { benchFig4Put(b, "perlmutter-gpu") }
func BenchmarkFig4SummitGPUPutSignal(b *testing.B)     { benchFig4Put(b, "summit-gpu") }

func BenchmarkFig4GPUAtomicCAS(b *testing.B) {
	cfg := mc(b, "perlmutter-gpu")
	var us float64
	for i := 0; i < b.N; i++ {
		lat, err := bench.CASLatency(cfg, 4, 1, 64)
		if err != nil {
			b.Fatal(err)
		}
		us = lat.Microseconds()
	}
	b.ReportMetric(us, "simCAS_us")
}

// Fig 5: stencil per-iteration time per transport.
func benchFig5(b *testing.B, kind comm.Kind, machineName string, px, py int) {
	cfg := stencil.Config{Machine: mc(b, machineName), Transport: kind, Grid: 2048, Iters: 4, PX: px, PY: py}
	var us float64
	for i := 0; i < b.N; i++ {
		res, err := stencil.Run(cfg)
		if err != nil {
			b.Fatal(err)
		}
		us = res.PerIter.Microseconds()
	}
	b.ReportMetric(us, "simIter_us")
}

func BenchmarkFig5StencilTwoSided(b *testing.B) {
	benchFig5(b, comm.TwoSided, "perlmutter-cpu", 8, 8)
}
func BenchmarkFig5StencilOneSided(b *testing.B) {
	benchFig5(b, comm.OneSided, "perlmutter-cpu", 8, 8)
}
func BenchmarkFig5StencilGPU(b *testing.B) { benchFig5(b, comm.Shmem, "perlmutter-gpu", 2, 2) }

// Fig 6: workload bounds on the roofline.
func BenchmarkFig6WorkloadBounds(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Fig6(&experiments.Env{Scale: experiments.Quick}); err != nil {
			b.Fatal(err)
		}
	}
}

// Fig 7: latency vs msg/sync.
func BenchmarkFig7LatencyVsMsgSync(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Fig7(&experiments.Env{Scale: experiments.Quick}); err != nil {
			b.Fatal(err)
		}
	}
}

// Fig 8: SpTRSV solve per transport; reports simulated solve time.
func benchFig8(b *testing.B, kind comm.Kind, machineName string, ranks int) {
	m, err := spmat.Generate(spmat.Params{N: 2400, MeanSnode: 24, Fill: 1.0, Seed: 20230901})
	if err != nil {
		b.Fatal(err)
	}
	cfg := sptrsv.Config{Machine: mc(b, machineName), Transport: kind, Matrix: m, Ranks: ranks}
	var us float64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := sptrsv.Run(cfg)
		if err != nil {
			b.Fatal(err)
		}
		us = res.Elapsed.Microseconds()
	}
	b.ReportMetric(us, "simSolve_us")
}

func BenchmarkFig8SpTRSVTwoSided(b *testing.B) { benchFig8(b, comm.TwoSided, "perlmutter-cpu", 16) }
func BenchmarkFig8SpTRSVOneSided(b *testing.B) { benchFig8(b, comm.OneSided, "perlmutter-cpu", 16) }
func BenchmarkFig8SpTRSVGPU(b *testing.B)      { benchFig8(b, comm.Shmem, "perlmutter-gpu", 4) }
func BenchmarkFig8SpTRSVSummitGPU(b *testing.B) {
	benchFig8(b, comm.Shmem, "summit-gpu", 4)
}

// Fig 9: hashtable updates/s per transport.
func benchFig9(b *testing.B, kind comm.Kind, machineName string, ranks int) {
	cfg := hashtable.Config{Machine: mc(b, machineName), Transport: kind, Ranks: ranks, TotalInserts: 64 * ranks}
	var ups float64
	for i := 0; i < b.N; i++ {
		res, err := hashtable.Run(cfg)
		if err != nil {
			b.Fatal(err)
		}
		ups = res.UpdatesPerSec
	}
	b.ReportMetric(ups, "simUpdates/s")
}

func BenchmarkFig9HashtableTwoSided(b *testing.B) { benchFig9(b, comm.TwoSided, "perlmutter-cpu", 32) }
func BenchmarkFig9HashtableOneSided(b *testing.B) { benchFig9(b, comm.OneSided, "perlmutter-cpu", 32) }
func BenchmarkFig9HashtableGPU(b *testing.B)      { benchFig9(b, comm.Shmem, "perlmutter-gpu", 4) }
func BenchmarkFig9HashtableSummitGPU(b *testing.B) {
	benchFig9(b, comm.Shmem, "summit-gpu", 6)
}

// Fig 10: message splitting speedup; reports the 1 MiB 4-way speedup.
func BenchmarkFig10Split(b *testing.B) {
	cfg := mc(b, "perlmutter-gpu")
	var speedup float64
	for i := 0; i < b.N; i++ {
		pts, err := bench.SweepSplit(cfg, 4, []int64{1 << 20})
		if err != nil {
			b.Fatal(err)
		}
		speedup = pts[0].Speedup
	}
	b.ReportMetric(speedup, "simSpeedup_x")
}

// Ablation benches (DESIGN.md §6).

// BenchmarkAblationPollingCost quantifies the Listing-1 receiver scan
// cost: simulated one-sided solve time with charged vs free polling.
func BenchmarkAblationPollingCost(b *testing.B) {
	m, err := spmat.Generate(spmat.Params{N: 2400, MeanSnode: 24, Fill: 1.0, Seed: 20230901})
	if err != nil {
		b.Fatal(err)
	}
	pm := mc(b, "perlmutter-cpu")
	var overhead float64
	for i := 0; i < b.N; i++ {
		with, err := sptrsv.Run(sptrsv.Config{Machine: pm, Transport: comm.OneSided, Matrix: m, Ranks: 16})
		if err != nil {
			b.Fatal(err)
		}
		free, err := sptrsv.Run(sptrsv.Config{Machine: pm, Transport: comm.OneSided, Matrix: m, Ranks: 16, PollCheck: -1})
		if err != nil {
			b.Fatal(err)
		}
		overhead = (with.Elapsed.Seconds() - free.Elapsed.Seconds()) / free.Elapsed.Seconds() * 100
	}
	b.ReportMetric(overhead, "pollOverhead_%")
}

// BenchmarkAblationSingleChannel quantifies what the Fig-10 speedup
// costs to lose: splitting onto one channel instead of four.
func BenchmarkAblationSingleChannel(b *testing.B) {
	cfg := mc(b, "perlmutter-gpu")
	var ratio float64
	for i := 0; i < b.N; i++ {
		multi, err := bench.SweepSplit(cfg, 4, []int64{1 << 20})
		if err != nil {
			b.Fatal(err)
		}
		single, err := bench.SweepSplit(cfg, 1, []int64{1 << 20})
		if err != nil {
			b.Fatal(err)
		}
		ratio = single[0].Split.Seconds() / multi[0].Split.Seconds()
	}
	b.ReportMetric(ratio, "channelGain_x")
}

// BenchmarkAblationStrictProtocol compares the strict per-message
// 4-op one-sided protocol against the windowed one (why SpTRSV can't
// batch its flushes).
func BenchmarkAblationStrictProtocol(b *testing.B) {
	cfg := mc(b, "perlmutter-cpu")
	var ratio float64
	for i := 0; i < b.N; i++ {
		strict, err := bench.Sweep(cfg, bench.Spec{Transport: bench.OneSidedStrict, Ns: []int{16}, Sizes: []int64{400}, Jobs: sweepJobs})
		if err != nil {
			b.Fatal(err)
		}
		windowed, err := bench.Sweep(cfg, bench.Spec{Transport: bench.OneSided, Ns: []int{16}, Sizes: []int64{400}, Jobs: sweepJobs})
		if err != nil {
			b.Fatal(err)
		}
		sp, _ := strict.At(16, 400)
		wp, _ := windowed.At(16, 400)
		ratio = sp.Elapsed.Seconds() / wp.Elapsed.Seconds()
	}
	b.ReportMetric(ratio, "strictPenalty_x")
}

// Extension benches (EXPERIMENTS.md "Extensions beyond the paper").

// BenchmarkExtensionCCLAllReduce measures the NCCL-style ring
// allreduce of a 2 MiB vector on Perlmutter GPU, reporting algorithm
// bandwidth.
func BenchmarkExtensionCCLAllReduce(b *testing.B) {
	cfg := mc(b, "perlmutter-gpu")
	const elems = 1 << 18
	var algbw float64
	for i := 0; i < b.N; i++ {
		plan, err := ccl.NewPlan(4, elems)
		if err != nil {
			b.Fatal(err)
		}
		job, err := shmem.NewJob(cfg, 4, plan.HeapBytes())
		if err != nil {
			b.Fatal(err)
		}
		if err := plan.Bind(job, 0); err != nil {
			b.Fatal(err)
		}
		err = job.Launch(func(sc *shmem.Ctx) {
			c := plan.NewCtx(sc)
			data := make([]float64, elems)
			for j := range data {
				data[j] = float64(sc.MyPE() + j)
			}
			if e := c.AllReduce(data); e != nil {
				b.Error(e)
			}
		})
		if err != nil {
			b.Fatal(err)
		}
		moved := float64(8*elems) * 2 * 3 / 4
		algbw = moved / job.Elapsed().Seconds() / 1e9
	}
	b.ReportMetric(algbw, "simAlgGB/s")
}

// BenchmarkExtensionFrontierGPUSpTRSV runs the solver on the
// projected ROC_SHMEM platform the paper could not measure.
func BenchmarkExtensionFrontierGPUSpTRSV(b *testing.B) {
	benchFig8(b, comm.Shmem, "frontier-gpu", 4)
}

// BenchmarkAblationCutThrough quantifies DESIGN.md ablation #1: the
// delivered-time ratio of store-and-forward vs cut-through timing on
// Summit's 3-hop cross-island path for a 64 KiB message. The reported
// metric bounds the error our store-and-forward choice introduces on
// the deepest path in the catalog.
func BenchmarkAblationCutThrough(b *testing.B) {
	cfg := mc(b, "summit-gpu")
	var ratio float64
	for i := 0; i < b.N; i++ {
		inSF, err := cfg.Instantiate(6)
		if err != nil {
			b.Fatal(err)
		}
		sf, err := inSF.Net.Transfer(0, "sg:g0", "sg:g3", 65536, 0)
		if err != nil {
			b.Fatal(err)
		}
		inCT, err := cfg.Instantiate(6)
		if err != nil {
			b.Fatal(err)
		}
		ct, err := inCT.Net.TransferCutThrough(0, "sg:g0", "sg:g3", 65536, 0)
		if err != nil {
			b.Fatal(err)
		}
		ratio = sf.Seconds() / ct.Seconds()
	}
	b.ReportMetric(ratio, "sfOverCt_x")
}

// ---------------------------------------------------------------------
// Engine perf trajectory (BENCH_sim.json).
//
// The simulation engine is the hot path under every figure, so its
// per-event cost is tracked across PRs in BENCH_sim.json at the repo
// root. Run
//
//	BENCH_SIM_RECORD=<label> go test -run TestRecordSimPerfTrajectory .
//
// to append one record per canonical simbench workload; perf PRs
// record a "before" and an "after" label and diff them.

type simPerfRecord struct {
	Label        string  `json:"label"`
	Date         string  `json:"date"`
	Bench        string  `json:"bench"`
	NsPerEvent   float64 `json:"ns_per_event"`
	AllocsPerOp  int64   `json:"allocs_per_op"`
	EventsPerSec float64 `json:"events_per_sec"`
	Events       uint64  `json:"events"`
}

// suiteWallRecord is one "suite-wall/v1" measurement: the wall time of
// one full `cmd/experiments -scale quick` regeneration under one cache
// configuration, plus the point-cache hit rate and the dedup planner's
// census. Cache-off and warm-disk records of the same label pair up as
// the before/after of the point-cache work.
type suiteWallRecord struct {
	Record string `json:"record"` // always "suite-wall/v1"
	Label  string `json:"label"`
	Date   string `json:"date"`
	Scale  string `json:"scale"`
	Jobs   int    `json:"jobs"`
	// Cache names the configuration: "off", "cold-disk" or "warm-disk".
	Cache       string  `json:"cache"`
	WallMs      float64 `json:"wall_ms"`
	HitRate     float64 `json:"hit_rate"`
	PlanPoints  int     `json:"plan_points"`
	PlanUnique  int     `json:"plan_unique"`
	CrossFigure int     `json:"plan_cross_figure_duplicates"`
}

// shardedPerfRecord is one "sharded-perf/v1" measurement: throughput
// of the 10^5-rank PHOLD workload on the sharded engine at one shard
// count. On a multi-core runner events/sec across shard counts shows
// the speedup directly; on a single-core runner it cannot, so the
// busy/wall ratio is recorded alongside — it approaches 1 from below
// when the shards keep the core saturated, and the gap is barrier
// and scheduling overhead (see sim.ShardedEngine.BusyWall).
type shardedPerfRecord struct {
	Record       string  `json:"record"` // always "sharded-perf/v1"
	Label        string  `json:"label"`
	Date         string  `json:"date"`
	Ranks        int     `json:"ranks"`
	Shards       int     `json:"shards"`
	Cores        int     `json:"cores"` // runtime.NumCPU on the runner
	Events       int64   `json:"events"`
	NsPerEvent   float64 `json:"ns_per_event"`
	EventsPerSec float64 `json:"events_per_sec"`
	BusyWall     float64 `json:"busy_wall"`
}

// coupledPerfRecord is one "sharded-coupled/v1" measurement:
// throughput of a real coupled-stack workload (the 64-rank one-sided
// stencil on frontier-cpu, whose fabric decomposes into 4 node-group
// engines) at one -shards worker count. Events/sec shows the speedup
// on multi-core runners; busy/wall is the honest efficiency figure
// everywhere (see sim.CoupledEngine.BusyWall).
type coupledPerfRecord struct {
	Record       string  `json:"record"` // always "sharded-coupled/v1"
	Label        string  `json:"label"`
	Date         string  `json:"date"`
	Workload     string  `json:"workload"`
	Ranks        int     `json:"ranks"`
	Groups       int     `json:"groups"`
	Shards       int     `json:"shards"`
	Cores        int     `json:"cores"`
	Windows      uint64  `json:"windows"`
	Events       int64   `json:"events"`
	NsPerEvent   float64 `json:"ns_per_event"`
	EventsPerSec float64 `json:"events_per_sec"`
	BusyWall     float64 `json:"busy_wall"`
}

// topoScaleRecord is one "topo-scale/v1" measurement: coupled-engine
// throughput of a stencil on a generated extreme-scale fabric (the
// 10240-rank dragonfly), tracking how the engine scales to fabrics
// three orders of magnitude past the paper's single nodes.
type topoScaleRecord struct {
	Record       string  `json:"record"` // always "topo-scale/v1"
	Label        string  `json:"label"`
	Date         string  `json:"date"`
	Topology     string  `json:"topology"`
	Ranks        int     `json:"ranks"`
	Groups       int     `json:"groups"`
	Shards       int     `json:"shards"`
	Cores        int     `json:"cores"`
	Windows      uint64  `json:"windows"`
	Events       int64   `json:"events"`
	NsPerEvent   float64 `json:"ns_per_event"`
	EventsPerSec float64 `json:"events_per_sec"`
	BusyWall     float64 `json:"busy_wall"`
}

// windowEngineRecord is one "window-engine/v1" measurement: coupled
// window-loop throughput at one worker count, with the barrier's share
// of the attributed loop wall (sim.CoupledEngine.PhaseWall). Two
// workloads are recorded per label: the prepared-closure 100K-rank
// PHOLD token storm (simbench.CoupledWindows, pure engine cost) and
// the 10240-rank dragonfly one-sided stencil (full stack). Events/sec
// across worker counts shows the speedup on multi-core runners;
// busy/wall is the honest efficiency figure everywhere.
type windowEngineRecord struct {
	Record       string  `json:"record"` // always "window-engine/v1"
	Label        string  `json:"label"`
	Date         string  `json:"date"`
	Workload     string  `json:"workload"`
	Ranks        int     `json:"ranks"`
	Groups       int     `json:"groups"`
	Workers      int     `json:"workers"`
	Cores        int     `json:"cores"`
	Windows      uint64  `json:"windows"`
	Dispatches   uint64  `json:"dispatches"`
	Events       int64   `json:"events"`
	NsPerEvent   float64 `json:"ns_per_event"`
	EventsPerSec float64 `json:"events_per_sec"`
	BusyWall     float64 `json:"busy_wall"`
	BarrierShare float64 `json:"barrier_share"`
}

type simPerfFile struct {
	Schema       string               `json:"schema"`
	Records      []simPerfRecord      `json:"records"`
	SuiteWall    []suiteWallRecord    `json:"suite_wall,omitempty"`
	Sharded      []shardedPerfRecord  `json:"sharded,omitempty"`
	Coupled      []coupledPerfRecord  `json:"coupled,omitempty"`
	TopoScale    []topoScaleRecord    `json:"topo_scale,omitempty"`
	WindowEngine []windowEngineRecord `json:"window_engine,omitempty"`
}

const simPerfPath = "BENCH_sim.json"

// TestRecordSuiteWall appends suite-wall/v1 records to BENCH_sim.json:
//
//	BENCH_SUITE_RECORD=<label> go test -run TestRecordSuiteWall .
//
// It regenerates the quick suite three times in-process — cache off,
// cold disk cache, warm disk cache — and records each wall time with
// the hit rate and the planner's duplicate census. The cache-off and
// warm-disk records are the before/after of the point-cache work.
func TestRecordSuiteWall(t *testing.T) {
	label := os.Getenv("BENCH_SUITE_RECORD")
	if label == "" {
		t.Skip("set BENCH_SUITE_RECORD=<label> to append suite wall times to BENCH_sim.json")
	}
	dir := t.TempDir()
	date := time.Now().UTC().Format("2006-01-02")
	var recs []suiteWallRecord
	run := func(name string, cache *pointcache.Cache) {
		start := time.Now()
		_, _, ps, err := experiments.RunSuite(experiments.Registry(), experiments.SuiteOptions{Scale: experiments.Quick, Jobs: sweepJobs, Cache: cache})
		wall := time.Since(start)
		if err != nil {
			t.Fatal(err)
		}
		r := suiteWallRecord{
			Record: "suite-wall/v1", Label: label, Date: date,
			Scale: "quick", Jobs: sweepJobs, Cache: name,
			WallMs:     float64(wall.Microseconds()) / 1e3,
			HitRate:    cache.Stats().HitRate(),
			PlanPoints: ps.Points, PlanUnique: ps.Unique, CrossFigure: ps.CrossFigure,
		}
		recs = append(recs, r)
		t.Logf("%s: %.0f ms wall, hit rate %.2f, %d/%d unique points (%d cross-figure dup)",
			name, r.WallMs, r.HitRate, ps.Unique, ps.Points, ps.CrossFigure)
	}
	run("off", nil)
	cold, err := pointcache.New(pointcache.Disk, dir)
	if err != nil {
		t.Fatal(err)
	}
	run("cold-disk", cold)
	warm, err := pointcache.New(pointcache.Disk, dir)
	if err != nil {
		t.Fatal(err)
	}
	run("warm-disk", warm)

	var f simPerfFile
	if data, err := os.ReadFile(simPerfPath); err == nil && len(data) > 0 {
		if err := json.Unmarshal(data, &f); err != nil {
			t.Fatalf("parse %s: %v", simPerfPath, err)
		}
	}
	f.Schema = "sim-engine-perf/v1"
	f.SuiteWall = append(f.SuiteWall, recs...)
	out, err := json.MarshalIndent(&f, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(simPerfPath, append(out, '\n'), 0o644); err != nil {
		t.Fatal(err)
	}
	t.Logf("appended %d suite-wall records to %s", len(recs), simPerfPath)
}

// TestRecordShardedPerf appends sharded-perf/v1 records to
// BENCH_sim.json:
//
//	BENCH_SHARDED_RECORD=<label> go test -run TestRecordShardedPerf .
//
// It runs the 10^5-rank PHOLD workload (simbench.ShardedPhold) at
// shards 1, 2, and 4 and records events/sec together with the
// busy/wall ratio, which is the honest efficiency figure on runners
// without enough cores to show a wall-clock speedup.
func TestRecordShardedPerf(t *testing.T) {
	label := os.Getenv("BENCH_SHARDED_RECORD")
	if label == "" {
		t.Skip("set BENCH_SHARDED_RECORD=<label> to append sharded engine throughput to BENCH_sim.json")
	}
	const (
		ranks  = 100000
		events = 2000000
		seed   = 1
	)
	date := time.Now().UTC().Format("2006-01-02")
	var recs []shardedPerfRecord
	for _, shards := range []int{1, 2, 4} {
		eng, err := simbench.NewShardedPhold(ranks, shards, events, seed)
		if err != nil {
			t.Fatal(err)
		}
		start := time.Now()
		if err := eng.Run(); err != nil {
			t.Fatal(err)
		}
		wall := time.Since(start)
		executed := eng.Executed()
		nsPerEvent := float64(wall.Nanoseconds()) / float64(executed)
		r := shardedPerfRecord{
			Record: "sharded-perf/v1", Label: label, Date: date,
			Ranks: ranks, Shards: shards, Cores: runtime.NumCPU(),
			Events:       executed,
			NsPerEvent:   nsPerEvent,
			EventsPerSec: 1e9 / nsPerEvent,
			BusyWall:     eng.BusyWall(wall),
		}
		recs = append(recs, r)
		t.Logf("shards=%d: %d events, %.1f ns/event, %.2fM events/sec, busy/wall %.2f",
			shards, executed, nsPerEvent, r.EventsPerSec/1e6, r.BusyWall)
	}
	var f simPerfFile
	if data, err := os.ReadFile(simPerfPath); err == nil && len(data) > 0 {
		if err := json.Unmarshal(data, &f); err != nil {
			t.Fatalf("parse %s: %v", simPerfPath, err)
		}
	}
	f.Schema = "sim-engine-perf/v1"
	f.Sharded = append(f.Sharded, recs...)
	out, err := json.MarshalIndent(&f, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(simPerfPath, append(out, '\n'), 0o644); err != nil {
		t.Fatal(err)
	}
	t.Logf("appended %d sharded-perf records to %s", len(recs), simPerfPath)
}

func TestRecordSimPerfTrajectory(t *testing.T) {
	label := os.Getenv("BENCH_SIM_RECORD")
	if label == "" {
		t.Skip("set BENCH_SIM_RECORD=<label> to append engine perf numbers to BENCH_sim.json")
	}
	workloads := []struct {
		name string
		run  func(n int) *sim.Engine
	}{
		{"EngineSleepSignal", simbench.PingPong},
		{"EngineSleepYield", simbench.SleepYield},
		{"EngineTimerChurn", func(n int) *sim.Engine { return simbench.TimerChurn(64, n/64+1) }},
		{"EngineBroadcast", func(n int) *sim.Engine { return simbench.Broadcast(32, n/32+1) }},
	}
	var recs []simPerfRecord
	for _, w := range workloads {
		var eng *sim.Engine
		run := w.run
		res := testing.Benchmark(func(b *testing.B) {
			b.ReportAllocs()
			eng = run(b.N)
		})
		events := eng.Executed()
		wallNs := float64(res.NsPerOp()) * float64(res.N)
		nsPerEvent := wallNs / float64(events)
		recs = append(recs, simPerfRecord{
			Label:        label,
			Date:         time.Now().UTC().Format("2006-01-02"),
			Bench:        w.name,
			NsPerEvent:   nsPerEvent,
			AllocsPerOp:  res.AllocsPerOp(),
			EventsPerSec: 1e9 / nsPerEvent,
			Events:       events,
		})
		t.Logf("%s: %.1f ns/event, %d allocs/op, %d events", w.name, nsPerEvent, res.AllocsPerOp(), events)
	}
	var f simPerfFile
	if data, err := os.ReadFile(simPerfPath); err == nil && len(data) > 0 {
		if err := json.Unmarshal(data, &f); err != nil {
			t.Fatalf("parse %s: %v", simPerfPath, err)
		}
	}
	f.Schema = "sim-engine-perf/v1"
	f.Records = append(f.Records, recs...)
	out, err := json.MarshalIndent(&f, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(simPerfPath, append(out, '\n'), 0o644); err != nil {
		t.Fatal(err)
	}
	t.Logf("appended %d records to %s", len(recs), simPerfPath)
}

// TestRecordTopoScale appends a topo-scale/v1 record to BENCH_sim.json:
//
//	BENCH_TOPO_RECORD=<label> go test -run TestRecordTopoScale .
//
// It runs a one-sided stencil across all 10240 ranks of the generated
// dragonfly-10k fabric (128x80 decomposition, 1024 node groups) on the
// coupled engine at -shards 4 and records events/sec and busy/wall —
// the scaling datapoint for fabrics three orders of magnitude beyond
// the paper's single nodes.
func TestRecordTopoScale(t *testing.T) {
	label := os.Getenv("BENCH_TOPO_RECORD")
	if label == "" {
		t.Skip("set BENCH_TOPO_RECORD=<label> to append topology-scale throughput to BENCH_sim.json")
	}
	cfg, err := machine.Get("dragonfly-10k")
	if err != nil {
		t.Fatal(err)
	}
	const shards = 4
	before := simruntime.Usage()
	start := time.Now()
	if _, err := stencil.Run(stencil.Config{
		Machine: cfg, Transport: comm.OneSided,
		Grid: 1280, Iters: 2, PX: 128, PY: 80, Shards: shards,
	}); err != nil {
		t.Fatal(err)
	}
	wall := time.Since(start)
	after := simruntime.Usage()
	var events int64
	for _, n := range after.Events {
		events += n
	}
	for _, n := range before.Events {
		events -= n
	}
	busy := after.Busy - before.Busy
	nsPerEvent := float64(wall.Nanoseconds()) / float64(events)
	rec := topoScaleRecord{
		Record: "topo-scale/v1", Label: label, Date: time.Now().UTC().Format("2006-01-02"),
		Topology: "dragonfly-10k", Ranks: 10240,
		Groups: len(after.Events), Shards: shards,
		Cores:        runtime.NumCPU(),
		Windows:      after.Windows - before.Windows,
		Events:       events,
		NsPerEvent:   nsPerEvent,
		EventsPerSec: 1e9 / nsPerEvent,
		BusyWall:     float64(busy) / float64(wall),
	}
	t.Logf("ranks=10240 shards=%d: %d events over %d windows, %.1f ns/event, %.2fM events/sec, busy/wall %.2f",
		shards, rec.Events, rec.Windows, nsPerEvent, rec.EventsPerSec/1e6, rec.BusyWall)
	var f simPerfFile
	if data, err := os.ReadFile(simPerfPath); err == nil && len(data) > 0 {
		if err := json.Unmarshal(data, &f); err != nil {
			t.Fatalf("parse %s: %v", simPerfPath, err)
		}
	}
	f.Schema = "sim-engine-perf/v1"
	f.TopoScale = append(f.TopoScale, rec)
	out, err := json.MarshalIndent(&f, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(simPerfPath, append(out, '\n'), 0o644); err != nil {
		t.Fatal(err)
	}
	t.Logf("appended topo-scale record to %s", simPerfPath)
}

// TestRecordCoupledPerf appends sharded-coupled/v1 records to
// BENCH_sim.json:
//
//	BENCH_COUPLED_RECORD=<label> go test -run TestRecordCoupledPerf .
//
// It runs the 64-rank one-sided stencil on frontier-cpu — whose four
// NUMA quadrants give the coupled engine four node-group sub-engines
// — at -shards 1, 2, and 4 and records events/sec together with the
// busy/wall ratio. Simulated output is identical at every shard
// count; only the wall-clock numbers move.
func TestRecordCoupledPerf(t *testing.T) {
	label := os.Getenv("BENCH_COUPLED_RECORD")
	if label == "" {
		t.Skip("set BENCH_COUPLED_RECORD=<label> to append coupled-stack throughput to BENCH_sim.json")
	}
	cfg, err := machine.Get("frontier-cpu")
	if err != nil {
		t.Fatal(err)
	}
	date := time.Now().UTC().Format("2006-01-02")
	var recs []coupledPerfRecord
	for _, shards := range []int{1, 2, 4} {
		before := simruntime.Usage()
		start := time.Now()
		if _, err := stencil.Run(stencil.Config{
			Machine: cfg, Transport: comm.OneSided,
			Grid: 512, Iters: 96, PX: 8, PY: 8, Shards: shards,
		}); err != nil {
			t.Fatal(err)
		}
		wall := time.Since(start)
		after := simruntime.Usage()
		var events int64
		for _, n := range after.Events {
			events += n
		}
		for _, n := range before.Events {
			events -= n
		}
		busy := after.Busy - before.Busy
		nsPerEvent := float64(wall.Nanoseconds()) / float64(events)
		r := coupledPerfRecord{
			Record: "sharded-coupled/v1", Label: label, Date: date,
			Workload: "stencil/one-sided/frontier-cpu",
			Ranks:    64, Groups: len(after.Events), Shards: shards,
			Cores:        runtime.NumCPU(),
			Windows:      after.Windows - before.Windows,
			Events:       events,
			NsPerEvent:   nsPerEvent,
			EventsPerSec: 1e9 / nsPerEvent,
			BusyWall:     float64(busy) / float64(wall),
		}
		recs = append(recs, r)
		t.Logf("shards=%d: %d events over %d windows, %.1f ns/event, %.2fM events/sec, busy/wall %.2f",
			shards, r.Events, r.Windows, nsPerEvent, r.EventsPerSec/1e6, r.BusyWall)
	}
	var f simPerfFile
	if data, err := os.ReadFile(simPerfPath); err == nil && len(data) > 0 {
		if err := json.Unmarshal(data, &f); err != nil {
			t.Fatalf("parse %s: %v", simPerfPath, err)
		}
	}
	f.Schema = "sim-engine-perf/v1"
	f.Coupled = append(f.Coupled, recs...)
	out, err := json.MarshalIndent(&f, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(simPerfPath, append(out, '\n'), 0o644); err != nil {
		t.Fatal(err)
	}
	t.Logf("appended %d sharded-coupled records to %s", len(recs), simPerfPath)
}

// TestRecordWindowEngine appends window-engine/v1 records to
// BENCH_sim.json:
//
//	BENCH_WINDOW_RECORD=<label> go test -run TestRecordWindowEngine -timeout 60m .
//
// It runs the two window-loop reference workloads at 1, 2, and 4
// workers each: the 100K-rank coupled PHOLD token storm
// (simbench.CoupledWindows — pure engine cost, no transport stack) and
// the 10240-rank dragonfly one-sided stencil (the full stack over
// 1024 node groups). Besides events/sec and busy/wall it records the
// barrier's share of the attributed loop wall (PhaseWall), the number
// the merge-based barrier and active-group dispatch are meant to keep
// flat as worker count grows. Simulated output is identical at every
// worker count; only the wall-clock numbers move.
func TestRecordWindowEngine(t *testing.T) {
	label := os.Getenv("BENCH_WINDOW_RECORD")
	if label == "" {
		t.Skip("set BENCH_WINDOW_RECORD=<label> to append window-engine throughput to BENCH_sim.json")
	}
	date := time.Now().UTC().Format("2006-01-02")
	var recs []windowEngineRecord

	// Leg 1: 100K-rank coupled PHOLD (one rank per node group).
	const (
		pholdRanks  = 100000
		pholdEvents = 2000000
	)
	for _, workers := range []int{1, 2, 4} {
		ce, err := simbench.NewCoupledWindows(pholdRanks, workers, pholdEvents, 1)
		if err != nil {
			t.Fatal(err)
		}
		start := time.Now()
		if err := ce.Run(); err != nil {
			t.Fatal(err)
		}
		wall := time.Since(start)
		exec, barrier, scan := ce.PhaseWall()
		phase := exec + barrier + scan
		executed := int64(ce.Executed())
		nsPerEvent := float64(wall.Nanoseconds()) / float64(executed)
		r := windowEngineRecord{
			Record: "window-engine/v1", Label: label, Date: date,
			Workload: "phold/coupled/100k",
			Ranks:    pholdRanks, Groups: ce.Groups(), Workers: workers,
			Cores:        runtime.NumCPU(),
			Windows:      ce.Windows(),
			Dispatches:   ce.Dispatches(),
			Events:       executed,
			NsPerEvent:   nsPerEvent,
			EventsPerSec: 1e9 / nsPerEvent,
			BusyWall:     ce.BusyWall(wall),
			BarrierShare: float64(barrier) / float64(phase),
		}
		recs = append(recs, r)
		t.Logf("phold workers=%d: %d events over %d windows (%d dispatches), %.1f ns/event, %.2fM events/sec, busy/wall %.2f, barrier share %.3f",
			workers, r.Events, r.Windows, r.Dispatches, nsPerEvent, r.EventsPerSec/1e6, r.BusyWall, r.BarrierShare)
	}

	// Leg 2: 10240-rank dragonfly stencil (full transport stack).
	cfg, err := machine.Get("dragonfly-10k")
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{1, 2, 4} {
		before := simruntime.Usage()
		start := time.Now()
		if _, err := stencil.Run(stencil.Config{
			Machine: cfg, Transport: comm.OneSided,
			Grid: 1280, Iters: 2, PX: 128, PY: 80, Shards: workers,
		}); err != nil {
			t.Fatal(err)
		}
		wall := time.Since(start)
		after := simruntime.Usage()
		var events int64
		for _, n := range after.Events {
			events += n
		}
		for _, n := range before.Events {
			events -= n
		}
		busy := after.Busy - before.Busy
		barrier := after.BarrierWall - before.BarrierWall
		phase := (after.ExecWall - before.ExecWall) + barrier +
			(after.ScanWall - before.ScanWall)
		nsPerEvent := float64(wall.Nanoseconds()) / float64(events)
		r := windowEngineRecord{
			Record: "window-engine/v1", Label: label, Date: date,
			Workload: "stencil/one-sided/dragonfly-10k",
			Ranks:    10240, Groups: len(after.Events), Workers: workers,
			Cores:        runtime.NumCPU(),
			Windows:      after.Windows - before.Windows,
			Events:       events,
			NsPerEvent:   nsPerEvent,
			EventsPerSec: 1e9 / nsPerEvent,
			BusyWall:     float64(busy) / float64(wall),
			BarrierShare: float64(barrier) / float64(phase),
		}
		recs = append(recs, r)
		t.Logf("stencil workers=%d: %d events over %d windows, %.1f ns/event, %.2fM events/sec, busy/wall %.2f, barrier share %.3f",
			workers, r.Events, r.Windows, nsPerEvent, r.EventsPerSec/1e6, r.BusyWall, r.BarrierShare)
	}

	var f simPerfFile
	if data, err := os.ReadFile(simPerfPath); err == nil && len(data) > 0 {
		if err := json.Unmarshal(data, &f); err != nil {
			t.Fatalf("parse %s: %v", simPerfPath, err)
		}
	}
	f.Schema = "sim-engine-perf/v1"
	f.WindowEngine = append(f.WindowEngine, recs...)
	out, err := json.MarshalIndent(&f, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(simPerfPath, append(out, '\n'), 0o644); err != nil {
		t.Fatal(err)
	}
	t.Logf("appended %d window-engine records to %s", len(recs), simPerfPath)
}
