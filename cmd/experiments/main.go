// Command experiments regenerates every table and figure of the
// paper's evaluation from the simulated stack.
//
// Usage:
//
//	experiments [-scale quick|full] [-only fig3,fig9] [-jobs N] [-csv DIR] [-list]
//	            [-shards N] [-cache off|mem|disk] [-cache-dir DIR]
//	            [-cpuprofile cpu.pprof] [-memprofile mem.pprof]
//
// Experiments run concurrently on up to -jobs workers (default: the
// number of CPUs); every experiment is an independent, deterministic
// simulation and results are rendered in registry order, so stdout is
// byte-identical at any -jobs value. Wall-time reporting goes to
// stderr. With -csv DIR each experiment's series are written to
// DIR/<id>.csv.
//
// -shards sets the window worker parallelism of every simulated
// world. Worlds decompose into per-node-group sequential engines
// coupled by a conservative-lookahead window protocol; the
// decomposition and the event order are topology-determined, so
// stdout is byte-identical at any -shards setting (the CI
// shard-determinism job compares -shards 1 and -shards 4 against the
// committed golden byte for byte, and greps the stderr shard
// utilization line to prove the grouped path ran).
//
// -cache memoizes every simulated sweep point, CAS latency, and split
// run by content address (internal/pointcache): "mem" (the default)
// dedups within one invocation, "disk" additionally persists entries
// under -cache-dir so repeated runs simulate only the diff, "off"
// disables memoization. A dedup planner first simulates the union of
// unique points declared across all selected figures exactly once.
// The cache decides only which simulations run — stdout is
// byte-identical at every cache mode — and its hit-rate summary goes
// to stderr.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"time"

	"msgroofline/internal/cliflags"
	"msgroofline/internal/experiments"
	"msgroofline/internal/plot"
)

func main() {
	scaleFlag := flag.String("scale", "quick", "experiment scale: quick or full")
	only := flag.String("only", "", "comma-separated experiment ids (default: all)")
	csvDir := flag.String("csv", "", "directory to write per-experiment CSV series")
	list := flag.Bool("list", false, "list experiment ids and exit")
	common := cliflags.Register(flag.CommandLine, "experiments", "mem")
	flag.Parse()

	stop, err := common.StartProfiles()
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	defer stop()

	if *list {
		for _, e := range experiments.Registry() {
			fmt.Printf("%-8s %s\n", e.ID, e.Title)
		}
		return
	}
	var scale experiments.Scale
	switch *scaleFlag {
	case "quick":
		scale = experiments.Quick
	case "full":
		scale = experiments.Full
	default:
		fmt.Fprintf(os.Stderr, "experiments: unknown scale %q (want quick or full)\n", *scaleFlag)
		os.Exit(2)
	}

	selected := experiments.Registry()
	if *only != "" {
		selected = selected[:0]
		for _, id := range strings.Split(*only, ",") {
			e, err := experiments.Get(strings.TrimSpace(id))
			if err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(2)
			}
			selected = append(selected, e)
		}
	}
	if *csvDir != "" {
		if err := os.MkdirAll(*csvDir, 0o755); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
	}
	cache, err := common.OpenCache()
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	outs, stats, planStats, err := experiments.RunSuite(selected, experiments.SuiteOptions{
		Scale: scale, Jobs: common.Jobs, Shards: common.Shards, Cache: cache,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	for i, out := range outs {
		fmt.Println(out.Render())
		fmt.Fprintf(os.Stderr, "(%s regenerated in %v wall time)\n",
			out.ID, stats.JobWall[i].Round(time.Millisecond))
		if *csvDir != "" && len(out.Series) > 0 {
			path := filepath.Join(*csvDir, out.ID+".csv")
			f, err := os.Create(path)
			if err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(1)
			}
			if err := plot.WriteCSV(f, out.Series); err != nil {
				f.Close()
				fmt.Fprintln(os.Stderr, err)
				os.Exit(1)
			}
			f.Close()
			fmt.Printf("wrote %s\n\n", path)
		}
	}
	common.ReportSched("suite", stats)
	fmt.Fprintf(os.Stderr, "plan: %s\n", planStats)
	common.ReportCache(cache)
	common.ReportShards("shards")
}
