// Command experiments regenerates every table and figure of the
// paper's evaluation from the simulated stack.
//
// Usage:
//
//	experiments [-scale quick|full] [-only fig3,fig9] [-csv DIR] [-list]
//
// With -csv DIR each experiment's series are written to DIR/<id>.csv.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"time"

	"msgroofline/internal/experiments"
	"msgroofline/internal/plot"
)

func main() {
	scaleFlag := flag.String("scale", "quick", "experiment scale: quick or full")
	only := flag.String("only", "", "comma-separated experiment ids (default: all)")
	csvDir := flag.String("csv", "", "directory to write per-experiment CSV series")
	list := flag.Bool("list", false, "list experiment ids and exit")
	flag.Parse()

	if *list {
		for _, e := range experiments.Registry() {
			fmt.Printf("%-8s %s\n", e.ID, e.Title)
		}
		return
	}
	var scale experiments.Scale
	switch *scaleFlag {
	case "quick":
		scale = experiments.Quick
	case "full":
		scale = experiments.Full
	default:
		fmt.Fprintf(os.Stderr, "experiments: unknown scale %q (want quick or full)\n", *scaleFlag)
		os.Exit(2)
	}

	selected := experiments.Registry()
	if *only != "" {
		selected = selected[:0]
		for _, id := range strings.Split(*only, ",") {
			e, err := experiments.Get(strings.TrimSpace(id))
			if err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(2)
			}
			selected = append(selected, e)
		}
	}
	if *csvDir != "" {
		if err := os.MkdirAll(*csvDir, 0o755); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
	}
	for _, e := range selected {
		start := time.Now()
		out, err := e.Run(scale)
		if err != nil {
			fmt.Fprintf(os.Stderr, "experiments: %s failed: %v\n", e.ID, err)
			os.Exit(1)
		}
		fmt.Println(out.Render())
		fmt.Printf("(%s regenerated in %v wall time)\n\n", e.ID, time.Since(start).Round(time.Millisecond))
		if *csvDir != "" && len(out.Series) > 0 {
			path := filepath.Join(*csvDir, out.ID+".csv")
			f, err := os.Create(path)
			if err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(1)
			}
			if err := plot.WriteCSV(f, out.Series); err != nil {
				f.Close()
				fmt.Fprintln(os.Stderr, err)
				os.Exit(1)
			}
			f.Close()
			fmt.Printf("wrote %s\n\n", path)
		}
	}
}
