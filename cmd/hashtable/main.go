// Command hashtable runs the distributed hashtable workload with the
// CLI shape of the paper's benchmark ("./hashtable <inserts per
// process>", Appendix G), plus machine/variant flags.
//
//	hashtable -machine perlmutter-gpu -variant gpu -ranks 4 250000
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"

	"msgroofline/internal/cliflags"
	"msgroofline/internal/comm"
	"msgroofline/internal/hashtable"
	"msgroofline/internal/machine"
)

func main() {
	mName := flag.String("machine", "perlmutter-cpu", "machine: "+machine.NameList())
	variant := flag.String("variant", "one-sided", "transport: "+comm.KindList()+" (alias: gpu = shmem)")
	ranks := flag.Int("ranks", 4, "MPI ranks / GPU PEs")
	blocks := flag.Int("blocks", 0, "GPU thread-block concurrency (gpu variant)")
	common := cliflags.Register(flag.CommandLine, "hashtable", "off")
	flag.Parse()

	stop, err := common.StartProfiles()
	if err != nil {
		fatal(err)
	}
	defer stop()
	if _, err := common.OpenCache(); err != nil {
		fatal(err)
	}

	perProcess := 2500
	if args := flag.Args(); len(args) == 1 {
		v, err := strconv.Atoi(args[0])
		if err != nil {
			fatal(fmt.Errorf("bad insert count %q", args[0]))
		}
		perProcess = v
	} else if len(args) > 1 {
		fmt.Fprintln(os.Stderr, "usage: hashtable [flags] [inserts-per-process]")
		os.Exit(2)
	}
	mcfg, err := machine.Get(*mName)
	if err != nil {
		fatal(err)
	}
	kind, err := comm.ParseKind(*variant)
	if err != nil {
		fatal(err)
	}
	cfg := hashtable.Config{
		Machine:      mcfg,
		Transport:    kind,
		Ranks:        *ranks,
		TotalInserts: perProcess * *ranks,
		Blocks:       *blocks,
		Shards:       common.Shards,
	}
	res, err := hashtable.Run(cfg)
	if err != nil {
		fatal(err)
	}
	defer common.ReportShards("shards")
	fmt.Printf("machine=%s variant=%s ranks=%d inserts=%d (per process %d)\n",
		mcfg.Name, *variant, res.Ranks, cfg.TotalInserts, perProcess)
	fmt.Printf("time          %v\n", res.Elapsed)
	fmt.Printf("per insert    %v\n", res.PerInsert)
	fmt.Printf("updates/s     %.0f (%.6f GUPS)\n", res.UpdatesPerSec, res.GUPS)
	fmt.Printf("collisions    %d\n", res.Collisions)
	if res.Atomics > 0 {
		fmt.Printf("remote atomics %d\n", res.Atomics)
	}
	if res.Comm.Messages > 0 {
		fmt.Printf("communication %s\n", res.Comm)
	}
	fmt.Println("verification OK (table contents checked against generated keys)")
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "hashtable:", err)
	os.Exit(1)
}
