// Command msgroof runs the Message Roofline microbenchmarks on a
// simulated machine and renders the roofline chart with measured dots
// and fitted ceilings (the Figs 1/3/4 machinery, interactively).
//
// Usage:
//
//	msgroof -machine perlmutter-cpu -transport two-sided
//	msgroof -machine perlmutter-gpu -transport gpu-shmem -csv out.csv
//	msgroof -machine perlmutter-gpu -split          (Fig 10 experiment)
//	msgroof -cpuprofile cpu.pprof -memprofile mem.pprof ...
//	                                    (pprof profiles for engine perf work)
//
// Sweep points are independent simulations and run concurrently on up
// to -jobs workers (default: the number of CPUs); output is
// byte-identical at any -jobs value. -shards records the engine shard
// count on every simulated world and likewise never changes output
// (see internal/cliflags).
//
// -cache memoizes every simulated point by content address
// (internal/pointcache): "mem" dedups within one invocation, "disk"
// persists entries under -cache-dir across runs, "off" (the default
// here) disables memoization. The cache decides only which simulations
// run — output is byte-identical at every mode — and its hit-rate
// summary goes to stderr.
package main

import (
	"flag"
	"fmt"
	"os"

	"msgroofline/internal/bench"
	"msgroofline/internal/cliflags"
	"msgroofline/internal/core"
	"msgroofline/internal/loggp"
	"msgroofline/internal/machine"
	"msgroofline/internal/plot"
	"msgroofline/internal/pointcache"
	"msgroofline/internal/table"
)

func main() {
	mName := flag.String("machine", "perlmutter-cpu", "machine: "+machine.NameList())
	tName := flag.String("transport", "two-sided", "transport: "+bench.TransportList())
	split := flag.Bool("split", false, "run the Fig-10 message-splitting experiment instead of a sweep")
	csvPath := flag.String("csv", "", "write measured series to this CSV file")
	common := cliflags.Register(flag.CommandLine, "msgroof", "off")
	flag.Parse()

	stop, err := common.StartProfiles()
	if err != nil {
		fatal(err)
	}
	defer stop()

	cfg, err := machine.Get(*mName)
	if err != nil {
		fatal(err)
	}
	cache, err := common.OpenCache()
	if err != nil {
		fatal(err)
	}
	if *split {
		runSplit(cfg, cache, *csvPath)
		common.ReportCache(cache)
		common.ReportShards("shards")
		return
	}
	ns := bench.DefaultNs()
	sizes := bench.DefaultSizes()
	transport, err := bench.ParseTransport(*tName)
	if err != nil {
		fatal(err)
	}
	res, err := bench.Sweep(cfg, bench.Spec{Transport: transport, Ns: ns, Sizes: sizes,
		Jobs: common.Jobs, Cache: cache, Shards: common.Shards})
	if err != nil {
		fatal(err)
	}
	// The strict protocol fits against the one-sided parameter set.
	tr := machine.TwoSided
	switch transport {
	case bench.OneSided, bench.OneSidedStrict:
		tr = machine.OneSided
	case bench.ShmemPutSignal:
		tr = machine.GPUShmem
	case bench.StreamTriggered:
		tr = machine.StreamTriggered
	case bench.MemChannel:
		tr = machine.MemChannel
	}
	tp, ok := cfg.Params(tr)
	if !ok {
		fatal(fmt.Errorf("machine %s lacks transport %v", cfg.Name, tr))
	}
	model, err := core.Fit(fmt.Sprintf("%s %s (fitted)", cfg.Name, *tName),
		res.Samples(), tp.OpsPerMsg, tp.Gap, cfg.TheoreticalGBs)
	if err != nil {
		fatal(err)
	}
	chart := plot.Chart{
		Title:  fmt.Sprintf("Message Roofline — %s %s", cfg.Title, *tName),
		XLabel: "message size (bytes)", YLabel: "GB/s", XLog: true, YLog: true,
	}
	for _, n := range ns {
		chart.Add(model.CeilingSeries(n, sizes))
	}
	chart.Series = append(chart.Series, res.Series()...)
	fmt.Println(chart.Render())
	fmt.Printf("fitted %v  (RMS rel. err %.3f)\n", model.Params, loggp.FitError(model.Params, res.Samples()))
	fmt.Printf("peak measured %.2f GB/s of %.0f GB/s theoretical\n", res.MaxGBs(), cfg.TheoreticalGBs)
	common.ReportSched("sweep", res.Sched.Host)
	common.ReportCache(cache)
	common.ReportShards("shards")
	writeCSV(*csvPath, res.Series())
}

func runSplit(cfg *machine.Config, cache *pointcache.Cache, csvPath string) {
	var volumes []int64
	for v := int64(1 << 10); v <= 4<<20; v *= 2 {
		volumes = append(volumes, v)
	}
	pts, err := bench.SweepSplitCached(cache, cfg, 4, volumes)
	if err != nil {
		fatal(err)
	}
	t := table.New(fmt.Sprintf("Message splitting on %s (4-way)", cfg.Title),
		"volume (B)", "whole (us)", "split (us)", "speedup")
	ser := plot.Series{Name: "4-way split speedup"}
	for _, p := range pts {
		t.AddRow(fmt.Sprint(p.Volume),
			fmt.Sprintf("%.2f", p.Whole.Microseconds()),
			fmt.Sprintf("%.2f", p.Split.Microseconds()),
			fmt.Sprintf("%.2f", p.Speedup))
		ser.X = append(ser.X, float64(p.Volume))
		ser.Y = append(ser.Y, p.Speedup)
	}
	fmt.Println(t.Render())
	writeCSV(csvPath, []plot.Series{ser})
}

func writeCSV(path string, series []plot.Series) {
	if path == "" {
		return
	}
	f, err := os.Create(path)
	if err != nil {
		fatal(err)
	}
	defer f.Close()
	if err := plot.WriteCSV(f, series); err != nil {
		fatal(err)
	}
	fmt.Printf("wrote %s\n", path)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "msgroof:", err)
	os.Exit(1)
}
