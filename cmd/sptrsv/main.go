// Command sptrsv runs the distributed sparse triangular solve on a
// synthetic supernodal factor shaped after the paper's M3D-C1 matrix
// and reports the SOLVE time (the number the paper's scripts print).
//
//	sptrsv -machine perlmutter-cpu -variant two-sided -ranks 16
//	sptrsv -machine perlmutter-gpu -variant gpu -ranks 4 -full
package main

import (
	"flag"
	"fmt"
	"math"
	"os"

	"msgroofline/internal/cliflags"
	"msgroofline/internal/comm"
	"msgroofline/internal/machine"
	"msgroofline/internal/spmat"
	"msgroofline/internal/sptrsv"
)

func main() {
	mName := flag.String("machine", "perlmutter-cpu", "machine: "+machine.NameList())
	variant := flag.String("variant", "two-sided", "transport: "+comm.KindList()+" (alias: gpu = shmem)")
	ranks := flag.Int("ranks", 4, "MPI ranks / GPU PEs")
	full := flag.Bool("full", false, "use the full M3D-C1-like factor (default: quick-scale)")
	seed := flag.Int64("seed", 20230901, "matrix generator seed")
	showMatrix := flag.Bool("matrix", false, "print the traffic heat map and hotspot pairs")
	common := cliflags.Register(flag.CommandLine, "sptrsv", "off")
	flag.Parse()

	stop, err := common.StartProfiles()
	if err != nil {
		fatal(err)
	}
	defer stop()
	if _, err := common.OpenCache(); err != nil {
		fatal(err)
	}

	params := spmat.Params{N: 2400, MeanSnode: 24, Fill: 1.0, Seed: *seed}
	if *full {
		params = spmat.M3DC1Like
		params.Seed = *seed
	}
	m, err := spmat.Generate(params)
	if err != nil {
		fatal(err)
	}
	cfg, err := machine.Get(*mName)
	if err != nil {
		fatal(err)
	}
	kind, err := comm.ParseKind(*variant)
	if err != nil {
		fatal(err)
	}
	res, err := sptrsv.Run(sptrsv.Config{Machine: cfg, Transport: kind, Matrix: m, Ranks: *ranks, Shards: common.Shards})
	if err != nil {
		fatal(err)
	}
	defer common.ReportShards("shards")
	fmt.Printf("machine=%s variant=%s ranks=%d\n", cfg.Name, *variant, res.Ranks)
	fmt.Printf("matrix: %d x %d, %d supernodes, %d nnz, %d DAG edges, %d levels\n",
		m.N, m.N, m.NumSupernodes(), m.NNZ(), m.Edges(), len(m.Levels()))
	fmt.Printf("SOLVE time %v\n", res.Elapsed)
	fmt.Printf("communication %s\n", res.Comm)
	if *showMatrix && res.Matrix != nil {
		fmt.Print(res.Matrix)
		fmt.Printf("traffic imbalance (max/mean): %.2f\n", res.Matrix.Imbalance())
		for _, pair := range res.Matrix.Hottest(3) {
			fmt.Printf("  hot pair %d->%d: %d msgs, %d bytes\n", pair.Src, pair.Dst, pair.Messages, pair.Bytes)
		}
	}

	// Verify against the serial reference.
	want, err := m.SolveSerial(sptrsv.Rhs(m.N))
	if err != nil {
		fatal(err)
	}
	worst := 0.0
	for i := range want {
		if d := math.Abs(res.X[i] - want[i]); d > worst {
			worst = d
		}
	}
	fmt.Printf("max deviation from serial solve: %.3g\n", worst)
	if worst > 1e-9 {
		fatal(fmt.Errorf("verification FAILED"))
	}
	fmt.Println("verification OK")
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "sptrsv:", err)
	os.Exit(1)
}
