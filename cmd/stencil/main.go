// Command stencil runs the 2-D Jacobi stencil workload with the CLI
// shape of the paper's benchmark ("./stencil <grid> <energy> <iters>
// <px> <py>", Appendix G), plus machine/variant selection flags.
//
//	stencil -machine perlmutter-gpu -variant gpu 16384 1 1000 2 2
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"

	"msgroofline/internal/cliflags"
	"msgroofline/internal/comm"
	"msgroofline/internal/machine"
	"msgroofline/internal/stencil"
)

func main() {
	mName := flag.String("machine", "perlmutter-cpu", "machine: "+machine.NameList())
	variant := flag.String("variant", "two-sided", "transport: "+comm.KindList()+" (alias: gpu = shmem)")
	verify := flag.Bool("verify", false, "carry real grid data and check against the serial reference (small grids)")
	showMatrix := flag.Bool("matrix", false, "print the halo traffic heat map")
	common := cliflags.Register(flag.CommandLine, "stencil", "off")
	flag.Parse()

	stop, err := common.StartProfiles()
	if err != nil {
		fatal(err)
	}
	defer stop()
	if _, err := common.OpenCache(); err != nil {
		fatal(err)
	}

	args := flag.Args()
	if len(args) != 5 {
		fmt.Fprintln(os.Stderr, "usage: stencil [flags] <grid> <energy> <iters> <px> <py>")
		os.Exit(2)
	}
	grid := atoi(args[0])
	_ = atoi(args[1]) // energy: accepted for CLI compatibility, unused
	iters := atoi(args[2])
	px := atoi(args[3])
	py := atoi(args[4])

	cfg, err := machine.Get(*mName)
	if err != nil {
		fatal(err)
	}
	kind, err := comm.ParseKind(*variant)
	if err != nil {
		fatal(err)
	}
	res, err := stencil.Run(stencil.Config{
		Machine: cfg, Transport: kind,
		Grid: grid, Iters: iters, PX: px, PY: py, Verify: *verify,
		Shards: common.Shards,
	})
	if err != nil {
		fatal(err)
	}
	defer common.ReportShards("shards")
	fmt.Printf("machine=%s variant=%s grid=%d iters=%d ranks=%d\n", cfg.Name, *variant, grid, iters, res.Ranks)
	fmt.Printf("total time   %v\n", res.Elapsed)
	fmt.Printf("per iteration %v\n", res.PerIter)
	fmt.Printf("communication %s\n", res.Comm)
	if *showMatrix && res.Matrix != nil {
		fmt.Print(res.Matrix)
	}
	if *verify {
		want := stencil.SerialReference(grid, iters)
		fmt.Printf("checksum %.12g (serial %.12g)\n", res.Checksum, want)
		if diff := res.Checksum - want; diff > 1e-9 || diff < -1e-9 {
			fatal(fmt.Errorf("verification FAILED: checksum differs by %g", diff))
		}
		fmt.Println("verification OK")
	}
}

func atoi(s string) int {
	v, err := strconv.Atoi(s)
	if err != nil {
		fatal(fmt.Errorf("bad integer %q", s))
	}
	return v
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "stencil:", err)
	os.Exit(1)
}
