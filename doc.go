// Package msgroofline is a full reproduction, in pure Go, of
// "Evaluating the Performance of One-sided Communication on CPUs and
// GPUs" (Ding, Haseeb, Groves, Williams — SC 2023): the Message
// Roofline Model, a discrete-event simulation of the paper's five
// evaluation platforms, simulated two-sided and one-sided MPI and an
// NVSHMEM-style GPU layer, and the three workloads (Stencil, SpTRSV,
// Distributed HashTable) that the paper evaluates.
//
// Start with examples/quickstart, or regenerate every table and
// figure with:
//
//	go run ./cmd/experiments -scale quick
//
// See README.md for the architecture overview, DESIGN.md for the
// system inventory and per-experiment index, and EXPERIMENTS.md for
// paper-vs-measured results.
package msgroofline
