// AllReduce explorer: the paper's named future work ("AI applications
// using NCCL") — run NCCL-style ring collectives on the simulated GPU
// machines, including the Frontier GPU extension platform the paper
// could not measure, and place the results on the Message Roofline.
package main

import (
	"fmt"
	"log"

	"msgroofline/internal/ccl"
	"msgroofline/internal/core"
	"msgroofline/internal/machine"
	"msgroofline/internal/shmem"
	"msgroofline/internal/sim"
)

func main() {
	for _, name := range []string{"perlmutter-gpu", "summit-gpu", "frontier-gpu"} {
		cfg, err := machine.Get(name)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%s (%d GPUs):\n", cfg.Title, cfg.MaxRanks)
		fmt.Printf("  %10s %14s %12s\n", "elements", "time", "algbw GB/s")
		for _, n := range []int{1 << 10, 1 << 14, 1 << 18} {
			elapsed, err := runAllReduce(cfg, cfg.MaxRanks, n)
			if err != nil {
				log.Fatal(err)
			}
			moved := float64(8*n) * 2 * float64(cfg.MaxRanks-1) / float64(cfg.MaxRanks)
			fmt.Printf("  %10d %14v %12.2f\n", n, elapsed, moved/elapsed.Seconds()/1e9)
		}
		// Where does the collective sit on the roofline? Ring steps
		// move chunks of n/P elements; 2(P-1) steps per allreduce.
		model, err := core.ForMachine(cfg, machine.GPUShmem, cfg.MaxRanks, 0, 1)
		if err != nil {
			log.Fatal(err)
		}
		chunk := int64(8 * (1 << 18) / cfg.MaxRanks)
		steps := 2 * (cfg.MaxRanks - 1)
		fmt.Printf("  roofline: %d ring steps of %d B chunks; per-step ceiling %.2f GB/s (1 msg/sync)\n\n",
			steps, chunk, model.CeilingGBs(1, chunk))
	}
	fmt.Println("Observation: ring collectives are chains of 1-msg/sync steps, so the")
	fmt.Println("Message Roofline's latency ceiling (not the flood bound) governs small")
	fmt.Println("vectors, and the aggregate-channel ceiling governs large ones.")
}

func runAllReduce(cfg *machine.Config, npes, elems int) (sim.Time, error) {
	plan, err := ccl.NewPlan(npes, elems)
	if err != nil {
		return 0, err
	}
	job, err := shmem.NewJob(cfg, npes, plan.HeapBytes())
	if err != nil {
		return 0, err
	}
	if err := plan.Bind(job, 0); err != nil {
		return 0, err
	}
	err = job.Launch(func(sc *shmem.Ctx) {
		c := plan.NewCtx(sc)
		data := make([]float64, elems)
		for i := range data {
			data[i] = float64(sc.MyPE() + i)
		}
		if e := c.AllReduce(data); e != nil {
			log.Fatal(e)
		}
	})
	return job.Elapsed(), err
}
