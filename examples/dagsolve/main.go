// DAG solve walkthrough: generate a synthetic supernodal factor,
// inspect its elimination DAG, run the distributed sparse triangular
// solve under all three communication designs, and verify every
// solution against the serial reference — the SpTRSV (§III-B) story
// end to end.
package main

import (
	"fmt"
	"log"
	"math"

	"msgroofline/internal/comm"
	"msgroofline/internal/machine"
	"msgroofline/internal/spmat"
	"msgroofline/internal/sptrsv"
)

func main() {
	// 1. Generate the factor (a scaled M3D-C1 stand-in).
	m, err := spmat.Generate(spmat.Params{N: 4800, MeanSnode: 30, Fill: 1.0, Seed: 42})
	if err != nil {
		log.Fatal(err)
	}
	levels := m.Levels()
	sizes := m.MsgBytes()
	var minB, maxB int64 = sizes[0], sizes[0]
	for _, s := range sizes {
		if s < minB {
			minB = s
		}
		if s > maxB {
			maxB = s
		}
	}
	fmt.Printf("factor: %d x %d, %d supernodes, %d nnz\n", m.N, m.N, m.NumSupernodes(), m.NNZ())
	fmt.Printf("elimination DAG: %d edges, %d levels, messages %d-%d bytes\n\n",
		m.Edges(), len(levels), minB, maxB)

	// 2. Reference solution.
	b := sptrsv.Rhs(m.N)
	want, err := m.SolveSerial(b)
	if err != nil {
		log.Fatal(err)
	}

	// 3. Distributed solves.
	pm, _ := machine.Get("perlmutter-cpu")
	pg, _ := machine.Get("perlmutter-gpu")
	runs := []struct {
		name string
		cfg  sptrsv.Config
	}{
		{"two-sided, 16 CPU ranks", sptrsv.Config{Machine: pm, Transport: comm.TwoSided, Matrix: m, Ranks: 16}},
		{"one-sided, 16 CPU ranks", sptrsv.Config{Machine: pm, Transport: comm.OneSided, Matrix: m, Ranks: 16}},
		{"notified,  16 CPU ranks", sptrsv.Config{Machine: pm, Transport: comm.Notified, Matrix: m, Ranks: 16}},
		{"nvshmem,   4 GPUs      ", sptrsv.Config{Machine: pg, Transport: comm.Shmem, Matrix: m, Ranks: 4}},
	}
	for _, r := range runs {
		res, err := sptrsv.Run(r.cfg)
		if err != nil {
			log.Fatal(err)
		}
		worst := 0.0
		for i := range want {
			if d := math.Abs(res.X[i] - want[i]); d > worst {
				worst = d
			}
		}
		status := "OK"
		if worst > 1e-9 {
			status = fmt.Sprintf("FAILED (dev %.3g)", worst)
		}
		fmt.Printf("%s  solve %12v  %4d msgs (%s)  verify %s\n",
			r.name, res.Elapsed, res.Comm.Messages, res.Comm.String(), status)
	}
	fmt.Println("\nObservation (paper §III-B): one-sided SpTRSV pays 4 MPI ops per message")
	fmt.Println("plus the Listing-1 receiver polling, so it trails two-sided on CPUs.")
}
