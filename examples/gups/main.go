// GUPS shoot-out: the distributed hashtable under one-sided CAS and
// the paper's broadcast-style two-sided protocol, across rank counts —
// reproducing the Fig-9 crossover where two-sided wins at P=2 and
// loses several-fold at scale.
package main

import (
	"fmt"
	"log"

	"msgroofline/internal/comm"
	"msgroofline/internal/hashtable"
	"msgroofline/internal/machine"
)

func main() {
	pm, err := machine.Get("perlmutter-cpu")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("distributed hashtable, Perlmutter CPU, 128 inserts/process")
	fmt.Printf("%6s %16s %16s %10s\n", "ranks", "two-sided", "one-sided", "1s/2s")
	for _, p := range []int{2, 8, 32, 128} {
		cfg := hashtable.Config{Machine: pm, Ranks: p, TotalInserts: 128 * p}
		cfg.Transport = comm.TwoSided
		two, err := hashtable.Run(cfg)
		if err != nil {
			log.Fatal(err)
		}
		cfg.Transport = comm.OneSided
		one, err := hashtable.Run(cfg)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%6d %9.0f upd/s %9.0f upd/s %9.2fx\n",
			p, two.UpdatesPerSec, one.UpdatesPerSec,
			one.UpdatesPerSec/two.UpdatesPerSec)
	}

	fmt.Println("\nGPU atomics (NVSHMEM CAS), 600 inserts/PE:")
	for _, name := range []string{"perlmutter-gpu", "summit-gpu"} {
		g, err := machine.Get(name)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  %s:\n", g.Title)
		for p := 1; p <= g.MaxRanks; p++ {
			res, err := hashtable.Run(hashtable.Config{Machine: g, Transport: comm.Shmem, Ranks: p, TotalInserts: 600 * g.MaxRanks})
			if err != nil {
				log.Fatal(err)
			}
			fmt.Printf("    %d GPU(s): %12v  (%.0f updates/s, %d collisions)\n",
				p, res.Elapsed, res.UpdatesPerSec, res.Collisions)
		}
	}
	fmt.Println("\nObservation (paper §III-C): one-sided wins at scale; Summit stops")
	fmt.Println("scaling past 3 GPUs because cross-socket CAS costs 1.6us over the X-Bus.")
}
