// Quickstart: build a simulated machine, measure a bandwidth sweep,
// fit the Message Roofline, and ask it questions — the 60-second tour
// of the library.
package main

import (
	"fmt"
	"log"
	"runtime"

	"msgroofline/internal/bench"
	"msgroofline/internal/core"
	"msgroofline/internal/machine"
)

func main() {
	// 1. Pick a platform from the catalog (Table I of the paper).
	cfg, err := machine.Get("perlmutter-cpu")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("machine: %s (%v, up to %d ranks, %0.f GB/s ceiling)\n\n",
		cfg.Title, cfg.Kind, cfg.MaxRanks, cfg.TheoreticalGBs)

	// 2. Measure a two-sided MPI sweep: windows of N messages of B
	// bytes between two cross-socket ranks. Every sweep point is an
	// independent simulation, so Jobs > 1 parallelizes the sweep with
	// byte-identical results.
	ns := []int{1, 16, 256}
	sizes := []int64{8, 1024, 65536, 1 << 20}
	res, err := bench.Sweep(cfg, bench.Spec{
		Transport: bench.TwoSided,
		Ranks:     2,
		Ns:        ns,
		Sizes:     sizes,
		Jobs:      runtime.GOMAXPROCS(0),
	})
	if err != nil {
		log.Fatal(err)
	}
	for _, p := range res.Points {
		fmt.Printf("  n=%4d  B=%8d  window=%10v  %.3f GB/s\n", p.N, p.Bytes, p.Elapsed, p.GBs)
	}

	// 3. Fit the Message Roofline from the measurements.
	tp, _ := cfg.Params(machine.TwoSided)
	model, err := core.Fit("perlmutter-cpu two-sided", res.Samples(), tp.OpsPerMsg, tp.Gap, cfg.TheoreticalGBs)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nfitted LogGP parameters: %v\n\n", model.Params)

	// 4. Ask the model the paper's questions.
	fmt.Printf("tight bound for 1 msg/sync of 400 B: %.3f GB/s\n", model.CeilingGBs(1, 400))
	fmt.Printf("loose flood bound at 400 B:          %.3f GB/s\n", model.FloodGBs(400))
	fmt.Printf("overlap gain at 64 B, 100 msg/sync:  %.1fx\n", model.OverlapGain(64, 100))

	// 5. Render the roofline chart.
	fmt.Println()
	fmt.Println(model.Chart(ns, sizes, nil).Render())
}
