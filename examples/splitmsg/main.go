// Message-splitting explorer (Fig 10): when is it worth splitting one
// large put into several channel-pinned smaller ones on a multi-rail
// GPU interconnect? Compares the measured simulation against the
// analytic Message Roofline prediction.
package main

import (
	"fmt"
	"log"

	"msgroofline/internal/bench"
	"msgroofline/internal/core"
	"msgroofline/internal/machine"
)

func main() {
	cfg, err := machine.Get("perlmutter-gpu")
	if err != nil {
		log.Fatal(err)
	}
	model, err := core.ForMachine(cfg, machine.GPUShmem, 4, 0, 1)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%s: %d NVLink3 port channels per GPU pair, %0.f GB/s aggregate\n\n",
		cfg.Title, model.Channels, model.AggregateGBs)

	var volumes []int64
	for v := int64(4 << 10); v <= 4<<20; v *= 2 {
		volumes = append(volumes, v)
	}
	for _, parts := range []int{2, 4, 8} {
		fmt.Printf("splitting into %d messages:\n", parts)
		pts, err := bench.SweepSplit(cfg, parts, volumes)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  %10s %12s %12s %10s %10s\n", "volume", "whole", "split", "measured", "modeled")
		for _, p := range pts {
			fmt.Printf("  %10d %12v %12v %9.2fx %9.2fx\n",
				p.Volume, p.Whole, p.Split, p.Speedup, model.SplitSpeedup(p.Volume, parts))
		}
		fmt.Println()
	}
	fmt.Println("Observation (paper Fig 10): >= ~131 KB, 4-way splitting yields ~2.9x;")
	fmt.Println("8-way gains nothing more — the pair has only 4 channels, so extra parts")
	fmt.Println("serialize in waves.")
}
