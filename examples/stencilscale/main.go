// Stencil strong-scaling study: the Fig-5 motivating workload run
// across machines and communication models, with verified numerics at
// a small grid first.
package main

import (
	"fmt"
	"log"
	"math"

	"msgroofline/internal/comm"
	"msgroofline/internal/machine"
	"msgroofline/internal/stencil"
)

func main() {
	pm, err := machine.Get("perlmutter-cpu")
	if err != nil {
		log.Fatal(err)
	}
	pg, err := machine.Get("perlmutter-gpu")
	if err != nil {
		log.Fatal(err)
	}

	// Correctness first: all three variants must match the serial
	// reference bit-for-bit on a small verified grid.
	const vGrid, vIters = 64, 4
	want := stencil.SerialReference(vGrid, vIters)
	check := func(name string, res *stencil.Result, err error) {
		if err != nil {
			log.Fatal(err)
		}
		if math.Abs(res.Checksum-want) > 1e-9 {
			log.Fatalf("%s checksum mismatch: %v vs %v", name, res.Checksum, want)
		}
		fmt.Printf("  %-10s verified (checksum %.9f)\n", name, res.Checksum)
	}
	vc := stencil.Config{Machine: pm, Grid: vGrid, Iters: vIters, PX: 2, PY: 2, Verify: true}
	for _, kind := range []comm.Kind{comm.TwoSided, comm.OneSided, comm.Notified} {
		c := vc
		c.Transport = kind
		r, err := stencil.Run(c)
		check(kind.String(), r, err)
	}
	gv := vc
	gv.Machine = pg
	gv.Transport = comm.Shmem
	r, err := stencil.Run(gv)
	check("shmem", r, err)

	// Strong scaling at paper-like size (cost-model mode).
	fmt.Println("\nstrong scaling, grid 8192^2, 8 iterations:")
	fmt.Printf("%8s %14s %14s %14s\n", "ranks", "two-sided", "one-sided", "gpu (P<=4)")
	for _, p := range []int{4, 16, 64} {
		px, py := 1, p
		for px*px < p {
			px *= 2
		}
		px = p / (p / px)
		py = p / px
		cfg := stencil.Config{Machine: pm, Grid: 8192, Iters: 8, PX: px, PY: py}
		cfg.Transport = comm.TwoSided
		two, err := stencil.Run(cfg)
		if err != nil {
			log.Fatal(err)
		}
		cfg.Transport = comm.OneSided
		one, err := stencil.Run(cfg)
		if err != nil {
			log.Fatal(err)
		}
		gpuCol := "-"
		if p <= 4 {
			g, err := stencil.Run(stencil.Config{Machine: pg, Transport: comm.Shmem, Grid: 8192, Iters: 8, PX: 2, PY: 2})
			if err != nil {
				log.Fatal(err)
			}
			gpuCol = fmt.Sprint(g.Elapsed)
		}
		fmt.Printf("%8d %14v %14v %14s\n", p, two.Elapsed, one.Elapsed, gpuCol)
	}
	fmt.Println("\nObservation (paper §III-A): the two communication models tie on CPUs —")
	fmt.Println("stencils are bandwidth-bound — while GPUs win on parallelism and bandwidth.")
}
