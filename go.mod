module msgroofline

go 1.22
