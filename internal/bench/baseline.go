package bench

import (
	"fmt"

	"msgroofline/internal/machine"
	"msgroofline/internal/mpi"
	"msgroofline/internal/sim"
)

// Classic baselines: the flood and ping-pong benchmarks every prior
// study used (§IV: "All of the existing studies use the flood send
// (or put) or ping-pong to benchmark the communication performance.
// However, it provides a loose bound…"). They exist here precisely so
// the Message Roofline's tighter bound can be compared against them.

// PingPong measures the classic round-trip: rank 0 sends B bytes,
// rank 1 echoes them, repeated reps times; returns the half round
// trip (the usual "latency" number) and the ping-pong bandwidth.
func PingPong(cfg *machine.Config, ranks int, bytes int64, reps int) (halfRTT sim.Time, gbs float64, err error) {
	if reps < 1 {
		return 0, 0, fmt.Errorf("bench: reps must be >= 1")
	}
	src, dst := farPair(ranks)
	c, err := mpi.NewComm(cfg, ranks)
	if err != nil {
		return 0, 0, err
	}
	var total sim.Time
	err = c.Launch(func(r *mpi.Rank) {
		payload := make([]byte, bytes)
		switch r.Rank() {
		case src:
			start := r.Now()
			for i := 0; i < reps; i++ {
				r.Send(dst, i, payload)
				r.Recv(dst, i)
			}
			total = r.Now() - start
		case dst:
			for i := 0; i < reps; i++ {
				r.Recv(src, i)
				r.Send(src, i, payload)
			}
		}
	})
	if err != nil {
		return 0, 0, err
	}
	halfRTT = total / sim.Time(2*reps)
	if total > 0 {
		gbs = float64(2*reps) * float64(bytes) / total.Seconds() / 1e9
	}
	return halfRTT, gbs, nil
}

// Flood measures the classic flood bound: the sender streams `count`
// messages of B bytes with no synchronization at all; the receiver
// posts everything up front. This is the loose upper bound the paper
// contrasts with the msg/sync ceilings.
func Flood(cfg *machine.Config, ranks int, bytes int64, count int) (gbs float64, err error) {
	if count < 1 {
		return 0, fmt.Errorf("bench: count must be >= 1")
	}
	src, dst := farPair(ranks)
	c, err := mpi.NewComm(cfg, ranks)
	if err != nil {
		return 0, err
	}
	var elapsed sim.Time
	err = c.Launch(func(r *mpi.Rank) {
		switch r.Rank() {
		case src:
			r.Barrier()
			payload := make([]byte, bytes)
			for i := 0; i < count; i++ {
				r.Isend(dst, 0, payload)
			}
		case dst:
			reqs := make([]*mpi.Request, count)
			for i := range reqs {
				reqs[i] = r.Irecv(src, 0)
			}
			r.Barrier()
			start := r.Now()
			r.Waitall(reqs)
			elapsed = r.Now() - start
		default:
			r.Barrier()
		}
	})
	if err != nil {
		return 0, err
	}
	if elapsed > 0 {
		gbs = float64(count) * float64(bytes) / elapsed.Seconds() / 1e9
	}
	return gbs, nil
}
