package bench

import (
	"testing"
)

func TestPingPongLatency(t *testing.T) {
	pm := cfg(t, "perlmutter-cpu")
	half, gbs, err := PingPong(pm, 2, 8, 10)
	if err != nil {
		t.Fatal(err)
	}
	// Half round trip of a tiny message ~ the one-way latency ~3 us.
	if us := half.Microseconds(); us < 2.5 || us > 4.5 {
		t.Fatalf("half RTT = %.2fus, want ~3us", us)
	}
	if gbs <= 0 {
		t.Fatal("zero bandwidth")
	}
	if _, _, err := PingPong(pm, 2, 8, 0); err == nil {
		t.Fatal("reps=0 should fail")
	}
}

func TestFloodIsLooseBound(t *testing.T) {
	// §IV: the flood bound exceeds what any synchronizing pattern
	// achieves — compare flood against a 1-msg/sync sweep point.
	pm := cfg(t, "perlmutter-cpu")
	flood, err := Flood(pm, 2, 4096, 512)
	if err != nil {
		t.Fatal(err)
	}
	sweep, err := Sweep(pm, Spec{Transport: TwoSided, Ranks: 2, Ns: []int{1}, Sizes: []int64{4096}})
	if err != nil {
		t.Fatal(err)
	}
	p, _ := sweep.At(1, 4096)
	if flood <= p.GBs {
		t.Fatalf("flood %.3f GB/s should exceed the 1-msg/sync point %.3f GB/s", flood, p.GBs)
	}
	if flood/p.GBs < 2 {
		t.Fatalf("flood bound only %.1fx above 1-msg/sync — not 'loose'", flood/p.GBs)
	}
	if _, err := Flood(pm, 2, 8, 0); err == nil {
		t.Fatal("count=0 should fail")
	}
}

func TestFloodApproachesLinkPeak(t *testing.T) {
	for _, name := range []string{"perlmutter-cpu", "frontier-cpu"} {
		m := cfg(t, name)
		flood, err := Flood(m, 2, 1<<20, 64)
		if err != nil {
			t.Fatal(err)
		}
		peak := m.TheoreticalGBs
		if flood < 0.85*peak || flood > peak*1.001 {
			t.Fatalf("%s flood = %.1f GB/s, want near %.0f", name, flood, peak)
		}
	}
}

func TestPingPongSlowerOnSummit(t *testing.T) {
	// Spectrum MPI has higher per-op overhead; Summit's small-message
	// ping-pong should be slower than Perlmutter's.
	pmHalf, _, err := PingPong(cfg(t, "perlmutter-cpu"), 2, 8, 10)
	if err != nil {
		t.Fatal(err)
	}
	smHalf, _, err := PingPong(cfg(t, "summit-cpu"), 2, 8, 10)
	if err != nil {
		t.Fatal(err)
	}
	// Calibration: Perlmutter ~3.3us single message, Summit ~3us
	// latency but higher o; they land in the same band — just check
	// both are sane and deterministic.
	if pmHalf <= 0 || smHalf <= 0 {
		t.Fatal("non-positive latency")
	}
}
