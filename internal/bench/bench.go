// Package bench is the microbenchmark harness behind the paper's
// bandwidth figures: sustained bandwidth as a function of message
// size and messages per synchronization for two-sided MPI, one-sided
// MPI, and GPU-initiated put-with-signal (Figs 1, 3, 4), atomic
// compare-and-swap latencies (§III-C), and the message-splitting
// experiment (Fig 10). Every point is measured by running the actual
// simulated stack, exactly as the paper measured its dots on real
// machines; the fitted LogGP parameters then draw the ceilings.
//
// The single driver is Sweep(cfg, Spec): it enumerates the (msg/sync,
// size) grid, runs every point as an isolated simulation on an
// internal/sched worker pool (Spec.Jobs wide), and collects points in
// grid order — so results are byte-identical at any job count. The
// callers name the protocol via Spec.Transport.
package bench

import (
	"fmt"
	"strings"

	"msgroofline/internal/comm"
	"msgroofline/internal/loggp"
	"msgroofline/internal/machine"
	"msgroofline/internal/mpi"
	"msgroofline/internal/plot"
	"msgroofline/internal/pointcache"
	"msgroofline/internal/runtime"
	"msgroofline/internal/sched"
	"msgroofline/internal/shmem"
	"msgroofline/internal/sim"
)

// Point is one measured sweep sample: a window of N messages of Bytes
// each completed in Elapsed, achieving GBs of sustained bandwidth.
type Point struct {
	N       int
	Bytes   int64
	Elapsed sim.Time
	GBs     float64
}

// Result is a sweep on one machine/transport.
type Result struct {
	Machine   string
	Transport string
	Points    []Point

	// Sched carries the measurement-host statistics of the sweep that
	// produced the result: how fast the missing simulations were
	// regenerated (Host) and how many points the content-addressed
	// cache served instead (Cache). It is wall-clock metadata, varies
	// run to run, and must never be mixed into simulated output.
	Sched *RunStats

	// index accelerates At; rebuilt lazily whenever Points grows.
	index      map[pointKey]int
	indexedLen int
}

// RunStats splits the measurement-host statistics of one sweep into
// its two independent sources: the worker-pool scheduling of the
// points that actually simulated, and the point-cache counters for the
// points that did not need to.
type RunStats struct {
	// Host holds the scheduler stats of the simulated (cache-miss)
	// points; with the cache disabled that is every point of the grid.
	Host *sched.Stats
	// Cache holds this sweep's pointcache counters: grid-point
	// lookups, hits by tier, misses handed to the scheduler, and the
	// simulated payload volume the hits saved. All zero when the sweep
	// ran without a cache.
	Cache pointcache.Stats
}

type pointKey struct {
	n     int
	bytes int64
}

// Transport selects which messaging protocol a Sweep measures. It is
// a superset of machine.Transport: the strict one-sided variant is a
// protocol discipline (remote flush per message), not a different
// software stack.
type Transport int

const (
	// TwoSided is the nonblocking Isend/Irecv/Waitall window.
	TwoSided Transport = iota
	// OneSided is the paper's 4-op windowed protocol (Put,
	// FlushLocal, Put(signal), FlushLocal; remote flushes close the
	// window).
	OneSided
	// OneSidedStrict is the per-message 4-op protocol with remote
	// flushes after every operation (Fig 6b's 5 us/message cost).
	OneSidedStrict
	// ShmemPutSignal is GPU-initiated put-with-signal (Fig 4).
	ShmemPutSignal
	// StreamTriggered is stream-triggered MPI: descriptors enqueued on
	// the device stream, fired by the GPU trigger engine.
	StreamTriggered
	// MemChannel is the RAMC-style ordered memory channel: FIFO byte
	// streams with open/credit semantics, one op per message.
	MemChannel
)

// String names the transport exactly as Result.Transport labels it in
// the figures.
func (t Transport) String() string {
	switch t {
	case TwoSided:
		return machine.TwoSided.String()
	case OneSided:
		return machine.OneSided.String()
	case OneSidedStrict:
		return "one-sided-strict"
	case ShmemPutSignal:
		return machine.GPUShmem.String()
	case StreamTriggered:
		return machine.StreamTriggered.String()
	case MemChannel:
		return machine.MemChannel.String()
	default:
		return fmt.Sprintf("Transport(%d)", int(t))
	}
}

// Transports enumerates every sweepable protocol in figure order — the
// single registry CLI parsing, usage text, and error messages derive
// their name lists from.
func Transports() []Transport {
	return []Transport{TwoSided, OneSided, OneSidedStrict, ShmemPutSignal, StreamTriggered, MemChannel}
}

// TransportList is the comma-separated name list of every sweepable
// protocol, for usage text and parse errors.
func TransportList() string {
	names := make([]string, 0, len(Transports()))
	for _, t := range Transports() {
		names = append(names, t.String())
	}
	return strings.Join(names, ", ")
}

// ParseTransport maps the figure/CLI names back to a Transport.
func ParseTransport(s string) (Transport, error) {
	for _, t := range Transports() {
		if t.String() == s {
			return t, nil
		}
	}
	return 0, fmt.Errorf("bench: unknown transport %q (want one of: %s)", s, TransportList())
}

// Spec describes one sweep: which protocol to measure, between how
// many ranks/PEs, over which msg/sync and message-size grids, and how
// many sweep points to simulate concurrently.
type Spec struct {
	// Transport is the protocol under test.
	Transport Transport
	// Ranks is the number of ranks (MPI) or PEs (SHMEM) in the job;
	// 0 defaults to 2 (the communicating far pair).
	Ranks int
	// Ns is the msg/sync grid; nil defaults to DefaultNs().
	Ns []int
	// Sizes is the message-size grid; nil defaults to DefaultSizes().
	Sizes []int64
	// Jobs is the number of sweep points simulated concurrently.
	// Every point is an independent, bit-reproducible simulation and
	// results are collected in grid order, so any Jobs value yields
	// byte-identical output. Jobs <= 0 runs sequentially (1); use
	// runtime.GOMAXPROCS(0) to saturate the host.
	Jobs int
	// Cache, when enabled, memoizes every point by its content
	// address (machine parameters + transport + ranks + coordinates +
	// schema salt): hits skip the simulation entirely and misses are
	// stored after simulating. Because simulations are deterministic
	// and the key covers everything that determines the outcome, the
	// sweep result is byte-identical at any cache mode. Nil disables
	// caching.
	Cache *pointcache.Cache
	// Shards is the window worker parallelism of each point's
	// simulated world (0 means 1). The node-group decomposition and
	// event order are topology-determined, so points are
	// byte-identical at every value — which is also why Shards is
	// deliberately absent from the pointcache key (PointSpec.Key).
	Shards int
}

func (s Spec) withDefaults() Spec {
	if s.Ranks == 0 {
		s.Ranks = 2
	}
	if s.Ns == nil {
		s.Ns = DefaultNs()
	}
	if s.Sizes == nil {
		s.Sizes = DefaultSizes()
	}
	if s.Jobs <= 0 {
		s.Jobs = 1
	}
	return s
}

// PointSpec identifies one sweep-point simulation: everything the
// measurement needs and (through Key) everything that determines its
// outcome. The dedup planner in internal/experiments enumerates the
// figures' sweeps as PointSpec sets to simulate the union exactly once.
type PointSpec struct {
	Machine   *machine.Config
	Transport Transport
	// Ranks is the job size; 0 defaults to 2 at measurement time,
	// matching Spec semantics.
	Ranks int
	N     int
	Bytes int64
	// Shards is the window worker parallelism of the point's world.
	// It can never change the simulated outcome (workers only execute
	// already-committed windows), so Key deliberately excludes it: a
	// point cached at -shards 1 is a valid hit at -shards 4.
	Shards int
}

// Key is the point's content address in the pointcache.
func (ps PointSpec) Key() pointcache.Key {
	ranks := ps.Ranks
	if ranks == 0 {
		ranks = 2
	}
	return pointcache.KeyOf(ps.Machine, pointcache.KindSweep, ps.Transport.String(), ranks, ps.N, ps.Bytes)
}

// SimBytes is the simulated payload volume of the point — what a
// cache hit saves.
func (ps PointSpec) SimBytes() int64 { return int64(ps.N) * ps.Bytes }

// MeasurePoint runs the single simulation behind one sweep point.
func MeasurePoint(ps PointSpec) (Point, error) {
	if ps.Ranks == 0 {
		ps.Ranks = 2
	}
	if ps.Ranks < 2 {
		return Point{}, fmt.Errorf("bench: point needs at least 2 ranks, got %d", ps.Ranks)
	}
	return measure(ps.Machine, ps.Transport, ps.Ranks, ps.N, ps.Bytes, ps.Shards)
}

// ExpandPoints enumerates the spec's (n, size) grid on cfg in sweep
// order (row-major: Ns outer, Sizes inner), after applying the spec
// defaults — the exact point set Sweep would measure.
func ExpandPoints(cfg *machine.Config, spec Spec) []PointSpec {
	spec = spec.withDefaults()
	out := make([]PointSpec, 0, len(spec.Ns)*len(spec.Sizes))
	for _, n := range spec.Ns {
		for _, b := range spec.Sizes {
			out = append(out, PointSpec{Machine: cfg, Transport: spec.Transport,
				Ranks: spec.Ranks, N: n, Bytes: b, Shards: spec.Shards})
		}
	}
	return out
}

// Sweep measures every (n, size) point of the spec's grid on cfg and
// returns them in grid order (row-major: Ns outer, Sizes inner — the
// order the legacy Sweep* entry points produced). With Spec.Cache
// enabled every point is first looked up by content address and only
// the misses are simulated (then stored); the misses run on up to
// Spec.Jobs goroutines via internal/sched. Because each point is an
// isolated, deterministic simulation, the result is byte-identical at
// any job count and any cache mode.
func Sweep(cfg *machine.Config, spec Spec) (*Result, error) {
	spec = spec.withDefaults()
	if spec.Ranks < 2 {
		return nil, fmt.Errorf("bench: sweep needs at least 2 ranks, got %d", spec.Ranks)
	}
	grid := ExpandPoints(cfg, spec)
	points := make([]Point, len(grid))
	var cs pointcache.Stats
	miss := make([]int, 0, len(grid))
	if spec.Cache.Enabled() {
		for i, ps := range grid {
			cs.Lookups++
			el, tier, ok := spec.Cache.Get(ps.Key())
			if !ok {
				cs.Misses++
				miss = append(miss, i)
				continue
			}
			points[i] = point(ps.N, ps.Bytes, el)
			cs.Hits++
			if tier == pointcache.TierDisk {
				cs.DiskHits++
			} else {
				cs.MemHits++
			}
			cs.BytesSaved += ps.SimBytes()
			spec.Cache.AddBytesSaved(ps.SimBytes())
		}
	} else {
		for i := range grid {
			miss = append(miss, i)
		}
	}
	measured, stats, err := sched.Map(spec.Jobs, len(miss), func(j int) (Point, error) {
		ps := grid[miss[j]]
		p, err := measure(cfg, ps.Transport, ps.Ranks, ps.N, ps.Bytes, ps.Shards)
		if err == nil {
			spec.Cache.Put(ps.Key(), p.Elapsed)
		}
		return p, err
	})
	if err != nil {
		return nil, err
	}
	for j, p := range measured {
		points[miss[j]] = p
	}
	if spec.Cache.Enabled() {
		cs.Stores = int64(len(miss))
	}
	return &Result{
		Machine:   cfg.Name,
		Transport: spec.Transport.String(),
		Points:    points,
		Sched:     &RunStats{Host: stats, Cache: cs},
	}, nil
}

// measure runs the single simulation behind one sweep point.
func measure(cfg *machine.Config, t Transport, ranks, n int, b int64, shards int) (Point, error) {
	switch t {
	case TwoSided:
		return measureTwoSided(cfg, ranks, n, b, shards)
	case OneSided:
		return measureOneSided(cfg, ranks, n, b, shards, false)
	case OneSidedStrict:
		return measureOneSided(cfg, ranks, n, b, shards, true)
	case ShmemPutSignal:
		return measureShmemPutSignal(cfg, ranks, n, b, shards)
	case StreamTriggered:
		return measureCommStream(cfg, comm.StreamTriggered, ranks, n, b, shards)
	case MemChannel:
		return measureCommStream(cfg, comm.MemChannel, ranks, n, b, shards)
	default:
		return Point{}, fmt.Errorf("bench: unknown transport %v", t)
	}
}

// DefaultNs is the msg/sync sweep used by the figures.
func DefaultNs() []int { return []int{1, 4, 16, 64, 256, 1024} }

// DefaultSizes is the message-size sweep (8 B .. 1 MiB).
func DefaultSizes() []int64 {
	var out []int64
	for b := int64(8); b <= 1<<20; b *= 4 {
		out = append(out, b)
	}
	return out
}

func point(n int, b int64, elapsed sim.Time) Point {
	p := Point{N: n, Bytes: b, Elapsed: elapsed}
	if elapsed > 0 {
		p.GBs = float64(n) * float64(b) / elapsed.Seconds() / 1e9
	}
	return p
}

// farPair picks the representative communicating pair on a machine:
// the first rank and the last, which the catalog places on different
// sockets/islands whenever the machine has more than one.
func farPair(ranks int) (int, int) { return 0, ranks - 1 }

// measureTwoSided measures one two-sided MPI window: the receiver
// posts N nonblocking receives, the sender issues N nonblocking
// sends, and the window closes at the receiver's Waitall. Both ranks
// synchronize on a barrier before timing.
func measureTwoSided(cfg *machine.Config, ranks, n int, b int64, shards int) (Point, error) {
	src, dst := farPair(ranks)
	var elapsed sim.Time
	c, err := mpi.NewCommSharded(cfg, ranks, shards)
	if err != nil {
		return Point{}, err
	}
	err = c.Launch(func(r *mpi.Rank) {
		switch r.Rank() {
		case src:
			r.Barrier()
			payload := make([]byte, b)
			for i := 0; i < n; i++ {
				r.Isend(dst, i, payload)
			}
		case dst:
			reqs := make([]*mpi.Request, n)
			for i := 0; i < n; i++ {
				reqs[i] = r.Irecv(src, i)
			}
			r.Barrier()
			start := r.Now()
			r.Waitall(reqs)
			elapsed = r.Now() - start
		default:
			r.Barrier()
		}
	})
	if err != nil {
		return Point{}, fmt.Errorf("bench: two-sided %s n=%d B=%d: %w", cfg.Name, n, b, err)
	}
	return point(n, b, elapsed), nil
}

// measureOneSided measures one one-sided MPI window using the paper's
// operation budget of four one-sided calls per message: for each
// message a Put of the data, a flush, a Put of the signal word, and a
// flush. In the windowed protocol (strict=false) the per-message
// flushes are local and the window closes with remote flushes, as in
// the flood-style sweep; the receiver's Listing-1 acknowledgment loop
// is exercised by the SpTRSV workload. With strict=true every flush
// waits for remote completion — the per-message notification protocol
// SpTRSV must use, the 5 us/message cost of Fig 6b, and the reason
// one-sided SpTRSV loses (§III-B).
func measureOneSided(cfg *machine.Config, ranks, n int, b int64, shards int, strict bool) (Point, error) {
	src, dst := farPair(ranks)
	var elapsed sim.Time
	c, err := mpi.NewCommSharded(cfg, ranks, shards)
	if err != nil {
		return Point{}, err
	}
	data, err := c.NewWin(int(b))
	if err != nil {
		return Point{}, err
	}
	sig, err := c.NewWin(8 * n)
	if err != nil {
		return Point{}, err
	}
	one := []byte{1, 0, 0, 0, 0, 0, 0, 0}
	err = c.Launch(func(r *mpi.Rank) {
		if r.Rank() != src {
			r.Barrier()
			return
		}
		r.Barrier()
		payload := make([]byte, b)
		start := r.Now()
		if strict {
			for i := 0; i < n; i++ {
				r.Put(data, dst, 0, payload)
				r.Flush(data, dst)
				r.Put(sig, dst, 8*i, one)
				r.Flush(sig, dst)
			}
		} else {
			for i := 0; i < n; i++ {
				r.Put(data, dst, 0, payload)
				r.FlushLocal(data, dst)
				r.Put(sig, dst, 8*i, one)
				r.FlushLocal(sig, dst)
			}
			r.Flush(data, dst)
			r.Flush(sig, dst)
		}
		elapsed = r.Now() - start
	})
	if err != nil {
		label := "one-sided"
		if strict {
			label = "strict one-sided"
		}
		return Point{}, fmt.Errorf("bench: %s %s n=%d B=%d: %w", label, cfg.Name, n, b, err)
	}
	return point(n, b, elapsed), nil
}

// measureShmemPutSignal measures one GPU-initiated put-with-signal
// window (Fig 4): the sender PE issues N fused put+signal operations,
// the receiver waits until all N signals land, and the window closes
// at the receiver.
func measureShmemPutSignal(cfg *machine.Config, npes, n int, b int64, shards int) (Point, error) {
	src, dst := farPair(npes)
	var elapsed sim.Time
	heap := int(b) + 8*n + 64
	j, err := shmem.NewJobSharded(cfg, npes, heap, shards)
	if err != nil {
		return Point{}, err
	}
	err = j.Launch(func(c *shmem.Ctx) {
		switch c.MyPE() {
		case src:
			c.Barrier()
			payload := make([]byte, b)
			for i := 0; i < n; i++ {
				c.PutSignalNBI(dst, 0, payload, int(b)+8*i, 1)
			}
			c.Quiet()
		case dst:
			sigs := make([]int, n)
			for i := range sigs {
				sigs[i] = int(b) + 8*i
			}
			c.Barrier()
			start := c.Now()
			c.WaitUntilAll(sigs, 1)
			elapsed = c.Now() - start
		default:
			c.Barrier()
		}
	})
	if err != nil {
		return Point{}, fmt.Errorf("bench: shmem %s n=%d B=%d: %w", cfg.Name, n, b, err)
	}
	return point(n, b, elapsed), nil
}

// measureCommStream measures one streamed-delivery window on a
// transport-layer stack (stream-triggered or memory-channel): the
// sender issues N signaled deliveries and quiets, the receiver times
// from the pre-window barrier to its Nth consumed slot. The trace tap
// stays off — the point is a timing, not an op census.
func measureCommStream(cfg *machine.Config, kind comm.Kind, ranks, n int, b int64, shards int) (Point, error) {
	src, dst := farPair(ranks)
	slots := make([]int, ranks)
	slots[dst] = n
	tr, err := comm.New(comm.Spec{
		Machine: cfg, Kind: kind, Ranks: ranks,
		StreamSlots: slots, SlotBytes: int(b),
		Shards: shards, NoTrace: true,
	})
	if err != nil {
		return Point{}, err
	}
	var elapsed sim.Time
	err = tr.Launch(func(ep comm.Endpoint) {
		switch ep.Rank() {
		case src:
			ep.Barrier()
			payload := make([]byte, b)
			for i := 0; i < n; i++ {
				ep.Deliver(dst, i, payload)
			}
			ep.Quiet()
		case dst:
			ep.Barrier()
			start := ep.Now()
			for got := 0; got < n; got++ {
				ep.WaitAnySlot()
			}
			elapsed = ep.Now() - start
		default:
			ep.Barrier()
		}
	})
	if err != nil {
		return Point{}, fmt.Errorf("bench: %s %s n=%d B=%d: %w", kind, cfg.Name, n, b, err)
	}
	return point(n, b, elapsed), nil
}

// cachedTime memoizes one sim.Time-valued kernel run under the cache:
// a hit returns the stored elapsed time, a miss runs the kernel and
// stores the result. With a nil/disabled cache it just runs the kernel.
func cachedTime(c *pointcache.Cache, k pointcache.Key, run func() (sim.Time, error)) (sim.Time, error) {
	if el, _, ok := c.Get(k); ok {
		return el, nil
	}
	el, err := run()
	if err == nil {
		c.Put(k, el)
	}
	return el, err
}

// CASLatency measures the round-trip time of a GPU atomic
// compare-and-swap from PE 0 to dst (Fig 4 / §III-C), averaged over
// reps back-to-back operations.
func CASLatency(cfg *machine.Config, npes, dst, reps int) (sim.Time, error) {
	return CASLatencyCached(nil, cfg, npes, dst, reps)
}

// CASLatencyCached is CASLatency memoized through the point cache
// (KindCAS, coordinates dst/reps). A nil cache simulates directly.
func CASLatencyCached(c *pointcache.Cache, cfg *machine.Config, npes, dst, reps int) (sim.Time, error) {
	k := pointcache.KeyOf(cfg, pointcache.KindCAS, machine.GPUShmem.String(), npes, dst, int64(reps))
	return cachedTime(c, k, func() (sim.Time, error) { return casLatency(cfg, npes, dst, reps) })
}

func casLatency(cfg *machine.Config, npes, dst, reps int) (sim.Time, error) {
	j, err := shmem.NewJob(cfg, npes, 64)
	if err != nil {
		return 0, err
	}
	var total sim.Time
	err = j.Launch(func(c *shmem.Ctx) {
		if c.MyPE() != 0 {
			return
		}
		start := c.Now()
		for i := 0; i < reps; i++ {
			c.AtomicCompareSwap(dst, 0, uint64(i), uint64(i+1))
		}
		total = c.Now() - start
	})
	if err != nil {
		return 0, err
	}
	return total / sim.Time(reps), nil
}

// OneSidedCASLatency measures the CPU one-sided MPI_Compare_and_swap
// round trip (the 2 us / 500K GUPS figure of §III-C).
func OneSidedCASLatency(cfg *machine.Config, ranks, dst, reps int) (sim.Time, error) {
	return OneSidedCASLatencyCached(nil, cfg, ranks, dst, reps)
}

// OneSidedCASLatencyCached is OneSidedCASLatency memoized through the
// point cache (KindCAS under the one-sided transport name). A nil
// cache simulates directly.
func OneSidedCASLatencyCached(pc *pointcache.Cache, cfg *machine.Config, ranks, dst, reps int) (sim.Time, error) {
	k := pointcache.KeyOf(cfg, pointcache.KindCAS, machine.OneSided.String(), ranks, dst, int64(reps))
	return cachedTime(pc, k, func() (sim.Time, error) { return oneSidedCASLatency(cfg, ranks, dst, reps) })
}

func oneSidedCASLatency(cfg *machine.Config, ranks, dst, reps int) (sim.Time, error) {
	c, err := mpi.NewComm(cfg, ranks)
	if err != nil {
		return 0, err
	}
	w, err := c.NewWin(64)
	if err != nil {
		return 0, err
	}
	var total sim.Time
	err = c.Launch(func(r *mpi.Rank) {
		if r.Rank() != 0 {
			return
		}
		start := r.Now()
		for i := 0; i < reps; i++ {
			r.CompareAndSwap(w, dst, 0, uint64(i), uint64(i+1))
		}
		total = r.Now() - start
	})
	if err != nil {
		return 0, err
	}
	return total / sim.Time(reps), nil
}

// TriggerDelay measures the stream-triggered per-message delivery
// latency: reps back-to-back 8-byte deliveries, receiver-timed and
// averaged. With the host overhead nearly off the critical path the
// number is dominated by L + TriggerLatency — the o/L inversion the
// offload roofline plots.
func TriggerDelay(cfg *machine.Config, ranks, reps int) (sim.Time, error) {
	return TriggerDelayCached(nil, cfg, ranks, reps)
}

// TriggerDelayCached is TriggerDelay memoized through the point cache
// (KindTrigger). A nil cache simulates directly.
func TriggerDelayCached(c *pointcache.Cache, cfg *machine.Config, ranks, reps int) (sim.Time, error) {
	k := pointcache.KeyOf(cfg, pointcache.KindTrigger, machine.StreamTriggered.String(), ranks, reps, 8)
	return cachedTime(c, k, func() (sim.Time, error) { return triggerDelay(cfg, ranks, reps) })
}

func triggerDelay(cfg *machine.Config, ranks, reps int) (sim.Time, error) {
	p, err := measureCommStream(cfg, comm.StreamTriggered, ranks, reps, 8, 0)
	if err != nil {
		return 0, err
	}
	return p.Elapsed / sim.Time(reps), nil
}

// ChannelOpen measures the memory channel's one-time open handshake:
// the sender-timed cost of a single 8-byte send-and-drain on a cold
// (never-opened) channel minus the same on the now-warm channel — the
// difference is exactly the open cost, every per-message term cancels.
func ChannelOpen(cfg *machine.Config, ranks int) (sim.Time, error) {
	return ChannelOpenCached(nil, cfg, ranks)
}

// ChannelOpenCached is ChannelOpen memoized through the point cache
// (KindChan). A nil cache simulates directly.
func ChannelOpenCached(c *pointcache.Cache, cfg *machine.Config, ranks int) (sim.Time, error) {
	k := pointcache.KeyOf(cfg, pointcache.KindChan, machine.MemChannel.String(), ranks, 0, 8)
	return cachedTime(c, k, func() (sim.Time, error) { return channelOpen(cfg, ranks) })
}

func channelOpen(cfg *machine.Config, ranks int) (sim.Time, error) {
	tp, ok := cfg.Params(machine.MemChannel)
	if !ok {
		return 0, fmt.Errorf("bench: machine %s has no memory-channel transport", cfg.Name)
	}
	w, err := runtime.NewWorld(cfg, ranks)
	if err != nil {
		return 0, err
	}
	src, dst := farPair(ranks)
	ep := w.Endpoint(src)
	ch := runtime.NewChannel(ep, dst, tp)
	var cold, warm sim.Time
	w.Spawn(src, "opener", func(p *sim.Proc) {
		start := p.Now()
		ch.Send(p, 8, ep.AutoChannel(), nil)
		ch.Drain(p)
		cold = p.Now() - start
		start = p.Now()
		ch.Send(p, 8, ep.AutoChannel(), nil)
		ch.Drain(p)
		warm = p.Now() - start
	})
	if err := w.Run(); err != nil {
		return 0, err
	}
	return cold - warm, nil
}

// SplitPoint is one Fig-10 measurement: a message volume sent whole
// vs split into `Parts` channel-pinned sub-messages.
type SplitPoint struct {
	Volume  int64
	Whole   sim.Time
	Split   sim.Time
	Speedup float64
}

// SweepSplit measures the Fig-10 experiment on a GPU machine: for
// each volume, send it as one put-with-signal versus `parts` puts on
// distinct injection channels, receiver waiting for all signals.
func SweepSplit(cfg *machine.Config, parts int, volumes []int64) ([]SplitPoint, error) {
	return SweepSplitCached(nil, cfg, parts, volumes)
}

// SweepSplitCached is SweepSplit with each (volume, parts) run
// memoized through the point cache (KindSplit). A nil cache simulates
// every run directly.
func SweepSplitCached(c *pointcache.Cache, cfg *machine.Config, parts int, volumes []int64) ([]SplitPoint, error) {
	var out []SplitPoint
	for _, v := range volumes {
		whole, err := splitRunCached(c, cfg, v, 1)
		if err != nil {
			return nil, err
		}
		split, err := splitRunCached(c, cfg, v, parts)
		if err != nil {
			return nil, err
		}
		sp := SplitPoint{Volume: v, Whole: whole, Split: split}
		if split > 0 {
			sp.Speedup = float64(whole) / float64(split)
		}
		out = append(out, sp)
	}
	return out, nil
}

func splitRunCached(c *pointcache.Cache, cfg *machine.Config, volume int64, parts int) (sim.Time, error) {
	k := pointcache.KeyOf(cfg, pointcache.KindSplit, machine.GPUShmem.String(), 2, parts, volume)
	return cachedTime(c, k, func() (sim.Time, error) { return splitRun(cfg, volume, parts) })
}

func splitRun(cfg *machine.Config, volume int64, parts int) (sim.Time, error) {
	var elapsed sim.Time
	heap := int(volume) + 8*parts + 64
	j, err := shmem.NewJob(cfg, 2, heap)
	if err != nil {
		return 0, err
	}
	err = j.Launch(func(c *shmem.Ctx) {
		switch c.MyPE() {
		case 0:
			c.Barrier()
			per := volume / int64(parts)
			for i := 0; i < parts; i++ {
				sz := per
				if i == parts-1 {
					sz = volume - per*int64(parts-1)
				}
				c.PutSignalNBICh(1, int(per)*i, make([]byte, sz), int(volume)+8*i, 1, i)
			}
			c.Quiet()
		case 1:
			sigs := make([]int, parts)
			for i := range sigs {
				sigs[i] = int(volume) + 8*i
			}
			c.Barrier()
			start := c.Now()
			c.WaitUntilAll(sigs, 1)
			elapsed = c.Now() - start
		}
	})
	if err != nil {
		return 0, err
	}
	return elapsed, nil
}

// Samples converts measured points into fitter input.
func (r *Result) Samples() []loggp.Sample {
	out := make([]loggp.Sample, len(r.Points))
	for i, p := range r.Points {
		out[i] = loggp.Sample{N: p.N, Bytes: p.Bytes, Elapsed: p.Elapsed}
	}
	return out
}

// Series groups the points into one plot series per msg/sync value
// (x = message size, y = GB/s), the layout of Figs 1, 3 and 4.
func (r *Result) Series() []plot.Series {
	byN := map[int]*plot.Series{}
	var order []int
	for _, p := range r.Points {
		s, ok := byN[p.N]
		if !ok {
			s = &plot.Series{Name: fmt.Sprintf("%s %d msg/sync", r.Transport, p.N)}
			byN[p.N] = s
			order = append(order, p.N)
		}
		s.X = append(s.X, float64(p.Bytes))
		s.Y = append(s.Y, p.GBs)
	}
	out := make([]plot.Series, 0, len(order))
	for _, n := range order {
		out = append(out, plot.SortedByX(*byN[n]))
	}
	return out
}

// MaxGBs returns the best bandwidth in the sweep.
func (r *Result) MaxGBs() float64 {
	best := 0.0
	for _, p := range r.Points {
		if p.GBs > best {
			best = p.GBs
		}
	}
	return best
}

// At returns the measured point for (n, bytes), ok=false if absent.
// Lookups go through a lazily built (n, bytes) -> index map, rebuilt
// whenever Points has grown since the last call; like the rest of
// Result's lazy state it is not safe for concurrent first use. When
// the same (n, bytes) pair appears more than once the first point
// wins, matching the original linear scan.
//
// Points is exported and callers may rewrite entries in place, which
// a length check alone cannot see. A hit is therefore verified
// against the stored point and a miss falls back to a linear scan;
// either inconsistency triggers a rebuild, so At never serves a
// point that no longer matches its key.
func (r *Result) At(n int, bytes int64) (Point, bool) {
	if r.index == nil || r.indexedLen != len(r.Points) {
		r.rebuildIndex()
	}
	k := pointKey{n, bytes}
	if i, ok := r.index[k]; ok {
		if p := r.Points[i]; p.N == n && p.Bytes == bytes {
			return p, true
		}
		r.rebuildIndex()
		if i, ok := r.index[k]; ok {
			return r.Points[i], true
		}
		return Point{}, false
	}
	for _, p := range r.Points {
		if p.N == n && p.Bytes == bytes {
			r.rebuildIndex()
			return p, true
		}
	}
	return Point{}, false
}

func (r *Result) rebuildIndex() {
	r.index = make(map[pointKey]int, len(r.Points))
	for i, p := range r.Points {
		k := pointKey{p.N, p.Bytes}
		if _, dup := r.index[k]; !dup {
			r.index[k] = i
		}
	}
	r.indexedLen = len(r.Points)
}
