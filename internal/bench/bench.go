// Package bench is the microbenchmark harness behind the paper's
// bandwidth figures: sustained bandwidth as a function of message
// size and messages per synchronization for two-sided MPI, one-sided
// MPI, and GPU-initiated put-with-signal (Figs 1, 3, 4), atomic
// compare-and-swap latencies (§III-C), and the message-splitting
// experiment (Fig 10). Every point is measured by running the actual
// simulated stack, exactly as the paper measured its dots on real
// machines; the fitted LogGP parameters then draw the ceilings.
package bench

import (
	"fmt"

	"msgroofline/internal/loggp"
	"msgroofline/internal/machine"
	"msgroofline/internal/mpi"
	"msgroofline/internal/plot"
	"msgroofline/internal/shmem"
	"msgroofline/internal/sim"
)

// Point is one measured sweep sample: a window of N messages of Bytes
// each completed in Elapsed, achieving GBs of sustained bandwidth.
type Point struct {
	N       int
	Bytes   int64
	Elapsed sim.Time
	GBs     float64
}

// Result is a sweep on one machine/transport.
type Result struct {
	Machine   string
	Transport string
	Points    []Point
}

// DefaultNs is the msg/sync sweep used by the figures.
func DefaultNs() []int { return []int{1, 4, 16, 64, 256, 1024} }

// DefaultSizes is the message-size sweep (8 B .. 1 MiB).
func DefaultSizes() []int64 {
	var out []int64
	for b := int64(8); b <= 1<<20; b *= 4 {
		out = append(out, b)
	}
	return out
}

func point(n int, b int64, elapsed sim.Time) Point {
	p := Point{N: n, Bytes: b, Elapsed: elapsed}
	if elapsed > 0 {
		p.GBs = float64(n) * float64(b) / elapsed.Seconds() / 1e9
	}
	return p
}

// farPair picks the representative communicating pair on a machine:
// the first rank and the last, which the catalog places on different
// sockets/islands whenever the machine has more than one.
func farPair(ranks int) (int, int) { return 0, ranks - 1 }

// SweepTwoSided measures a two-sided MPI window: the receiver posts N
// nonblocking receives, the sender issues N nonblocking sends, and
// the window closes at the receiver's Waitall. Both ranks synchronize
// on a barrier before timing.
func SweepTwoSided(cfg *machine.Config, ranks int, ns []int, sizes []int64) (*Result, error) {
	res := &Result{Machine: cfg.Name, Transport: machine.TwoSided.String()}
	src, dst := farPair(ranks)
	for _, n := range ns {
		for _, b := range sizes {
			var elapsed sim.Time
			c, err := mpi.NewComm(cfg, ranks)
			if err != nil {
				return nil, err
			}
			n, b := n, b
			err = c.Launch(func(r *mpi.Rank) {
				switch r.Rank() {
				case src:
					r.Barrier()
					payload := make([]byte, b)
					for i := 0; i < n; i++ {
						r.Isend(dst, i, payload)
					}
				case dst:
					reqs := make([]*mpi.Request, n)
					for i := 0; i < n; i++ {
						reqs[i] = r.Irecv(src, i)
					}
					r.Barrier()
					start := r.Now()
					r.Waitall(reqs)
					elapsed = r.Now() - start
				default:
					r.Barrier()
				}
			})
			if err != nil {
				return nil, fmt.Errorf("bench: two-sided %s n=%d B=%d: %w", cfg.Name, n, b, err)
			}
			res.Points = append(res.Points, point(n, b, elapsed))
		}
	}
	return res, nil
}

// SweepOneSided measures a one-sided MPI window using the paper's
// operation budget of four one-sided calls per message: for each
// message a Put of the data, a local flush, a Put of the signal word,
// and a local flush; the window closes with remote flushes and the
// receiver observing every signal (its Listing-1 acknowledgment loop
// is exercised by the SpTRSV workload; here the origin-side flush
// bounds the window as in the flood-style sweep).
func SweepOneSided(cfg *machine.Config, ranks int, ns []int, sizes []int64) (*Result, error) {
	res := &Result{Machine: cfg.Name, Transport: machine.OneSided.String()}
	src, dst := farPair(ranks)
	for _, n := range ns {
		for _, b := range sizes {
			var elapsed sim.Time
			c, err := mpi.NewComm(cfg, ranks)
			if err != nil {
				return nil, err
			}
			data, err := c.NewWin(int(b))
			if err != nil {
				return nil, err
			}
			sig, err := c.NewWin(8 * n)
			if err != nil {
				return nil, err
			}
			n, b := n, b
			one := []byte{1, 0, 0, 0, 0, 0, 0, 0}
			err = c.Launch(func(r *mpi.Rank) {
				if r.Rank() != src {
					r.Barrier()
					return
				}
				r.Barrier()
				payload := make([]byte, b)
				start := r.Now()
				for i := 0; i < n; i++ {
					r.Put(data, dst, 0, payload)
					r.FlushLocal(data, dst)
					r.Put(sig, dst, 8*i, one)
					r.FlushLocal(sig, dst)
				}
				r.Flush(data, dst)
				r.Flush(sig, dst)
				elapsed = r.Now() - start
			})
			if err != nil {
				return nil, fmt.Errorf("bench: one-sided %s n=%d B=%d: %w", cfg.Name, n, b, err)
			}
			res.Points = append(res.Points, point(n, b, elapsed))
		}
	}
	return res, nil
}

// SweepOneSidedStrict measures the strict per-message 4-op protocol
// (Put, Flush, Put(signal), Flush — every flush waiting for remote
// completion) that SpTRSV must use for per-message notification. This
// is the 5 us/message cost of Fig 6b and the reason one-sided SpTRSV
// loses (§III-B).
func SweepOneSidedStrict(cfg *machine.Config, ranks int, ns []int, sizes []int64) (*Result, error) {
	res := &Result{Machine: cfg.Name, Transport: "one-sided-strict"}
	src, dst := farPair(ranks)
	for _, n := range ns {
		for _, b := range sizes {
			var elapsed sim.Time
			c, err := mpi.NewComm(cfg, ranks)
			if err != nil {
				return nil, err
			}
			data, err := c.NewWin(int(b))
			if err != nil {
				return nil, err
			}
			sig, err := c.NewWin(8 * n)
			if err != nil {
				return nil, err
			}
			n, b := n, b
			one := []byte{1, 0, 0, 0, 0, 0, 0, 0}
			err = c.Launch(func(r *mpi.Rank) {
				if r.Rank() != src {
					r.Barrier()
					return
				}
				r.Barrier()
				payload := make([]byte, b)
				start := r.Now()
				for i := 0; i < n; i++ {
					r.Put(data, dst, 0, payload)
					r.Flush(data, dst)
					r.Put(sig, dst, 8*i, one)
					r.Flush(sig, dst)
				}
				elapsed = r.Now() - start
			})
			if err != nil {
				return nil, fmt.Errorf("bench: strict one-sided %s n=%d B=%d: %w", cfg.Name, n, b, err)
			}
			res.Points = append(res.Points, point(n, b, elapsed))
		}
	}
	return res, nil
}

// SweepShmemPutSignal measures GPU-initiated put-with-signal windows
// (Fig 4): the sender PE issues N fused put+signal operations, the
// receiver waits until all N signals land, and the window closes at
// the receiver.
func SweepShmemPutSignal(cfg *machine.Config, npes int, ns []int, sizes []int64) (*Result, error) {
	res := &Result{Machine: cfg.Name, Transport: machine.GPUShmem.String()}
	src, dst := farPair(npes)
	for _, n := range ns {
		for _, b := range sizes {
			var elapsed sim.Time
			heap := int(b) + 8*n + 64
			j, err := shmem.NewJob(cfg, npes, heap)
			if err != nil {
				return nil, err
			}
			n, b := n, b
			err = j.Launch(func(c *shmem.Ctx) {
				switch c.MyPE() {
				case src:
					c.Barrier()
					payload := make([]byte, b)
					for i := 0; i < n; i++ {
						c.PutSignalNBI(dst, 0, payload, int(b)+8*i, 1)
					}
					c.Quiet()
				case dst:
					sigs := make([]int, n)
					for i := range sigs {
						sigs[i] = int(b) + 8*i
					}
					c.Barrier()
					start := c.Now()
					c.WaitUntilAll(sigs, 1)
					elapsed = c.Now() - start
				default:
					c.Barrier()
				}
			})
			if err != nil {
				return nil, fmt.Errorf("bench: shmem %s n=%d B=%d: %w", cfg.Name, n, b, err)
			}
			res.Points = append(res.Points, point(n, b, elapsed))
		}
	}
	return res, nil
}

// CASLatency measures the round-trip time of a GPU atomic
// compare-and-swap from PE 0 to dst (Fig 4 / §III-C), averaged over
// reps back-to-back operations.
func CASLatency(cfg *machine.Config, npes, dst, reps int) (sim.Time, error) {
	j, err := shmem.NewJob(cfg, npes, 64)
	if err != nil {
		return 0, err
	}
	var total sim.Time
	err = j.Launch(func(c *shmem.Ctx) {
		if c.MyPE() != 0 {
			return
		}
		start := c.Now()
		for i := 0; i < reps; i++ {
			c.AtomicCompareSwap(dst, 0, uint64(i), uint64(i+1))
		}
		total = c.Now() - start
	})
	if err != nil {
		return 0, err
	}
	return total / sim.Time(reps), nil
}

// OneSidedCASLatency measures the CPU one-sided MPI_Compare_and_swap
// round trip (the 2 us / 500K GUPS figure of §III-C).
func OneSidedCASLatency(cfg *machine.Config, ranks, dst, reps int) (sim.Time, error) {
	c, err := mpi.NewComm(cfg, ranks)
	if err != nil {
		return 0, err
	}
	w, err := c.NewWin(64)
	if err != nil {
		return 0, err
	}
	var total sim.Time
	err = c.Launch(func(r *mpi.Rank) {
		if r.Rank() != 0 {
			return
		}
		start := r.Now()
		for i := 0; i < reps; i++ {
			r.CompareAndSwap(w, dst, 0, uint64(i), uint64(i+1))
		}
		total = r.Now() - start
	})
	if err != nil {
		return 0, err
	}
	return total / sim.Time(reps), nil
}

// SplitPoint is one Fig-10 measurement: a message volume sent whole
// vs split into `Parts` channel-pinned sub-messages.
type SplitPoint struct {
	Volume  int64
	Whole   sim.Time
	Split   sim.Time
	Speedup float64
}

// SweepSplit measures the Fig-10 experiment on a GPU machine: for
// each volume, send it as one put-with-signal versus `parts` puts on
// distinct injection channels, receiver waiting for all signals.
func SweepSplit(cfg *machine.Config, parts int, volumes []int64) ([]SplitPoint, error) {
	var out []SplitPoint
	for _, v := range volumes {
		whole, err := splitRun(cfg, v, 1)
		if err != nil {
			return nil, err
		}
		split, err := splitRun(cfg, v, parts)
		if err != nil {
			return nil, err
		}
		sp := SplitPoint{Volume: v, Whole: whole, Split: split}
		if split > 0 {
			sp.Speedup = float64(whole) / float64(split)
		}
		out = append(out, sp)
	}
	return out, nil
}

func splitRun(cfg *machine.Config, volume int64, parts int) (sim.Time, error) {
	var elapsed sim.Time
	heap := int(volume) + 8*parts + 64
	j, err := shmem.NewJob(cfg, 2, heap)
	if err != nil {
		return 0, err
	}
	err = j.Launch(func(c *shmem.Ctx) {
		switch c.MyPE() {
		case 0:
			c.Barrier()
			per := volume / int64(parts)
			for i := 0; i < parts; i++ {
				sz := per
				if i == parts-1 {
					sz = volume - per*int64(parts-1)
				}
				c.PutSignalNBICh(1, int(per)*i, make([]byte, sz), int(volume)+8*i, 1, i)
			}
			c.Quiet()
		case 1:
			sigs := make([]int, parts)
			for i := range sigs {
				sigs[i] = int(volume) + 8*i
			}
			c.Barrier()
			start := c.Now()
			c.WaitUntilAll(sigs, 1)
			elapsed = c.Now() - start
		}
	})
	if err != nil {
		return 0, err
	}
	return elapsed, nil
}

// Samples converts measured points into fitter input.
func (r *Result) Samples() []loggp.Sample {
	out := make([]loggp.Sample, len(r.Points))
	for i, p := range r.Points {
		out[i] = loggp.Sample{N: p.N, Bytes: p.Bytes, Elapsed: p.Elapsed}
	}
	return out
}

// Series groups the points into one plot series per msg/sync value
// (x = message size, y = GB/s), the layout of Figs 1, 3 and 4.
func (r *Result) Series() []plot.Series {
	byN := map[int]*plot.Series{}
	var order []int
	for _, p := range r.Points {
		s, ok := byN[p.N]
		if !ok {
			s = &plot.Series{Name: fmt.Sprintf("%s %d msg/sync", r.Transport, p.N)}
			byN[p.N] = s
			order = append(order, p.N)
		}
		s.X = append(s.X, float64(p.Bytes))
		s.Y = append(s.Y, p.GBs)
	}
	out := make([]plot.Series, 0, len(order))
	for _, n := range order {
		out = append(out, plot.SortedByX(*byN[n]))
	}
	return out
}

// MaxGBs returns the best bandwidth in the sweep.
func (r *Result) MaxGBs() float64 {
	best := 0.0
	for _, p := range r.Points {
		if p.GBs > best {
			best = p.GBs
		}
	}
	return best
}

// At returns the measured point for (n, bytes), ok=false if absent.
func (r *Result) At(n int, bytes int64) (Point, bool) {
	for _, p := range r.Points {
		if p.N == n && p.Bytes == bytes {
			return p, true
		}
	}
	return Point{}, false
}
