package bench

import (
	"reflect"
	"testing"

	"msgroofline/internal/loggp"
	"msgroofline/internal/machine"
	"msgroofline/internal/pointcache"
	"msgroofline/internal/sim"
)

func cfg(t *testing.T, name string) *machine.Config {
	t.Helper()
	c, err := machine.Get(name)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func TestTwoSidedSweepShape(t *testing.T) {
	r, err := Sweep(cfg(t, "perlmutter-cpu"), Spec{Transport: TwoSided, Ranks: 2, Ns: []int{1, 16, 256}, Sizes: []int64{8, 4096, 262144}})
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Points) != 9 {
		t.Fatalf("points = %d", len(r.Points))
	}
	// Bandwidth grows with msg/sync at fixed size (latency overlap).
	p1, _ := r.At(1, 8)
	p256, _ := r.At(256, 8)
	if p256.GBs <= p1.GBs {
		t.Fatalf("no overlap gain: n=1 %.3f vs n=256 %.3f GB/s", p1.GBs, p256.GBs)
	}
	// Bandwidth grows with size at fixed n.
	s8, _ := r.At(16, 8)
	s256k, _ := r.At(16, 262144)
	if s256k.GBs <= s8.GBs {
		t.Fatal("no size scaling")
	}
	// Large windows of large messages approach (but never exceed) IF peak.
	best := r.MaxGBs()
	if best < 20 || best > 32.1 {
		t.Fatalf("peak sweep bandwidth = %.1f GB/s, want near 32", best)
	}
}

func TestTwoSidedSingleMessageLatency(t *testing.T) {
	r, err := Sweep(cfg(t, "perlmutter-cpu"), Spec{Transport: TwoSided, Ranks: 2, Ns: []int{1}, Sizes: []int64{8}})
	if err != nil {
		t.Fatal(err)
	}
	el := r.Points[0].Elapsed.Microseconds()
	// Measured from the receiver's Waitall: ~soft+wire latency.
	if el < 2.0 || el > 4.5 {
		t.Fatalf("1-msg window = %.2fus", el)
	}
}

func TestOneSidedBeatsTwoSidedAtHighConcurrency(t *testing.T) {
	// Fig 3a: on Cray MPI, one-sided overtakes two-sided as msg/sync
	// grows.
	pm := cfg(t, "perlmutter-cpu")
	ns := []int{1, 256}
	sizes := []int64{64}
	two, err := Sweep(pm, Spec{Transport: TwoSided, Ranks: 2, Ns: ns, Sizes: sizes})
	if err != nil {
		t.Fatal(err)
	}
	one, err := Sweep(pm, Spec{Transport: OneSided, Ranks: 2, Ns: ns, Sizes: sizes})
	if err != nil {
		t.Fatal(err)
	}
	t2, _ := two.At(256, 64)
	t1, _ := one.At(256, 64)
	if t1.GBs <= t2.GBs {
		t.Fatalf("at 256 msg/sync one-sided %.4f should beat two-sided %.4f GB/s", t1.GBs, t2.GBs)
	}
}

func TestSpectrumOneSidedAlwaysWorse(t *testing.T) {
	// Fig 3c: Summit Spectrum MPI one-sided is consistently below
	// two-sided.
	sm := cfg(t, "summit-cpu")
	ns := []int{1, 16, 256}
	sizes := []int64{8, 4096, 262144}
	two, err := Sweep(sm, Spec{Transport: TwoSided, Ranks: 2, Ns: ns, Sizes: sizes})
	if err != nil {
		t.Fatal(err)
	}
	one, err := Sweep(sm, Spec{Transport: OneSided, Ranks: 2, Ns: ns, Sizes: sizes})
	if err != nil {
		t.Fatal(err)
	}
	for _, n := range ns {
		for _, b := range sizes {
			p2, _ := two.At(n, b)
			p1, _ := one.At(n, b)
			if p1.GBs > p2.GBs*1.02 {
				t.Fatalf("n=%d B=%d: Spectrum one-sided %.4f beats two-sided %.4f", n, b, p1.GBs, p2.GBs)
			}
		}
	}
}

func TestStrictProtocolCost(t *testing.T) {
	// Fig 6b: strict 4-op protocol costs ~5us per message and does
	// not improve with msg/sync (each message is 2 serialized RTTs).
	r, err := Sweep(cfg(t, "perlmutter-cpu"), Spec{Transport: OneSidedStrict, Ranks: 2, Ns: []int{1, 16}, Sizes: []int64{400}})
	if err != nil {
		t.Fatal(err)
	}
	p1, _ := r.At(1, 400)
	if us := p1.Elapsed.Microseconds(); us < 4.2 || us > 6.0 {
		t.Fatalf("strict 1-msg = %.2fus, want ~5us", us)
	}
	p16, _ := r.At(16, 400)
	per := p16.Elapsed.Microseconds() / 16
	if per < 3.5 {
		t.Fatalf("strict per-message at n=16 = %.2fus; should not amortize below ~2 RTTs", per)
	}
}

func TestShmemSweep(t *testing.T) {
	r, err := Sweep(cfg(t, "perlmutter-gpu"), Spec{Transport: ShmemPutSignal, Ranks: 2, Ns: []int{1, 64}, Sizes: []int64{8, 65536}})
	if err != nil {
		t.Fatal(err)
	}
	p1, _ := r.At(1, 8)
	if us := p1.Elapsed.Microseconds(); us < 3.4 || us > 4.8 {
		t.Fatalf("GPU 1-msg = %.2fus, want ~4us", us)
	}
	p64, _ := r.At(64, 65536)
	if p64.GBs < 15 {
		t.Fatalf("GPU 64x64KiB = %.1f GB/s, want substantial", p64.GBs)
	}
	// GPU sustained bandwidth beats the CPU counterpart (§II).
	cpu, err := Sweep(cfg(t, "perlmutter-cpu"), Spec{Transport: TwoSided, Ranks: 2, Ns: []int{64}, Sizes: []int64{65536}})
	if err != nil {
		t.Fatal(err)
	}
	c64, _ := cpu.At(64, 65536)
	if p64.GBs <= c64.GBs {
		t.Fatalf("GPU %.1f GB/s should exceed CPU %.1f GB/s", p64.GBs, c64.GBs)
	}
}

func TestCASLatencies(t *testing.T) {
	// Paper §III-C: Perlmutter GPU 0.8us; Summit 1.0 intra / 1.6
	// cross; CPU one-sided ~2us.
	pg, err := CASLatency(cfg(t, "perlmutter-gpu"), 4, 1, 10)
	if err != nil {
		t.Fatal(err)
	}
	if us := pg.Microseconds(); us < 0.6 || us > 1.0 {
		t.Fatalf("Perlmutter GPU CAS = %.2fus", us)
	}
	in, _ := CASLatency(cfg(t, "summit-gpu"), 6, 1, 10)
	cross, _ := CASLatency(cfg(t, "summit-gpu"), 6, 3, 10)
	if cross <= in {
		t.Fatalf("cross-socket CAS (%v) should exceed in-island (%v)", cross, in)
	}
	cpu, err := OneSidedCASLatency(cfg(t, "perlmutter-cpu"), 2, 1, 10)
	if err != nil {
		t.Fatal(err)
	}
	if us := cpu.Microseconds(); us < 1.6 || us > 2.5 {
		t.Fatalf("CPU one-sided CAS = %.2fus, want ~2us", us)
	}
}

func TestSweepSplitFig10(t *testing.T) {
	volumes := []int64{1024, 16384, 131072, 1 << 20}
	pts, err := SweepSplit(cfg(t, "perlmutter-gpu"), 4, volumes)
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != len(volumes) {
		t.Fatalf("points = %d", len(pts))
	}
	// Small volumes: no benefit. Large (>=131KB): ~2.9x (paper).
	if pts[0].Speedup > 1.3 {
		t.Fatalf("1KiB split speedup = %.2f, want ~1", pts[0].Speedup)
	}
	big := pts[len(pts)-1].Speedup
	if big < 2.3 || big > 4.0 {
		t.Fatalf("1MiB split speedup = %.2f, want ~2.9x", big)
	}
	at131k := pts[2].Speedup
	if at131k < 1.5 {
		t.Fatalf("131KiB split speedup = %.2f, want meaningful gain", at131k)
	}
}

func TestFitFromMeasuredSweep(t *testing.T) {
	// The measured two-sided sweep must be well explained by a LogGP
	// fit (this is how the paper draws its ceilings).
	r, err := Sweep(cfg(t, "perlmutter-cpu"), Spec{Transport: TwoSided, Ranks: 2, Ns: DefaultNs(), Sizes: DefaultSizes()})
	if err != nil {
		t.Fatal(err)
	}
	p, err := loggp.Fit(r.Samples(), 2, 50*sim.Nanosecond)
	if err != nil {
		t.Fatal(err)
	}
	if fe := loggp.FitError(p, r.Samples()); fe > 0.35 {
		t.Fatalf("fit RMS relative error = %.2f", fe)
	}
	// Fitted bandwidth near the IF link.
	if p.Bandwidth < 24e9 || p.Bandwidth > 40e9 {
		t.Fatalf("fitted bandwidth = %.1f GB/s", p.Bandwidth/1e9)
	}
	// Fitted latency in the microsecond range.
	if p.L < sim.Microsecond || p.L > 6*sim.Microsecond {
		t.Fatalf("fitted L = %v", p.L)
	}
}

func TestSweepDeterministicAcrossJobs(t *testing.T) {
	// The same sweep run sequentially and on a parallel pool must
	// produce bit-identical results: every point is an isolated
	// simulation and the scheduler reports in submission order.
	ns := []int{1, 16, 256}
	sizes := []int64{8, 4096, 262144}
	cases := []struct {
		transport Transport
		machine   string
	}{
		{TwoSided, "perlmutter-cpu"},
		{OneSided, "frontier-cpu"},
		{OneSidedStrict, "summit-cpu"},
		{ShmemPutSignal, "perlmutter-gpu"},
	}
	for _, c := range cases {
		m := cfg(t, c.machine)
		seq, err := Sweep(m, Spec{Transport: c.transport, Ns: ns, Sizes: sizes, Jobs: 1})
		if err != nil {
			t.Fatalf("%v sequential: %v", c.transport, err)
		}
		par, err := Sweep(m, Spec{Transport: c.transport, Ns: ns, Sizes: sizes, Jobs: 8})
		if err != nil {
			t.Fatalf("%v parallel: %v", c.transport, err)
		}
		if len(seq.Points) != len(ns)*len(sizes) {
			t.Fatalf("%v: %d points", c.transport, len(seq.Points))
		}
		if !reflect.DeepEqual(seq.Points, par.Points) {
			t.Fatalf("%v on %s: parallel sweep diverged\nseq: %+v\npar: %+v",
				c.transport, c.machine, seq.Points, par.Points)
		}
		if seq.Machine != par.Machine || seq.Transport != par.Transport {
			t.Fatalf("%v: metadata diverged", c.transport)
		}
		if par.Sched == nil || par.Sched.Host == nil || par.Sched.Host.Jobs != len(seq.Points) {
			t.Fatalf("%v: missing sched stats: %+v", c.transport, par.Sched)
		}
	}
}

func TestSweepSpecDefaults(t *testing.T) {
	// Zero values fill in the paper grids, 2 ranks, sequential jobs.
	r, err := Sweep(cfg(t, "perlmutter-cpu"), Spec{Transport: TwoSided, Ns: []int{1}, Sizes: []int64{8}})
	if err != nil {
		t.Fatal(err)
	}
	if r.Transport != "two-sided" || len(r.Points) != 1 {
		t.Fatalf("defaulted sweep: %+v", r)
	}
	if _, err := Sweep(cfg(t, "perlmutter-cpu"), Spec{Transport: TwoSided, Ranks: 1}); err == nil {
		t.Fatal("1-rank sweep should error")
	}
	if _, err := Sweep(cfg(t, "perlmutter-cpu"), Spec{Transport: Transport(99), Ns: []int{1}, Sizes: []int64{8}}); err == nil {
		t.Fatal("unknown transport should error")
	}
}

func TestLegacyWrappersMatchSweep(t *testing.T) {
	// The deprecated entry points are thin shims over Sweep.
	m := cfg(t, "perlmutter-cpu")
	legacy, err := Sweep(m, Spec{Transport: TwoSided, Ranks: 2, Ns: []int{16}, Sizes: []int64{4096}})
	if err != nil {
		t.Fatal(err)
	}
	spec, err := Sweep(m, Spec{Transport: TwoSided, Ns: []int{16}, Sizes: []int64{4096}})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(legacy.Points, spec.Points) || legacy.Transport != spec.Transport {
		t.Fatalf("wrapper diverged: %+v vs %+v", legacy, spec)
	}
}

func TestTransportNames(t *testing.T) {
	for _, tr := range []Transport{TwoSided, OneSided, OneSidedStrict, ShmemPutSignal} {
		got, err := ParseTransport(tr.String())
		if err != nil || got != tr {
			t.Fatalf("round trip %v: got %v, err %v", tr, got, err)
		}
	}
	if _, err := ParseTransport("carrier-pigeon"); err == nil {
		t.Fatal("want parse error")
	}
}

func TestAtIndexTracksAppends(t *testing.T) {
	r := &Result{}
	r.Points = append(r.Points, Point{N: 1, Bytes: 8, GBs: 1})
	if p, ok := r.At(1, 8); !ok || p.GBs != 1 {
		t.Fatalf("At(1,8) = %+v, %v", p, ok)
	}
	// Growing Points after a lookup must invalidate the lazy index.
	r.Points = append(r.Points, Point{N: 2, Bytes: 16, GBs: 2})
	if p, ok := r.At(2, 16); !ok || p.GBs != 2 {
		t.Fatalf("At(2,16) after append = %+v, %v", p, ok)
	}
	// Duplicate keys resolve to the first point, like the old scan.
	r.Points = append(r.Points, Point{N: 1, Bytes: 8, GBs: 99})
	if p, _ := r.At(1, 8); p.GBs != 1 {
		t.Fatalf("duplicate key should keep first point, got %+v", p)
	}
}

func TestAtIndexSurvivesInPlaceReplacement(t *testing.T) {
	r := &Result{Points: []Point{
		{N: 1, Bytes: 8, GBs: 1},
		{N: 2, Bytes: 16, GBs: 2},
	}}
	if _, ok := r.At(1, 8); !ok {
		t.Fatal("warm-up lookup failed")
	}
	// Rewrite Points without changing the length: the lazy index's
	// length check cannot see this, so At must self-heal.
	r.Points[0] = Point{N: 7, Bytes: 64, GBs: 7}
	r.Points[1] = Point{N: 2, Bytes: 16, GBs: 22}
	if p, ok := r.At(7, 64); !ok || p.GBs != 7 {
		t.Fatalf("At(7,64) after replacement = %+v, %v", p, ok)
	}
	if p, ok := r.At(2, 16); !ok || p.GBs != 22 {
		t.Fatalf("At(2,16) served a stale point: %+v, %v", p, ok)
	}
	if _, ok := r.At(1, 8); ok {
		t.Fatal("At(1,8) still hits after its point was replaced")
	}
}

func TestSweepCacheHitsMatchColdRun(t *testing.T) {
	// A warm sweep served entirely from cache must be byte-identical
	// to the cold run, and the per-sweep counters must account every
	// point.
	m := cfg(t, "perlmutter-cpu")
	c, err := pointcache.New(pointcache.Mem, "")
	if err != nil {
		t.Fatal(err)
	}
	spec := Spec{Transport: OneSided, Ns: []int{1, 16}, Sizes: []int64{8, 4096}, Cache: c}
	cold, err := Sweep(m, spec)
	if err != nil {
		t.Fatal(err)
	}
	cs := cold.Sched.Cache
	if cs.Lookups != 4 || cs.Hits != 0 || cs.Misses != 4 || cs.Stores != 4 {
		t.Fatalf("cold counters: %+v", cs)
	}
	warm, err := Sweep(m, spec)
	if err != nil {
		t.Fatal(err)
	}
	ws := warm.Sched.Cache
	if ws.Lookups != 4 || ws.Hits != 4 || ws.MemHits != 4 || ws.Misses != 0 || ws.Stores != 0 {
		t.Fatalf("warm counters: %+v", ws)
	}
	if ws.BytesSaved != 1*8+16*8+1*4096+16*4096 {
		t.Fatalf("bytes saved = %d", ws.BytesSaved)
	}
	if !reflect.DeepEqual(cold.Points, warm.Points) {
		t.Fatalf("warm sweep diverged\ncold: %+v\nwarm: %+v", cold.Points, warm.Points)
	}
	// Uncached sweeps match too (cache never changes simulated output).
	off, err := Sweep(m, Spec{Transport: OneSided, Ns: []int{1, 16}, Sizes: []int64{8, 4096}})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(off.Points, cold.Points) {
		t.Fatal("cached sweep diverged from uncached")
	}
	if off.Sched.Cache.Lookups != 0 {
		t.Fatalf("uncached sweep recorded cache traffic: %+v", off.Sched.Cache)
	}
}

func TestRunStatsHostFields(t *testing.T) {
	// v1 consumers read scheduler fields through the explicit Host
	// split; the flat promoted aliases are gone.
	r, err := Sweep(cfg(t, "perlmutter-cpu"), Spec{Transport: TwoSided, Ns: []int{1, 16}, Sizes: []int64{8}, Jobs: 2})
	if err != nil {
		t.Fatal(err)
	}
	if r.Sched.Host == nil {
		t.Fatal("no host stats")
	}
	if r.Sched.Host.Jobs != 2 {
		t.Fatalf("jobs = %d", r.Sched.Host.Jobs)
	}
	if r.Sched.Host.Wall <= 0 {
		t.Fatalf("wall = %v", r.Sched.Host.Wall)
	}
}

func TestCachedKernelsMatchUncached(t *testing.T) {
	// CAS latencies and split runs memoize through the same cache and
	// must return identical times cold, warm, and uncached.
	c, err := pointcache.New(pointcache.Mem, "")
	if err != nil {
		t.Fatal(err)
	}
	pg := cfg(t, "perlmutter-gpu")
	plain, err := CASLatency(pg, 4, 1, 10)
	if err != nil {
		t.Fatal(err)
	}
	cold, err := CASLatencyCached(c, pg, 4, 1, 10)
	if err != nil {
		t.Fatal(err)
	}
	warm, err := CASLatencyCached(c, pg, 4, 1, 10)
	if err != nil {
		t.Fatal(err)
	}
	if plain != cold || cold != warm {
		t.Fatalf("CAS diverged: plain %v cold %v warm %v", plain, cold, warm)
	}
	st := c.Stats()
	if st.Hits != 1 || st.Stores != 1 {
		t.Fatalf("CAS cache counters: %+v", st)
	}
	pc := cfg(t, "perlmutter-cpu")
	mplain, err := OneSidedCASLatency(pc, 2, 1, 10)
	if err != nil {
		t.Fatal(err)
	}
	mwarm, err := OneSidedCASLatencyCached(c, pc, 2, 1, 10)
	if err != nil {
		t.Fatal(err)
	}
	if mplain != mwarm {
		t.Fatalf("MPI CAS diverged: %v vs %v", mplain, mwarm)
	}
	vols := []int64{1024, 131072}
	sp, err := SweepSplit(pg, 4, vols)
	if err != nil {
		t.Fatal(err)
	}
	spc, err := SweepSplitCached(c, pg, 4, vols)
	if err != nil {
		t.Fatal(err)
	}
	spw, err := SweepSplitCached(c, pg, 4, vols)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(sp, spc) || !reflect.DeepEqual(spc, spw) {
		t.Fatalf("split runs diverged:\nplain %+v\ncold  %+v\nwarm  %+v", sp, spc, spw)
	}
}

func TestExpandPointsMatchesSweepOrder(t *testing.T) {
	m := cfg(t, "frontier-cpu")
	spec := Spec{Transport: OneSided, Ns: []int{1, 16}, Sizes: []int64{8, 512}}
	grid := ExpandPoints(m, spec)
	r, err := Sweep(m, spec)
	if err != nil {
		t.Fatal(err)
	}
	if len(grid) != len(r.Points) {
		t.Fatalf("grid %d vs points %d", len(grid), len(r.Points))
	}
	for i, ps := range grid {
		if ps.N != r.Points[i].N || ps.Bytes != r.Points[i].Bytes {
			t.Fatalf("point %d: grid (%d,%d) vs sweep (%d,%d)", i, ps.N, ps.Bytes, r.Points[i].N, r.Points[i].Bytes)
		}
		p, err := MeasurePoint(ps)
		if err != nil {
			t.Fatal(err)
		}
		if p != r.Points[i] {
			t.Fatalf("point %d: MeasurePoint %+v vs Sweep %+v", i, p, r.Points[i])
		}
	}
	// Defaulted ranks hash like explicit 2 so planner and sweep agree.
	zero := PointSpec{Machine: m, Transport: OneSided, N: 1, Bytes: 8}
	two := PointSpec{Machine: m, Transport: OneSided, Ranks: 2, N: 1, Bytes: 8}
	if zero.Key() != two.Key() {
		t.Fatal("Ranks 0 and 2 should share a key")
	}
	if _, err := MeasurePoint(PointSpec{Machine: m, Transport: OneSided, Ranks: 1, N: 1, Bytes: 8}); err == nil {
		t.Fatal("1-rank point should error")
	}
}

func TestSeriesGrouping(t *testing.T) {
	r := &Result{Transport: "t"}
	r.Points = []Point{
		{N: 1, Bytes: 8, GBs: 1},
		{N: 1, Bytes: 64, GBs: 2},
		{N: 10, Bytes: 8, GBs: 3},
	}
	ss := r.Series()
	if len(ss) != 2 {
		t.Fatalf("series = %d", len(ss))
	}
	if len(ss[0].X) != 2 || len(ss[1].X) != 1 {
		t.Fatalf("grouping wrong: %+v", ss)
	}
	if _, ok := r.At(5, 5); ok {
		t.Fatal("At should miss")
	}
}
