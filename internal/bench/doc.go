// Package bench is the microbenchmark harness behind the paper's
// bandwidth figures: sustained bandwidth as a function of message
// size and messages per synchronization for two-sided MPI, one-sided
// MPI, and GPU-initiated put-with-signal (Figs 1, 3, 4), atomic
// compare-and-swap latencies (§III-C), and the message-splitting
// experiment (Fig 10). Every point is measured by running the actual
// simulated stack, exactly as the paper measured its dots on real
// machines; the fitted LogGP parameters then draw the ceilings.
//
// The single driver is Sweep(cfg, Spec): it enumerates the (msg/sync,
// size) grid, runs every point as an isolated simulation on an
// internal/sched worker pool (Spec.Jobs wide), and collects points in
// grid order — so results are byte-identical at any job count. The
// callers name the protocol via Spec.Transport.
//
// # The v1 API surface
//
// This is the surviving, stable surface after the v1 cleanup; the
// deprecated per-transport entry points and the flat promoted
// scheduler aliases are gone.
//
//   - Sweep(cfg, Spec) -> *Result is the grid driver. Spec carries
//     Transport, Ranks, Ns, Sizes, Jobs, Cache, and Shards; every
//     knob except the grid itself (Transport/Ranks/Ns/Sizes) is
//     host-side and can never change simulated output.
//   - PointSpec / ExpandPoints / MeasurePoint are the point-level
//     API the dedup planner composes with; PointSpec.Key is the
//     content address (Shards deliberately excluded).
//   - Result.Sched is a *RunStats with exactly two sub-structs:
//     Host (*sched.Stats, worker-pool wall-time metadata) and Cache
//     (pointcache.Stats, hit/miss counters). Consumers name
//     Sched.Host.Jobs etc. explicitly — the pre-split promoted
//     fields (Sched.Jobs, Sched.Wall, ...) no longer exist.
//   - CASLatency / OneSidedCASLatency and their *Cached variants
//     measure the atomic probes; SweepSplit / SweepSplitCached run
//     the Fig 10 experiment; Baseline fits roofline ceilings.
//
// All stats carried on Result.Sched are measurement-host metadata:
// they vary run to run and must never be mixed into simulated output.
package bench
