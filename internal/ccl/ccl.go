// Package ccl is an NCCL/RCCL-style GPU collective communication
// library built on the device-initiated shmem layer — the paper's
// stated future work ("assessing other communication patterns and
// libraries, e.g., AI applications using NCCL", §V). It implements
// the bandwidth-optimal ring algorithms NCCL uses:
//
//   - ReduceScatter: P-1 ring steps, each moving 1/P of the vector;
//   - AllGather:     P-1 ring steps;
//   - AllReduce:     ReduceScatter + AllGather (2(P-1) steps, the
//     classic 2·(P-1)/P bandwidth bound);
//   - Broadcast:     pipelined ring with chunking.
//
// Payloads are float64 vectors. Every operation carries real data and
// is verified in tests against a locally computed reduction.
package ccl

import (
	"encoding/binary"
	"fmt"
	"math"

	"msgroofline/internal/shmem"
)

// Plan reserves the symmetric-heap region a communicator needs:
// staging buffers for in-flight chunks and signal slots per ring
// step. Create the plan first, size the shmem Job heap with
// HeapBytes, then Bind.
type Plan struct {
	job      *shmem.Job
	base     int // start of our heap region
	maxElems int
	npes     int

	chunkCap int // bytes per staging slot
	slots    int // number of staging slots
}

// NewPlan describes collectives over float64 vectors of up to
// maxElems elements across npes PEs.
func NewPlan(npes, maxElems int) (*Plan, error) {
	if npes < 1 {
		return nil, fmt.Errorf("ccl: npes = %d", npes)
	}
	if maxElems < 1 {
		return nil, fmt.Errorf("ccl: maxElems = %d", maxElems)
	}
	chunkElems := (maxElems + npes - 1) / npes
	return &Plan{
		maxElems: maxElems,
		npes:     npes,
		chunkCap: 8 * chunkElems,
		slots:    2 * npes, // reduce-scatter + allgather steps
	}, nil
}

// HeapBytes is the symmetric-heap space the plan needs.
func (p *Plan) HeapBytes() int {
	return p.slots*p.chunkCap + 8*p.slots
}

// Bind attaches the plan to a job, claiming [base, base+HeapBytes()).
func (p *Plan) Bind(job *shmem.Job, base int) error {
	if job == nil {
		return fmt.Errorf("ccl: nil job")
	}
	if job.NPEs() != p.npes {
		return fmt.Errorf("ccl: plan for %d PEs bound to %d-PE job", p.npes, job.NPEs())
	}
	if base < 0 {
		return fmt.Errorf("ccl: negative base offset")
	}
	p.job = job
	p.base = base
	return nil
}

func (p *Plan) stagingOff(slot int) int { return p.base + slot*p.chunkCap }
func (p *Plan) sigOff(slot int) int     { return p.base + p.slots*p.chunkCap + 8*slot }

// Ctx is one PE's handle on the communicator during a kernel.
type Ctx struct {
	plan *Plan
	sc   *shmem.Ctx
	seq  uint64
}

// NewCtx wraps a shmem context for collective calls. Each PE creates
// one inside the Launch body and must invoke the same sequence of
// collective operations.
func (p *Plan) NewCtx(sc *shmem.Ctx) *Ctx {
	return &Ctx{plan: p, sc: sc}
}

// chunkBounds splits n elements into npes contiguous chunks.
func chunkBounds(n, npes, chunk int) (lo, hi int) {
	per := (n + npes - 1) / npes
	lo = chunk * per
	hi = lo + per
	if lo > n {
		lo = n
	}
	if hi > n {
		hi = n
	}
	return lo, hi
}

func encode(v []float64) []byte {
	out := make([]byte, 8*len(v))
	for i, f := range v {
		binary.LittleEndian.PutUint64(out[8*i:], math.Float64bits(f))
	}
	return out
}

func decodeInto(dst []float64, b []byte) {
	for i := 0; i < len(dst) && 8*i+8 <= len(b); i++ {
		dst[i] = math.Float64frombits(binary.LittleEndian.Uint64(b[8*i:]))
	}
}

// ReduceScatter sums the data vectors of all PEs element-wise,
// leaving the fully reduced chunk (me+1) mod P in place, and returns
// that chunk's bounds [lo, hi) into the original vector. data is
// mutated: on return data[lo:hi] holds the fully reduced chunk.
func (c *Ctx) ReduceScatter(data []float64) (lo, hi int, err error) {
	p := c.plan
	np := p.npes
	if len(data) > p.maxElems {
		return 0, 0, fmt.Errorf("ccl: vector %d exceeds plan max %d", len(data), p.maxElems)
	}
	me := c.sc.MyPE()
	if np == 1 {
		return 0, len(data), nil
	}
	c.seq++
	right := (me + 1) % np
	for step := 0; step < np-1; step++ {
		sendChunk := (me - step + np) % np
		recvChunk := (me - step - 1 + np) % np
		slo, shi := chunkBounds(len(data), np, sendChunk)
		c.sc.PutSignalNBI(right, p.stagingOff(step), encode(data[slo:shi]), p.sigOff(step), c.seq)
		// Wait for the left neighbor's chunk for this step.
		c.sc.WaitUntilAll([]int{p.sigOff(step)}, c.seq)
		rlo, rhi := chunkBounds(len(data), np, recvChunk)
		in := make([]float64, rhi-rlo)
		decodeInto(in, c.sc.PE().Heap()[p.stagingOff(step):])
		for i := range in {
			data[rlo+i] += in[i]
		}
	}
	c.sc.Quiet()
	// Staging slots are reused by the next collective; make sure every
	// PE has consumed this call's chunks before anyone moves on.
	c.sc.Barrier()
	// After P-1 ring steps the fully reduced chunk is (me+1) mod P.
	lo, hi = chunkBounds(len(data), np, (me+1)%np)
	return lo, hi, nil
}

// AllGather distributes each PE's own chunk (chunk index = PE id) of
// data to every PE: on return the whole vector is complete everywhere.
// Only data[ownLo:ownHi] needs to be valid on entry.
func (c *Ctx) AllGather(data []float64) error {
	return c.allGather(data, 0)
}

// allGather runs the ring with each PE initially owning chunk
// (me+shift) mod P — shift 1 chains directly after ReduceScatter.
func (c *Ctx) allGather(data []float64, shift int) error {
	p := c.plan
	np := p.npes
	if len(data) > p.maxElems {
		return fmt.Errorf("ccl: vector %d exceeds plan max %d", len(data), p.maxElems)
	}
	if np == 1 {
		return nil
	}
	me := c.sc.MyPE()
	c.seq++
	right := (me + 1) % np
	for step := 0; step < np-1; step++ {
		// Step 0 sends my own chunk; step s forwards the chunk that
		// arrived at step s-1, which originated s PEs to the left.
		sendChunk := ((me+shift-step)%np + np) % np
		slot := np - 1 + step // distinct slots from ReduceScatter steps
		slo, shi := chunkBounds(len(data), np, sendChunk)
		c.sc.PutSignalNBI(right, p.stagingOff(slot), encode(data[slo:shi]), p.sigOff(slot), c.seq)
		c.sc.WaitUntilAll([]int{p.sigOff(slot)}, c.seq)
		recvChunk := (sendChunk - 1 + np) % np
		rlo, rhi := chunkBounds(len(data), np, recvChunk)
		decodeInto(data[rlo:rhi], c.sc.PE().Heap()[p.stagingOff(slot):])
	}
	c.sc.Quiet()
	c.sc.Barrier()
	return nil
}

// AllReduce sums the vectors of all PEs element-wise, leaving the full
// result on every PE (ring reduce-scatter + ring allgather).
func (c *Ctx) AllReduce(data []float64) error {
	if _, _, err := c.ReduceScatter(data); err != nil {
		return err
	}
	// ReduceScatter leaves the reduced chunk at (me+1) mod P.
	return c.allGather(data, 1)
}

// Broadcast sends root's vector to all PEs through a pipelined ring:
// the vector moves in chunkElems-sized pieces, so the pipeline hides
// all but the first hop's latency. data is overwritten on non-roots.
func (c *Ctx) Broadcast(root int, data []float64, chunkElems int) error {
	p := c.plan
	np := p.npes
	if len(data) > p.maxElems {
		return fmt.Errorf("ccl: vector %d exceeds plan max %d", len(data), p.maxElems)
	}
	if chunkElems < 1 || 8*chunkElems > p.chunkCap {
		return fmt.Errorf("ccl: chunkElems %d out of range (plan chunk capacity %d elems)", chunkElems, p.chunkCap/8)
	}
	if np == 1 {
		return nil
	}
	me := c.sc.MyPE()
	c.seq++
	vrank := (me - root + np) % np
	right := (me + 1) % np
	chunks := (len(data) + chunkElems - 1) / chunkElems
	// Chunks flow through the ring in groups of at most p.slots so a
	// fast sender can never overwrite a staging slot its neighbor has
	// not consumed; a barrier drains each group.
	for group := 0; group < chunks; group += p.slots {
		end := group + p.slots
		if end > chunks {
			end = chunks
		}
		for ch := group; ch < end; ch++ {
			lo := ch * chunkElems
			hi := lo + chunkElems
			if hi > len(data) {
				hi = len(data)
			}
			slot := ch % p.slots
			sig := c.seq*1000000 + uint64(ch) + 1
			if vrank != 0 {
				// Wait for this chunk from the left, then adopt it.
				c.sc.WaitUntilAll([]int{p.sigOff(slot)}, sig)
				decodeInto(data[lo:hi], c.sc.PE().Heap()[p.stagingOff(slot):])
			}
			if vrank != np-1 {
				c.sc.PutSignalNBI(right, p.stagingOff(slot), encode(data[lo:hi]), p.sigOff(slot), sig)
			}
		}
		c.sc.Quiet()
		c.sc.Barrier()
	}
	return nil
}
