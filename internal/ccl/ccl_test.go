package ccl

import (
	"math"
	"testing"

	"msgroofline/internal/machine"
	"msgroofline/internal/shmem"
	"msgroofline/internal/sim"
)

func newJobWithPlan(t *testing.T, machineName string, npes, maxElems int) (*shmem.Job, *Plan) {
	t.Helper()
	cfg, err := machine.Get(machineName)
	if err != nil {
		t.Fatal(err)
	}
	plan, err := NewPlan(npes, maxElems)
	if err != nil {
		t.Fatal(err)
	}
	job, err := shmem.NewJob(cfg, npes, plan.HeapBytes())
	if err != nil {
		t.Fatal(err)
	}
	if err := plan.Bind(job, 0); err != nil {
		t.Fatal(err)
	}
	return job, plan
}

func vec(pe, n int) []float64 {
	v := make([]float64, n)
	for i := range v {
		v[i] = float64(pe+1) * float64(i+1)
	}
	return v
}

// expected sum across PEs of vec(pe, n)[i] = (i+1) * sum(pe+1).
func expectedSum(npes, i int) float64 {
	return float64(i+1) * float64(npes*(npes+1)) / 2
}

func TestPlanValidation(t *testing.T) {
	if _, err := NewPlan(0, 8); err == nil {
		t.Fatal("0 PEs should fail")
	}
	if _, err := NewPlan(2, 0); err == nil {
		t.Fatal("0 elems should fail")
	}
	p, _ := NewPlan(4, 100)
	if err := p.Bind(nil, -1); err == nil {
		t.Fatal("negative base should fail")
	}
}

func TestAllReduceRing(t *testing.T) {
	for _, npes := range []int{1, 2, 3, 4} {
		const n = 103 // deliberately not divisible by npes
		job, plan := newJobWithPlan(t, "perlmutter-gpu", npes, n)
		results := make([][]float64, npes)
		err := job.Launch(func(sc *shmem.Ctx) {
			c := plan.NewCtx(sc)
			data := vec(sc.MyPE(), n)
			if err := c.AllReduce(data); err != nil {
				t.Error(err)
				return
			}
			results[sc.MyPE()] = data
		})
		if err != nil {
			t.Fatalf("npes=%d: %v", npes, err)
		}
		for pe, res := range results {
			for i := range res {
				want := expectedSum(npes, i)
				if math.Abs(res[i]-want) > 1e-9 {
					t.Fatalf("npes=%d pe=%d elem %d = %v, want %v", npes, pe, i, res[i], want)
				}
			}
		}
	}
}

func TestReduceScatterChunks(t *testing.T) {
	const npes, n = 4, 64
	job, plan := newJobWithPlan(t, "perlmutter-gpu", npes, n)
	bounds := make([][2]int, npes)
	data := make([][]float64, npes)
	err := job.Launch(func(sc *shmem.Ctx) {
		c := plan.NewCtx(sc)
		d := vec(sc.MyPE(), n)
		lo, hi, err := c.ReduceScatter(d)
		if err != nil {
			t.Error(err)
			return
		}
		bounds[sc.MyPE()] = [2]int{lo, hi}
		data[sc.MyPE()] = d
	})
	if err != nil {
		t.Fatal(err)
	}
	covered := make([]bool, n)
	for pe := 0; pe < npes; pe++ {
		lo, hi := bounds[pe][0], bounds[pe][1]
		for i := lo; i < hi; i++ {
			if covered[i] {
				t.Fatalf("element %d owned twice", i)
			}
			covered[i] = true
			want := expectedSum(npes, i)
			if math.Abs(data[pe][i]-want) > 1e-9 {
				t.Fatalf("pe %d elem %d = %v, want %v", pe, i, data[pe][i], want)
			}
		}
	}
	for i, c := range covered {
		if !c {
			t.Fatalf("element %d unowned", i)
		}
	}
}

func TestAllGather(t *testing.T) {
	const npes, n = 4, 40
	job, plan := newJobWithPlan(t, "summit-gpu", npes, n)
	results := make([][]float64, npes)
	err := job.Launch(func(sc *shmem.Ctx) {
		c := plan.NewCtx(sc)
		// Each PE fills only its own chunk with a recognizable value.
		data := make([]float64, n)
		lo, hi := chunkBounds(n, npes, sc.MyPE())
		for i := lo; i < hi; i++ {
			data[i] = float64(sc.MyPE()*1000 + i)
		}
		if err := c.AllGather(data); err != nil {
			t.Error(err)
			return
		}
		results[sc.MyPE()] = data
	})
	if err != nil {
		t.Fatal(err)
	}
	for pe, res := range results {
		for chunk := 0; chunk < npes; chunk++ {
			lo, hi := chunkBounds(n, npes, chunk)
			for i := lo; i < hi; i++ {
				want := float64(chunk*1000 + i)
				if res[i] != want {
					t.Fatalf("pe %d elem %d = %v, want %v", pe, i, res[i], want)
				}
			}
		}
	}
}

func TestBroadcastPipelined(t *testing.T) {
	for _, root := range []int{0, 2} {
		const npes, n = 4, 57
		job, plan := newJobWithPlan(t, "perlmutter-gpu", npes, n)
		results := make([][]float64, npes)
		err := job.Launch(func(sc *shmem.Ctx) {
			c := plan.NewCtx(sc)
			data := make([]float64, n)
			if sc.MyPE() == root {
				copy(data, vec(99, n))
			}
			if err := c.Broadcast(root, data, 5); err != nil {
				t.Error(err)
				return
			}
			results[sc.MyPE()] = data
		})
		if err != nil {
			t.Fatalf("root=%d: %v", root, err)
		}
		want := vec(99, n)
		for pe, res := range results {
			for i := range res {
				if res[i] != want[i] {
					t.Fatalf("root=%d pe=%d elem %d = %v, want %v", root, pe, i, res[i], want[i])
				}
			}
		}
	}
}

func TestRepeatedCollectives(t *testing.T) {
	// Slot reuse across calls must stay correct.
	const npes, n = 3, 30
	job, plan := newJobWithPlan(t, "perlmutter-gpu", npes, n)
	final := make([][]float64, npes)
	err := job.Launch(func(sc *shmem.Ctx) {
		c := plan.NewCtx(sc)
		data := vec(sc.MyPE(), n)
		for round := 0; round < 3; round++ {
			if err := c.AllReduce(data); err != nil {
				t.Error(err)
				return
			}
		}
		final[sc.MyPE()] = data
	})
	if err != nil {
		t.Fatal(err)
	}
	// After k allreduces, value = (i+1) * (sum pe+1) * npes^(k-1).
	for pe, res := range final {
		for i := range res {
			want := expectedSum(npes, i) * math.Pow(float64(npes), 2)
			if math.Abs(res[i]-want) > 1e-6 {
				t.Fatalf("pe %d elem %d = %v, want %v", pe, i, res[i], want)
			}
		}
	}
}

func TestVectorTooLarge(t *testing.T) {
	job, plan := newJobWithPlan(t, "perlmutter-gpu", 2, 16)
	err := job.Launch(func(sc *shmem.Ctx) {
		c := plan.NewCtx(sc)
		if err := c.AllReduce(make([]float64, 17)); err == nil {
			t.Error("oversized vector should fail")
		}
		if err := c.Broadcast(0, make([]float64, 8), 1000); err == nil {
			t.Error("oversized chunk should fail")
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestAllReduceBandwidthShape(t *testing.T) {
	// Ring allreduce moves 2(P-1)/P of the vector per PE; for a big
	// vector on Perlmutter GPU the effective bus bandwidth should be
	// within an order of the NVLink single-channel peak.
	const npes = 4
	const n = 1 << 16 // 512 KiB vector
	job, plan := newJobWithPlan(t, "perlmutter-gpu", npes, n)
	err := job.Launch(func(sc *shmem.Ctx) {
		c := plan.NewCtx(sc)
		data := vec(sc.MyPE(), n)
		if err := c.AllReduce(data); err != nil {
			t.Error(err)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	elapsed := job.Elapsed()
	// Algorithm-bandwidth = bytes * 2(P-1)/P / time.
	moved := float64(8*n) * 2 * float64(npes-1) / float64(npes)
	algBW := moved / elapsed.Seconds() / 1e9
	if algBW < 2 || algBW > 30 {
		t.Fatalf("allreduce algorithm bandwidth = %.2f GB/s, outside plausible band", algBW)
	}
	if elapsed > sim.FromMicroseconds(500) {
		t.Fatalf("allreduce of 512 KiB took %v, suspiciously slow", elapsed)
	}
}
