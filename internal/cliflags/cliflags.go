// Package cliflags unifies the flag surface of the msgroofline
// commands. Every binary — cmd/experiments, cmd/msgroof and the
// per-kernel cmds (cmd/stencil, cmd/sptrsv, cmd/hashtable) — registers
// the same shared knobs with identical names, defaults and help text:
//
//	-jobs N            worker concurrency for multi-point commands
//	-shards N          engine shard count recorded on simulated worlds
//	-cache MODE        point-cache mode: off, mem or disk
//	-cache-dir DIR     entry directory for -cache=disk
//	-cpuprofile FILE   pprof CPU profile
//	-memprofile FILE   pprof heap profile on exit
//
// Commands that run a single simulation (the per-kernel cmds) accept
// -jobs and -cache for surface uniformity; the knobs only change how
// the multi-point commands schedule and memoize work, never what any
// command prints on stdout. Stderr reporting goes through ReportSched
// and ReportCache so every binary summarizes host scheduling and
// cache traffic in the same format.
package cliflags

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"runtime/pprof"
	"time"

	"msgroofline/internal/pointcache"
	simruntime "msgroofline/internal/runtime"
	"msgroofline/internal/sched"
)

// Common holds the shared flag values after parsing.
type Common struct {
	// Jobs caps worker concurrency for commands that schedule many
	// independent simulations (sweep points, experiments). Output is
	// byte-identical at any value.
	Jobs int
	// Shards sets the window worker parallelism of every simulated
	// world (0 means 1). Worlds decompose into per-node-group
	// sequential engines coupled by a conservative-lookahead window
	// protocol; -shards only caps how many groups execute a window
	// concurrently, so command output is byte-identical at any
	// -shards setting (see DESIGN.md §11).
	Shards int
	// CacheMode is the raw -cache value (off, mem or disk).
	CacheMode string
	// CacheDir is the entry directory for -cache=disk.
	CacheDir string
	// CPUProfile and MemProfile are pprof output paths ("" disables).
	CPUProfile string
	MemProfile string

	prog    string
	cpuFile *os.File
}

// Register installs the shared flags on fs. prog names the command in
// error and summary output; defaultCache preserves each command's
// historical cache default ("mem" for experiments, "off" elsewhere).
// Call after flag definitions specific to the command, before
// fs.Parse.
func Register(fs *flag.FlagSet, prog, defaultCache string) *Common {
	c := &Common{prog: prog}
	fs.IntVar(&c.Jobs, "jobs", runtime.NumCPU(),
		"number of independent simulations run concurrently (output is byte-identical at any value)")
	fs.IntVar(&c.Shards, "shards", 1,
		"window worker parallelism of simulated worlds (output is byte-identical at any value)")
	fs.StringVar(&c.CacheMode, "cache", defaultCache, "point-cache mode: off, mem or disk")
	fs.StringVar(&c.CacheDir, "cache-dir", filepath.Join(os.TempDir(), "msgroofline-pointcache"),
		"entry directory for -cache=disk")
	fs.StringVar(&c.CPUProfile, "cpuprofile", "", "write a pprof CPU profile to this file")
	fs.StringVar(&c.MemProfile, "memprofile", "", "write a pprof heap profile to this file on exit")
	return c
}

// StartProfiles begins the CPU profile when -cpuprofile was given.
// The returned stop function ends the CPU profile and writes the heap
// profile when -memprofile was given; defer it immediately after a
// successful call. With neither flag set it is a cheap no-op.
func (c *Common) StartProfiles() (stop func(), err error) {
	if c.CPUProfile != "" {
		f, err := os.Create(c.CPUProfile)
		if err != nil {
			return nil, fmt.Errorf("%s: %w", c.prog, err)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			f.Close()
			return nil, fmt.Errorf("%s: %w", c.prog, err)
		}
		c.cpuFile = f
	}
	return func() {
		if c.cpuFile != nil {
			pprof.StopCPUProfile()
			c.cpuFile.Close()
			c.cpuFile = nil
		}
		if c.MemProfile != "" {
			f, err := os.Create(c.MemProfile)
			if err != nil {
				fmt.Fprintf(os.Stderr, "%s: %v\n", c.prog, err)
				return
			}
			defer f.Close()
			runtime.GC()
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintf(os.Stderr, "%s: %v\n", c.prog, err)
			}
		}
	}, nil
}

// OpenCache parses -cache and opens the point cache ("off" yields a
// disabled cache that callers can still pass around safely).
func (c *Common) OpenCache() (*pointcache.Cache, error) {
	mode, err := pointcache.ParseMode(c.CacheMode)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", c.prog, err)
	}
	cache, err := pointcache.New(mode, c.CacheDir)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", c.prog, err)
	}
	return cache, nil
}

// ReportSched prints the shared one-line host-scheduling summary to
// stderr: "<label>: <stats>". It is wall-clock metadata and never
// part of stdout.
func (c *Common) ReportSched(label string, stats *sched.Stats) {
	if stats == nil {
		return
	}
	fmt.Fprintf(os.Stderr, "%s: %s\n", label, stats)
}

// ReportCache prints the shared one-line cache hit-rate summary to
// stderr when caching is enabled.
func (c *Common) ReportCache(cache *pointcache.Cache) {
	if cache.Enabled() {
		fmt.Fprintf(os.Stderr, "cache (%s): %s\n", c.CacheMode, cache.Stats())
	}
}

// ReportShards prints the shared one-line shard-utilization summary
// to stderr: how many worlds ran, how many of them decomposed into
// multiple node groups, the conservative windows executed, the
// per-phase wall split of the window loops (group execution vs
// barrier deferred-op application vs window-bound maintenance — the
// engine-layer start of a Breaking-Band-style cost attribution), the
// largest window worker parallelism used, and the executed events
// summed by node-group index. The CI shard-determinism job greps this
// line to assert the grouped path really ran — a silent fallback to
// one sequential engine would show grouped=0.
func (c *Common) ReportShards(label string) {
	u := simruntime.Usage()
	if u.Worlds == 0 {
		return
	}
	fmt.Fprintf(os.Stderr, "%s: worlds=%d grouped=%d windows=%d exec=%v barrier=%v scan=%v workers<=%d events/group=%v\n",
		label, u.Worlds, u.Grouped, u.Windows,
		u.ExecWall.Round(time.Millisecond), u.BarrierWall.Round(time.Millisecond),
		u.ScanWall.Round(time.Millisecond), u.MaxWorkers, u.Events)
}
