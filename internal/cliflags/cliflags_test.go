package cliflags

import (
	"flag"
	"io"
	"os"
	"runtime"
	"testing"
)

func statFile(p string) (int64, error) {
	fi, err := os.Stat(p)
	if err != nil {
		return 0, err
	}
	return fi.Size(), nil
}

// TestRegisterDefinesSharedSurface pins the unified flag surface:
// every command registers exactly these shared knobs, with the same
// names and defaults.
func TestRegisterDefinesSharedSurface(t *testing.T) {
	fs := flag.NewFlagSet("test", flag.ContinueOnError)
	fs.SetOutput(io.Discard)
	c := Register(fs, "test", "off")
	for _, name := range []string{"jobs", "shards", "cache", "cache-dir", "cpuprofile", "memprofile"} {
		if fs.Lookup(name) == nil {
			t.Errorf("flag -%s not registered", name)
		}
	}
	if err := fs.Parse(nil); err != nil {
		t.Fatal(err)
	}
	if c.Jobs != runtime.NumCPU() {
		t.Errorf("default -jobs = %d, want NumCPU", c.Jobs)
	}
	if c.Shards != 1 {
		t.Errorf("default -shards = %d, want 1", c.Shards)
	}
	if c.CacheMode != "off" {
		t.Errorf("default -cache = %q, want the command's historical default", c.CacheMode)
	}
}

func TestParseAndOpenCache(t *testing.T) {
	fs := flag.NewFlagSet("test", flag.ContinueOnError)
	fs.SetOutput(io.Discard)
	c := Register(fs, "test", "off")
	if err := fs.Parse([]string{"-jobs", "3", "-shards", "4", "-cache", "mem"}); err != nil {
		t.Fatal(err)
	}
	if c.Jobs != 3 || c.Shards != 4 {
		t.Fatalf("parsed Jobs=%d Shards=%d", c.Jobs, c.Shards)
	}
	cache, err := c.OpenCache()
	if err != nil {
		t.Fatal(err)
	}
	if !cache.Enabled() {
		t.Fatal("mem cache should be enabled")
	}
	c.CacheMode = "bogus"
	if _, err := c.OpenCache(); err == nil {
		t.Fatal("bogus cache mode should error")
	}
}

func TestStartProfilesNoopWithoutFlags(t *testing.T) {
	fs := flag.NewFlagSet("test", flag.ContinueOnError)
	c := Register(fs, "test", "off")
	if err := fs.Parse(nil); err != nil {
		t.Fatal(err)
	}
	stop, err := c.StartProfiles()
	if err != nil {
		t.Fatal(err)
	}
	stop() // must be safe with neither profile requested
}

func TestStartProfilesWritesCPUProfile(t *testing.T) {
	fs := flag.NewFlagSet("test", flag.ContinueOnError)
	c := Register(fs, "test", "off")
	dir := t.TempDir()
	if err := fs.Parse([]string{"-cpuprofile", dir + "/cpu.pprof", "-memprofile", dir + "/mem.pprof"}); err != nil {
		t.Fatal(err)
	}
	stop, err := c.StartProfiles()
	if err != nil {
		t.Fatal(err)
	}
	stop()
	for _, p := range []string{dir + "/cpu.pprof", dir + "/mem.pprof"} {
		if fi, err := statFile(p); err != nil || fi == 0 {
			t.Errorf("%s: size=%d err=%v", p, fi, err)
		}
	}
}
