// Package comm is the unified transport layer under the paper's
// workloads. It exposes one Transport interface — halo exchange,
// put-with-signal delivery, remote atomics, and epoch semantics —
// with six implementations delegating to the calibrated stacks:
//
//   - TwoSided: internal/mpi Isend/Irecv/Waitall (eager protocol,
//     non-overtaking matching);
//   - OneSided: internal/mpi RMA with the paper's strict discipline —
//     fence epochs for BSP exchange, the 4-op put/flush/put/flush
//     protocol plus Listing-1 polling for streamed delivery, and
//     CAS/fetch-add with per-op flush_local for atomics;
//   - Notified: internal/mpi RMA with hardware put-with-signal
//     (foMPI-style notified access, §V): one fused 2-op flight per
//     delivery, no second flush round trip, no polling loop;
//   - Shmem: internal/shmem NVSHMEM-style PGAS (put_signal_nbi,
//     wait_until_*, device atomics, fork/join block contexts);
//   - StreamTriggered: stream-triggered MPI — the host enqueues
//     descriptors onto a simulated device stream (internal/gpu) and
//     the trigger engine fires each at stream-dependency resolution:
//     near-zero host o, trigger latency added to L;
//   - MemChannel: RAMC-style ordered remote-memory channels
//     (internal/runtime.Channel) — per-(src,dst) FIFO byte streams
//     with open/credit semantics where ordering replaces per-op
//     completion and quiet maps to channel drainage.
//
// The kernels in internal/{stencil,sptrsv,hashtable} are written once
// against this interface; the transport is a table entry, not a
// hand-written runner. Simulated clocks, op charging, and protocol op
// counts moved verbatim from the former per-variant runners, so a
// workload routed through comm is cycle-identical to the old code.
//
// Trace accounting is threaded through here exactly once: New
// attaches an internal/trace recorder to the stack's message hook
// (payload deliveries only — protocol-overhead signal puts of the
// strict 4-op path are charged but not recorded, while fused
// put-with-signal records payload+8 as one flight, matching the
// paper's k=4 / k=2 op accounting), and the epoch operations mark
// rec.Sync() at the points the old runners did. With NoTrace set no
// recorder exists and no hook is installed: zero per-message cost.
package comm

import (
	"fmt"
	"strings"

	"msgroofline/internal/gpu"
	"msgroofline/internal/machine"
	"msgroofline/internal/netsim"
	"msgroofline/internal/runtime"
	"msgroofline/internal/sim"
	"msgroofline/internal/trace"
)

// Kind selects one of the six communication stacks.
type Kind int

const (
	// TwoSided is plain MPI point-to-point.
	TwoSided Kind = iota
	// OneSided is MPI-3 RMA under the paper's strict discipline.
	OneSided
	// Notified is RMA with hardware put-with-signal (notified access).
	Notified
	// Shmem is the NVSHMEM-style GPU PGAS stack.
	Shmem
	// StreamTriggered is CPU-free stream-triggered MPI: descriptors
	// enqueued on the device stream, fired at dependency resolution.
	StreamTriggered
	// MemChannel is the RAMC-style ordered remote-memory channel.
	MemChannel
)

// kindNames is the transport registry: canonical name per Kind, in
// the order Kinds() reports. CLI usage strings and parse errors are
// generated from it so a new transport can never be silently missing
// from a hardcoded list.
var kindNames = []string{"two-sided", "one-sided", "notified", "shmem", "stream-triggered", "memchannel"}

// String returns the canonical transport name used by case tables,
// CLI flags, and the conformance matrix.
func (k Kind) String() string {
	if k >= 0 && int(k) < len(kindNames) {
		return kindNames[k]
	}
	return fmt.Sprintf("comm.Kind(%d)", int(k))
}

// ParseKind maps a transport name to its Kind. "gpu" is accepted as
// an alias for "shmem" (the historical CLI spelling).
func ParseKind(s string) (Kind, error) {
	for i, n := range kindNames {
		if s == n {
			return Kind(i), nil
		}
	}
	if s == "gpu" {
		return Shmem, nil
	}
	return 0, fmt.Errorf("comm: unknown transport %q (want %s)", s, KindList())
}

// Kinds lists every transport in canonical order.
func Kinds() []Kind {
	out := make([]Kind, len(kindNames))
	for i := range kindNames {
		out[i] = Kind(i)
	}
	return out
}

// KindList renders the registry as a human-readable list for usage
// text and errors: "a, b, ..., or z".
func KindList() string {
	n := len(kindNames)
	return strings.Join(kindNames[:n-1], ", ") + ", or " + kindNames[n-1]
}

// Caps describes what a transport can do natively, so a kernel can
// pick between the paper's protocol designs without knowing which
// stack it runs on.
type Caps struct {
	// Atomics reports native remote CAS/FetchAdd. Two-sided MPI has
	// none — its hashtable design broadcasts every update instead
	// (BcastPut/CollectPuts).
	Atomics bool
	// Fused reports that put-with-signal delivery is one fused flight
	// (notified access, shmem) rather than the strict 4-op protocol,
	// and that completion needs no per-op flush_local.
	Fused bool
}

// Msg is one outgoing transfer of an exchange: Data lands in Peer's
// receive slot Slot of the current epoch.
type Msg struct {
	Peer int
	Slot int
	Data []byte
}

// Expect declares one incoming transfer of an exchange: Peer will
// fill this rank's slot Slot with Bytes payload bytes.
type Expect struct {
	Peer  int
	Slot  int
	Bytes int
}

// Spec describes the communication world one workload run needs.
// Exactly one of the three slot geometries must be set:
//
//   - ExchangeSlots/SlotBytes: BSP epoch exchange (stencil). Each
//     rank owns ExchangeSlots receive slots of SlotBytes, double-
//     buffered by epoch parity in the window transports.
//   - StreamSlots/SlotBytes: streamed put-with-signal delivery
//     (sptrsv). StreamSlots[r] is rank r's receive-slot count; each
//     slot holds SlotBytes.
//   - SharedBytes: a raw symmetric heap per rank for remote atomics
//     (hashtable).
type Spec struct {
	Machine *machine.Config
	Kind    Kind
	Ranks   int

	// ExchangeSlots is the per-epoch slot count K of BSP exchange.
	ExchangeSlots int
	// SlotBytes is the stride of one exchange or stream slot.
	SlotBytes int
	// StreamSlots holds per-rank streamed receive-slot counts.
	StreamSlots []int
	// PollCheck charges the Listing-1 signal scan of the strict
	// one-sided stream receiver per remaining slot per wakeup.
	PollCheck sim.Time
	// SharedBytes sizes the per-rank atomics heap.
	SharedBytes int

	// Shards is the -shards worker count for the world (<= 0 means 1):
	// how many fabric node groups of the coupled conservative-lookahead
	// engine may execute a window concurrently. Simulated output is
	// byte-identical at every value — the group structure and the
	// barrier total order are topology-determined (DESIGN.md §11) — so
	// Shards buys wall-clock parallelism without touching results.
	Shards int

	// Perturb, when non-nil, installs engine schedule fuzzing
	// (conformance harness only; nil leaves runs byte-identical).
	Perturb *sim.Perturbation
	// Faults, when non-nil, installs network fault injection.
	Faults *netsim.Faults
	// NoTrace skips recorder creation and hook installation.
	NoTrace bool

	// DebugUnordered deliberately breaks the ordering contract of the
	// transports that have one — StreamTriggered fires descriptors
	// without waiting for stream predecessors, MemChannel bypasses the
	// receive resequencer — so the conformance ordering oracles can
	// prove they catch the violation. Never set outside tests.
	DebugUnordered bool
}

// applyChaos installs the conformance harness's opt-in schedule
// perturbation and network fault injection on a freshly built world
// (perturbation fans out to every node-group engine as its own
// decision stream).
func (s Spec) applyChaos(w *runtime.World, net *netsim.Network) {
	if s.Perturb != nil {
		w.SetPerturbation(s.Perturb)
	}
	if s.Faults != nil {
		net.SetFaults(s.Faults)
	}
}

func (s Spec) validate() error {
	if s.Machine == nil {
		return fmt.Errorf("comm: nil machine")
	}
	if s.Ranks < 1 {
		return fmt.Errorf("comm: ranks = %d", s.Ranks)
	}
	modes := 0
	if s.ExchangeSlots > 0 {
		modes++
	}
	if s.StreamSlots != nil {
		modes++
	}
	if s.SharedBytes > 0 {
		modes++
	}
	if modes != 1 {
		return fmt.Errorf("comm: exactly one of ExchangeSlots/StreamSlots/SharedBytes must be set (got %d)", modes)
	}
	if (s.ExchangeSlots > 0 || s.StreamSlots != nil) && s.SlotBytes < 1 {
		return fmt.Errorf("comm: SlotBytes = %d", s.SlotBytes)
	}
	if s.StreamSlots != nil && len(s.StreamSlots) != s.Ranks {
		return fmt.Errorf("comm: StreamSlots has %d entries for %d ranks", len(s.StreamSlots), s.Ranks)
	}
	return nil
}

// Transport is one built communication world: engine, fabric,
// windows/heaps, and trace tap, ready to Launch the per-rank kernel.
type Transport interface {
	Kind() Kind
	Caps() Caps
	Ranks() int
	// Digest folds the per-group event-order digests of the run (the
	// shard-determinism certificate; see runtime.World.Digest).
	Digest() uint64
	// Launch runs body once per rank as a simulated process and
	// blocks until the world drains.
	Launch(body func(Endpoint)) error
	// Elapsed is the simulated time consumed by Launch.
	Elapsed() sim.Time
	// Recorder is the trace tap attached at construction, nil when
	// Spec.NoTrace was set.
	Recorder() *trace.Recorder
	// SharedBytes exposes rank's atomics heap after Launch (nil for
	// transports without one).
	SharedBytes(rank int) []byte
	// AtomicCount is the total remote atomic operations executed.
	AtomicCount() int64
	// Close releases the transport's pooled resources (the trace
	// recorder's event buffer). Call it after the last use of
	// Recorder() and of any Events() slice obtained from it; Recorder
	// returns nil afterwards. Close is idempotent.
	Close()
}

// Endpoint is one rank's handle inside Launch. The op families map
// onto the Spec geometries: Exchange needs ExchangeSlots, Deliver/
// WaitAnySlot need StreamSlots, CAS/FetchAdd/FlushLocal need
// SharedBytes, and BcastPut/CollectPuts are the two-sided fallback
// for transports without atomics.
type Endpoint interface {
	Rank() int
	Size() int
	Caps() Caps
	// Now returns this rank's current simulated time.
	Now() sim.Time
	// Compute advances this rank's clock by d (local work).
	Compute(d sim.Time)
	// Barrier synchronizes all ranks.
	Barrier()
	// Quiet completes this rank's outstanding nonblocking deliveries
	// per the transport's native discipline. The MPI transports are
	// already locally complete by protocol construction (eager
	// two-sided sends; the strict path flushes per op; notified
	// access fuses completion), so only shmem charges an operation.
	Quiet()

	// Exchange runs one BSP epoch: every Msg lands in its peer's
	// epoch slot, then the call blocks until all Expect slots of this
	// rank have arrived and returns their payloads in recvs order.
	// Returned slices alias transport memory where windows exist and
	// are only valid until the next epoch of the same parity.
	Exchange(epoch int, sends []Msg, recvs []Expect) [][]byte

	// Deliver streams data into (peer, slot) with arrival signaling,
	// using the transport's protocol: eager Isend, strict 4-op
	// put/flush/put/flush, fused put-with-signal.
	Deliver(peer, slot int, data []byte)
	// WaitAnySlot blocks for the next undelivered slot and returns
	// its index and payload (window transports return the full slot
	// stride; callers slice to their payload length).
	WaitAnySlot() (slot int, data []byte)

	// CAS atomically compares-and-swaps the uint64 at (peer, off) in
	// the shared heap, returning the old value.
	CAS(peer, off int, compare, swap uint64) uint64
	// FetchAdd atomically adds delta at (peer, off), returning the
	// old value.
	FetchAdd(peer, off int, delta uint64) uint64
	// FlushLocal forces local completion of outstanding RMA toward
	// peer (a charged MPI op); a no-op where ops complete fused
	// (notified access) or blocking (shmem atomics).
	FlushLocal(peer int)

	// Lanes reports how many concurrent lanes ForkJoin can actually
	// run: want on shmem (GPU thread-block contexts), 1 elsewhere.
	Lanes(want int) int
	// ForkJoin runs body on lanes concurrent contexts (shmem) or
	// inline sequentially (CPU transports).
	ForkJoin(lanes int, body func(lane Endpoint, i int))

	// BcastPut sends data to every other rank (the paper's two-sided
	// hashtable broadcast); CollectPuts receives the Size()-1 round
	// payloads in arrival order and marks the round synchronization.
	BcastPut(data []byte)
	CollectPuts() [][]byte
}

// New builds the transport selected by spec.Kind: world bootstrap,
// chaos injection, window/heap geometry, and the trace tap — the
// boilerplate formerly copy-pasted into every workload runner.
func New(spec Spec) (Transport, error) {
	if err := spec.validate(); err != nil {
		return nil, err
	}
	switch spec.Kind {
	case TwoSided:
		return newTwoSided(spec)
	case OneSided:
		return newRMA(spec, false)
	case Notified:
		return newRMA(spec, true)
	case Shmem:
		return newShmem(spec)
	case StreamTriggered:
		return newStreamTriggered(spec)
	case MemChannel:
		return newMemChannel(spec)
	}
	return nil, fmt.Errorf("comm: unknown transport kind %d", int(spec.Kind))
}

// StreamInspector is implemented by transports whose sends ride a
// per-rank device stream; conformance oracles inspect the recorded
// fire log after Launch.
type StreamInspector interface {
	Stream(rank int) *gpu.Stream
}

// ChannelInspector is implemented by transports whose sends ride
// ordered memory channels; conformance oracles inspect the per-channel
// arrival logs after Launch.
type ChannelInspector interface {
	Channels(rank int) []*runtime.Channel
}

// base carries the pieces shared by every transport implementation.
type base struct {
	spec Spec
	rec  *trace.Recorder
}

func (b *base) Ranks() int                { return b.spec.Ranks }
func (b *base) Recorder() *trace.Recorder { return b.rec }

// Close returns the trace recorder's event buffer to the package pool
// so the next traced run reuses it instead of growing a fresh one.
func (b *base) Close() {
	trace.Release(b.rec)
	b.rec = nil
}

// attachTrace acquires a pooled recorder unless disabled and returns
// the hook to install on the stack's payload-message tap (nil = no
// hook, zero per-message cost).
func (b *base) attachTrace() func(src, dst int, bytes int64, issue, deliver sim.Time) {
	if b.spec.NoTrace {
		return nil
	}
	rec := trace.Get()
	b.rec = rec
	return func(src, dst int, bytes int64, issue, deliver sim.Time) {
		rec.Record(trace.Event{Src: src, Dst: dst, Bytes: bytes, Issue: issue, Deliver: deliver})
	}
}

// sync marks one synchronization on the trace tap.
func (b *base) sync() {
	if b.rec != nil {
		b.rec.Sync()
	}
}
