// Contract tests for the transport layer: every Kind must satisfy the
// same observable semantics (epoch exchange, signaled delivery,
// atomics, trace-tap accounting), differing only in cost — the strict
// 4-op protocol must be measurably slower than fused put-with-signal
// on the same delivery stream, and the fused transports must record
// payload+8 flights where the strict ones record bare payloads.
package comm_test

import (
	"bytes"
	"fmt"
	"testing"

	"msgroofline/internal/comm"
	"msgroofline/internal/machine"
	"msgroofline/internal/sim"
)

func mc(t *testing.T, name string) *machine.Config {
	t.Helper()
	c, err := machine.Get(name)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

// machineFor picks a platform that supports the transport: the GPU
// catalog entry for the device-driven stacks (shmem, stream-
// triggered), the notified- and channel-calibrated CPU otherwise.
func machineFor(t *testing.T, kind comm.Kind) *machine.Config {
	t.Helper()
	if kind == comm.Shmem || kind == comm.StreamTriggered {
		return mc(t, "perlmutter-gpu")
	}
	return mc(t, "perlmutter-cpu")
}

func TestKindStringParseRoundTrip(t *testing.T) {
	for _, k := range comm.Kinds() {
		got, err := comm.ParseKind(k.String())
		if err != nil {
			t.Fatalf("ParseKind(%q): %v", k.String(), err)
		}
		if got != k {
			t.Fatalf("ParseKind(%q) = %v, want %v", k.String(), got, k)
		}
	}
	if got, err := comm.ParseKind("gpu"); err != nil || got != comm.Shmem {
		t.Fatalf(`ParseKind("gpu") = %v, %v; want Shmem`, got, err)
	}
	if _, err := comm.ParseKind("tcp"); err == nil {
		t.Fatal("unknown transport name should fail")
	}
}

func TestSpecValidation(t *testing.T) {
	pm := mc(t, "perlmutter-cpu")
	bad := []comm.Spec{
		{Kind: comm.TwoSided, Ranks: 2, ExchangeSlots: 4, SlotBytes: 8},                                 // nil machine
		{Machine: pm, Kind: comm.TwoSided, Ranks: 0, ExchangeSlots: 4, SlotBytes: 8},                    // no ranks
		{Machine: pm, Kind: comm.TwoSided, Ranks: 2},                                                    // no geometry
		{Machine: pm, Kind: comm.TwoSided, Ranks: 2, ExchangeSlots: 4, SlotBytes: 8, SharedBytes: 64},   // two geometries
		{Machine: pm, Kind: comm.TwoSided, Ranks: 2, ExchangeSlots: 4},                                  // no slot stride
		{Machine: pm, Kind: comm.TwoSided, Ranks: 2, StreamSlots: []int{1}, SlotBytes: 8},               // wrong StreamSlots len
		{Machine: pm, Kind: comm.Kind(99), Ranks: 2, ExchangeSlots: 4, SlotBytes: 8},                    // unknown kind
		{Machine: mc(t, "summit-cpu"), Kind: comm.Notified, Ranks: 2, ExchangeSlots: 4, SlotBytes: 8},   // no notified params
		{Machine: mc(t, "perlmutter-cpu"), Kind: comm.Shmem, Ranks: 2, ExchangeSlots: 4, SlotBytes: 8},  // shmem needs a GPU machine
		{Machine: pm, Kind: comm.StreamTriggered, Ranks: 2, ExchangeSlots: 4, SlotBytes: 8},             // stream-triggered needs a GPU machine
		{Machine: mc(t, "summit-cpu"), Kind: comm.MemChannel, Ranks: 2, ExchangeSlots: 4, SlotBytes: 8}, // no channel params on InfiniBand
	}
	for i, spec := range bad {
		if _, err := comm.New(spec); err == nil {
			t.Fatalf("spec %d (%+v) should fail", i, spec)
		}
	}
}

// TestExchangeContract runs a multi-epoch neighbor exchange on every
// transport: 4 ranks in a ring, each sending left and right per epoch.
// The received payloads must match what the peer sent that epoch —
// including across epoch parity flips, which exercise the window
// transports' double buffering.
func TestExchangeContract(t *testing.T) {
	const ranks, slots, slotBytes, epochs = 4, 2, 32, 5
	payload := func(src, epoch int) []byte {
		b := make([]byte, slotBytes)
		for i := range b {
			b[i] = byte(src*31 + epoch*7 + i)
		}
		return b
	}
	for _, kind := range comm.Kinds() {
		t.Run(kind.String(), func(t *testing.T) {
			tr, err := comm.New(comm.Spec{
				Machine: machineFor(t, kind), Kind: kind, Ranks: ranks,
				ExchangeSlots: slots, SlotBytes: slotBytes,
			})
			if err != nil {
				t.Fatal(err)
			}
			fail := make(chan string, ranks*epochs)
			err = tr.Launch(func(ep comm.Endpoint) {
				me := ep.Rank()
				left := (me + ranks - 1) % ranks
				right := (me + 1) % ranks
				for e := 0; e < epochs; e++ {
					// Slot 0 receives from the left neighbor, slot 1
					// from the right.
					sends := []comm.Msg{
						{Peer: right, Slot: 0, Data: payload(me, e)},
						{Peer: left, Slot: 1, Data: payload(me, e)},
					}
					recvs := []comm.Expect{
						{Peer: left, Slot: 0, Bytes: slotBytes},
						{Peer: right, Slot: 1, Bytes: slotBytes},
					}
					got := ep.Exchange(e, sends, recvs)
					if !bytes.Equal(got[0][:slotBytes], payload(left, e)) {
						fail <- fmt.Sprintf("rank %d epoch %d: bad payload from left %d", me, e, left)
					}
					if !bytes.Equal(got[1][:slotBytes], payload(right, e)) {
						fail <- fmt.Sprintf("rank %d epoch %d: bad payload from right %d", me, e, right)
					}
				}
			})
			if err != nil {
				t.Fatal(err)
			}
			close(fail)
			for msg := range fail {
				t.Error(msg)
			}
			if tr.Elapsed() <= 0 {
				t.Fatal("exchange consumed no simulated time")
			}
			sum := tr.Recorder().Summarize(tr.Elapsed())
			if want := ranks * 2 * epochs; sum.Messages != want {
				t.Fatalf("recorded %d messages, want %d", sum.Messages, want)
			}
			if sum.Syncs != ranks*epochs {
				t.Fatalf("recorded %d syncs, want %d", sum.Syncs, ranks*epochs)
			}
		})
	}
}

// TestStreamContract checks signaled delivery: the payload must be
// fully visible when WaitAnySlot returns its slot, on every transport
// and for every slot independent of arrival order.
func TestStreamContract(t *testing.T) {
	const n, slotBytes = 6, 40
	payload := func(slot int) []byte {
		b := make([]byte, slotBytes)
		for i := range b {
			b[i] = byte(slot*13 + i + 1)
		}
		return b
	}
	for _, kind := range comm.Kinds() {
		t.Run(kind.String(), func(t *testing.T) {
			tr, err := comm.New(comm.Spec{
				Machine: machineFor(t, kind), Kind: kind, Ranks: 2,
				StreamSlots: []int{0, n}, SlotBytes: slotBytes,
				PollCheck: 40 * sim.Nanosecond,
			})
			if err != nil {
				t.Fatal(err)
			}
			fail := make(chan string, n)
			err = tr.Launch(func(ep comm.Endpoint) {
				switch ep.Rank() {
				case 0:
					for s := 0; s < n; s++ {
						ep.Deliver(1, s, payload(s))
					}
					ep.Quiet()
				case 1:
					seen := make([]bool, n)
					for got := 0; got < n; got++ {
						slot, data := ep.WaitAnySlot()
						if slot < 0 || slot >= n || seen[slot] {
							fail <- fmt.Sprintf("bad or repeated slot %d", slot)
							continue
						}
						seen[slot] = true
						if !bytes.Equal(data[:slotBytes], payload(slot)) {
							fail <- fmt.Sprintf("slot %d: payload not visible at signal", slot)
						}
					}
				}
			})
			if err != nil {
				t.Fatal(err)
			}
			close(fail)
			for msg := range fail {
				t.Error(msg)
			}
			sum := tr.Recorder().Summarize(tr.Elapsed())
			if sum.Messages != n {
				t.Fatalf("recorded %d messages, want %d", sum.Messages, n)
			}
		})
	}
}

// TestTraceTapByteSignature pins the op accounting the paper's
// Table II depends on: strict transports record the bare payload per
// delivery (the signal put is protocol overhead, charged but not
// recorded), while fused put-with-signal transports record payload+8
// as one flight.
func TestTraceTapByteSignature(t *testing.T) {
	const slotBytes = 64
	for _, kind := range comm.Kinds() {
		t.Run(kind.String(), func(t *testing.T) {
			tr, err := comm.New(comm.Spec{
				Machine: machineFor(t, kind), Kind: kind, Ranks: 2,
				StreamSlots: []int{0, 1}, SlotBytes: slotBytes,
			})
			if err != nil {
				t.Fatal(err)
			}
			err = tr.Launch(func(ep comm.Endpoint) {
				switch ep.Rank() {
				case 0:
					ep.Deliver(1, 0, make([]byte, slotBytes))
					ep.Quiet()
				case 1:
					ep.WaitAnySlot()
				}
			})
			if err != nil {
				t.Fatal(err)
			}
			want := int64(slotBytes)
			if tr.Caps().Fused {
				want += 8 // signal word rides the payload flight
			}
			sum := tr.Recorder().Summarize(tr.Elapsed())
			if sum.MinBytes != want || sum.MaxBytes != want {
				t.Fatalf("%s recorded %d-%d bytes/msg, want %d", kind, sum.MinBytes, sum.MaxBytes, want)
			}
		})
	}
}

// TestStrictSlowerThanNotified pins the paper's §V comparison at the
// transport level: the same delivery stream costs more on the strict
// 4-op protocol (put, flush, put, flush + Listing-1 polling) than via
// fused notified access (one 2-op flight).
func TestStrictSlowerThanNotified(t *testing.T) {
	run := func(kind comm.Kind) sim.Time {
		tr, err := comm.New(comm.Spec{
			Machine: mc(t, "perlmutter-cpu"), Kind: kind, Ranks: 2,
			StreamSlots: []int{0, 16}, SlotBytes: 64,
			PollCheck: 40 * sim.Nanosecond,
		})
		if err != nil {
			t.Fatal(err)
		}
		err = tr.Launch(func(ep comm.Endpoint) {
			switch ep.Rank() {
			case 0:
				for s := 0; s < 16; s++ {
					ep.Deliver(1, s, make([]byte, 64))
				}
				ep.Quiet()
			case 1:
				for got := 0; got < 16; got++ {
					ep.WaitAnySlot()
				}
			}
		})
		if err != nil {
			t.Fatal(err)
		}
		return tr.Elapsed()
	}
	strict, notified := run(comm.OneSided), run(comm.Notified)
	if strict <= notified {
		t.Fatalf("strict 4-op (%v) should be slower than notified (%v)", strict, notified)
	}
}

// TestAtomicsContract checks remote CAS/FetchAdd semantics on every
// atomics-capable transport: CAS claims exactly once, FetchAdd hands
// out unique tickets, and AtomicCount sees every operation.
func TestAtomicsContract(t *testing.T) {
	for _, kind := range comm.Kinds() {
		t.Run(kind.String(), func(t *testing.T) {
			tr, err := comm.New(comm.Spec{
				Machine: machineFor(t, kind), Kind: kind, Ranks: 3,
				SharedBytes: 64,
			})
			if err != nil {
				t.Fatal(err)
			}
			if !tr.Caps().Atomics {
				if kind != comm.TwoSided {
					t.Fatalf("%s must support atomics", kind)
				}
				return // two-sided kernels use BcastPut/CollectPuts instead
			}
			wins := make(chan int, 3)
			err = tr.Launch(func(ep comm.Endpoint) {
				// Every rank CASes rank 0's word 0 and takes a ticket
				// from word 1.
				if old := ep.CAS(0, 0, 0, uint64(ep.Rank())+1); old == 0 {
					wins <- ep.Rank()
				}
				ep.FetchAdd(0, 8, 1)
				ep.FlushLocal(0)
			})
			if err != nil {
				t.Fatal(err)
			}
			close(wins)
			var winners int
			for range wins {
				winners++
			}
			if winners != 1 {
				t.Fatalf("%d ranks won the CAS, want exactly 1", winners)
			}
			heap := tr.SharedBytes(0)
			if heap == nil {
				t.Fatal("no shared heap exposed")
			}
			tickets := uint64(heap[8]) // counts fit one byte
			if tickets != 3 {
				t.Fatalf("fetch-add counter = %d, want 3", tickets)
			}
			if got := tr.AtomicCount(); got != 6 {
				t.Fatalf("AtomicCount = %d, want 6 (3 CAS + 3 FetchAdd)", got)
			}
		})
	}
}

// TestBroadcastContract checks the two-sided fallback: one BcastPut
// round delivers to all peers and CollectPuts returns exactly
// Size()-1 payloads.
func TestBroadcastContract(t *testing.T) {
	const ranks = 4
	tr, err := comm.New(comm.Spec{
		Machine: mc(t, "perlmutter-cpu"), Kind: comm.TwoSided, Ranks: ranks,
		SharedBytes: 64,
	})
	if err != nil {
		t.Fatal(err)
	}
	fail := make(chan string, ranks)
	err = tr.Launch(func(ep comm.Endpoint) {
		me := ep.Rank()
		ep.BcastPut([]byte{byte(me)})
		got := ep.CollectPuts()
		if len(got) != ranks-1 {
			fail <- fmt.Sprintf("rank %d collected %d payloads, want %d", me, len(got), ranks-1)
			return
		}
		seen := map[byte]bool{}
		for _, p := range got {
			seen[p[0]] = true
		}
		if len(seen) != ranks-1 || seen[byte(me)] {
			fail <- fmt.Sprintf("rank %d saw senders %v", me, seen)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	close(fail)
	for msg := range fail {
		t.Error(msg)
	}
}

// TestForkJoinLanes checks the concurrency contract: shmem grants the
// requested GPU thread-block lanes, CPU transports run inline on one.
func TestForkJoinLanes(t *testing.T) {
	for _, kind := range comm.Kinds() {
		t.Run(kind.String(), func(t *testing.T) {
			tr, err := comm.New(comm.Spec{
				Machine: machineFor(t, kind), Kind: kind, Ranks: 2,
				SharedBytes: 64,
			})
			if err != nil {
				t.Fatal(err)
			}
			lanesSeen := make(chan int, 2*8)
			err = tr.Launch(func(ep comm.Endpoint) {
				want := 4
				lanes := ep.Lanes(want)
				if kind == comm.Shmem && lanes != want {
					t.Errorf("shmem Lanes(%d) = %d", want, lanes)
				}
				if kind != comm.Shmem && lanes != 1 {
					t.Errorf("%s Lanes(%d) = %d, want 1", kind, want, lanes)
				}
				ep.ForkJoin(lanes, func(lane comm.Endpoint, i int) {
					lanesSeen <- i
				})
			})
			if err != nil {
				t.Fatal(err)
			}
			close(lanesSeen)
			var n int
			for range lanesSeen {
				n++
			}
			wantBodies := 2 // one lane per rank on CPU transports
			if kind == comm.Shmem {
				wantBodies = 2 * 4
			}
			if n != wantBodies {
				t.Fatalf("ForkJoin ran %d bodies, want %d", n, wantBodies)
			}
		})
	}
}

// TestNoTrace checks the zero-cost path: no recorder exists, and the
// simulated clock is bit-identical with and without tracing (the tap
// must never affect timing, only observe it).
func TestNoTrace(t *testing.T) {
	run := func(noTrace bool) (sim.Time, bool) {
		tr, err := comm.New(comm.Spec{
			Machine: mc(t, "perlmutter-cpu"), Kind: comm.OneSided, Ranks: 2,
			StreamSlots: []int{0, 4}, SlotBytes: 32, NoTrace: noTrace,
		})
		if err != nil {
			t.Fatal(err)
		}
		err = tr.Launch(func(ep comm.Endpoint) {
			switch ep.Rank() {
			case 0:
				for s := 0; s < 4; s++ {
					ep.Deliver(1, s, make([]byte, 32))
				}
			case 1:
				for got := 0; got < 4; got++ {
					ep.WaitAnySlot()
				}
			}
		})
		if err != nil {
			t.Fatal(err)
		}
		return tr.Elapsed(), tr.Recorder() == nil
	}
	traced, recNilTraced := run(false)
	bare, recNilBare := run(true)
	if recNilTraced {
		t.Fatal("traced run lost its recorder")
	}
	if !recNilBare {
		t.Fatal("NoTrace run still built a recorder")
	}
	if traced != bare {
		t.Fatalf("tracing changed simulated time: %v vs %v", traced, bare)
	}
}
