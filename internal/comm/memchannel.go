package comm

import (
	"encoding/binary"
	"fmt"

	"msgroofline/internal/machine"
	"msgroofline/internal/runtime"
	"msgroofline/internal/sim"
)

// uint64At / binaryPutUint64 are the little-endian heap accessors of
// the transports that keep their symmetric heaps in this package.
func uint64At(heap []byte, off int) uint64 {
	return binary.LittleEndian.Uint64(heap[off : off+8])
}

func binaryPutUint64(heap []byte, off int, v uint64) {
	binary.LittleEndian.PutUint64(heap[off:off+8], v)
}

// memChanT is the RAMC-style ordered-channel transport (Schonbein et
// al.): every (src,dst) pair communicates over a runtime.Channel — a
// FIFO byte stream with a one-time open handshake and sender-side
// credits. Ordering replaces per-op completion: one op per message
// (k=1, no flush ops), the signal word rides the payload flight, and
// Quiet/fence are channel drainage. The receive resequencer restores
// FIFO under fault-induced wire reordering; the per-channel arrival
// logs feed the conformance channel-FIFO oracle.
type memChanT struct {
	base
	world   *runtime.World
	tp      machine.TransportParams
	pes     []*mcPE
	sigBase int
	hook    func(src, dst int, bytes int64, issue, deliver sim.Time)
}

type mcPE struct {
	id    int
	ep    *runtime.Endpoint
	heap  []byte
	chans []*runtime.Channel // per destination rank

	// outstanding counts internal (barrier) messages, which ride raw
	// injections outside the channels.
	outstanding int
	landed      *sim.Cond
	quiesced    *sim.Cond

	barSig  []uint64
	barCond *sim.Cond
	barSeq  int

	atomics int64
}

func newMemChannel(spec Spec) (*memChanT, error) {
	tp, ok := spec.Machine.Params(machine.MemChannel)
	if !ok {
		return nil, fmt.Errorf("comm: machine %s has no memory-channel transport", spec.Machine.Name)
	}
	var heap, sigBase int
	switch {
	case spec.ExchangeSlots > 0:
		sigBase = 2 * spec.ExchangeSlots * spec.SlotBytes
		heap = sigBase + 2*spec.ExchangeSlots*8
	case spec.StreamSlots != nil:
		maxSlots := 0
		for _, n := range spec.StreamSlots {
			if n > maxSlots {
				maxSlots = n
			}
		}
		sigBase = spec.SlotBytes * maxSlots
		heap = sigBase + 8*maxSlots + 64
	case spec.SharedBytes > 0:
		heap = spec.SharedBytes
	}
	w, err := runtime.NewWorldSharded(spec.Machine, spec.Ranks, spec.Shards)
	if err != nil {
		return nil, err
	}
	spec.applyChaos(w, w.Inst.Net)
	t := &memChanT{base: base{spec: spec}, world: w, tp: tp, sigBase: sigBase}
	for r := 0; r < spec.Ranks; r++ {
		eng := w.EngineOf(r)
		t.pes = append(t.pes, &mcPE{
			id:       r,
			ep:       w.Endpoint(r),
			heap:     make([]byte, heap),
			chans:    make([]*runtime.Channel, spec.Ranks),
			landed:   sim.NewCond(eng),
			quiesced: sim.NewCond(eng),
			barSig:   make([]uint64, 64),
			barCond:  sim.NewCond(eng),
		})
	}
	for _, pe := range t.pes {
		for dst := 0; dst < spec.Ranks; dst++ {
			c := runtime.NewChannel(pe.ep, dst, tp)
			c.SetUnordered(spec.DebugUnordered)
			pe.chans[dst] = c
		}
	}
	t.hook = t.attachTrace()
	return t, nil
}

func (t *memChanT) Kind() Kind        { return MemChannel }
func (t *memChanT) Caps() Caps        { return Caps{Atomics: true, Fused: true} }
func (t *memChanT) Digest() uint64    { return t.world.Digest() }
func (t *memChanT) Elapsed() sim.Time { return t.world.Elapsed() }

func (t *memChanT) SharedBytes(rank int) []byte { return t.pes[rank].heap }

// Channels exposes a rank's outgoing channels for the conformance
// channel-FIFO oracle (ChannelInspector).
func (t *memChanT) Channels(rank int) []*runtime.Channel { return t.pes[rank].chans }

func (t *memChanT) AtomicCount() int64 {
	var total int64
	for _, pe := range t.pes {
		total += pe.atomics
	}
	return total
}

func (t *memChanT) Launch(body func(Endpoint)) error {
	for _, pe := range t.pes {
		pe := pe
		t.world.Spawn(pe.id, fmt.Sprintf("rank%d", pe.id), func(proc *sim.Proc) {
			ep := &mcEp{t: t, pe: pe, proc: proc}
			if t.spec.StreamSlots != nil {
				expected := t.spec.StreamSlots[pe.id]
				ep.mask = make([]bool, expected)
				ep.sigs = make([]int, expected)
				for i := range ep.sigs {
					ep.sigs[i] = t.sigBase + 8*i
				}
			}
			body(ep)
		})
	}
	return t.world.Run()
}

type mcEp struct {
	t    *memChanT
	pe   *mcPE
	proc *sim.Proc

	// Streamed-delivery receive state.
	mask []bool
	sigs []int
}

func (e *mcEp) Rank() int          { return e.pe.id }
func (e *mcEp) Size() int          { return e.t.spec.Ranks }
func (e *mcEp) Caps() Caps         { return e.t.Caps() }
func (e *mcEp) Now() sim.Time      { return e.proc.Now() }
func (e *mcEp) Compute(d sim.Time) { e.proc.Sleep(d) }

// putChannel writes one message into the channel toward dst: payload
// plus ridden signal word, applied on the destination in channel
// order (the resequencer guarantees every earlier write on this
// channel landed first — that ordering IS the signal's correctness).
func (e *mcEp) putChannel(dst, dstOff int, data []byte, sigOff int, sigVal uint64) {
	t := e.t
	pe := e.pe
	if dst < 0 || dst >= t.spec.Ranks {
		panic(fmt.Sprintf("comm: channel put to invalid rank %d", dst))
	}
	target := t.pes[dst]
	if dstOff < 0 || dstOff+len(data) > len(target.heap) {
		panic(fmt.Sprintf("comm: channel put [%d,%d) outside rank %d heap (%d bytes)",
			dstOff, dstOff+len(data), dst, len(target.heap)))
	}
	buf := runtime.BorrowBuf(len(data))
	copy(buf, data)
	bytes := int64(len(data))
	if sigOff >= 0 {
		bytes += 8
	}
	issue := e.proc.Now()
	pe.chans[dst].Send(e.proc, bytes, pe.ep.AutoChannel(), func(at sim.Time) {
		copy(target.heap[dstOff:], buf)
		runtime.ReleaseBuf(buf)
		if sigOff >= 0 {
			binaryPutUint64(target.heap, sigOff, sigVal)
		}
		if t.hook != nil {
			t.hook(pe.id, dst, bytes, issue, at)
		}
		target.landed.Broadcast()
	})
}

func (e *mcEp) Barrier() {
	e.Quiet()
	t := e.t
	pe := e.pe
	n := t.spec.Ranks
	if n == 1 {
		return
	}
	seq := pe.barSeq
	pe.barSeq++
	round := 0
	for k := 1; k < n; k <<= 1 {
		dst := t.pes[(pe.id+k)%n]
		slot := (seq*8 + round) % len(dst.barSig)
		gen := uint64(seq + 1)
		// Internal round signal: raw injection outside the channels.
		pe.ep.ChargeOp(e.proc, t.tp)
		pe.outstanding++
		pe.ep.Inject(t.tp, dst.id, 8, pe.ep.AutoChannel(), func(at sim.Time) {
			dst.barSig[slot] = gen
			dst.barCond.Broadcast()
		}, func(at sim.Time) {
			pe.outstanding--
			pe.quiesced.Broadcast()
		})
		mySlot := (seq*8 + round) % len(pe.barSig)
		pe.barCond.WaitFor(e.proc, func() bool { return pe.barSig[mySlot] >= gen })
		round++
	}
}

// Quiet drains every used channel — the transport's native fence is
// channel drainage — then waits out internal barrier traffic.
func (e *mcEp) Quiet() {
	for _, ch := range e.pe.chans {
		if ch.Sent() > 0 {
			ch.Drain(e.proc)
		}
	}
	e.pe.quiesced.WaitFor(e.proc, func() bool { return e.pe.outstanding == 0 })
}

// Exchange is the parity-double-buffered put-with-signal epoch with
// every put riding its destination's ordered channel.
func (e *mcEp) Exchange(epoch int, sends []Msg, recvs []Expect) [][]byte {
	t := e.t
	k, stride, sigBase := t.spec.ExchangeSlots, t.spec.SlotBytes, t.sigBase
	parity := epoch % 2
	for _, m := range sends {
		e.putChannel(m.Peer, (parity*k+m.Slot)*stride, m.Data,
			sigBase+(parity*k+m.Slot)*8, uint64(epoch+1))
	}
	pe := e.pe
	pe.landed.WaitFor(e.proc, func() bool {
		for _, x := range recvs {
			if uint64At(pe.heap, sigBase+(parity*k+x.Slot)*8) != uint64(epoch+1) {
				return false
			}
		}
		return true
	})
	t.sync()
	out := make([][]byte, len(recvs))
	for i, x := range recvs {
		off := (parity*k + x.Slot) * stride
		out[i] = pe.heap[off : off+x.Bytes]
	}
	return out
}

// Deliver is one channel write carrying payload and signal.
func (e *mcEp) Deliver(peer, slot int, data []byte) {
	stride := e.t.spec.SlotBytes
	e.putChannel(peer, slot*stride, data, e.t.sigBase+8*slot, 1)
}

// WaitAnySlot waits for the next unconsumed stream slot signal.
func (e *mcEp) WaitAnySlot() (int, []byte) {
	pe := e.pe
	found := -1
	pe.landed.WaitFor(e.proc, func() bool {
		for i, off := range e.sigs {
			if e.mask[i] {
				continue
			}
			if uint64At(pe.heap, off) == 1 {
				found = i
				return true
			}
		}
		return false
	})
	e.mask[found] = true
	e.t.sync()
	stride := e.t.spec.SlotBytes
	return found, pe.heap[found*stride : (found+1)*stride]
}

func (e *mcEp) CAS(peer, off int, compare, swap uint64) uint64 {
	target := e.t.pes[peer]
	e.pe.atomics++
	return e.pe.ep.RemoteAtomic(e.proc, e.t.tp, peer, func() uint64 {
		old := uint64At(target.heap, off)
		if old == compare {
			binaryPutUint64(target.heap, off, swap)
		}
		return old
	})
}

func (e *mcEp) FetchAdd(peer, off int, delta uint64) uint64 {
	target := e.t.pes[peer]
	e.pe.atomics++
	return e.pe.ep.RemoteAtomic(e.proc, e.t.tp, peer, func() uint64 {
		old := uint64At(target.heap, off)
		binaryPutUint64(target.heap, off, old+delta)
		return old
	})
}

// FlushLocal is a no-op: channel writes complete in order without a
// local-completion op, and atomics block.
func (e *mcEp) FlushLocal(int) {}

// Lanes is 1: a channel is a serialized byte stream per destination,
// so block-level lanes would not add concurrency.
func (e *mcEp) Lanes(int) int { return 1 }

func (e *mcEp) ForkJoin(lanes int, body func(Endpoint, int)) {
	for i := 0; i < lanes; i++ {
		body(e, i)
	}
}

func (e *mcEp) BcastPut([]byte) {
	panic("comm: memchannel updates remotely with atomics (gate on Caps().Atomics)")
}

func (e *mcEp) CollectPuts() [][]byte {
	panic("comm: memchannel updates remotely with atomics (gate on Caps().Atomics)")
}
