// Cross-transport parity: each workload kernel exists exactly once,
// so its semantic outcome must agree across all four transports. The
// transports run on different simulated hardware and legally differ
// in timing; what must match is the numerics.
package comm_test

import (
	"math"
	"testing"

	"msgroofline/internal/comm"
	"msgroofline/internal/hashtable"
	"msgroofline/internal/spmat"
	"msgroofline/internal/sptrsv"
	"msgroofline/internal/stencil"
)

func TestStencilParityAcrossTransports(t *testing.T) {
	// Verified mode is pure dataflow over one fixed decomposition, so
	// the checksum must be bit-identical across transports (the serial
	// reference sums in a different order and only matches to
	// tolerance).
	serial := stencil.SerialReference(48, 5)
	first := math.NaN()
	for _, kind := range comm.Kinds() {
		res, err := stencil.Run(stencil.Config{
			Machine: machineFor(t, kind), Transport: kind,
			Grid: 48, Iters: 5, PX: 2, PY: 2, Verify: true,
		})
		if err != nil {
			t.Fatalf("%s: %v", kind, err)
		}
		if math.Abs(res.Checksum-serial) > 1e-9 {
			t.Fatalf("%s checksum %v far from serial %v", kind, res.Checksum, serial)
		}
		if math.IsNaN(first) {
			first = res.Checksum
		} else if res.Checksum != first {
			t.Fatalf("%s checksum %v, other transports %v (must be bit-identical)", kind, res.Checksum, first)
		}
	}
}

func TestSptrsvParityAcrossTransports(t *testing.T) {
	m, err := spmat.Generate(spmat.Params{N: 240, MeanSnode: 8, Fill: 1.2, Seed: 11})
	if err != nil {
		t.Fatal(err)
	}
	want, err := m.SolveSerial(sptrsv.Rhs(m.N))
	if err != nil {
		t.Fatal(err)
	}
	for _, kind := range comm.Kinds() {
		res, err := sptrsv.Run(sptrsv.Config{
			Machine: machineFor(t, kind), Transport: kind,
			Matrix: m, Ranks: 4,
		})
		if err != nil {
			t.Fatalf("%s: %v", kind, err)
		}
		for i := range want {
			rel := math.Abs(res.X[i]-want[i]) / math.Max(math.Abs(want[i]), 1)
			if rel > 1e-9 {
				t.Fatalf("%s: x[%d] = %v, serial %v", kind, i, res.X[i], want[i])
			}
		}
	}
}

func TestHashtableParityAcrossTransports(t *testing.T) {
	// Collision counts are order-invariant (k claimants of one home
	// slot always produce k-1 overflows), so every transport must
	// agree exactly; shard contents are verified inside Run.
	var want int64 = -1
	for _, kind := range comm.Kinds() {
		res, err := hashtable.Run(hashtable.Config{
			Machine: machineFor(t, kind), Transport: kind,
			Ranks: 4, TotalInserts: 400, Blocks: 4,
		})
		if err != nil {
			t.Fatalf("%s: %v", kind, err)
		}
		if want < 0 {
			want = res.Collisions
			continue
		}
		if res.Collisions != want {
			t.Fatalf("%s collisions = %d, others = %d", kind, res.Collisions, want)
		}
	}
}
