package comm

import (
	"fmt"

	"msgroofline/internal/machine"
	"msgroofline/internal/mpi"
	"msgroofline/internal/sim"
)

// oneWord is the signal payload of the strict protocol's second put.
var oneWord = []byte{1, 0, 0, 0, 0, 0, 0, 0}

// rma delegates to internal/mpi RMA in two flavors sharing one
// window plumbing:
//
//   - strict (notified=false): fence epochs for exchange; the 4-op
//     put data / flush / put signal / flush protocol plus Listing-1
//     signal polling for streams; CAS/fetch-add with per-op
//     flush_local for atomics (§III, k=4);
//   - notified (notified=true): hardware put-with-signal — one fused
//     2-op flight per delivery, receiver-side WaitNotify instead of
//     polling, no flush_local (§V, k=2).
type rma struct {
	base
	c        *mpi.Comm
	notified bool

	exchWin *mpi.Win // exchange mode: 2 parities x K slots (+ signals when notified)
	dataWin *mpi.Win // strict stream mode: data slots
	sigWin  *mpi.Win // strict stream mode: signal words
	ntfWin  *mpi.Win // notified stream mode: data slots then signal words
	heapWin *mpi.Win // shared mode: raw atomics heap
}

func newRMA(spec Spec, notified bool) (*rma, error) {
	if notified {
		if _, ok := spec.Machine.Params(machine.NotifiedAccess); !ok {
			return nil, fmt.Errorf("comm: machine %s has no notified-access transport", spec.Machine.Name)
		}
	}
	c, err := mpi.NewCommSharded(spec.Machine, spec.Ranks, spec.Shards)
	if err != nil {
		return nil, err
	}
	spec.applyChaos(c.World(), c.World().Inst.Net)
	t := &rma{base: base{spec: spec}, c: c, notified: notified}
	// The trace tap goes on whichever window carries payload puts;
	// protocol-overhead signal puts (sigWin) are charged, not traced.
	var tapWin *mpi.Win
	switch {
	case spec.ExchangeSlots > 0:
		size := 2 * spec.ExchangeSlots * spec.SlotBytes
		if notified {
			size += 2 * spec.ExchangeSlots * 8
		}
		if t.exchWin, err = c.NewWin(size); err != nil {
			return nil, err
		}
		tapWin = t.exchWin
	case spec.StreamSlots != nil:
		if notified {
			// Data slots followed by notification slots in one window.
			sizes := make([]int, spec.Ranks)
			for r := range sizes {
				sizes[r] = (spec.SlotBytes + 8) * spec.StreamSlots[r]
			}
			if t.ntfWin, err = c.NewWinSizes(sizes); err != nil {
				return nil, err
			}
			tapWin = t.ntfWin
		} else {
			dataSizes := make([]int, spec.Ranks)
			sigSizes := make([]int, spec.Ranks)
			for r := range dataSizes {
				dataSizes[r] = spec.SlotBytes * spec.StreamSlots[r]
				sigSizes[r] = 8 * spec.StreamSlots[r]
			}
			if t.dataWin, err = c.NewWinSizes(dataSizes); err != nil {
				return nil, err
			}
			if t.sigWin, err = c.NewWinSizes(sigSizes); err != nil {
				return nil, err
			}
			tapWin = t.dataWin
		}
	case spec.SharedBytes > 0:
		if t.heapWin, err = c.NewWin(spec.SharedBytes); err != nil {
			return nil, err
		}
		tapWin = t.heapWin
	}
	if hook := t.attachTrace(); hook != nil {
		tapWin.SetHook(hook)
	}
	return t, nil
}

func (t *rma) Kind() Kind {
	if t.notified {
		return Notified
	}
	return OneSided
}

func (t *rma) Caps() Caps        { return Caps{Atomics: true, Fused: t.notified} }
func (t *rma) Digest() uint64    { return t.c.Digest() }
func (t *rma) Elapsed() sim.Time { return t.c.Elapsed() }

func (t *rma) SharedBytes(rank int) []byte {
	if t.heapWin == nil {
		return nil
	}
	return t.heapWin.Local(rank)
}

func (t *rma) AtomicCount() int64 {
	if t.heapWin == nil {
		return 0
	}
	_, _, atomics := t.heapWin.OpStats()
	return atomics
}

func (t *rma) Launch(body func(Endpoint)) error {
	return t.c.Launch(func(r *mpi.Rank) {
		ep := &rmaEp{t: t, r: r}
		if t.spec.StreamSlots != nil {
			ep.expected = t.spec.StreamSlots[r.Rank()]
			ep.mask = make([]bool, ep.expected)
			if t.notified {
				base := t.spec.SlotBytes * ep.expected
				ep.sigs = make([]int, ep.expected)
				for i := range ep.sigs {
					ep.sigs[i] = base + 8*i
				}
			}
		}
		body(ep)
	})
}

type rmaEp struct {
	t *rma
	r *mpi.Rank

	// Streamed-delivery receive state.
	expected int
	mask     []bool
	sigs     []int // notified: this rank's notification offsets
	got      int
}

func (e *rmaEp) Rank() int          { return e.r.Rank() }
func (e *rmaEp) Size() int          { return e.t.spec.Ranks }
func (e *rmaEp) Caps() Caps         { return e.t.Caps() }
func (e *rmaEp) Now() sim.Time      { return e.r.Now() }
func (e *rmaEp) Compute(d sim.Time) { e.r.Compute(d) }
func (e *rmaEp) Barrier()           { e.r.Barrier() }

// Quiet is a no-op: the strict protocol flushes every delivery at
// issue time and notified-access ops complete fused, so there is
// never outstanding local state to drain (and no op to charge).
func (e *rmaEp) Quiet() {}

// Exchange runs one epoch against the parity-double-buffered window:
// strict mode closes it with a fence (Put x sends + MPI_Win_fence,
// §III-A); notified mode replaces the fence with per-slot
// put-with-signal and receiver-side WaitNotify — no barrier.
func (e *rmaEp) Exchange(epoch int, sends []Msg, recvs []Expect) [][]byte {
	t := e.t
	k, stride := t.spec.ExchangeSlots, t.spec.SlotBytes
	parity := epoch % 2
	if t.notified {
		sigBase := 2 * k * stride
		for _, m := range sends {
			if err := e.r.PutNotify(t.exchWin, m.Peer, (parity*k+m.Slot)*stride, m.Data,
				sigBase+(parity*k+m.Slot)*8, uint64(epoch+1)); err != nil {
				panic(err)
			}
		}
		for _, x := range recvs {
			e.r.WaitNotify(t.exchWin, sigBase+(parity*k+x.Slot)*8, uint64(epoch+1))
		}
	} else {
		for _, m := range sends {
			e.r.Put(t.exchWin, m.Peer, (parity*k+m.Slot)*stride, m.Data)
		}
		e.r.Fence(t.exchWin)
	}
	e.t.sync()
	me := e.r.Rank()
	out := make([][]byte, len(recvs))
	for i, x := range recvs {
		off := (parity*k + x.Slot) * stride
		out[i] = t.exchWin.Local(me)[off : off+x.Bytes]
	}
	return out
}

// Deliver streams one payload into (peer, slot). Strict mode is the
// paper's 4-op protocol: Put data, Win_flush, Put signal, Win_flush.
// Notified mode is ONE fused operation and one flight.
func (e *rmaEp) Deliver(peer, slot int, data []byte) {
	t := e.t
	stride := t.spec.SlotBytes
	if t.notified {
		base := stride * t.spec.StreamSlots[peer]
		if err := e.r.PutNotify(t.ntfWin, peer, slot*stride, data, base+8*slot, 1); err != nil {
			panic(err)
		}
		return
	}
	e.r.Put(t.dataWin, peer, slot*stride, data)
	e.r.Flush(t.dataWin, peer)
	e.r.Put(t.sigWin, peer, slot*8, oneWord)
	e.r.Flush(t.sigWin, peer)
}

// WaitAnySlot blocks for the next unconsumed delivery. Strict mode is
// the paper's Listing-1 acknowledgment loop — scan the signal words
// masking out arrivals, charging PollCheck per remaining slot per
// wakeup. Notified mode waits on the hardware notification instead.
func (e *rmaEp) WaitAnySlot() (int, []byte) {
	t := e.t
	stride := t.spec.SlotBytes
	me := e.r.Rank()
	if t.notified {
		i := e.r.WaitNotifyAny(t.ntfWin, e.sigs, e.mask, 1)
		e.mask[i] = true
		e.got++
		t.sync()
		return i, t.ntfWin.Local(me)[i*stride : (i+1)*stride]
	}
	found := -1
	t.sigWin.TargetSignal(me).WaitFor(e.r.Proc(), func() bool {
		for i := 0; i < e.expected; i++ {
			if e.mask[i] {
				continue
			}
			if t.sigWin.Uint64At(me, 8*i) == 1 {
				found = i
				return true
			}
		}
		return false
	})
	// Charge the scan over the remaining (unmasked) slots.
	if t.spec.PollCheck > 0 {
		e.r.Compute(t.spec.PollCheck * sim.Time(e.expected-e.got))
	}
	e.mask[found] = true
	e.got++
	t.sync()
	return found, t.dataWin.Local(me)[found*stride : (found+1)*stride]
}

func (e *rmaEp) CAS(peer, off int, compare, swap uint64) uint64 {
	return e.r.CompareAndSwap(e.t.heapWin, peer, off, compare, swap)
}

func (e *rmaEp) FetchAdd(peer, off int, delta uint64) uint64 {
	return e.r.FetchAndAdd(e.t.heapWin, peer, off, delta)
}

// FlushLocal completes outstanding RMA toward peer locally — a
// charged MPI op on the strict path; fused notified-access ops are
// already locally complete, so notified mode skips it.
func (e *rmaEp) FlushLocal(peer int) {
	if e.t.notified {
		return
	}
	e.r.FlushLocal(e.t.heapWin, peer)
}

func (e *rmaEp) Lanes(int) int { return 1 }

func (e *rmaEp) ForkJoin(lanes int, body func(Endpoint, int)) {
	for i := 0; i < lanes; i++ {
		body(e, i)
	}
}

func (e *rmaEp) BcastPut([]byte) {
	panic("comm: RMA transports update remotely with atomics (gate on Caps().Atomics)")
}

func (e *rmaEp) CollectPuts() [][]byte {
	panic("comm: RMA transports update remotely with atomics (gate on Caps().Atomics)")
}
