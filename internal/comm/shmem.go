package comm

import (
	"msgroofline/internal/shmem"
	"msgroofline/internal/sim"
)

// shmemT delegates to the internal/shmem NVSHMEM-style PGAS stack:
// put_signal_nbi delivery (k=2: payload and signal charged as one
// fused 2-op flight), wait_until_* receivers, blocking device
// atomics, and fork/join thread-block contexts.
type shmemT struct {
	base
	j *shmem.Job
	// sigBase is the heap offset of the signal area (exchange and
	// stream modes).
	sigBase int
}

func newShmem(spec Spec) (*shmemT, error) {
	var heap, sigBase int
	switch {
	case spec.ExchangeSlots > 0:
		// 2 parities x K data slots, then 2 parities x K signals.
		sigBase = 2 * spec.ExchangeSlots * spec.SlotBytes
		heap = sigBase + 2*spec.ExchangeSlots*8
	case spec.StreamSlots != nil:
		maxSlots := 0
		for _, n := range spec.StreamSlots {
			if n > maxSlots {
				maxSlots = n
			}
		}
		sigBase = spec.SlotBytes * maxSlots
		heap = sigBase + 8*maxSlots + 64
	case spec.SharedBytes > 0:
		heap = spec.SharedBytes
	}
	j, err := shmem.NewJobSharded(spec.Machine, spec.Ranks, heap, spec.Shards)
	if err != nil {
		return nil, err
	}
	spec.applyChaos(j.World(), j.World().Inst.Net)
	t := &shmemT{base: base{spec: spec}, j: j, sigBase: sigBase}
	if hook := t.attachTrace(); hook != nil {
		j.SetPutHook(hook)
	}
	return t, nil
}

func (t *shmemT) Kind() Kind        { return Shmem }
func (t *shmemT) Caps() Caps        { return Caps{Atomics: true, Fused: true} }
func (t *shmemT) Digest() uint64    { return t.j.Digest() }
func (t *shmemT) Elapsed() sim.Time { return t.j.Elapsed() }

func (t *shmemT) SharedBytes(pe int) []byte { return t.j.PE(pe).Heap() }

func (t *shmemT) AtomicCount() int64 {
	var total int64
	for pe := 0; pe < t.spec.Ranks; pe++ {
		_, atomics := t.j.PE(pe).OpStats()
		total += atomics
	}
	return total
}

func (t *shmemT) Launch(body func(Endpoint)) error {
	return t.j.Launch(func(c *shmem.Ctx) { body(t.newEp(c)) })
}

func (t *shmemT) newEp(c *shmem.Ctx) *shEp {
	ep := &shEp{t: t, c: c}
	if t.spec.StreamSlots != nil {
		expected := t.spec.StreamSlots[c.MyPE()]
		ep.mask = make([]bool, expected)
		ep.sigs = make([]int, expected)
		for i := range ep.sigs {
			ep.sigs[i] = t.sigBase + 8*i
		}
	}
	return ep
}

type shEp struct {
	t *shmemT
	c *shmem.Ctx

	// Streamed-delivery receive state (shared with fork/join lanes).
	mask []bool
	sigs []int
}

func (e *shEp) Rank() int          { return e.c.MyPE() }
func (e *shEp) Size() int          { return e.t.spec.Ranks }
func (e *shEp) Caps() Caps         { return e.t.Caps() }
func (e *shEp) Now() sim.Time      { return e.c.Now() }
func (e *shEp) Compute(d sim.Time) { e.c.Compute(d) }
func (e *shEp) Barrier()           { e.c.Barrier() }
func (e *shEp) Quiet()             { e.c.Quiet() }

// Exchange runs one epoch of put-with-signal toward each peer slot
// and wait_until_all on this rank's expected signals — no barrier,
// parity double-buffering keeps epochs from colliding.
func (e *shEp) Exchange(epoch int, sends []Msg, recvs []Expect) [][]byte {
	t := e.t
	k, stride, sigBase := t.spec.ExchangeSlots, t.spec.SlotBytes, t.sigBase
	parity := epoch % 2
	for _, m := range sends {
		e.c.PutSignalNBI(m.Peer, (parity*k+m.Slot)*stride, m.Data,
			sigBase+(parity*k+m.Slot)*8, uint64(epoch+1))
	}
	sigs := make([]int, 0, len(recvs))
	for _, x := range recvs {
		sigs = append(sigs, sigBase+(parity*k+x.Slot)*8)
	}
	e.c.WaitUntilAll(sigs, uint64(epoch+1))
	t.sync()
	heap := e.c.PE().Heap()
	out := make([][]byte, len(recvs))
	for i, x := range recvs {
		off := (parity*k + x.Slot) * stride
		out[i] = heap[off : off+x.Bytes]
	}
	return out
}

// Deliver is one nvshmem put-with-signal: payload and signal in one
// fused nonblocking operation (k=2).
func (e *shEp) Deliver(peer, slot int, data []byte) {
	stride := e.t.spec.SlotBytes
	e.c.PutSignalNBI(peer, slot*stride, data, e.t.sigBase+8*slot, 1)
}

// WaitAnySlot is nvshmem_wait_until_any over the unmasked signals.
func (e *shEp) WaitAnySlot() (int, []byte) {
	i := e.c.WaitUntilAny(e.sigs, e.mask, 1)
	e.mask[i] = true
	e.t.sync()
	stride := e.t.spec.SlotBytes
	return i, e.c.PE().Heap()[i*stride : (i+1)*stride]
}

func (e *shEp) CAS(peer, off int, compare, swap uint64) uint64 {
	return e.c.AtomicCompareSwap(peer, off, compare, swap)
}

func (e *shEp) FetchAdd(peer, off int, delta uint64) uint64 {
	return e.c.AtomicFetchAdd(peer, off, delta)
}

// FlushLocal is a no-op: blocking device atomics are complete when
// they return, with no separate local-completion op to charge.
func (e *shEp) FlushLocal(int) {}

func (e *shEp) Lanes(want int) int { return want }

// ForkJoin spreads body over lanes concurrent thread-block contexts.
func (e *shEp) ForkJoin(lanes int, body func(Endpoint, int)) {
	e.c.ForkJoin(lanes, func(blk *shmem.Ctx, bi int) {
		body(&shEp{t: e.t, c: blk, mask: e.mask, sigs: e.sigs}, bi)
	})
}

func (e *shEp) BcastPut([]byte) {
	panic("comm: shmem updates remotely with atomics (gate on Caps().Atomics)")
}

func (e *shEp) CollectPuts() [][]byte {
	panic("comm: shmem updates remotely with atomics (gate on Caps().Atomics)")
}
