package comm

import (
	"fmt"

	"msgroofline/internal/gpu"
	"msgroofline/internal/machine"
	"msgroofline/internal/runtime"
	"msgroofline/internal/sim"
)

// streamT is stream-triggered MPI (Bridges et al.): every put is a
// descriptor the host enqueues onto the rank's device stream for a
// near-zero op overhead, and the GPU trigger engine fires it once its
// stream predecessor has completed — the o/L split inverts relative
// to host-driven stacks (tiny o at enqueue, TriggerLatency added to
// every message's latency). Delivery itself is a fused
// put-with-signal flight like shmem's, so k=2 and the signal word
// rides the payload. Quiet waits for every enqueued descriptor to
// both fire and deliver; the per-rank gpu.Stream keeps the full
// enqueue/ready/fire log for the conformance stream-ordering oracle.
type streamT struct {
	base
	world   *runtime.World
	tp      machine.TransportParams
	pes     []*stPE
	sigBase int
	hook    func(src, dst int, bytes int64, issue, deliver sim.Time)
}

type stPE struct {
	id     int
	ep     *runtime.Endpoint
	heap   []byte
	stream *gpu.Stream

	outstanding int
	landed      *sim.Cond
	quiesced    *sim.Cond

	barSig  []uint64
	barCond *sim.Cond
	barSeq  int

	atomics int64
}

func newStreamTriggered(spec Spec) (*streamT, error) {
	tp, ok := spec.Machine.Params(machine.StreamTriggered)
	if !ok {
		return nil, fmt.Errorf("comm: machine %s has no stream-triggered transport", spec.Machine.Name)
	}
	var heap, sigBase int
	switch {
	case spec.ExchangeSlots > 0:
		sigBase = 2 * spec.ExchangeSlots * spec.SlotBytes
		heap = sigBase + 2*spec.ExchangeSlots*8
	case spec.StreamSlots != nil:
		maxSlots := 0
		for _, n := range spec.StreamSlots {
			if n > maxSlots {
				maxSlots = n
			}
		}
		sigBase = spec.SlotBytes * maxSlots
		heap = sigBase + 8*maxSlots + 64
	case spec.SharedBytes > 0:
		heap = spec.SharedBytes
	}
	w, err := runtime.NewWorldSharded(spec.Machine, spec.Ranks, spec.Shards)
	if err != nil {
		return nil, err
	}
	spec.applyChaos(w, w.Inst.Net)
	t := &streamT{base: base{spec: spec}, world: w, tp: tp, sigBase: sigBase}
	for r := 0; r < spec.Ranks; r++ {
		eng := w.EngineOf(r)
		s := gpu.NewStream(tp.TriggerLatency)
		s.SetUnordered(spec.DebugUnordered)
		t.pes = append(t.pes, &stPE{
			id:       r,
			ep:       w.Endpoint(r),
			heap:     make([]byte, heap),
			stream:   s,
			landed:   sim.NewCond(eng),
			quiesced: sim.NewCond(eng),
			barSig:   make([]uint64, 64),
			barCond:  sim.NewCond(eng),
		})
	}
	t.hook = t.attachTrace()
	return t, nil
}

func (t *streamT) Kind() Kind        { return StreamTriggered }
func (t *streamT) Caps() Caps        { return Caps{Atomics: true, Fused: true} }
func (t *streamT) Digest() uint64    { return t.world.Digest() }
func (t *streamT) Elapsed() sim.Time { return t.world.Elapsed() }

func (t *streamT) SharedBytes(rank int) []byte { return t.pes[rank].heap }

// Stream exposes a rank's device stream for the conformance
// stream-ordering oracle (StreamInspector).
func (t *streamT) Stream(rank int) *gpu.Stream { return t.pes[rank].stream }

func (t *streamT) AtomicCount() int64 {
	var total int64
	for _, pe := range t.pes {
		total += pe.atomics
	}
	return total
}

func (t *streamT) Launch(body func(Endpoint)) error {
	for _, pe := range t.pes {
		pe := pe
		t.world.Spawn(pe.id, fmt.Sprintf("rank%d", pe.id), func(proc *sim.Proc) {
			ep := &stEp{t: t, pe: pe, proc: proc}
			if t.spec.StreamSlots != nil {
				expected := t.spec.StreamSlots[pe.id]
				ep.mask = make([]bool, expected)
				ep.sigs = make([]int, expected)
				for i := range ep.sigs {
					ep.sigs[i] = t.sigBase + 8*i
				}
			}
			body(ep)
		})
	}
	return t.world.Run()
}

type stEp struct {
	t    *streamT
	pe   *stPE
	proc *sim.Proc

	// Streamed-delivery receive state.
	mask []bool
	sigs []int
}

func (e *stEp) Rank() int          { return e.pe.id }
func (e *stEp) Size() int          { return e.t.spec.Ranks }
func (e *stEp) Caps() Caps         { return e.t.Caps() }
func (e *stEp) Now() sim.Time      { return e.proc.Now() }
func (e *stEp) Compute(d sim.Time) { e.proc.Sleep(d) }

// putStream enqueues one fused put-with-signal descriptor: the host
// pays two tiny enqueue overheads (descriptor + doorbell, k=2), the
// stream computes the fire time, and the injection event runs at the
// fire — from then on the message takes the usual wire journey. The
// signal word rides the payload flight (+8 bytes).
func (e *stEp) putStream(dst, dstOff int, data []byte, sigOff int, sigVal uint64) {
	t := e.t
	pe := e.pe
	if dst < 0 || dst >= t.spec.Ranks {
		panic(fmt.Sprintf("comm: stream-triggered put to invalid rank %d", dst))
	}
	target := t.pes[dst]
	if dstOff < 0 || dstOff+len(data) > len(target.heap) {
		panic(fmt.Sprintf("comm: stream-triggered put [%d,%d) outside rank %d heap (%d bytes)",
			dstOff, dstOff+len(data), dst, len(target.heap)))
	}
	for i := 0; i < t.tp.OpsPerMsg; i++ {
		pe.ep.ChargeOp(e.proc, t.tp)
	}
	buf := runtime.BorrowBuf(len(data))
	copy(buf, data)
	bytes := int64(len(data))
	if sigOff >= 0 {
		bytes += 8
	}
	pe.outstanding++
	fire := pe.stream.Enqueue(e.proc.Now())
	ch := pe.ep.AutoChannel()
	eng := e.proc.Engine()
	eng.At(fire, func() {
		pe.ep.Inject(t.tp, dst, bytes, ch, func(at sim.Time) {
			copy(target.heap[dstOff:], buf)
			runtime.ReleaseBuf(buf)
			if sigOff >= 0 {
				binaryPutUint64(target.heap, sigOff, sigVal)
			}
			if t.hook != nil {
				t.hook(pe.id, dst, bytes, fire, at)
			}
			target.landed.Broadcast()
		}, func(at sim.Time) {
			pe.outstanding--
			pe.quiesced.Broadcast()
		})
	})
}

func (e *stEp) Barrier() {
	e.Quiet()
	t := e.t
	pe := e.pe
	n := t.spec.Ranks
	if n == 1 {
		return
	}
	seq := pe.barSeq
	pe.barSeq++
	round := 0
	for k := 1; k < n; k <<= 1 {
		dst := t.pes[(pe.id+k)%n]
		slot := (seq*8 + round) % len(dst.barSig)
		gen := uint64(seq + 1)
		// Internal round signal: host-posted, not streamed, not traced.
		pe.ep.ChargeOp(e.proc, t.tp)
		pe.outstanding++
		pe.ep.Inject(t.tp, dst.id, 8, pe.ep.AutoChannel(), func(at sim.Time) {
			dst.barSig[slot] = gen
			dst.barCond.Broadcast()
		}, func(at sim.Time) {
			pe.outstanding--
			pe.quiesced.Broadcast()
		})
		mySlot := (seq*8 + round) % len(pe.barSig)
		pe.barCond.WaitFor(e.proc, func() bool { return pe.barSig[mySlot] >= gen })
		round++
	}
}

// Quiet waits until every enqueued descriptor has fired and its
// message delivered (stream drained + remote completion).
func (e *stEp) Quiet() {
	e.pe.ep.ChargeOp(e.proc, e.t.tp)
	e.pe.quiesced.WaitFor(e.proc, func() bool { return e.pe.outstanding == 0 })
}

// Exchange is the parity-double-buffered put-with-signal epoch of the
// fused transports, with every put riding the device stream.
func (e *stEp) Exchange(epoch int, sends []Msg, recvs []Expect) [][]byte {
	t := e.t
	k, stride, sigBase := t.spec.ExchangeSlots, t.spec.SlotBytes, t.sigBase
	parity := epoch % 2
	for _, m := range sends {
		e.putStream(m.Peer, (parity*k+m.Slot)*stride, m.Data,
			sigBase+(parity*k+m.Slot)*8, uint64(epoch+1))
	}
	pe := e.pe
	pe.landed.WaitFor(e.proc, func() bool {
		for _, x := range recvs {
			if uint64At(pe.heap, sigBase+(parity*k+x.Slot)*8) != uint64(epoch+1) {
				return false
			}
		}
		return true
	})
	t.sync()
	out := make([][]byte, len(recvs))
	for i, x := range recvs {
		off := (parity*k + x.Slot) * stride
		out[i] = pe.heap[off : off+x.Bytes]
	}
	return out
}

// Deliver is one stream-triggered fused put-with-signal.
func (e *stEp) Deliver(peer, slot int, data []byte) {
	stride := e.t.spec.SlotBytes
	e.putStream(peer, slot*stride, data, e.t.sigBase+8*slot, 1)
}

// WaitAnySlot waits for the next unconsumed stream slot signal.
func (e *stEp) WaitAnySlot() (int, []byte) {
	pe := e.pe
	found := -1
	pe.landed.WaitFor(e.proc, func() bool {
		for i, off := range e.sigs {
			if e.mask[i] {
				continue
			}
			if uint64At(pe.heap, off) == 1 {
				found = i
				return true
			}
		}
		return false
	})
	e.mask[found] = true
	e.t.sync()
	stride := e.t.spec.SlotBytes
	return found, pe.heap[found*stride : (found+1)*stride]
}

func (e *stEp) CAS(peer, off int, compare, swap uint64) uint64 {
	target := e.t.pes[peer]
	e.pe.atomics++
	return e.pe.ep.RemoteAtomic(e.proc, e.t.tp, peer, func() uint64 {
		old := uint64At(target.heap, off)
		if old == compare {
			binaryPutUint64(target.heap, off, swap)
		}
		return old
	})
}

func (e *stEp) FetchAdd(peer, off int, delta uint64) uint64 {
	target := e.t.pes[peer]
	e.pe.atomics++
	return e.pe.ep.RemoteAtomic(e.proc, e.t.tp, peer, func() uint64 {
		old := uint64At(target.heap, off)
		binaryPutUint64(target.heap, off, old+delta)
		return old
	})
}

// FlushLocal is a no-op: atomics block and puts complete via stream
// order, with no separate local-completion op to charge.
func (e *stEp) FlushLocal(int) {}

// Lanes is 1: communication is serialized through the rank's single
// device stream, so block-level lanes would not add concurrency.
func (e *stEp) Lanes(int) int { return 1 }

func (e *stEp) ForkJoin(lanes int, body func(Endpoint, int)) {
	for i := 0; i < lanes; i++ {
		body(e, i)
	}
}

func (e *stEp) BcastPut([]byte) {
	panic("comm: stream-triggered updates remotely with atomics (gate on Caps().Atomics)")
}

func (e *stEp) CollectPuts() [][]byte {
	panic("comm: stream-triggered updates remotely with atomics (gate on Caps().Atomics)")
}
