package comm

import (
	"msgroofline/internal/mpi"
	"msgroofline/internal/sim"
)

// twoSided delegates to internal/mpi point-to-point: Isend/Irecv/
// Waitall exchange, eager streamed sends received with
// Recv(ANY_SOURCE), and the broadcast fallback for remote updates.
type twoSided struct {
	base
	c *mpi.Comm
}

func newTwoSided(spec Spec) (*twoSided, error) {
	c, err := mpi.NewCommSharded(spec.Machine, spec.Ranks, spec.Shards)
	if err != nil {
		return nil, err
	}
	spec.applyChaos(c.World(), c.World().Inst.Net)
	t := &twoSided{base: base{spec: spec}, c: c}
	if hook := t.attachTrace(); hook != nil {
		c.SetSendHook(hook)
	}
	return t, nil
}

func (t *twoSided) Kind() Kind             { return TwoSided }
func (t *twoSided) Caps() Caps             { return Caps{} }
func (t *twoSided) Digest() uint64         { return t.c.Digest() }
func (t *twoSided) Elapsed() sim.Time      { return t.c.Elapsed() }
func (t *twoSided) SharedBytes(int) []byte { return nil }
func (t *twoSided) AtomicCount() int64     { return 0 }

func (t *twoSided) Launch(body func(Endpoint)) error {
	return t.c.Launch(func(r *mpi.Rank) { body(&tsEp{t: t, r: r}) })
}

type tsEp struct {
	t *twoSided
	r *mpi.Rank
}

func (e *tsEp) Rank() int          { return e.r.Rank() }
func (e *tsEp) Size() int          { return e.t.spec.Ranks }
func (e *tsEp) Caps() Caps         { return Caps{} }
func (e *tsEp) Now() sim.Time      { return e.r.Now() }
func (e *tsEp) Compute(d sim.Time) { e.r.Compute(d) }
func (e *tsEp) Barrier()           { e.r.Barrier() }

// Quiet is a no-op: eager sends buffer at the origin and complete
// without local waiting, so there is nothing to drain (and MPI
// charges no operation for it).
func (e *tsEp) Quiet() {}

// Exchange posts every expected receive, then every send, and closes
// the epoch with Waitall. Tags encode (epoch, receive slot), which
// both sides derive identically.
func (e *tsEp) Exchange(epoch int, sends []Msg, recvs []Expect) [][]byte {
	k := e.t.spec.ExchangeSlots
	reqs := make([]*mpi.Request, 0, len(recvs)+len(sends))
	rr := make([]*mpi.Request, len(recvs))
	for i, x := range recvs {
		rq := e.r.Irecv(x.Peer, epoch*k+x.Slot)
		rr[i] = rq
		reqs = append(reqs, rq)
	}
	for _, m := range sends {
		reqs = append(reqs, e.r.Isend(m.Peer, epoch*k+m.Slot, m.Data))
	}
	e.r.Waitall(reqs)
	e.t.sync()
	out := make([][]byte, len(recvs))
	for i, rq := range rr {
		out[i] = rq.Data
	}
	return out
}

// Deliver is one eager Isend tagged with the receiver-side slot.
func (e *tsEp) Deliver(peer, slot int, data []byte) {
	e.r.Isend(peer, slot, data)
}

// WaitAnySlot receives the next message with ANY_SOURCE/ANY_TAG; the
// tag carries the slot index.
func (e *tsEp) WaitAnySlot() (int, []byte) {
	req := e.r.Recv(mpi.AnySource, mpi.AnyTag)
	e.t.sync() // one message per synchronization (Table II)
	return req.Tag, req.Data
}

func (e *tsEp) CAS(int, int, uint64, uint64) uint64 {
	panic("comm: two-sided transport has no remote atomics (gate on Caps().Atomics)")
}

func (e *tsEp) FetchAdd(int, int, uint64) uint64 {
	panic("comm: two-sided transport has no remote atomics (gate on Caps().Atomics)")
}

func (e *tsEp) FlushLocal(int) {
	panic("comm: two-sided transport has no RMA to flush (gate on Caps().Atomics)")
}

func (e *tsEp) Lanes(int) int { return 1 }

func (e *tsEp) ForkJoin(lanes int, body func(Endpoint, int)) {
	for i := 0; i < lanes; i++ {
		body(e, i)
	}
}

// BcastPut fans one payload out to every other rank (the paper's
// two-sided hashtable round, P-1 messages per insert).
func (e *tsEp) BcastPut(data []byte) {
	me := e.r.Rank()
	for d := 0; d < e.t.spec.Ranks; d++ {
		if d != me {
			e.r.Isend(d, 0, data)
		}
	}
}

// CollectPuts drains the Size()-1 payloads of one broadcast round in
// arrival order and marks the round's synchronization.
func (e *tsEp) CollectPuts() [][]byte {
	p := e.t.spec.Ranks
	out := make([][]byte, 0, p-1)
	for got := 0; got < p-1; got++ {
		req := e.r.Recv(mpi.AnySource, mpi.AnyTag)
		out = append(out, req.Data)
	}
	e.t.sync() // one insert round = one synchronization
	return out
}
