// Package conformance is a schedule-fuzzing harness for the simulated
// transports. It replays the paper's workload kernels and a set of
// semantics micro-kernels across hundreds of seeds, each seed driving
// engine-level schedule perturbation (same-timestamp reordering plus
// bounded latency jitter, internal/sim) and network fault injection
// (latency spikes and drop-with-retransmit, internal/netsim), and
// checks invariant oracles against a clean reference run:
//
//   - MPI: non-overtaking per (source, tag), Waitall completion,
//     unexpected-queue drainage, collective results byte-equal to a
//     sequential reference;
//   - SHMEM: put-with-signal visibility, quiet/fence ordering,
//     Outstanding drainage;
//   - workloads: stencil checksum bit-stable, sptrsv solution within
//     tolerance, hashtable shards verified with an order-invariant
//     collision count.
//
// Every run is deterministic in its seed; a failing seed is shrunk to
// a minimal perturbation script that replays the failure exactly.
package conformance

import (
	"fmt"
	"math"
	"strings"

	"msgroofline/internal/netsim"
	"msgroofline/internal/sched"
	"msgroofline/internal/sim"
)

// Options configures a conformance sweep.
type Options struct {
	// Seeds is how many consecutive seeds to run (default 50).
	Seeds int
	// FirstSeed is the first seed value (seeds are FirstSeed,
	// FirstSeed+1, ...).
	FirstSeed uint64
	// Jobs bounds the worker pool; <= 0 selects GOMAXPROCS.
	Jobs int
	// MaxJitter bounds per-event schedule jitter (default 2us).
	MaxJitter sim.Time
	// DropProb is the per-transmission drop probability. Zero selects
	// the default 0.02; negative disables drops.
	DropProb float64
	// SpikeProb is the per-message latency-spike probability. Zero
	// selects the default 0.05; negative disables spikes.
	SpikeProb float64
	// MaxSpike bounds spike delay (default 3us).
	MaxSpike sim.Time
	// Kernels filters cases by kernel name (nil keeps all).
	Kernels []string
	// Transports filters cases by transport name (nil keeps all).
	Transports []string
	// Unordered disables the MPI non-overtaking resequencer in the
	// micro-kernels (deliberate bug injection for mutation testing).
	Unordered bool
	// NoShrink skips schedule minimization of failing seeds.
	NoShrink bool
	// ShrinkBudget caps replays spent shrinking one violation
	// (default 200).
	ShrinkBudget int
}

func (o Options) withDefaults() Options {
	if o.Seeds <= 0 {
		o.Seeds = 50
	}
	if o.MaxJitter <= 0 {
		o.MaxJitter = 2 * sim.Microsecond
	}
	if o.DropProb == 0 {
		o.DropProb = 0.02
	}
	if o.SpikeProb == 0 {
		o.SpikeProb = 0.05
	}
	if o.MaxSpike <= 0 {
		o.MaxSpike = 3 * sim.Microsecond
	}
	if o.ShrinkBudget <= 0 {
		o.ShrinkBudget = 200
	}
	return o
}

// Violation is one conformance failure, reproducible from (Kernel,
// Transport, Seed) alone or — after shrinking — from Script, the
// minimal perturbation schedule that still fails.
type Violation struct {
	Kernel    string
	Transport string
	Seed      uint64
	// Detail describes the failed oracle or outcome mismatch.
	Detail string
	// Script is the (shrunk) perturbation decision schedule; replay
	// it with Replay.
	Script []sim.PerturbDecision
	// StreamLens is the per-node-group decision-stream layout of
	// Script (sim.Perturbation.StreamLens): a coupled world records
	// one stream per group, flattened in group order. Shrinking trims
	// the flat script only; the lens stay fixed and clamp.
	StreamLens []int
	// TraceLen is the recorded decision count before shrinking.
	TraceLen int
}

func (v Violation) String() string {
	return fmt.Sprintf("%s/%s seed=%d script=%d/%d: %s",
		v.Kernel, v.Transport, v.Seed, activeDecisions(v.Script), v.TraceLen, v.Detail)
}

// Report summarizes a conformance sweep.
type Report struct {
	// Cases is the number of kernel x transport cells exercised.
	Cases int
	// Seeds is the number of seeds run per case.
	Seeds int
	// Runs is Cases * Seeds.
	Runs int
	// Violations holds every failure, in (seed, case) order.
	Violations []Violation
}

// Ok reports whether the sweep passed cleanly.
func (r *Report) Ok() bool { return len(r.Violations) == 0 }

func (r *Report) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "conformance: %d cases x %d seeds = %d runs, %d violations",
		r.Cases, r.Seeds, r.Runs, len(r.Violations))
	for _, v := range r.Violations {
		fmt.Fprintf(&b, "\n  %s", v.String())
	}
	return b.String()
}

// Run executes the conformance sweep: clean reference runs first,
// then every selected case under every seed's perturbation + fault
// stream, in parallel across seeds with deterministic report order.
func Run(o Options) (*Report, error) {
	o = o.withDefaults()
	cases := selectCases(o)
	if len(cases) == 0 {
		return nil, fmt.Errorf("conformance: no cases match kernels=%v transports=%v",
			o.Kernels, o.Transports)
	}
	refs := make([]outcome, len(cases))
	for i, kc := range cases {
		out, err := runCase(kc, chaos{})
		if err != nil {
			return nil, fmt.Errorf("conformance: reference %s/%s: %w", kc.kernel, kc.transport, err)
		}
		refs[i] = out
	}
	perSeed, _, err := sched.Map(o.Jobs, o.Seeds, func(i int) ([]Violation, error) {
		seed := o.FirstSeed + uint64(i)
		var vs []Violation
		for ci, kc := range cases {
			detail := check(kc, refs[ci], o.seedChaos(seed))
			if detail == "" {
				continue
			}
			vs = append(vs, o.buildViolation(kc, refs[ci], seed, detail))
		}
		return vs, nil
	})
	if err != nil {
		return nil, fmt.Errorf("conformance: %w", err)
	}
	rep := &Report{Cases: len(cases), Seeds: o.Seeds, Runs: len(cases) * o.Seeds}
	for _, vs := range perSeed {
		rep.Violations = append(rep.Violations, vs...)
	}
	return rep, nil
}

// buildViolation re-runs the failing seed in Record mode to capture
// its decision trace, then shrinks the trace to a minimal script that
// still reproduces a failure.
func (o Options) buildViolation(kc kcase, ref outcome, seed uint64, detail string) Violation {
	v := Violation{Kernel: kc.kernel, Transport: kc.transport, Seed: seed, Detail: detail}
	rec := &sim.Perturbation{Seed: seed, Reorder: true, MaxJitter: o.MaxJitter, Record: true}
	runCase(kc, chaos{perturb: rec, faults: o.faults(seed), unordered: o.Unordered})
	script := append([]sim.PerturbDecision(nil), rec.Trace()...)
	v.TraceLen = len(script)
	v.StreamLens = rec.TraceLens()
	if o.NoShrink {
		v.Script = script
		return v
	}
	v.Script = shrinkScript(script, o.ShrinkBudget, func(s []sim.PerturbDecision) bool {
		return check(kc, ref, o.scriptChaos(seed, s, v.StreamLens)) != ""
	})
	return v
}

// Replay re-executes a violation's script against a fresh reference
// and returns the failure detail, or "" if it no longer fails.
func Replay(o Options, v Violation) string {
	o = o.withDefaults()
	for _, kc := range allCases() {
		if kc.kernel != v.Kernel || kc.transport != v.Transport {
			continue
		}
		ref, err := runCase(kc, chaos{})
		if err != nil {
			return fmt.Sprintf("reference run failed: %v", err)
		}
		return check(kc, ref, o.scriptChaos(v.Seed, v.Script, v.StreamLens))
	}
	return fmt.Sprintf("unknown case %s/%s", v.Kernel, v.Transport)
}

// seedChaos builds the perturbation + fault configuration for one
// seed. Each call returns fresh objects: a Perturbation binds to one
// engine.
func (o Options) seedChaos(seed uint64) chaos {
	return chaos{
		perturb:   &sim.Perturbation{Seed: seed, Reorder: true, MaxJitter: o.MaxJitter},
		faults:    o.faults(seed),
		unordered: o.Unordered,
	}
}

// scriptChaos replays a recorded (possibly shrunk) decision script
// under the same fault stream as the original seed. A nil script is
// promoted to an empty one so the engine replays all-neutral rather
// than drawing from the seed; lens restores the per-group stream
// layout the script was recorded with.
func (o Options) scriptChaos(seed uint64, script []sim.PerturbDecision, lens []int) chaos {
	if script == nil {
		script = []sim.PerturbDecision{}
	}
	return chaos{
		perturb:   &sim.Perturbation{Seed: seed, Script: script, StreamLens: lens},
		faults:    o.faults(seed),
		unordered: o.Unordered,
	}
}

// faults derives the per-seed network fault configuration; the fault
// stream seed is decorrelated from the schedule stream seed.
func (o Options) faults(seed uint64) *netsim.Faults {
	drop, spike := o.DropProb, o.SpikeProb
	if drop < 0 {
		drop = 0
	}
	if spike < 0 {
		spike = 0
	}
	if drop == 0 && spike == 0 {
		return nil
	}
	return &netsim.Faults{
		Seed:      seed*0x9e3779b97f4a7c15 + 0x2545f4914f6cdd1d,
		DropProb:  drop,
		SpikeProb: spike,
		MaxSpike:  o.MaxSpike,
	}
}

func selectCases(o Options) []kcase {
	keep := func(want []string, got string) bool {
		if len(want) == 0 {
			return true
		}
		for _, w := range want {
			if w == got {
				return true
			}
		}
		return false
	}
	var out []kcase
	for _, kc := range allCases() {
		if keep(o.Kernels, kc.kernel) && keep(o.Transports, kc.transport) {
			out = append(out, kc)
		}
	}
	return out
}

// runCase executes one case, converting panics into errors so a
// fuzzing-exposed crash becomes a shrinkable violation rather than
// tearing down the sweep.
func runCase(kc kcase, ch chaos) (out outcome, err error) {
	defer func() {
		if r := recover(); r != nil {
			err = fmt.Errorf("panic: %v", r)
		}
	}()
	return kc.run(ch)
}

// check runs one case and compares it against the reference,
// returning the failure detail ("" on conformance).
func check(kc kcase, ref outcome, ch chaos) string {
	out, err := runCase(kc, ch)
	return diff(ref, out, err)
}

// diff compares a run against the reference: exact on fingerprints,
// relative-tolerance on float vectors. It returns "" on conformance.
func diff(ref outcome, got outcome, err error) string {
	if err != nil {
		return err.Error()
	}
	if got.fp != ref.fp {
		return fmt.Sprintf("fingerprint mismatch: got %s, want %s", clip(got.fp), clip(ref.fp))
	}
	if len(got.floats) != len(ref.floats) {
		return fmt.Sprintf("result length %d, want %d", len(got.floats), len(ref.floats))
	}
	for i, want := range ref.floats {
		g := got.floats[i]
		if g == want {
			continue
		}
		scale := math.Max(math.Abs(want), math.Abs(g))
		if math.IsNaN(g) || math.Abs(g-want)/scale > relTol {
			return fmt.Sprintf("result[%d] = %v, want %v (rel tol %v)", i, g, want, relTol)
		}
	}
	return ""
}

func clip(s string) string {
	if len(s) > 96 {
		return s[:93] + "..."
	}
	return s
}
