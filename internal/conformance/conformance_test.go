package conformance

import (
	"flag"
	"testing"

	"msgroofline/internal/sim"
)

// seedCount is raised to 500 by the CI conformance job:
//
//	go test ./internal/conformance -seeds 500
var seedCount = flag.Int("seeds", 40, "fuzzing seeds per conformance case")

// TestSweep is the main conformance suite: every kernel x transport
// cell under schedule perturbation and network fault injection must
// match its clean reference across all seeds.
func TestSweep(t *testing.T) {
	rep, err := Run(Options{Seeds: *seedCount})
	if err != nil {
		t.Fatalf("sweep failed to run: %v", err)
	}
	t.Log(rep.String())
	if !rep.Ok() {
		t.Fatalf("conformance violations:\n%s", rep.String())
	}
	if want := 24 * *seedCount; rep.Runs != want {
		t.Fatalf("ran %d cases, want %d", rep.Runs, want)
	}
}

// TestPerturbationDeterminism re-runs one seed and requires the
// perturbed outcome to be bit-identical both times: violations must
// reproduce from their seed alone.
func TestPerturbationDeterminism(t *testing.T) {
	o := Options{}.withDefaults()
	for _, kc := range allCases() {
		a, errA := runCase(kc, o.seedChaos(12345))
		b, errB := runCase(kc, o.seedChaos(12345))
		if (errA == nil) != (errB == nil) {
			t.Fatalf("%s/%s: errors differ between identical seeds: %v vs %v",
				kc.kernel, kc.transport, errA, errB)
		}
		if errA != nil {
			if errA.Error() != errB.Error() {
				t.Fatalf("%s/%s: error text differs: %q vs %q",
					kc.kernel, kc.transport, errA, errB)
			}
			continue
		}
		if d := diff(a, b, nil); d != "" {
			t.Fatalf("%s/%s: outcome not deterministic under one seed: %s",
				kc.kernel, kc.transport, d)
		}
	}
}

// mutationCaught seeds a deliberate ordering bug (the kernel's
// ordering machinery disabled via Spec/SetDebugUnordered) and requires
// the kernel's oracle to catch it, the failing seed to shrink, and the
// shrunk script to replay the failure deterministically.
func mutationCaught(t *testing.T, kernel string) {
	t.Helper()
	o := Options{Seeds: 60, Unordered: true, Kernels: []string{kernel}}
	rep, err := Run(o)
	if err != nil {
		t.Fatalf("mutation sweep failed to run: %v", err)
	}
	if rep.Ok() {
		t.Fatalf("deliberately seeded ordering bug escaped %d seeds", rep.Seeds)
	}
	v := rep.Violations[0]
	t.Logf("caught: %s", v.String())
	if len(v.Script) > v.TraceLen {
		t.Fatalf("shrunk script longer than recorded trace: %d > %d", len(v.Script), v.TraceLen)
	}
	if d := Replay(o, v); d == "" {
		t.Fatalf("shrunk script no longer reproduces the failure: %s", v.String())
	}
	// The same violation must reproduce identically a second time.
	rep2, err := Run(o)
	if err != nil {
		t.Fatalf("second mutation sweep failed: %v", err)
	}
	if len(rep2.Violations) != len(rep.Violations) {
		t.Fatalf("violation count not deterministic: %d vs %d",
			len(rep.Violations), len(rep2.Violations))
	}
	v2 := rep2.Violations[0]
	if v2.Seed != v.Seed || v2.Detail != v.Detail || len(v2.Script) != len(v.Script) {
		t.Fatalf("violation not deterministic:\n  %s\n  %s", v.String(), v2.String())
	}
}

// TestMutationCaught: the MPI non-overtaking resequencer disabled,
// caught by the msgorder exact-matching oracle.
func TestMutationCaught(t *testing.T) { mutationCaught(t, "msgorder") }

// TestStreamMutationCaught: stream-triggered descriptors firing
// without waiting for their stream predecessor, caught by the
// streamorder fire-log oracle.
func TestStreamMutationCaught(t *testing.T) { mutationCaught(t, "streamorder") }

// TestChannelMutationCaught: the memory channel's receive resequencer
// bypassed, caught by the chanfifo arrival-order oracle once fault
// injection reorders the wire.
func TestChannelMutationCaught(t *testing.T) { mutationCaught(t, "chanfifo") }

// TestCleanWithoutFaults checks the schedule fuzzer alone (drops and
// spikes disabled): pure same-timestamp reordering plus jitter must
// never break any transport.
func TestCleanWithoutFaults(t *testing.T) {
	rep, err := Run(Options{Seeds: 10, DropProb: -1, SpikeProb: -1})
	if err != nil {
		t.Fatalf("sweep failed to run: %v", err)
	}
	if !rep.Ok() {
		t.Fatalf("violations without fault injection:\n%s", rep.String())
	}
}

// TestShrinkScript exercises the shrinker against a synthetic failure
// predicate: failure iff decisions 7 and 23 are both non-neutral.
func TestShrinkScript(t *testing.T) {
	script := make([]sim.PerturbDecision, 40)
	for i := range script {
		script[i] = sim.PerturbDecision{Prio: uint32(i + 1), Jitter: sim.Time(i)}
	}
	fails := func(s []sim.PerturbDecision) bool {
		return len(s) > 23 && !s[7].IsNeutral() && !s[23].IsNeutral()
	}
	got := shrinkScript(script, 10000, fails)
	if !fails(got) {
		t.Fatalf("shrunk script does not fail")
	}
	if n := activeDecisions(got); n != 2 {
		t.Fatalf("minimal script has %d active decisions, want 2", n)
	}
	if len(got) != 24 {
		t.Fatalf("neutral tail not trimmed: len=%d, want 24", len(got))
	}
}

// TestShrinkBudget confirms the shrinker respects its replay budget
// and still returns a failing script.
func TestShrinkBudget(t *testing.T) {
	script := make([]sim.PerturbDecision, 64)
	for i := range script {
		script[i] = sim.PerturbDecision{Prio: 1}
	}
	evals := 0
	fails := func(s []sim.PerturbDecision) bool {
		evals++
		return !s[63].IsNeutral()
	}
	got := shrinkScript(script, 5, fails)
	spent := evals
	if spent > 5 {
		t.Fatalf("shrinker spent %d replays, budget was 5", spent)
	}
	if !fails(got) {
		t.Fatalf("budget-limited shrink returned a passing script")
	}
}
