package conformance

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"hash/fnv"
	"math"
	"sort"
	"sync"

	"msgroofline/internal/comm"
	"msgroofline/internal/hashtable"
	"msgroofline/internal/machine"
	"msgroofline/internal/mpi"
	"msgroofline/internal/netsim"
	"msgroofline/internal/shmem"
	"msgroofline/internal/sim"
	"msgroofline/internal/spmat"
	"msgroofline/internal/sptrsv"
	"msgroofline/internal/stencil"
)

// Transport names used by the case table and Options filters.
const (
	TwoSided   = "two-sided"
	OneSided   = "one-sided"
	Shmem      = "shmem"
	Notified   = "notified"
	StreamTrig = "stream-triggered"
	MemChan    = "memchannel"
)

// chaos bundles the fuzzing configuration of one run. The zero value
// is a clean (reference) run.
type chaos struct {
	perturb *sim.Perturbation
	faults  *netsim.Faults
	// shards is the engine shard count recorded on the workload's
	// world (0 means 1); output must be invariant under it.
	shards int
	// unordered disables the MPI non-overtaking resequencer in the
	// micro-kernels that build their own communicator (mutation knob).
	unordered bool
}

// outcome is the semantic fingerprint of one run: fp is compared
// exactly against the reference, floats with relative tolerance
// (accumulation order legally varies under perturbation). digest is
// the engine's event-order fingerprint; it legally varies across
// perturbation seeds, so the reference oracles ignore it, and the
// shard-determinism suite requires it equal across shard counts
// under identical chaos.
type outcome struct {
	fp     string
	floats []float64
	digest uint64
}

// relTol bounds the relative drift allowed in float outcomes.
const relTol = 1e-9

// kcase is one kernel x transport cell of the conformance matrix.
// Each case builds exactly one world, so a recorded perturbation
// trace — one decision stream per node-group engine, flattened with
// Perturbation.StreamLens — maps one-to-one onto the case's event
// allocations.
type kcase struct {
	kernel    string
	transport string
	run       func(ch chaos) (outcome, error)
}

func mach(name string) *machine.Config {
	cfg, err := machine.Get(name)
	if err != nil {
		panic(fmt.Sprintf("conformance: %v", err))
	}
	return cfg
}

// testMatrix is the shared sparse triangular system solved by every
// sptrsv case. It is generated once and only read afterwards, so
// parallel seed jobs may share it.
var (
	matrixOnce sync.Once
	matrix     *spmat.SupTri
)

func testMatrix() *spmat.SupTri {
	matrixOnce.Do(func() {
		m, err := spmat.Generate(spmat.Params{N: 300, MeanSnode: 8, Fill: 1.2, Seed: 7})
		if err != nil {
			panic(fmt.Sprintf("conformance: %v", err))
		}
		matrix = m
	})
	return matrix
}

// workloadMachine picks the conformance machine for a workload cell:
// a GPU platform for the device-driven stacks (shmem, stream-
// triggered), a CPU platform (with notified access and memory
// channels calibrated) otherwise.
func workloadMachine(kind comm.Kind, cpu, gpu string) *machine.Config {
	if kind == comm.Shmem || kind == comm.StreamTriggered {
		return mach(gpu)
	}
	return mach(cpu)
}

// allCases enumerates the full conformance matrix: the three paper
// workloads on every transport they support (each cell one table row
// against the unified internal/comm kernel), plus five micro-kernels
// targeting the semantics the workloads cannot isolate (message
// ordering with wildcards, collective correctness, put-with-signal
// visibility and quiet ordering, stream-dependency firing order, and
// channel FIFO delivery).
func allCases() []kcase {
	return []kcase{
		{"stencil", TwoSided, stencilRun(TwoSided)},
		{"stencil", OneSided, stencilRun(OneSided)},
		{"stencil", Notified, stencilRun(Notified)},
		{"stencil", Shmem, stencilRun(Shmem)},
		{"stencil", StreamTrig, stencilRun(StreamTrig)},
		{"stencil", MemChan, stencilRun(MemChan)},
		{"sptrsv", TwoSided, sptrsvRun(TwoSided)},
		{"sptrsv", OneSided, sptrsvRun(OneSided)},
		{"sptrsv", Shmem, sptrsvRun(Shmem)},
		{"sptrsv", Notified, sptrsvRun(Notified)},
		{"sptrsv", StreamTrig, sptrsvRun(StreamTrig)},
		{"sptrsv", MemChan, sptrsvRun(MemChan)},
		{"hashtable", TwoSided, hashtableRun(TwoSided)},
		{"hashtable", OneSided, hashtableRun(OneSided)},
		{"hashtable", Notified, hashtableRun(Notified)},
		{"hashtable", Shmem, hashtableRun(Shmem)},
		{"hashtable", StreamTrig, hashtableRun(StreamTrig)},
		{"hashtable", MemChan, hashtableRun(MemChan)},
		{"msgorder", TwoSided, msgorderRun},
		{"coll4", TwoSided, collectivesRun(4)},
		{"coll5", TwoSided, collectivesRun(5)},
		{"putsignal", Shmem, putsignalRun},
		{"streamorder", StreamTrig, streamorderRun},
		{"chanfifo", MemChan, chanfifoRun},
	}
}

// stencilRun checks the halo-exchange workload: the verified-mode
// checksum is pure dataflow (every rank waits for all halos before
// stepping), so it must be bit-identical under any legal schedule.
func stencilRun(transport string) func(chaos) (outcome, error) {
	return func(ch chaos) (outcome, error) {
		kind, err := comm.ParseKind(transport)
		if err != nil {
			return outcome{}, err
		}
		res, err := stencil.Run(stencil.Config{
			Machine:   workloadMachine(kind, "perlmutter-cpu", "perlmutter-gpu"),
			Transport: kind,
			Grid:      24, Iters: 3, PX: 2, PY: 2, Verify: true,
			Shards:  ch.shards,
			Perturb: ch.perturb, Faults: ch.faults,
		})
		if err != nil {
			return outcome{}, err
		}
		return outcome{fp: fmt.Sprintf("checksum=%016x", math.Float64bits(res.Checksum)), digest: res.EventDigest}, nil
	}
}

// sptrsvRun checks the triangular-solve DAG: the assembled solution
// must match the clean run within relTol (contribution accumulation
// order legally varies, so bits may differ).
func sptrsvRun(transport string) func(chaos) (outcome, error) {
	return func(ch chaos) (outcome, error) {
		kind, err := comm.ParseKind(transport)
		if err != nil {
			return outcome{}, err
		}
		res, err := sptrsv.Run(sptrsv.Config{
			Machine:   workloadMachine(kind, "frontier-cpu", "summit-gpu"),
			Transport: kind,
			Matrix:    testMatrix(), Ranks: 4,
			Shards:  ch.shards,
			Perturb: ch.perturb, Faults: ch.faults,
		})
		if err != nil {
			return outcome{}, err
		}
		return outcome{floats: res.X, digest: res.EventDigest}, nil
	}
}

// hashtableRun checks the distributed hash table: the runs verify the
// shard contents internally (every key exactly once, no aliens), and
// the collision count is order-invariant (k claimants of one home
// slot always produce k-1 overflows).
func hashtableRun(transport string) func(chaos) (outcome, error) {
	return func(ch chaos) (outcome, error) {
		kind, err := comm.ParseKind(transport)
		if err != nil {
			return outcome{}, err
		}
		res, err := hashtable.Run(hashtable.Config{
			Machine:   workloadMachine(kind, "perlmutter-cpu", "perlmutter-gpu"),
			Transport: kind,
			Ranks:     4, TotalInserts: 400, Blocks: 4,
			Shards:  ch.shards,
			Perturb: ch.perturb, Faults: ch.faults,
		})
		if err != nil {
			return outcome{}, err
		}
		return outcome{fp: fmt.Sprintf("collisions=%d", res.Collisions), digest: res.EventDigest}, nil
	}
}

const (
	moSenderCount = 2  // ranks 0 and 2 send, rank 1 receives
	moTags        = 4  // tag values cycled per sender
	moPerStream   = 10 // messages per (sender, tag) stream
)

func moEncode(src, tag, k int) []byte {
	b := make([]byte, 24)
	binary.LittleEndian.PutUint64(b[0:], uint64(src))
	binary.LittleEndian.PutUint64(b[8:], uint64(tag))
	binary.LittleEndian.PutUint64(b[16:], uint64(k))
	return b
}

func moDecode(b []byte) (src, tag, k int) {
	return int(binary.LittleEndian.Uint64(b[0:])),
		int(binary.LittleEndian.Uint64(b[8:])),
		int(binary.LittleEndian.Uint64(b[16:]))
}

// msgorderRun is the MPI matching-semantics oracle. Ranks 0 and 2
// each send moTags interleaved streams of numbered messages to rank
// 1, which receives first through exact-signature posts and then a
// wildcard drain. MPI's non-overtaking rule requires every (source,
// tag) stream to complete in send order regardless of how the fabric
// reorders arrivals; afterwards every queue must have drained.
func msgorderRun(ch chaos) (outcome, error) {
	c, err := mpi.NewCommSharded(mach("perlmutter-cpu"), 3, ch.shards)
	if err != nil {
		return outcome{}, err
	}
	if ch.perturb != nil {
		c.World().SetPerturbation(ch.perturb)
	}
	if ch.faults != nil {
		c.World().Inst.Net.SetFaults(ch.faults)
	}
	c.SetDebugUnordered(ch.unordered)

	senders := []int{0, 2}
	total := moSenderCount * moTags * moPerStream
	streams := make(map[[2]int][]int)
	var oracleErr error
	err = c.Launch(func(r *mpi.Rank) {
		if r.Rank() != 1 {
			for k := 0; k < moPerStream; k++ {
				for t := 0; t < moTags; t++ {
					r.Send(1, t, moEncode(r.Rank(), t, k))
				}
			}
			return
		}
		// Exact-signature receives for the head of every stream,
		// posted in scrambled order before the wildcard drain.
		var reqs []*mpi.Request
		for t := moTags - 1; t >= 0; t-- {
			for _, s := range senders {
				reqs = append(reqs, r.Irecv(s, t))
			}
		}
		r.Waitall(reqs)
		for i := len(reqs); i < total; i++ {
			reqs = append(reqs, r.Recv(mpi.AnySource, mpi.AnyTag))
		}
		for _, q := range reqs {
			src, tag, k := moDecode(q.Data)
			if src != q.Src || tag != q.Tag {
				oracleErr = fmt.Errorf(
					"msgorder: payload from (src %d, tag %d) matched as (src %d, tag %d)",
					src, tag, q.Src, q.Tag)
				return
			}
			streams[[2]int{src, tag}] = append(streams[[2]int{src, tag}], k)
		}
		for key, ks := range streams {
			for i, k := range ks {
				if k != i {
					oracleErr = fmt.Errorf(
						"msgorder: non-overtaking violated on stream (src %d, tag %d): got order %v",
						key[0], key[1], ks)
					return
				}
			}
		}
		if u, p, o := r.PendingUnexpected(), r.PendingPosted(), r.PendingOutOfOrder(); u != 0 || p != 0 || o != 0 {
			oracleErr = fmt.Errorf(
				"msgorder: queues not drained: unexpected=%d posted=%d outOfOrder=%d", u, p, o)
		}
	})
	if err != nil {
		return outcome{}, err
	}
	if oracleErr != nil {
		return outcome{}, oracleErr
	}
	// Fingerprint the per-stream completion orders in a fixed key
	// order; any legal schedule must produce the identity.
	keys := make([][2]int, 0, len(streams))
	for key := range streams {
		keys = append(keys, key)
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i][0] != keys[j][0] {
			return keys[i][0] < keys[j][0]
		}
		return keys[i][1] < keys[j][1]
	})
	var fp bytes.Buffer
	for _, key := range keys {
		fmt.Fprintf(&fp, "%d/%d:%v;", key[0], key[1], streams[key])
	}
	return outcome{fp: fp.String(), digest: c.Digest()}, nil
}

func collVec(r, n int) []byte {
	b := make([]byte, 8*n)
	for i := 0; i < n; i++ {
		// Small integers: float64 addition over them is exact and
		// associative, so recursive doubling must be byte-equal to
		// the sequential reference.
		binary.LittleEndian.PutUint64(b[8*i:], math.Float64bits(float64(r*16+i+1)))
	}
	return b
}

// collectivesRun checks every collective against an in-process
// sequential reference on p ranks (p=4 exercises the recursive
// doubling / XOR schedules, p=5 the tree+shift fallbacks), with a
// Barrier between phases so barrier traffic interleaves collective
// traffic under fuzzing.
func collectivesRun(p int) func(chaos) (outcome, error) {
	return func(ch chaos) (outcome, error) {
		c, err := mpi.NewCommSharded(mach("perlmutter-cpu"), p, ch.shards)
		if err != nil {
			return outcome{}, err
		}
		if ch.perturb != nil {
			c.World().SetPerturbation(ch.perturb)
		}
		if ch.faults != nil {
			c.World().Inst.Net.SetFaults(ch.faults)
		}
		c.SetDebugUnordered(ch.unordered)

		const vn = 8
		// Sequential references.
		wantSum := make([]float64, vn)
		for r := 0; r < p; r++ {
			for i := 0; i < vn; i++ {
				wantSum[i] += float64(r*16 + i + 1)
			}
		}
		var wantGather []byte
		for r := 0; r < p; r++ {
			wantGather = append(wantGather, collVec(r, vn)...)
		}

		oracleErrs := make([]error, p)
		digests := make([][]byte, p)
		err = c.Launch(func(r *mpi.Rank) {
			me := r.Rank()
			fail := func(format string, args ...any) {
				if oracleErrs[me] == nil {
					oracleErrs[me] = fmt.Errorf(format, args...)
				}
			}
			mine := collVec(me, vn)
			var all []byte

			sum := r.Allreduce(mine, mpi.SumFloat64)
			for i := 0; i < vn; i++ {
				if got := f64at(sum, i); got != wantSum[i] {
					fail("coll: Allreduce[%d] = %v, want %v", i, got, wantSum[i])
				}
			}
			all = append(all, sum...)
			r.Barrier()

			bc := r.Bcast(p-1, collVec(p-1, vn))
			if !bytes.Equal(bc, collVec(p-1, vn)) {
				fail("coll: Bcast payload corrupted")
			}
			all = append(all, bc...)
			r.Barrier()

			ag := r.Allgather(mine)
			if !bytes.Equal(ag, wantGather) {
				fail("coll: Allgather mismatch")
			}
			all = append(all, ag...)
			r.Barrier()

			blocks := make([][]byte, p)
			for d := 0; d < p; d++ {
				blocks[d] = collVec(me*p+d, vn)
			}
			a2a := r.Alltoall(blocks)
			for d := 0; d < p; d++ {
				if !bytes.Equal(a2a[d], collVec(d*p+me, vn)) {
					fail("coll: Alltoall block from %d mismatch", d)
				}
				all = append(all, a2a[d]...)
			}
			r.Barrier()

			red := r.Reduce(1, mine, mpi.SumFloat64)
			if me == 1 {
				for i := 0; i < vn; i++ {
					if got := f64at(red, i); got != wantSum[i] {
						fail("coll: Reduce[%d] = %v, want %v", i, got, wantSum[i])
					}
				}
				all = append(all, red...)
			}
			r.Barrier()

			g := r.Gather(0, mine)
			if me == 0 {
				if !bytes.Equal(g, wantGather) {
					fail("coll: Gather mismatch")
				}
				all = append(all, g...)
			}
			sc := r.Scatter(2, scatterBlocks(p, vn))
			if !bytes.Equal(sc, collVec(2*p+me, vn)) {
				fail("coll: Scatter block mismatch")
			}
			all = append(all, sc...)
			r.Barrier()

			if u, po, o := r.PendingUnexpected(), r.PendingPosted(), r.PendingOutOfOrder(); u != 0 || po != 0 || o != 0 {
				fail("coll: queues not drained: unexpected=%d posted=%d outOfOrder=%d", u, po, o)
			}
			digests[me] = all
		})
		if err != nil {
			return outcome{}, err
		}
		for _, oe := range oracleErrs {
			if oe != nil {
				return outcome{}, oe
			}
		}
		h := fnv.New64a()
		for _, d := range digests {
			h.Write(d)
		}
		return outcome{fp: fmt.Sprintf("coll=%016x", h.Sum64()), digest: c.Digest()}, nil
	}
}

func f64at(b []byte, i int) float64 {
	return math.Float64frombits(binary.LittleEndian.Uint64(b[8*i:]))
}

// scatterBlocks is the block set rank 2 scatters: block d holds
// collVec(2*p+d), so rank me must receive collVec(2*p+me).
func scatterBlocks(p, vn int) [][]byte {
	blocks := make([][]byte, p)
	for d := 0; d < p; d++ {
		blocks[d] = collVec(2*p+d, vn)
	}
	return blocks
}

// putsignalRun is the SHMEM memory-ordering oracle on a 4-PE ring:
// put-with-signal visibility (when the receiver observes the signal
// value, every payload byte must already be in its heap), quiet
// semantics (Outstanding drains to zero), and quiet+barrier ordering
// (data put before a Quiet is globally visible after the barrier).
func putsignalRun(ch chaos) (outcome, error) {
	const (
		pes       = 4
		rounds    = 6
		slotBytes = 64
	)
	// Heap: one data slot and one signal per round (no slot reuse —
	// the ring is one-directional, so a reused slot could legally be
	// overwritten by a fast upstream neighbor), plus a quiet-phase
	// slot.
	sigBase := rounds * slotBytes
	quietOff := sigBase + rounds*8
	heap := quietOff + slotBytes

	j, err := shmem.NewJobSharded(mach("summit-gpu"), pes, heap, ch.shards)
	if err != nil {
		return outcome{}, err
	}
	if ch.perturb != nil {
		j.World().SetPerturbation(ch.perturb)
	}
	if ch.faults != nil {
		j.World().Inst.Net.SetFaults(ch.faults)
	}

	pattern := func(src, round int) []byte {
		b := make([]byte, slotBytes)
		for i := range b {
			b[i] = byte(src*31 + round*7 + i)
		}
		return b
	}
	oracleErrs := make([]error, pes)
	err = j.Launch(func(c *shmem.Ctx) {
		me := c.MyPE()
		right := (me + 1) % pes
		left := (me - 1 + pes) % pes
		fail := func(format string, args ...any) {
			if oracleErrs[me] == nil {
				oracleErrs[me] = fmt.Errorf(format, args...)
			}
		}
		for r := 0; r < rounds; r++ {
			c.PutSignalNBI(right, r*slotBytes, pattern(me, r), sigBase+r*8, uint64(r+1))
			c.WaitUntilAll([]int{sigBase + r*8}, uint64(r+1))
			got := c.PE().Heap()[r*slotBytes : (r+1)*slotBytes]
			if !bytes.Equal(got, pattern(left, r)) {
				fail("putsignal: round %d signal visible before payload from PE %d", r, left)
				return
			}
		}
		// Quiet: a plain put must be remotely complete after Quiet.
		c.PutNBI(right, quietOff, pattern(me, rounds))
		c.Quiet()
		if n := c.PE().Outstanding(); n != 0 {
			fail("putsignal: %d puts still outstanding after Quiet", n)
			return
		}
		c.Barrier()
		got := c.PE().Heap()[quietOff : quietOff+slotBytes]
		if !bytes.Equal(got, pattern(left, rounds)) {
			fail("putsignal: quiet-put from PE %d not visible after barrier", left)
		}
	})
	if err != nil {
		return outcome{}, err
	}
	for _, oe := range oracleErrs {
		if oe != nil {
			return outcome{}, oe
		}
	}
	h := fnv.New64a()
	for pe := 0; pe < pes; pe++ {
		h.Write(j.PE(pe).Heap())
	}
	return outcome{fp: fmt.Sprintf("heap=%016x", h.Sum64()), digest: j.Digest()}, nil
}

const (
	soSlots     = 12
	soSlotBytes = 32
)

// streamorderRun is the stream-triggered dependency oracle on a GPU
// pair: rank 0 enqueues soSlots fused put-with-signal descriptors on
// its device stream and quiets, rank 1 consumes every slot. The
// oracle reads the stream's enqueue/ready/fire log afterwards and
// requires that no descriptor fired before its stream dependency
// resolved (At >= Ready) nor before its predecessor completed
// (At >= previous Done) — the contract Spec.DebugUnordered
// deliberately breaks for mutation testing. Payloads must land
// uncorrupted in their slots regardless.
func streamorderRun(ch chaos) (outcome, error) {
	pattern := func(slot int) []byte {
		b := make([]byte, soSlotBytes)
		for i := range b {
			b[i] = byte(slot*17 + i + 3)
		}
		return b
	}
	tr, err := comm.New(comm.Spec{
		Machine: mach("perlmutter-gpu"), Kind: comm.StreamTriggered, Ranks: 2,
		StreamSlots: []int{0, soSlots}, SlotBytes: soSlotBytes,
		Shards: ch.shards, Perturb: ch.perturb, Faults: ch.faults,
		NoTrace: true, DebugUnordered: ch.unordered,
	})
	if err != nil {
		return outcome{}, err
	}
	got := make([][]byte, soSlots)
	err = tr.Launch(func(ep comm.Endpoint) {
		switch ep.Rank() {
		case 0:
			for s := 0; s < soSlots; s++ {
				ep.Deliver(1, s, pattern(s))
			}
			ep.Quiet()
		case 1:
			for n := 0; n < soSlots; n++ {
				slot, data := ep.WaitAnySlot()
				got[slot] = append([]byte(nil), data[:soSlotBytes]...)
			}
		}
	})
	if err != nil {
		return outcome{}, err
	}
	ins, ok := tr.(comm.StreamInspector)
	if !ok {
		return outcome{}, fmt.Errorf("streamorder: transport does not expose its device stream")
	}
	log := ins.Stream(0).Log()
	if len(log) != soSlots {
		return outcome{}, fmt.Errorf("streamorder: stream logged %d descriptors, want %d", len(log), soSlots)
	}
	for i, f := range log {
		if f.At < f.Ready {
			return outcome{}, fmt.Errorf(
				"streamorder: descriptor %d fired at %v before its stream dependency resolved at %v",
				i, f.At, f.Ready)
		}
		if i > 0 && f.At < log[i-1].Done {
			return outcome{}, fmt.Errorf(
				"streamorder: descriptor %d fired at %v before predecessor completed at %v",
				i, f.At, log[i-1].Done)
		}
	}
	h := fnv.New64a()
	for s, b := range got {
		if !bytes.Equal(b, pattern(s)) {
			return outcome{}, fmt.Errorf("streamorder: slot %d payload corrupted", s)
		}
		h.Write(b)
	}
	return outcome{fp: fmt.Sprintf("stream=%016x", h.Sum64()), digest: tr.Digest()}, nil
}

const (
	cfSlots     = 16
	cfSlotBytes = 24
)

// chanfifoRun is the memory-channel FIFO oracle on a CPU pair: rank 0
// streams cfSlots numbered writes down its channel to rank 1 and
// drains it. Fault injection legally reorders the wire (spikes and
// drop-retransmits overtake); the channel's resequencer must still
// apply the writes strictly in sequence order, so the arrival log
// afterwards must be exactly 0..cfSlots-1 — the contract
// Spec.DebugUnordered deliberately breaks for mutation testing.
func chanfifoRun(ch chaos) (outcome, error) {
	pattern := func(slot int) []byte {
		b := make([]byte, cfSlotBytes)
		for i := range b {
			b[i] = byte(slot*29 + i + 11)
		}
		return b
	}
	tr, err := comm.New(comm.Spec{
		Machine: mach("perlmutter-cpu"), Kind: comm.MemChannel, Ranks: 2,
		StreamSlots: []int{0, cfSlots}, SlotBytes: cfSlotBytes,
		Shards: ch.shards, Perturb: ch.perturb, Faults: ch.faults,
		NoTrace: true, DebugUnordered: ch.unordered,
	})
	if err != nil {
		return outcome{}, err
	}
	got := make([][]byte, cfSlots)
	err = tr.Launch(func(ep comm.Endpoint) {
		switch ep.Rank() {
		case 0:
			for s := 0; s < cfSlots; s++ {
				ep.Deliver(1, s, pattern(s))
			}
			ep.Quiet()
		case 1:
			for n := 0; n < cfSlots; n++ {
				slot, data := ep.WaitAnySlot()
				got[slot] = append([]byte(nil), data[:cfSlotBytes]...)
			}
		}
	})
	if err != nil {
		return outcome{}, err
	}
	ins, ok := tr.(comm.ChannelInspector)
	if !ok {
		return outcome{}, fmt.Errorf("chanfifo: transport does not expose its channels")
	}
	c := ins.Channels(0)[1]
	if c.Sent() != cfSlots {
		return outcome{}, fmt.Errorf("chanfifo: channel carried %d writes, want %d", c.Sent(), cfSlots)
	}
	arr := c.Arrivals()
	if len(arr) != cfSlots {
		return outcome{}, fmt.Errorf("chanfifo: channel applied %d writes, want %d", len(arr), cfSlots)
	}
	for i, seq := range arr {
		if seq != uint64(i) {
			return outcome{}, fmt.Errorf(
				"chanfifo: FIFO violated: write %d applied at position %d (application order %v)",
				seq, i, arr)
		}
	}
	h := fnv.New64a()
	for s, b := range got {
		if !bytes.Equal(b, pattern(s)) {
			return outcome{}, fmt.Errorf("chanfifo: slot %d payload corrupted", s)
		}
		h.Write(b)
	}
	return outcome{fp: fmt.Sprintf("chan=%016x", h.Sum64()), digest: tr.Digest()}, nil
}
