package conformance

import (
	"fmt"
	"testing"

	"msgroofline/internal/sched"
)

// workloadCases returns every conformance cell: all three paper
// workloads on all six transports plus the six protocol
// micro-kernels. Every cell runs on the coupled engine and accepts a
// Shards (worker-count) knob, so all of them must be shard-invariant.
func workloadCases(t *testing.T) []kcase {
	t.Helper()
	out := allCases()
	if len(out) != 24 {
		t.Fatalf("expected 24 conformance cells, got %d", len(out))
	}
	return out
}

// withShards returns ch with the shard count recorded.
func withShards(ch chaos, shards int) chaos {
	ch.shards = shards
	return ch
}

// TestShardCountInvariantUnderPerturbation is the shard-determinism
// suite of the conformance matrix: every cell, replayed under 50
// perturbation+fault seeds, must produce byte-equal semantic
// fingerprints, bitwise-equal float outcomes, and identical
// event-order digests at shards=1 and shards=4. On the coupled
// engine -shards sets only the worker count — the node-group
// decomposition, window schedule, and event-key total order are
// topology-determined — so any divergence means per-rank state
// leaked across a group boundary outside the barrier protocol.
func TestShardCountInvariantUnderPerturbation(t *testing.T) {
	const seeds = 50
	o := Options{Seeds: seeds}.withDefaults()
	cases := workloadCases(t)
	type mismatch struct{ detail string }
	perSeed, _, err := sched.Map(0, seeds, func(i int) ([]mismatch, error) {
		seed := uint64(i)
		var ms []mismatch
		for _, kc := range cases {
			// Note: seedChaos must be called once per run — the
			// perturbation stream is stateful — so build two
			// identically-seeded chaos values.
			ref, err := runCase(kc, withShards(o.seedChaos(seed), 1))
			if err != nil {
				return nil, fmt.Errorf("%s/%s seed=%d shards=1: %w", kc.kernel, kc.transport, seed, err)
			}
			got, err := runCase(kc, withShards(o.seedChaos(seed), 4))
			if err != nil {
				return nil, fmt.Errorf("%s/%s seed=%d shards=4: %w", kc.kernel, kc.transport, seed, err)
			}
			if got.fp != ref.fp {
				ms = append(ms, mismatch{fmt.Sprintf("%s/%s seed=%d: fp %q != %q",
					kc.kernel, kc.transport, seed, clip(got.fp), clip(ref.fp))})
			}
			if len(got.floats) != len(ref.floats) {
				ms = append(ms, mismatch{fmt.Sprintf("%s/%s seed=%d: %d floats != %d",
					kc.kernel, kc.transport, seed, len(got.floats), len(ref.floats))})
			} else {
				for j := range ref.floats {
					// Bitwise equality, not relTol: identical chaos at a
					// different shard count must replay the identical
					// schedule, so even accumulation order is pinned.
					if got.floats[j] != ref.floats[j] {
						ms = append(ms, mismatch{fmt.Sprintf("%s/%s seed=%d: floats[%d] %v != %v",
							kc.kernel, kc.transport, seed, j, got.floats[j], ref.floats[j])})
						break
					}
				}
			}
			if got.digest != ref.digest {
				ms = append(ms, mismatch{fmt.Sprintf("%s/%s seed=%d: event-order digest %016x != %016x",
					kc.kernel, kc.transport, seed, got.digest, ref.digest)})
			}
		}
		return ms, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	count := 0
	for _, ms := range perSeed {
		for _, m := range ms {
			count++
			if count <= 10 {
				t.Error(m.detail)
			}
		}
	}
	if count > 10 {
		t.Errorf("... and %d more mismatches", count-10)
	}
}

// TestShardCountInvariantCleanDigests pins the clean-schedule case:
// with no perturbation at all, every workload cell's event-order
// digest must be identical at shards 1, 2, and 4, and nonzero (the
// digest actually folded events).
func TestShardCountInvariantCleanDigests(t *testing.T) {
	for _, kc := range workloadCases(t) {
		ref, err := runCase(kc, chaos{shards: 1})
		if err != nil {
			t.Fatalf("%s/%s: %v", kc.kernel, kc.transport, err)
		}
		if ref.digest == 0 {
			t.Fatalf("%s/%s: zero event-order digest", kc.kernel, kc.transport)
		}
		for _, shards := range []int{2, 4} {
			got, err := runCase(kc, chaos{shards: shards})
			if err != nil {
				t.Fatalf("%s/%s shards=%d: %v", kc.kernel, kc.transport, shards, err)
			}
			if got.digest != ref.digest || got.fp != ref.fp {
				t.Errorf("%s/%s shards=%d: digest %016x fp %q, want %016x %q",
					kc.kernel, kc.transport, shards, got.digest, clip(got.fp), ref.digest, clip(ref.fp))
			}
		}
	}
}
