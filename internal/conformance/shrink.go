package conformance

import "msgroofline/internal/sim"

// shrinkScript minimizes a failing perturbation schedule. It zeroes
// spans of decisions ddmin-style — starting with the whole script and
// halving the span size — keeping any zeroing under which the failure
// still reproduces, then trims the neutral tail. fails must be
// deterministic (replaying a script is); budget caps how many replays
// are spent. The result is the minimal event script in the sense that
// remaining non-neutral decisions resisted span-removal at every
// granularity tried within budget.
//
// The very first trial zeroes everything: when the failure is driven
// by fault injection alone, shrinking converges immediately to the
// empty script ("no schedule perturbation needed").
func shrinkScript(script []sim.PerturbDecision, budget int, fails func([]sim.PerturbDecision) bool) []sim.PerturbDecision {
	s := append([]sim.PerturbDecision(nil), script...)
	evals := 0
	try := func(c []sim.PerturbDecision) bool {
		if evals >= budget {
			return false
		}
		evals++
		return fails(c)
	}
	for gran := len(s); gran >= 1; gran /= 2 {
		for start := 0; start < len(s); start += gran {
			end := start + gran
			if end > len(s) {
				end = len(s)
			}
			if allNeutral(s[start:end]) {
				continue
			}
			trial := append([]sim.PerturbDecision(nil), s...)
			for i := start; i < end; i++ {
				trial[i] = sim.PerturbDecision{}
			}
			if try(trial) {
				s = trial
			}
		}
	}
	return trimNeutralTail(s)
}

func allNeutral(s []sim.PerturbDecision) bool {
	for _, d := range s {
		if !d.IsNeutral() {
			return false
		}
	}
	return true
}

func trimNeutralTail(s []sim.PerturbDecision) []sim.PerturbDecision {
	n := len(s)
	for n > 0 && s[n-1].IsNeutral() {
		n--
	}
	return s[:n]
}

// activeDecisions counts the non-neutral decisions in a script (the
// size of the minimal perturbation after shrinking).
func activeDecisions(s []sim.PerturbDecision) int {
	n := 0
	for _, d := range s {
		if !d.IsNeutral() {
			n++
		}
	}
	return n
}
