package core_test

import (
	"fmt"

	"msgroofline/internal/core"
	"msgroofline/internal/loggp"
	"msgroofline/internal/machine"
	"msgroofline/internal/sim"
)

// ExampleModel_CeilingGBs shows the model's central query: the tight
// bandwidth bound for an application given its messages per
// synchronization, compared to the loose flood bound.
func ExampleModel_CeilingGBs() {
	p := loggp.Params{
		L:         sim.FromMicroseconds(3),
		O:         150 * sim.Nanosecond,
		Gap:       50 * sim.Nanosecond,
		Bandwidth: 32e9,
		OpsPerMsg: 2,
	}
	m, _ := core.FromParams("example", p, 32)
	// An SpTRSV-like workload: 1 message of 400 B per synchronization.
	fmt.Printf("tight bound: %.3f GB/s\n", m.CeilingGBs(1, 400))
	fmt.Printf("flood bound: %.3f GB/s\n", m.FloodGBs(400))
	// Output:
	// tight bound: 0.119 GB/s
	// flood bound: 1.143 GB/s
}

// ExampleForMachine derives the roofline for a catalog machine.
func ExampleForMachine() {
	cfg, _ := machine.Get("perlmutter-cpu")
	m, _ := core.ForMachine(cfg, machine.TwoSided, 128, 0, 127)
	fmt.Printf("%s: theoretical %.0f GB/s over %d channels\n",
		m.Name, m.TheoreticalGBs, m.Channels)
	// Output:
	// perlmutter-cpu two-sided: theoretical 32 GB/s over 4 channels
}

// ExampleModel_SplitSpeedup reproduces the Fig-10 question: is a
// large message worth splitting across NVLink port channels?
func ExampleModel_SplitSpeedup() {
	cfg, _ := machine.Get("perlmutter-gpu")
	m, _ := core.ForMachine(cfg, machine.GPUShmem, 4, 0, 1)
	fmt.Printf("1 KiB:  %.2fx\n", m.SplitSpeedup(1<<10, 4))
	fmt.Printf("1 MiB:  %.2fx\n", m.SplitSpeedup(1<<20, 4))
	// Output:
	// 1 KiB:  0.90x
	// 1 MiB:  3.09x
}
