// Package core implements the paper's primary contribution: the
// Message Roofline Model. It characterizes an application's sustained
// messaging performance (GB/s) as a function of message size, number
// of messages per synchronization, peak network bandwidth, and network
// latency, and provides
//
//   - the sharp bound  B / max(o, L, B·G) (ideal, unattainable),
//   - the rounded bound B / (o + max(L, B·G)) (empirically observed),
//   - the family of latency ceilings, one per msg/sync value n:
//     n·B / (n·k·o + L + n·max(g, B·G)),
//   - placement of measured workloads as dots on the plot,
//   - the tighter communication bound for a workload given its
//     msg/sync (the paper's headline improvement over flood bounds),
//   - the message-splitting analysis of Fig. 10.
package core

import (
	"fmt"
	"math"

	"msgroofline/internal/loggp"
	"msgroofline/internal/machine"
	"msgroofline/internal/plot"
	"msgroofline/internal/sim"
	"msgroofline/internal/trace"
)

// Model is a Message Roofline for one (machine, transport) pair.
type Model struct {
	// Name labels the model in plots, e.g. "perlmutter-cpu two-sided".
	Name string
	// Params are the LogGP parameters, either analytic (from the
	// machine catalog) or fitted from measured sweeps.
	Params loggp.Params
	// TheoreticalGBs is the horizontal ceiling drawn on plots (the
	// marketing peak; may exceed Params.Bandwidth, as on Summit).
	TheoreticalGBs float64
	// AggregateGBs, when nonzero, is the multi-channel ceiling a
	// split message stream can reach (Perlmutter GPU: 100 vs 25).
	AggregateGBs float64
	// Channels is the number of parallel injection channels.
	Channels int
}

// FromParams wraps an explicit parameter set.
func FromParams(name string, p loggp.Params, theoreticalGBs float64) (*Model, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	return &Model{Name: name, Params: p, TheoreticalGBs: theoreticalGBs, Channels: 1}, nil
}

// ForMachine derives the analytic model for traffic between two
// representative ranks on a catalog machine.
func ForMachine(cfg *machine.Config, tr machine.Transport, ranks, src, dst int) (*Model, error) {
	inst, err := cfg.Instantiate(ranks)
	if err != nil {
		return nil, err
	}
	p, err := inst.ModelParams(tr, src, dst)
	if err != nil {
		return nil, err
	}
	m := &Model{
		Name:           fmt.Sprintf("%s %s", cfg.Name, tr),
		Params:         p,
		TheoreticalGBs: cfg.TheoreticalGBs,
		Channels:       1,
	}
	if !inst.SameNode(src, dst) {
		a, b := inst.Places[src].Node, inst.Places[dst].Node
		m.Channels = inst.Net.Channels(a, b)
		m.AggregateGBs = inst.Net.AggregateBandwidth(a, b) / 1e9
	}
	return m, nil
}

// Fit builds a model by least-squares fitting measured sweep samples
// (see loggp.Fit), as the paper does with its empirical dots.
func Fit(name string, samples []loggp.Sample, opsPerMsg int, gap sim.Time, theoreticalGBs float64) (*Model, error) {
	p, err := loggp.Fit(samples, opsPerMsg, gap)
	if err != nil {
		return nil, err
	}
	return &Model{Name: name, Params: p, TheoreticalGBs: theoreticalGBs, Channels: 1}, nil
}

// SharpGBs is the sharp bound at message size b, in GB/s.
func (m *Model) SharpGBs(b int64) float64 { return m.Params.SharpBandwidth(b) / 1e9 }

// RoundedGBs is the rounded bound at message size b, in GB/s.
func (m *Model) RoundedGBs(b int64) float64 { return m.Params.RoundedBandwidth(b) / 1e9 }

// CeilingGBs is the latency-ceiling value for n messages of b bytes
// per synchronization, in GB/s. This is the paper's tighter, realistic
// bound: the flood bound is CeilingGBs with n -> infinity.
func (m *Model) CeilingGBs(n int, b int64) float64 {
	return m.Params.SweepBandwidth(n, b) / 1e9
}

// FloodGBs is the classic loose upper bound obtained from a flood
// benchmark: latency fully amortized (n very large).
func (m *Model) FloodGBs(b int64) float64 {
	return m.CeilingGBs(1<<20, b)
}

// OverlapGain is how much faster n messages per sync complete,
// per message, than serialized single-message synchronization — the
// "you can get 10x by sending one hundred messages per sync" reading
// of Fig 1.
func (m *Model) OverlapGain(b int64, n int) float64 {
	t1 := m.Params.MsgLatency(1, b)
	tn := m.Params.MsgLatency(n, b)
	if tn <= 0 {
		return 0
	}
	return float64(t1) / float64(tn)
}

// Dot is a workload placed on the roofline.
type Dot struct {
	Name string
	// Bytes is the workload's mean message size (x coordinate).
	Bytes float64
	// GBs is the sustained bandwidth achieved (y coordinate).
	GBs float64
	// MsgsPerSync locates which latency ceiling applies.
	MsgsPerSync float64
	// BoundGBs is the model ceiling at this message size and
	// msg/sync — the tight bound the paper advocates.
	BoundGBs float64
	// FloodBoundGBs is the loose flood bound at this message size.
	FloodBoundGBs float64
}

// Efficiency is achieved bandwidth over the tight bound.
func (d Dot) Efficiency() float64 {
	if d.BoundGBs <= 0 {
		return 0
	}
	return d.GBs / d.BoundGBs
}

// Place positions a measured workload summary on this roofline.
func (m *Model) Place(name string, s trace.Summary) Dot {
	n := int(s.MsgsPerSync + 0.5)
	if n < 1 {
		n = 1
	}
	b := int64(s.MeanBytes + 0.5)
	if b < 1 {
		b = 1
	}
	return Dot{
		Name:          name,
		Bytes:         s.MeanBytes,
		GBs:           s.SustainedGBs,
		MsgsPerSync:   s.MsgsPerSync,
		BoundGBs:      m.CeilingGBs(n, b),
		FloodBoundGBs: m.FloodGBs(b),
	}
}

// DefaultSizes is the message-size sweep used by the paper's figures:
// 8 B to 4 MiB by powers of two.
func DefaultSizes() []int64 {
	var out []int64
	for b := int64(8); b <= 4<<20; b *= 2 {
		out = append(out, b)
	}
	return out
}

// DefaultMsgsPerSync is the concurrency sweep of Fig 1: 1 to 1e6 by
// powers of ten.
func DefaultMsgsPerSync() []int {
	return []int{1, 10, 100, 1000, 10000, 100000, 1000000}
}

// CeilingSeries returns the latency ceiling for a fixed n across
// sizes, as a plottable series (x = bytes, y = GB/s).
func (m *Model) CeilingSeries(n int, sizes []int64) plot.Series {
	s := plot.Series{Name: fmt.Sprintf("%d msg/sync", n)}
	for _, b := range sizes {
		s.X = append(s.X, float64(b))
		s.Y = append(s.Y, m.CeilingGBs(n, b))
	}
	return s
}

// SharpSeries returns the sharp roofline across sizes.
func (m *Model) SharpSeries(sizes []int64) plot.Series {
	s := plot.Series{Name: "sharp bound"}
	for _, b := range sizes {
		s.X = append(s.X, float64(b))
		s.Y = append(s.Y, m.SharpGBs(b))
	}
	return s
}

// RoundedSeries returns the rounded roofline across sizes.
func (m *Model) RoundedSeries(sizes []int64) plot.Series {
	s := plot.Series{Name: "rounded bound"}
	for _, b := range sizes {
		s.X = append(s.X, float64(b))
		s.Y = append(s.Y, m.RoundedGBs(b))
	}
	return s
}

// Chart assembles the full Message Roofline figure: the theoretical
// ceiling, the latency-ceiling family, and any dots.
func (m *Model) Chart(ns []int, sizes []int64, dots []Dot) *plot.Chart {
	c := &plot.Chart{
		Title:  fmt.Sprintf("Message Roofline — %s", m.Name),
		XLabel: "message size (bytes)",
		YLabel: "GB/s",
		XLog:   true,
		YLog:   true,
	}
	if m.TheoreticalGBs > 0 {
		ceiling := plot.Series{Name: fmt.Sprintf("theoretical %.0f GB/s", m.TheoreticalGBs)}
		for _, b := range sizes {
			ceiling.X = append(ceiling.X, float64(b))
			ceiling.Y = append(ceiling.Y, m.TheoreticalGBs)
		}
		c.Add(ceiling)
	}
	for _, n := range ns {
		c.Add(m.CeilingSeries(n, sizes))
	}
	for _, d := range dots {
		c.Add(plot.Series{Name: d.Name, X: []float64{d.Bytes}, Y: []float64{d.GBs}})
	}
	return c
}

// SplitTime models sending `volume` bytes as `parts` equal messages
// over `channels` parallel injection channels: issue overheads
// serialize, the latency is paid once, and serialization proceeds in
// ceil(parts/channels) waves at the single-channel rate.
func SplitTime(p loggp.Params, volume int64, parts, channels int) sim.Time {
	if parts < 1 {
		parts = 1
	}
	if channels < 1 {
		channels = 1
	}
	per := volume / int64(parts)
	waves := (parts + channels - 1) / channels
	ser := p.SerTime(per)
	if p.Gap > ser {
		ser = p.Gap
	}
	return sim.Time(parts)*sim.Time(p.OpsPerMsg)*p.O + p.L + sim.Time(waves)*ser
}

// SplitSpeedup is the modeled Fig-10 quantity: time of one message of
// `volume` bytes over the time of the same volume split `parts` ways.
func (m *Model) SplitSpeedup(volume int64, parts int) float64 {
	one := SplitTime(m.Params, volume, 1, m.Channels)
	split := SplitTime(m.Params, volume, parts, m.Channels)
	if split <= 0 {
		return math.NaN()
	}
	return float64(one) / float64(split)
}

// SplitSeries returns modeled split speedup across message volumes
// (x = volume bytes, y = speedup of `parts`-way splitting).
func (m *Model) SplitSeries(parts int, volumes []int64) plot.Series {
	s := plot.Series{Name: fmt.Sprintf("%d-way split", parts)}
	for _, v := range volumes {
		s.X = append(s.X, float64(v))
		s.Y = append(s.Y, m.SplitSpeedup(v, parts))
	}
	return s
}
