package core

import (
	"math"
	"strings"
	"testing"

	"msgroofline/internal/loggp"
	"msgroofline/internal/machine"
	"msgroofline/internal/sim"
	"msgroofline/internal/trace"
)

func pmTwoSided(t *testing.T) *Model {
	t.Helper()
	cfg, _ := machine.Get("perlmutter-cpu")
	m, err := ForMachine(cfg, machine.TwoSided, 128, 0, 127)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func TestForMachine(t *testing.T) {
	m := pmTwoSided(t)
	if m.TheoreticalGBs != 32 {
		t.Fatalf("theoretical = %v", m.TheoreticalGBs)
	}
	if m.Channels != 4 {
		t.Fatalf("channels = %d, want 4 (IF)", m.Channels)
	}
	if m.Params.OpsPerMsg != 2 {
		t.Fatalf("ops/msg = %d", m.Params.OpsPerMsg)
	}
	cfgGPU, _ := machine.Get("perlmutter-gpu")
	if _, err := ForMachine(cfgGPU, machine.OneSided, 4, 0, 1); err == nil {
		t.Fatal("expected error: no CPU one-sided MPI on GPU partition")
	}
}

func TestSharpAboveRoundedAboveNothing(t *testing.T) {
	m := pmTwoSided(t)
	for _, b := range DefaultSizes() {
		sharp, rounded := m.SharpGBs(b), m.RoundedGBs(b)
		if rounded > sharp {
			t.Fatalf("B=%d rounded %v > sharp %v", b, rounded, sharp)
		}
		if sharp > m.TheoreticalGBs*1.001 {
			t.Fatalf("B=%d sharp %v exceeds theoretical ceiling", b, sharp)
		}
	}
}

func TestCeilingFamilyMonotoneInN(t *testing.T) {
	m := pmTwoSided(t)
	for _, b := range []int64{8, 4096, 1 << 20} {
		prev := 0.0
		for _, n := range DefaultMsgsPerSync() {
			cur := m.CeilingGBs(n, b)
			if cur < prev {
				t.Fatalf("B=%d: ceiling not monotone in n: %v after %v", b, cur, prev)
			}
			prev = cur
		}
	}
}

func TestOverlapGainFig1(t *testing.T) {
	// Fig 1: ~10x improvement from 100+ msgs/sync when L >> G (small
	// messages).
	m := pmTwoSided(t)
	gain := m.OverlapGain(8, 100)
	if gain < 5 || gain > 20 {
		t.Fatalf("overlap gain at 8B/100 msgs = %.1f, want order 10x", gain)
	}
	// When G dominates (huge messages), overlap gains little.
	big := m.OverlapGain(4<<20, 100)
	if big > 1.5 {
		t.Fatalf("overlap gain at 4MiB = %.2f, want ~1 (bandwidth bound)", big)
	}
}

func TestFloodBoundLooserThanTightBound(t *testing.T) {
	// The paper's core claim: the msg/sync ceiling is tighter than
	// the flood bound for latency-bound workloads.
	m := pmTwoSided(t)
	b := int64(400) // SpTRSV-like message
	tight := m.CeilingGBs(1, b)
	flood := m.FloodGBs(b)
	if tight >= flood {
		t.Fatalf("tight bound %v should be below flood bound %v", tight, flood)
	}
	if flood/tight < 5 {
		t.Fatalf("flood/tight = %.1f: bound not meaningfully tighter", flood/tight)
	}
}

func TestPlaceWorkload(t *testing.T) {
	m := pmTwoSided(t)
	s := trace.Summary{
		Messages:     4000,
		Syncs:        1000,
		MeanBytes:    65536,
		MsgsPerSync:  4,
		SustainedGBs: 10,
	}
	d := m.Place("stencil", s)
	if d.Bytes != 65536 || d.GBs != 10 {
		t.Fatalf("dot = %+v", d)
	}
	if d.BoundGBs <= 0 || d.BoundGBs > m.TheoreticalGBs {
		t.Fatalf("bound = %v", d.BoundGBs)
	}
	if d.FloodBoundGBs < d.BoundGBs {
		t.Fatal("flood bound must be >= tight bound")
	}
	if eff := d.Efficiency(); eff <= 0 || eff > 1.5 {
		t.Fatalf("efficiency = %v", eff)
	}
}

func TestPlaceDegenerateSummary(t *testing.T) {
	m := pmTwoSided(t)
	d := m.Place("empty", trace.Summary{})
	if math.IsNaN(d.BoundGBs) || d.BoundGBs <= 0 {
		t.Fatalf("degenerate placement bound = %v", d.BoundGBs)
	}
	if (Dot{}).Efficiency() != 0 {
		t.Fatal("zero dot efficiency should be 0")
	}
}

func TestFitModel(t *testing.T) {
	truth := pmTwoSided(t).Params
	var samples []loggp.Sample
	for _, n := range []int{1, 4, 16, 64, 256} {
		for _, b := range []int64{8, 256, 8192, 262144} {
			samples = append(samples, loggp.Sample{N: n, Bytes: b, Elapsed: truth.SweepTime(n, b)})
		}
	}
	m, err := Fit("fitted", samples, truth.OpsPerMsg, truth.Gap, 32)
	if err != nil {
		t.Fatal(err)
	}
	if rel := math.Abs(m.Params.Bandwidth-truth.Bandwidth) / truth.Bandwidth; rel > 0.2 {
		t.Fatalf("fitted bandwidth off by %.0f%%", rel*100)
	}
	if _, err := Fit("bad", nil, 2, 0, 32); err == nil {
		t.Fatal("expected fit error for no samples")
	}
}

func TestFromParamsValidates(t *testing.T) {
	if _, err := FromParams("bad", loggp.Params{}, 10); err == nil {
		t.Fatal("invalid params should be rejected")
	}
}

func TestSplitSpeedupFig10(t *testing.T) {
	cfg, _ := machine.Get("perlmutter-gpu")
	m, err := ForMachine(cfg, machine.GPUShmem, 4, 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	if m.Channels != 4 {
		t.Fatalf("channels = %d", m.Channels)
	}
	// Paper: >= 131 KB gains up to ~2.9x from 4-way splitting.
	sp := m.SplitSpeedup(1<<20, 4)
	if sp < 2.3 || sp > 4.0 {
		t.Fatalf("1 MiB 4-way speedup = %.2f, want ~2.9x", sp)
	}
	// Small messages gain nothing (latency dominated).
	small := m.SplitSpeedup(256, 4)
	if small > 1.1 {
		t.Fatalf("256 B split speedup = %.2f, want ~<=1", small)
	}
	// Crossover should be in the tens-of-KB range.
	cross := int64(0)
	for v := int64(1024); v <= 8<<20; v *= 2 {
		if m.SplitSpeedup(v, 4) > 1.5 {
			cross = v
			break
		}
	}
	if cross == 0 || cross > 1<<20 {
		t.Fatalf("splitting crossover at %d bytes, want below 1 MiB", cross)
	}
}

func TestSplitTimeWaves(t *testing.T) {
	p := loggp.Params{
		L: sim.FromMicroseconds(1), O: 0, Gap: 0,
		Bandwidth: 1e9, OpsPerMsg: 1,
	}
	// 8 parts over 4 channels: two serialization waves.
	v := int64(8 << 10)
	two := SplitTime(p, v, 8, 4)
	one := SplitTime(p, v, 4, 4)
	if two <= one {
		t.Fatalf("8 parts on 4 channels (%v) should exceed 4 parts (%v)", two, one)
	}
}

func TestChartRenders(t *testing.T) {
	m := pmTwoSided(t)
	dots := []Dot{m.Place("hashtable", trace.Summary{MeanBytes: 8, MsgsPerSync: 1e6, SustainedGBs: 0.01})}
	c := m.Chart(DefaultMsgsPerSync(), DefaultSizes(), dots)
	out := c.Render()
	for _, want := range []string{"Message Roofline", "theoretical 32 GB/s", "1 msg/sync", "hashtable"} {
		if !strings.Contains(out, want) {
			t.Fatalf("chart missing %q:\n%s", want, out)
		}
	}
}

func TestSeriesShapes(t *testing.T) {
	m := pmTwoSided(t)
	sizes := DefaultSizes()
	for _, s := range []struct {
		name string
		n    int
	}{{"sharp", 0}, {"rounded", 0}} {
		_ = s
	}
	sharp := m.SharpSeries(sizes)
	rounded := m.RoundedSeries(sizes)
	ceil := m.CeilingSeries(100, sizes)
	split := m.SplitSeries(4, sizes)
	for _, s := range [][]float64{sharp.Y, rounded.Y, ceil.Y, split.Y} {
		if len(s) != len(sizes) {
			t.Fatal("series length mismatch")
		}
	}
}
