// Package experiments regenerates every table and figure of the
// paper's evaluation from the simulated stack. Each experiment
// returns an Output carrying rendered text (tables / ASCII charts),
// the raw series for CSV export, and paper-vs-measured notes; the
// cmd/experiments binary and the repository's benchmark suite both
// drive these entry points (see DESIGN.md §4 for the index).
package experiments

import (
	"fmt"
	"strings"

	"msgroofline/internal/bench"
	"msgroofline/internal/machine"
	"msgroofline/internal/plot"
	"msgroofline/internal/pointcache"
	"msgroofline/internal/sched"
	"msgroofline/internal/sim"
	"msgroofline/internal/spmat"
)

// Scale selects experiment sizing: Quick shrinks problem sizes so the
// whole suite runs in seconds; Full uses paper-scale parameters where
// the simulation cost allows (downscales are noted in the output).
type Scale int

const (
	// Quick runs small configurations (CI-sized).
	Quick Scale = iota
	// Full runs paper-scale configurations.
	Full
)

// Output is one regenerated table or figure.
type Output struct {
	// ID is the experiment key, e.g. "fig3" or "tableII".
	ID string
	// Title is the human heading.
	Title string
	// Text is the rendered tables and ASCII charts.
	Text string
	// Series is the underlying data for CSV export.
	Series []plot.Series
	// Notes record paper-vs-measured observations and any scaling
	// substitutions.
	Notes []string
}

// Render concatenates the output for terminal display.
func (o *Output) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "==== %s: %s ====\n\n", o.ID, o.Title)
	b.WriteString(o.Text)
	if len(o.Notes) > 0 {
		b.WriteString("\nNotes:\n")
		for _, n := range o.Notes {
			fmt.Fprintf(&b, "  - %s\n", n)
		}
	}
	return b.String()
}

// Env carries the run-wide context every experiment receives: the
// problem scale, the shared point cache (nil when caching is off),
// and the window worker parallelism for every simulated world.
// Neither the cache nor the shard count ever changes what any
// experiment outputs: the cache only decides which simulations run,
// and on the coupled engine -shards caps only how many node groups
// execute a window concurrently (see comm.Spec.Shards), so the
// rendered suite is byte-identical at any Shards value.
type Env struct {
	Scale  Scale
	Cache  *pointcache.Cache
	Shards int
}

// SweepReq declares one bench sweep a figure will run: the catalog
// machine name and the spec. The dedup planner expands these
// declarations into point sets before any figure runs.
type SweepReq struct {
	Machine string
	Spec    bench.Spec
}

// Experiment is a registered generator.
type Experiment struct {
	ID    string
	Title string
	Run   func(*Env) (*Output, error)
	// Sweeps, when set, declares the bench sweeps Run will perform at
	// a given scale, letting the planner simulate the union of unique
	// points across all figures exactly once. Declaring is optional —
	// an undeclared sweep still caches point by point — and must be
	// conservative: declaring a sweep Run never performs would
	// simulate (and cache) points nobody reads.
	Sweeps func(Scale) []SweepReq
}

// Registry lists every experiment in paper order.
func Registry() []Experiment {
	return []Experiment{
		{ID: "tableI", Title: "Evaluation platforms (Table I / Table III)", Run: func(*Env) (*Output, error) { return TableI() }},
		{ID: "fig1", Title: "Message Roofline overview on Frontier (Fig 1)", Run: Fig1, Sweeps: fig1Sweeps},
		{ID: "fig2", Title: "Node architectures (Fig 2)", Run: func(*Env) (*Output, error) { return Fig2() }},
		{ID: "fig3", Title: "Two-sided vs one-sided MPI bandwidth on CPUs (Fig 3)", Run: Fig3, Sweeps: fig3Sweeps},
		{ID: "fig4", Title: "GPU-initiated put-with-signal and CAS (Fig 4)", Run: Fig4, Sweeps: fig4Sweeps},
		{ID: "tableII", Title: "Workload characterization (Table II)", Run: TableII},
		{ID: "fig5", Title: "Stencil time on CPUs and GPUs (Fig 5)", Run: Fig5},
		{ID: "fig6", Title: "Workload communication bounds on Perlmutter CPU (Fig 6)", Run: Fig6},
		{ID: "fig7", Title: "Messaging latency vs msg/sync per workload (Fig 7)", Run: Fig7},
		{ID: "fig8", Title: "SpTRSV time on CPUs and GPUs (Fig 8)", Run: Fig8},
		{ID: "fig9", Title: "Distributed hashtable time (Fig 9)", Run: Fig9},
		{ID: "fig10", Title: "Message splitting speedup on Perlmutter GPU (Fig 10)", Run: Fig10},
		{ID: "ext-ccl", Title: "Extension: NCCL-style ring collectives (paper future work)", Run: ExtCCL},
		{ID: "ext-frontier", Title: "Extension: Frontier GPU with projected ROC_SHMEM", Run: ExtFrontierGPU, Sweeps: extFrontierSweeps},
		{ID: "ext-notified", Title: "Extension: notified access (hardware put-with-signal)", Run: ExtNotified},
		{ID: "ext-offload", Title: "Extension: offloaded transports (stream-triggered MPI, memory channels)", Run: ExtOffload, Sweeps: extOffloadSweeps},
		{ID: "ext-ridgeline", Title: "Extension: the Ridgeline — 2D distributed roofline vs topology", Run: ExtRidgeline},
	}
}

// Get returns the experiment with the given id.
func Get(id string) (Experiment, error) {
	for _, e := range Registry() {
		if e.ID == id {
			return e, nil
		}
	}
	return Experiment{}, fmt.Errorf("experiments: unknown id %q", id)
}

// PlanStats summarizes the dedup planner's view of a suite: how many
// sweep points the figures declared, how much of that is redundant,
// and what the planner actually simulated up front.
type PlanStats struct {
	// Figures counts experiments that declared sweeps.
	Figures int
	// Points is the total declared point count across all figures.
	Points int
	// Unique is the number of distinct content addresses among them.
	Unique int
	// Duplicates = Points - Unique: simulations the plan avoids.
	Duplicates int
	// CrossFigure counts duplicates spanning two figures (a point
	// unique within its own figure but declared by another as well) —
	// the overlap that per-sweep caching alone would still simulate
	// once per figure on a cold cache.
	CrossFigure int
	// Simulated is how many unique points the planner ran (cache
	// misses); Reused is how many the cache already held (warm disk).
	Simulated int
	Reused    int
}

func (p PlanStats) String() string {
	return fmt.Sprintf("%d figures declared %d points, %d unique (%d duplicate, %d cross-figure); planner simulated %d, reused %d",
		p.Figures, p.Points, p.Unique, p.Duplicates, p.CrossFigure, p.Simulated, p.Reused)
}

// plan expands every experiment's declared sweeps, dedups the points
// by content address, and — when a cache is available — simulates each
// unique point exactly once on up to `jobs` workers, seeding the cache
// so the figures' own sweeps hit instead of re-simulating. With a warm
// disk cache already-known points are reused, not re-run. Without a
// cache the plan is census-only: the figures behave exactly as before.
func plan(exps []Experiment, opt SuiteOptions) (PlanStats, error) {
	var ps PlanStats
	var miss []bench.PointSpec
	cache := opt.Cache
	seen := map[pointcache.Key]bool{}
	for _, e := range exps {
		if e.Sweeps == nil {
			continue
		}
		ps.Figures++
		inFig := map[pointcache.Key]bool{}
		for _, req := range e.Sweeps(opt.Scale) {
			cfg, err := getMachine(req.Machine)
			if err != nil {
				return ps, fmt.Errorf("experiments: %s declares unknown machine: %w", e.ID, err)
			}
			// Presimulated points carry the suite's shard count like the
			// figures' own sweeps will; the content address ignores it.
			req.Spec.Shards = opt.Shards
			for _, pt := range bench.ExpandPoints(cfg, req.Spec) {
				k := pt.Key()
				ps.Points++
				if seen[k] {
					if !inFig[k] {
						ps.CrossFigure++
					}
					inFig[k] = true
					continue
				}
				seen[k] = true
				inFig[k] = true
				ps.Unique++
				if cache.Enabled() {
					if _, _, ok := cache.Get(k); ok {
						ps.Reused++
					} else {
						miss = append(miss, pt)
					}
				}
			}
		}
	}
	ps.Duplicates = ps.Points - ps.Unique
	if len(miss) == 0 {
		return ps, nil
	}
	_, _, err := sched.Map(opt.Jobs, len(miss), func(i int) (struct{}, error) {
		p, err := bench.MeasurePoint(miss[i])
		if err == nil {
			cache.Put(miss[i].Key(), p.Elapsed)
		}
		return struct{}{}, err
	})
	if err != nil {
		return ps, fmt.Errorf("experiments: planner presimulation failed: %w", err)
	}
	ps.Simulated = len(miss)
	return ps, nil
}

// SuiteOptions configures one RunSuite invocation. The zero value
// runs quick-scale, single-job, uncached, with one window worker.
type SuiteOptions struct {
	// Scale selects experiment sizing (Quick or Full).
	Scale Scale
	// Jobs caps concurrent experiment workers (<= 0 selects
	// GOMAXPROCS). Output order is fixed, so the rendered suite is
	// byte-identical at any job count.
	Jobs int
	// Shards is the window worker parallelism of every simulated
	// world (0 means 1). The node-group decomposition and event order
	// are topology-determined, so the suite is byte-identical at any
	// shard count.
	Shards int
	// Cache, when non-nil, memoizes points and enables the dedup
	// planner; nil degrades to a census-only PlanStats.
	Cache *pointcache.Cache
}

// RunSuite regenerates the given experiments on up to opt.Jobs
// concurrent workers and returns their outputs in the order they were
// given — registry order for Registry(). Each experiment is an
// independent, bit-reproducible set of simulations; on the first
// failure no further experiments start, and every failure is
// aggregated into the returned error. The returned sched.Stats hold
// per-experiment wall times for reporting.
//
// With a cache, the dedup planner first collects every declared
// sweep, computes the union of unique points, and simulates each
// exactly once (fanned out over opt.Jobs workers) to seed the cache;
// the figures then run as usual and hit. Cross-figure overlap is
// therefore simulated once even on a cold cache, and a warm disk
// cache skips straight to materializing the figures. Output is
// byte-identical in all cases.
func RunSuite(exps []Experiment, opt SuiteOptions) ([]*Output, *sched.Stats, PlanStats, error) {
	ps, err := plan(exps, opt)
	if err != nil {
		return nil, nil, ps, err
	}
	env := &Env{Scale: opt.Scale, Cache: opt.Cache, Shards: opt.Shards}
	outs, stats, err := sched.Map(opt.Jobs, len(exps), func(i int) (*Output, error) {
		out, err := exps[i].Run(env)
		if err != nil {
			return nil, fmt.Errorf("experiments: %s failed: %w", exps[i].ID, err)
		}
		return out, nil
	})
	if err != nil {
		return nil, stats, ps, err
	}
	return outs, stats, ps, nil
}

// helpers -------------------------------------------------------------------

// getMachine resolves a catalog name, turning an unknown machine into
// a reported experiment failure instead of a crash.
func getMachine(name string) (*machine.Config, error) {
	return machine.Get(name)
}

// matrixFor returns the SpTRSV factor for the scale.
func matrixFor(s Scale) (*spmat.SupTri, string, error) {
	if s == Full {
		m, err := spmat.Generate(spmat.M3DC1Like)
		return m, "M3D-C1-like synthetic factor (25200 x 25200, paper matrix scaled 5x; message sizes preserved at 24-1040 B)", err
	}
	m, err := spmat.Generate(spmat.Params{N: 2400, MeanSnode: 24, Fill: 1.0, Seed: 20230901})
	return m, "quick-scale synthetic factor (2400 x 2400)", err
}

func usStr(t sim.Time) string { return fmt.Sprintf("%.2f", t.Microseconds()) }

func msStr(t sim.Time) string { return fmt.Sprintf("%.3f", t.Seconds()*1e3) }
