// Package experiments regenerates every table and figure of the
// paper's evaluation from the simulated stack. Each experiment
// returns an Output carrying rendered text (tables / ASCII charts),
// the raw series for CSV export, and paper-vs-measured notes; the
// cmd/experiments binary and the repository's benchmark suite both
// drive these entry points (see DESIGN.md §4 for the index).
package experiments

import (
	"fmt"
	"strings"

	"msgroofline/internal/machine"
	"msgroofline/internal/plot"
	"msgroofline/internal/sched"
	"msgroofline/internal/sim"
	"msgroofline/internal/spmat"
)

// Scale selects experiment sizing: Quick shrinks problem sizes so the
// whole suite runs in seconds; Full uses paper-scale parameters where
// the simulation cost allows (downscales are noted in the output).
type Scale int

const (
	// Quick runs small configurations (CI-sized).
	Quick Scale = iota
	// Full runs paper-scale configurations.
	Full
)

// Output is one regenerated table or figure.
type Output struct {
	// ID is the experiment key, e.g. "fig3" or "tableII".
	ID string
	// Title is the human heading.
	Title string
	// Text is the rendered tables and ASCII charts.
	Text string
	// Series is the underlying data for CSV export.
	Series []plot.Series
	// Notes record paper-vs-measured observations and any scaling
	// substitutions.
	Notes []string
}

// Render concatenates the output for terminal display.
func (o *Output) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "==== %s: %s ====\n\n", o.ID, o.Title)
	b.WriteString(o.Text)
	if len(o.Notes) > 0 {
		b.WriteString("\nNotes:\n")
		for _, n := range o.Notes {
			fmt.Fprintf(&b, "  - %s\n", n)
		}
	}
	return b.String()
}

// Experiment is a registered generator.
type Experiment struct {
	ID    string
	Title string
	Run   func(Scale) (*Output, error)
}

// Registry lists every experiment in paper order.
func Registry() []Experiment {
	return []Experiment{
		{"tableI", "Evaluation platforms (Table I / Table III)", func(Scale) (*Output, error) { return TableI() }},
		{"fig1", "Message Roofline overview on Frontier (Fig 1)", Fig1},
		{"fig2", "Node architectures (Fig 2)", func(Scale) (*Output, error) { return Fig2() }},
		{"fig3", "Two-sided vs one-sided MPI bandwidth on CPUs (Fig 3)", Fig3},
		{"fig4", "GPU-initiated put-with-signal and CAS (Fig 4)", Fig4},
		{"tableII", "Workload characterization (Table II)", func(s Scale) (*Output, error) { return TableII(s) }},
		{"fig5", "Stencil time on CPUs and GPUs (Fig 5)", Fig5},
		{"fig6", "Workload communication bounds on Perlmutter CPU (Fig 6)", Fig6},
		{"fig7", "Messaging latency vs msg/sync per workload (Fig 7)", Fig7},
		{"fig8", "SpTRSV time on CPUs and GPUs (Fig 8)", Fig8},
		{"fig9", "Distributed hashtable time (Fig 9)", Fig9},
		{"fig10", "Message splitting speedup on Perlmutter GPU (Fig 10)", Fig10},
		{"ext-ccl", "Extension: NCCL-style ring collectives (paper future work)", ExtCCL},
		{"ext-frontier", "Extension: Frontier GPU with projected ROC_SHMEM", ExtFrontierGPU},
		{"ext-notified", "Extension: notified access (hardware put-with-signal)", ExtNotified},
	}
}

// Get returns the experiment with the given id.
func Get(id string) (Experiment, error) {
	for _, e := range Registry() {
		if e.ID == id {
			return e, nil
		}
	}
	return Experiment{}, fmt.Errorf("experiments: unknown id %q", id)
}

// RunAll regenerates the given experiments on up to `jobs` concurrent
// workers (jobs <= 0 selects GOMAXPROCS) and returns their outputs in
// the order they were given — registry order for Registry() — so the
// rendered suite is byte-identical at any job count. Each experiment
// is an independent, bit-reproducible set of simulations; on the
// first failure no further experiments start, and every failure is
// aggregated into the returned error. The returned sched.Stats hold
// per-experiment wall times for reporting.
func RunAll(exps []Experiment, scale Scale, jobs int) ([]*Output, *sched.Stats, error) {
	outs, stats, err := sched.Map(jobs, len(exps), func(i int) (*Output, error) {
		out, err := exps[i].Run(scale)
		if err != nil {
			return nil, fmt.Errorf("experiments: %s failed: %w", exps[i].ID, err)
		}
		return out, nil
	})
	if err != nil {
		return nil, stats, err
	}
	return outs, stats, nil
}

// helpers -------------------------------------------------------------------

// getMachine resolves a catalog name, turning an unknown machine into
// a reported experiment failure instead of a crash.
func getMachine(name string) (*machine.Config, error) {
	return machine.Get(name)
}

// matrixFor returns the SpTRSV factor for the scale.
func matrixFor(s Scale) (*spmat.SupTri, string, error) {
	if s == Full {
		m, err := spmat.Generate(spmat.M3DC1Like)
		return m, "M3D-C1-like synthetic factor (25200 x 25200, paper matrix scaled 5x; message sizes preserved at 24-1040 B)", err
	}
	m, err := spmat.Generate(spmat.Params{N: 2400, MeanSnode: 24, Fill: 1.0, Seed: 20230901})
	return m, "quick-scale synthetic factor (2400 x 2400)", err
}

func usStr(t sim.Time) string { return fmt.Sprintf("%.2f", t.Microseconds()) }

func msStr(t sim.Time) string { return fmt.Sprintf("%.3f", t.Seconds()*1e3) }
