package experiments

import (
	"strings"
	"testing"
)

func TestRegistryCoversPaper(t *testing.T) {
	want := []string{"tableI", "fig1", "fig2", "fig3", "fig4", "tableII",
		"fig5", "fig6", "fig7", "fig8", "fig9", "fig10", "ext-ccl", "ext-frontier", "ext-notified",
		"ext-offload", "ext-ridgeline"}
	reg := Registry()
	if len(reg) != len(want) {
		t.Fatalf("registry has %d entries, want %d", len(reg), len(want))
	}
	for i, id := range want {
		if reg[i].ID != id {
			t.Fatalf("registry[%d] = %s, want %s", i, reg[i].ID, id)
		}
	}
	if _, err := Get("fig9"); err != nil {
		t.Fatal(err)
	}
	if _, err := Get("fig99"); err == nil {
		t.Fatal("expected error for unknown id")
	}
}

// TestAllExperimentsRunQuick regenerates every table and figure at
// quick scale — the end-to-end smoke test of the whole repository.
func TestAllExperimentsRunQuick(t *testing.T) {
	if testing.Short() {
		t.Skip("quick experiments still take a few seconds")
	}
	for _, e := range Registry() {
		e := e
		t.Run(e.ID, func(t *testing.T) {
			out, err := e.Run(&Env{Scale: Quick})
			if err != nil {
				t.Fatal(err)
			}
			if out.ID != e.ID {
				t.Fatalf("output id %q", out.ID)
			}
			if len(out.Text) == 0 {
				t.Fatal("empty output")
			}
			if strings.Contains(out.Text, "(no data)") {
				t.Fatalf("%s rendered empty chart:\n%s", e.ID, out.Text)
			}
			for _, n := range out.Notes {
				if strings.Contains(n, "WARNING") {
					t.Errorf("%s: %s", e.ID, n)
				}
			}
			t.Logf("\n%s", out.Render())
		})
	}
}
