package experiments

import (
	"fmt"

	"msgroofline/internal/bench"
	"msgroofline/internal/ccl"
	"msgroofline/internal/comm"
	"msgroofline/internal/hashtable"
	"msgroofline/internal/machine"
	"msgroofline/internal/plot"
	"msgroofline/internal/shmem"
	"msgroofline/internal/sim"
	"msgroofline/internal/spmat"
	"msgroofline/internal/sptrsv"
	"msgroofline/internal/table"
)

// ExtCCL runs NCCL/RCCL-style ring allreduce across the GPU machines
// — the paper's named future work (§V).
func ExtCCL(env *Env) (*Output, error) {
	sizes := []int{1 << 10, 1 << 14, 1 << 17}
	if env.Scale == Full {
		sizes = append(sizes, 1<<20)
	}
	t := table.New("Extension — ring AllReduce (NCCL-style) on GPU machines",
		"Machine", "GPUs", "elements", "time", "algbw GB/s")
	var series []plot.Series
	for _, name := range []string{"perlmutter-gpu", "summit-gpu", "frontier-gpu"} {
		cfg, err := getMachine(name)
		if err != nil {
			return nil, err
		}
		ser := plot.Series{Name: name + " allreduce"}
		for _, n := range sizes {
			plan, err := ccl.NewPlan(cfg.MaxRanks, n)
			if err != nil {
				return nil, err
			}
			job, err := shmem.NewJob(cfg, cfg.MaxRanks, plan.HeapBytes())
			if err != nil {
				return nil, err
			}
			if err := plan.Bind(job, 0); err != nil {
				return nil, err
			}
			n := n
			err = job.Launch(func(sc *shmem.Ctx) {
				c := plan.NewCtx(sc)
				data := make([]float64, n)
				for i := range data {
					data[i] = float64(sc.MyPE() + i)
				}
				if e := c.AllReduce(data); e != nil {
					panic(e)
				}
			})
			if err != nil {
				return nil, err
			}
			moved := float64(8*n) * 2 * float64(cfg.MaxRanks-1) / float64(cfg.MaxRanks)
			algbw := moved / job.Elapsed().Seconds() / 1e9
			t.AddRow(cfg.Title, fmt.Sprint(cfg.MaxRanks), fmt.Sprint(n),
				fmt.Sprint(job.Elapsed()), fmt.Sprintf("%.2f", algbw))
			ser.X = append(ser.X, float64(8*n))
			ser.Y = append(ser.Y, algbw)
		}
		series = append(series, ser)
	}
	return &Output{
		ID:     "ext-ccl",
		Title:  "Ring collectives (paper future work)",
		Text:   t.Render(),
		Series: series,
		Notes: []string{
			"Ring allreduce is a chain of 1-msg/sync steps: small vectors sit on the latency ceiling, large ones approach the aggregate-channel ceiling.",
			"Perlmutter's 4 NVLink3 channels per pair give it the best algorithm bandwidth; Summit pays the dumbbell for cross-island ring hops.",
		},
	}, nil
}

// extFrontierSweeps declares ExtFrontierGPU's bench sweep for the
// dedup planner.
func extFrontierSweeps(s Scale) []SweepReq {
	ns, sizes := sweepDims(s)
	return []SweepReq{{Machine: "frontier-gpu", Spec: bench.Spec{Transport: bench.ShmemPutSignal, Ns: ns, Sizes: sizes}}}
}

// ExtFrontierGPU runs the paper's GPU experiments on the Frontier GPU
// extension platform (projected ROC_SHMEM parameters).
func ExtFrontierGPU(env *Env) (*Output, error) {
	s := env.Scale
	cfg, err := getMachine("frontier-gpu")
	if err != nil {
		return nil, err
	}
	ns, sizes := sweepDims(s)
	res, err := bench.Sweep(cfg, bench.Spec{Transport: bench.ShmemPutSignal, Ns: ns, Sizes: sizes, Cache: env.Cache, Shards: env.Shards})
	if err != nil {
		return nil, err
	}
	t := table.New("Extension — Frontier GPU (projected ROC_SHMEM)",
		"Experiment", "Result", "Compare")
	p1, _ := res.At(ns[0], sizes[0])
	t.AddRow("put-with-signal latency", fmt.Sprintf("%.2f us", p1.Elapsed.Microseconds()),
		"NVSHMEM: 3.9 (Perlmutter) / 4.8 (Summit)")
	cas, err := bench.CASLatencyCached(env.Cache, cfg, 4, 1, 32)
	if err != nil {
		return nil, err
	}
	t.AddRow("atomic CAS", fmt.Sprintf("%.2f us", cas.Microseconds()),
		"NVSHMEM: 0.88 (Perlmutter) / 1.05 (Summit in-island)")
	mat, _, err := matrixFor(s)
	if err != nil {
		return nil, err
	}
	for _, p := range []int{1, 2, 4} {
		r, err := sptrsv.Run(sptrsv.Config{Machine: cfg, Transport: comm.Shmem, Matrix: mat, Ranks: p, Shards: env.Shards})
		if err != nil {
			return nil, err
		}
		t.AddRow(fmt.Sprintf("SpTRSV, %d GPU(s)", p), msStr(r.Elapsed)+" ms", "wait_until_any now exercised")
	}
	inserts := 2400
	if s == Full {
		inserts = 20000
	}
	for _, p := range []int{1, 4} {
		r, err := hashtable.Run(hashtable.Config{Machine: cfg, Transport: comm.Shmem, Ranks: p, TotalInserts: inserts, Shards: env.Shards})
		if err != nil {
			return nil, err
		}
		t.AddRow(fmt.Sprintf("hashtable, %d GPU(s)", p), msStr(r.Elapsed)+" ms",
			fmt.Sprintf("%.0f updates/s", r.UpdatesPerSec))
	}
	return &Output{
		ID:     "ext-frontier",
		Title:  "Frontier GPU extension (the platform the paper could not run)",
		Text:   t.Render(),
		Series: res.Series(),
		Notes: []string{
			"The paper excluded Frontier GPUs because ROC_SHMEM lacked wait_until_any (§II); our SHMEM layer implements it, so the full workload suite runs.",
			"ROC_SHMEM parameters are projections (no paper data to calibrate against); results are marked as extension output, not reproduction.",
		},
	}, nil
}

// extOffloadSweeps declares ExtOffload's bench sweeps for the dedup
// planner.
func extOffloadSweeps(s Scale) []SweepReq {
	ns, sizes := sweepDims(s)
	return []SweepReq{
		{Machine: "perlmutter-gpu", Spec: bench.Spec{Transport: bench.StreamTriggered, Ns: ns, Sizes: sizes}},
		{Machine: "perlmutter-cpu", Spec: bench.Spec{Transport: bench.MemChannel, Ns: ns, Sizes: sizes}},
	}
}

// ExtOffload contrasts the two offloaded transports against their
// host-driven baselines: stream-triggered MPI moves the host overhead
// o off the critical path (descriptors enqueue ahead of time, the
// trigger engine pays T on it instead), and the RAMC-style memory
// channel amortizes a one-time open handshake over an ordered FIFO.
func ExtOffload(env *Env) (*Output, error) {
	ns, sizes := sweepDims(env.Scale)
	gpu, err := getMachine("perlmutter-gpu")
	if err != nil {
		return nil, err
	}
	cpu, err := getMachine("perlmutter-cpu")
	if err != nil {
		return nil, err
	}
	resST, err := bench.Sweep(gpu, bench.Spec{Transport: bench.StreamTriggered, Ns: ns, Sizes: sizes, Cache: env.Cache, Shards: env.Shards})
	if err != nil {
		return nil, err
	}
	resMC, err := bench.Sweep(cpu, bench.Spec{Transport: bench.MemChannel, Ns: ns, Sizes: sizes, Cache: env.Cache, Shards: env.Shards})
	if err != nil {
		return nil, err
	}

	// The o/L split: where each transport's per-message cost lives.
	split := table.New("Extension — offloaded transports: o/L split vs host-driven baselines",
		"Machine", "Transport", "o (us)", "L+T (us)", "ceiling @8B", "ceiling @1MB")
	for _, r := range []struct {
		cfg      string
		base, tr machine.Transport
	}{
		{"perlmutter-gpu", machine.GPUShmem, machine.StreamTriggered},
		{"perlmutter-cpu", machine.OneSided, machine.MemChannel},
	} {
		cfg, err := getMachine(r.cfg)
		if err != nil {
			return nil, err
		}
		in, err := cfg.Instantiate(2)
		if err != nil {
			return nil, err
		}
		for _, tr := range []machine.Transport{r.base, r.tr} {
			p, err := in.ModelParams(tr, 0, 1)
			if err != nil {
				return nil, err
			}
			ceil := p.RoundedBandwidth
			if p.Trigger > 0 || tr == machine.MemChannel {
				ceil = p.OffloadBandwidth
			}
			split.AddRow(cfg.Name, tr.String(), usStr(sim.Time(p.OpsPerMsg)*p.O),
				usStr(p.L+p.Trigger),
				fmt.Sprintf("%.4f GB/s", ceil(8)/1e9),
				fmt.Sprintf("%.1f GB/s", ceil(1<<20)/1e9))
		}
	}

	// Micro-numbers: the calibrated constants recovered from timing.
	micro := table.New("Offload micro-measurements (recovered vs calibrated)",
		"Quantity", "Measured", "Calibrated")
	trig, err := bench.TriggerDelayCached(env.Cache, gpu, 2, 64)
	if err != nil {
		return nil, err
	}
	stp, _ := gpu.Params(machine.StreamTriggered)
	micro.AddRow("stream trigger delivery latency (perlmutter-gpu)",
		usStr(trig)+" us", usStr(stp.TriggerLatency)+" us trigger")
	open, err := bench.ChannelOpenCached(env.Cache, cpu, 2)
	if err != nil {
		return nil, err
	}
	mcp, _ := cpu.Params(machine.MemChannel)
	micro.AddRow("memory-channel open handshake (perlmutter-cpu)",
		usStr(open)+" us", usStr(mcp.ChannelOpen)+" us open")

	var series []plot.Series
	series = append(series, resST.Series()...)
	series = append(series, resMC.Series()...)
	return &Output{
		ID:     "ext-offload",
		Title:  "Offloaded transports: stream-triggered MPI and memory channels",
		Text:   split.Render() + "\n" + micro.Render(),
		Series: series,
		Notes: []string{
			"Stream-triggered puts show near-zero host o: the cost moved into the trigger latency T, so the small-message ceiling is set by L+T alone (OffloadBandwidth).",
			"The memory channel pays a one-time per-destination open; steady-state sends ride a single fused op with FIFO ordering guaranteed by the channel, not by fences.",
			fmt.Sprintf("Measured trigger delay %.2f us ~= L+T for an 8 B descriptor; measured cold-minus-warm open cost recovers the calibrated %.0f us handshake exactly.",
				trig.Microseconds(), mcp.ChannelOpen.Microseconds()),
		},
	}, nil
}

// ExtNotified quantifies the paper's concluding inference: with
// hardware-level put-with-signal ("notified access"), one-sided MPI
// outperforms two-sided on the latency-bound SpTRSV — the cited foMPI
// result is 1.5x (Liu et al., §V).
func ExtNotified(env *Env) (*Output, error) {
	s := env.Scale
	// The comparison only bites where communication dominates, so the
	// headline table uses a latency-bound matrix (shallow compute per
	// DAG level); the full M3D-C1-scale factor is shown for context —
	// there compute hides most of the per-message difference.
	latencyBound, err := spmat.Generate(spmat.Params{N: 2400, MeanSnode: 24, Fill: 1.0, Seed: 20230901})
	if err != nil {
		return nil, err
	}
	pm, err := getMachine("perlmutter-cpu")
	if err != nil {
		return nil, err
	}
	ranks := []int{4, 8, 16}
	if s == Full {
		ranks = []int{4, 8, 16, 32}
	}
	run := func(t *table.Table, mat *spmat.SupTri) (best float64, err error) {
		for _, p := range ranks {
			two, err := sptrsv.Run(sptrsv.Config{Machine: pm, Transport: comm.TwoSided, Matrix: mat, Ranks: p, Shards: env.Shards})
			if err != nil {
				return 0, err
			}
			one, err := sptrsv.Run(sptrsv.Config{Machine: pm, Transport: comm.OneSided, Matrix: mat, Ranks: p, Shards: env.Shards})
			if err != nil {
				return 0, err
			}
			ntf, err := sptrsv.Run(sptrsv.Config{Machine: pm, Transport: comm.Notified, Matrix: mat, Ranks: p, Shards: env.Shards})
			if err != nil {
				return 0, err
			}
			ratio := two.Elapsed.Seconds() / ntf.Elapsed.Seconds()
			if ratio > best {
				best = ratio
			}
			t.AddRow(fmt.Sprint(p), msStr(two.Elapsed), msStr(one.Elapsed), msStr(ntf.Elapsed),
				fmt.Sprintf("%.2fx", ratio))
		}
		return best, nil
	}
	t1 := table.New("Extension — SpTRSV with notified access, latency-bound factor (2400^2)",
		"Ranks", "two-sided (ms)", "one-sided 4-op (ms)", "notified (ms)", "notified vs two-sided")
	best, err := run(t1, latencyBound)
	if err != nil {
		return nil, err
	}
	text := t1.Render()
	notes := []string{
		fmt.Sprintf("Best notified-access speedup over two-sided: %.2fx on the latency-bound factor (foMPI literature: ~1.5x).", best),
		"The standard one-sided path loses (4 ops, 2 flush round trips, Listing-1 polling); fusing the signal into the put flips the comparison, exactly as §V predicts.",
	}
	if s == Full {
		full, matNote, err := matrixFor(Full)
		if err != nil {
			return nil, err
		}
		t2 := table.New("Same comparison on the full factor (compute-heavy: gains shrink)",
			"Ranks", "two-sided (ms)", "one-sided 4-op (ms)", "notified (ms)", "notified vs two-sided")
		if _, err := run(t2, full); err != nil {
			return nil, err
		}
		text += "\n" + t2.Render()
		notes = append(notes, matNote+" — on this compute-heavy factor the per-message saving is hidden by local work.")
	}
	return &Output{
		ID:    "ext-notified",
		Title: "Notified access: the paper's concluding inference, quantified",
		Text:  text,
		Notes: notes,
	}, nil
}
