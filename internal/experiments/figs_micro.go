package experiments

import (
	"fmt"
	"strings"

	"msgroofline/internal/bench"
	"msgroofline/internal/core"
	"msgroofline/internal/loggp"
	"msgroofline/internal/machine"
	"msgroofline/internal/plot"
	"msgroofline/internal/table"
)

// TableI renders the evaluation-platform inventory.
func TableI() (*Output, error) {
	t := table.New("Evaluation Platforms",
		"Machine", "GPUs/node", "GPU interconnect", "GPU runtime",
		"GPU-CPU", "CPUs", "CPU interconnect", "CPU runtime", "CPU-NIC")
	for _, c := range machine.All() {
		r := c.TableRow
		t.AddRow(c.Title, r.GPUsPerNode, r.GPUInterconnect, r.GPURuntime,
			r.GPUCPULink, r.CPUs, r.CPUInterconnect, r.CPURuntime, r.CPUNICLink)
	}
	return &Output{
		ID:    "tableI",
		Title: "Evaluation platforms",
		Text:  t.Render(),
		Notes: []string{"All platforms are simulated; link peaks and latencies are calibrated from Table I / §II of the paper (see internal/machine/params.go)."},
	}, nil
}

// Fig2 describes the node architectures encoded in the catalog.
func Fig2() (*Output, error) {
	var b strings.Builder
	descr := []struct{ name, text string }{
		{"perlmutter-cpu", "two Milan sockets, Infinity Fabric 32 GB/s/dir x4 channels; NIC on socket 0 via PCIe4"},
		{"frontier-cpu", "one 64-core socket as four NUMA quadrants, fully connected Infinity Fabric 36 GB/s/dir"},
		{"summit-cpu", "two POWER9 sockets, X-Bus (64 GB/s theoretical, ~26 achievable) x2 channels"},
		{"summit-gpu", "dual-island dumbbell: 3 V100 per island fully connected NVLink2 (2x25 GB/s per pair); islands joined GPU-CPU-XBus-CPU-GPU"},
		{"perlmutter-gpu", "four A100 fully connected NVLink3, 4x25 GB/s port channels per pair (100 GB/s/dir)"},
	}
	t := table.New("Node architectures (Fig 2)", "Machine", "Topology", "Hops g0->gN/cross", "Peak/pair GB/s", "Aggregate GB/s")
	for _, d := range descr {
		cfg, err := getMachine(d.name)
		if err != nil {
			return nil, err
		}
		in, err := cfg.Instantiate(cfg.MaxRanks)
		if err != nil {
			return nil, err
		}
		a, bnode := in.Places[0].Node, in.Places[cfg.MaxRanks-1].Node
		t.AddRow(cfg.Title, d.text,
			fmt.Sprint(in.Net.Hops(a, bnode)),
			fmt.Sprintf("%.0f", in.Net.PeakBandwidth(a, bnode)/1e9),
			fmt.Sprintf("%.0f", in.Net.AggregateBandwidth(a, bnode)/1e9))
	}
	t.RenderTo(&b)
	return &Output{ID: "fig2", Title: "Node architectures", Text: b.String()}, nil
}

func sweepDims(s Scale) ([]int, []int64) {
	if s == Full {
		return []int{1, 4, 16, 64, 256, 1024, 4096}, bench.DefaultSizes()
	}
	return []int{1, 16, 256}, []int64{8, 512, 32768, 1 << 20}
}

// fig1Sweeps declares Fig1's bench sweeps for the dedup planner.
func fig1Sweeps(s Scale) []SweepReq {
	ns, sizes := sweepDims(s)
	return []SweepReq{{Machine: "frontier-cpu", Spec: bench.Spec{Transport: bench.OneSided, Ns: ns, Sizes: sizes}}}
}

// Fig1 builds the Message Roofline overview on Frontier: the measured
// put sweep, the fitted latency-ceiling family, and the sharp vs
// rounded bounds.
func Fig1(env *Env) (*Output, error) {
	s := env.Scale
	cfg, err := getMachine("frontier-cpu")
	if err != nil {
		return nil, err
	}
	ns, sizes := sweepDims(s)
	res, err := bench.Sweep(cfg, bench.Spec{Transport: bench.OneSided, Ns: ns, Sizes: sizes, Cache: env.Cache, Shards: env.Shards})
	if err != nil {
		return nil, err
	}
	tp, _ := cfg.Params(machine.OneSided)
	m, err := core.Fit("frontier-cpu one-sided (fitted)", res.Samples(), tp.OpsPerMsg, tp.Gap, cfg.TheoreticalGBs)
	if err != nil {
		return nil, err
	}
	chart := plot.Chart{
		Title:  "Fig 1 — Message Roofline overview, Frontier CPU (one-sided put)",
		XLabel: "message size (bytes)", YLabel: "GB/s", XLog: true, YLog: true,
	}
	var series []plot.Series
	for _, n := range ns {
		cs := m.CeilingSeries(n, sizes)
		cs.Name = fmt.Sprintf("ceiling %d msg/sync", n)
		series = append(series, cs)
	}
	series = append(series, m.SharpSeries(sizes), m.RoundedSeries(sizes))
	series = append(series, res.Series()...)
	chart.Series = series
	gain := m.OverlapGain(64, 100)
	return &Output{
		ID:     "fig1",
		Title:  "Message Roofline overview on Frontier",
		Text:   chart.Render(),
		Series: series,
		Notes: []string{
			fmt.Sprintf("Fitted LogGP: %v (RMS rel. err %.2f)", m.Params, loggp.FitError(m.Params, res.Samples())),
			fmt.Sprintf("Overlap gain at 64 B going 1 -> 100 msg/sync: %.1fx (paper: ~10x when L >> G)", gain),
			fmt.Sprintf("36 GB/s Infinity Fabric ceiling; measured peak %.1f GB/s", res.MaxGBs()),
		},
	}, nil
}

// fig3Sweeps declares Fig3's bench sweeps for the dedup planner. The
// frontier-cpu one-sided sweep is Fig1's exact grid — the canonical
// cross-figure overlap the planner simulates only once.
func fig3Sweeps(s Scale) []SweepReq {
	ns, sizes := sweepDims(s)
	var out []SweepReq
	for _, name := range []string{"perlmutter-cpu", "frontier-cpu", "summit-cpu"} {
		out = append(out,
			SweepReq{Machine: name, Spec: bench.Spec{Transport: bench.TwoSided, Ns: ns, Sizes: sizes}},
			SweepReq{Machine: name, Spec: bench.Spec{Transport: bench.OneSided, Ns: ns, Sizes: sizes}})
	}
	return out
}

// Fig3 measures two-sided vs one-sided MPI bandwidth on the three CPU
// platforms.
func Fig3(env *Env) (*Output, error) {
	ns, sizes := sweepDims(env.Scale)
	var b strings.Builder
	var all []plot.Series
	var notes []string
	for _, name := range []string{"perlmutter-cpu", "frontier-cpu", "summit-cpu"} {
		cfg, err := getMachine(name)
		if err != nil {
			return nil, err
		}
		two, err := bench.Sweep(cfg, bench.Spec{Transport: bench.TwoSided, Ns: ns, Sizes: sizes, Cache: env.Cache, Shards: env.Shards})
		if err != nil {
			return nil, err
		}
		one, err := bench.Sweep(cfg, bench.Spec{Transport: bench.OneSided, Ns: ns, Sizes: sizes, Cache: env.Cache, Shards: env.Shards})
		if err != nil {
			return nil, err
		}
		chart := plot.Chart{
			Title:  fmt.Sprintf("Fig 3 — %s: sustained bandwidth (ceiling %.0f GB/s theoretical)", cfg.Title, cfg.TheoreticalGBs),
			XLabel: "message size (bytes)", YLabel: "GB/s", XLog: true, YLog: true,
		}
		for _, ser := range two.Series() {
			ser.Name = name + " " + ser.Name
			chart.Add(ser)
			all = append(all, ser)
		}
		for _, ser := range one.Series() {
			ser.Name = name + " " + ser.Name
			chart.Add(ser)
			all = append(all, ser)
		}
		b.WriteString(chart.Render())
		b.WriteString("\n")

		nHi := ns[len(ns)-1]
		bSmall := sizes[0]
		p2, _ := two.At(nHi, bSmall)
		p1, _ := one.At(nHi, bSmall)
		switch name {
		case "summit-cpu":
			notes = append(notes, fmt.Sprintf("%s: Spectrum one-sided stays below two-sided at every point (paper Fig 3c); at n=%d, B=%d: %.3f vs %.3f GB/s",
				cfg.Title, nHi, bSmall, p1.GBs, p2.GBs))
		default:
			notes = append(notes, fmt.Sprintf("%s: one-sided overtakes two-sided at high msg/sync (paper Fig 3a/b); at n=%d, B=%d: %.3f vs %.3f GB/s",
				cfg.Title, nHi, bSmall, p1.GBs, p2.GBs))
		}
	}
	return &Output{ID: "fig3", Title: "Two-sided vs one-sided MPI on CPUs", Text: b.String(), Series: all, Notes: notes}, nil
}

// fig4Sweeps declares Fig4's bench sweeps for the dedup planner.
func fig4Sweeps(s Scale) []SweepReq {
	ns, sizes := sweepDims(s)
	var out []SweepReq
	for _, name := range []string{"perlmutter-gpu", "summit-gpu"} {
		out = append(out, SweepReq{Machine: name, Spec: bench.Spec{Transport: bench.ShmemPutSignal, Ns: ns, Sizes: sizes}})
	}
	return out
}

// Fig4 measures GPU-initiated put-with-signal sweeps and atomic CAS
// latencies on both GPU machines.
func Fig4(env *Env) (*Output, error) {
	ns, sizes := sweepDims(env.Scale)
	var b strings.Builder
	var all []plot.Series
	var notes []string
	for _, name := range []string{"perlmutter-gpu", "summit-gpu"} {
		cfg, err := getMachine(name)
		if err != nil {
			return nil, err
		}
		res, err := bench.Sweep(cfg, bench.Spec{Transport: bench.ShmemPutSignal, Ns: ns, Sizes: sizes, Cache: env.Cache, Shards: env.Shards})
		if err != nil {
			return nil, err
		}
		chart := plot.Chart{
			Title:  fmt.Sprintf("Fig 4 — %s: NVSHMEM put-with-signal", cfg.Title),
			XLabel: "message size (bytes)", YLabel: "GB/s", XLog: true, YLog: true,
		}
		for _, ser := range res.Series() {
			ser.Name = name + " " + ser.Name
			chart.Add(ser)
			all = append(all, ser)
		}
		b.WriteString(chart.Render())
		b.WriteString("\n")
		p1, _ := res.At(ns[0], sizes[0])
		notes = append(notes, fmt.Sprintf("%s: single put-with-signal latency %s us (paper: ~4 us Perlmutter, ~5 us Summit)",
			cfg.Title, usStr(p1.Elapsed)))
	}
	// CAS latencies (§III-C).
	t := table.New("GPU atomic compare-and-swap latency", "Machine", "Pair", "us/CAS", "Paper")
	pmGPU, err := getMachine("perlmutter-gpu")
	if err != nil {
		return nil, err
	}
	pg, err := bench.CASLatencyCached(env.Cache, pmGPU, 4, 1, 32)
	if err != nil {
		return nil, err
	}
	t.AddRow("Perlmutter GPU", "g0->g1", usStr(pg), "0.8")
	smGPU, err := getMachine("summit-gpu")
	if err != nil {
		return nil, err
	}
	in, err := bench.CASLatencyCached(env.Cache, smGPU, 6, 1, 32)
	if err != nil {
		return nil, err
	}
	t.AddRow("Summit GPU", "g0->g1 (in island)", usStr(in), "1.0")
	cross, err := bench.CASLatencyCached(env.Cache, smGPU, 6, 3, 32)
	if err != nil {
		return nil, err
	}
	t.AddRow("Summit GPU", "g0->g3 (cross socket)", usStr(cross), "1.6")
	pmCPU, err := getMachine("perlmutter-cpu")
	if err != nil {
		return nil, err
	}
	cpu, err := bench.OneSidedCASLatencyCached(env.Cache, pmCPU, 2, 1, 32)
	if err != nil {
		return nil, err
	}
	t.AddRow("Perlmutter CPU", "rank0->rank1 (one-sided MPI)", usStr(cpu), "2.0")
	b.WriteString(t.Render())
	return &Output{ID: "fig4", Title: "GPU put-with-signal and CAS", Text: b.String(), Series: all, Notes: notes}, nil
}

// Fig10 measures the message-splitting speedup on Perlmutter GPU.
func Fig10(env *Env) (*Output, error) {
	var volumes []int64
	hi := int64(4 << 20)
	if env.Scale == Quick {
		hi = 1 << 20
	}
	for v := int64(1 << 10); v <= hi; v *= 2 {
		volumes = append(volumes, v)
	}
	cfg, err := getMachine("perlmutter-gpu")
	if err != nil {
		return nil, err
	}
	pts, err := bench.SweepSplitCached(env.Cache, cfg, 4, volumes)
	if err != nil {
		return nil, err
	}
	meas := plot.Series{Name: "measured 4-way split speedup"}
	t := table.New("Fig 10 — splitting one message into four (Perlmutter GPU)",
		"volume (B)", "whole (us)", "split (us)", "speedup")
	var crossover int64
	best := 0.0
	for _, p := range pts {
		meas.X = append(meas.X, float64(p.Volume))
		meas.Y = append(meas.Y, p.Speedup)
		t.AddRow(fmt.Sprint(p.Volume), usStr(p.Whole), usStr(p.Split), fmt.Sprintf("%.2f", p.Speedup))
		if crossover == 0 && p.Speedup >= 1.5 {
			crossover = p.Volume
		}
		if p.Speedup > best {
			best = p.Speedup
		}
	}
	m, err := core.ForMachine(cfg, machine.GPUShmem, 4, 0, 1)
	if err != nil {
		return nil, err
	}
	model := m.SplitSeries(4, volumes)
	chart := plot.Chart{
		Title:  "Fig 10 — split speedup vs message volume",
		XLabel: "message volume (bytes)", YLabel: "speedup (x)", XLog: true,
		Series: []plot.Series{meas, model},
	}
	return &Output{
		ID:     "fig10",
		Title:  "Message splitting on Perlmutter GPU",
		Text:   t.Render() + "\n" + chart.Render(),
		Series: []plot.Series{meas, model},
		Notes: []string{
			fmt.Sprintf("Peak measured speedup %.2fx (paper: up to 2.9x)", best),
			fmt.Sprintf("Splitting starts paying off (>=1.5x) at %d B (paper: >=131 KB worthwhile)", crossover),
		},
	}, nil
}
