package experiments

import (
	"fmt"

	"msgroofline/internal/comm"
	"msgroofline/internal/machine"
	"msgroofline/internal/plot"
	"msgroofline/internal/ridgeline"
	"msgroofline/internal/sim"
	"msgroofline/internal/stencil"
	"msgroofline/internal/table"
)

// Per-rank compute and DRAM ceilings used by every Ridgeline surface
// in this experiment: one Milan-class core lane (flop/s) and its DRAM
// stream share (bytes/s). The topology only enters through the network
// ceiling, so fixing these isolates the who-wins question.
const (
	rlPeakFlops = 5e10
	rlMemBW     = 2e10
)

// rlKernels places representative workload points on the intensity
// plane: flops per DRAM byte (ai), flops per network byte (ci), and
// the operating message size that sets the LogGP-effective bandwidth.
func rlKernels() []ridgeline.Kernel {
	return []ridgeline.Kernel{
		// 5-point Jacobi, 512x512 interior per rank: 5 flops / 40
		// DRAM bytes, 4 halo rows of 4 KB per 512^2 x 5 flops.
		{Name: "stencil halo", AI: 0.25, CI: 80, MsgBytes: 4096},
		// Supernodal triangular sweep: short dependency messages.
		{Name: "SpTRSV sweep", AI: 0.17, CI: 8, MsgBytes: 512},
		// GUPS-style hashtable updates: one tiny message per flop-ish.
		{Name: "GUPS update", AI: 0.125, CI: 1, MsgBytes: 16},
	}
}

// ExtRidgeline renders the 2D distributed roofline: per-kernel
// classification on the generated catalog fabrics, the who-wins map of
// dragonfly vs fat-tree families from 1K to 100K ranks, a sharded
// simulated stencil cross-check of the analytic network ceiling, and
// a minimal-vs-adaptive routing micro-run on the tapered dragonfly.
func ExtRidgeline(env *Env) (*Output, error) {
	tp, err := crayOneSided()
	if err != nil {
		return nil, err
	}

	// 1. Classification: which ceiling binds each kernel on each
	// generated fabric at its own message size.
	class := table.New("Ridgeline classification (one-sided, per rank: peak 50 Gflop/s, DRAM 20 GB/s)",
		"Kernel", "Machine", "net GB/s", "bound", "Gflop/s", "crossover ci")
	var series []plot.Series
	for _, name := range []string{"dragonfly-1k", "fattree-1k", "dragonfly-10k"} {
		cfg, err := getMachine(name)
		if err != nil {
			return nil, err
		}
		m, err := cfg.Topology.Metrics()
		if err != nil {
			return nil, err
		}
		ser := plot.Series{Name: name + " ridgeline"}
		for _, k := range rlKernels() {
			s := ridgeline.SurfaceFor(name, tp, m, k.MsgBytes, rlPeakFlops, rlMemBW)
			if err := s.Validate(); err != nil {
				return nil, err
			}
			perf, bound := s.Bound(k.AI, k.CI)
			class.AddRow(k.Name, name,
				fmt.Sprintf("%.3f", s.NetBW/1e9), bound.String(),
				fmt.Sprintf("%.2f", perf/1e9),
				fmt.Sprintf("%.1f", s.NetworkCrossoverCI(k.AI)))
			ser.X = append(ser.X, k.CI)
			ser.Y = append(ser.Y, perf)
		}
		series = append(series, ser)
	}

	// 2. Who-wins map: the balanced-dragonfly and fat-tree families
	// sized for 1K-100K ranks, evaluated analytically (Metrics never
	// instantiates the fabric, so 100K ranks costs nothing).
	wins := table.New("Who wins vs scale (per-rank network ceiling, GB/s)",
		"Ranks", "msg", "dragonfly", "fat-tree", "fat-tree adv", "stencil df/ft", "GUPS df/ft")
	stencilK, gupsK := rlKernels()[0], rlKernels()[2]
	for _, ranks := range []int{1024, 10240, 102400} {
		df := machine.DragonflyForRanks(ranks)
		ft := machine.FatTreeForRanks(ranks)
		dm, err := df.Metrics()
		if err != nil {
			return nil, err
		}
		fm, err := ft.Metrics()
		if err != nil {
			return nil, err
		}
		for _, msg := range []int64{256, 4096, 65536} {
			sDf := ridgeline.SurfaceFor("df", tp, dm, msg, rlPeakFlops, rlMemBW)
			sFt := ridgeline.SurfaceFor("ft", tp, fm, msg, rlPeakFlops, rlMemBW)
			wins.AddRow(fmt.Sprint(ranks), fmt.Sprint(msg),
				fmt.Sprintf("%.3f", sDf.NetBW/1e9),
				fmt.Sprintf("%.3f", sFt.NetBW/1e9),
				fmt.Sprintf("%.2fx", sFt.NetBW/sDf.NetBW),
				sDf.Classify(stencilK.AI, stencilK.CI).String()+"/"+sFt.Classify(stencilK.AI, stencilK.CI).String(),
				sDf.Classify(gupsK.AI, gupsK.CI).String()+"/"+sFt.Classify(gupsK.AI, gupsK.CI).String())
		}
	}

	// 3. Simulated cross-check: the sharded stencil on both generated
	// 1K-rank fabrics. The analytic network ceiling must dominate the
	// simulated sustained per-rank bandwidth at the halo message size.
	grid := 1024
	if env.Scale == Full {
		grid = 4096
	}
	check := table.New("Simulated cross-check — 2D stencil, 1024 ranks (32x32), one-sided",
		"Machine", "elapsed", "halo B", "per-rank GB/s", "ceiling GB/s", "used")
	type valPoint struct {
		name    string
		elapsed sim.Time
	}
	var vals []valPoint
	for _, name := range []string{"dragonfly-1k", "fattree-1k"} {
		cfg, err := getMachine(name)
		if err != nil {
			return nil, err
		}
		r, err := stencil.Run(stencil.Config{
			Machine: cfg, Transport: comm.OneSided,
			Grid: grid, PX: 32, PY: 32, Iters: 2, Shards: env.Shards,
		})
		if err != nil {
			return nil, err
		}
		m, err := cfg.Topology.Metrics()
		if err != nil {
			return nil, err
		}
		halo := int64(8 * grid / 32)
		ceiling := ridgeline.NetBWPerRank(tp, m, halo)
		perRank := float64(r.Comm.TotalBytes) / float64(r.Ranks) / r.Elapsed.Seconds()
		if perRank > ceiling {
			return nil, fmt.Errorf("ext-ridgeline: %s sustained %.3g B/s exceeds analytic ceiling %.3g B/s", name, perRank, ceiling)
		}
		check.AddRow(name, usStr(r.Elapsed)+" us", fmt.Sprint(halo),
			fmt.Sprintf("%.4f", perRank/1e9), fmt.Sprintf("%.3f", ceiling/1e9),
			fmt.Sprintf("%.1f%%", 100*perRank/ceiling))
		vals = append(vals, valPoint{name, r.Elapsed})
	}

	// 4. Routing micro-run: uniform cross-fabric bursts driven through
	// the Route layer on the tapered dragonfly — adaptive (UGAL-lite)
	// vs a minimal-routing copy — and on the full-bisection fat-tree.
	routing, note, err := rlRoutingMicro()
	if err != nil {
		return nil, err
	}

	return &Output{
		ID:     "ext-ridgeline",
		Title:  "The Ridgeline: 2D distributed roofline over (ai, ci)",
		Text:   class.Render() + "\n" + wins.Render() + "\n" + check.Render() + "\n" + routing.Render(),
		Series: series,
		Notes: []string{
			"Perf(ai, ci) = min(peak, ai*MemBW, ci*NetBW) per rank; NetBW is the LogGP rounded bandwidth at the kernel's message size capped by the rank's uniform-traffic share of the limiting tier.",
			"The fat-tree advantage grows with scale: the balanced dragonfly's global tier is shared by quadratically more cross-group pairs, so GUPS-class kernels stay network-bound everywhere while stencil-class kernels stay memory-bound.",
			fmt.Sprintf("Simulated stencil sustains well under the analytic ceiling on both fabrics (nearest-neighbor halos barely touch the global tier), and the %s/%s elapsed ordering matches the per-link latency ordering.", vals[0].name, vals[1].name),
			note,
		},
	}, nil
}

// crayOneSided resolves the one-sided Cray MPI parameter set the
// generated catalog machines share.
func crayOneSided() (machine.TransportParams, error) {
	cfg, err := getMachine("dragonfly-1k")
	if err != nil {
		return machine.TransportParams{}, err
	}
	tp, ok := cfg.Params(machine.OneSided)
	if !ok {
		return machine.TransportParams{}, fmt.Errorf("ext-ridgeline: dragonfly-1k lacks one-sided parameters")
	}
	return tp, nil
}

// rlRoutingMicro drives deterministic uniform cross-fabric bursts
// through netsim's Route layer on three fabrics: the dragonfly-1k
// catalog entry (adaptive), a minimal-routing copy of it, and the
// fat-tree. It reports achieved aggregate bandwidth, the adaptive
// pick split, and the mean utilization of the bisection-limiting tier.
func rlRoutingMicro() (*table.Table, string, error) {
	dfAd, err := getMachine("dragonfly-1k")
	if err != nil {
		return nil, "", err
	}
	// A value copy with the routing policy flipped: the specs inside
	// Topology are read-only, so sharing their pointers is safe, and
	// the config fingerprint distinguishes the two policies.
	dfMinCfg := *dfAd
	dfMinCfg.Name = "dragonfly-1k-minimal"
	dfMinCfg.Topology.Routing = machine.RoutingMinimal
	ftCfg, err := getMachine("fattree-1k")
	if err != nil {
		return nil, "", err
	}
	const (
		msgBytes = 64 << 10
		rounds   = 4
		stride   = 16
	)
	t := table.New("Routing micro-run — 64 KB uniform cross-fabric bursts, 64 pairs x 4 rounds",
		"Fabric", "policy", "achieved GB/s", "min/alt picks", "limit tier util")
	var adAgg, minAgg, ftAgg float64
	var altPicks int64
	for _, c := range []struct {
		cfg    *machine.Config
		label  string
		tier   string
		out    *float64
		tallyA bool
	}{
		{dfAd, "adaptive", "global", &adAgg, true},
		{&dfMinCfg, "minimal", "global", &minAgg, false},
		{ftCfg, "minimal", "core", &ftAgg, false},
	} {
		inst, err := c.cfg.Instantiate(c.cfg.MaxRanks)
		if err != nil {
			return nil, "", err
		}
		ranks := c.cfg.MaxRanks
		// Every stride-th rank sends to its antipode: cross-group on
		// the dragonfly, cross-pod on the fat-tree.
		var done sim.Time
		var moved int64
		for r := 0; r < ranks; r += stride {
			src := inst.Places[r].Node
			dst := inst.Places[(r+ranks/2)%ranks].Node
			rt, err := inst.Net.RouteTo(src, dst)
			if err != nil {
				return nil, "", err
			}
			var at sim.Time
			for i := 0; i < rounds; i++ {
				at = rt.Transfer(at, msgBytes, 0)
				moved += msgBytes
			}
			if at > done {
				done = at
			}
		}
		agg := float64(moved) / done.Seconds() / 1e9
		*c.out = agg
		min, alt := inst.Net.RoutingStats()
		if c.tallyA {
			altPicks = alt
		}
		util := "-"
		for _, cs := range inst.Net.ClassStatsAll() {
			if cs.Class == c.tier {
				util = fmt.Sprintf("%.1f%% (%s)", 100*cs.MeanUtilization(done), c.tier)
			}
		}
		t.AddRow(c.cfg.Title, c.label, fmt.Sprintf("%.2f", agg),
			fmt.Sprintf("%d/%d", min, alt), util)
	}
	if adAgg < minAgg {
		return nil, "", fmt.Errorf("ext-ridgeline: adaptive routing (%.2f GB/s) lost to minimal (%.2f GB/s) under congestion", adAgg, minAgg)
	}
	if ftAgg < adAgg {
		return nil, "", fmt.Errorf("ext-ridgeline: tapered dragonfly (%.2f GB/s) beat the full-bisection fat-tree (%.2f GB/s)", adAgg, ftAgg)
	}
	note := fmt.Sprintf("Under uniform cross-group bursts UGAL-lite diverted %d messages to Valiant legs, recovering %.1f%% over minimal routing on the same wires; the fat-tree's full bisection still wins, matching the analytic who-wins map.",
		altPicks, 100*(adAgg/minAgg-1))
	return t, note, nil
}
