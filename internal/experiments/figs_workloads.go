package experiments

import (
	"fmt"
	"strings"

	"msgroofline/internal/comm"
	"msgroofline/internal/core"
	"msgroofline/internal/hashtable"
	"msgroofline/internal/machine"
	"msgroofline/internal/plot"
	"msgroofline/internal/sptrsv"
	"msgroofline/internal/stencil"
	"msgroofline/internal/table"
)

// stencilDims maps a rank count to the paper's 2-D process grid: the
// most square factorization, wider than tall (6 -> 3x2, 128 -> 16x8).
func stencilDims(p int) (px, py int) {
	py = 1
	for d := 2; d*d <= p; d++ {
		if p%d == 0 {
			py = d
		}
	}
	return p / py, py
}

// fitGrid shrinks the grid to the nearest multiple of both px and py
// so tiles stay uniform (the paper's code pads instead; the size
// difference is below 0.3%).
func fitGrid(grid, px, py int) int {
	m := px * py
	g := grid - grid%m
	if g < m {
		g = m
	}
	return g
}

func stencilScale(s Scale) (grid, iters int, note string) {
	if s == Full {
		// Paper grid; iterations reduced 20x (time scales linearly
		// per iteration, reported per-iteration).
		return 16384, 50, "grid 16384^2 as in the paper; 50 iterations instead of 1000 (per-iteration time is what Fig 5 compares)"
	}
	return 2048, 4, "quick scale: grid 2048^2, 4 iterations"
}

// TableII reports the workload characterization, with msg/sync and
// message sizes measured from traced runs.
func TableII(env *Env) (*Output, error) {
	t := table.New("Workload characterization (Table II)",
		"Workload", "Pattern", "Notify", "P2P pair", "Msg/sync (paper)", "Msg/sync (measured)", "Bytes/msg (measured)")
	pm, err := getMachine("perlmutter-cpu")
	if err != nil {
		return nil, err
	}

	st, err := stencil.Run(stencil.Config{Machine: pm, Transport: comm.TwoSided, Grid: 512, Iters: 3, PX: 4, PY: 4, Shards: env.Shards})
	if err != nil {
		return nil, err
	}
	t.AddRow("Stencil", "BSP sync", "yes", "deterministic & fixed", "4",
		fmt.Sprintf("%.1f", st.Comm.MsgsPerSync),
		fmt.Sprintf("%.0f", st.Comm.MeanBytes))

	m, _, err := matrixFor(Quick)
	if err != nil {
		return nil, err
	}
	sp, err := sptrsv.Run(sptrsv.Config{Machine: pm, Transport: comm.TwoSided, Matrix: m, Ranks: 8, Shards: env.Shards})
	if err != nil {
		return nil, err
	}
	t.AddRow("SpTRSV", "DAG async", "yes", "deterministic & variable", "1",
		fmt.Sprintf("%.1f", sp.Comm.MsgsPerSync),
		fmt.Sprintf("%.0f (range %d-%d)", sp.Comm.MeanBytes, sp.Comm.MinBytes, sp.Comm.MaxBytes))

	ht, err := hashtable.Run(hashtable.Config{Machine: pm, Transport: comm.TwoSided, Ranks: 8, TotalInserts: 800, Shards: env.Shards})
	if err != nil {
		return nil, err
	}
	t.AddRow("HashTable (two-sided)", "random async", "no", "indeterministic", "P",
		fmt.Sprintf("%.1f", ht.Comm.MsgsPerSync),
		fmt.Sprintf("%.0f (3 words)", ht.Comm.MeanBytes))

	h1, err := hashtable.Run(hashtable.Config{Machine: pm, Transport: comm.OneSided, Ranks: 8, TotalInserts: 800, Shards: env.Shards})
	if err != nil {
		return nil, err
	}
	t.AddRow("HashTable (one-sided)", "random async", "no", "indeterministic", "1e6",
		fmt.Sprintf("%d atomics / 1 sync", h1.Atomics), "8 (1 word CAS)")

	return &Output{ID: "tableII", Title: "Workload characterization", Text: t.Render(),
		Notes: []string{"Measured msg/sync and sizes come from traced runs on Perlmutter CPU (stencil averages below 4 because edge ranks have fewer neighbors)."}}, nil
}

// Fig5 reproduces stencil scaling on CPUs and GPUs.
func Fig5(env *Env) (*Output, error) {
	s := env.Scale
	grid, iters, note := stencilScale(s)
	cpuRanks := []int{4, 8, 16, 32, 64, 128}
	if s == Quick {
		cpuRanks = []int{4, 16, 64}
	}
	pm, err := getMachine("perlmutter-cpu")
	if err != nil {
		return nil, err
	}
	var b strings.Builder
	t := table.New("Fig 5 — stencil time", "Platform", "Variant", "Ranks", "Total (ms)", "Per-iter (ms)", "Comm GB/s")
	twoS := plot.Series{Name: "perlmutter-cpu two-sided"}
	oneS := plot.Series{Name: "perlmutter-cpu one-sided"}
	for _, p := range cpuRanks {
		px, py := stencilDims(p)
		g := fitGrid(grid, px, py)
		two, err := stencil.Run(stencil.Config{Machine: pm, Transport: comm.TwoSided, Grid: g, Iters: iters, PX: px, PY: py, Shards: env.Shards})
		if err != nil {
			return nil, err
		}
		one, err := stencil.Run(stencil.Config{Machine: pm, Transport: comm.OneSided, Grid: g, Iters: iters, PX: px, PY: py, Shards: env.Shards})
		if err != nil {
			return nil, err
		}
		t.AddRow("Perlmutter CPU", "two-sided", fmt.Sprint(p), msStr(two.Elapsed), msStr(two.PerIter), fmt.Sprintf("%.2f", two.Comm.SustainedGBs))
		t.AddRow("Perlmutter CPU", "one-sided", fmt.Sprint(p), msStr(one.Elapsed), msStr(one.PerIter), fmt.Sprintf("%.2f", one.Comm.SustainedGBs))
		twoS.X = append(twoS.X, float64(p))
		twoS.Y = append(twoS.Y, two.Elapsed.Seconds()*1e3)
		oneS.X = append(oneS.X, float64(p))
		oneS.Y = append(oneS.Y, one.Elapsed.Seconds()*1e3)
	}
	gpuSeries := map[string]*plot.Series{}
	for _, g := range []struct {
		name  string
		ranks []int
	}{
		{"perlmutter-gpu", []int{1, 2, 4}},
		{"summit-gpu", []int{1, 2, 4, 6}},
	} {
		cfg, err := getMachine(g.name)
		if err != nil {
			return nil, err
		}
		ser := &plot.Series{Name: g.name + " nvshmem"}
		gpuSeries[g.name] = ser
		for _, p := range g.ranks {
			px, py := stencilDims(p)
			res, err := stencil.Run(stencil.Config{Machine: cfg, Transport: comm.Shmem, Grid: fitGrid(grid, px, py), Iters: iters, PX: px, PY: py, Shards: env.Shards})
			if err != nil {
				return nil, err
			}
			t.AddRow(cfg.Title, "nvshmem", fmt.Sprint(p), msStr(res.Elapsed), msStr(res.PerIter), fmt.Sprintf("%.2f", res.Comm.SustainedGBs))
			ser.X = append(ser.X, float64(p))
			ser.Y = append(ser.Y, res.Elapsed.Seconds()*1e3)
		}
	}
	// Host-staged GPU (§I's "communicate via the host processor"):
	// two-sided MPI on the GPU machine routes through the host.
	pg, err := getMachine("perlmutter-gpu")
	if err != nil {
		return nil, err
	}
	staged := plot.Series{Name: "perlmutter-gpu host-staged"}
	for _, p := range []int{1, 2, 4} {
		px, py := stencilDims(p)
		res, err := stencil.Run(stencil.Config{Machine: pg, Transport: comm.TwoSided, Grid: fitGrid(grid, px, py), Iters: iters, PX: px, PY: py, Shards: env.Shards})
		if err != nil {
			return nil, err
		}
		t.AddRow(pg.Title, "host-staged MPI", fmt.Sprint(p), msStr(res.Elapsed), msStr(res.PerIter), fmt.Sprintf("%.2f", res.Comm.SustainedGBs))
		staged.X = append(staged.X, float64(p))
		staged.Y = append(staged.Y, res.Elapsed.Seconds()*1e3)
	}
	b.WriteString(t.Render())
	series := []plot.Series{twoS, oneS, *gpuSeries["perlmutter-gpu"], *gpuSeries["summit-gpu"], staged}
	chart := plot.Chart{Title: "Fig 5 — stencil strong scaling", XLabel: "ranks/GPUs", YLabel: "time (ms)", XLog: true, YLog: true, Series: series}
	b.WriteString("\n")
	b.WriteString(chart.Render())
	return &Output{ID: "fig5", Title: "Stencil scaling", Text: b.String(), Series: series,
		Notes: []string{
			note,
			"Two-sided and one-sided perform equally on CPUs (bandwidth/compute-bound, §III-A); GPUs win from parallelism and bandwidth.",
			"The host-staged series is the §I baseline (device-host-device path); GPU-initiated NVSHMEM beats it at every GPU count.",
		}}, nil
}

// Fig6 places the three workloads' message-size ranges on the
// Perlmutter CPU Message Rooflines.
func Fig6(env *Env) (*Output, error) {
	s := env.Scale
	pm, err := getMachine("perlmutter-cpu")
	if err != nil {
		return nil, err
	}
	mTwo, err := core.ForMachine(pm, machine.TwoSided, 128, 0, 127)
	if err != nil {
		return nil, err
	}
	mOne, err := core.ForMachine(pm, machine.OneSided, 128, 0, 127)
	if err != nil {
		return nil, err
	}
	// Workload placements from traced quick runs.
	grid, iters, _ := stencilScale(Quick)
	st, err := stencil.Run(stencil.Config{Machine: pm, Transport: comm.TwoSided, Grid: grid, Iters: iters, PX: 4, PY: 4, Shards: env.Shards})
	if err != nil {
		return nil, err
	}
	mat, _, err := matrixFor(s)
	if err != nil {
		return nil, err
	}
	sp, err := sptrsv.Run(sptrsv.Config{Machine: pm, Transport: comm.TwoSided, Matrix: mat, Ranks: 16, Shards: env.Shards})
	if err != nil {
		return nil, err
	}
	ht, err := hashtable.Run(hashtable.Config{Machine: pm, Transport: comm.TwoSided, Ranks: 16, TotalInserts: 1600, Shards: env.Shards})
	if err != nil {
		return nil, err
	}
	dots := []core.Dot{
		mTwo.Place("stencil", st.Comm),
		mTwo.Place("sptrsv", sp.Comm),
		mTwo.Place("hashtable", ht.Comm),
	}
	sizes := core.DefaultSizes()
	chart := mTwo.Chart([]int{1, 4, 100, 10000}, sizes, dots)
	var b strings.Builder
	b.WriteString(chart.Render())
	t := table.New("Workload bounds on the Message Roofline (Perlmutter CPU, two-sided)",
		"Workload", "mean B", "msg/sync", "achieved GB/s", "tight bound GB/s", "flood bound GB/s", "efficiency")
	for _, d := range dots {
		t.AddRow(d.Name, fmt.Sprintf("%.0f", d.Bytes), fmt.Sprintf("%.1f", d.MsgsPerSync),
			fmt.Sprintf("%.3f", d.GBs), fmt.Sprintf("%.3f", d.BoundGBs),
			fmt.Sprintf("%.3f", d.FloodBoundGBs), fmt.Sprintf("%.2f", d.Efficiency()))
	}
	b.WriteString("\n")
	b.WriteString(t.Render())
	oneMsg := mOne.Params.SweepTime(1, 400)
	twoMsg := mTwo.Params.SweepTime(1, 400)
	return &Output{ID: "fig6", Title: "Workload communication bounds", Text: b.String(),
		Series: chart.Series,
		Notes: []string{
			fmt.Sprintf("One small message per sync: two-sided %.1f us vs one-sided %.1f us (paper Fig 6b: 3.3 vs 5 us)", twoMsg.Microseconds(), oneMsg.Microseconds()),
			"The msg/sync ceiling is far tighter than the flood bound for the 1-msg/sync SpTRSV (the paper's core argument).",
		}}, nil
}

// Fig7 compares the amortized per-message latency each workload sees
// at its (msg/sync, message size) coordinate on the GPU Message
// Roofline: more messages per synchronization hide more latency, so
// the hashtable (1e6 msg/sync) pays the least and SpTRSV (1 msg/sync)
// the most.
func Fig7(env *Env) (*Output, error) {
	pg, err := getMachine("perlmutter-gpu")
	if err != nil {
		return nil, err
	}
	model, err := core.ForMachine(pg, machine.GPUShmem, 4, 0, 1)
	if err != nil {
		return nil, err
	}
	// Message sizes come from traced workload runs.
	pm, err := getMachine("perlmutter-cpu")
	if err != nil {
		return nil, err
	}
	grid, iters, _ := stencilScale(Quick)
	st, err := stencil.Run(stencil.Config{Machine: pm, Transport: comm.TwoSided, Grid: grid, Iters: iters, PX: 4, PY: 4, Shards: env.Shards})
	if err != nil {
		return nil, err
	}
	mat, _, err := matrixFor(Quick)
	if err != nil {
		return nil, err
	}
	sp, err := sptrsv.Run(sptrsv.Config{Machine: pm, Transport: comm.TwoSided, Matrix: mat, Ranks: 16, Shards: env.Shards})
	if err != nil {
		return nil, err
	}
	type row struct {
		name  string
		n     int
		bytes int64
	}
	rows := []row{
		{"hashtable (1e6 msg/sync, 1-word CAS)", 1000000, 8},
		{"stencil (4 msg/sync, halo)", 4, int64(st.Comm.MeanBytes)},
		{"sptrsv (1 msg/sync, contribution)", 1, int64(sp.Comm.MeanBytes)},
	}
	t := table.New("Fig 7 — amortized GPU message latency at each workload's msg/sync",
		"Workload", "msg/sync", "bytes/msg", "latency/msg (us)")
	ser := plot.Series{Name: "amortized latency (us)"}
	lats := make([]float64, len(rows))
	for i, r := range rows {
		lat := model.Params.MsgLatency(r.n, r.bytes)
		lats[i] = lat.Microseconds()
		t.AddRow(r.name, fmt.Sprint(r.n), fmt.Sprint(r.bytes), usStr(lat))
		ser.X = append(ser.X, float64(r.n))
		ser.Y = append(ser.Y, lats[i])
	}
	notes := []string{"Paper Fig 7: hashtable (1e6 msg/sync) has the smallest latency, SpTRSV (1 msg/sync) the largest."}
	if !(lats[0] < lats[1] && lats[1] < lats[2]) {
		notes = append(notes, "WARNING: ordering deviates from the paper")
	}
	return &Output{ID: "fig7", Title: "Latency vs msg/sync", Text: t.Render(), Series: []plot.Series{ser}, Notes: notes}, nil
}

// Fig8 reproduces SpTRSV scaling on CPUs and GPUs.
func Fig8(env *Env) (*Output, error) {
	s := env.Scale
	mat, matNote, err := matrixFor(s)
	if err != nil {
		return nil, err
	}
	cpuRanks := []int{1, 2, 4, 8, 16, 32}
	if s == Quick {
		cpuRanks = []int{1, 4, 16}
	}
	t := table.New("Fig 8 — SpTRSV solve time", "Platform", "Variant", "Ranks", "Time (ms)")
	var series []plot.Series
	addSeries := func(name string, xs []int, ys []float64) {
		ser := plot.Series{Name: name}
		for i := range xs {
			ser.X = append(ser.X, float64(xs[i]))
			ser.Y = append(ser.Y, ys[i])
		}
		series = append(series, ser)
	}
	pm, err := getMachine("perlmutter-cpu")
	if err != nil {
		return nil, err
	}
	var twoT, oneT []float64
	for _, p := range cpuRanks {
		two, err := sptrsv.Run(sptrsv.Config{Machine: pm, Transport: comm.TwoSided, Matrix: mat, Ranks: p, Shards: env.Shards})
		if err != nil {
			return nil, err
		}
		one, err := sptrsv.Run(sptrsv.Config{Machine: pm, Transport: comm.OneSided, Matrix: mat, Ranks: p, Shards: env.Shards})
		if err != nil {
			return nil, err
		}
		t.AddRow("Perlmutter CPU", "two-sided", fmt.Sprint(p), msStr(two.Elapsed))
		t.AddRow("Perlmutter CPU", "one-sided", fmt.Sprint(p), msStr(one.Elapsed))
		twoT = append(twoT, two.Elapsed.Seconds()*1e3)
		oneT = append(oneT, one.Elapsed.Seconds()*1e3)
	}
	addSeries("perlmutter-cpu two-sided", cpuRanks, twoT)
	addSeries("perlmutter-cpu one-sided", cpuRanks, oneT)

	sm, err := getMachine("summit-cpu")
	if err != nil {
		return nil, err
	}
	smRanks := []int{1, 8, 32, 42}
	if s == Quick {
		smRanks = []int{1, 16, 42}
	}
	var smT []float64
	for _, p := range smRanks {
		r, err := sptrsv.Run(sptrsv.Config{Machine: sm, Transport: comm.TwoSided, Matrix: mat, Ranks: p, Shards: env.Shards})
		if err != nil {
			return nil, err
		}
		t.AddRow("Summit CPU", "two-sided", fmt.Sprint(p), msStr(r.Elapsed))
		smT = append(smT, r.Elapsed.Seconds()*1e3)
	}
	addSeries("summit-cpu two-sided", smRanks, smT)

	for _, g := range []struct {
		name  string
		ranks []int
	}{
		{"perlmutter-gpu", []int{1, 2, 4}},
		{"summit-gpu", []int{1, 2, 4, 6}},
	} {
		cfg, err := getMachine(g.name)
		if err != nil {
			return nil, err
		}
		var ys []float64
		for _, p := range g.ranks {
			r, err := sptrsv.Run(sptrsv.Config{Machine: cfg, Transport: comm.Shmem, Matrix: mat, Ranks: p, Shards: env.Shards})
			if err != nil {
				return nil, err
			}
			t.AddRow(cfg.Title, "nvshmem", fmt.Sprint(p), msStr(r.Elapsed))
			ys = append(ys, r.Elapsed.Seconds()*1e3)
		}
		addSeries(g.name+" nvshmem", g.ranks, ys)
	}
	chart := plot.Chart{Title: "Fig 8 — SpTRSV scaling", XLabel: "ranks/GPUs", YLabel: "time (ms)", XLog: true, YLog: true, Series: series}
	pgLast := series[3].Y[len(series[3].Y)-1]
	sgLast := series[4].Y[len(series[4].Y)-2] // both at 4 GPUs
	notes := []string{
		matNote,
		"One-sided SpTRSV is slower than two-sided on CPUs (4 MPI ops + receiver polling, §III-B).",
		fmt.Sprintf("At 4 GPUs: Summit/Perlmutter time ratio %.2fx (paper: 3.7x; our simulated gap is smaller — see EXPERIMENTS.md)", sgLast/pgLast),
	}
	return &Output{ID: "fig8", Title: "SpTRSV scaling", Text: t.Render() + "\n" + chart.Render(), Series: series, Notes: notes}, nil
}

// Fig9 reproduces the distributed hashtable comparison.
func Fig9(env *Env) (*Output, error) {
	s := env.Scale
	pm, err := getMachine("perlmutter-cpu")
	if err != nil {
		return nil, err
	}
	inserts := 20000
	cpuRanks := []int{2, 8, 32, 128}
	gpuInserts := 20000
	if s == Quick {
		inserts = 2048
		gpuInserts = 2400
		cpuRanks = []int{2, 16, 64}
	}
	t := table.New("Fig 9 — distributed hashtable", "Platform", "Variant", "Ranks", "Time (ms)", "updates/s")
	var series []plot.Series
	two := plot.Series{Name: "perlmutter-cpu two-sided"}
	one := plot.Series{Name: "perlmutter-cpu one-sided"}
	var crossNote string
	for _, p := range cpuRanks {
		cfg := hashtable.Config{Machine: pm, Ranks: p, TotalInserts: inserts, Shards: env.Shards}
		cfg.Transport = comm.TwoSided
		t2, err := hashtable.Run(cfg)
		if err != nil {
			return nil, err
		}
		cfg.Transport = comm.OneSided
		t1, err := hashtable.Run(cfg)
		if err != nil {
			return nil, err
		}
		t.AddRow("Perlmutter CPU", "two-sided", fmt.Sprint(p), msStr(t2.Elapsed), fmt.Sprintf("%.0f", t2.UpdatesPerSec))
		t.AddRow("Perlmutter CPU", "one-sided", fmt.Sprint(p), msStr(t1.Elapsed), fmt.Sprintf("%.0f", t1.UpdatesPerSec))
		two.X = append(two.X, float64(p))
		two.Y = append(two.Y, t2.Elapsed.Seconds()*1e3)
		one.X = append(one.X, float64(p))
		one.Y = append(one.Y, t1.Elapsed.Seconds()*1e3)
		if p == 2 && t2.Elapsed < t1.Elapsed {
			crossNote = "At P=2 two-sided wins (paper: 1.1 us vs a 2 us CAS); "
		}
	}
	ratio := two.Y[len(two.Y)-1] / one.Y[len(one.Y)-1]
	series = append(series, two, one)
	for _, g := range []struct {
		name  string
		ranks []int
	}{
		{"perlmutter-gpu", []int{1, 2, 4}},
		{"summit-gpu", []int{1, 2, 3, 4, 6}},
	} {
		cfg, err := getMachine(g.name)
		if err != nil {
			return nil, err
		}
		ser := plot.Series{Name: g.name + " nvshmem"}
		for _, p := range g.ranks {
			r, err := hashtable.Run(hashtable.Config{Machine: cfg, Transport: comm.Shmem, Ranks: p, TotalInserts: gpuInserts, Shards: env.Shards})
			if err != nil {
				return nil, err
			}
			t.AddRow(cfg.Title, "nvshmem CAS", fmt.Sprint(p), msStr(r.Elapsed), fmt.Sprintf("%.0f", r.UpdatesPerSec))
			ser.X = append(ser.X, float64(p))
			ser.Y = append(ser.Y, r.Elapsed.Seconds()*1e3)
		}
		series = append(series, ser)
	}
	chart := plot.Chart{Title: "Fig 9 — hashtable scaling", XLabel: "ranks/GPUs", YLabel: "time (ms)", XLog: true, YLog: true, Series: series}
	notes := []string{
		fmt.Sprintf("%sat P=%d one-sided is %.1fx faster (paper: 5x at 128).", crossNote, cpuRanks[len(cpuRanks)-1], ratio),
		"Summit GPU stops scaling past 3 GPUs: cross-socket atomics pay 1.6 us and saturate the X-Bus (Fig 9 observation).",
		fmt.Sprintf("Total inserts scaled to %d (paper: 1e6) to keep the two-sided broadcast protocol's P*inserts message count simulable; rates are intensive and unaffected.", inserts),
	}
	return &Output{ID: "fig9", Title: "Distributed hashtable", Text: t.Render() + "\n" + chart.Render(), Series: series, Notes: notes}, nil
}
