package experiments

import (
	"strings"
	"testing"
)

func TestStencilDims(t *testing.T) {
	cases := []struct{ p, px, py int }{
		{1, 1, 1}, {2, 2, 1}, {4, 2, 2}, {6, 3, 2}, {8, 4, 2},
		{16, 4, 4}, {32, 8, 4}, {42, 7, 6}, {64, 8, 8}, {128, 16, 8},
	}
	for _, c := range cases {
		px, py := stencilDims(c.p)
		if px != c.px || py != c.py {
			t.Errorf("stencilDims(%d) = %dx%d, want %dx%d", c.p, px, py, c.px, c.py)
		}
		if px*py != c.p {
			t.Errorf("stencilDims(%d) does not factor", c.p)
		}
	}
}

func TestFitGrid(t *testing.T) {
	cases := []struct{ grid, px, py, want int }{
		{16384, 2, 2, 16384},
		{16384, 3, 2, 16380},
		{2048, 3, 2, 2046},
		{16384, 7, 6, 16380},
		{5, 3, 2, 6}, // grid smaller than px*py clamps up
	}
	for _, c := range cases {
		got := fitGrid(c.grid, c.px, c.py)
		if got != c.want {
			t.Errorf("fitGrid(%d, %d, %d) = %d, want %d", c.grid, c.px, c.py, got, c.want)
		}
		if got%(c.px*c.py) != 0 {
			t.Errorf("fitGrid result %d not divisible by %d", got, c.px*c.py)
		}
	}
}

func TestSweepDims(t *testing.T) {
	nq, sq := sweepDims(Quick)
	nf, sf := sweepDims(Full)
	if len(nf) <= len(nq) || len(sf) <= len(sq) {
		t.Fatal("full scale should sweep more points than quick")
	}
	for _, n := range nq {
		if n < 1 {
			t.Fatal("non-positive msg/sync")
		}
	}
}

func TestMatrixForScales(t *testing.T) {
	q, qNote, err := matrixFor(Quick)
	if err != nil {
		t.Fatal(err)
	}
	f, fNote, err := matrixFor(Full)
	if err != nil {
		t.Fatal(err)
	}
	if f.N <= q.N {
		t.Fatal("full matrix should be larger")
	}
	if qNote == "" || fNote == "" {
		t.Fatal("scale notes must describe the substitution")
	}
}

func TestOutputRender(t *testing.T) {
	o := &Output{ID: "x", Title: "T", Text: "body\n", Notes: []string{"n1"}}
	r := o.Render()
	for _, want := range []string{"==== x: T ====", "body", "n1"} {
		if !contains(r, want) {
			t.Fatalf("render missing %q:\n%s", want, r)
		}
	}
}

func contains(s, sub string) bool { return strings.Contains(s, sub) }
