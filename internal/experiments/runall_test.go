package experiments

import (
	"errors"
	"fmt"
	"strings"
	"testing"
	"time"
)

func fakeExperiment(id string, delay time.Duration, fail error) Experiment {
	return Experiment{
		ID:    id,
		Title: "fake " + id,
		Run: func(Scale) (*Output, error) {
			time.Sleep(delay)
			if fail != nil {
				return nil, fail
			}
			return &Output{ID: id, Title: "fake " + id, Text: id + " body\n"}, nil
		},
	}
}

func TestRunAllPreservesRegistryOrder(t *testing.T) {
	// Later experiments finish first (shorter sleeps), but outputs
	// must come back in submission order.
	var exps []Experiment
	for i := 0; i < 6; i++ {
		exps = append(exps, fakeExperiment(fmt.Sprintf("e%d", i), time.Duration(6-i)*time.Millisecond, nil))
	}
	outs, stats, err := RunAll(exps, Quick, 4)
	if err != nil {
		t.Fatal(err)
	}
	if len(outs) != len(exps) {
		t.Fatalf("outputs = %d", len(outs))
	}
	for i, o := range outs {
		if want := fmt.Sprintf("e%d", i); o.ID != want {
			t.Fatalf("outs[%d].ID = %s, want %s", i, o.ID, want)
		}
	}
	if stats.Jobs != len(exps) || len(stats.JobWall) != len(exps) {
		t.Fatalf("stats = %+v", stats)
	}
}

func TestRunAllReportsFailureWithID(t *testing.T) {
	boom := errors.New("synthetic failure")
	exps := []Experiment{
		fakeExperiment("ok1", 0, nil),
		fakeExperiment("bad", 0, boom),
		fakeExperiment("ok2", 0, nil),
	}
	_, _, err := RunAll(exps, Quick, 1)
	if err == nil {
		t.Fatal("want error")
	}
	if !strings.Contains(err.Error(), "bad") || !errors.Is(err, boom) {
		t.Fatalf("error should name the failing experiment and wrap its cause: %v", err)
	}
}

func TestRunAllMatchesSequentialOutput(t *testing.T) {
	// A cheap real slice of the registry must render identically
	// sequentially and concurrently (the cmd/experiments guarantee).
	var exps []Experiment
	for _, id := range []string{"tableI", "fig2", "fig7"} {
		e, err := Get(id)
		if err != nil {
			t.Fatal(err)
		}
		exps = append(exps, e)
	}
	render := func(outs []*Output) string {
		var b strings.Builder
		for _, o := range outs {
			b.WriteString(o.Render())
		}
		return b.String()
	}
	seq, _, err := RunAll(exps, Quick, 1)
	if err != nil {
		t.Fatal(err)
	}
	par, _, err := RunAll(exps, Quick, 8)
	if err != nil {
		t.Fatal(err)
	}
	if render(seq) != render(par) {
		t.Fatal("concurrent suite output diverged from sequential")
	}
}

func TestUnknownMachineIsReportedNotPanic(t *testing.T) {
	if _, err := getMachine("no-such-machine"); err == nil {
		t.Fatal("want error for unknown machine")
	}
	// Through the Experiment.Run path: a run that needs a machine the
	// catalog lacks must surface the error, not crash the suite.
	exp := Experiment{ID: "ghost", Title: "ghost", Run: func(Scale) (*Output, error) {
		cfg, err := getMachine("no-such-machine")
		if err != nil {
			return nil, err
		}
		return &Output{ID: "ghost", Text: cfg.Name}, nil
	}}
	_, _, err := RunAll([]Experiment{exp}, Quick, 2)
	if err == nil || !strings.Contains(err.Error(), "unknown machine") {
		t.Fatalf("unknown machine should propagate: %v", err)
	}
}
