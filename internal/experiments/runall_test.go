package experiments

import (
	"errors"
	"fmt"
	"strings"
	"testing"
	"time"

	"msgroofline/internal/pointcache"
)

func fakeExperiment(id string, delay time.Duration, fail error) Experiment {
	return Experiment{
		ID:    id,
		Title: "fake " + id,
		Run: func(*Env) (*Output, error) {
			time.Sleep(delay)
			if fail != nil {
				return nil, fail
			}
			return &Output{ID: id, Title: "fake " + id, Text: id + " body\n"}, nil
		},
	}
}

func TestRunSuitePreservesRegistryOrder(t *testing.T) {
	// Later experiments finish first (shorter sleeps), but outputs
	// must come back in submission order.
	var exps []Experiment
	for i := 0; i < 6; i++ {
		exps = append(exps, fakeExperiment(fmt.Sprintf("e%d", i), time.Duration(6-i)*time.Millisecond, nil))
	}
	outs, stats, _, err := RunSuite(exps, SuiteOptions{Scale: Quick, Jobs: 4})
	if err != nil {
		t.Fatal(err)
	}
	if len(outs) != len(exps) {
		t.Fatalf("outputs = %d", len(outs))
	}
	for i, o := range outs {
		if want := fmt.Sprintf("e%d", i); o.ID != want {
			t.Fatalf("outs[%d].ID = %s, want %s", i, o.ID, want)
		}
	}
	if stats.Jobs != len(exps) || len(stats.JobWall) != len(exps) {
		t.Fatalf("stats = %+v", stats)
	}
}

func TestRunSuiteReportsFailureWithID(t *testing.T) {
	boom := errors.New("synthetic failure")
	exps := []Experiment{
		fakeExperiment("ok1", 0, nil),
		fakeExperiment("bad", 0, boom),
		fakeExperiment("ok2", 0, nil),
	}
	_, _, _, err := RunSuite(exps, SuiteOptions{Scale: Quick, Jobs: 1})
	if err == nil {
		t.Fatal("want error")
	}
	if !strings.Contains(err.Error(), "bad") || !errors.Is(err, boom) {
		t.Fatalf("error should name the failing experiment and wrap its cause: %v", err)
	}
}

func TestRunSuiteMatchesSequentialOutput(t *testing.T) {
	// A cheap real slice of the registry must render identically
	// sequentially and concurrently (the cmd/experiments guarantee).
	var exps []Experiment
	for _, id := range []string{"tableI", "fig2", "fig7"} {
		e, err := Get(id)
		if err != nil {
			t.Fatal(err)
		}
		exps = append(exps, e)
	}
	render := func(outs []*Output) string {
		var b strings.Builder
		for _, o := range outs {
			b.WriteString(o.Render())
		}
		return b.String()
	}
	seq, _, _, err := RunSuite(exps, SuiteOptions{Scale: Quick, Jobs: 1})
	if err != nil {
		t.Fatal(err)
	}
	par, _, _, err := RunSuite(exps, SuiteOptions{Scale: Quick, Jobs: 8})
	if err != nil {
		t.Fatal(err)
	}
	if render(seq) != render(par) {
		t.Fatal("concurrent suite output diverged from sequential")
	}
}

func TestPlannerDedupsCrossFigureOverlap(t *testing.T) {
	// Fig1's frontier-cpu one-sided sweep is one of Fig3's six sweeps:
	// the planner must see the overlap and simulate the union once.
	var exps []Experiment
	for _, id := range []string{"fig1", "fig3"} {
		e, err := Get(id)
		if err != nil {
			t.Fatal(err)
		}
		exps = append(exps, e)
	}
	cache, err := pointcache.New(pointcache.Mem, "")
	if err != nil {
		t.Fatal(err)
	}
	outs, _, ps, err := RunSuite(exps, SuiteOptions{Scale: Quick, Jobs: 4, Cache: cache})
	if err != nil {
		t.Fatal(err)
	}
	perFig := len(fig1Sweeps(Quick)[0].Spec.Ns) * len(fig1Sweeps(Quick)[0].Spec.Sizes)
	if ps.Figures != 2 || ps.Points != 7*perFig || ps.Unique != 6*perFig {
		t.Fatalf("plan census wrong: %+v (perFig=%d)", ps, perFig)
	}
	if ps.Duplicates != perFig || ps.CrossFigure != perFig {
		t.Fatalf("expected %d cross-figure duplicates: %+v", perFig, ps)
	}
	if ps.Simulated != ps.Unique || ps.Reused != 0 {
		t.Fatalf("cold plan should simulate every unique point: %+v", ps)
	}
	// Every figure sweep must have hit the planner-seeded cache.
	st := cache.Stats()
	if st.Stores != int64(ps.Unique) {
		t.Fatalf("stores = %d, want %d (figures re-simulated)", st.Stores, ps.Unique)
	}
	if st.Hits < int64(ps.Points) {
		t.Fatalf("hits = %d, want >= %d declared points", st.Hits, ps.Points)
	}
	// And the rendered output must match the uncached run exactly.
	plain, _, _, err := RunSuite(exps, SuiteOptions{Scale: Quick, Jobs: 4})
	if err != nil {
		t.Fatal(err)
	}
	for i := range outs {
		if outs[i].Render() != plain[i].Render() {
			t.Fatalf("%s: cached output diverged from uncached", outs[i].ID)
		}
	}
	// A second run against the same cache reuses everything.
	_, _, warm, err := RunSuite(exps, SuiteOptions{Scale: Quick, Jobs: 4, Cache: cache})
	if err != nil {
		t.Fatal(err)
	}
	if warm.Simulated != 0 || warm.Reused != warm.Unique {
		t.Fatalf("warm plan should simulate nothing: %+v", warm)
	}
}

func TestPlannerCensusOnlyWithoutCache(t *testing.T) {
	// With no cache the planner still counts overlap but must not
	// presimulate anything.
	e, err := Get("fig1")
	if err != nil {
		t.Fatal(err)
	}
	_, _, ps, err := RunSuite([]Experiment{e}, SuiteOptions{Scale: Quick, Jobs: 1})
	if err != nil {
		t.Fatal(err)
	}
	if ps.Figures != 1 || ps.Unique == 0 || ps.Simulated != 0 || ps.Reused != 0 {
		t.Fatalf("census-only plan wrong: %+v", ps)
	}
}

func TestUnknownMachineIsReportedNotPanic(t *testing.T) {
	if _, err := getMachine("no-such-machine"); err == nil {
		t.Fatal("want error for unknown machine")
	}
	// Through the Experiment.Run path: a run that needs a machine the
	// catalog lacks must surface the error, not crash the suite.
	exp := Experiment{ID: "ghost", Title: "ghost", Run: func(*Env) (*Output, error) {
		cfg, err := getMachine("no-such-machine")
		if err != nil {
			return nil, err
		}
		return &Output{ID: "ghost", Text: cfg.Name}, nil
	}}
	_, _, _, err := RunSuite([]Experiment{exp}, SuiteOptions{Scale: Quick, Jobs: 2})
	if err == nil || !strings.Contains(err.Error(), "unknown machine") {
		t.Fatalf("unknown machine should propagate: %v", err)
	}
}
