package experiments

import (
	"strings"
	"testing"
)

// TestSuiteByteIdenticalAcrossShards is the quick-suite half of the
// shard-determinism suite: the full registry rendered at Shards=1 and
// Shards=4 must be byte-equal (the cmd/experiments -shards guarantee
// the CI job pins against the committed golden). Shards only sets
// the window worker parallelism of the coupled engine, so any
// divergence means the Shards plumbing changed simulated behavior.
func TestSuiteByteIdenticalAcrossShards(t *testing.T) {
	if testing.Short() {
		t.Skip("full quick suite twice; skipped in -short")
	}
	render := func(shards int) string {
		outs, _, _, err := RunSuite(Registry(), SuiteOptions{Scale: Quick, Jobs: 4, Shards: shards})
		if err != nil {
			t.Fatalf("shards=%d: %v", shards, err)
		}
		var b strings.Builder
		for _, o := range outs {
			b.WriteString(o.Render())
		}
		return b.String()
	}
	one := render(1)
	four := render(4)
	if one != four {
		// Locate the first divergence for a useful failure message.
		n := len(one)
		if len(four) < n {
			n = len(four)
		}
		at := n
		for i := 0; i < n; i++ {
			if one[i] != four[i] {
				at = i
				break
			}
		}
		lo := at - 80
		if lo < 0 {
			lo = 0
		}
		hiA, hiB := at+80, at+80
		if hiA > len(one) {
			hiA = len(one)
		}
		if hiB > len(four) {
			hiB = len(four)
		}
		t.Fatalf("suite output diverged at byte %d:\nshards=1: ...%q...\nshards=4: ...%q...",
			at, one[lo:hiA], four[lo:hiB])
	}
}
