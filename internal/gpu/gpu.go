// Package gpu models the execution side of a GPU processing element:
// kernel launch overhead, throughput scaling relative to a CPU rank,
// and occupancy-limited scheduling of independent work items over a
// finite number of concurrently resident thread blocks. The paper
// attributes GPU stencil speedups to exactly these properties ("each
// GPU can have eighty thread blocks scheduled simultaneously, and thus
// achieving 320x parallelism on one node", §III-A).
package gpu

import (
	"msgroofline/internal/machine"
	"msgroofline/internal/sim"
)

// KernelTime converts serial CPU-equivalent work into device time:
// the work is spread over the device's throughput, plus one kernel
// launch overhead.
func KernelTime(cfg *machine.GPUConfig, serialWork sim.Time) sim.Time {
	if cfg == nil || serialWork <= 0 {
		return serialWork
	}
	scaled := sim.Time(float64(serialWork)/cfg.ComputeScale + 0.5)
	return cfg.KernelLaunch + scaled
}

// OccupancyWaves returns how many waves are needed to run items
// independent tasks when at most cfg.BlocksPerGPU run concurrently.
func OccupancyWaves(cfg *machine.GPUConfig, items int) int {
	if items <= 0 {
		return 0
	}
	if cfg == nil || cfg.BlocksPerGPU <= 0 {
		return items
	}
	return (items + cfg.BlocksPerGPU - 1) / cfg.BlocksPerGPU
}

// OccupancyTime schedules items independent tasks of perItem device
// time each over the resident-block limit: full waves run back to
// back.
func OccupancyTime(cfg *machine.GPUConfig, items int, perItem sim.Time) sim.Time {
	return sim.Time(OccupancyWaves(cfg, items)) * perItem
}

// EffectiveParallelism is the per-node messaging/compute concurrency:
// blocks per GPU x GPUs (the paper's "320x parallelism on one node"
// for 4 GPUs x 80 blocks).
func EffectiveParallelism(cfg *machine.GPUConfig, gpus int) int {
	if cfg == nil {
		return gpus
	}
	return cfg.BlocksPerGPU * gpus
}
