package gpu

import (
	"testing"

	"msgroofline/internal/machine"
	"msgroofline/internal/sim"
)

func cfg() *machine.GPUConfig {
	c, _ := machine.Get("perlmutter-gpu")
	return c.GPU
}

func TestKernelTimeScaling(t *testing.T) {
	c := cfg()
	work := sim.FromMicroseconds(6400)
	got := KernelTime(c, work)
	want := c.KernelLaunch + sim.FromMicroseconds(100) // 6400/64
	if got != want {
		t.Fatalf("KernelTime = %v, want %v", got, want)
	}
	if KernelTime(nil, work) != work {
		t.Fatal("nil config should be identity")
	}
	if KernelTime(c, 0) != 0 {
		t.Fatal("zero work should be free")
	}
}

func TestOccupancyWaves(t *testing.T) {
	c := cfg() // 80 blocks
	cases := []struct{ items, want int }{
		{0, 0}, {1, 1}, {80, 1}, {81, 2}, {160, 2}, {161, 3},
	}
	for _, tc := range cases {
		if got := OccupancyWaves(c, tc.items); got != tc.want {
			t.Errorf("waves(%d) = %d, want %d", tc.items, got, tc.want)
		}
	}
	if OccupancyWaves(nil, 7) != 7 {
		t.Fatal("nil config should serialize")
	}
}

func TestOccupancyTime(t *testing.T) {
	c := cfg()
	per := sim.Microsecond
	if got := OccupancyTime(c, 200, per); got != 3*per {
		t.Fatalf("OccupancyTime = %v, want 3us", got)
	}
}

func TestEffectiveParallelism(t *testing.T) {
	c := cfg()
	if got := EffectiveParallelism(c, 4); got != 320 {
		t.Fatalf("parallelism = %d, want 320 (paper §III-A)", got)
	}
	if EffectiveParallelism(nil, 4) != 4 {
		t.Fatal("nil config should be #GPUs")
	}
}
