package gpu

import "msgroofline/internal/sim"

// Stream models the device-side trigger engine of stream-triggered
// communication: the host enqueues descriptors ahead of time, and the
// device fires each one when its stream dependency — the previous
// descriptor on the same stream — has completed. Firing costs the
// machine's trigger latency twice over: once between dependency
// resolution and wire entry (the fire delay) and once as the engine's
// occupancy before the next descriptor becomes eligible.
//
// A Stream is pure bookkeeping: it computes and records fire times,
// and the transport schedules the actual network injection at the
// returned time. All state belongs to the owning rank's engine, so a
// Stream needs no locking.
type Stream struct {
	trigger sim.Time
	cursor  sim.Time // completion time of the latest descriptor
	log     []Fire
	// unordered disables the stream-dependency wait: descriptors fire
	// trigger-late after their enqueue regardless of predecessors.
	// This deliberately breaks the ordering contract; it exists so the
	// conformance stream-ordering oracle can prove it catches the
	// violation (see internal/conformance).
	unordered bool
}

// Fire records one descriptor's lifecycle. Times are absolute.
type Fire struct {
	// Enq is when the host enqueued the descriptor.
	Enq sim.Time
	// Ready is when the stream dependency resolved: the completion
	// time of the previous descriptor on this stream (Enq for the
	// first). Recorded even in unordered mode, so an ordering oracle
	// can check At >= Ready without reference to jitter.
	Ready sim.Time
	// At is when the descriptor fired (entered the wire).
	At sim.Time
	// Done is when the trigger engine finished the descriptor and the
	// next one became eligible.
	Done sim.Time
}

// NewStream returns an empty stream with the given trigger latency.
func NewStream(trigger sim.Time) *Stream {
	return &Stream{trigger: trigger}
}

// SetUnordered toggles the deliberate ordering break.
func (s *Stream) SetUnordered(v bool) { s.unordered = v }

// Enqueue records a descriptor enqueued at enq and returns its fire
// time. Ordered semantics: the descriptor becomes ready when its
// predecessor completes, fires one trigger latency after the later of
// ready and enqueue, and holds the engine for another trigger latency.
func (s *Stream) Enqueue(enq sim.Time) sim.Time {
	ready := s.cursor
	if ready < enq {
		ready = enq
	}
	at := ready + s.trigger
	if s.unordered {
		at = enq + s.trigger
	}
	done := at + s.trigger
	if done > s.cursor {
		s.cursor = done
	}
	s.log = append(s.log, Fire{Enq: enq, Ready: ready, At: at, Done: done})
	return at
}

// Count returns how many descriptors have been enqueued.
func (s *Stream) Count() int { return len(s.log) }

// Log returns the recorded descriptor lifecycle, in enqueue order.
func (s *Stream) Log() []Fire { return s.log }

// Digest folds every fire and completion time with the same FNV-style
// fold as sim's event digest, so stream schedules can be certified
// shard- and job-invariant exactly like Result.EventDigest.
func (s *Stream) Digest() uint64 {
	h := uint64(1469598103934665603)
	mix := func(v uint64) {
		h = (h ^ v) * 1099511628211
	}
	for _, f := range s.log {
		mix(uint64(f.At))
		mix(uint64(f.Done))
	}
	return h
}
