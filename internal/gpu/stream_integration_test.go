// Integration certification of device-stream scheduling: the fire
// times a full transport run records must be invariant across the
// engine shard count and the host job count, certified by the
// stream digest (same fold as the workloads' Result.EventDigest).
package gpu_test

import (
	"testing"

	"msgroofline/internal/comm"
	"msgroofline/internal/machine"
	"msgroofline/internal/sched"
)

const (
	sdSlots     = 8
	sdSlotBytes = 16
)

// streamDigest runs one stream-triggered delivery window at the given
// shard count and returns the sender stream's fire-time digest.
func streamDigest(t *testing.T, shards int) uint64 {
	t.Helper()
	cfg, err := machine.Get("perlmutter-gpu")
	if err != nil {
		t.Fatal(err)
	}
	tr, err := comm.New(comm.Spec{
		Machine: cfg, Kind: comm.StreamTriggered, Ranks: 2,
		StreamSlots: []int{0, sdSlots}, SlotBytes: sdSlotBytes,
		Shards: shards, NoTrace: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	err = tr.Launch(func(ep comm.Endpoint) {
		switch ep.Rank() {
		case 0:
			payload := make([]byte, sdSlotBytes)
			for s := 0; s < sdSlots; s++ {
				ep.Deliver(1, s, payload)
			}
			ep.Quiet()
		case 1:
			for n := 0; n < sdSlots; n++ {
				ep.WaitAnySlot()
			}
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	ins, ok := tr.(comm.StreamInspector)
	if !ok {
		t.Fatal("stream-triggered transport does not expose its stream")
	}
	if ins.Stream(0).Count() != sdSlots {
		t.Fatalf("stream fired %d descriptors, want %d", ins.Stream(0).Count(), sdSlots)
	}
	return ins.Stream(0).Digest()
}

// TestStreamDigestShardAndJobInvariant pins the certification: the
// same delivery window replayed at shards 1/2/4 and scheduled across
// 1 or 8 concurrent jobs always folds the identical fire schedule.
func TestStreamDigestShardAndJobInvariant(t *testing.T) {
	want := streamDigest(t, 1)
	if want == 0 {
		t.Fatal("stream digest folded no descriptors")
	}
	for _, shards := range []int{2, 4} {
		if got := streamDigest(t, shards); got != want {
			t.Fatalf("shards=%d: stream digest %016x, want %016x", shards, got, want)
		}
	}
	for _, jobs := range []int{1, 8} {
		digests, _, err := sched.Map(jobs, 8, func(i int) (uint64, error) {
			return streamDigest(t, 1+i%4), nil
		})
		if err != nil {
			t.Fatal(err)
		}
		for i, d := range digests {
			if d != want {
				t.Fatalf("jobs=%d run %d: stream digest %016x, want %016x", jobs, i, d, want)
			}
		}
	}
}
