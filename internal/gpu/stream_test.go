package gpu

import (
	"testing"

	"msgroofline/internal/sim"
)

// enqTimes derives a deterministic pseudo-random enqueue schedule:
// nondecreasing times with bursty gaps, the pattern a host thread
// posting descriptors between compute phases produces.
func enqTimes(seed uint64, n int) []sim.Time {
	out := make([]sim.Time, n)
	var t sim.Time
	rng := seed
	for i := range out {
		rng += 0x9e3779b97f4a7c15
		z := rng
		z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
		z = (z ^ (z >> 27)) * 0x94d049bb133111eb
		z ^= z >> 31
		// Gaps from 0 to ~3us: some enqueues race the trigger engine,
		// some let the stream drain first.
		t += sim.Time(z % uint64(3*sim.Microsecond))
		out[i] = t
	}
	return out
}

// TestStreamOrderedProperties checks the ordered-firing contract over
// randomized enqueue schedules: every descriptor becomes ready no
// earlier than its enqueue, fires one trigger latency after readiness,
// never before its predecessor completes, and the fire times are
// strictly monotone per stream.
func TestStreamOrderedProperties(t *testing.T) {
	const trigger = 1100 * sim.Nanosecond
	for seed := uint64(0); seed < 20; seed++ {
		s := NewStream(trigger)
		for _, enq := range enqTimes(seed, 50) {
			s.Enqueue(enq)
		}
		log := s.Log()
		if len(log) != 50 || s.Count() != 50 {
			t.Fatalf("seed %d: logged %d fires, want 50", seed, len(log))
		}
		for i, f := range log {
			if f.Ready < f.Enq {
				t.Fatalf("seed %d: fire %d ready %v before enqueue %v", seed, i, f.Ready, f.Enq)
			}
			if f.At != f.Ready+trigger {
				t.Fatalf("seed %d: fire %d at %v, want ready+trigger %v", seed, i, f.At, f.Ready+trigger)
			}
			if f.Done != f.At+trigger {
				t.Fatalf("seed %d: fire %d done %v, want at+trigger %v", seed, i, f.Done, f.At+trigger)
			}
			if i > 0 {
				if f.At < log[i-1].Done {
					t.Fatalf("seed %d: fire %d at %v before predecessor done %v", seed, i, f.At, log[i-1].Done)
				}
				if f.At <= log[i-1].At {
					t.Fatalf("seed %d: fire times not strictly monotone at %d", seed, i)
				}
			}
		}
	}
}

// TestStreamDigestDeterministic: identical enqueue schedules fold to
// identical digests, different schedules to different ones.
func TestStreamDigestDeterministic(t *testing.T) {
	build := func(seed uint64) uint64 {
		s := NewStream(1100 * sim.Nanosecond)
		for _, enq := range enqTimes(seed, 30) {
			s.Enqueue(enq)
		}
		return s.Digest()
	}
	if build(7) != build(7) {
		t.Fatal("same schedule, different digests")
	}
	if build(7) == build(8) {
		t.Fatal("different schedules collided")
	}
	if NewStream(sim.Microsecond).Digest() == 0 {
		t.Fatal("digest must use a nonzero offset basis")
	}
}

// TestStreamUnorderedBreaksDependency: with the ordering deliberately
// disabled, back-to-back enqueues fire before their predecessor
// completes — and the recorded Ready times still expose the violation
// (At < Ready), independent of any schedule jitter.
func TestStreamUnorderedBreaksDependency(t *testing.T) {
	const trigger = 1100 * sim.Nanosecond
	s := NewStream(trigger)
	s.SetUnordered(true)
	for i := 0; i < 4; i++ {
		// Enqueues 40ns apart: far faster than the trigger engine.
		s.Enqueue(sim.Time(i) * 40 * sim.Nanosecond)
	}
	log := s.Log()
	brokeDep := false
	brokeReady := false
	for i, f := range log {
		if i > 0 && f.At < log[i-1].Done {
			brokeDep = true
		}
		if f.At < f.Ready {
			brokeReady = true
		}
	}
	if !brokeDep {
		t.Fatal("unordered stream still waited for predecessors")
	}
	if !brokeReady {
		t.Fatal("Ready times do not expose the unordered violation")
	}
}
