// Package hashtable implements the paper's third workload: a
// distributed hash table with an overflow heap (§III-C), representing
// data analytics with random access into distributed structures.
//
// One-sided (CPU MPI RMA or GPU NVSHMEM): the table and overflow list
// live in shared windows/symmetric heaps. An insert is an atomic
// compare-and-swap on the home slot; on collision the inserter claims
// an overflow slot by atomic fetch-and-increment of the next-free
// pointer and writes the element with a second CAS. There is no
// synchronization until the end of all inserts.
//
// Two-sided: the paper's design broadcasts every insert as a triplet
// (ID, elem, pos) to all other ranks with MPI_Isend; every rank
// receives P-1 messages per round with MPI_Recv(ANY_SOURCE, ANY_TAG)
// and applies only the triplets whose ID matches its own rank. This
// P messages/insert fan-out is what makes two-sided lose at scale
// (5x at 128 ranks) while winning at P=2 (1.1 us vs a 2 us CAS).
package hashtable

import (
	"fmt"

	"msgroofline/internal/comm"
	"msgroofline/internal/machine"
	"msgroofline/internal/netsim"
	"msgroofline/internal/sim"
	"msgroofline/internal/trace"
)

// Layout offsets inside each rank's window/symmetric heap (bytes).
const (
	offNextFree = 0 // uint64: next free overflow slot
	offTable    = 8 // table slots, 8 bytes each
)

// Config describes one hashtable run. Machine and Transport are
// embedded like the other workloads' Configs; Run is the only entry
// point (the historical per-transport Run* shims are gone).
type Config struct {
	// Machine is the target platform from the catalog.
	Machine *machine.Config
	// Transport selects the communication stack the one kernel runs
	// on (comm.TwoSided, comm.OneSided, comm.Notified, comm.Shmem).
	Transport comm.Kind
	// Ranks is the number of processes (or GPU PEs).
	Ranks int
	// TotalInserts across all ranks (the paper uses one million);
	// each rank performs TotalInserts/Ranks.
	TotalInserts int
	// LoadFactor sizes the table: capacity = TotalInserts/LoadFactor.
	// The paper-style default of 0.5 doubles capacity over inserts.
	LoadFactor float64
	// Blocks is the GPU-only concurrency: inserts are spread over
	// this many thread-block contexts per PE (default 8).
	Blocks int
	// Shards is the engine shard count recorded on the simulated
	// world (0 means 1; results are byte-identical at every value —
	// see comm.Spec.Shards).
	Shards int
	// Perturb, when non-nil, installs engine schedule fuzzing
	// (conformance harness only; nil leaves runs byte-identical).
	Perturb *sim.Perturbation
	// Faults, when non-nil, installs network fault injection.
	Faults *netsim.Faults
}

func (c *Config) fill() error {
	if c.Ranks < 1 {
		return fmt.Errorf("hashtable: ranks = %d", c.Ranks)
	}
	if c.TotalInserts < 1 {
		return fmt.Errorf("hashtable: inserts = %d", c.TotalInserts)
	}
	if c.LoadFactor == 0 {
		c.LoadFactor = 0.5
	}
	if c.LoadFactor <= 0 || c.LoadFactor > 0.95 {
		return fmt.Errorf("hashtable: load factor %v", c.LoadFactor)
	}
	if c.Blocks == 0 {
		c.Blocks = 8
	}
	if c.Blocks < 1 {
		return fmt.Errorf("hashtable: blocks = %d", c.Blocks)
	}
	return nil
}

// geometry derives the distributed table shape.
type geometry struct {
	ranks    int
	perRank  int // inserts per rank
	slots    int // table slots per rank
	overflow int // overflow slots per rank
	capacity int // total table slots
}

func newGeometry(c *Config) geometry {
	per := (c.TotalInserts + c.Ranks - 1) / c.Ranks
	capacity := int(float64(per*c.Ranks) / c.LoadFactor)
	slots := (capacity + c.Ranks - 1) / c.Ranks
	return geometry{
		ranks:    c.Ranks,
		perRank:  per,
		slots:    slots,
		overflow: per + 8, // worst case: every insert overflows
		capacity: slots * c.Ranks,
	}
}

// heapBytes is the per-rank window size.
func (g geometry) heapBytes() int {
	return 8 + 8*g.slots + 8*g.overflow
}

func (g geometry) offOverflow() int { return offTable + 8*g.slots }

// home maps a key to (rank, slot).
func (g geometry) home(key uint64) (rank, slot int) {
	h := int(mix(key) % uint64(g.capacity))
	return h / g.slots, h % g.slots
}

// Key generation: splitmix64 over a global insert index gives unique
// nonzero keys.
func keyFor(globalIdx int) uint64 {
	k := splitmix64(uint64(globalIdx) + 0x9E3779B97F4A7C15)
	if k == 0 {
		k = 0x2545F4914F6CDD1D
	}
	return k
}

func splitmix64(x uint64) uint64 {
	x += 0x9E3779B97F4A7C15
	z := x
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	return z ^ (z >> 31)
}

func mix(x uint64) uint64 { return splitmix64(x ^ 0xD1B54A32D192ED03) }

// Result summarizes one run.
type Result struct {
	// Elapsed is the total simulated insert phase time.
	Elapsed sim.Time
	// GUPS is giga-updates per second (total inserts / elapsed / 1e9).
	GUPS float64
	// UpdatesPerSec is total inserts / elapsed.
	UpdatesPerSec float64
	// PerInsert is the mean time per insert per rank.
	PerInsert sim.Time
	// Comm summarizes messages (two-sided) — empty for one-sided,
	// whose traffic is atomics counted in Atomics.
	Comm trace.Summary
	// Atomics is the total remote atomic count (one-sided/GPU).
	Atomics int64
	// Collisions is how many inserts overflowed.
	Collisions int64
	// Ranks is the number of processes used.
	Ranks int
	// EventDigest is the engine's event-order fingerprint
	// (sim.Engine.Digest) captured after the run; the shard-determinism
	// suite compares it across shard counts.
	EventDigest uint64
}

func finishResult(cfg *Config, elapsed sim.Time, comm trace.Summary, atomics, collisions int64) *Result {
	g := newGeometry(cfg)
	total := g.perRank * g.ranks
	r := &Result{
		Elapsed:    elapsed,
		Comm:       comm,
		Atomics:    atomics,
		Collisions: collisions,
		Ranks:      cfg.Ranks,
	}
	if elapsed > 0 {
		r.UpdatesPerSec = float64(total) / elapsed.Seconds()
		r.GUPS = r.UpdatesPerSec / 1e9
		r.PerInsert = sim.Time(int64(elapsed) / int64(g.perRank))
	}
	return r
}

// shard is one rank's local view used for verification scans.
type shard struct {
	table    []uint64
	overflow []uint64
	nextFree uint64
}

// verifyShards checks that every generated key appears exactly once
// across all shards and nothing else does.
func verifyShards(g geometry, shards []shard) error {
	want := make(map[uint64]bool, g.perRank*g.ranks)
	for i := 0; i < g.perRank*g.ranks; i++ {
		k := keyFor(i)
		if want[k] {
			return fmt.Errorf("hashtable: duplicate generated key %#x", k)
		}
		want[k] = true
	}
	seen := make(map[uint64]bool, len(want))
	for r, s := range shards {
		for _, k := range s.table {
			if k == 0 {
				continue
			}
			if !want[k] {
				return fmt.Errorf("hashtable: rank %d table holds alien key %#x", r, k)
			}
			if seen[k] {
				return fmt.Errorf("hashtable: key %#x stored twice", k)
			}
			seen[k] = true
		}
		for i := uint64(0); i < s.nextFree && int(i) < len(s.overflow); i++ {
			k := s.overflow[i]
			if k == 0 {
				return fmt.Errorf("hashtable: rank %d overflow slot %d empty but claimed", r, i)
			}
			if !want[k] {
				return fmt.Errorf("hashtable: rank %d overflow holds alien key %#x", r, k)
			}
			if seen[k] {
				return fmt.Errorf("hashtable: key %#x stored twice", k)
			}
			seen[k] = true
		}
	}
	if len(seen) != len(want) {
		return fmt.Errorf("hashtable: stored %d of %d keys", len(seen), len(want))
	}
	return nil
}
