package hashtable

import (
	"testing"

	"msgroofline/internal/comm"
	"msgroofline/internal/machine"
)

func mc(t *testing.T, name string) *machine.Config {
	t.Helper()
	c, err := machine.Get(name)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

// withTransport fills the machine/transport pair into a shared config.
func withTransport(c Config, m *machine.Config, kind comm.Kind) Config {
	c.Machine = m
	c.Transport = kind
	return c
}

func TestConfigValidation(t *testing.T) {
	pm := mc(t, "perlmutter-cpu")
	bad := []Config{
		{Ranks: 0, TotalInserts: 10},
		{Ranks: 2, TotalInserts: 0},
		{Ranks: 2, TotalInserts: 10, LoadFactor: 2},
		{Ranks: 2, TotalInserts: 10, Blocks: -1},
	}
	for _, c := range bad {
		if _, err := Run(withTransport(c, pm, comm.OneSided)); err == nil {
			t.Fatalf("config %+v should fail", c)
		}
	}
}

func TestKeysUniqueNonzero(t *testing.T) {
	seen := map[uint64]bool{}
	for i := 0; i < 100000; i++ {
		k := keyFor(i)
		if k == 0 {
			t.Fatal("zero key")
		}
		if seen[k] {
			t.Fatalf("duplicate key at %d", i)
		}
		seen[k] = true
	}
}

func TestGeometry(t *testing.T) {
	cfg := Config{Ranks: 4, TotalInserts: 1000, LoadFactor: 0.5}
	if err := cfg.fill(); err != nil {
		t.Fatal(err)
	}
	g := newGeometry(&cfg)
	if g.perRank != 250 {
		t.Fatalf("perRank = %d", g.perRank)
	}
	if g.capacity < 2000 {
		t.Fatalf("capacity = %d, want >= 2x inserts", g.capacity)
	}
	// home always in range.
	for i := 0; i < 5000; i++ {
		r, s := g.home(keyFor(i))
		if r < 0 || r >= g.ranks || s < 0 || s >= g.slots {
			t.Fatalf("home out of range: (%d, %d)", r, s)
		}
	}
}

func TestOneSidedCorrectness(t *testing.T) {
	// Run verifies the table internally; also check counters.
	res, err := Run(Config{Machine: mc(t, "perlmutter-cpu"), Transport: comm.OneSided, Ranks: 8, TotalInserts: 2000})
	if err != nil {
		t.Fatal(err)
	}
	if res.Atomics < 2000 {
		t.Fatalf("atomics = %d, want >= one per insert", res.Atomics)
	}
	if res.Collisions == 0 {
		t.Fatal("expected some collisions at load factor 0.5")
	}
	if res.GUPS <= 0 || res.UpdatesPerSec <= 0 {
		t.Fatalf("rates = %v / %v", res.GUPS, res.UpdatesPerSec)
	}
}

func TestTwoSidedCorrectness(t *testing.T) {
	res, err := Run(Config{Machine: mc(t, "perlmutter-cpu"), Transport: comm.TwoSided, Ranks: 4, TotalInserts: 400})
	if err != nil {
		t.Fatal(err)
	}
	// Broadcast protocol: each insert round sends P-1 messages per
	// rank: total = perRank * P * (P-1).
	g := newGeometry(&Config{Ranks: 4, TotalInserts: 400, LoadFactor: 0.5, Blocks: 8})
	want := g.perRank * 4 * 3
	if res.Comm.Messages != want {
		t.Fatalf("messages = %d, want %d", res.Comm.Messages, want)
	}
	// Table II: msg/sync = P (each round is a sync).
	if res.Comm.MsgsPerSync < 2.9 || res.Comm.MsgsPerSync > 3.1 {
		t.Fatalf("msg/sync = %.2f, want P-1 = 3", res.Comm.MsgsPerSync)
	}
	// Triplets are 3 words.
	if res.Comm.MeanBytes != 24 {
		t.Fatalf("message size = %v, want 24 B", res.Comm.MeanBytes)
	}
}

func TestGPUCorrectness(t *testing.T) {
	res, err := Run(Config{Machine: mc(t, "perlmutter-gpu"), Transport: comm.Shmem, Ranks: 4, TotalInserts: 1000, Blocks: 4})
	if err != nil {
		t.Fatal(err)
	}
	if res.Atomics < 1000 {
		t.Fatalf("atomics = %d", res.Atomics)
	}
	if _, err := Run(Config{Machine: mc(t, "perlmutter-cpu"), Transport: comm.Shmem, Ranks: 2, TotalInserts: 10}); err == nil {
		t.Fatal("GPU run on CPU machine should fail")
	}
}

func TestSingleRankDegenerate(t *testing.T) {
	if _, err := Run(Config{Machine: mc(t, "perlmutter-cpu"), Transport: comm.OneSided, Ranks: 1, TotalInserts: 100}); err != nil {
		t.Fatal(err)
	}
	if _, err := Run(Config{Machine: mc(t, "perlmutter-cpu"), Transport: comm.TwoSided, Ranks: 1, TotalInserts: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestTwoSidedWinsAtTwoRanks(t *testing.T) {
	// §III-C: at P=2 the two-sided (1.1us per insert) beats the
	// one-sided CAS (2us).
	cfg := Config{Ranks: 2, TotalInserts: 500}
	two, err := Run(withTransport(cfg, mc(t, "perlmutter-cpu"), comm.TwoSided))
	if err != nil {
		t.Fatal(err)
	}
	one, err := Run(withTransport(cfg, mc(t, "perlmutter-cpu"), comm.OneSided))
	if err != nil {
		t.Fatal(err)
	}
	if two.Elapsed >= one.Elapsed {
		t.Fatalf("P=2: two-sided (%v) should beat one-sided (%v)", two.Elapsed, one.Elapsed)
	}
}

func TestOneSidedWinsAtScale(t *testing.T) {
	// Fig 9: at high rank counts the one-sided table is several
	// times faster (5x at 128 in the paper; the broadcast protocol's
	// P messages/insert is the mechanism).
	cfg := Config{Ranks: 64, TotalInserts: 4096}
	two, err := Run(withTransport(cfg, mc(t, "perlmutter-cpu"), comm.TwoSided))
	if err != nil {
		t.Fatal(err)
	}
	one, err := Run(withTransport(cfg, mc(t, "perlmutter-cpu"), comm.OneSided))
	if err != nil {
		t.Fatal(err)
	}
	if one.Elapsed >= two.Elapsed {
		t.Fatalf("P=64: one-sided (%v) should beat two-sided (%v)", one.Elapsed, two.Elapsed)
	}
	ratio := float64(two.Elapsed) / float64(one.Elapsed)
	if ratio < 2.5 {
		t.Fatalf("P=64 one-sided speedup = %.1fx, want several-fold", ratio)
	}
}

func TestSummitGPUSocketCrossingHurts(t *testing.T) {
	// Fig 9: Summit stops scaling past 3 GPUs — cross-socket atomics
	// pay 1.6us and saturate the shared X-Bus, so doubling the GPUs
	// does not reduce (and typically increases) the total time.
	three, err := Run(Config{Machine: mc(t, "summit-gpu"), Transport: comm.Shmem, Ranks: 3, TotalInserts: 1200, Blocks: 4})
	if err != nil {
		t.Fatal(err)
	}
	six, err := Run(Config{Machine: mc(t, "summit-gpu"), Transport: comm.Shmem, Ranks: 6, TotalInserts: 1200, Blocks: 4})
	if err != nil {
		t.Fatal(err)
	}
	if six.Elapsed < three.Elapsed {
		t.Fatalf("3 GPUs %v -> 6 GPUs %v: dumbbell topology should stop the scaling", three.Elapsed, six.Elapsed)
	}
	// Perlmutter's fully connected NVLink3 keeps scaling 1 -> 4.
	pm1, err := Run(Config{Machine: mc(t, "perlmutter-gpu"), Transport: comm.Shmem, Ranks: 1, TotalInserts: 1200, Blocks: 4})
	if err != nil {
		t.Fatal(err)
	}
	pm4, err := Run(Config{Machine: mc(t, "perlmutter-gpu"), Transport: comm.Shmem, Ranks: 4, TotalInserts: 1200, Blocks: 4})
	if err != nil {
		t.Fatal(err)
	}
	if pm4.Elapsed >= pm1.Elapsed {
		t.Fatalf("Perlmutter GPU 1 (%v) -> 4 (%v) should scale", pm1.Elapsed, pm4.Elapsed)
	}
}

func TestPerlmutterGPUFasterThanSummitGPU(t *testing.T) {
	// §III-C: Perlmutter CAS 0.8us vs Summit 1us in-island.
	pm, err := Run(Config{Machine: mc(t, "perlmutter-gpu"), Transport: comm.Shmem, Ranks: 3, TotalInserts: 900, Blocks: 4})
	if err != nil {
		t.Fatal(err)
	}
	sm, err := Run(Config{Machine: mc(t, "summit-gpu"), Transport: comm.Shmem, Ranks: 3, TotalInserts: 900, Blocks: 4})
	if err != nil {
		t.Fatal(err)
	}
	if pm.Elapsed >= sm.Elapsed {
		t.Fatalf("Perlmutter GPU (%v) should beat Summit GPU (%v)", pm.Elapsed, sm.Elapsed)
	}
}

func TestTripletRoundTrip(t *testing.T) {
	id, elem, pos := decodeTriplet(encodeTriplet(7, 0xDEADBEEF, 12345))
	if id != 7 || elem != 0xDEADBEEF || pos != 12345 {
		t.Fatalf("round trip = (%d, %#x, %d)", id, elem, pos)
	}
}
