package hashtable

import (
	"encoding/binary"
	"fmt"

	"msgroofline/internal/comm"
	"msgroofline/internal/machine"
)

// triplet encoding for the two-sided protocol: (ID, elem, pos), three
// 8-byte words (Table II: Words/Msg = 3).
func encodeTriplet(id int, elem uint64, pos int) []byte {
	out := make([]byte, 24)
	binary.LittleEndian.PutUint64(out[0:], uint64(id))
	binary.LittleEndian.PutUint64(out[8:], elem)
	binary.LittleEndian.PutUint64(out[16:], uint64(pos))
	return out
}

func decodeTriplet(b []byte) (id int, elem uint64, pos int) {
	return int(binary.LittleEndian.Uint64(b[0:])),
		binary.LittleEndian.Uint64(b[8:]),
		int(binary.LittleEndian.Uint64(b[16:]))
}

// Run executes the insert phase once on the transport named by
// cfg.Transport. The kernel is written once; the paper's two insert
// designs are selected by the transport's capability:
//
//   - atomics-capable transports (one-sided RMA, notified access,
//     shmem) CAS the home slot, claim an overflow slot with
//     fetch-and-add on collision, and write it with a second CAS —
//     per-insert flush_local where the protocol requires it, one
//     synchronization for the whole phase;
//   - two-sided MPI has no remote atomics, so every insert is
//     broadcast as a triplet to all other ranks (BcastPut); each
//     rank receives P-1 messages per round (CollectPuts) and the
//     owner applies the update locally.
func Run(cfg Config) (*Result, error) {
	if err := cfg.fill(); err != nil {
		return nil, err
	}
	g := newGeometry(&cfg)
	t, err := comm.New(comm.Spec{
		Machine: cfg.Machine, Kind: cfg.Transport, Ranks: cfg.Ranks,
		SharedBytes: g.heapBytes(), Shards: cfg.Shards,
		Perturb: cfg.Perturb, Faults: cfg.Faults,
	})
	if err != nil {
		return nil, fmt.Errorf("hashtable %s: %w", cfg.Transport, err)
	}
	defer t.Close()
	useAtomics := t.Caps().Atomics
	shards := make([]shard, cfg.Ranks)
	if !useAtomics {
		for rk := range shards {
			shards[rk] = shard{
				table:    make([]uint64, g.slots),
				overflow: make([]uint64, g.overflow),
			}
		}
	}
	// collisions is counted per rank so concurrent node groups of the
	// coupled engine never share a counter; summed after Launch.
	collisions := make([]int64, cfg.Ranks)
	insertLocal := func(rk int, elem uint64, pos int) {
		s := &shards[rk]
		if s.table[pos] == 0 {
			s.table[pos] = elem
			return
		}
		collisions[rk]++
		s.overflow[s.nextFree] = elem
		s.nextFree++
	}
	err = t.Launch(func(ep comm.Endpoint) {
		me := ep.Rank()
		base := me * g.perRank
		if !useAtomics {
			for i := 0; i < g.perRank; i++ {
				key := keyFor(base + i)
				hr, slot := g.home(key)
				ep.BcastPut(encodeTriplet(hr, key, slot))
				if hr == me {
					insertLocal(me, key, slot)
				}
				for _, tri := range ep.CollectPuts() {
					id, elem, pos := decodeTriplet(tri)
					if id == me {
						insertLocal(me, elem, pos)
					}
				}
			}
			return
		}
		blocks := ep.Lanes(cfg.Blocks)
		if blocks > g.perRank {
			blocks = g.perRank
		}
		if cfg.Machine.Kind == machine.GPU && cfg.Machine.GPU != nil {
			ep.Compute(cfg.Machine.GPU.KernelLaunch)
		}
		ep.ForkJoin(blocks, func(lane comm.Endpoint, bi int) {
			for i := bi; i < g.perRank; i += blocks {
				key := keyFor(base + i)
				hr, slot := g.home(key)
				old := lane.CAS(hr, offTable+8*slot, 0, key)
				if old != 0 {
					collisions[me]++
					idx := lane.FetchAdd(hr, offNextFree, 1)
					prev := lane.CAS(hr, g.offOverflow()+8*int(idx), 0, key)
					if prev != 0 {
						panic("hashtable: claimed overflow slot already occupied")
					}
				}
				lane.FlushLocal(hr)
			}
		})
	})
	if err != nil {
		return nil, fmt.Errorf("hashtable %s: %w", cfg.Transport, err)
	}
	var atomics int64
	if useAtomics {
		for rk := range shards {
			shards[rk] = shardFromBytes(g, t.SharedBytes(rk))
		}
		atomics = t.AtomicCount()
	}
	if err := verifyShards(g, shards); err != nil {
		return nil, err
	}
	rec := t.Recorder()
	if useAtomics {
		// One synchronization for the whole insert phase (Table II:
		// 1e6 messages per sync).
		rec.Sync()
	}
	var totalCollisions int64
	for _, n := range collisions {
		totalCollisions += n
	}
	res := finishResult(&cfg, t.Elapsed(), rec.Summarize(t.Elapsed()), atomics, totalCollisions)
	res.EventDigest = t.Digest()
	return res, nil
}

func shardFromBytes(g geometry, heap []byte) shard {
	s := shard{
		table:    make([]uint64, g.slots),
		overflow: make([]uint64, g.overflow),
		nextFree: binary.LittleEndian.Uint64(heap[offNextFree:]),
	}
	for i := 0; i < g.slots; i++ {
		s.table[i] = binary.LittleEndian.Uint64(heap[offTable+8*i:])
	}
	off := g.offOverflow()
	for i := 0; i < g.overflow; i++ {
		s.overflow[i] = binary.LittleEndian.Uint64(heap[off+8*i:])
	}
	return s
}
