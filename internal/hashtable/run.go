package hashtable

import (
	"encoding/binary"
	"fmt"

	"msgroofline/internal/machine"
	"msgroofline/internal/mpi"
	"msgroofline/internal/netsim"
	"msgroofline/internal/shmem"
	"msgroofline/internal/sim"
	"msgroofline/internal/trace"
)

// applyChaos installs the conformance harness's opt-in schedule
// perturbation and network fault injection on a freshly built world.
// Both fields are nil in normal runs, leaving behavior untouched.
func (cfg Config) applyChaos(eng *sim.Engine, net *netsim.Network) {
	if cfg.Perturb != nil {
		eng.SetPerturbation(cfg.Perturb)
	}
	if cfg.Faults != nil {
		net.SetFaults(cfg.Faults)
	}
}

// RunOneSided executes the one-sided CPU design: inserts are CAS on
// the home slot; collisions claim an overflow slot with fetch-and-add
// and write it with a second CAS; MPI_Win_flush_local after each
// insert; no synchronization until the end.
func RunOneSided(mcfg *machine.Config, cfg Config) (*Result, error) {
	if err := cfg.fill(); err != nil {
		return nil, err
	}
	g := newGeometry(&cfg)
	c, err := mpi.NewComm(mcfg, cfg.Ranks)
	if err != nil {
		return nil, err
	}
	cfg.applyChaos(c.Engine(), c.World().Inst.Net)
	win, err := c.NewWin(g.heapBytes())
	if err != nil {
		return nil, err
	}
	var collisions int64
	err = c.Launch(func(r *mpi.Rank) {
		base := r.Rank() * g.perRank
		for i := 0; i < g.perRank; i++ {
			key := keyFor(base + i)
			hr, slot := g.home(key)
			old := r.CompareAndSwap(win, hr, offTable+8*slot, 0, key)
			if old != 0 {
				collisions++
				idx := r.FetchAndAdd(win, hr, offNextFree, 1)
				prev := r.CompareAndSwap(win, hr, g.offOverflow()+8*int(idx), 0, key)
				if prev != 0 {
					panic("hashtable: claimed overflow slot already occupied")
				}
			}
			r.FlushLocal(win, hr)
		}
	})
	if err != nil {
		return nil, fmt.Errorf("hashtable one-sided: %w", err)
	}
	shards := make([]shard, cfg.Ranks)
	for rk := range shards {
		shards[rk] = shardFromBytes(g, win.Local(rk))
	}
	if err := verifyShards(g, shards); err != nil {
		return nil, err
	}
	_, _, atomics := win.OpStats()
	// One synchronization for the whole insert phase (Table II: 1e6
	// messages per sync).
	rec := trace.New()
	rec.Sync()
	return finishResult(&cfg, c.Elapsed(), rec.Summarize(c.Elapsed()), atomics, collisions), nil
}

// triplet encoding for the two-sided protocol: (ID, elem, pos), three
// 8-byte words (Table II: Words/Msg = 3).
func encodeTriplet(id int, elem uint64, pos int) []byte {
	out := make([]byte, 24)
	binary.LittleEndian.PutUint64(out[0:], uint64(id))
	binary.LittleEndian.PutUint64(out[8:], elem)
	binary.LittleEndian.PutUint64(out[16:], uint64(pos))
	return out
}

func decodeTriplet(b []byte) (id int, elem uint64, pos int) {
	return int(binary.LittleEndian.Uint64(b[0:])),
		binary.LittleEndian.Uint64(b[8:]),
		int(binary.LittleEndian.Uint64(b[16:]))
}

// RunTwoSided executes the paper's two-sided design: every insert is
// broadcast as a triplet to all other ranks; each rank receives P-1
// messages per round and applies the triplets addressed to it.
func RunTwoSided(mcfg *machine.Config, cfg Config) (*Result, error) {
	if err := cfg.fill(); err != nil {
		return nil, err
	}
	g := newGeometry(&cfg)
	c, err := mpi.NewComm(mcfg, cfg.Ranks)
	if err != nil {
		return nil, err
	}
	cfg.applyChaos(c.Engine(), c.World().Inst.Net)
	rec := trace.New()
	c.SetSendHook(func(src, dst int, bytes int64, issue, deliver sim.Time) {
		rec.Record(trace.Event{Src: src, Dst: dst, Bytes: bytes, Issue: issue, Deliver: deliver})
	})
	shards := make([]shard, cfg.Ranks)
	for rk := range shards {
		shards[rk] = shard{
			table:    make([]uint64, g.slots),
			overflow: make([]uint64, g.overflow),
		}
	}
	var collisions int64
	insertLocal := func(rk int, elem uint64, pos int) {
		s := &shards[rk]
		if s.table[pos] == 0 {
			s.table[pos] = elem
			return
		}
		collisions++
		s.overflow[s.nextFree] = elem
		s.nextFree++
	}
	err = c.Launch(func(r *mpi.Rank) {
		me := r.Rank()
		p := cfg.Ranks
		base := me * g.perRank
		for i := 0; i < g.perRank; i++ {
			key := keyFor(base + i)
			hr, slot := g.home(key)
			payload := encodeTriplet(hr, key, slot)
			for d := 0; d < p; d++ {
				if d != me {
					r.Isend(d, 0, payload)
				}
			}
			if hr == me {
				insertLocal(me, key, slot)
			}
			for got := 0; got < p-1; got++ {
				req := r.Recv(mpi.AnySource, mpi.AnyTag)
				id, elem, pos := decodeTriplet(req.Data)
				if id == me {
					insertLocal(me, elem, pos)
				}
			}
			rec.Sync() // one insert round = one synchronization
		}
	})
	if err != nil {
		return nil, fmt.Errorf("hashtable two-sided: %w", err)
	}
	if err := verifyShards(g, shards); err != nil {
		return nil, err
	}
	return finishResult(&cfg, c.Elapsed(), rec.Summarize(c.Elapsed()), 0, collisions), nil
}

// RunGPU executes the one-sided design on a GPU machine with NVSHMEM
// atomics, spreading each PE's inserts over Blocks concurrent
// thread-block contexts.
func RunGPU(mcfg *machine.Config, cfg Config) (*Result, error) {
	if err := cfg.fill(); err != nil {
		return nil, err
	}
	if mcfg.Kind != machine.GPU {
		return nil, fmt.Errorf("hashtable: RunGPU needs a GPU machine, got %s", mcfg.Name)
	}
	g := newGeometry(&cfg)
	j, err := shmem.NewJob(mcfg, cfg.Ranks, g.heapBytes())
	if err != nil {
		return nil, err
	}
	cfg.applyChaos(j.Engine(), j.World().Inst.Net)
	var collisions int64
	err = j.Launch(func(c *shmem.Ctx) {
		me := c.MyPE()
		base := me * g.perRank
		blocks := cfg.Blocks
		if blocks > g.perRank {
			blocks = g.perRank
		}
		if mcfg.GPU != nil {
			c.Compute(mcfg.GPU.KernelLaunch)
		}
		c.ForkJoin(blocks, func(blk *shmem.Ctx, bi int) {
			for i := bi; i < g.perRank; i += blocks {
				key := keyFor(base + i)
				hr, slot := g.home(key)
				old := blk.AtomicCompareSwap(hr, offTable+8*slot, 0, key)
				if old != 0 {
					collisions++
					idx := blk.AtomicFetchAdd(hr, offNextFree, 1)
					prev := blk.AtomicCompareSwap(hr, g.offOverflow()+8*int(idx), 0, key)
					if prev != 0 {
						panic("hashtable: claimed overflow slot already occupied")
					}
				}
			}
		})
	})
	if err != nil {
		return nil, fmt.Errorf("hashtable gpu: %w", err)
	}
	shards := make([]shard, cfg.Ranks)
	var atomics int64
	for pe := range shards {
		shards[pe] = shardFromBytes(g, j.PE(pe).Heap())
		_, a := j.PE(pe).OpStats()
		atomics += a
	}
	if err := verifyShards(g, shards); err != nil {
		return nil, err
	}
	rec := trace.New()
	rec.Sync()
	return finishResult(&cfg, j.Elapsed(), rec.Summarize(j.Elapsed()), atomics, collisions), nil
}

func shardFromBytes(g geometry, heap []byte) shard {
	s := shard{
		table:    make([]uint64, g.slots),
		overflow: make([]uint64, g.overflow),
		nextFree: binary.LittleEndian.Uint64(heap[offNextFree:]),
	}
	for i := 0; i < g.slots; i++ {
		s.table[i] = binary.LittleEndian.Uint64(heap[offTable+8*i:])
	}
	off := g.offOverflow()
	for i := 0; i < g.overflow; i++ {
		s.overflow[i] = binary.LittleEndian.Uint64(heap[off+8*i:])
	}
	return s
}
