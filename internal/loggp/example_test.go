package loggp_test

import (
	"fmt"

	"msgroofline/internal/loggp"
	"msgroofline/internal/sim"
)

// ExampleParams_SweepBandwidth shows the model's core intuition: more
// messages per synchronization hide latency, raising sustained
// bandwidth at a fixed message size.
func ExampleParams_SweepBandwidth() {
	p := loggp.Params{
		L:         sim.FromMicroseconds(3),
		O:         150 * sim.Nanosecond,
		Gap:       50 * sim.Nanosecond,
		Bandwidth: 32e9,
		OpsPerMsg: 2,
	}
	for _, n := range []int{1, 10, 100, 1000} {
		fmt.Printf("n=%4d: %7.4f GB/s\n", n, p.SweepBandwidth(n, 1024)/1e9)
	}
	// Output:
	// n=   1:  0.3057 GB/s
	// n=  10:  1.5754 GB/s
	// n= 100:  2.6947 GB/s
	// n=1000:  2.9008 GB/s
}

// ExampleFit recovers LogGP parameters from measured sweep samples,
// exactly how the paper draws its latency ceilings from empirical dots.
func ExampleFit() {
	truth := loggp.Params{
		L: sim.FromMicroseconds(4), O: 100 * sim.Nanosecond,
		Gap: 40 * sim.Nanosecond, Bandwidth: 25e9, OpsPerMsg: 2,
	}
	var samples []loggp.Sample
	for _, n := range []int{1, 8, 64, 512} {
		for _, b := range []int64{8, 1024, 131072} {
			samples = append(samples, loggp.Sample{N: n, Bytes: b, Elapsed: truth.SweepTime(n, b)})
		}
	}
	fitted, _ := loggp.Fit(samples, 2, truth.Gap)
	fmt.Printf("fitted L within 15%%: %v\n", within(float64(fitted.L), float64(truth.L), 0.15))
	fmt.Printf("fitted bw within 15%%: %v\n", within(fitted.Bandwidth, truth.Bandwidth, 0.15))
	// Output:
	// fitted L within 15%: true
	// fitted bw within 15%: true
}

func within(a, b, tol float64) bool {
	d := a - b
	if d < 0 {
		d = -d
	}
	return d <= tol*b
}
