package loggp

import (
	"math"
	"testing"

	"msgroofline/internal/sim"
)

// clampTime folds an arbitrary int64 into [0, lim) picoseconds.
func clampTime(v int64, lim sim.Time) sim.Time {
	m := v % int64(lim)
	if m < 0 {
		m += int64(lim)
	}
	return sim.Time(m)
}

// foldBandwidth maps any positive finite float64 into the physical
// [1e6, 1e15] bytes/s band so picosecond serialization times cannot
// overflow int64 for the sweep shapes fuzzed below.
func foldBandwidth(bw float64) float64 {
	bw = math.Abs(bw)
	for bw < 1e6 {
		bw *= 1e9
	}
	for bw > 1e15 {
		bw /= 1e9
	}
	return bw
}

// FuzzParams drives the LogGP model with arbitrary parameter sets and
// sweep shapes. Raw inputs must be accepted or rejected by Validate
// exactly per its documented rules (in particular NaN/Inf bandwidth
// must be rejected, not waved through `<= 0`); normalized physical
// inputs must yield finite, non-negative times and bandwidths with the
// model's monotonicity and ceiling properties intact.
func FuzzParams(f *testing.F) {
	f.Add(int64(2500), int64(1200), int64(100), 1e9, uint64(4), uint64(16), uint64(4096))
	f.Add(int64(0), int64(0), int64(0), 1.0, uint64(1), uint64(1), uint64(0))
	f.Add(int64(-5), int64(7), int64(7), math.NaN(), uint64(3), uint64(2), uint64(64))
	f.Add(int64(1<<40), int64(1<<30), int64(1<<20), math.Inf(1), uint64(0), uint64(70000), uint64(1<<33))
	f.Add(int64(1), int64(1), int64(1), 5e-324, uint64(64), uint64(4095), uint64(1<<22-1))
	f.Fuzz(func(t *testing.T, l, o, gap int64, bw float64, ops, n, b uint64) {
		raw := Params{
			L:         sim.Time(l),
			O:         sim.Time(o),
			Gap:       sim.Time(gap),
			Bandwidth: bw,
			OpsPerMsg: int(ops % 128),
		}
		badBW := math.IsNaN(bw) || math.IsInf(bw, 0) || bw <= 0
		badRest := l < 0 || o < 0 || gap < 0 || raw.OpsPerMsg < 1
		if err := raw.Validate(); (err == nil) == (badBW || badRest) {
			t.Fatalf("Validate(%+v) = %v, want reject=%v", raw, err, badBW || badRest)
		}
		if badBW {
			// Non-physical bandwidth: G must degrade to 0, never NaN.
			if g := raw.G(); math.IsNaN(g) {
				t.Fatalf("G() = NaN for bandwidth %v", bw)
			}
			return
		}

		p := Params{
			L:         clampTime(l, sim.Millisecond),
			O:         clampTime(o, sim.Millisecond),
			Gap:       clampTime(gap, sim.Millisecond),
			Bandwidth: foldBandwidth(bw),
			OpsPerMsg: 1 + int(ops%64),
		}
		if err := p.Validate(); err != nil {
			t.Fatalf("normalized params rejected: %v (%+v)", err, p)
		}
		nn := 1 + int(n%4096)
		bb := int64(b % (1 << 22))

		if g := p.G(); g <= 0 || math.IsInf(g, 0) || math.IsNaN(g) {
			t.Fatalf("G() = %v, want positive finite", g)
		}
		st := p.SweepTime(nn, bb)
		if st < p.L || st < 0 {
			t.Fatalf("SweepTime(%d, %d) = %v below latency floor %v", nn, bb, st, p.L)
		}
		if grown := p.SweepTime(nn+1, bb); grown < st {
			t.Fatalf("SweepTime not monotone in n: t(%d)=%v > t(%d)=%v", nn, st, nn+1, grown)
		}
		if bb > 0 {
			if narrower := p.SweepTime(nn, bb-1); narrower > st {
				t.Fatalf("SweepTime not monotone in bytes: t(%d)=%v > t(%d)=%v", bb-1, narrower, bb, st)
			}
		}
		if ml := p.MsgLatency(nn, bb); ml < 0 || ml > st {
			t.Fatalf("MsgLatency(%d, %d) = %v outside [0, %v]", nn, bb, ml, st)
		}
		sb := p.SweepBandwidth(nn, bb)
		if sb < 0 || math.IsNaN(sb) || math.IsInf(sb, 0) {
			t.Fatalf("SweepBandwidth(%d, %d) = %v", nn, bb, sb)
		}
		if sb > p.Bandwidth*(1+1e-9) {
			t.Fatalf("SweepBandwidth %v exceeds wire bandwidth %v", sb, p.Bandwidth)
		}
		sharp, rounded := p.SharpBandwidth(bb), p.RoundedBandwidth(bb)
		for _, v := range []float64{sharp, rounded} {
			if v < 0 || math.IsNaN(v) || math.IsInf(v, 0) {
				t.Fatalf("roofline bound %v for b=%d, params %+v", v, bb, p)
			}
		}
		if rounded > sharp*(1+1e-9) {
			t.Fatalf("rounded bound %v above sharp bound %v", rounded, sharp)
		}
		// The model must explain its own samples exactly.
		samples := []Sample{
			{N: 1, Bytes: bb, Elapsed: p.SweepTime(1, bb)},
			{N: nn, Bytes: bb, Elapsed: st},
			{N: 2 * nn, Bytes: bb + 8, Elapsed: p.SweepTime(2*nn, bb+8)},
		}
		if fe := FitError(p, samples); fe != 0 {
			t.Fatalf("FitError against the model's own samples = %v, want 0", fe)
		}
	})
}
