// Package loggp implements the LogGP communication cost model
// (Alexandrov et al., SPAA'95) as used by the Message Roofline Model:
//
//	L   — network latency, processor independent
//	o   — per-operation sequential overhead (sender/receiver CPU time)
//	g   — gap: minimum time between consecutive message injections
//	G   — time per byte (1 / bandwidth)
//	P   — number of processors (carried by callers)
//
// L, g and G can be overlapped with computation; L and G can further
// be overlapped by issuing more messages per synchronization; o and g
// can not. The package provides analytic sweep costs (n messages of B
// bytes per synchronization, k library operations per message) and a
// least-squares fitter recovering (o, L, G) from measured sweeps.
package loggp

import (
	"errors"
	"fmt"
	"math"

	"msgroofline/internal/sim"
	"msgroofline/internal/stats"
)

// Params is one transport's LogGP parameter set.
type Params struct {
	L         sim.Time // network latency
	O         sim.Time // overhead per library operation
	Gap       sim.Time // minimum inter-injection gap per message
	Bandwidth float64  // bytes per second (G = 1/Bandwidth)
	OpsPerMsg int      // library operations needed per application message
	// Trigger is the device-side fire delay of offloaded transports
	// (stream-triggered MPI): latency paid between dependency
	// resolution and wire entry. It extends L, not o — the host is off
	// the critical path — so every latency term below uses L+Trigger.
	Trigger sim.Time
}

// G returns the per-byte time in picoseconds (1/bandwidth).
func (p Params) G() float64 {
	// Not `<= 0`: NaN bandwidth fails that comparison too and would
	// propagate NaN into every derived time.
	if !(p.Bandwidth > 0) {
		return 0
	}
	return float64(sim.Second) / p.Bandwidth
}

// Validate reports structural problems with the parameter set.
func (p Params) Validate() error {
	switch {
	// NaN fails every comparison, so `<= 0` alone would wave a NaN
	// bandwidth through and G() would poison every downstream time.
	case math.IsNaN(p.Bandwidth) || math.IsInf(p.Bandwidth, 0) || p.Bandwidth <= 0:
		return fmt.Errorf("loggp: bandwidth must be positive and finite, got %v", p.Bandwidth)
	case p.L < 0 || p.O < 0 || p.Gap < 0 || p.Trigger < 0:
		return errors.New("loggp: negative time parameter")
	case p.OpsPerMsg < 1:
		return fmt.Errorf("loggp: OpsPerMsg must be >= 1, got %d", p.OpsPerMsg)
	}
	return nil
}

// SerTime returns the serialization time of b bytes at the modeled
// bandwidth.
func (p Params) SerTime(b int64) sim.Time {
	return sim.TransferTime(b, p.Bandwidth)
}

// SweepTime returns the modeled completion time of one synchronization
// window: n messages of b bytes each, k = OpsPerMsg library operations
// per message. Overheads serialize (n·k·o); serialization is the
// larger of the gap and the wire time per message (n·max(g, B·G));
// latency is paid once because overlapped messages hide it:
//
//	t(n, B) = n·k·o + (L+T) + n·max(g, B·G)
//
// where T is the trigger latency of offloaded transports (zero for
// host-driven stacks).
func (p Params) SweepTime(n int, b int64) sim.Time {
	if n <= 0 {
		return 0
	}
	per := p.SerTime(b)
	if p.Gap > per {
		per = p.Gap
	}
	return sim.Time(n)*sim.Time(p.OpsPerMsg)*p.O + p.L + p.Trigger + sim.Time(n)*per
}

// SweepBandwidth returns the modeled sustained bandwidth (bytes/s) of
// a synchronization window of n messages of b bytes.
func (p Params) SweepBandwidth(n int, b int64) float64 {
	t := p.SweepTime(n, b)
	if t <= 0 {
		return 0
	}
	return float64(n) * float64(b) / t.Seconds()
}

// MsgLatency returns the modeled amortized time per message in a
// window of n messages of b bytes: SweepTime / n.
func (p Params) MsgLatency(n int, b int64) sim.Time {
	if n <= 0 {
		return 0
	}
	return p.SweepTime(n, b) / sim.Time(n)
}

// SharpBandwidth is the idealized "sharp" Message Roofline bound,
// B / max(o, L, B·G): the junction of the diagonal and horizontal
// ceilings that is never practically reached.
func (p Params) SharpBandwidth(b int64) float64 {
	denom := sim.Time(p.OpsPerMsg) * p.O
	if lat := p.L + p.Trigger; lat > denom {
		denom = lat
	}
	if ser := p.SerTime(b); ser > denom {
		denom = ser
	}
	if denom <= 0 {
		return 0
	}
	return float64(b) / denom.Seconds()
}

// RoundedBandwidth is the empirically observed "rounded" bound,
// B / (o + max(L, B·G)): overhead always adds to the message time.
func (p Params) RoundedBandwidth(b int64) float64 {
	m := p.L + p.Trigger
	if ser := p.SerTime(b); ser > m {
		m = ser
	}
	denom := sim.Time(p.OpsPerMsg)*p.O + m
	if denom <= 0 {
		return 0
	}
	return float64(b) / denom.Seconds()
}

// OffloadBandwidth is the roofline ceiling of a fully offloaded
// transport: the host overhead o is off the critical path (descriptors
// are enqueued ahead of time), so messages are bounded only by the
// triggered latency and the wire, B / max(L+T, B·G). For Trigger == 0
// this degenerates to the latency/wire ceiling without the o term.
func (p Params) OffloadBandwidth(b int64) float64 {
	denom := p.L + p.Trigger
	if ser := p.SerTime(b); ser > denom {
		denom = ser
	}
	if denom <= 0 {
		return 0
	}
	return float64(b) / denom.Seconds()
}

// String renders the parameters in human units.
func (p Params) String() string {
	if p.Trigger > 0 {
		return fmt.Sprintf("LogGP{L=%v o=%v g=%v bw=%.1fGB/s ops/msg=%d trigger=%v}",
			p.L, p.O, p.Gap, p.Bandwidth/1e9, p.OpsPerMsg, p.Trigger)
	}
	return fmt.Sprintf("LogGP{L=%v o=%v g=%v bw=%.1fGB/s ops/msg=%d}",
		p.L, p.O, p.Gap, p.Bandwidth/1e9, p.OpsPerMsg)
}

// Sample is one measured sweep point: n messages of Bytes each
// completed in Elapsed (one synchronization window).
type Sample struct {
	N       int
	Bytes   int64
	Elapsed sim.Time
}

// Fit recovers (o, L, G) from measured samples by non-negative least
// squares on t = (n·k)·o + L + (n·B)·G, with k = opsPerMsg. The
// returned Params carry the supplied gap unchanged (the gap is not
// separable from o in this regression; callers measure it with a
// flood benchmark instead).
func Fit(samples []Sample, opsPerMsg int, gap sim.Time) (Params, error) {
	if len(samples) < 3 {
		return Params{}, fmt.Errorf("loggp: need >= 3 samples to fit 3 parameters, got %d", len(samples))
	}
	if opsPerMsg < 1 {
		return Params{}, fmt.Errorf("loggp: opsPerMsg must be >= 1, got %d", opsPerMsg)
	}
	rows := make([][]float64, len(samples))
	y := make([]float64, len(samples))
	for i, s := range samples {
		rows[i] = []float64{
			float64(s.N) * float64(opsPerMsg), // coefficient of o
			1,                                 // coefficient of L
			float64(s.N) * float64(s.Bytes),   // coefficient of G
		}
		y[i] = float64(s.Elapsed)
	}
	c, err := stats.NonNegativeLeastSquares(rows, y)
	if err != nil {
		return Params{}, fmt.Errorf("loggp: fit failed: %w", err)
	}
	o, l, g := c[0], c[1], c[2]
	p := Params{
		L:         sim.Time(l + 0.5),
		O:         sim.Time(o + 0.5),
		Gap:       gap,
		OpsPerMsg: opsPerMsg,
	}
	if g > 0 {
		p.Bandwidth = float64(sim.Second) / g
	}
	return p, nil
}

// FitError returns the RMS relative error of the model against the
// samples, a quick fit-quality check.
func FitError(p Params, samples []Sample) float64 {
	if len(samples) == 0 {
		return 0
	}
	var sum float64
	for _, s := range samples {
		pred := float64(p.SweepTime(s.N, s.Bytes))
		obs := float64(s.Elapsed)
		if obs == 0 {
			continue
		}
		rel := (pred - obs) / obs
		sum += rel * rel
	}
	return math.Sqrt(sum / float64(len(samples)))
}
