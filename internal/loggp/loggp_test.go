package loggp

import (
	"math"
	"testing"
	"testing/quick"

	"msgroofline/internal/sim"
)

// perlmutterish is a plausible Cray-MPI-two-sided parameter set:
// L = 4.5 us, o = 150 ns/op, 2 ops per message, 32 GB/s.
var perlmutterish = Params{
	L:         sim.FromMicroseconds(4.5),
	O:         150 * sim.Nanosecond,
	Gap:       50 * sim.Nanosecond,
	Bandwidth: 32e9,
	OpsPerMsg: 2,
}

func TestValidate(t *testing.T) {
	if err := perlmutterish.Validate(); err != nil {
		t.Fatal(err)
	}
	bad := perlmutterish
	bad.Bandwidth = 0
	if bad.Validate() == nil {
		t.Fatal("zero bandwidth should not validate")
	}
	bad = perlmutterish
	bad.OpsPerMsg = 0
	if bad.Validate() == nil {
		t.Fatal("zero ops/msg should not validate")
	}
	bad = perlmutterish
	bad.L = -1
	if bad.Validate() == nil {
		t.Fatal("negative latency should not validate")
	}
}

func TestSweepTimeSingleMessage(t *testing.T) {
	// One 8-byte message: 2 ops * o + L + ser.
	got := perlmutterish.SweepTime(1, 8)
	ser := perlmutterish.SerTime(8)
	if ser > perlmutterish.Gap {
		t.Fatalf("8 bytes at 32 GB/s should be under the 50ns gap")
	}
	want := 2*150*sim.Nanosecond + sim.FromMicroseconds(4.5) + perlmutterish.Gap
	if got != want {
		t.Fatalf("SweepTime = %v, want %v", got, want)
	}
}

func TestLatencyAmortization(t *testing.T) {
	// The whole point of msg/sync: per-message latency falls toward
	// k*o + max(g, BG) as n grows.
	l1 := perlmutterish.MsgLatency(1, 8)
	l1k := perlmutterish.MsgLatency(1000, 8)
	if l1k >= l1 {
		t.Fatalf("amortized latency %v not below single-message %v", l1k, l1)
	}
	floor := 2*perlmutterish.O + perlmutterish.Gap
	if l1k < floor {
		t.Fatalf("amortized latency %v below o+gap floor %v", l1k, floor)
	}
	// Paper: Perlmutter CPU two-sided goes 5us -> 0.3us.
	if l1 < sim.FromMicroseconds(4) || l1 > sim.FromMicroseconds(6) {
		t.Fatalf("single-message latency %v outside paper-like 4-6us", l1)
	}
	if l1k > sim.FromMicroseconds(0.5) {
		t.Fatalf("amortized latency %v should approach sub-0.5us", l1k)
	}
}

func TestBandwidthCeiling(t *testing.T) {
	// Large messages, many per sync: bandwidth approaches peak.
	bw := perlmutterish.SweepBandwidth(100, 4<<20)
	if bw < 0.9*perlmutterish.Bandwidth || bw > perlmutterish.Bandwidth {
		t.Fatalf("large-message bandwidth %v not near peak %v", bw, perlmutterish.Bandwidth)
	}
	// Tiny messages one-per-sync: latency dominates.
	low := perlmutterish.SweepBandwidth(1, 8)
	if low > 0.01*perlmutterish.Bandwidth {
		t.Fatalf("tiny-message bandwidth %v should be latency-crushed", low)
	}
}

func TestSharpVsRounded(t *testing.T) {
	for _, b := range []int64{8, 256, 4096, 65536, 1 << 20} {
		sharp := perlmutterish.SharpBandwidth(b)
		rounded := perlmutterish.RoundedBandwidth(b)
		if rounded > sharp {
			t.Fatalf("B=%d: rounded %v exceeds sharp %v", b, rounded, sharp)
		}
		if sharp > perlmutterish.Bandwidth {
			t.Fatalf("B=%d: sharp %v exceeds peak", b, sharp)
		}
	}
}

func TestSharpBandwidthShape(t *testing.T) {
	// In the latency region the sharp bound is B/L (diagonal); in the
	// bandwidth region it saturates at peak.
	small := perlmutterish.SharpBandwidth(64)
	wantSmall := 64 / perlmutterish.L.Seconds()
	if math.Abs(small-wantSmall)/wantSmall > 1e-9 {
		t.Fatalf("sharp(64B) = %v, want B/L = %v", small, wantSmall)
	}
	big := perlmutterish.SharpBandwidth(64 << 20)
	if math.Abs(big-perlmutterish.Bandwidth)/perlmutterish.Bandwidth > 0.01 {
		t.Fatalf("sharp(64MB) = %v, want ~peak %v", big, perlmutterish.Bandwidth)
	}
}

func TestFitRecoversParameters(t *testing.T) {
	truth := perlmutterish
	var samples []Sample
	for _, n := range []int{1, 2, 4, 16, 64, 256, 1024} {
		for _, b := range []int64{8, 64, 512, 4096, 32768, 262144} {
			samples = append(samples, Sample{N: n, Bytes: b, Elapsed: truth.SweepTime(n, b)})
		}
	}
	got, err := Fit(samples, truth.OpsPerMsg, truth.Gap)
	if err != nil {
		t.Fatal(err)
	}
	relOK := func(a, b float64, tol float64) bool {
		if b == 0 {
			return a == 0
		}
		return math.Abs(a-b)/b <= tol
	}
	// The gap folds into the serialization max() for small B so the
	// recovered parameters carry some bias; 15% is fine for a model fit.
	if !relOK(float64(got.L), float64(truth.L), 0.15) {
		t.Errorf("L = %v, want ~%v", got.L, truth.L)
	}
	if !relOK(float64(got.O), float64(truth.O), 0.35) {
		t.Errorf("o = %v, want ~%v", got.O, truth.O)
	}
	if !relOK(got.Bandwidth, truth.Bandwidth, 0.15) {
		t.Errorf("bw = %v, want ~%v", got.Bandwidth, truth.Bandwidth)
	}
	if fe := FitError(got, samples); fe > 0.25 {
		t.Errorf("fit RMS relative error %v too large", fe)
	}
}

func TestFitRejectsBadInput(t *testing.T) {
	if _, err := Fit(nil, 2, 0); err == nil {
		t.Fatal("expected error for no samples")
	}
	s := []Sample{{1, 8, 1}, {2, 8, 2}, {4, 8, 4}}
	if _, err := Fit(s, 0, 0); err == nil {
		t.Fatal("expected error for zero opsPerMsg")
	}
}

func TestMoreOpsPerMsgCostsMore(t *testing.T) {
	two := perlmutterish
	four := perlmutterish
	four.OpsPerMsg = 4
	if four.SweepTime(10, 100) <= two.SweepTime(10, 100) {
		t.Fatal("4 ops/msg should cost more than 2 ops/msg")
	}
}

func TestSweepMonotoneProperties(t *testing.T) {
	f := func(nRaw uint8, bRaw uint16) bool {
		n := int(nRaw%100) + 1
		b := int64(bRaw) + 1
		p := perlmutterish
		// More messages never completes sooner.
		if p.SweepTime(n+1, b) < p.SweepTime(n, b) {
			return false
		}
		// Bigger messages never complete sooner.
		if p.SweepTime(n, b+512) < p.SweepTime(n, b) {
			return false
		}
		// Bandwidth never exceeds peak.
		return p.SweepBandwidth(n, b) <= p.Bandwidth*1.0000001
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestZeroAndNegativeN(t *testing.T) {
	if perlmutterish.SweepTime(0, 100) != 0 {
		t.Fatal("n=0 should cost nothing")
	}
	if perlmutterish.MsgLatency(0, 100) != 0 {
		t.Fatal("n=0 latency should be 0")
	}
	if perlmutterish.SweepBandwidth(0, 100) != 0 {
		t.Fatal("n=0 bandwidth should be 0")
	}
}

func TestGAndString(t *testing.T) {
	if g := perlmutterish.G(); g <= 0 {
		t.Fatalf("G = %v", g)
	}
	// G is picoseconds per byte: 32 GB/s -> 1e12/32e9 = 31.25 ps/B.
	if g := perlmutterish.G(); g < 31 || g > 32 {
		t.Fatalf("G = %v ps/B, want ~31.25", g)
	}
	zero := perlmutterish
	zero.Bandwidth = 0
	if zero.G() != 0 {
		t.Fatal("zero bandwidth should give G=0")
	}
	s := perlmutterish.String()
	if s == "" || s[0] != 'L' {
		t.Fatalf("String = %q", s)
	}
}

func TestFitErrorEdgeCases(t *testing.T) {
	if fe := FitError(perlmutterish, nil); fe != 0 {
		t.Fatalf("empty FitError = %v", fe)
	}
	// Zero-elapsed samples are skipped, not divided by.
	fe := FitError(perlmutterish, []Sample{{N: 1, Bytes: 8, Elapsed: 0}})
	if fe != 0 {
		t.Fatalf("zero-elapsed FitError = %v", fe)
	}
}

func TestBoundsDegenerateParams(t *testing.T) {
	p := Params{Bandwidth: 1e9, OpsPerMsg: 1} // all times zero
	if p.SharpBandwidth(0) != 0 {
		t.Fatal("zero-byte sharp bound should be 0")
	}
	if p.RoundedBandwidth(0) != 0 {
		t.Fatal("zero-byte rounded bound should be 0")
	}
}
