package machine

import "fmt"

// FrontierGPU is an *extension* platform: the paper excluded the
// Frontier GPU partition because ROC_SHMEM lacked wait_until_any
// (§II), and names "extending our Message Roofline Model to AMD GPUs
// using ROC_SHMEM" as future work (§V). Our simulated SHMEM layer
// does implement wait_until_any, so this catalog entry lets every
// GPU experiment in the repository also run on a Frontier-like node:
// four MI250X GPUs joined by Infinity Fabric GPU-GPU links at
// 50 GB/s/direction per pair (2 channels), each GPU owning a NIC via
// PCIe4 ESM. The ROC_SHMEM-style software parameters are projections
// (a less-mature stack than NVSHMEM: slightly higher per-op overhead
// and latency), clearly marked as such — there is no paper data to
// calibrate against, which is exactly why it is an extension.
var rocshmemFrontier = TransportParams{
	OpOverhead:          ns(120),
	OpsPerMsg:           2,
	SoftLatency:         us(5.0),
	Gap:                 ns(350),
	AtomicTime:          ns(600),
	AtomicLinkOccupancy: ns(300),
	SyncRoundTrips:      1,
}

// FrontierGPUName is the catalog key of the extension platform.
const FrontierGPUName = "frontier-gpu"

// streamTrigFrontier projects a stream-triggered stack onto the
// MI250X node: same enqueue-cheap/trigger-late split as the NVIDIA
// machines, with the less-mature stack's higher constants.
var streamTrigFrontier = TransportParams{
	OpOverhead:          ns(30),
	OpsPerMsg:           2,
	SoftLatency:         us(4.0),
	Gap:                 ns(350),
	AtomicTime:          ns(600),
	AtomicLinkOccupancy: ns(300),
	SyncRoundTrips:      1,
	TriggerLatency:      us(1.6),
}

// hostMPIFrontierGPU is the host-staged Cray MPI path: device buffers
// cross the Infinity Fabric CPU-GPU link before the host MPI stack.
var hostMPIFrontierGPU = TransportParams{
	OpOverhead:     ns(150),
	OpsPerMsg:      2,
	SoftLatency:    us(6.2),
	Gap:            ns(50),
	AtomicTime:     us(1.0),
	SyncRoundTrips: 1,
	HostStaged:     true,
}

var FrontierGPU = register(&Config{
	Name:           FrontierGPUName,
	Title:          "Frontier GPU (extension)",
	Kind:           GPU,
	MaxRanks:       4,
	TheoreticalGBs: 50,
	Transports: map[Transport]TransportParams{
		GPUShmem:        rocshmemFrontier,
		TwoSided:        hostMPIFrontierGPU,
		StreamTriggered: streamTrigFrontier,
	},
	GPU: &GPUConfig{
		BlocksPerGPU: 110, // MI250X: 110 CUs per GCD
		ComputeScale: 56,
		KernelLaunch: us(10),
		Channels:     2,
	},
	MemBandwidth: 1600 * gb, // HBM2e per MI250X
	MemLatency:   ns(800),
	TableRow: TableRow{
		GPUsPerNode:     "4x MI250X",
		GPUInterconnect: "Infinity Fabric GPU-GPU",
		GPURuntime:      "ROC_SHMEM (projected)",
		GPUCPULink:      "Infinity Fabric (36 GB/s)",
		CPUs:            "1x AMD EPYC 7A53",
		CPUInterconnect: "Infinity Fabric",
		CPURuntime:      "CrayMPI",
		CPUNICLink:      "PCIe4.0 ESM",
	},
	Topology: Topology{Explicit: frontierGPUExplicit()},
})

func fgName(i int) string { return fmt.Sprintf("fg:g%d", i) }

// frontierGPUExplicit wires the four MI250X GPUs all-to-all with each
// GPU's IF CPU-GPU host link (36 GB/s, the Fig 1 data path) in the
// retired build func's order.
func frontierGPUExplicit() *Explicit {
	var links []LinkSpec
	place := Placement{Kind: PlacePerRank}
	for i := 0; i < 4; i++ {
		for j := i + 1; j < 4; j++ {
			links = append(links, LinkSpec{
				A: fgName(i), B: fgName(j),
				GBs: 25, LatencyNs: 220, Channels: 2, Class: "if-gpu",
			})
		}
		links = append(links, LinkSpec{
			A: fgName(i), B: "fg:host",
			GBs: 36, LatencyNs: 220, Channels: 1, Class: "if-host",
		})
		place.Nodes = append(place.Nodes, fgName(i))
		place.Sockets = append(place.Sockets, 0)
		place.Hosts = append(place.Hosts, "fg:host")
	}
	return &Explicit{Links: links, Place: place}
}
