package machine

import "fmt"

// Parametric topology generators: dragonfly and fat-tree fabrics
// expand to the same LinkSpec-list form the Explicit paper machines
// use, so one builder (topology.go) materializes everything. Link
// classes tag each tier for per-class utilization stats, and the
// dragonfly generator registers one detour router per group so the
// adaptive routing policy has Valiant candidates to bounce through.

// Dragonfly is a canonical dragonfly: Groups groups of
// RoutersPerGroup routers, each router serving NodesPerRouter compute
// nodes over "intra-router" links; routers within a group are
// all-to-all over "local" links; groups are all-to-all over "global"
// links, with each group's RoutersPerGroup*GlobalLinksPerRouter
// global ports distributed round-robin across its Groups-1 peers.
type Dragonfly struct {
	Groups               int
	RoutersPerGroup      int
	NodesPerRouter       int
	GlobalLinksPerRouter int
	// RanksPerNode is the compute-node rank capacity (MaxRanks =
	// Nodes * RanksPerNode; placement is block over nodes).
	RanksPerNode int
	// Link parameters per class (GB/s per channel, ns).
	NodeGBs, NodeLatencyNs     float64
	LocalGBs, LocalLatencyNs   float64
	GlobalGBs, GlobalLatencyNs float64
	// Prefix namespaces node names ("df" when empty).
	Prefix string
}

func (d *Dragonfly) prefix() string {
	if d.Prefix == "" {
		return "df"
	}
	return d.Prefix
}

func (d *Dragonfly) router(g, r int) string { return fmt.Sprintf("%s:g%dr%d", d.prefix(), g, r) }
func (d *Dragonfly) node(g, r, n int) string {
	return fmt.Sprintf("%s:g%dr%dn%d", d.prefix(), g, r, n)
}

// NodeCount returns the compute-node count.
func (d *Dragonfly) NodeCount() int { return d.Groups * d.RoutersPerGroup * d.NodesPerRouter }

// MaxRanks returns the rank capacity.
func (d *Dragonfly) MaxRanks() int { return d.NodeCount() * d.RanksPerNode }

func (d *Dragonfly) validate() error {
	if d.Groups < 2 || d.RoutersPerGroup < 1 || d.NodesPerRouter < 1 || d.GlobalLinksPerRouter < 1 || d.RanksPerNode < 1 {
		return fmt.Errorf("machine: dragonfly dimensions must be positive (groups >= 2): %+v", d)
	}
	if ports := d.RoutersPerGroup * d.GlobalLinksPerRouter; ports < d.Groups-1 {
		return fmt.Errorf("machine: dragonfly with %d groups needs >= %d global ports per group, have %d",
			d.Groups, d.Groups-1, ports)
	}
	return nil
}

// globalLinksPerPair returns how many parallel global links join each
// group pair: the group's global ports spread evenly over its peers.
func (d *Dragonfly) globalLinksPerPair() int {
	return d.RoutersPerGroup * d.GlobalLinksPerRouter / (d.Groups - 1)
}

// expand lowers the spec to links + placement + detours. Link order
// (nodes, then local, then global) is part of the spec's contract:
// it fixes BFS tie-breaks, so a given parameterization always builds
// a byte-identical fabric.
func (d *Dragonfly) expand() ([]LinkSpec, Placement, []string, error) {
	if err := d.validate(); err != nil {
		return nil, Placement{}, nil, err
	}
	var links []LinkSpec
	var nodes []string
	for g := 0; g < d.Groups; g++ {
		for r := 0; r < d.RoutersPerGroup; r++ {
			for n := 0; n < d.NodesPerRouter; n++ {
				nodes = append(nodes, d.node(g, r, n))
				links = append(links, LinkSpec{
					A: d.node(g, r, n), B: d.router(g, r),
					GBs: d.NodeGBs, LatencyNs: d.NodeLatencyNs, Channels: 1, Class: "intra-router",
				})
			}
		}
	}
	for g := 0; g < d.Groups; g++ {
		for i := 0; i < d.RoutersPerGroup; i++ {
			for j := i + 1; j < d.RoutersPerGroup; j++ {
				links = append(links, LinkSpec{
					A: d.router(g, i), B: d.router(g, j),
					GBs: d.LocalGBs, LatencyNs: d.LocalLatencyNs, Channels: 1, Class: "local",
				})
			}
		}
	}
	// Global ports are consumed round-robin over each group's routers
	// as its pairs come up in (i, j) order.
	port := make([]int, d.Groups)
	perPair := d.globalLinksPerPair()
	for i := 0; i < d.Groups; i++ {
		for j := i + 1; j < d.Groups; j++ {
			for c := 0; c < perPair; c++ {
				ri := port[i] % d.RoutersPerGroup
				rj := port[j] % d.RoutersPerGroup
				port[i]++
				port[j]++
				links = append(links, LinkSpec{
					A: d.router(i, ri), B: d.router(j, rj),
					GBs: d.GlobalGBs, LatencyNs: d.GlobalLatencyNs, Channels: 1, Class: "global",
				})
			}
		}
	}
	// One detour router per group: Valiant candidates for adaptive
	// routes to bounce through a third group. Spreading the choice
	// (g mod routers) avoids always electing router 0.
	var detours []string
	for g := 0; g < d.Groups; g++ {
		detours = append(detours, d.router(g, g%d.RoutersPerGroup))
	}
	place := Placement{Kind: PlaceBlock, Nodes: nodes}
	return links, place, detours, nil
}

// Metrics summarizes the spec analytically, without building the
// fabric — cheap at any scale, which is what lets the Ridgeline layer
// place 100K-rank map points no simulation could afford.
func (d *Dragonfly) Metrics() (TopoMetrics, error) {
	if err := d.validate(); err != nil {
		return TopoMetrics{}, err
	}
	pairs := d.Groups * (d.Groups - 1) / 2
	globals := pairs * d.globalLinksPerPair()
	m := TopoMetrics{
		Topology: "dragonfly",
		Nodes:    d.NodeCount(),
		Switches: d.Groups * d.RoutersPerGroup,
		MaxRanks: d.MaxRanks(),
		// node -> router -> (local) -> global -> (local) -> router -> node
		Diameter:         5,
		InjectionGBs:     d.NodeGBs,
		MaxWireLatencyNs: 2*d.NodeLatencyNs + 2*d.LocalLatencyNs + d.GlobalLatencyNs,
	}
	// Uniform all-to-all traffic: a rank's sustainable injection is
	// bottlenecked by its share of the node's NIC and by the global
	// tier, which carries the (Groups-1)/Groups fraction of traffic
	// that leaves the source group.
	crossFrac := float64(d.Groups-1) / float64(d.Groups)
	globalShare := float64(globals) * d.GlobalGBs / (float64(d.MaxRanks()) * crossFrac)
	m.UniformGBsPerRank = minf(d.NodeGBs/float64(d.RanksPerNode), globalShare)
	return m, nil
}

// FatTree is a k-ary fat-tree: Radix-port switches, 2 or 3 levels.
// With 3 levels: Radix pods, each with Radix/2 "edge" and Radix/2
// "aggregation" switches, Radix/2 hosts per edge switch, and
// (Radix/2)^2 "core" switches — Radix^3/4 hosts. With 2 levels: Radix
// edge switches of Radix/2 hosts each under Radix/2 core switches —
// Radix^2/2 hosts.
type FatTree struct {
	Radix  int
	Levels int
	// RanksPerHost is the host rank capacity.
	RanksPerHost int
	// Link parameters per tier (GB/s per channel, ns).
	HostGBs, HostLatencyNs float64
	EdgeGBs, EdgeLatencyNs float64
	CoreGBs, CoreLatencyNs float64
	// Prefix namespaces node names ("ft" when empty).
	Prefix string
}

func (f *FatTree) prefix() string {
	if f.Prefix == "" {
		return "ft"
	}
	return f.Prefix
}

func (f *FatTree) validate() error {
	if f.Radix < 2 || f.Radix%2 != 0 {
		return fmt.Errorf("machine: fat-tree radix must be even and >= 2, got %d", f.Radix)
	}
	if f.Levels != 2 && f.Levels != 3 {
		return fmt.Errorf("machine: fat-tree levels must be 2 or 3, got %d", f.Levels)
	}
	if f.RanksPerHost < 1 {
		return fmt.Errorf("machine: fat-tree ranks/host must be >= 1, got %d", f.RanksPerHost)
	}
	return nil
}

// HostCount returns the host (compute node) count.
func (f *FatTree) HostCount() int {
	if f.Levels == 2 {
		return f.Radix * f.Radix / 2
	}
	return f.Radix * f.Radix * f.Radix / 4
}

// MaxRanks returns the rank capacity.
func (f *FatTree) MaxRanks() int { return f.HostCount() * f.RanksPerHost }

func (f *FatTree) expand() ([]LinkSpec, Placement, []string, error) {
	if err := f.validate(); err != nil {
		return nil, Placement{}, nil, err
	}
	half := f.Radix / 2
	var links []LinkSpec
	var hosts []string
	addHost := func(host, sw string) {
		hosts = append(hosts, host)
		links = append(links, LinkSpec{A: host, B: sw,
			GBs: f.HostGBs, LatencyNs: f.HostLatencyNs, Channels: 1, Class: "edge"})
	}
	if f.Levels == 2 {
		for e := 0; e < f.Radix; e++ {
			sw := fmt.Sprintf("%s:e%d", f.prefix(), e)
			for h := 0; h < half; h++ {
				addHost(fmt.Sprintf("%s:e%dh%d", f.prefix(), e, h), sw)
			}
		}
		for e := 0; e < f.Radix; e++ {
			for c := 0; c < half; c++ {
				links = append(links, LinkSpec{
					A: fmt.Sprintf("%s:e%d", f.prefix(), e), B: fmt.Sprintf("%s:c%d", f.prefix(), c),
					GBs: f.CoreGBs, LatencyNs: f.CoreLatencyNs, Channels: 1, Class: "core",
				})
			}
		}
		return links, Placement{Kind: PlaceBlock, Nodes: hosts}, nil, nil
	}
	for p := 0; p < f.Radix; p++ {
		for e := 0; e < half; e++ {
			sw := fmt.Sprintf("%s:p%de%d", f.prefix(), p, e)
			for h := 0; h < half; h++ {
				addHost(fmt.Sprintf("%s:p%de%dh%d", f.prefix(), p, e, h), sw)
			}
		}
	}
	for p := 0; p < f.Radix; p++ {
		for e := 0; e < half; e++ {
			for a := 0; a < half; a++ {
				links = append(links, LinkSpec{
					A:   fmt.Sprintf("%s:p%de%d", f.prefix(), p, e),
					B:   fmt.Sprintf("%s:p%da%d", f.prefix(), p, a),
					GBs: f.EdgeGBs, LatencyNs: f.EdgeLatencyNs, Channels: 1, Class: "aggregation",
				})
			}
		}
	}
	// Aggregation switch a of every pod uplinks to core switches
	// [a*half, (a+1)*half) — the standard k-ary core wiring.
	for p := 0; p < f.Radix; p++ {
		for a := 0; a < half; a++ {
			for c := 0; c < half; c++ {
				links = append(links, LinkSpec{
					A:   fmt.Sprintf("%s:p%da%d", f.prefix(), p, a),
					B:   fmt.Sprintf("%s:c%d", f.prefix(), a*half+c),
					GBs: f.CoreGBs, LatencyNs: f.CoreLatencyNs, Channels: 1, Class: "core",
				})
			}
		}
	}
	return links, Placement{Kind: PlaceBlock, Nodes: hosts}, nil, nil
}

// Metrics summarizes the spec analytically (see Dragonfly.Metrics).
func (f *FatTree) Metrics() (TopoMetrics, error) {
	if err := f.validate(); err != nil {
		return TopoMetrics{}, err
	}
	half := f.Radix / 2
	m := TopoMetrics{
		Topology:     "fat-tree",
		Nodes:        f.HostCount(),
		MaxRanks:     f.MaxRanks(),
		InjectionGBs: f.HostGBs,
	}
	var coreLinks int
	var crossFrac float64
	if f.Levels == 2 {
		m.Switches = f.Radix + half
		m.Diameter = 4 // host-edge-core-edge-host
		coreLinks = f.Radix * half
		crossFrac = float64(f.Radix-1) / float64(f.Radix)
		m.MaxWireLatencyNs = 2*f.HostLatencyNs + 2*f.CoreLatencyNs
	} else {
		m.Switches = f.Radix*f.Radix + half*half
		m.Diameter = 6 // host-edge-agg-core-agg-edge-host
		coreLinks = f.Radix * half * half
		crossFrac = float64(f.Radix-1) / float64(f.Radix) // cross-pod fraction
		m.MaxWireLatencyNs = 2*f.HostLatencyNs + 2*f.EdgeLatencyNs + 2*f.CoreLatencyNs
	}
	coreShare := float64(coreLinks) * f.CoreGBs / (float64(f.MaxRanks()) * crossFrac)
	m.UniformGBsPerRank = minf(f.HostGBs/float64(f.RanksPerHost), coreShare)
	return m, nil
}

// TopoMetrics is the analytic summary of a generated topology spec.
type TopoMetrics struct {
	Topology string
	Nodes    int
	Switches int
	MaxRanks int
	// Diameter bounds the compute-node-to-compute-node hop count.
	Diameter int
	// MaxWireLatencyNs sums the per-class propagation latencies along
	// a diameter path — the worst-case zero-contention wire latency.
	MaxWireLatencyNs float64
	// InjectionGBs is the per-node injection bandwidth.
	InjectionGBs float64
	// UniformGBsPerRank is the sustainable per-rank bandwidth under
	// uniform all-to-all traffic at full rank occupancy: the min of
	// the rank's NIC share and its share of the bisection-limiting
	// tier (global links / core uplinks). The Ridgeline layer derates
	// its network ceiling by this.
	UniformGBsPerRank float64
}

func minf(a, b float64) float64 {
	if a < b {
		return a
	}
	return b
}

// DragonflyForRanks sizes a balanced dragonfly (routers = 2h, nodes
// per router = h, groups = 2h*h + 1 for h global ports per router —
// the canonical balanced sizing) just large enough for n ranks at 4
// ranks per node, with Slingshot-like link parameters. Used by the
// Ridgeline scale sweeps; only Metrics() is ever taken at large n.
func DragonflyForRanks(n int) Dragonfly {
	h := 1
	for {
		d := Dragonfly{
			Groups:               2*h*h + 1,
			RoutersPerGroup:      2 * h,
			NodesPerRouter:       h,
			GlobalLinksPerRouter: h,
			RanksPerNode:         4,
			NodeGBs:              25, NodeLatencyNs: 300,
			LocalGBs: 25, LocalLatencyNs: 200,
			GlobalGBs: 25, GlobalLatencyNs: 700,
		}
		if d.MaxRanks() >= n || h >= 64 {
			return d
		}
		h++
	}
}

// FatTreeForRanks sizes a 3-level fat-tree (smallest even radix whose
// Radix^3/4 hosts hold n ranks at 1 rank per host) with uniform link
// bandwidth — full bisection, the contrast case to the dragonfly's
// tapered global tier.
func FatTreeForRanks(n int) FatTree {
	k := 4
	for {
		f := FatTree{
			Radix: k, Levels: 3, RanksPerHost: 1,
			HostGBs: 25, HostLatencyNs: 300,
			EdgeGBs: 25, EdgeLatencyNs: 400,
			CoreGBs: 25, CoreLatencyNs: 500,
		}
		if f.MaxRanks() >= n || k >= 256 {
			return f
		}
		k += 2
	}
}

// appendFingerprint encodes every semantic Dragonfly field for the
// pointcache key (see Topology.appendFingerprint).
func (d *Dragonfly) appendFingerprint(b []byte) []byte {
	b = appendInt(b, "df.groups", int64(d.Groups))
	b = appendInt(b, "df.routers", int64(d.RoutersPerGroup))
	b = appendInt(b, "df.nodes", int64(d.NodesPerRouter))
	b = appendInt(b, "df.globals", int64(d.GlobalLinksPerRouter))
	b = appendInt(b, "df.ranks", int64(d.RanksPerNode))
	b = appendFloat(b, "df.nodegbs", d.NodeGBs)
	b = appendFloat(b, "df.nodelat", d.NodeLatencyNs)
	b = appendFloat(b, "df.localgbs", d.LocalGBs)
	b = appendFloat(b, "df.locallat", d.LocalLatencyNs)
	b = appendFloat(b, "df.globalgbs", d.GlobalGBs)
	b = appendFloat(b, "df.globallat", d.GlobalLatencyNs)
	b = appendStr(b, "df.prefix", d.Prefix)
	return b
}

// appendFingerprint encodes every semantic FatTree field for the
// pointcache key (see Topology.appendFingerprint).
func (f *FatTree) appendFingerprint(b []byte) []byte {
	b = appendInt(b, "ft.radix", int64(f.Radix))
	b = appendInt(b, "ft.levels", int64(f.Levels))
	b = appendInt(b, "ft.ranks", int64(f.RanksPerHost))
	b = appendFloat(b, "ft.hostgbs", f.HostGBs)
	b = appendFloat(b, "ft.hostlat", f.HostLatencyNs)
	b = appendFloat(b, "ft.edgegbs", f.EdgeGBs)
	b = appendFloat(b, "ft.edgelat", f.EdgeLatencyNs)
	b = appendFloat(b, "ft.coregbs", f.CoreGBs)
	b = appendFloat(b, "ft.corelat", f.CoreLatencyNs)
	b = appendStr(b, "ft.prefix", f.Prefix)
	return b
}
