// Package machine encodes the evaluation platforms of the paper
// (Table I / Fig. 2): Perlmutter CPU and GPU, Frontier CPU, and Summit
// CPU and GPU. Each Config builds a netsim fabric with the node
// topology of the real machine and carries calibrated per-transport
// software parameters (per-op overhead, software latency, injection
// gap) chosen so the simulated latency and bandwidth figures match the
// paper's reported numbers; see params.go for the calibration table
// and DESIGN.md §5 for the provenance of every constant.
package machine

import (
	"encoding/binary"
	"fmt"
	"math"
	"sort"
	"strings"

	"msgroofline/internal/loggp"
	"msgroofline/internal/netsim"
	"msgroofline/internal/sim"
)

// Kind distinguishes CPU machines (ranks are cores) from GPU machines
// (ranks are whole GPUs / PEs).
type Kind int

const (
	// CPU machines run MPI ranks on cores.
	CPU Kind = iota
	// GPU machines run one PE per GPU with device-initiated comms.
	GPU
)

// String returns "CPU" or "GPU".
func (k Kind) String() string {
	if k == GPU {
		return "GPU"
	}
	return "CPU"
}

// Transport selects a communication software stack.
type Transport int

const (
	// TwoSided is classic tag-matched MPI (Isend/Irecv/Waitall).
	TwoSided Transport = iota
	// OneSided is MPI-3 RMA (Put/Win_flush/Win_fence/Fetch_and_op).
	OneSided
	// GPUShmem is device-initiated NVSHMEM-style put-with-signal.
	GPUShmem
	// NotifiedAccess is the extension transport of §V's conclusion:
	// CPU one-sided with hardware-level put-with-signal (foMPI-style
	// notified access, Belli & Hoefler 2015) — one fused operation,
	// one network flight, no user-implemented receiver polling.
	NotifiedAccess
	// StreamTriggered is CPU-free stream-triggered communication
	// (Bridges et al.): the host enqueues descriptors onto the device
	// stream and the GPU fires them when stream dependencies resolve.
	// Host per-op overhead is near zero; a trigger latency is paid at
	// fire time instead.
	StreamTriggered
	// MemChannel is a RAMC-style ordered remote-memory channel
	// (Schonbein et al.): per-(src,dst) FIFO byte streams with
	// channel-open and credit semantics. Ordering replaces per-op
	// completion; quiet/fence map to channel drainage.
	MemChannel
)

// String names the transport as used in figures.
func (t Transport) String() string {
	switch t {
	case TwoSided:
		return "two-sided"
	case OneSided:
		return "one-sided"
	case GPUShmem:
		return "gpu-shmem"
	case NotifiedAccess:
		return "notified-access"
	case StreamTriggered:
		return "stream-triggered"
	case MemChannel:
		return "memchannel"
	default:
		return fmt.Sprintf("Transport(%d)", int(t))
	}
}

// TransportParams are the calibrated software costs of one transport
// on one machine. Together with the fabric's wire times they determine
// every simulated communication cost.
type TransportParams struct {
	// OpOverhead is CPU (or GPU SM) time charged per library call.
	OpOverhead sim.Time
	// OpsPerMsg is how many library calls one application-level
	// message needs (2 for two-sided send+recv, 4 for the paper's
	// one-sided put+flush+put(signal)+flush protocol, 2 for fused
	// GPU put-with-signal).
	OpsPerMsg int
	// SoftLatency is the software/pipeline latency added to each
	// message between injection and wire entry (the bulk of MPI
	// latency; the fabric adds wire propagation on top).
	SoftLatency sim.Time
	// Gap is the minimum spacing between consecutive injections at
	// one endpoint (LogGP g). On GPU machines this applies per
	// injection channel.
	Gap sim.Time
	// AtomicTime is the remote service time of a one-sided atomic
	// (CAS / fetch-and-op), excluding wire propagation.
	AtomicTime sim.Time
	// AtomicLinkOccupancy, when nonzero, makes atomic packets hold
	// each fabric link on their path for this long (transaction-rate
	// limited fabrics such as Summit's X-Bus for GPU atomics). Zero
	// means atomics ride the fabric without per-link serialization
	// (coherent CPU sockets).
	AtomicLinkOccupancy sim.Time
	// SyncRoundTrips is how many remote-completion waits one fully
	// synchronized message pays: 1 for two-sided and fused GPU
	// put-with-signal, 2 for the paper's 4-op one-sided protocol
	// (flush after the data put and again after the signal put).
	SyncRoundTrips int
	// CrossSocketExtra is additional software latency charged on
	// messages between endpoints on different sockets. On Summit's
	// dumbbell, device-initiated puts that leave the island are
	// relayed by a host proxy, which costs far more than the extra
	// wire hops alone.
	CrossSocketExtra sim.Time
	// HostStaged routes every message through the endpoints' host
	// nodes (device -> host -> host -> device) instead of the direct
	// device fabric — the classic host-initiated MPI path the paper's
	// introduction contrasts with GPU-initiated communication.
	HostStaged bool
	// TriggerLatency is the device-side delay between stream-dependency
	// resolution and the descriptor entering the wire (StreamTriggered
	// only). It is latency, not overhead: the host is off the critical
	// path, so the model folds it into L rather than o.
	TriggerLatency sim.Time
	// ChannelOpen is the one-time cost of establishing an ordered
	// memory channel to a peer (MemChannel only); charged lazily on
	// the first send of each (src,dst) pair.
	ChannelOpen sim.Time
	// ChannelCredits bounds the sender-side in-flight messages per
	// channel (MemChannel only); 0 means unbounded.
	ChannelCredits int
}

// Place locates a rank on the fabric.
type Place struct {
	// Node is the netsim node the rank injects from.
	Node string
	// Socket is the NUMA/CPU-socket index, used for reporting and
	// socket-crossing analysis.
	Socket int
	// Host is the CPU node that stages this rank's host-initiated
	// traffic (GPU machines only; empty on CPU machines, where Node
	// is the host).
	Host string
}

// Config describes one evaluation platform.
type Config struct {
	// Name is the catalog key, e.g. "perlmutter-cpu".
	Name string
	// Title is the display name used in tables, e.g. "Perlmutter CPU".
	Title string
	Kind  Kind
	// MaxRanks is the largest rank/PE count the paper used on this
	// machine (128 CPU ranks, 42 Summit cores, 4 or 6 GPUs).
	MaxRanks int
	// TheoreticalGBs is the marketing peak drawn as the horizontal
	// ceiling in the paper's plots (may exceed what is achievable,
	// e.g. Summit's X-Bus: 64 theoretical vs ~25 achieved).
	TheoreticalGBs float64
	// Transports holds the calibrated software parameter sets.
	Transports map[Transport]TransportParams
	// GPU is non-nil on GPU machines.
	GPU *GPUConfig
	// MemBandwidth and MemLatency time transfers between ranks that
	// share a fabric node (same socket / shared memory); these do
	// not traverse netsim links.
	MemBandwidth float64
	MemLatency   sim.Time
	// TableRow carries the Table I columns for pretty-printing.
	TableRow TableRow
	// Topology declares the fabric and rank placement (topology.go):
	// an Explicit link list for the paper machines, or a parametric
	// Dragonfly/FatTree generator for extreme-scale fabrics.
	Topology Topology
}

// GPUConfig models the device side of a GPU machine.
type GPUConfig struct {
	// BlocksPerGPU is the number of concurrently schedulable thread
	// blocks (the paper cites 80 per GPU).
	BlocksPerGPU int
	// ComputeScale is the per-PE compute throughput relative to one
	// CPU rank of the same generation.
	ComputeScale float64
	// KernelLaunch is the host-side cost to launch a kernel
	// (charged once per solve/iteration batch on GPU variants).
	KernelLaunch sim.Time
	// Channels is the number of parallel injection channels a PE
	// can drive (NVLink port groups).
	Channels int
}

// TableRow mirrors the columns of the paper's Table I.
type TableRow struct {
	GPUsPerNode     string
	GPUInterconnect string
	GPURuntime      string
	GPUCPULink      string
	CPUs            string
	CPUInterconnect string
	CPURuntime      string
	CPUNICLink      string
}

// Instance is a Config realized for a particular rank count: a fresh
// fabric plus rank placements. Instances are single-use per simulation
// run (links accumulate reservation state; call Reset between runs).
type Instance struct {
	Cfg    *Config
	Net    *netsim.Network
	Places []Place
}

// Instantiate builds the fabric and places `ranks` ranks/PEs.
func (c *Config) Instantiate(ranks int) (*Instance, error) {
	if ranks < 1 {
		return nil, fmt.Errorf("machine %s: ranks must be >= 1, got %d", c.Name, ranks)
	}
	if ranks > c.MaxRanks {
		return nil, fmt.Errorf("machine %s: %d ranks exceeds capacity %d", c.Name, ranks, c.MaxRanks)
	}
	net, places, err := c.Topology.Build(ranks)
	if err != nil {
		return nil, err
	}
	return &Instance{Cfg: c, Net: net, Places: places}, nil
}

// Params returns the transport parameter set, with ok=false when the
// machine does not support the transport (e.g. GPUShmem on a CPU
// partition).
func (c *Config) Params(t Transport) (TransportParams, bool) {
	p, ok := c.Transports[t]
	return p, ok
}

// SameNode reports whether two ranks share a fabric node (and thus
// communicate through shared memory rather than links).
func (in *Instance) SameNode(a, b int) bool {
	return in.Places[a].Node == in.Places[b].Node
}

// CrossSocket reports whether two ranks sit on different sockets.
func (in *Instance) CrossSocket(a, b int) bool {
	return in.Places[a].Socket != in.Places[b].Socket
}

// ModelParams derives the LogGP parameter set the Message Roofline
// model should use for traffic between two representative ranks on
// this machine: software costs from the transport table plus wire
// latency and single-channel bottleneck bandwidth from the fabric.
func (in *Instance) ModelParams(t Transport, src, dst int) (loggp.Params, error) {
	tp, ok := in.Cfg.Params(t)
	if !ok {
		return loggp.Params{}, fmt.Errorf("machine %s: transport %v not available", in.Cfg.Name, t)
	}
	var wireLat sim.Time
	bw := in.Cfg.MemBandwidth
	if !in.SameNode(src, dst) {
		a, b := in.Places[src].Node, in.Places[dst].Node
		wireLat = in.Net.BaseLatency(a, b)
		bw = in.Net.PeakBandwidth(a, b)
	} else {
		wireLat = in.Cfg.MemLatency
	}
	rt := tp.SyncRoundTrips
	if rt < 1 {
		rt = 1
	}
	return loggp.Params{
		L:         sim.Time(rt) * (tp.SoftLatency + wireLat),
		O:         tp.OpOverhead,
		Gap:       tp.Gap,
		Bandwidth: bw,
		OpsPerMsg: tp.OpsPerMsg,
		Trigger:   tp.TriggerLatency,
	}, nil
}

// AppendFingerprint appends a canonical, serialization-stable encoding
// of every semantic Config field to b and returns the extended slice.
// Two configs produce the same bytes iff their field values are equal:
// the Transports map is emitted in sorted key order, every value is
// written with an explicit field tag, and floats are encoded by their
// IEEE-754 bit pattern so the encoding never goes through locale- or
// precision-dependent formatting. internal/pointcache hashes this
// encoding into its content-addressed sweep-point keys, so any change
// to a calibrated constant — a TransportParams entry, link bandwidth,
// GPU geometry — changes every key derived from the machine and the
// cache misses cleanly.
//
// The Topology spec is encoded field-by-field (topology.go), so two
// parameterizations of the same generator can never collide on a
// cache key. A reflection-based completeness test in pointcache fails
// when a new Config or Topology field is added without extending this
// encoding.
func (c *Config) AppendFingerprint(b []byte) []byte {
	b = appendStr(b, "name", c.Name)
	b = appendStr(b, "title", c.Title)
	b = appendInt(b, "kind", int64(c.Kind))
	b = appendInt(b, "maxranks", int64(c.MaxRanks))
	b = appendFloat(b, "theogbs", c.TheoreticalGBs)
	trs := make([]int, 0, len(c.Transports))
	for t := range c.Transports {
		trs = append(trs, int(t))
	}
	sort.Ints(trs)
	for _, t := range trs {
		tp := c.Transports[Transport(t)]
		b = appendInt(b, "transport", int64(t))
		b = appendInt(b, "opoverhead", int64(tp.OpOverhead))
		b = appendInt(b, "opspermsg", int64(tp.OpsPerMsg))
		b = appendInt(b, "softlatency", int64(tp.SoftLatency))
		b = appendInt(b, "gap", int64(tp.Gap))
		b = appendInt(b, "atomictime", int64(tp.AtomicTime))
		b = appendInt(b, "atomiclinkocc", int64(tp.AtomicLinkOccupancy))
		b = appendInt(b, "syncroundtrips", int64(tp.SyncRoundTrips))
		b = appendInt(b, "crosssocketextra", int64(tp.CrossSocketExtra))
		b = appendBool(b, "hoststaged", tp.HostStaged)
		b = appendInt(b, "triggerlatency", int64(tp.TriggerLatency))
		b = appendInt(b, "channelopen", int64(tp.ChannelOpen))
		b = appendInt(b, "channelcredits", int64(tp.ChannelCredits))
	}
	b = appendBool(b, "gpu", c.GPU != nil)
	if c.GPU != nil {
		b = appendInt(b, "blockspergpu", int64(c.GPU.BlocksPerGPU))
		b = appendFloat(b, "computescale", c.GPU.ComputeScale)
		b = appendInt(b, "kernellaunch", int64(c.GPU.KernelLaunch))
		b = appendInt(b, "channels", int64(c.GPU.Channels))
	}
	b = appendFloat(b, "membw", c.MemBandwidth)
	b = appendInt(b, "memlat", int64(c.MemLatency))
	b = appendStr(b, "trow.gpuspernode", c.TableRow.GPUsPerNode)
	b = appendStr(b, "trow.gpuinterconnect", c.TableRow.GPUInterconnect)
	b = appendStr(b, "trow.gpuruntime", c.TableRow.GPURuntime)
	b = appendStr(b, "trow.gpucpulink", c.TableRow.GPUCPULink)
	b = appendStr(b, "trow.cpus", c.TableRow.CPUs)
	b = appendStr(b, "trow.cpuinterconnect", c.TableRow.CPUInterconnect)
	b = appendStr(b, "trow.cpuruntime", c.TableRow.CPURuntime)
	b = appendStr(b, "trow.cpuniclink", c.TableRow.CPUNICLink)
	b = c.Topology.appendFingerprint(b)
	return b
}

// appendStr writes tag and value length-prefixed so no pair of
// distinct (tag, value) sequences can collide by concatenation.
func appendStr(b []byte, tag, v string) []byte {
	b = appendUvarint(b, uint64(len(tag)))
	b = append(b, tag...)
	b = appendUvarint(b, uint64(len(v)))
	return append(b, v...)
}

func appendInt(b []byte, tag string, v int64) []byte {
	b = appendUvarint(b, uint64(len(tag)))
	b = append(b, tag...)
	return appendUvarint(b, uint64(v))
}

func appendFloat(b []byte, tag string, v float64) []byte {
	return appendInt(b, tag, int64(math.Float64bits(v)))
}

func appendBool(b []byte, tag string, v bool) []byte {
	if v {
		return appendInt(b, tag, 1)
	}
	return appendInt(b, tag, 0)
}

func appendUvarint(b []byte, v uint64) []byte {
	return binary.AppendUvarint(b, v)
}

var catalog = map[string]*Config{}

func register(c *Config) *Config {
	if _, dup := catalog[c.Name]; dup {
		panic("machine: duplicate config " + c.Name)
	}
	catalog[c.Name] = c
	return c
}

// Get looks up a machine by catalog name.
func Get(name string) (*Config, error) {
	c, ok := catalog[name]
	if !ok {
		return nil, fmt.Errorf("machine: unknown machine %q (have %v)", name, Names())
	}
	return c, nil
}

// Names lists the catalog in sorted order.
func Names() []string {
	out := make([]string, 0, len(catalog))
	for n := range catalog {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// All returns every config, sorted by name.
func All() []*Config {
	var out []*Config
	for _, n := range Names() {
		out = append(out, catalog[n])
	}
	return out
}

// NameList renders the catalog as a comma-separated string for
// command usage text, so help output tracks the registry instead of
// hand-maintained lists.
func NameList() string {
	return strings.Join(Names(), ", ")
}
