package machine

import (
	"testing"
)

func TestCatalogComplete(t *testing.T) {
	want := []string{
		"dragonfly-10k", "dragonfly-1k", "fattree-1k",
		"frontier-cpu", "frontier-gpu", "perlmutter-cpu", "perlmutter-gpu", "summit-cpu", "summit-gpu",
	}
	got := Names()
	if len(got) != len(want) {
		t.Fatalf("catalog = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("catalog = %v, want %v", got, want)
		}
	}
	if len(All()) != len(want) {
		t.Fatalf("All() should return %d configs (5 paper platforms + frontier-gpu + 3 generated)", len(want))
	}
	if NameList() == "" {
		t.Fatal("NameList() should render the catalog")
	}
}

func TestFrontierGPUExtension(t *testing.T) {
	c, err := Get(FrontierGPUName)
	if err != nil {
		t.Fatal(err)
	}
	if c.Kind != GPU || c.MaxRanks != 4 {
		t.Fatalf("frontier-gpu config: %+v", c)
	}
	in, err := c.Instantiate(4)
	if err != nil {
		t.Fatal(err)
	}
	// Fully connected MI250X pairs at 50 GB/s aggregate.
	if bw := in.Net.AggregateBandwidth("fg:g0", "fg:g3"); bw != 50e9 {
		t.Fatalf("pair aggregate = %v, want 50e9", bw)
	}
	p, err := in.ModelParams(GPUShmem, 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	// Projected ROC_SHMEM latency: a bit above NVSHMEM's 4-5 us.
	if l := p.SweepTime(1, 8); l < us(4.5) || l > us(6.5) {
		t.Errorf("frontier-gpu 1-msg = %v, want ~5.5us projection", l)
	}
}

func TestGetUnknown(t *testing.T) {
	if _, err := Get("nersc-12"); err == nil {
		t.Fatal("expected error for unknown machine")
	}
	c, err := Get("perlmutter-cpu")
	if err != nil || c.Name != "perlmutter-cpu" {
		t.Fatalf("Get = %v, %v", c, err)
	}
}

func TestInstantiateBounds(t *testing.T) {
	c, _ := Get("perlmutter-cpu")
	if _, err := c.Instantiate(0); err == nil {
		t.Fatal("0 ranks should fail")
	}
	if _, err := c.Instantiate(129); err == nil {
		t.Fatal("129 ranks should exceed Perlmutter CPU capacity")
	}
	in, err := c.Instantiate(128)
	if err != nil {
		t.Fatal(err)
	}
	if len(in.Places) != 128 {
		t.Fatalf("places = %d", len(in.Places))
	}
}

func TestPerlmutterCPUPlacement(t *testing.T) {
	c, _ := Get("perlmutter-cpu")
	in, err := c.Instantiate(128)
	if err != nil {
		t.Fatal(err)
	}
	if in.Places[0].Socket != 0 || in.Places[127].Socket != 1 {
		t.Fatalf("block placement broken: %+v %+v", in.Places[0], in.Places[127])
	}
	if !in.SameNode(0, 1) {
		t.Fatal("ranks 0 and 1 should share socket 0")
	}
	if in.SameNode(0, 127) {
		t.Fatal("ranks 0 and 127 should be on different sockets")
	}
	if !in.CrossSocket(0, 127) {
		t.Fatal("CrossSocket(0,127) should be true")
	}
	// Cross-socket peak must be the IF 32 GB/s.
	bw := in.Net.PeakBandwidth("pm:s0", "pm:s1")
	if bw != 32e9 {
		t.Fatalf("IF bandwidth = %v, want 32e9", bw)
	}
}

func TestSummitGPUTopology(t *testing.T) {
	c, _ := Get("summit-gpu")
	in, err := c.Instantiate(6)
	if err != nil {
		t.Fatal(err)
	}
	// In-island: direct, 1 hop.
	if h := in.Net.Hops("sg:g0", "sg:g2"); h != 1 {
		t.Fatalf("in-island hops = %d, want 1", h)
	}
	// Cross-island: g -> s0 -> s1 -> g, 3 hops.
	if h := in.Net.Hops("sg:g0", "sg:g3"); h != 3 {
		t.Fatalf("cross-island hops = %d, want 3", h)
	}
	// Cross-island aggregate bottleneck is the X-Bus (32 GB/s, §II);
	// a single channel stream is limited by one NVLink2 brick.
	if bw := in.Net.AggregateBandwidth("sg:g0", "sg:g3"); bw != 32e9 {
		t.Fatalf("cross-island aggregate bw = %v, want 32e9", bw)
	}
	if bw := in.Net.PeakBandwidth("sg:g0", "sg:g3"); bw != 25e9 {
		t.Fatalf("cross-island single-channel bw = %v, want 25e9", bw)
	}
	if !in.CrossSocket(2, 3) {
		t.Fatal("GPUs 2 and 3 must be on different sockets")
	}
	if in.CrossSocket(0, 2) {
		t.Fatal("GPUs 0 and 2 share an island")
	}
}

func TestPerlmutterGPUChannels(t *testing.T) {
	c, _ := Get("perlmutter-gpu")
	in, err := c.Instantiate(4)
	if err != nil {
		t.Fatal(err)
	}
	if ch := in.Net.Channels("pg:g0", "pg:g1"); ch != 4 {
		t.Fatalf("channels = %d, want 4", ch)
	}
	if bw := in.Net.PeakBandwidth("pg:g0", "pg:g1"); bw != 25e9 {
		t.Fatalf("single-channel bw = %v, want 25e9", bw)
	}
	if bw := in.Net.AggregateBandwidth("pg:g0", "pg:g1"); bw != 100e9 {
		t.Fatalf("aggregate bw = %v, want 100e9 (paper: 100 GB/s/dir/pair)", bw)
	}
	if c.GPU == nil || c.GPU.BlocksPerGPU != 80 {
		t.Fatal("Perlmutter GPU should model 80 blocks per GPU")
	}
}

func TestTransportAvailability(t *testing.T) {
	cpu, _ := Get("perlmutter-cpu")
	if _, ok := cpu.Params(GPUShmem); ok {
		t.Fatal("CPU partition should not offer GPUShmem")
	}
	if _, ok := cpu.Params(TwoSided); !ok {
		t.Fatal("CPU partition must offer two-sided MPI")
	}
	gpu, _ := Get("perlmutter-gpu")
	if _, ok := gpu.Params(OneSided); ok {
		t.Fatal("GPU partition has no CPU one-sided MPI")
	}
	if _, ok := gpu.Params(GPUShmem); !ok {
		t.Fatal("GPU partition must offer GPUShmem")
	}
	// Host-initiated MPI exists on GPU machines, staged through the
	// host (the paper's introduction's "communicate via the host").
	host, ok := gpu.Params(TwoSided)
	if !ok || !host.HostStaged {
		t.Fatal("GPU partition must offer host-staged two-sided MPI")
	}
	in, _ := gpu.Instantiate(4)
	if in.Places[0].Host != "pg:host" {
		t.Fatalf("GPU rank host = %q", in.Places[0].Host)
	}
}

// Calibration checks: single-message latency and amortized per-message
// latency derived from the LogGP view must land near the paper's
// numbers (DESIGN.md §5).
func TestCalibrationPerlmutterCPU(t *testing.T) {
	c, _ := Get("perlmutter-cpu")
	in, _ := c.Instantiate(128)
	// Ranks 0 and 127 are cross-socket: representative IF traffic.
	two, err := in.ModelParams(TwoSided, 0, 127)
	if err != nil {
		t.Fatal(err)
	}
	one, err := in.ModelParams(OneSided, 0, 127)
	if err != nil {
		t.Fatal(err)
	}
	// Fig 6b: two-sided ~3.3 us, one-sided ~5 us for one small message.
	t2 := two.SweepTime(1, 100)
	t1 := one.SweepTime(1, 100)
	if t2 < us(2.8) || t2 > us(3.8) {
		t.Errorf("two-sided 1-msg = %v, want ~3.3us", t2)
	}
	if t1 < us(4.4) || t1 > us(5.6) {
		t.Errorf("one-sided 1-msg = %v, want ~5us", t1)
	}
	// Fig 3a: amortized two-sided ~0.3 us; one-sided ~20%% lower.
	a2 := two.MsgLatency(1000, 8)
	a1 := one.MsgLatency(1000, 8)
	if a2 < us(0.25) || a2 > us(0.45) {
		t.Errorf("two-sided amortized = %v, want ~0.3-0.4us", a2)
	}
	if a1 >= a2 {
		t.Errorf("one-sided amortized %v should beat two-sided %v at high msg/sync", a1, a2)
	}
}

func TestCalibrationSummitSpectrum(t *testing.T) {
	c, _ := Get("summit-cpu")
	in, _ := c.Instantiate(42)
	two, _ := in.ModelParams(TwoSided, 0, 41)
	one, _ := in.ModelParams(OneSided, 0, 41)
	// Spectrum one-sided must be consistently worse (Fig 3c).
	for _, n := range []int{1, 10, 100, 1000} {
		for _, b := range []int64{8, 512, 65536} {
			if one.SweepBandwidth(n, b) > two.SweepBandwidth(n, b) {
				t.Fatalf("n=%d B=%d: Spectrum one-sided beats two-sided", n, b)
			}
		}
	}
	// Summit CPU two-sided latency ~3 us (§III-B).
	if l := two.SweepTime(1, 100); l < us(2.5) || l > us(3.5) {
		t.Errorf("Summit two-sided 1-msg = %v, want ~3us", l)
	}
}

func TestCalibrationGPULatency(t *testing.T) {
	pg, _ := Get("perlmutter-gpu")
	pin, _ := pg.Instantiate(4)
	p, _ := pin.ModelParams(GPUShmem, 0, 1)
	// §II: Perlmutter GPU latency from 4 us down to 0.5 us.
	if l := p.SweepTime(1, 8); l < us(3.5) || l > us(4.5) {
		t.Errorf("Perlmutter GPU 1-msg = %v, want ~4us", l)
	}
	if a := p.MsgLatency(100000, 8); a < us(0.3) || a > us(0.7) {
		t.Errorf("Perlmutter GPU amortized = %v, want ~0.5us", a)
	}
	sg, _ := Get("summit-gpu")
	sin, _ := sg.Instantiate(6)
	s, _ := sin.ModelParams(GPUShmem, 0, 1)
	if l := s.SweepTime(1, 8); l < us(4.5) || l > us(5.6) {
		t.Errorf("Summit GPU 1-msg = %v, want ~5us", l)
	}
}

func TestModelParamsSameNode(t *testing.T) {
	c, _ := Get("perlmutter-cpu")
	in, _ := c.Instantiate(4)
	// All 4 ranks: 2 on each socket; 0 and 1 share socket 0.
	p, err := in.ModelParams(TwoSided, 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	if p.Bandwidth != c.MemBandwidth {
		t.Fatalf("same-node bandwidth = %v, want mem bw %v", p.Bandwidth, c.MemBandwidth)
	}
	if p.L != crayTwoSided.SoftLatency+c.MemLatency {
		t.Fatalf("same-node latency = %v", p.L)
	}
}

func TestModelParamsUnsupportedTransport(t *testing.T) {
	c, _ := Get("perlmutter-gpu")
	in, _ := c.Instantiate(2)
	if _, err := in.ModelParams(OneSided, 0, 1); err == nil {
		t.Fatal("expected error for CPU one-sided MPI on GPU partition")
	}
}

func TestKindAndTransportStrings(t *testing.T) {
	if CPU.String() != "CPU" || GPU.String() != "GPU" {
		t.Fatal("Kind.String broken")
	}
	if TwoSided.String() != "two-sided" || OneSided.String() != "one-sided" || GPUShmem.String() != "gpu-shmem" {
		t.Fatal("Transport.String broken")
	}
}

func TestAllTransportParamsValid(t *testing.T) {
	for _, c := range All() {
		in, err := c.Instantiate(2)
		if err != nil {
			t.Fatalf("%s: %v", c.Name, err)
		}
		for tr := range c.Transports {
			p, err := in.ModelParams(tr, 0, 1)
			if err != nil {
				t.Fatalf("%s/%v: %v", c.Name, tr, err)
			}
			if err := p.Validate(); err != nil {
				t.Fatalf("%s/%v: %v", c.Name, tr, err)
			}
		}
	}
}
