package machine

import (
	"fmt"

	"msgroofline/internal/sim"
)

// Calibration notes
//
// Link peaks come from Table I / §II of the paper. Wire propagation
// latencies are small (150-300 ns): most of an MPI message's latency
// is software, which lives in TransportParams.SoftLatency. The
// software constants are reverse-engineered from the paper's reported
// figures:
//
//	Perlmutter CPU  two-sided: single-message ~3.3 us (Fig 6b),
//	                amortized ~0.3 us (Fig 3a / §III-C).
//	Perlmutter CPU  one-sided: 4 ops -> ~5 us single message (Fig 6b),
//	                amortized ~20% below two-sided (Fig 3a, §III-A);
//	                CAS ~2 us (§III-C).
//	Summit CPU      Spectrum MPI: ~3 us two-sided latency (§III-B);
//	                one-sided consistently worse (Fig 3c).
//	Perlmutter GPU  NVSHMEM: 4 us -> 0.5 us (§II), CAS 0.8 us (§III-C);
//	                per-pair 100 GB/s over 4 NVLink3 port channels.
//	Summit GPU      NVSHMEM: ~5 us latency (§III-B), CAS 1.0 us within
//	                a socket and 1.6 us across (§III-C); NVLink2
//	                50 GB/s in-island, 32 GB/s across sockets.
//	Frontier CPU    Cray MPI like Perlmutter; 36 GB/s Infinity Fabric
//	                ceiling (Fig 1).
const (
	gb = 1e9 // bytes per second per "GB/s"
)

func us(v float64) sim.Time { return sim.FromMicroseconds(v) }
func ns(v float64) sim.Time { return sim.FromNanoseconds(v) }

// crayTwoSided / crayOneSided are the Cray MPI (Slingshot-11) stacks
// used on Perlmutter CPU and Frontier CPU.
var crayTwoSided = TransportParams{
	OpOverhead:     ns(150),
	OpsPerMsg:      2,
	SoftLatency:    us(2.7),
	Gap:            ns(50),
	AtomicTime:     us(1.0), // via active-message emulation; unused by benchmarks
	SyncRoundTrips: 1,
}

var crayOneSided = TransportParams{
	OpOverhead:     ns(30),
	OpsPerMsg:      4, // put(data), flush, put(signal), flush
	SoftLatency:    us(2.25),
	Gap:            ns(40),
	AtomicTime:     us(1.6), // + wire round trip ≈ 2 us end to end
	SyncRoundTrips: 2,       // flush twice per fully synchronized message
}

// crayNotified is the extension transport of the paper's conclusion:
// one-sided with hardware put-with-signal ("it can be intuitively
// inferred that the one-sided MPI can easily outperform the two-sided
// MPI with hardware-level support for put-with-signal", §V). Same
// pipeline latency as the one-sided data path, but one fused
// operation and a single remote-completion wait per message.
var crayNotified = TransportParams{
	OpOverhead:     ns(30),
	OpsPerMsg:      2, // fused put + notification
	SoftLatency:    us(2.25),
	Gap:            ns(40),
	AtomicTime:     us(1.6),
	SyncRoundTrips: 1,
}

// spectrumTwoSided / spectrumOneSided are IBM Spectrum MPI on Summit;
// the one-sided path is consistently slower there (Fig 3c).
var spectrumTwoSided = TransportParams{
	OpOverhead:     ns(250),
	OpsPerMsg:      2,
	SoftLatency:    us(2.2),
	Gap:            ns(80),
	AtomicTime:     us(1.4),
	SyncRoundTrips: 1,
}

var spectrumOneSided = TransportParams{
	OpOverhead:     ns(450),
	OpsPerMsg:      4,
	SoftLatency:    us(2.6),
	Gap:            ns(100),
	AtomicTime:     us(2.4),
	SyncRoundTrips: 2,
}

// nvshmemPerlmutter / nvshmemSummit are the device-initiated stacks.
// put-with-signal is fused: 2 logical ops per message.
var nvshmemPerlmutter = TransportParams{
	OpOverhead:  ns(80),
	OpsPerMsg:   2,
	SoftLatency: us(3.5),
	Gap:         ns(250),
	AtomicTime:  ns(400), // + wire round trip ≈ 0.8 us end to end
	// NVLink3 atomics are cheap and spread over four port channels.
	AtomicLinkOccupancy: ns(150),
	SyncRoundTrips:      1, // fused put-with-signal
}

var nvshmemSummit = TransportParams{
	OpOverhead:  ns(100),
	OpsPerMsg:   2,
	SoftLatency: us(4.4),
	Gap:         ns(300),
	AtomicTime:  ns(550), // 0.95 us in-island, ~1.65 us across sockets
	// X-Bus atomic transactions serialize: crossing the dumbbell
	// saturates at ~2 atomics/us, which is what stops the hashtable
	// scaling past 3 GPUs (Fig 9).
	AtomicLinkOccupancy: ns(500),
	SyncRoundTrips:      1,
	// Cross-island puts are relayed by a host proxy (no direct
	// NVLink between the dumbbell's islands), adding software
	// latency well beyond the extra wire hops.
	CrossSocketExtra: us(2.5),
}

// streamTrigPerlmutter / streamTrigSummit are stream-triggered MPI
// stacks (Bridges et al.): the host enqueues descriptors onto the
// device stream ahead of time, so the per-op host overhead collapses
// to the enqueue cost (~tens of ns, off the critical path at fire
// time) while the device-side trigger engine adds a fixed latency to
// every message. One descriptor per message: the trigger fires the
// fused put, and stream order replaces explicit completion ops.
var streamTrigPerlmutter = TransportParams{
	OpOverhead:          ns(20), // host enqueue only; fires without host
	OpsPerMsg:           2,      // descriptor + fused put-with-signal
	SoftLatency:         us(2.8),
	Gap:                 ns(250),
	AtomicTime:          ns(400),
	AtomicLinkOccupancy: ns(150),
	SyncRoundTrips:      1,
	TriggerLatency:      us(1.1), // stream-dependency resolution + doorbell
}

var streamTrigSummit = TransportParams{
	OpOverhead:          ns(25),
	OpsPerMsg:           2,
	SoftLatency:         us(3.6),
	Gap:                 ns(300),
	AtomicTime:          ns(550),
	AtomicLinkOccupancy: ns(500),
	SyncRoundTrips:      1,
	CrossSocketExtra:    us(2.5),
	TriggerLatency:      us(1.4),
}

// crayMemChannel is the RAMC-style ordered memory channel over
// Slingshot (Schonbein et al.): one op per message (a channel write —
// ordering replaces per-op completion, so there are no flush ops),
// sender-side credits bound in-flight messages, and a one-time
// channel-open handshake is paid on first use of each (src,dst) pair.
var crayMemChannel = TransportParams{
	OpOverhead:     ns(60),
	OpsPerMsg:      1, // one channel write; no completion ops
	SoftLatency:    us(2.0),
	Gap:            ns(45),
	AtomicTime:     us(1.6),
	SyncRoundTrips: 1, // drain waits one round trip for the channel tail
	ChannelOpen:    us(12),
	ChannelCredits: 64,
}

// Host-initiated MPI on the GPU machines: the classic staging path
// (device -> host copy, MPI between hosts, host -> device copy) that
// the paper's introduction contrasts with GPU-initiated communication.
// The software latency includes the device-synchronize + memcpy
// overhead on top of the host MPI stack; every message additionally
// traverses the PCIe/NVLink host links in the fabric (HostStaged).
var hostMPIPerlmutterGPU = TransportParams{
	OpOverhead:     ns(150),
	OpsPerMsg:      2,
	SoftLatency:    us(6.0),
	Gap:            ns(50),
	AtomicTime:     us(1.0),
	SyncRoundTrips: 1,
	HostStaged:     true,
}

var hostMPISummitGPU = TransportParams{
	OpOverhead:     ns(250),
	OpsPerMsg:      2,
	SoftLatency:    us(6.5),
	Gap:            ns(80),
	AtomicTime:     us(1.4),
	SyncRoundTrips: 1,
	HostStaged:     true,
}

// PerlmutterCPU: two Milan sockets joined by Infinity Fabric at
// 32 GB/s/direction over 4 channels (Fig 2a). NIC on socket 0 via
// PCIe4 (not exercised by single-node experiments but present).
var PerlmutterCPU = register(&Config{
	Name:           "perlmutter-cpu",
	Title:          "Perlmutter CPU",
	Kind:           CPU,
	MaxRanks:       128,
	TheoreticalGBs: 32,
	Transports: map[Transport]TransportParams{
		TwoSided:       crayTwoSided,
		OneSided:       crayOneSided,
		NotifiedAccess: crayNotified,
		MemChannel:     crayMemChannel,
	},
	MemBandwidth: 80 * gb,
	MemLatency:   ns(350),
	TableRow: TableRow{
		GPUsPerNode:     "-",
		GPUInterconnect: "-",
		GPURuntime:      "-",
		GPUCPULink:      "-",
		CPUs:            "2x AMD EPYC 7763",
		CPUInterconnect: "Infinity Fabric",
		CPURuntime:      "CrayMPI",
		CPUNICLink:      "PCIe4.0",
	},
	Topology: Topology{Explicit: &Explicit{
		Links: []LinkSpec{
			{A: "pm:s0", B: "pm:s1", GBs: 32, LatencyNs: 150, Channels: 4, Class: "socket"},
			{A: "pm:s0", B: "pm:nic", GBs: 25, LatencyNs: 250, Channels: 1, Class: "nic"},
		},
		// Block placement: first half on socket 0 (MPI default).
		Place: Placement{Kind: PlaceBlock, Nodes: []string{"pm:s0", "pm:s1"}},
	}},
})

// FrontierCPU: one 64-core "Optimized 3rd Gen EPYC" socket organized
// as four NUMA quadrants; quadrants exchange data over Infinity
// Fabric at 36 GB/s/direction (Fig 1: the ultimate on-node bound).
var FrontierCPU = register(&Config{
	Name:           "frontier-cpu",
	Title:          "Frontier CPU",
	Kind:           CPU,
	MaxRanks:       64,
	TheoreticalGBs: 36,
	Transports: map[Transport]TransportParams{
		TwoSided:       crayTwoSided,
		OneSided:       crayOneSided,
		NotifiedAccess: crayNotified,
		MemChannel:     crayMemChannel,
	},
	MemBandwidth: 80 * gb,
	MemLatency:   ns(350),
	TableRow: TableRow{
		GPUsPerNode:     "-",
		GPUInterconnect: "-",
		GPURuntime:      "-",
		GPUCPULink:      "-",
		CPUs:            "1x AMD EPYC 7A53",
		CPUInterconnect: "Infinity Fabric",
		CPURuntime:      "CrayMPI",
		CPUNICLink:      "IF + PCIe4.0 ESM",
	},
	Topology: Topology{Explicit: frontierCPUExplicit()},
})

// frontierCPUExplicit wires the four NUMA quadrants all-to-all, in the
// same (i, j) order the retired build func used.
func frontierCPUExplicit() *Explicit {
	var links []LinkSpec
	for i := 0; i < 4; i++ {
		for j := i + 1; j < 4; j++ {
			links = append(links, LinkSpec{
				A: fmt.Sprintf("fr:q%d", i), B: fmt.Sprintf("fr:q%d", j),
				GBs: 36, LatencyNs: 140, Channels: 4, Class: "numa",
			})
		}
	}
	return &Explicit{
		Links: links,
		Place: Placement{Kind: PlaceBlock, Nodes: []string{"fr:q0", "fr:q1", "fr:q2", "fr:q3"}},
	}
}

// SummitCPU: two POWER9 sockets joined by X-Bus. The theoretical
// 64 GB/s/direction is never approached (the paper observed ~25 GB/s);
// the links carry the achievable 26 GB/s over 2 channels while the
// plotted ceiling stays at the theoretical value.
var SummitCPU = register(&Config{
	Name:           "summit-cpu",
	Title:          "Summit CPU",
	Kind:           CPU,
	MaxRanks:       42,
	TheoreticalGBs: 64,
	Transports: map[Transport]TransportParams{
		TwoSided: spectrumTwoSided,
		OneSided: spectrumOneSided,
	},
	MemBandwidth: 60 * gb,
	MemLatency:   ns(400),
	TableRow: TableRow{
		GPUsPerNode:     "6x V100",
		GPUInterconnect: "NVLINK2",
		GPURuntime:      "CUDA 11.0.3 / NVSHMEM 2.8.0",
		GPUCPULink:      "NVLINK2",
		CPUs:            "2x IBM POWER9",
		CPUInterconnect: "X-Bus",
		CPURuntime:      "IBM Spectrum",
		CPUNICLink:      "PCIe4.0",
	},
	Topology: Topology{Explicit: &Explicit{
		Links: []LinkSpec{
			{A: "sm:s0", B: "sm:s1", GBs: 26, LatencyNs: 300, Channels: 2, Class: "socket"},
		},
		Place: Placement{Kind: PlaceBlock, Nodes: []string{"sm:s0", "sm:s1"}},
	}},
})

// PerlmutterGPU: four A100s, fully connected NVLink3. Each pair is
// joined by four 25 GB/s port channels (12 ports in 3 groups), i.e.
// 100 GB/s/direction per pair — a single serialized message stream
// sees 25 GB/s, and splitting across channels exposes the aggregate
// (the Fig 10 mechanism).
var PerlmutterGPU = register(&Config{
	Name:           "perlmutter-gpu",
	Title:          "Perlmutter GPU",
	Kind:           GPU,
	MaxRanks:       4,
	TheoreticalGBs: 100,
	Transports: map[Transport]TransportParams{
		GPUShmem:        nvshmemPerlmutter,
		TwoSided:        hostMPIPerlmutterGPU,
		StreamTriggered: streamTrigPerlmutter,
	},
	GPU: &GPUConfig{
		BlocksPerGPU: 80,
		ComputeScale: 64,
		KernelLaunch: us(8),
		Channels:     4,
	},
	MemBandwidth: 1300 * gb, // HBM2e
	MemLatency:   ns(700),
	TableRow: TableRow{
		GPUsPerNode:     "4x A100",
		GPUInterconnect: "NVLINK3",
		GPURuntime:      "cudatoolkit 11.7 / NVSHMEM 2.8.0",
		GPUCPULink:      "PCIe4",
		CPUs:            "1x AMD EPYC 7763",
		CPUInterconnect: "-",
		CPURuntime:      "-",
		CPUNICLink:      "PCIe4.0",
	},
	Topology: Topology{Explicit: perlmutterGPUExplicit()},
})

// perlmutterGPUExplicit interleaves each GPU's NVLink pair links with
// its PCIe host link (host-staged traffic only), exactly as the
// retired build func added them.
func perlmutterGPUExplicit() *Explicit {
	var links []LinkSpec
	place := Placement{Kind: PlacePerRank}
	for i := 0; i < 4; i++ {
		for j := i + 1; j < 4; j++ {
			links = append(links, LinkSpec{
				A: fmt.Sprintf("pg:g%d", i), B: fmt.Sprintf("pg:g%d", j),
				GBs: 25, LatencyNs: 200, Channels: 4, Class: "nvlink",
			})
		}
		links = append(links, LinkSpec{
			A: fmt.Sprintf("pg:g%d", i), B: "pg:host",
			GBs: 25, LatencyNs: 250, Channels: 1, Class: "pcie",
		})
		place.Nodes = append(place.Nodes, fmt.Sprintf("pg:g%d", i))
		place.Sockets = append(place.Sockets, 0)
		place.Hosts = append(place.Hosts, "pg:host")
	}
	return &Explicit{Links: links, Place: place}
}

// SummitGPU: six V100s in the dual-island dumbbell of Fig 2c. Within
// an island the three GPUs are fully connected by NVLink2 (two 25 GB/s
// bricks per pair = 50 GB/s/direction). Island-to-island traffic hops
// GPU -> local CPU socket -> X-Bus -> remote socket -> GPU, and all
// cross-island pairs share the one X-Bus (the contention that stops
// hashtable scaling past 3 GPUs, Fig 9).
var SummitGPU = register(&Config{
	Name:           "summit-gpu",
	Title:          "Summit GPU",
	Kind:           GPU,
	MaxRanks:       6,
	TheoreticalGBs: 50,
	Transports: map[Transport]TransportParams{
		GPUShmem:        nvshmemSummit,
		TwoSided:        hostMPISummitGPU,
		StreamTriggered: streamTrigSummit,
	},
	GPU: &GPUConfig{
		BlocksPerGPU: 80,
		ComputeScale: 48,
		KernelLaunch: us(9),
		Channels:     2,
	},
	MemBandwidth: 900 * gb, // HBM2
	MemLatency:   ns(800),
	TableRow: TableRow{
		GPUsPerNode:     "6x V100",
		GPUInterconnect: "NVLINK2",
		GPURuntime:      "CUDA 11.0.3 / NVSHMEM 2.8.0",
		GPUCPULink:      "NVLINK2",
		CPUs:            "2x IBM POWER9",
		CPUInterconnect: "X-Bus",
		CPURuntime:      "IBM Spectrum",
		CPUNICLink:      "PCIe4.0",
	},
	Topology: Topology{Explicit: summitGPUExplicit()},
})

func gName(i int) string { return fmt.Sprintf("sg:g%d", i) }

// summitGPUExplicit wires the dumbbell — islands g0-g2 on socket 0 and
// g3-g5 on socket 1, each GPU hubbed to its socket, one X-Bus between
// sockets (32 GB/s/direction for GPU traffic per §II) — in exactly the
// retired build func's order.
func summitGPUExplicit() *Explicit {
	var links []LinkSpec
	place := Placement{Kind: PlacePerRank}
	for s := 0; s < 2; s++ {
		base := 3 * s
		for i := 0; i < 3; i++ {
			for j := i + 1; j < 3; j++ {
				links = append(links, LinkSpec{
					A: gName(base + i), B: gName(base + j),
					GBs: 25, LatencyNs: 200, Channels: 2, Class: "nvlink",
				})
			}
			// GPU to its island's CPU socket hub (NVLink2).
			links = append(links, LinkSpec{
				A: gName(base + i), B: fmt.Sprintf("sg:s%d", s),
				GBs: 25, LatencyNs: 150, Channels: 2, Class: "nvlink-host",
			})
			place.Nodes = append(place.Nodes, gName(base+i))
			place.Sockets = append(place.Sockets, s)
			place.Hosts = append(place.Hosts, fmt.Sprintf("sg:s%d", s))
		}
	}
	links = append(links, LinkSpec{
		A: "sg:s0", B: "sg:s1", GBs: 32, LatencyNs: 250, Channels: 1, Class: "xbus",
	})
	return &Explicit{Links: links, Place: place}
}
