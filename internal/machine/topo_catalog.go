package machine

// Generated extreme-scale catalog entries. The paper's five machines
// are single nodes; these exercise the same transports on multi-node
// fabrics from the parametric generators, which is what the Ridgeline
// layer's simulated validation points run on. Software parameters are
// the Cray MPI (Slingshot-11) stacks — the calibration already in
// params.go — over dragonfly and fat-tree wires.

func crayTransports() map[Transport]TransportParams {
	return map[Transport]TransportParams{
		TwoSided:       crayTwoSided,
		OneSided:       crayOneSided,
		NotifiedAccess: crayNotified,
		MemChannel:     crayMemChannel,
	}
}

func interconnectRow(cpus, interconnect string) TableRow {
	return TableRow{
		GPUsPerNode:     "-",
		GPUInterconnect: "-",
		GPURuntime:      "-",
		GPUCPULink:      "-",
		CPUs:            cpus,
		CPUInterconnect: interconnect,
		CPURuntime:      "CrayMPI",
		CPUNICLink:      "NIC 25 GB/s",
	}
}

// dragonfly1K: 8 groups x 8 routers x 4 nodes = 256 nodes, 4 ranks
// each -> 1024 ranks. One global port per router (8 per group for 7
// peers -> 1 link per group pair): a deliberately tapered global tier
// so adaptive routing has congestion to route around.
var dragonfly1K = Dragonfly{
	Groups:               8,
	RoutersPerGroup:      8,
	NodesPerRouter:       4,
	GlobalLinksPerRouter: 1,
	RanksPerNode:         4,
	NodeGBs:              25, NodeLatencyNs: 300,
	LocalGBs: 25, LocalLatencyNs: 200,
	GlobalGBs: 25, GlobalLatencyNs: 700,
}

// Dragonfly1K is a generated 1024-rank dragonfly with adaptive
// (UGAL-lite) routing.
var Dragonfly1K = register(&Config{
	Name:           "dragonfly-1k",
	Title:          "Dragonfly 1K (generated)",
	Kind:           CPU,
	MaxRanks:       dragonfly1K.MaxRanks(),
	TheoreticalGBs: 25,
	Transports:     crayTransports(),
	MemBandwidth:   80 * gb,
	MemLatency:     ns(350),
	TableRow:       interconnectRow("256 nodes x 4 ranks", "Dragonfly 8x8x4, adaptive"),
	Topology:       Topology{Dragonfly: &dragonfly1K, Routing: RoutingAdaptive},
})

// fatTree1K: 3-level radix-16 fat-tree -> 1024 hosts, 1 rank each.
// Uniform link bandwidth (full bisection) — the contrast case to the
// dragonfly's tapered global tier.
var fatTree1K = FatTree{
	Radix: 16, Levels: 3, RanksPerHost: 1,
	HostGBs: 25, HostLatencyNs: 300,
	EdgeGBs: 25, EdgeLatencyNs: 400,
	CoreGBs: 25, CoreLatencyNs: 500,
}

// FatTree1K is a generated 1024-rank three-level fat-tree with
// minimal routing.
var FatTree1K = register(&Config{
	Name:           "fattree-1k",
	Title:          "Fat-tree 1K (generated)",
	Kind:           CPU,
	MaxRanks:       fatTree1K.MaxRanks(),
	TheoreticalGBs: 25,
	Transports:     crayTransports(),
	MemBandwidth:   80 * gb,
	MemLatency:     ns(350),
	TableRow:       interconnectRow("1024 hosts x 1 rank", "Fat-tree k=16, minimal"),
	Topology:       Topology{FatTree: &fatTree1K, Routing: RoutingMinimal},
})

// dragonfly10K: 16 groups x 16 routers x 4 nodes = 1024 nodes, 10
// ranks each -> 10240 ranks. The scale point the topo-scale benchmark
// and the Ridgeline cross-checks use.
var dragonfly10K = Dragonfly{
	Groups:               16,
	RoutersPerGroup:      16,
	NodesPerRouter:       4,
	GlobalLinksPerRouter: 1,
	RanksPerNode:         10,
	NodeGBs:              25, NodeLatencyNs: 300,
	LocalGBs: 25, LocalLatencyNs: 200,
	GlobalGBs: 25, GlobalLatencyNs: 700,
}

// Dragonfly10K is a generated 10240-rank dragonfly with adaptive
// routing.
var Dragonfly10K = register(&Config{
	Name:           "dragonfly-10k",
	Title:          "Dragonfly 10K (generated)",
	Kind:           CPU,
	MaxRanks:       dragonfly10K.MaxRanks(),
	TheoreticalGBs: 25,
	Transports:     crayTransports(),
	MemBandwidth:   80 * gb,
	MemLatency:     ns(350),
	TableRow:       interconnectRow("1024 nodes x 10 ranks", "Dragonfly 16x16x4, adaptive"),
	Topology:       Topology{Dragonfly: &dragonfly10K, Routing: RoutingAdaptive},
})
