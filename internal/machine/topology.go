package machine

import (
	"fmt"

	"msgroofline/internal/netsim"
)

// This file is the declarative topology layer: a machine's fabric is
// data (a Topology spec), not a bespoke build function. The five paper
// machines are Explicit specs listing their handful of links verbatim;
// extreme-scale machines come from the parametric Dragonfly and
// FatTree generators (generate.go), which expand to the same link-list
// form. One generic builder turns any spec into a netsim fabric plus
// rank placements, so node groups, lookahead bounds, and the coupled
// sharded engine all fall out of the spec with no per-machine wiring.
//
// Builder determinism: links are added in spec order, which fixes
// netsim's adjacency insertion order and therefore its BFS tie-breaks
// — two identical specs always produce byte-identical fabrics and
// routes. The Explicit specs below list links in exactly the order the
// retired per-machine build functions added them, which keeps every
// golden output byte-identical across the refactor.

// LinkSpec declares one bidirectional channel group of the fabric.
type LinkSpec struct {
	// A, B are the endpoint node names.
	A, B string
	// GBs is the per-channel bandwidth in GB/s (1e9 bytes/s).
	GBs float64
	// LatencyNs is the propagation latency in nanoseconds.
	LatencyNs float64
	// Channels is the number of parallel links in the group (>= 1).
	Channels int
	// Class tags the link's topology tier for per-class stats
	// ("intra-router", "local", "global", "edge", ...; "" is fine).
	Class string
}

// Placement maps ranks onto fabric nodes.
type Placement struct {
	// Kind selects the strategy: "block" fills Nodes in order with
	// ceil(ranks/len(Nodes)) ranks each (the MPI default; Socket is
	// the node index), "per-rank" places rank r on Nodes[r] with
	// Sockets[r] and Hosts[r] (GPU machines).
	Kind string
	// Nodes lists the placement targets (see Kind).
	Nodes []string
	// Sockets gives per-rank socket indices (per-rank kind only).
	Sockets []int
	// Hosts gives per-rank host-staging nodes (per-rank kind only;
	// empty means no host staging).
	Hosts []string
}

// Placement kinds.
const (
	PlaceBlock   = "block"
	PlacePerRank = "per-rank"
)

// Explicit is a literal topology: the link list and placement are
// written out in full. The paper's single-node machines use it.
type Explicit struct {
	Links []LinkSpec
	Place Placement
	// Detours lists candidate intermediate nodes for non-minimal
	// adaptive routes (usually empty on explicit machines).
	Detours []string
}

// Topology declares how a machine's fabric is built: exactly one of
// Explicit, Dragonfly, or FatTree must be set. Routing selects the
// netsim route-choice policy ("" or "minimal" for shortest-path,
// "adaptive" for congestion-aware UGAL-lite with Valiant detours).
type Topology struct {
	Explicit  *Explicit
	Dragonfly *Dragonfly
	FatTree   *FatTree
	Routing   string
}

// Routing policy names accepted by Topology.Routing.
const (
	RoutingMinimal  = "minimal"
	RoutingAdaptive = "adaptive"
)

// Validate checks the spec without building it: exactly one generator,
// a known routing policy, and (via the per-spec validators) link
// parameters netsim would reject at build time. Generated topologies
// reach netsim only through here, so netsim's internal panics on
// non-positive bandwidth or channel counts stay programmer-error
// guards rather than reachable input crashes.
func (t *Topology) Validate() error {
	set := 0
	if t.Explicit != nil {
		set++
	}
	if t.Dragonfly != nil {
		set++
	}
	if t.FatTree != nil {
		set++
	}
	if set != 1 {
		return fmt.Errorf("machine: topology must set exactly one of Explicit/Dragonfly/FatTree, got %d", set)
	}
	switch t.Routing {
	case "", RoutingMinimal, RoutingAdaptive:
	default:
		return fmt.Errorf("machine: unknown routing policy %q", t.Routing)
	}
	links, place, _, err := t.expand()
	if err != nil {
		return err
	}
	return validateExpansion(links, place)
}

// expand lowers the spec to the common link-list + placement form.
func (t *Topology) expand() (links []LinkSpec, place Placement, detours []string, err error) {
	switch {
	case t.Explicit != nil:
		return t.Explicit.Links, t.Explicit.Place, t.Explicit.Detours, nil
	case t.Dragonfly != nil:
		return t.Dragonfly.expand()
	case t.FatTree != nil:
		return t.FatTree.expand()
	}
	return nil, Placement{}, nil, fmt.Errorf("machine: empty topology spec")
}

func validateExpansion(links []LinkSpec, place Placement) error {
	for i, l := range links {
		if l.A == "" || l.B == "" || l.A == l.B {
			return fmt.Errorf("machine: link %d: bad endpoints %q-%q", i, l.A, l.B)
		}
		if l.GBs <= 0 {
			return fmt.Errorf("machine: link %d (%s-%s): bandwidth must be positive, got %v GB/s", i, l.A, l.B, l.GBs)
		}
		if l.LatencyNs < 0 {
			return fmt.Errorf("machine: link %d (%s-%s): negative latency %v ns", i, l.A, l.B, l.LatencyNs)
		}
		if l.Channels < 1 {
			return fmt.Errorf("machine: link %d (%s-%s): channels must be >= 1, got %d", i, l.A, l.B, l.Channels)
		}
	}
	switch place.Kind {
	case PlaceBlock:
		if len(place.Nodes) == 0 {
			return fmt.Errorf("machine: block placement needs nodes")
		}
	case PlacePerRank:
		if len(place.Nodes) == 0 {
			return fmt.Errorf("machine: per-rank placement needs nodes")
		}
		if len(place.Sockets) != len(place.Nodes) {
			return fmt.Errorf("machine: per-rank placement: %d sockets for %d nodes", len(place.Sockets), len(place.Nodes))
		}
		if len(place.Hosts) != 0 && len(place.Hosts) != len(place.Nodes) {
			return fmt.Errorf("machine: per-rank placement: %d hosts for %d nodes", len(place.Hosts), len(place.Nodes))
		}
	default:
		return fmt.Errorf("machine: unknown placement kind %q", place.Kind)
	}
	return nil
}

// Build validates the spec and materializes the fabric and the
// placements for `ranks` ranks.
func (t *Topology) Build(ranks int) (*netsim.Network, []Place, error) {
	links, place, detours, err := t.expand()
	if err != nil {
		return nil, nil, err
	}
	if err := validateExpansion(links, place); err != nil {
		return nil, nil, err
	}
	n := netsim.New()
	for _, l := range links {
		n.AddClassLink(l.A, l.B, l.Class, l.GBs*gb, ns(l.LatencyNs), l.Channels)
	}
	if t.Routing == RoutingAdaptive {
		n.SetRouting(netsim.RouteAdaptive)
	}
	for _, d := range detours {
		n.AddDetour(d)
	}
	places, err := place.place(ranks)
	if err != nil {
		return nil, nil, err
	}
	for _, p := range places {
		if !n.HasNode(p.Node) {
			return nil, nil, fmt.Errorf("machine: placement node %q is not in the fabric", p.Node)
		}
		if p.Host != "" && !n.HasNode(p.Host) {
			return nil, nil, fmt.Errorf("machine: placement host %q is not in the fabric", p.Host)
		}
	}
	return n, places, nil
}

// Capacity returns the rank capacity the placement can hold: per-rank
// placements hold exactly len(Nodes) ranks; block placements have no
// inherent bound (Config.MaxRanks caps them).
func (t *Topology) Capacity() (int, bool) {
	_, place, _, err := t.expand()
	if err != nil || place.Kind != PlacePerRank {
		return 0, false
	}
	return len(place.Nodes), true
}

// Metrics returns the analytic topology metrics of a parametric spec.
// Explicit topologies are single nodes with no fabric-scale metrics,
// so they report an error.
func (t *Topology) Metrics() (TopoMetrics, error) {
	switch {
	case t.Dragonfly != nil:
		return t.Dragonfly.Metrics()
	case t.FatTree != nil:
		return t.FatTree.Metrics()
	default:
		return TopoMetrics{}, fmt.Errorf("machine: explicit topologies carry no analytic metrics")
	}
}

// place realizes the placement for `ranks` ranks.
func (p *Placement) place(ranks int) ([]Place, error) {
	places := make([]Place, ranks)
	switch p.Kind {
	case PlaceBlock:
		per := (ranks + len(p.Nodes) - 1) / len(p.Nodes)
		for r := range places {
			i := r / per
			if i > len(p.Nodes)-1 {
				i = len(p.Nodes) - 1
			}
			places[r] = Place{Node: p.Nodes[i], Socket: i}
		}
	case PlacePerRank:
		if ranks > len(p.Nodes) {
			return nil, fmt.Errorf("machine: %d ranks exceed the %d per-rank placement slots", ranks, len(p.Nodes))
		}
		for r := range places {
			pl := Place{Node: p.Nodes[r], Socket: p.Sockets[r]}
			if len(p.Hosts) > 0 {
				pl.Host = p.Hosts[r]
			}
			places[r] = pl
		}
	default:
		return nil, fmt.Errorf("machine: unknown placement kind %q", p.Kind)
	}
	return places, nil
}

// fingerprinting -------------------------------------------------------------

// appendFingerprint extends the Config fingerprint with every semantic
// topology field, tag-prefixed and length-delimited like the rest of
// the encoding (machine.go). Two different parameterizations — even of
// the same generator — therefore always produce distinct pointcache
// keys; the reflection completeness test in pointcache walks these
// structs and fails if a new field is added without extending this.
func (t *Topology) appendFingerprint(b []byte) []byte {
	b = appendStr(b, "topo.routing", t.Routing)
	b = appendBool(b, "topo.explicit", t.Explicit != nil)
	if t.Explicit != nil {
		b = appendLinks(b, t.Explicit.Links)
		b = t.Explicit.Place.appendFingerprint(b)
		b = appendStrSlice(b, "topo.detours", t.Explicit.Detours)
	}
	b = appendBool(b, "topo.dragonfly", t.Dragonfly != nil)
	if t.Dragonfly != nil {
		b = t.Dragonfly.appendFingerprint(b)
	}
	b = appendBool(b, "topo.fattree", t.FatTree != nil)
	if t.FatTree != nil {
		b = t.FatTree.appendFingerprint(b)
	}
	return b
}

func appendLinks(b []byte, links []LinkSpec) []byte {
	b = appendInt(b, "links", int64(len(links)))
	for _, l := range links {
		b = appendStr(b, "l.a", l.A)
		b = appendStr(b, "l.b", l.B)
		b = appendFloat(b, "l.gbs", l.GBs)
		b = appendFloat(b, "l.latns", l.LatencyNs)
		b = appendInt(b, "l.ch", int64(l.Channels))
		b = appendStr(b, "l.class", l.Class)
	}
	return b
}

func (p *Placement) appendFingerprint(b []byte) []byte {
	b = appendStr(b, "place.kind", p.Kind)
	b = appendStrSlice(b, "place.nodes", p.Nodes)
	b = appendInt(b, "place.sockets", int64(len(p.Sockets)))
	for _, s := range p.Sockets {
		b = appendInt(b, "place.socket", int64(s))
	}
	b = appendStrSlice(b, "place.hosts", p.Hosts)
	return b
}

func appendStrSlice(b []byte, tag string, vs []string) []byte {
	b = appendInt(b, tag, int64(len(vs)))
	for _, v := range vs {
		b = appendStr(b, tag+".v", v)
	}
	return b
}
