package machine

import (
	"bytes"
	"fmt"
	"testing"
)

func TestTopologyValidateExactlyOne(t *testing.T) {
	if err := (&Topology{}).Validate(); err == nil {
		t.Fatal("empty topology must fail")
	}
	two := Topology{
		Dragonfly: &dragonfly1K,
		FatTree:   &fatTree1K,
	}
	if err := two.Validate(); err == nil {
		t.Fatal("two generators must fail")
	}
	bad := Topology{Dragonfly: &dragonfly1K, Routing: "ecmp"}
	if err := bad.Validate(); err == nil {
		t.Fatal("unknown routing must fail")
	}
	if err := (&Topology{Dragonfly: &dragonfly1K, Routing: RoutingAdaptive}).Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestTopologyValidateBadSpecs(t *testing.T) {
	cases := []Topology{
		{Dragonfly: &Dragonfly{Groups: 1, RoutersPerGroup: 2, NodesPerRouter: 1, GlobalLinksPerRouter: 1, RanksPerNode: 1, NodeGBs: 1, LocalGBs: 1, GlobalGBs: 1}},
		// 9 groups need 8 global ports; 2 routers x 1 port = 2.
		{Dragonfly: &Dragonfly{Groups: 9, RoutersPerGroup: 2, NodesPerRouter: 1, GlobalLinksPerRouter: 1, RanksPerNode: 1, NodeGBs: 1, LocalGBs: 1, GlobalGBs: 1}},
		// Zero bandwidth must be caught before netsim would panic.
		{Dragonfly: &Dragonfly{Groups: 2, RoutersPerGroup: 2, NodesPerRouter: 1, GlobalLinksPerRouter: 1, RanksPerNode: 1, NodeGBs: 0, LocalGBs: 1, GlobalGBs: 1}},
		{FatTree: &FatTree{Radix: 3, Levels: 3, RanksPerHost: 1, HostGBs: 1, EdgeGBs: 1, CoreGBs: 1}},
		{FatTree: &FatTree{Radix: 4, Levels: 4, RanksPerHost: 1, HostGBs: 1, EdgeGBs: 1, CoreGBs: 1}},
		{FatTree: &FatTree{Radix: 4, Levels: 3, RanksPerHost: 0, HostGBs: 1, EdgeGBs: 1, CoreGBs: 1}},
		{Explicit: &Explicit{
			Links: []LinkSpec{{A: "x", B: "x", GBs: 1, Channels: 1}},
			Place: Placement{Kind: PlaceBlock, Nodes: []string{"x"}},
		}},
		{Explicit: &Explicit{
			Links: []LinkSpec{{A: "x", B: "y", GBs: 1, Channels: 0}},
			Place: Placement{Kind: PlaceBlock, Nodes: []string{"x"}},
		}},
		{Explicit: &Explicit{
			Links: []LinkSpec{{A: "x", B: "y", GBs: 1, Channels: 1}},
			Place: Placement{Kind: "striped", Nodes: []string{"x"}},
		}},
		{Explicit: &Explicit{
			Links: []LinkSpec{{A: "x", B: "y", GBs: 1, Channels: 1}},
			Place: Placement{Kind: PlacePerRank, Nodes: []string{"x"}, Sockets: []int{0, 1}},
		}},
	}
	for i, topo := range cases {
		if err := topo.Validate(); err == nil {
			t.Errorf("case %d: expected validation error", i)
		}
	}
}

func TestBuildRejectsPlacementOutsideFabric(t *testing.T) {
	topo := Topology{Explicit: &Explicit{
		Links: []LinkSpec{{A: "x", B: "y", GBs: 1, Channels: 1}},
		Place: Placement{Kind: PlaceBlock, Nodes: []string{"z"}},
	}}
	if _, _, err := topo.Build(1); err == nil {
		t.Fatal("placement node outside fabric must fail")
	}
}

// Topology properties every generated fabric must satisfy: full
// connectivity, path symmetry, the analytic diameter bound, and a
// positive lookahead bound (the sharded engine's window size).
func testGeneratedProperties(t *testing.T, name string, diameter int) {
	t.Helper()
	cfg, err := Get(name)
	if err != nil {
		t.Fatal(err)
	}
	in, err := cfg.Instantiate(cfg.MaxRanks)
	if err != nil {
		t.Fatal(err)
	}
	if lb := in.Net.LookaheadBound(); lb <= 0 {
		t.Fatalf("%s: LookaheadBound = %v, want > 0", name, lb)
	}
	// Sample compute-node pairs deterministically: all pairs among a
	// strided subset of rank placements.
	var nodes []string
	seen := map[string]bool{}
	for r := 0; r < len(in.Places); r += 37 {
		nd := in.Places[r].Node
		if !seen[nd] {
			seen[nd] = true
			nodes = append(nodes, nd)
		}
	}
	if len(nodes) < 4 {
		t.Fatalf("%s: sample too small (%d nodes)", name, len(nodes))
	}
	for i, a := range nodes {
		if lb := in.Net.MustLookaheadFrom(a); lb <= 0 {
			t.Fatalf("%s: LookaheadFrom(%s) = %v", name, a, lb)
		}
		for _, b := range nodes[i+1:] {
			h := in.Net.Hops(a, b)
			if h < 1 {
				t.Fatalf("%s: %s and %s disconnected (hops %d)", name, a, b, h)
			}
			if h > diameter {
				t.Fatalf("%s: hops(%s,%s) = %d exceeds diameter %d", name, a, b, h, diameter)
			}
			if rh := in.Net.Hops(b, a); rh != h {
				t.Fatalf("%s: asymmetric path %s-%s: %d vs %d", name, a, b, h, rh)
			}
		}
	}
}

func TestDragonflyProperties(t *testing.T) {
	m, err := dragonfly1K.Metrics()
	if err != nil {
		t.Fatal(err)
	}
	if m.Nodes != 256 || m.MaxRanks != 1024 || m.Switches != 64 {
		t.Fatalf("metrics = %+v", m)
	}
	testGeneratedProperties(t, "dragonfly-1k", m.Diameter)
}

func TestFatTreeProperties(t *testing.T) {
	m, err := fatTree1K.Metrics()
	if err != nil {
		t.Fatal(err)
	}
	if m.Nodes != 1024 || m.MaxRanks != 1024 || m.Switches != 16*16+64 {
		t.Fatalf("metrics = %+v", m)
	}
	testGeneratedProperties(t, "fattree-1k", m.Diameter)
}

func TestDragonflyDetours(t *testing.T) {
	_, _, detours, err := dragonfly1K.expand()
	if err != nil {
		t.Fatal(err)
	}
	if len(detours) != dragonfly1K.Groups {
		t.Fatalf("detours = %d, want one per group (%d)", len(detours), dragonfly1K.Groups)
	}
	topo := Topology{Dragonfly: &dragonfly1K, Routing: RoutingAdaptive}
	net, _, err := topo.Build(8)
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range detours {
		if !net.HasNode(d) {
			t.Fatalf("detour %q not in fabric", d)
		}
	}
	// Cross-group routes must carry non-minimal alternatives.
	r, err := net.RouteTo("df:g0r0n0", "df:g5r3n1")
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Alts()) == 0 {
		t.Fatal("adaptive cross-group route has no alternatives")
	}
	for _, alt := range r.Alts() {
		if alt.Hops() <= r.Hops() {
			t.Fatalf("alt with %d hops not longer than minimal %d", alt.Hops(), r.Hops())
		}
	}
}

func TestDragonflyGlobalWiringBalanced(t *testing.T) {
	// Every group must reach every other group directly, and global
	// port usage must stay within each group's port budget.
	links, _, _, err := dragonfly1K.expand()
	if err != nil {
		t.Fatal(err)
	}
	ports := map[int]int{}
	pairs := map[[2]int]int{}
	for _, l := range links {
		if l.Class != "global" {
			continue
		}
		var gi, gj, ri, rj int
		if _, err := fmt.Sscanf(l.A, "df:g%dr%d", &gi, &ri); err != nil {
			t.Fatal(err)
		}
		if _, err := fmt.Sscanf(l.B, "df:g%dr%d", &gj, &rj); err != nil {
			t.Fatal(err)
		}
		ports[gi]++
		ports[gj]++
		pairs[[2]int{gi, gj}]++
	}
	g := dragonfly1K.Groups
	if len(pairs) != g*(g-1)/2 {
		t.Fatalf("global pairs = %d, want all-to-all %d", len(pairs), g*(g-1)/2)
	}
	budget := dragonfly1K.RoutersPerGroup * dragonfly1K.GlobalLinksPerRouter
	for grp, used := range ports {
		if used > budget {
			t.Fatalf("group %d uses %d global ports, budget %d", grp, used, budget)
		}
	}
}

func TestBlockPlacementMatchesLegacyRule(t *testing.T) {
	// The generic block placement must reproduce the retired
	// per-machine rules at every rank count.
	c, _ := Get("perlmutter-cpu")
	for ranks := 1; ranks <= c.MaxRanks; ranks++ {
		in, err := c.Instantiate(ranks)
		if err != nil {
			t.Fatal(err)
		}
		for r, p := range in.Places {
			s := 0
			if r >= (ranks+1)/2 {
				s = 1
			}
			if want := fmt.Sprintf("pm:s%d", s); p.Node != want || p.Socket != s {
				t.Fatalf("ranks=%d r=%d: place %+v, want %s/%d", ranks, r, p, want, s)
			}
		}
	}
	f, _ := Get("frontier-cpu")
	for _, ranks := range []int{1, 2, 3, 5, 17, 64} {
		in, err := f.Instantiate(ranks)
		if err != nil {
			t.Fatal(err)
		}
		per := (ranks + 3) / 4
		for r, p := range in.Places {
			q := r / per
			if q > 3 {
				q = 3
			}
			if want := fmt.Sprintf("fr:q%d", q); p.Node != want {
				t.Fatalf("ranks=%d r=%d: node %s, want %s", ranks, r, p.Node, want)
			}
		}
	}
}

func TestPerRankCapacity(t *testing.T) {
	c, _ := Get("perlmutter-gpu")
	if cap, ok := c.Topology.Capacity(); !ok || cap != 4 {
		t.Fatalf("capacity = %d, %v", cap, ok)
	}
	topo := c.Topology
	if _, _, err := topo.Build(5); err == nil {
		t.Fatal("5 ranks on a 4-slot per-rank placement must fail")
	}
	b, _ := Get("perlmutter-cpu")
	if _, ok := b.Topology.Capacity(); ok {
		t.Fatal("block placements have no inherent capacity")
	}
}

func TestTopologyFingerprintsDistinct(t *testing.T) {
	// Two parameterizations of the same generator must never produce
	// the same fingerprint bytes (pointcache key safety).
	base := dragonfly1K
	variants := []Dragonfly{base}
	v := base
	v.GlobalLinksPerRouter = 2
	variants = append(variants, v)
	v = base
	v.GlobalGBs = 26
	variants = append(variants, v)
	v = base
	v.RanksPerNode = 8
	variants = append(variants, v)
	var prints [][]byte
	for i := range variants {
		topo := Topology{Dragonfly: &variants[i], Routing: RoutingAdaptive}
		prints = append(prints, topo.appendFingerprint(nil))
	}
	for i := range prints {
		for j := i + 1; j < len(prints); j++ {
			if bytes.Equal(prints[i], prints[j]) {
				t.Fatalf("variants %d and %d collide", i, j)
			}
		}
	}
	// Routing policy is part of the key too.
	a := Topology{Dragonfly: &base, Routing: RoutingAdaptive}
	m := Topology{Dragonfly: &base, Routing: RoutingMinimal}
	if bytes.Equal(a.appendFingerprint(nil), m.appendFingerprint(nil)) {
		t.Fatal("routing policies collide")
	}
}

func TestScaleFamilies(t *testing.T) {
	for _, n := range []int{1024, 10240, 102400} {
		d := DragonflyForRanks(n)
		if d.MaxRanks() < n {
			t.Fatalf("DragonflyForRanks(%d) holds only %d", n, d.MaxRanks())
		}
		if _, err := d.Metrics(); err != nil {
			t.Fatal(err)
		}
		f := FatTreeForRanks(n)
		if f.MaxRanks() < n {
			t.Fatalf("FatTreeForRanks(%d) holds only %d", n, f.MaxRanks())
		}
		if _, err := f.Metrics(); err != nil {
			t.Fatal(err)
		}
	}
}
