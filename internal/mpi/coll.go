package mpi

import (
	"encoding/binary"
	"fmt"
	"math"
)

// Collectives built from the same point-to-point machinery the
// workloads use, with the classic algorithms whose cost shapes the
// Message Roofline predicts: binomial trees for Bcast/Reduce
// (log2(P) latency terms), recursive doubling for Allreduce, a ring
// for Allgather (P-1 bandwidth terms), and pairwise exchange for
// Alltoall. Internal tags live in their own negative range so user
// traffic and barriers never collide.

const collTagBase = -1 << 20

// collTag derives a fresh internal tag for collective round `round`
// of this rank's seq-th collective call.
func (r *Rank) collTag(seq, round int) int {
	return collTagBase - (seq*64 + round)
}

// ReduceOp combines two byte-slices element-wise; out must be
// mutated in place. Payload semantics are the caller's business.
type ReduceOp func(acc, in []byte)

// SumFloat64 is a ReduceOp treating payloads as little-endian float64
// vectors.
func SumFloat64(acc, in []byte) {
	for i := 0; i+8 <= len(acc) && i+8 <= len(in); i += 8 {
		a := f64get(acc[i:])
		b := f64get(in[i:])
		f64put(acc[i:], a+b)
	}
}

// MaxFloat64 keeps the element-wise maximum.
func MaxFloat64(acc, in []byte) {
	for i := 0; i+8 <= len(acc) && i+8 <= len(in); i += 8 {
		a := f64get(acc[i:])
		b := f64get(in[i:])
		if b > a {
			f64put(acc[i:], b)
		}
	}
}

// Bcast broadcasts root's data to every rank using a binomial tree
// (ceil(log2 P) rounds) and returns the received payload (root gets
// its own buffer back).
func (r *Rank) Bcast(root int, data []byte) []byte {
	p := r.Size()
	if p == 1 {
		return data
	}
	seq := r.nextCollSeq()
	// Rotate so the root is virtual rank 0.
	vrank := (r.id - root + p) % p
	var buf []byte
	if vrank == 0 {
		buf = append([]byte(nil), data...)
	}
	// Receive from the parent: the highest set bit of vrank.
	if vrank != 0 {
		mask := 1
		for mask <= vrank {
			mask <<= 1
		}
		mask >>= 1
		parent := ((vrank - mask) + root) % p
		req := r.Recv(parent, r.collTag(seq, bitLen(mask)))
		buf = req.Data
	}
	// Forward to children: vrank + 2^k for growing k.
	start := 1
	if vrank != 0 {
		m := 1
		for m <= vrank {
			m <<= 1
		}
		start = m
	}
	for mask := start; vrank+mask < p; mask <<= 1 {
		child := ((vrank + mask) + root) % p
		r.Isend(child, r.collTag(seq, bitLen(mask)), buf)
	}
	return buf
}

func bitLen(v int) int {
	n := 0
	for v > 0 {
		v >>= 1
		n++
	}
	return n
}

// Reduce combines every rank's contribution at root with op, via a
// binomial tree, and returns the result at root (nil elsewhere).
func (r *Rank) Reduce(root int, data []byte, op ReduceOp) []byte {
	p := r.Size()
	acc := append([]byte(nil), data...)
	if p == 1 {
		return acc
	}
	seq := r.nextCollSeq()
	vrank := (r.id - root + p) % p
	for mask := 1; mask < p; mask <<= 1 {
		if vrank&mask != 0 {
			parent := ((vrank - mask) + root) % p
			r.Isend(parent, r.collTag(seq, bitLen(mask)), acc)
			return nil
		}
		if vrank+mask < p {
			child := ((vrank + mask) + root) % p
			req := r.Recv(child, r.collTag(seq, bitLen(mask)))
			op(acc, req.Data)
		}
	}
	if r.id == root {
		return acc
	}
	return nil
}

// Allreduce combines every rank's contribution with op and returns
// the result everywhere, using recursive doubling when P is a power
// of two and reduce+bcast otherwise.
func (r *Rank) Allreduce(data []byte, op ReduceOp) []byte {
	p := r.Size()
	acc := append([]byte(nil), data...)
	if p == 1 {
		return acc
	}
	if p&(p-1) != 0 {
		res := r.Reduce(0, acc, op)
		if r.id == 0 {
			return r.Bcast(0, res)
		}
		return r.Bcast(0, nil)
	}
	seq := r.nextCollSeq()
	for mask := 1; mask < p; mask <<= 1 {
		peer := r.id ^ mask
		tag := r.collTag(seq, bitLen(mask))
		r.Isend(peer, tag, acc)
		req := r.Recv(peer, tag)
		op(acc, req.Data)
	}
	return acc
}

// Allgather concatenates every rank's contribution in rank order via
// a ring (P-1 steps, bandwidth-optimal) and returns the full vector.
// All contributions must have the same length.
func (r *Rank) Allgather(data []byte) []byte {
	p := r.Size()
	n := len(data)
	out := make([]byte, n*p)
	copy(out[r.id*n:], data)
	if p == 1 {
		return out
	}
	seq := r.nextCollSeq()
	right := (r.id + 1) % p
	left := (r.id - 1 + p) % p
	// Pass block (id - step) around the ring.
	cur := append([]byte(nil), data...)
	curOwner := r.id
	for step := 0; step < p-1; step++ {
		tag := r.collTag(seq, step)
		r.Isend(right, tag, cur)
		req := r.Recv(left, tag)
		curOwner = (curOwner - 1 + p) % p
		cur = req.Data
		if len(cur) != n {
			panic(fmt.Sprintf("mpi: Allgather contribution size %d != %d", len(cur), n))
		}
		copy(out[curOwner*n:], cur)
	}
	return out
}

// Alltoall delivers blocks[i] to rank i and returns the blocks
// received from every rank (own block included), using pairwise
// exchange over P-1 rounds.
func (r *Rank) Alltoall(blocks [][]byte) [][]byte {
	p := r.Size()
	if len(blocks) != p {
		panic(fmt.Sprintf("mpi: Alltoall needs %d blocks, got %d", p, len(blocks)))
	}
	out := make([][]byte, p)
	out[r.id] = append([]byte(nil), blocks[r.id]...)
	if p == 1 {
		return out
	}
	seq := r.nextCollSeq()
	for step := 1; step < p; step++ {
		// XOR schedule when P is a power of two, shifted otherwise.
		var peer int
		if p&(p-1) == 0 {
			peer = r.id ^ step
		} else {
			peer = (r.id + step) % p
		}
		tag := r.collTag(seq, step)
		r.Isend(peer, tag, blocks[peer])
		var req *Request
		if p&(p-1) == 0 {
			req = r.Recv(peer, tag)
		} else {
			req = r.Recv((r.id-step+p)%p, tag)
		}
		out[req.Src] = req.Data
	}
	return out
}

// Gather collects every rank's equally sized contribution at root (in
// rank order); non-roots return nil.
func (r *Rank) Gather(root int, data []byte) []byte {
	p := r.Size()
	seq := r.nextCollSeq()
	if r.id != root {
		r.Isend(root, r.collTag(seq, 0), data)
		return nil
	}
	out := make([]byte, len(data)*p)
	copy(out[root*len(data):], data)
	for i := 0; i < p-1; i++ {
		req := r.Recv(AnySource, r.collTag(seq, 0))
		copy(out[req.Src*len(req.Data):], req.Data)
	}
	return out
}

// Scatter distributes root's blocks (one per rank) and returns this
// rank's block.
func (r *Rank) Scatter(root int, blocks [][]byte) []byte {
	p := r.Size()
	seq := r.nextCollSeq()
	if r.id == root {
		if len(blocks) != p {
			panic(fmt.Sprintf("mpi: Scatter needs %d blocks, got %d", p, len(blocks)))
		}
		for i := 0; i < p; i++ {
			if i == root {
				continue
			}
			r.Isend(i, r.collTag(seq, 0), blocks[i])
		}
		return append([]byte(nil), blocks[root]...)
	}
	return r.Recv(root, r.collTag(seq, 0)).Data
}

// nextCollSeq hands out the per-rank collective sequence number; all
// ranks call collectives in the same order (MPI's usual discipline),
// so equal seq values line up across ranks.
func (r *Rank) nextCollSeq() int {
	s := r.collSeq
	r.collSeq++
	return s
}

func f64get(b []byte) float64 {
	return math.Float64frombits(binary.LittleEndian.Uint64(b))
}

func f64put(b []byte, v float64) {
	binary.LittleEndian.PutUint64(b, math.Float64bits(v))
}
