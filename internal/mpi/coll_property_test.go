package mpi

import (
	"bytes"
	"math/rand"
	"testing"

	"msgroofline/internal/sim"
)

func encodeF64s(v []float64) []byte {
	out := make([]byte, 8*len(v))
	for i, f := range v {
		f64put(out[8*i:], f)
	}
	return out
}

// TestCollectivesMatchSequentialReference randomizes rank count,
// payloads, user tags and the engine schedule, and requires every
// collective to come out byte-equal to a sequential in-process
// reference. Payloads are small integer-valued float64s so the
// reduction result is exact regardless of tree shape. Each trial also
// threads user-tagged point-to-point traffic (including tags far into
// the positive range) through the middle of the collective sequence:
// the negative collective/barrier tag ranges must never cross-match
// user receives.
func TestCollectivesMatchSequentialReference(t *testing.T) {
	rng := rand.New(rand.NewSource(20260806))
	for trial := 0; trial < 12; trial++ {
		p := 2 + rng.Intn(7)   // 2..8: power-of-two and odd topologies
		vn := 1 + rng.Intn(12) // vector length
		seed := rng.Uint64()
		broot := rng.Intn(p)
		groot := rng.Intn(p)
		sroot := rng.Intn(p)
		utag := rng.Intn(1 << 28) // user tag, always >= 0

		vals := make([][]float64, p)
		for r := range vals {
			vals[r] = make([]float64, vn)
			for i := range vals[r] {
				vals[r][i] = float64(rng.Intn(2001) - 1000)
			}
		}
		// Sequential reference.
		sum := make([]float64, vn)
		max := make([]float64, vn)
		copy(max, vals[0])
		for r := 0; r < p; r++ {
			for i, v := range vals[r] {
				sum[i] += v
				if v > max[i] {
					max[i] = v
				}
			}
		}
		var gathered []byte
		for r := 0; r < p; r++ {
			gathered = append(gathered, encodeF64s(vals[r])...)
		}
		a2aBlock := func(src, dst int) []byte {
			return encodeF64s([]float64{float64(src*64 + dst)})
		}

		c := newComm(t, "perlmutter-cpu", p)
		c.World().SetPerturbation(&sim.Perturbation{
			Seed: seed, Reorder: true, MaxJitter: 2 * sim.Microsecond,
		})
		type got struct {
			allsum, allmax, bcast, allg, reduce, gather, scatter []byte
			a2a                                                  [][]byte
			ring                                                 []byte
		}
		outs := make([]got, p)
		drained := make([]bool, p)
		err := c.Launch(func(r *Rank) {
			me := r.Rank()
			g := &outs[me]
			mine := encodeF64s(vals[me])
			// User traffic posted before any collective runs.
			ringIn := r.Irecv((me-1+p)%p, utag)
			r.Isend((me+1)%p, utag, encodeF64s([]float64{float64(9000 + me)}))

			g.allsum = r.Allreduce(mine, SumFloat64)
			g.allmax = r.Allreduce(mine, MaxFloat64)
			var bdata []byte
			if me == broot {
				bdata = encodeF64s(vals[broot])
			}
			g.bcast = r.Bcast(broot, bdata)
			g.allg = r.Allgather(mine)
			blocks := make([][]byte, p)
			for d := 0; d < p; d++ {
				blocks[d] = a2aBlock(me, d)
			}
			g.a2a = r.Alltoall(blocks)
			g.reduce = r.Reduce(groot, mine, SumFloat64)
			g.gather = r.Gather(groot, mine)
			var sblocks [][]byte
			if me == sroot {
				sblocks = make([][]byte, p)
				for d := 0; d < p; d++ {
					sblocks[d] = encodeF64s([]float64{float64(7000 + d)})
				}
			}
			g.scatter = r.Scatter(sroot, sblocks)
			r.Barrier()
			r.Wait(ringIn)
			g.ring = ringIn.Data
			r.Barrier()
			drained[me] = r.PendingUnexpected() == 0 && r.PendingPosted() == 0 &&
				r.PendingOutOfOrder() == 0
		})
		if err != nil {
			t.Fatalf("trial %d (p=%d seed=%d): %v", trial, p, seed, err)
		}
		expect := func(rank int, what string, got, want []byte) {
			if !bytes.Equal(got, want) {
				t.Errorf("trial %d (p=%d seed=%d) rank %d: %s diverged from sequential reference",
					trial, p, seed, rank, what)
			}
		}
		for me := 0; me < p; me++ {
			g := outs[me]
			expect(me, "allreduce(sum)", g.allsum, encodeF64s(sum))
			expect(me, "allreduce(max)", g.allmax, encodeF64s(max))
			expect(me, "bcast", g.bcast, encodeF64s(vals[broot]))
			expect(me, "allgather", g.allg, gathered)
			for s := 0; s < p; s++ {
				expect(me, "alltoall", g.a2a[s], a2aBlock(s, me))
			}
			if me == groot {
				expect(me, "reduce", g.reduce, encodeF64s(sum))
				expect(me, "gather", g.gather, gathered)
			} else if g.reduce != nil || g.gather != nil {
				t.Errorf("trial %d rank %d: non-root got reduce/gather payload", trial, me)
			}
			expect(me, "scatter", g.scatter, encodeF64s([]float64{float64(7000 + me)}))
			expect(me, "user ring", g.ring, encodeF64s([]float64{float64(9000 + (me-1+p)%p)}))
			if !drained[me] {
				t.Errorf("trial %d rank %d: queues not drained", trial, me)
			}
		}
	}
}

// TestInternalTagRangesDisjoint pins the reserved tag layout: user
// tags are >= 0; barrier tags live in (collTagBase, barrierTagBase]
// even after many barriers (wraparound); collective tags live at or
// below collTagBase. Any overlap would let internal traffic match a
// user-posted receive.
func TestInternalTagRangesDisjoint(t *testing.T) {
	r := &Rank{}
	for seq := 0; seq < 1<<14; seq++ {
		for round := 0; round < 64; round++ {
			bt := barrierTagBase - (seq*64+round)%barrierTagSpan
			if bt >= 0 || bt <= collTagBase {
				t.Fatalf("barrier tag %d (seq=%d round=%d) escapes (collTagBase, 0)", bt, seq, round)
			}
			ct := r.collTag(seq, round)
			if ct > collTagBase {
				t.Fatalf("collective tag %d (seq=%d round=%d) above collTagBase %d", ct, seq, round, collTagBase)
			}
		}
	}
}
