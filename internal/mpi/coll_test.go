package mpi

import (
	"bytes"
	"encoding/binary"
	"math"
	"testing"
)

func f64s(vs ...float64) []byte {
	out := make([]byte, 8*len(vs))
	for i, v := range vs {
		binary.LittleEndian.PutUint64(out[8*i:], math.Float64bits(v))
	}
	return out
}

func fromBytes(b []byte) []float64 {
	out := make([]float64, len(b)/8)
	for i := range out {
		out[i] = math.Float64frombits(binary.LittleEndian.Uint64(b[8*i:]))
	}
	return out
}

func TestBcastAllRoots(t *testing.T) {
	for _, p := range []int{1, 2, 5, 8, 16} {
		for root := 0; root < p; root += maxInt(1, p/3) {
			c := newComm(t, "perlmutter-cpu", p)
			payload := []byte{9, 9, byte(root)}
			got := make([][]byte, p)
			err := c.Launch(func(r *Rank) {
				var data []byte
				if r.Rank() == root {
					data = payload
				}
				got[r.Rank()] = r.Bcast(root, data)
			})
			if err != nil {
				t.Fatalf("P=%d root=%d: %v", p, root, err)
			}
			for rk := range got {
				if !bytes.Equal(got[rk], payload) {
					t.Fatalf("P=%d root=%d rank=%d got %v", p, root, rk, got[rk])
				}
			}
		}
	}
}

func TestReduceSum(t *testing.T) {
	for _, p := range []int{1, 3, 4, 7, 8} {
		c := newComm(t, "perlmutter-cpu", p)
		var rootResult []float64
		err := c.Launch(func(r *Rank) {
			contrib := f64s(float64(r.Rank()+1), 100)
			res := r.Reduce(0, contrib, SumFloat64)
			if r.Rank() == 0 {
				rootResult = fromBytes(res)
			} else if res != nil {
				t.Errorf("non-root got non-nil reduce result")
			}
		})
		if err != nil {
			t.Fatalf("P=%d: %v", p, err)
		}
		wantSum := float64(p*(p+1)) / 2
		if rootResult[0] != wantSum || rootResult[1] != float64(100*p) {
			t.Fatalf("P=%d: reduce = %v, want [%v %v]", p, rootResult, wantSum, 100*p)
		}
	}
}

func TestAllreduceSumAndMax(t *testing.T) {
	for _, p := range []int{2, 4, 6, 8} { // mixes power-of-two and not
		c := newComm(t, "perlmutter-cpu", p)
		sums := make([]float64, p)
		maxs := make([]float64, p)
		err := c.Launch(func(r *Rank) {
			me := float64(r.Rank() + 1)
			sums[r.Rank()] = fromBytes(r.Allreduce(f64s(me), SumFloat64))[0]
			maxs[r.Rank()] = fromBytes(r.Allreduce(f64s(me), MaxFloat64))[0]
		})
		if err != nil {
			t.Fatalf("P=%d: %v", p, err)
		}
		want := float64(p*(p+1)) / 2
		for rk := range sums {
			if sums[rk] != want {
				t.Fatalf("P=%d rank=%d allreduce-sum = %v, want %v", p, rk, sums[rk], want)
			}
			if maxs[rk] != float64(p) {
				t.Fatalf("P=%d rank=%d allreduce-max = %v, want %v", p, rk, maxs[rk], float64(p))
			}
		}
	}
}

func TestAllgatherRing(t *testing.T) {
	for _, p := range []int{1, 2, 5, 8} {
		c := newComm(t, "perlmutter-cpu", p)
		outs := make([][]byte, p)
		err := c.Launch(func(r *Rank) {
			outs[r.Rank()] = r.Allgather([]byte{byte(r.Rank()), byte(r.Rank() + 100)})
		})
		if err != nil {
			t.Fatalf("P=%d: %v", p, err)
		}
		for rk, out := range outs {
			if len(out) != 2*p {
				t.Fatalf("P=%d rank=%d len=%d", p, rk, len(out))
			}
			for i := 0; i < p; i++ {
				if out[2*i] != byte(i) || out[2*i+1] != byte(i+100) {
					t.Fatalf("P=%d rank=%d out=%v", p, rk, out)
				}
			}
		}
	}
}

func TestAlltoall(t *testing.T) {
	for _, p := range []int{1, 2, 4, 5, 8} {
		c := newComm(t, "perlmutter-cpu", p)
		ok := make([]bool, p)
		err := c.Launch(func(r *Rank) {
			blocks := make([][]byte, p)
			for i := range blocks {
				blocks[i] = []byte{byte(r.Rank()), byte(i)}
			}
			out := r.Alltoall(blocks)
			good := true
			for i := range out {
				// Block from rank i carries (i, myRank).
				if len(out[i]) != 2 || out[i][0] != byte(i) || out[i][1] != byte(r.Rank()) {
					good = false
				}
			}
			ok[r.Rank()] = good
		})
		if err != nil {
			t.Fatalf("P=%d: %v", p, err)
		}
		for rk, g := range ok {
			if !g {
				t.Fatalf("P=%d rank=%d received wrong blocks", p, rk)
			}
		}
	}
}

func TestGatherScatter(t *testing.T) {
	const p = 6
	c := newComm(t, "perlmutter-cpu", p)
	var gathered []byte
	scattered := make([][]byte, p)
	err := c.Launch(func(r *Rank) {
		g := r.Gather(2, []byte{byte(r.Rank() * 3)})
		if r.Rank() == 2 {
			gathered = g
		} else if g != nil {
			t.Errorf("non-root gather returned data")
		}
		var blocks [][]byte
		if r.Rank() == 0 {
			blocks = make([][]byte, p)
			for i := range blocks {
				blocks[i] = []byte{byte(i), byte(i * 2)}
			}
		}
		scattered[r.Rank()] = r.Scatter(0, blocks)
	})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < p; i++ {
		if gathered[i] != byte(i*3) {
			t.Fatalf("gathered = %v", gathered)
		}
		if scattered[i][0] != byte(i) || scattered[i][1] != byte(i*2) {
			t.Fatalf("scattered[%d] = %v", i, scattered[i])
		}
	}
}

func TestCollectivesInterleaveWithP2P(t *testing.T) {
	// Collective internal tags must never swallow user messages.
	c := newComm(t, "perlmutter-cpu", 4)
	var userByte byte
	err := c.Launch(func(r *Rank) {
		if r.Rank() == 0 {
			r.Isend(3, 42, []byte{77})
		}
		r.Allreduce(f64s(1), SumFloat64)
		r.Barrier()
		if r.Rank() == 3 {
			userByte = r.Recv(0, 42).Data[0]
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	if userByte != 77 {
		t.Fatalf("user message lost: %d", userByte)
	}
}

func TestBcastLatencyScalesLogarithmically(t *testing.T) {
	// A binomial bcast costs ~ceil(log2 P) latencies: P=16 should be
	// about 4x a single hop, far below 15x.
	elapsed := func(p int) float64 {
		c := newComm(t, "perlmutter-cpu", p)
		err := c.Launch(func(r *Rank) {
			var d []byte
			if r.Rank() == 0 {
				d = []byte{1}
			}
			r.Bcast(0, d)
		})
		if err != nil {
			t.Fatal(err)
		}
		return c.Elapsed().Microseconds()
	}
	t2 := elapsed(2)
	t16 := elapsed(16)
	if ratio := t16 / t2; ratio > 6 {
		t.Fatalf("bcast P=16/P=2 ratio = %.1f, want ~log scaling", ratio)
	}
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}
