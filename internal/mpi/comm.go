// Package mpi provides a simulated Message Passing Interface with the
// two execution models the paper compares:
//
//   - two-sided: tag-matched nonblocking sends and receives
//     (Isend/Irecv/Recv/Wait/Waitall) with an eager protocol and an
//     unexpected-message queue, plus a dissemination Barrier built
//     from real messages so synchronization pays realistic latency;
//   - one-sided (MPI-3 RMA): windows with Put/Get/Accumulate,
//     Win_fence, Win_flush, Win_flush_local, Fetch_and_op and
//     Compare_and_swap (see rma.go).
//
// All costs (per-op overhead, injection gap, software latency, wire
// time, link contention) come from the machine's calibrated transport
// parameters via internal/runtime; this package only implements
// semantics and charges the costs in the right places.
package mpi

import (
	"fmt"

	"msgroofline/internal/machine"
	"msgroofline/internal/runtime"
	"msgroofline/internal/sim"
)

// Wildcards for Recv/Irecv matching.
const (
	// AnySource matches a message from any rank.
	AnySource = -1
	// AnyTag matches a message with any tag.
	AnyTag = -1
)

// internal tags are negative and spaced so user tags (>= 0) never
// collide with barrier traffic. Barrier tags count down from
// barrierTagBase and wrap before reaching the collective tag range
// (collTagBase, coll.go); the wrap is safe because a barrier tag is
// consumed within its own barrier, long before ~16k later barriers
// could reissue it.
const (
	barrierTagBase = -2
	barrierTagSpan = -collTagBase + barrierTagBase - 64
)

// Comm is a communicator spanning every rank of a simulated world.
type Comm struct {
	world  *runtime.World
	two    machine.TransportParams
	one    machine.TransportParams
	has1s  bool
	ntf    machine.TransportParams
	hasNtf bool
	ranks  []*Rank
	wins   []*Win
	// sendHook, when set, observes every user-level two-sided message
	// at delivery time (internal barrier traffic is excluded).
	sendHook MsgHook
	// debugUnordered disables the per-(source, destination) arrival
	// resequencer, exposing raw (possibly fault-reordered) network
	// arrival order to the matching queue. Mutation-testing knob for
	// the conformance harness — never set in real runs.
	debugUnordered bool
}

// SetDebugUnordered turns off non-overtaking resequencing so the
// conformance suite can prove its oracles catch ordering bugs.
func (c *Comm) SetDebugUnordered(v bool) { c.debugUnordered = v }

// MsgHook observes a message: source, destination, payload size, the
// time the sender issued it, and the time the last byte was delivered.
type MsgHook func(src, dst int, bytes int64, issue, deliver sim.Time)

// SetSendHook installs a hook observing user two-sided messages
// (tag >= 0) at delivery. Call before Launch.
func (c *Comm) SetSendHook(h MsgHook) { c.sendHook = h }

// NewComm builds a communicator with n ranks on the named machine
// configuration. The machine must offer two-sided MPI (CPU machines);
// one-sided operations additionally require the OneSided transport.
func NewComm(cfg *machine.Config, n int) (*Comm, error) {
	return NewCommSharded(cfg, n, 1)
}

// NewCommSharded is NewComm with a -shards worker count for the
// underlying world (see runtime.NewWorldSharded: ranks are grouped by
// fabric node on the coupled conservative-lookahead engine, and
// shards sets how many node groups execute concurrently; results are
// byte-identical at every shard count).
func NewCommSharded(cfg *machine.Config, n, shards int) (*Comm, error) {
	two, ok := cfg.Params(machine.TwoSided)
	if !ok {
		return nil, fmt.Errorf("mpi: machine %s has no two-sided transport", cfg.Name)
	}
	w, err := runtime.NewWorldSharded(cfg, n, shards)
	if err != nil {
		return nil, err
	}
	c := &Comm{world: w, two: two}
	c.one, c.has1s = cfg.Params(machine.OneSided)
	c.ntf, c.hasNtf = cfg.Params(machine.NotifiedAccess)
	for r := 0; r < n; r++ {
		c.ranks = append(c.ranks, &Rank{
			comm:    c,
			id:      r,
			ep:      w.Endpoint(r),
			arrived: sim.NewCond(w.EngineOf(r)),
			sendSeq: make([]uint64, n),
			recvSeq: make([]uint64, n),
			ooo:     make([][]*envelope, n),
		})
	}
	return c, nil
}

// Size returns the number of ranks.
func (c *Comm) Size() int { return len(c.ranks) }

// World exposes the underlying simulated world (for stats and
// engine-level inspection).
func (c *Comm) World() *runtime.World { return c.world }

// Digest folds the per-group event-order digests of the underlying
// world into one summary of the run (see runtime.World.Digest).
func (c *Comm) Digest() uint64 { return c.world.Digest() }

// Launch spawns one simulated process per rank running body and
// drives the simulation to completion. It returns the engine error
// (nil, or a deadlock report naming the stuck ranks).
func (c *Comm) Launch(body func(r *Rank)) error {
	for _, r := range c.ranks {
		rank := r
		c.world.Spawn(rank.id, fmt.Sprintf("rank%d", rank.id), func(p *sim.Proc) {
			rank.proc = p
			body(rank)
		})
	}
	return c.world.Run()
}

// Elapsed returns the simulated time consumed so far.
func (c *Comm) Elapsed() sim.Time { return c.world.Elapsed() }

// Rank is one MPI process. All methods must be called from the rank's
// own simulated process (inside the Launch body).
type Rank struct {
	comm *Comm
	id   int
	ep   *runtime.Endpoint
	proc *sim.Proc

	arrived    *sim.Cond   // signaled on message delivery to this rank
	unexpected []*envelope // delivered but unmatched messages, FIFO
	posted     []*Request  // posted receives not yet matched, FIFO

	// Non-overtaking resequencer. MPI guarantees messages between one
	// (source, destination) pair match in send order; the fault-injected
	// network may deliver them out of order (a retransmitted message is
	// legally overtaken). sendSeq[d] numbers sends to rank d, recvSeq[s]
	// is the next sequence admitted from rank s, and ooo[s] buffers
	// early arrivals until the gap fills. On an in-order network every
	// arrival is admitted immediately, so default behavior is unchanged.
	sendSeq []uint64
	recvSeq []uint64
	ooo     [][]*envelope

	barrierSeq int
	collSeq    int
	sendCount  int64
	recvCount  int64
}

// envelope is a delivered two-sided message awaiting a matching recv.
type envelope struct {
	src, tag int
	seq      uint64 // per-(src, dst) send order, for resequencing
	data     []byte
	at       sim.Time
}

// Rank returns this process's rank id.
func (r *Rank) Rank() int { return r.id }

// Size returns the communicator size.
func (r *Rank) Size() int { return r.comm.Size() }

// Proc returns the simulated process driving this rank.
func (r *Rank) Proc() *sim.Proc { return r.proc }

// Now returns the current simulated time.
func (r *Rank) Now() sim.Time { return r.proc.Now() }

// Compute blocks the rank for d of local computation.
func (r *Rank) Compute(d sim.Time) { r.proc.Sleep(d) }

// Counts reports how many messages this rank has sent and received.
func (r *Rank) Counts() (sent, received int64) {
	return r.sendCount, r.recvCount
}

// PendingUnexpected returns the number of delivered-but-unmatched
// messages queued at this rank (conformance oracles check it drains).
func (r *Rank) PendingUnexpected() int { return len(r.unexpected) }

// PendingPosted returns the number of posted receives not yet matched.
func (r *Rank) PendingPosted() int { return len(r.posted) }

// PendingOutOfOrder returns the number of arrivals held back by the
// non-overtaking resequencer (always zero on an in-order network).
func (r *Rank) PendingOutOfOrder() int {
	n := 0
	for _, q := range r.ooo {
		n += len(q)
	}
	return n
}

// Barrier synchronizes all ranks with a dissemination barrier built
// from ceil(log2(P)) rounds of real 1-byte messages, so its cost
// scales like log(P) x latency exactly as a software MPI_Barrier does.
func (r *Rank) Barrier() {
	p := r.comm.Size()
	if p == 1 {
		r.ep.ChargeOp(r.proc, r.comm.two)
		return
	}
	seq := r.barrierSeq
	r.barrierSeq++
	round := 0
	for k := 1; k < p; k <<= 1 {
		tag := barrierTagBase - (seq*64+round)%barrierTagSpan
		dst := (r.id + k) % p
		src := (r.id - k + p) % p
		r.Isend(dst, tag, []byte{1})
		r.Recv(src, tag)
		round++
	}
}
