package mpi_test

import (
	"encoding/binary"
	"fmt"
	"math"

	"msgroofline/internal/machine"
	"msgroofline/internal/mpi"
)

// ExampleComm_Launch shows the minimal two-sided program: a ring of
// ranks passing a token.
func ExampleComm_Launch() {
	cfg, _ := machine.Get("perlmutter-cpu")
	c, _ := mpi.NewComm(cfg, 4)
	err := c.Launch(func(r *mpi.Rank) {
		next := (r.Rank() + 1) % r.Size()
		prev := (r.Rank() - 1 + r.Size()) % r.Size()
		r.Isend(next, 0, []byte{byte(r.Rank())})
		req := r.Recv(prev, 0)
		if r.Rank() == 0 {
			fmt.Printf("rank 0 received token from rank %d\n", req.Data[0])
		}
	})
	fmt.Println("err:", err)
	// Output:
	// rank 0 received token from rank 3
	// err: <nil>
}

// ExampleRank_Allreduce demonstrates a collective.
func ExampleRank_Allreduce() {
	cfg, _ := machine.Get("perlmutter-cpu")
	c, _ := mpi.NewComm(cfg, 8)
	var rank0Sum float64
	_ = c.Launch(func(r *mpi.Rank) {
		contrib := make([]byte, 8)
		// Each rank contributes its rank id + 1 as a float64.
		for i, b := range f64bytes(float64(r.Rank() + 1)) {
			contrib[i] = b
		}
		out := r.Allreduce(contrib, mpi.SumFloat64)
		if r.Rank() == 0 {
			rank0Sum = f64from(out)
		}
	})
	fmt.Printf("sum over 8 ranks: %.0f\n", rank0Sum)
	// Output:
	// sum over 8 ranks: 36
}

// ExampleRank_PutNotify shows the extension operation: a fused
// one-sided put with a hardware notification.
func ExampleRank_PutNotify() {
	cfg, _ := machine.Get("perlmutter-cpu")
	c, _ := mpi.NewComm(cfg, 2)
	w, _ := c.NewWin(64)
	_ = c.Launch(func(r *mpi.Rank) {
		switch r.Rank() {
		case 0:
			_ = r.PutNotify(w, 1, 0, []byte("hello"), 32, 1)
		case 1:
			r.WaitNotify(w, 32, 1)
			fmt.Printf("rank 1 sees %q\n", w.Local(1)[:5])
		}
	})
	// Output:
	// rank 1 sees "hello"
}

func f64bytes(v float64) []byte {
	out := make([]byte, 8)
	binary.LittleEndian.PutUint64(out, math.Float64bits(v))
	return out
}

func f64from(b []byte) float64 {
	return math.Float64frombits(binary.LittleEndian.Uint64(b))
}
