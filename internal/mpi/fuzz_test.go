package mpi

import (
	"encoding/binary"
	"fmt"
	"testing"

	"msgroofline/internal/machine"
	"msgroofline/internal/sim"
)

// FuzzMatchQueue fuzzes the receive matching queues: ranks 0 and 2
// stream tagged messages at rank 1, which posts exact-signature
// receives in a fuzz-chosen permutation, with a fuzz-chosen subset of
// them replaced by wildcard (AnySource, AnyTag) receives, all under a
// fuzz-seeded schedule perturbation. Invariants checked:
//
//   - every exact receive completes with the source/tag it asked for;
//   - payloads agree with the matched envelope (no cross-wiring);
//   - per (source, tag) stream, exact receives observe sequence
//     numbers 0..E-1 in posted order and wildcard receives observe the
//     remainder in increasing order (MPI non-overtaking);
//   - every message is matched exactly once and all queues drain.
func FuzzMatchQueue(f *testing.F) {
	f.Add([]byte{}, uint64(1))
	f.Add([]byte{0x07, 0xff, 0x03}, uint64(42))
	f.Add([]byte{9, 9, 9, 9, 9, 9, 9, 9, 9, 9, 9, 9, 9, 9, 9, 9, 9, 9}, uint64(7))
	f.Fuzz(func(t *testing.T, plan []byte, seed uint64) {
		const (
			perStream = 3
			nTags     = 3
		)
		senders := []int{0, 2}
		tags := []int{5, 11, 1 << 19} // user tags, including a large one
		type stream struct{ src, tag int }
		streams := make([]stream, 0, len(senders)*nTags)
		for _, s := range senders {
			for _, tg := range tags {
				streams = append(streams, stream{s, tg})
			}
		}
		total := len(streams) * perStream

		// Derive the receive plan from the fuzz input: a permutation of
		// one exact receive per message, with the first W entries
		// demoted to wildcards.
		rng := seed ^ 0x9e3779b97f4a7c15
		next := func() uint64 {
			rng += 0x9e3779b97f4a7c15
			z := rng
			z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
			z = (z ^ (z >> 27)) * 0x94d049bb133111eb
			return z ^ (z >> 31)
		}
		for _, b := range plan {
			rng ^= uint64(b)
			next()
		}
		order := make([]stream, 0, total)
		for _, s := range streams {
			for k := 0; k < perStream; k++ {
				order = append(order, s)
			}
		}
		for i := len(order) - 1; i > 0; i-- {
			j := int(next() % uint64(i+1))
			order[i], order[j] = order[j], order[i]
		}
		wild := 0
		if len(plan) > 0 {
			wild = int(plan[0]) % (total + 1)
		}

		cfg, err := machine.Get("perlmutter-cpu")
		if err != nil {
			t.Fatal(err)
		}
		c, err := NewComm(cfg, 3)
		if err != nil {
			t.Fatal(err)
		}
		c.World().SetPerturbation(&sim.Perturbation{
			Seed: seed, Reorder: true, MaxJitter: 2 * sim.Microsecond,
		})

		const ackTag = 977
		encode := func(src, tag, k int) []byte {
			buf := make([]byte, 24)
			binary.LittleEndian.PutUint64(buf[0:], uint64(src))
			binary.LittleEndian.PutUint64(buf[8:], uint64(tag))
			binary.LittleEndian.PutUint64(buf[16:], uint64(k))
			return buf
		}
		var errs []string
		failf := func(format string, args ...any) {
			errs = append(errs, fmt.Sprintf(format, args...))
		}
		// seen[stream] collects sequence numbers in match order, exact
		// receives first (they are all posted before any wildcard).
		exactSeen := map[stream][]int{}
		wildSeen := map[stream][]int{}
		drained := true
		err = c.Launch(func(r *Rank) {
			me := r.Rank()
			if me != 1 {
				for _, tg := range tags {
					for k := 0; k < perStream; k++ {
						r.Isend(1, tg, encode(me, tg, k))
					}
				}
				// Hold the barrier until rank 1 is done receiving so
				// its pure wildcards can never match a barrier message.
				r.Recv(1, ackTag)
				r.Barrier()
				drained = drained && r.PendingUnexpected() == 0 &&
					r.PendingPosted() == 0 && r.PendingOutOfOrder() == 0
				return
			}
			record := func(dst map[stream][]int, q *Request) {
				if len(q.Data) != 24 {
					failf("payload size %d, want 24", len(q.Data))
					return
				}
				src := int(binary.LittleEndian.Uint64(q.Data[0:]))
				tag := int(binary.LittleEndian.Uint64(q.Data[8:]))
				k := int(binary.LittleEndian.Uint64(q.Data[16:]))
				if src != q.Src || tag != q.Tag {
					failf("payload says (%d,%d), envelope says (%d,%d)", src, tag, q.Src, q.Tag)
					return
				}
				dst[stream{src, tag}] = append(dst[stream{src, tag}], k)
			}
			var exacts []*Request
			for _, s := range order[wild:] {
				q := r.Irecv(s.src, s.tag)
				exacts = append(exacts, q)
			}
			for i := 0; i < wild; i++ {
				record(wildSeen, r.Recv(AnySource, AnyTag))
			}
			r.Waitall(exacts)
			for i, q := range exacts {
				want := order[wild:][i]
				if q.Src != want.src || q.Tag != want.tag {
					failf("exact recv %d completed as (%d,%d), posted (%d,%d)",
						i, q.Src, q.Tag, want.src, want.tag)
				}
				record(exactSeen, q)
			}
			for _, dst := range []int{0, 2} {
				r.Isend(dst, ackTag, nil)
			}
			r.Barrier()
			drained = drained && r.PendingUnexpected() == 0 &&
				r.PendingPosted() == 0 && r.PendingOutOfOrder() == 0
		})
		if err != nil {
			t.Fatal(err)
		}
		for _, e := range errs {
			t.Error(e)
		}
		if !drained {
			t.Error("matching queues not drained after final barrier")
		}
		for _, s := range streams {
			ex, wl := exactSeen[s], wildSeen[s]
			for i, k := range ex {
				if k != i {
					t.Errorf("stream (%d,%d): exact receives saw %v, want 0..%d in order",
						s.src, s.tag, ex, len(ex)-1)
					break
				}
			}
			for i := 1; i < len(wl); i++ {
				if wl[i] <= wl[i-1] {
					t.Errorf("stream (%d,%d): wildcard receives overtook: %v", s.src, s.tag, wl)
					break
				}
			}
			if len(ex)+len(wl) != perStream {
				t.Errorf("stream (%d,%d): matched %d+%d messages, want %d",
					s.src, s.tag, len(ex), len(wl), perStream)
			}
		}
	})
}
