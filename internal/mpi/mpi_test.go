package mpi

import (
	"bytes"
	"testing"

	"msgroofline/internal/machine"
	"msgroofline/internal/sim"
)

func newComm(t *testing.T, name string, n int) *Comm {
	t.Helper()
	cfg, err := machine.Get(name)
	if err != nil {
		t.Fatal(err)
	}
	c, err := NewComm(cfg, n)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func TestHostStagedMPIOnGPUMachine(t *testing.T) {
	// GPU machines carry host-initiated MPI staged through the host:
	// messages pay the PCIe legs plus the host stack, so a small
	// message is slower than the ~4us device-initiated put.
	cfg, _ := machine.Get("perlmutter-gpu")
	c, err := NewComm(cfg, 2)
	if err != nil {
		t.Fatal(err)
	}
	var elapsed sim.Time
	err = c.Launch(func(r *Rank) {
		if r.Rank() == 0 {
			r.Send(1, 0, make([]byte, 8))
		} else {
			start := r.Now()
			r.Recv(0, 0)
			elapsed = r.Now() - start
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	if us := elapsed.Microseconds(); us < 5.5 || us > 9 {
		t.Fatalf("host-staged small message = %.2fus, want ~6.5us (slower than GPU-initiated ~4us)", us)
	}
	// No RMA windows on the GPU partitions (one-sided MPI is absent).
	if _, err := c.NewWin(8); err == nil {
		t.Fatal("GPU machines should not offer CPU one-sided windows")
	}
}

func TestSendRecvPayload(t *testing.T) {
	c := newComm(t, "perlmutter-cpu", 2)
	payload := []byte("halo exchange")
	var got []byte
	err := c.Launch(func(r *Rank) {
		switch r.Rank() {
		case 0:
			r.Send(1, 7, payload)
		case 1:
			req := r.Recv(0, 7)
			got = req.Data
			if req.Src != 0 || req.Tag != 7 {
				t.Errorf("metadata = src %d tag %d", req.Src, req.Tag)
			}
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, payload) {
		t.Fatalf("payload = %q", got)
	}
}

func TestSendBufferReuseIsSafe(t *testing.T) {
	c := newComm(t, "perlmutter-cpu", 2)
	var got []byte
	err := c.Launch(func(r *Rank) {
		if r.Rank() == 0 {
			buf := []byte{1, 2, 3}
			r.Isend(1, 0, buf)
			buf[0] = 99 // eager copy must protect the payload
		} else {
			got = r.Recv(0, 0).Data
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	if got[0] != 1 {
		t.Fatalf("payload corrupted by buffer reuse: %v", got)
	}
}

func TestUnexpectedMessageQueue(t *testing.T) {
	// Message arrives before the receive is posted.
	c := newComm(t, "perlmutter-cpu", 2)
	var got []byte
	err := c.Launch(func(r *Rank) {
		if r.Rank() == 0 {
			r.Send(1, 3, []byte{42})
		} else {
			r.Compute(sim.FromMicroseconds(50)) // ensure arrival first
			got = r.Recv(0, 3).Data
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 || got[0] != 42 {
		t.Fatalf("got %v", got)
	}
}

func TestTagAndSourceMatching(t *testing.T) {
	c := newComm(t, "perlmutter-cpu", 3)
	var fromTag5, fromTag6 byte
	err := c.Launch(func(r *Rank) {
		switch r.Rank() {
		case 0:
			r.Send(2, 5, []byte{5})
		case 1:
			r.Send(2, 6, []byte{6})
		case 2:
			// Receive tag 6 first even though tag 5 may arrive first.
			fromTag6 = r.Recv(AnySource, 6).Data[0]
			fromTag5 = r.Recv(AnySource, 5).Data[0]
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	if fromTag5 != 5 || fromTag6 != 6 {
		t.Fatalf("tag matching broken: %d %d", fromTag5, fromTag6)
	}
}

func TestAnySourceOrdering(t *testing.T) {
	// MPI non-overtaking: two messages from the same sender with the
	// same tag must be received in send order.
	c := newComm(t, "perlmutter-cpu", 2)
	var first, second byte
	err := c.Launch(func(r *Rank) {
		if r.Rank() == 0 {
			r.Send(1, 0, []byte{1})
			r.Send(1, 0, []byte{2})
		} else {
			first = r.Recv(AnySource, AnyTag).Data[0]
			second = r.Recv(AnySource, AnyTag).Data[0]
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	if first != 1 || second != 2 {
		t.Fatalf("overtaking: first=%d second=%d", first, second)
	}
}

func TestIrecvWaitall(t *testing.T) {
	// The stencil pattern: post 4 Irecvs + 4 Isends, Waitall.
	c := newComm(t, "perlmutter-cpu", 8)
	sum := make([]int, 8)
	err := c.Launch(func(r *Rank) {
		n := r.Size()
		var reqs []*Request
		for d := 1; d <= 4; d++ {
			reqs = append(reqs, r.Irecv((r.Rank()-d+n)%n, d))
		}
		for d := 1; d <= 4; d++ {
			reqs = append(reqs, r.Isend((r.Rank()+d)%n, d, []byte{byte(d)}))
		}
		r.Waitall(reqs)
		for _, q := range reqs[:4] {
			sum[r.Rank()] += int(q.Data[0])
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	for rk, s := range sum {
		if s != 1+2+3+4 {
			t.Fatalf("rank %d sum = %d", rk, s)
		}
	}
}

func TestProbe(t *testing.T) {
	c := newComm(t, "perlmutter-cpu", 2)
	var src, tag, size int
	err := c.Launch(func(r *Rank) {
		if r.Rank() == 0 {
			r.Send(1, 9, []byte{1, 2, 3, 4})
		} else {
			src, tag, size = r.Probe(AnySource, AnyTag)
			r.Recv(src, tag)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	if src != 0 || tag != 9 || size != 4 {
		t.Fatalf("probe = (%d, %d, %d)", src, tag, size)
	}
}

func TestBarrierSynchronizes(t *testing.T) {
	c := newComm(t, "perlmutter-cpu", 16)
	after := make([]sim.Time, 16)
	slowest := sim.FromMicroseconds(500)
	err := c.Launch(func(r *Rank) {
		// Rank 3 arrives late; nobody may leave before it arrives.
		if r.Rank() == 3 {
			r.Compute(slowest)
		}
		r.Barrier()
		after[r.Rank()] = r.Now()
	})
	if err != nil {
		t.Fatal(err)
	}
	for rk, at := range after {
		if at < slowest {
			t.Fatalf("rank %d left the barrier at %v, before rank 3 arrived", rk, at)
		}
	}
}

func TestBarrierRepeated(t *testing.T) {
	c := newComm(t, "perlmutter-cpu", 8)
	err := c.Launch(func(r *Rank) {
		for i := 0; i < 5; i++ {
			r.Barrier()
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestBarrierSingleRank(t *testing.T) {
	c := newComm(t, "perlmutter-cpu", 1)
	if err := c.Launch(func(r *Rank) { r.Barrier() }); err != nil {
		t.Fatal(err)
	}
}

func TestDeadlockReported(t *testing.T) {
	c := newComm(t, "perlmutter-cpu", 2)
	err := c.Launch(func(r *Rank) {
		if r.Rank() == 0 {
			r.Recv(1, 0) // never sent
		}
	})
	if err == nil {
		t.Fatal("expected deadlock error")
	}
}

func TestSelfSend(t *testing.T) {
	c := newComm(t, "perlmutter-cpu", 1)
	var got byte
	err := c.Launch(func(r *Rank) {
		r.Isend(0, 0, []byte{7})
		got = r.Recv(0, 0).Data[0]
	})
	if err != nil {
		t.Fatal(err)
	}
	if got != 7 {
		t.Fatalf("self-send got %d", got)
	}
}

func TestTwoSidedLatencyCalibration(t *testing.T) {
	// End-to-end single small message across sockets: ~3.3 us
	// (Fig 6b), within tolerance.
	c := newComm(t, "perlmutter-cpu", 128)
	var elapsed sim.Time
	err := c.Launch(func(r *Rank) {
		if r.Rank() == 0 {
			r.Send(127, 0, make([]byte, 100))
		} else if r.Rank() == 127 {
			start := r.Now()
			r.Recv(0, 0)
			elapsed = r.Now() - start
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	if us := elapsed.Microseconds(); us < 2.6 || us > 3.9 {
		t.Fatalf("two-sided 1-msg = %.2fus, want ~3.3us", us)
	}
}

func TestMessageCounts(t *testing.T) {
	c := newComm(t, "perlmutter-cpu", 2)
	var sent, recvd int64
	err := c.Launch(func(r *Rank) {
		if r.Rank() == 0 {
			for i := 0; i < 5; i++ {
				r.Send(1, 0, []byte{0})
			}
			sent, _ = r.Counts()
		} else {
			for i := 0; i < 5; i++ {
				r.Recv(0, 0)
			}
			_, recvd = r.Counts()
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	if sent != 5 || recvd != 5 {
		t.Fatalf("counts = %d sent, %d received", sent, recvd)
	}
}
