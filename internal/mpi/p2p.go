package mpi

import "msgroofline/internal/sim"

// Request is the handle of a nonblocking operation. Send requests
// complete as soon as the payload is buffered and injected (eager
// protocol); receive requests complete when a matching message has
// been delivered.
type Request struct {
	owner *Rank
	done  bool
	isRcv bool

	// match pattern (receives only)
	src, tag int

	// results, valid once done
	Data []byte
	Src  int
	Tag  int
	At   sim.Time // delivery time of the matched message
}

// Done reports whether the request has completed.
func (q *Request) Done() bool { return q.done }

// Isend starts an eager nonblocking send of data to dst with the
// given tag. The payload is copied, so the caller may reuse its
// buffer immediately. The returned request is already complete.
func (r *Rank) Isend(dst, tag int, data []byte) *Request {
	// Self-sends are legal and ride the loopback (shared-memory) path
	// like any other same-node message.
	r.ep.ChargeOp(r.proc, r.comm.two)
	buf := make([]byte, len(data))
	copy(buf, data)
	target := r.comm.ranks[dst]
	src := r.id
	seq := r.sendSeq[dst]
	r.sendSeq[dst]++
	r.sendCount++
	issue := r.proc.Now()
	hook := r.comm.sendHook
	// Delivery mutates only target-rank state, so the whole callback
	// runs on the target's engine (the remote half of the split).
	r.ep.Inject(r.comm.two, dst, int64(len(buf)), r.ep.AutoChannel(), func(at sim.Time) {
		if hook != nil && tag >= 0 {
			hook(src, dst, int64(len(buf)), issue, at)
		}
		target.deliver(&envelope{src: src, tag: tag, seq: seq, data: buf, at: at})
	}, nil)
	return &Request{owner: r, done: true, Src: src, Tag: tag}
}

// Send is a blocking send; with the eager protocol it returns as soon
// as the message is injected (identical cost to Isend).
func (r *Rank) Send(dst, tag int, data []byte) { r.Isend(dst, tag, data) }

// Irecv posts a nonblocking receive matching (src, tag), where either
// may be AnySource/AnyTag. Matching follows MPI ordering: the oldest
// matching unexpected message wins, else the request queues in post
// order.
func (r *Rank) Irecv(src, tag int) *Request {
	r.ep.ChargeOp(r.proc, r.comm.two)
	req := &Request{owner: r, isRcv: true, src: src, tag: tag}
	if env := r.takeUnexpected(src, tag); env != nil {
		req.complete(env)
		return req
	}
	r.posted = append(r.posted, req)
	return req
}

// Recv blocks until a message matching (src, tag) arrives and returns
// its payload and metadata.
func (r *Rank) Recv(src, tag int) *Request {
	req := r.Irecv(src, tag)
	r.Wait(req)
	return req
}

// Wait blocks until the request completes.
func (r *Rank) Wait(req *Request) {
	if req.owner != r {
		panic("mpi: waiting on another rank's request")
	}
	r.arrived.WaitFor(r.proc, func() bool { return req.done })
}

// Waitall blocks until every request completes.
func (r *Rank) Waitall(reqs []*Request) {
	r.arrived.WaitFor(r.proc, func() bool {
		for _, q := range reqs {
			if !q.done {
				return false
			}
		}
		return true
	})
}

// Probe blocks until a message matching (src, tag) is available
// without receiving it, and returns its source, tag and size.
func (r *Rank) Probe(src, tag int) (gotSrc, gotTag, size int) {
	var env *envelope
	r.arrived.WaitFor(r.proc, func() bool {
		env = r.peekUnexpected(src, tag)
		return env != nil
	})
	return env.src, env.tag, len(env.data)
}

// deliver runs in engine context when a message reaches this rank. It
// first restores per-(source, destination) send order — a retransmitted
// message may arrive after a later send from the same source — then
// admits in-order arrivals to the matching queue. On an in-order
// network every message is admitted as it arrives.
func (r *Rank) deliver(env *envelope) {
	if r.comm.debugUnordered {
		r.admit(env)
		return
	}
	src := env.src
	if env.seq != r.recvSeq[src] {
		r.ooo[src] = append(r.ooo[src], env)
		return
	}
	r.recvSeq[src]++
	r.admit(env)
	for next := r.takeOutOfOrder(src); next != nil; next = r.takeOutOfOrder(src) {
		r.recvSeq[src]++
		r.admit(next)
	}
}

// takeOutOfOrder removes and returns the buffered arrival from src
// whose sequence is next in line, or nil.
func (r *Rank) takeOutOfOrder(src int) *envelope {
	q := r.ooo[src]
	for i, env := range q {
		if env.seq == r.recvSeq[src] {
			r.ooo[src] = append(q[:i], q[i+1:]...)
			return env
		}
	}
	return nil
}

// admit runs in engine context once an arrival is in order: match the
// oldest posted receive, or queue as unexpected.
func (r *Rank) admit(env *envelope) {
	for i, req := range r.posted {
		if req.matches(env) {
			r.posted = append(r.posted[:i], r.posted[i+1:]...)
			req.complete(env)
			r.recvCount++
			r.arrived.Broadcast()
			return
		}
	}
	r.unexpected = append(r.unexpected, env)
	r.recvCount++
	r.arrived.Broadcast()
}

// takeUnexpected removes and returns the oldest unexpected message
// matching (src, tag), or nil.
func (r *Rank) takeUnexpected(src, tag int) *envelope {
	for i, env := range r.unexpected {
		if matchPattern(src, tag, env) {
			r.unexpected = append(r.unexpected[:i], r.unexpected[i+1:]...)
			return env
		}
	}
	return nil
}

// peekUnexpected returns the oldest matching unexpected message
// without removing it.
func (r *Rank) peekUnexpected(src, tag int) *envelope {
	for _, env := range r.unexpected {
		if matchPattern(src, tag, env) {
			return env
		}
	}
	return nil
}

func (q *Request) matches(env *envelope) bool {
	return matchPattern(q.src, q.tag, env)
}

func matchPattern(src, tag int, env *envelope) bool {
	return (src == AnySource || src == env.src) &&
		(tag == AnyTag || tag == env.tag)
}

func (q *Request) complete(env *envelope) {
	q.done = true
	q.Data = env.data
	q.Src = env.src
	q.Tag = env.tag
	q.At = env.at
}
