package mpi

import (
	"math/rand"
	"testing"
	"testing/quick"

	"msgroofline/internal/machine"
	"msgroofline/internal/sim"
)

// Property: every message sent is received exactly once with intact
// payload, regardless of the (random) traffic pattern.
func TestPropertyExactlyOnceDelivery(t *testing.T) {
	f := func(seed int64, nRaw, mRaw uint8) bool {
		p := int(nRaw%6) + 2     // 2..7 ranks
		msgs := int(mRaw%40) + 1 // messages per rank
		rng := rand.New(rand.NewSource(seed))
		// Plan: each rank sends msgs messages to random destinations
		// with random small payload; destinations know their counts.
		type planned struct {
			dst  int
			data byte
		}
		plan := make([][]planned, p)
		expect := make([]int, p)
		for r := 0; r < p; r++ {
			for i := 0; i < msgs; i++ {
				d := rng.Intn(p)
				plan[r] = append(plan[r], planned{dst: d, data: byte(rng.Intn(256))})
				expect[d]++
			}
		}
		c := newCommProp(p)
		sums := make([]int, p)
		wantSums := make([]int, p)
		for r := range plan {
			for _, pl := range plan[r] {
				wantSums[pl.dst] += int(pl.data)
			}
		}
		err := c.Launch(func(r *Rank) {
			for _, pl := range plan[r.Rank()] {
				r.Isend(pl.dst, 0, []byte{pl.data})
			}
			for i := 0; i < expect[r.Rank()]; i++ {
				req := r.Recv(AnySource, AnyTag)
				sums[r.Rank()] += int(req.Data[0])
			}
		})
		if err != nil {
			return false
		}
		for r := range sums {
			if sums[r] != wantSums[r] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

// Property: per (source, tag) pair, messages never overtake.
func TestPropertyNonOvertaking(t *testing.T) {
	f := func(seed int64, kRaw uint8) bool {
		k := int(kRaw%30) + 2
		c := newCommProp(2)
		rng := rand.New(rand.NewSource(seed))
		sizes := make([]int, k)
		for i := range sizes {
			sizes[i] = rng.Intn(2000) + 1
		}
		ok := true
		err := c.Launch(func(r *Rank) {
			if r.Rank() == 0 {
				for i := 0; i < k; i++ {
					payload := make([]byte, sizes[i])
					payload[0] = byte(i)
					r.Isend(1, 5, payload)
				}
				return
			}
			for i := 0; i < k; i++ {
				req := r.Recv(0, 5)
				if req.Data[0] != byte(i) || len(req.Data) != sizes[i] {
					ok = false
				}
			}
		})
		return err == nil && ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

// Property: simulation time is deterministic for a given plan.
func TestPropertyDeterministicElapsed(t *testing.T) {
	f := func(seed int64) bool {
		run := func() sim.Time {
			c := newCommProp(4)
			rng := rand.New(rand.NewSource(seed))
			err := c.Launch(func(r *Rank) {
				local := rand.New(rand.NewSource(seed + int64(r.Rank())))
				for i := 0; i < 10; i++ {
					dst := local.Intn(4)
					r.Isend(dst, i, make([]byte, local.Intn(512)+1))
				}
				// Everyone receives 10 messages total? No: receive
				// exactly what was sent to us; compute counts from
				// the same seeds.
				expect := 0
				for src := 0; src < 4; src++ {
					srcRng := rand.New(rand.NewSource(seed + int64(src)))
					for i := 0; i < 10; i++ {
						d := srcRng.Intn(4)
						srcRng.Intn(512)
						if d == r.Rank() {
							expect++
						}
					}
				}
				for i := 0; i < expect; i++ {
					r.Recv(AnySource, AnyTag)
				}
			})
			_ = rng
			if err != nil {
				return -1
			}
			return c.Elapsed()
		}
		a, b := run(), run()
		return a == b && a >= 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 10}); err != nil {
		t.Fatal(err)
	}
}

// Property: one-sided puts land exactly the bytes written, wherever
// the offsets fall.
func TestPropertyPutPlacement(t *testing.T) {
	f := func(seed int64, nRaw uint8) bool {
		n := int(nRaw%20) + 1
		c := newCommProp(2)
		w, err := c.NewWin(4096)
		if err != nil {
			return false
		}
		rng := rand.New(rand.NewSource(seed))
		type put struct {
			off  int
			data []byte
		}
		var puts []put
		// Non-overlapping segments so final memory is predictable.
		cursor := 0
		for i := 0; i < n && cursor < 4000; i++ {
			sz := rng.Intn(64) + 1
			puts = append(puts, put{off: cursor, data: randBytes(rng, sz)})
			cursor += sz + rng.Intn(16)
		}
		err = c.Launch(func(r *Rank) {
			if r.Rank() != 0 {
				return
			}
			for _, pt := range puts {
				r.Put(w, 1, pt.off, pt.data)
			}
			r.Flush(w, 1)
		})
		if err != nil {
			return false
		}
		for _, pt := range puts {
			got := w.Local(1)[pt.off : pt.off+len(pt.data)]
			for i := range pt.data {
				if got[i] != pt.data[i] {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

func randBytes(rng *rand.Rand, n int) []byte {
	b := make([]byte, n)
	for i := range b {
		b[i] = byte(rng.Intn(255) + 1)
	}
	return b
}

// newCommProp builds a communicator without *testing.T plumbing (for
// quick.Check closures).
func newCommProp(n int) *Comm {
	cfg, err := machine.Get("perlmutter-cpu")
	if err != nil {
		panic(err)
	}
	c, err := NewComm(cfg, n)
	if err != nil {
		panic(err)
	}
	return c
}
