package mpi

import (
	"encoding/binary"
	"fmt"
	"math"

	"msgroofline/internal/runtime"
	"msgroofline/internal/sim"
)

// Win is an MPI-3 RMA window: one exposed memory region per rank plus
// the bookkeeping for completion (flush/fence) semantics. Windows are
// created on the communicator before Launch (setup phase), mirroring
// a collective MPI_Win_create executed at startup.
type Win struct {
	comm *Comm
	bufs [][]byte

	// outstanding[origin][target] counts puts issued by origin that
	// have not yet landed in target memory. Issued and completed on
	// the origin's engine (the local half of the delivery split).
	outstanding [][]int
	// originDone[origin] is signaled whenever one of origin's puts
	// completes remotely (flush waits on it); bound to origin's engine.
	originDone []*sim.Cond
	// targetDone[target] is signaled whenever any put or accumulate
	// lands in target's memory (receivers poll on it); bound to
	// target's engine.
	targetDone []*sim.Cond

	// Per-origin-rank op counters (rank-confined; OpStats sums them).
	puts, gets, atomics []int64
	// hook, when set, observes every put at delivery time, running on
	// the target's engine — it must be safe under parallel windows.
	hook MsgHook
}

// SetHook installs a hook observing puts (data landing in target
// memory). Call before Launch.
func (w *Win) SetHook(h MsgHook) { w.hook = h }

// NewWin collectively creates a window exposing localSize bytes on
// every rank. Call before Launch.
func (c *Comm) NewWin(localSize int) (*Win, error) {
	sizes := make([]int, c.Size())
	for i := range sizes {
		sizes[i] = localSize
	}
	return c.NewWinSizes(sizes)
}

// NewWinSizes creates a window with a per-rank exposed size (ranks
// may expose different amounts, as SpTRSV does for its solution and
// signal buffers).
func (c *Comm) NewWinSizes(sizes []int) (*Win, error) {
	if !c.has1s {
		return nil, fmt.Errorf("mpi: machine has no one-sided transport")
	}
	if len(sizes) != c.Size() {
		return nil, fmt.Errorf("mpi: NewWinSizes needs %d sizes, got %d", c.Size(), len(sizes))
	}
	w := &Win{
		comm:    c,
		puts:    make([]int64, c.Size()),
		gets:    make([]int64, c.Size()),
		atomics: make([]int64, c.Size()),
	}
	for r, s := range sizes {
		if s < 0 {
			return nil, fmt.Errorf("mpi: rank %d: negative window size", r)
		}
		w.bufs = append(w.bufs, make([]byte, s))
		w.outstanding = append(w.outstanding, make([]int, c.Size()))
		w.originDone = append(w.originDone, sim.NewCond(c.world.EngineOf(r)))
		w.targetDone = append(w.targetDone, sim.NewCond(c.world.EngineOf(r)))
	}
	c.wins = append(c.wins, w)
	return w, nil
}

// Local returns rank's exposed memory for direct local access (the
// PGAS view of one's own window).
func (w *Win) Local(rank int) []byte { return w.bufs[rank] }

// OpStats reports cumulative one-sided operation counts (summed over
// the per-rank counters; call between runs or after Launch returns).
func (w *Win) OpStats() (puts, gets, atomics int64) {
	for r := range w.puts {
		puts += w.puts[r]
		gets += w.gets[r]
		atomics += w.atomics[r]
	}
	return puts, gets, atomics
}

// Put starts a nonblocking RMA put of data into dst's window at
// dstOff. Completion at the target is observed via Flush (origin
// side) or by the target polling its memory/signals.
func (r *Rank) Put(w *Win, dst, dstOff int, data []byte) {
	r.putOn(w, dst, dstOff, data, r.ep.AutoChannel())
}

// PutChannel is Put with an explicit injection channel, used by the
// message-splitting experiments (Fig 10) to pin sub-messages onto
// distinct NVLink port groups.
func (r *Rank) PutChannel(w *Win, dst, dstOff int, data []byte, ch int) {
	r.putOn(w, dst, dstOff, data, ch)
}

func (r *Rank) putOn(w *Win, dst, dstOff int, data []byte, ch int) {
	w.checkRange(dst, dstOff, len(data))
	r.ep.ChargeOp(r.proc, r.comm.one)
	n := int64(len(data))
	buf := runtime.BorrowBuf(len(data))
	copy(buf, data)
	origin := r.id
	w.outstanding[origin][dst]++
	w.puts[origin]++
	r.sendCount++
	issue := r.proc.Now()
	// Split delivery: the target-memory write, hook and target signal
	// run on dst's engine; the outstanding-count completion and origin
	// signal run on the origin's engine at the same instant.
	r.ep.Inject(r.comm.one, dst, n, ch, func(at sim.Time) {
		copy(w.bufs[dst][dstOff:], buf)
		runtime.ReleaseBuf(buf)
		if w.hook != nil {
			w.hook(origin, dst, n, issue, at)
		}
		w.targetDone[dst].Broadcast()
	}, func(at sim.Time) {
		w.outstanding[origin][dst]--
		w.originDone[origin].Broadcast()
	})
}

// Get fetches n bytes from src's window at srcOff. It blocks until
// the data arrives (put semantics reversed: a request flight, then
// the payload rides the fabric back reserving reverse-path links).
func (r *Rank) Get(w *Win, src, srcOff, n int) []byte {
	w.checkRange(src, srcOff, n)
	r.ep.ChargeOp(r.proc, r.comm.one)
	me := r.id
	w.gets[me]++
	world := r.comm.world
	now := r.proc.Now()
	reqArrive := now + r.ep.WireLatency(src) + r.comm.one.SoftLatency/2
	var out []byte
	srcEp := world.Endpoint(src)
	// serve runs on src's engine (owner-computes): read the exposed
	// memory there and inject the payload back toward the origin.
	serve := func() {
		data := make([]byte, n)
		copy(data, w.bufs[src][srcOff:srcOff+n])
		srcEp.Inject(r.comm.one, me, int64(n), srcEp.AutoChannel(), func(at sim.Time) {
			out = data
			w.originDone[me].Broadcast()
		}, nil)
	}
	if world.GroupOf(me) == world.GroupOf(src) {
		world.EngineOf(me).At(reqArrive, serve)
	} else {
		// Cross-group: route the request through the barrier so the
		// event lands on src's engine without racing its window. The
		// request flight is at least one link latency, so reqArrive is
		// past the window bound by construction.
		world.Coupled().Defer(me, now, func() {
			world.Coupled().At(src, reqArrive, serve)
		})
	}
	w.originDone[me].WaitFor(r.proc, func() bool { return out != nil })
	return out
}

// Flush blocks until every put this rank issued to dst has completed
// in dst's memory (MPI_Win_flush).
func (r *Rank) Flush(w *Win, dst int) {
	r.ep.ChargeOp(r.proc, r.comm.one)
	w.originDone[r.id].WaitFor(r.proc, func() bool {
		return w.outstanding[r.id][dst] == 0
	})
}

// FlushAll blocks until every put this rank issued to any target has
// completed (MPI_Win_flush_all).
func (r *Rank) FlushAll(w *Win) {
	r.ep.ChargeOp(r.proc, r.comm.one)
	w.originDone[r.id].WaitFor(r.proc, func() bool {
		for _, n := range w.outstanding[r.id] {
			if n != 0 {
				return false
			}
		}
		return true
	})
}

// FlushLocal completes puts locally (the origin buffer is reusable);
// with the eager/copying model this costs only the library call
// (MPI_Win_flush_local).
func (r *Rank) FlushLocal(w *Win, dst int) {
	r.ep.ChargeOp(r.proc, r.comm.one)
}

// Fence is the BSP-style access epoch boundary (MPI_Win_fence): each
// rank completes its outstanding puts everywhere, then all ranks
// synchronize on a barrier; when Fence returns, every put issued
// before the fence (by anyone) is visible everywhere.
func (r *Rank) Fence(w *Win) {
	r.FlushAll(w)
	r.Barrier()
}

// TargetSignal returns the condition signaled whenever RMA traffic
// lands in rank's window memory; receiver-side polling loops (the
// paper's Listing 1) wait on it instead of burning simulated cycles
// in a spin loop, then charge their scan cost explicitly.
func (w *Win) TargetSignal(rank int) *sim.Cond { return w.targetDone[rank] }

// Uint64At reads the little-endian uint64 at off in rank's window.
func (w *Win) Uint64At(rank, off int) uint64 {
	return binary.LittleEndian.Uint64(w.bufs[rank][off : off+8])
}

// SetUint64At writes v at off in rank's window (local initialization).
func (w *Win) SetUint64At(rank, off int, v uint64) {
	binary.LittleEndian.PutUint64(w.bufs[rank][off:off+8], v)
}

// CompareAndSwap atomically compares the uint64 at (dst, dstOff) with
// compare and, if equal, replaces it with swap. It returns the value
// observed before the operation (MPI_Compare_and_swap). The caller
// blocks for the full atomic round trip.
func (r *Rank) CompareAndSwap(w *Win, dst, dstOff int, compare, swap uint64) uint64 {
	w.checkRange(dst, dstOff, 8)
	w.atomics[r.id]++
	return r.ep.RemoteAtomic(r.proc, r.comm.one, dst, func() uint64 {
		old := w.Uint64At(dst, dstOff)
		if old == compare {
			w.SetUint64At(dst, dstOff, swap)
		}
		return old
	})
}

// FetchAndAdd atomically adds delta to the uint64 at (dst, dstOff)
// and returns the previous value (MPI_Fetch_and_op with MPI_SUM).
func (r *Rank) FetchAndAdd(w *Win, dst, dstOff int, delta uint64) uint64 {
	w.checkRange(dst, dstOff, 8)
	w.atomics[r.id]++
	return r.ep.RemoteAtomic(r.proc, r.comm.one, dst, func() uint64 {
		old := w.Uint64At(dst, dstOff)
		w.SetUint64At(dst, dstOff, old+delta)
		return old
	})
}

func (w *Win) checkRange(rank, off, n int) {
	if rank < 0 || rank >= len(w.bufs) {
		panic(fmt.Sprintf("mpi: window access to invalid rank %d", rank))
	}
	if off < 0 || off+n > len(w.bufs[rank]) {
		panic(fmt.Sprintf("mpi: window access [%d, %d) outside rank %d's %d-byte region",
			off, off+n, rank, len(w.bufs[rank])))
	}
}

// PutNotify is the extension operation of the paper's conclusion:
// hardware-level put-with-signal (foMPI-style notified access). The
// data and the uint64 notification value land in the target window in
// one fused operation — one flight, one remote-completion event —
// instead of the standard 4-op put/flush/put/flush protocol. It
// requires the machine's NotifiedAccess transport.
func (r *Rank) PutNotify(w *Win, dst, dstOff int, data []byte, sigOff int, sigVal uint64) error {
	if !r.comm.hasNtf {
		return fmt.Errorf("mpi: machine has no notified-access transport")
	}
	w.checkRange(dst, dstOff, len(data))
	w.checkRange(dst, sigOff, 8)
	tp := r.comm.ntf
	// Fused operation: both halves charged at the origin.
	r.ep.ChargeOp(r.proc, tp)
	r.ep.ChargeOp(r.proc, tp)
	n := int64(len(data))
	buf := runtime.BorrowBuf(len(data))
	copy(buf, data)
	origin := r.id
	w.outstanding[origin][dst]++
	w.puts[origin]++
	r.sendCount++
	issue := r.proc.Now()
	r.ep.Inject(tp, dst, n+8, r.ep.AutoChannel(), func(at sim.Time) {
		copy(w.bufs[dst][dstOff:], buf)
		runtime.ReleaseBuf(buf)
		w.SetUint64At(dst, sigOff, sigVal)
		if w.hook != nil {
			w.hook(origin, dst, n+8, issue, at)
		}
		w.targetDone[dst].Broadcast()
	}, func(at sim.Time) {
		w.outstanding[origin][dst]--
		w.originDone[origin].Broadcast()
	})
	return nil
}

// WaitNotify blocks until the uint64 notification at sigOff in this
// rank's window equals val — the receiver side of notified access,
// with no user polling loop to pay for.
func (r *Rank) WaitNotify(w *Win, sigOff int, val uint64) {
	w.targetDone[r.id].WaitFor(r.proc, func() bool {
		return w.Uint64At(r.id, sigOff) == val
	})
}

// WaitNotifyAny blocks until any unmasked notification slot equals
// val and returns its index (the notified-access counterpart of
// nvshmem_wait_until_any).
func (r *Rank) WaitNotifyAny(w *Win, sigOffs []int, mask []bool, val uint64) int {
	found := -1
	w.targetDone[r.id].WaitFor(r.proc, func() bool {
		for i, off := range sigOffs {
			if mask != nil && mask[i] {
				continue
			}
			if w.Uint64At(r.id, off) == val {
				found = i
				return true
			}
		}
		return false
	})
	return found
}

// Accumulate performs a nonblocking element-wise float64 sum of data
// into dst's window at dstOff (MPI_Accumulate with MPI_SUM). Like all
// RMA accumulates, concurrent Accumulates to the same location are
// applied atomically with respect to each other (they execute at
// delivery time on the target's own engine, owner-computes).
func (r *Rank) Accumulate(w *Win, dst, dstOff int, data []float64) {
	n := 8 * len(data)
	w.checkRange(dst, dstOff, n)
	r.ep.ChargeOp(r.proc, r.comm.one)
	vals := make([]float64, len(data))
	copy(vals, data)
	origin := r.id
	w.outstanding[origin][dst]++
	w.puts[origin]++
	r.sendCount++
	issue := r.proc.Now()
	r.ep.Inject(r.comm.one, dst, int64(n), r.ep.AutoChannel(), func(at sim.Time) {
		for i, v := range vals {
			off := dstOff + 8*i
			cur := math.Float64frombits(binary.LittleEndian.Uint64(w.bufs[dst][off:]))
			binary.LittleEndian.PutUint64(w.bufs[dst][off:], math.Float64bits(cur+v))
		}
		if w.hook != nil {
			w.hook(origin, dst, int64(n), issue, at)
		}
		w.targetDone[dst].Broadcast()
	}, func(at sim.Time) {
		w.outstanding[origin][dst]--
		w.originDone[origin].Broadcast()
	})
}
