package mpi

import (
	"bytes"
	"math"
	"testing"

	"msgroofline/internal/machine"
	"msgroofline/internal/sim"
)

func TestWinCreation(t *testing.T) {
	c := newComm(t, "perlmutter-cpu", 4)
	w, err := c.NewWin(64)
	if err != nil {
		t.Fatal(err)
	}
	if len(w.Local(2)) != 64 {
		t.Fatal("window size wrong")
	}
	if _, err := c.NewWinSizes([]int{1, 2}); err == nil {
		t.Fatal("wrong size count should fail")
	}
	if _, err := c.NewWinSizes([]int{1, -2, 3, 4}); err == nil {
		t.Fatal("negative size should fail")
	}
}

func TestPutFlushVisibility(t *testing.T) {
	c := newComm(t, "perlmutter-cpu", 2)
	w, _ := c.NewWin(16)
	const doneTag = 7
	var seen []byte
	err := c.Launch(func(r *Rank) {
		if r.Rank() == 0 {
			r.Put(w, 1, 4, []byte{9, 8, 7})
			r.Flush(w, 1)
			// Flush completed the put remotely; notify the target.
			r.Send(1, doneTag, []byte{1})
		} else {
			r.Recv(0, doneTag)
			// The notification was issued strictly after the flush
			// returned, so the put must already be visible in this
			// rank's own window memory (window memory is owned by its
			// rank — visibility is always observed target-side).
			seen = append([]byte{}, w.Local(1)[4:7]...)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(seen, []byte{9, 8, 7}) {
		t.Fatalf("after flush remote memory = %v", seen)
	}
}

func TestPutWithoutFlushNotYetVisible(t *testing.T) {
	c := newComm(t, "perlmutter-cpu", 2)
	w, _ := c.NewWin(16)
	var immediate byte
	err := c.Launch(func(r *Rank) {
		if r.Rank() == 0 {
			r.Put(w, 1, 0, []byte{5})
			immediate = w.Local(1)[0] // no flush: still in flight
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	if immediate != 0 {
		t.Fatal("put visible before any completion wait — no latency modeled?")
	}
}

func TestFourOpProtocolCalibration(t *testing.T) {
	// The paper's one-sided message: put(data), flush, put(signal),
	// flush — about 5 us on Perlmutter CPU (Fig 6b).
	c := newComm(t, "perlmutter-cpu", 128)
	data, _ := c.NewWin(1 << 12)
	sig, _ := c.NewWin(8)
	var elapsed sim.Time
	err := c.Launch(func(r *Rank) {
		if r.Rank() != 0 {
			return
		}
		start := r.Now()
		r.Put(data, 127, 0, make([]byte, 100))
		r.Flush(data, 127)
		r.Put(sig, 127, 0, []byte{1, 0, 0, 0, 0, 0, 0, 0})
		r.Flush(sig, 127)
		elapsed = r.Now() - start
	})
	if err != nil {
		t.Fatal(err)
	}
	if us := elapsed.Microseconds(); us < 4.2 || us > 5.8 {
		t.Fatalf("4-op one-sided message = %.2fus, want ~5us", us)
	}
}

func TestFenceEpoch(t *testing.T) {
	// BSP pattern: everyone puts to the right neighbor, fence, read.
	c := newComm(t, "perlmutter-cpu", 8)
	w, _ := c.NewWin(8)
	got := make([]byte, 8)
	err := c.Launch(func(r *Rank) {
		right := (r.Rank() + 1) % r.Size()
		r.Put(w, right, 0, []byte{byte(r.Rank() + 1)})
		r.Fence(w)
		got[r.Rank()] = w.Local(r.Rank())[0]
	})
	if err != nil {
		t.Fatal(err)
	}
	for rk := range got {
		left := (rk - 1 + 8) % 8
		if got[rk] != byte(left+1) {
			t.Fatalf("rank %d read %d after fence, want %d", rk, got[rk], left+1)
		}
	}
}

func TestGetRoundTrip(t *testing.T) {
	c := newComm(t, "perlmutter-cpu", 2)
	w, _ := c.NewWin(16)
	copy(w.Local(1), []byte{1, 2, 3, 4})
	var got []byte
	var elapsed sim.Time
	err := c.Launch(func(r *Rank) {
		if r.Rank() == 0 {
			start := r.Now()
			got = r.Get(w, 1, 1, 3)
			elapsed = r.Now() - start
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, []byte{2, 3, 4}) {
		t.Fatalf("get = %v", got)
	}
	if elapsed < sim.FromMicroseconds(1) {
		t.Fatalf("get took %v, suspiciously fast for a round trip", elapsed)
	}
}

func TestCompareAndSwap(t *testing.T) {
	c := newComm(t, "perlmutter-cpu", 2)
	w, _ := c.NewWin(8)
	var first, second, final uint64
	err := c.Launch(func(r *Rank) {
		if r.Rank() == 0 {
			first = r.CompareAndSwap(w, 1, 0, 0, 100)  // succeeds
			second = r.CompareAndSwap(w, 1, 0, 0, 200) // fails: now 100
			final = w.Uint64At(1, 0)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	if first != 0 {
		t.Fatalf("first CAS observed %d, want 0", first)
	}
	if second != 100 {
		t.Fatalf("second CAS observed %d, want 100", second)
	}
	if final != 100 {
		t.Fatalf("final value %d, want 100 (second CAS must fail)", final)
	}
}

func TestFetchAndAddAtomicity(t *testing.T) {
	// Every rank increments rank 0's counter concurrently; the sum
	// must be exact and each fetch value unique.
	const n = 8
	c := newComm(t, "perlmutter-cpu", n)
	w, _ := c.NewWin(8)
	seen := make(map[uint64]bool)
	err := c.Launch(func(r *Rank) {
		old := r.FetchAndAdd(w, 0, 0, 1)
		if seen[old] {
			t.Errorf("duplicate fetch value %d", old)
		}
		seen[old] = true
	})
	if err != nil {
		t.Fatal(err)
	}
	if got := w.Uint64At(0, 0); got != n {
		t.Fatalf("counter = %d, want %d", got, n)
	}
}

func TestSpectrumOneSidedSlower(t *testing.T) {
	// Fig 3c: on Summit, the one-sided path is consistently slower
	// than two-sided. Compare one fully synchronized small message.
	oneSided := func() sim.Time {
		c := newComm(t, "summit-cpu", 42)
		data, _ := c.NewWin(4096)
		var el sim.Time
		if err := c.Launch(func(r *Rank) {
			if r.Rank() != 0 {
				return
			}
			start := r.Now()
			r.Put(data, 41, 0, make([]byte, 100))
			r.Flush(data, 41)
			r.Put(data, 41, 1024, []byte{1})
			r.Flush(data, 41)
			el = r.Now() - start
		}); err != nil {
			t.Fatal(err)
		}
		return el
	}()
	twoSided := func() sim.Time {
		c := newComm(t, "summit-cpu", 42)
		var el sim.Time
		if err := c.Launch(func(r *Rank) {
			if r.Rank() == 0 {
				r.Send(41, 0, make([]byte, 100))
			} else if r.Rank() == 41 {
				start := r.Now()
				r.Recv(0, 0)
				el = r.Now() - start
			}
		}); err != nil {
			t.Fatal(err)
		}
		return el
	}()
	if oneSided <= twoSided {
		t.Fatalf("Spectrum one-sided (%v) should be slower than two-sided (%v)", oneSided, twoSided)
	}
	if ratio := float64(oneSided) / float64(twoSided); ratio < 1.5 {
		t.Fatalf("Summit one-sided/two-sided ratio = %.2f, want clearly worse", ratio)
	}
}

func TestWindowBoundsPanic(t *testing.T) {
	c := newComm(t, "perlmutter-cpu", 2)
	w, _ := c.NewWin(8)
	err := c.Launch(func(r *Rank) {
		if r.Rank() != 0 {
			return
		}
		defer func() {
			if recover() == nil {
				t.Error("expected panic for out-of-range put")
			}
		}()
		r.Put(w, 1, 6, []byte{1, 2, 3, 4})
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestOpStats(t *testing.T) {
	c := newComm(t, "perlmutter-cpu", 2)
	w, _ := c.NewWin(16)
	err := c.Launch(func(r *Rank) {
		if r.Rank() == 0 {
			r.Put(w, 1, 0, []byte{1})
			r.Flush(w, 1)
			r.Get(w, 1, 0, 1)
			r.CompareAndSwap(w, 1, 8, 0, 1)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	puts, gets, atomics := w.OpStats()
	if puts != 1 || gets != 1 || atomics != 1 {
		t.Fatalf("op stats = %d/%d/%d", puts, gets, atomics)
	}
}

func TestNoOneSidedOnMachineWithoutRMA(t *testing.T) {
	// All CPU machines in the catalog have RMA; construct the error
	// path by checking a communicator with has1s forced off is
	// impossible through the public API — instead verify NewWin's
	// error when the transport is absent cannot trigger on catalog
	// machines.
	for _, name := range machine.Names() {
		cfg, _ := machine.Get(name)
		if cfg.Kind != machine.CPU {
			continue
		}
		c := newComm(t, name, 2)
		if _, err := c.NewWin(8); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
	}
}

func TestAccumulateSums(t *testing.T) {
	c := newComm(t, "perlmutter-cpu", 3)
	w, _ := c.NewWin(32)
	err := c.Launch(func(r *Rank) {
		if r.Rank() == 0 {
			return
		}
		// Ranks 1 and 2 accumulate concurrently into rank 0.
		r.Accumulate(w, 0, 0, []float64{float64(r.Rank()), 10})
		r.Flush(w, 0)
	})
	if err != nil {
		t.Fatal(err)
	}
	got0 := mathFloat64(w.Local(0)[0:8])
	got1 := mathFloat64(w.Local(0)[8:16])
	if got0 != 3 { // 1 + 2
		t.Fatalf("accumulated = %v, want 3", got0)
	}
	if got1 != 20 {
		t.Fatalf("accumulated = %v, want 20", got1)
	}
}

func mathFloat64(b []byte) float64 {
	var bits uint64
	for i := 0; i < 8; i++ {
		bits |= uint64(b[i]) << (8 * i)
	}
	return math.Float64frombits(bits)
}
