package netsim

import (
	"fmt"

	"msgroofline/internal/sim"
)

// Fault injection: an opt-in chaos mode for the conformance harness.
// When installed on a Network, every Transfer/TransferPacket may be hit
// by a per-link delay spike or a drop-with-retransmit, both drawn from
// a seeded deterministic stream (single-threaded simulations consume
// draws in event order, so equal seeds reproduce runs bit-for-bit). A
// retransmitted message re-reserves the links on its path after a
// retransmit timeout, which is how later messages legally overtake
// earlier ones — the reordering regime the transport layers must
// tolerate. With no faults installed (the default) the data path is
// untouched and output stays byte-identical to the golden runs.

// Faults configures network fault injection. Install with SetFaults.
type Faults struct {
	// Seed drives the deterministic fault stream.
	Seed uint64
	// DropProb is the per-transmission probability that the message
	// is lost and must be retransmitted after RetransmitDelay.
	DropProb float64
	// MaxRetransmit caps consecutive drops of one message (so every
	// message is eventually delivered); 0 selects the default of 3.
	MaxRetransmit int
	// RetransmitDelay is the timeout before a dropped message is
	// re-sent; 0 selects the default of 1us.
	RetransmitDelay sim.Time
	// SpikeProb is the per-message probability of a latency spike.
	SpikeProb float64
	// MaxSpike bounds the uniform extra delay of a spike.
	MaxSpike sim.Time
}

func (f Faults) validate() error {
	if f.DropProb < 0 || f.DropProb >= 1 {
		return fmt.Errorf("netsim: drop probability %v outside [0, 1)", f.DropProb)
	}
	if f.SpikeProb < 0 || f.SpikeProb > 1 {
		return fmt.Errorf("netsim: spike probability %v outside [0, 1]", f.SpikeProb)
	}
	if f.MaxSpike < 0 || f.RetransmitDelay < 0 {
		return fmt.Errorf("netsim: negative fault delay")
	}
	return nil
}

// faultState is the shared runtime state behind an installed Faults
// configuration.
type faultState struct {
	cfg    Faults
	rng    uint64
	maxR   int
	rto    sim.Time
	drops  int64
	spikes int64
}

// FaultStats reports how many injected events have occurred so far.
type FaultStats struct {
	Drops  int64 // transmissions lost and retransmitted
	Spikes int64 // latency spikes applied
}

// SetFaults installs (or, with nil, removes) fault injection on the
// network. Cached Paths pick the change up immediately — fault state
// lives on the Network, not on the Path.
func (n *Network) SetFaults(f *Faults) {
	if f == nil {
		n.faults = nil
		return
	}
	if err := f.validate(); err != nil {
		panic(err.Error())
	}
	fs := &faultState{cfg: *f, rng: f.Seed, maxR: f.MaxRetransmit, rto: f.RetransmitDelay}
	if fs.maxR <= 0 {
		fs.maxR = 3
	}
	if fs.rto <= 0 {
		fs.rto = sim.Microsecond
	}
	n.faults = fs
}

// FaultStats returns cumulative injected-fault counters (zero when no
// faults are installed).
func (n *Network) FaultStats() FaultStats {
	if n.faults == nil {
		return FaultStats{}
	}
	return FaultStats{Drops: n.faults.drops, Spikes: n.faults.spikes}
}

// next is splitmix64 (same generator as sim's perturbation stream, but
// an independent state so engine and network draws never interleave).
func (fs *faultState) next() uint64 {
	fs.rng += 0x9e3779b97f4a7c15
	z := fs.rng
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// roll draws a uniform float64 in [0, 1).
func (fs *faultState) roll() float64 {
	return float64(fs.next()>>11) / (1 << 53)
}

// spike returns the extra delay of one latency spike.
func (fs *faultState) spike() sim.Time {
	if fs.cfg.MaxSpike <= 0 {
		return 0
	}
	return sim.Time(fs.next() % uint64(fs.cfg.MaxSpike+1))
}

// apply perturbs one delivery: an optional latency spike, then up to
// maxR drop-and-retransmit rounds, each re-reserving the path's links
// (resend re-serializes the payload) after the retransmit timeout.
// It returns the final delivery time.
func (fs *faultState) apply(t sim.Time, resend func(at sim.Time) sim.Time) sim.Time {
	if fs.cfg.SpikeProb > 0 && fs.roll() < fs.cfg.SpikeProb {
		fs.spikes++
		t += fs.spike()
	}
	for r := 0; fs.cfg.DropProb > 0 && r < fs.maxR && fs.roll() < fs.cfg.DropProb; r++ {
		fs.drops++
		t = resend(t + fs.rto)
	}
	return t
}
