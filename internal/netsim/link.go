// Package netsim models a node-local or multi-node communication
// fabric as a graph of full-duplex links with finite bandwidth and
// fixed propagation latency. Messages reserve each link on their path
// FIFO (store-and-forward), which yields contention and queueing
// behaviour without a packet-level simulation.
//
// The package is time-passive: callers supply the current simulated
// time and receive the delivery time back, so it composes with any
// clock source (in this repository, internal/sim).
package netsim

import (
	"fmt"

	"msgroofline/internal/sim"
)

// Link is one direction of a physical channel: a serialization
// resource with fixed bandwidth and propagation latency. A message
// occupies the link for size/bandwidth, FIFO.
type Link struct {
	name  string
	class string   // topology link class ("" when unclassified)
	bw    float64  // bytes per second
	lat   sim.Time // propagation latency

	freeAt   sim.Time // earliest time the next message may start serializing
	busy     sim.Time // total occupied time (for utilization)
	bytes    int64    // total bytes carried
	messages int64    // total messages carried
}

// NewLink returns a link with the given bandwidth (bytes/s) and
// propagation latency. The name is used in diagnostics and stats.
func NewLink(name string, bandwidth float64, latency sim.Time) *Link {
	if bandwidth <= 0 {
		panic(fmt.Sprintf("netsim: link %q: bandwidth must be positive, got %v", name, bandwidth))
	}
	if latency < 0 {
		panic(fmt.Sprintf("netsim: link %q: negative latency", name))
	}
	return &Link{name: name, bw: bandwidth, lat: latency}
}

// Name returns the link's diagnostic name.
func (l *Link) Name() string { return l.name }

// Class returns the topology link class this link was declared with
// (e.g. "local", "global", "edge"; "" for unclassified links).
func (l *Link) Class() string { return l.class }

// Bandwidth returns the link bandwidth in bytes per second.
func (l *Link) Bandwidth() float64 { return l.bw }

// Latency returns the link propagation latency.
func (l *Link) Latency() sim.Time { return l.lat }

// Reserve books the link for a message of the given size arriving at
// time at. It returns when serialization starts (>= at; later if the
// link is busy) and when the last byte arrives at the far end
// (start + serialization + propagation).
func (l *Link) Reserve(at sim.Time, bytes int64) (start, arrive sim.Time) {
	ser := sim.TransferTime(bytes, l.bw)
	start = at
	if l.freeAt > start {
		start = l.freeAt
	}
	l.freeAt = start + ser
	l.busy += ser
	l.bytes += bytes
	l.messages++
	return start, start + ser + l.lat
}

// ReservePacket books the link for a fixed-occupancy packet (e.g. a
// coherence/atomic transaction) arriving at time at: the packet holds
// the link for `occupancy` against later traffic, but its own
// delivery is cut-through (start + propagation latency only). This
// models fabrics whose atomic throughput is limited by transaction
// rate rather than byte rate.
func (l *Link) ReservePacket(at, occupancy sim.Time) (start, arrive sim.Time) {
	if occupancy < 0 {
		occupancy = 0
	}
	start = at
	if l.freeAt > start {
		start = l.freeAt
	}
	l.freeAt = start + occupancy
	l.busy += occupancy
	l.messages++
	return start, start + l.lat
}

// FreeAt returns the earliest time a new message could begin
// serializing on the link.
func (l *Link) FreeAt() sim.Time { return l.freeAt }

// Stats reports cumulative counters for the link.
func (l *Link) Stats() LinkStats {
	return LinkStats{
		Name:     l.name,
		Class:    l.class,
		BusyTime: l.busy,
		Bytes:    l.bytes,
		Messages: l.messages,
	}
}

// Reset clears reservation state and counters (between experiment
// repetitions).
func (l *Link) Reset() {
	l.freeAt = 0
	l.busy = 0
	l.bytes = 0
	l.messages = 0
}

// LinkStats is a snapshot of a link's cumulative counters.
type LinkStats struct {
	Name     string
	Class    string
	BusyTime sim.Time
	Bytes    int64
	Messages int64
}

// Utilization returns the fraction of the interval [0, horizon] the
// link spent serializing data.
func (s LinkStats) Utilization(horizon sim.Time) float64 {
	if horizon <= 0 {
		return 0
	}
	return float64(s.BusyTime) / float64(horizon)
}
