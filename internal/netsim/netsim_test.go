package netsim

import (
	"testing"
	"testing/quick"

	"msgroofline/internal/sim"
)

func TestLinkReserveFIFO(t *testing.T) {
	l := NewLink("l", 1e9, 100*sim.Nanosecond) // 1 GB/s, 100 ns
	// 1000 bytes at 1 GB/s = 1 us serialization.
	start, arrive := l.Reserve(0, 1000)
	if start != 0 {
		t.Fatalf("first message start = %v, want 0", start)
	}
	if arrive != sim.Microsecond+100*sim.Nanosecond {
		t.Fatalf("arrive = %v, want 1.1us", arrive)
	}
	// Second message injected at t=0 must queue behind the first.
	start2, arrive2 := l.Reserve(0, 1000)
	if start2 != sim.Microsecond {
		t.Fatalf("second start = %v, want 1us", start2)
	}
	if arrive2 != 2*sim.Microsecond+100*sim.Nanosecond {
		t.Fatalf("second arrive = %v, want 2.1us", arrive2)
	}
	s := l.Stats()
	if s.Messages != 2 || s.Bytes != 2000 {
		t.Fatalf("stats = %+v", s)
	}
	if s.BusyTime != 2*sim.Microsecond {
		t.Fatalf("busy = %v, want 2us", s.BusyTime)
	}
}

func TestLinkIdleGap(t *testing.T) {
	l := NewLink("l", 1e9, 0)
	l.Reserve(0, 1000)
	// Arriving long after the link is free: no queueing.
	start, _ := l.Reserve(10*sim.Microsecond, 1000)
	if start != 10*sim.Microsecond {
		t.Fatalf("start = %v, want 10us", start)
	}
}

func TestNetworkRouting(t *testing.T) {
	n := New()
	n.AddLink("a", "b", 1e9, 10, 1)
	n.AddLink("b", "c", 1e9, 10, 1)
	n.AddLink("a", "c", 1e9, 50, 1) // direct but same hops? no: 1 hop, preferred
	if h := n.Hops("a", "c"); h != 1 {
		t.Fatalf("hops a-c = %d, want 1 (direct)", h)
	}
	if h := n.Hops("a", "b"); h != 1 {
		t.Fatalf("hops a-b = %d, want 1", h)
	}
	if h := n.Hops("a", "a"); h != 0 {
		t.Fatalf("hops a-a = %d, want 0", h)
	}
	n2 := New()
	n2.AddLink("a", "b", 1e9, 10, 1)
	n2.AddLink("b", "c", 2e9, 10, 1)
	if h := n2.Hops("a", "c"); h != 2 {
		t.Fatalf("hops = %d, want 2", h)
	}
	if bw := n2.PeakBandwidth("a", "c"); bw != 1e9 {
		t.Fatalf("bottleneck = %v, want 1e9", bw)
	}
	if lat := n2.BaseLatency("a", "c"); lat != 20 {
		t.Fatalf("latency = %v, want 20ps", lat)
	}
}

func TestNetworkDisconnected(t *testing.T) {
	n := New()
	n.AddNode("x")
	n.AddNode("y")
	if _, err := n.Transfer(0, "x", "y", 100, 0); err == nil {
		t.Fatal("expected no-route error")
	}
	if n.Hops("x", "y") != -1 {
		t.Fatal("expected -1 hops for disconnected pair")
	}
}

func TestTransferMultiHopStoreAndForward(t *testing.T) {
	n := New()
	n.AddLink("a", "b", 1e9, 100*sim.Nanosecond, 1)
	n.AddLink("b", "c", 1e9, 100*sim.Nanosecond, 1)
	// 1000 B: 1 us per hop serialization + 100 ns per hop latency.
	got, err := n.Transfer(0, "a", "c", 1000, 0)
	if err != nil {
		t.Fatal(err)
	}
	want := 2*(sim.Microsecond+100*sim.Nanosecond) + 0*sim.Nanosecond
	if got != want {
		t.Fatalf("delivery = %v, want %v", got, want)
	}
}

func TestParallelChannelsAvoidContention(t *testing.T) {
	n := New()
	n.AddLink("a", "b", 1e9, 0, 4)
	// Four messages on distinct channels all start at t=0.
	for ch := 0; ch < 4; ch++ {
		got, err := n.Transfer(0, "a", "b", 1000, ch)
		if err != nil {
			t.Fatal(err)
		}
		if got != sim.Microsecond {
			t.Fatalf("channel %d delivery = %v, want 1us", ch, got)
		}
	}
	// A fifth message reuses channel 0 and queues.
	got, _ := n.Transfer(0, "a", "b", 1000, 4)
	if got != 2*sim.Microsecond {
		t.Fatalf("queued delivery = %v, want 2us", got)
	}
	if c := n.Channels("a", "b"); c != 4 {
		t.Fatalf("Channels = %d, want 4", c)
	}
	if bw := n.AggregateBandwidth("a", "b"); bw != 4e9 {
		t.Fatalf("aggregate = %v, want 4e9", bw)
	}
}

func TestSameChannelContention(t *testing.T) {
	n := New()
	n.AddLink("a", "b", 1e9, 0, 2)
	// Two messages on the same channel index serialize.
	first, _ := n.Transfer(0, "a", "b", 1000, 1)
	second, _ := n.Transfer(0, "a", "b", 1000, 1)
	if first != sim.Microsecond || second != 2*sim.Microsecond {
		t.Fatalf("got %v, %v; want 1us, 2us", first, second)
	}
	// Opposite directions never contend (full duplex).
	fwd, _ := n.Transfer(0, "a", "b", 1000, 0)
	rev, _ := n.Transfer(0, "b", "a", 1000, 0)
	if fwd != sim.Microsecond || rev != sim.Microsecond {
		t.Fatalf("duplex broken: fwd=%v rev=%v", fwd, rev)
	}
}

func TestNegativeChannelIndex(t *testing.T) {
	n := New()
	n.AddLink("a", "b", 1e9, 0, 3)
	if _, err := n.Transfer(0, "a", "b", 8, -2); err != nil {
		t.Fatalf("negative channel index should be tolerated: %v", err)
	}
}

func TestReset(t *testing.T) {
	n := New()
	n.AddLink("a", "b", 1e9, 0, 1)
	n.Transfer(0, "a", "b", 1000, 0)
	if len(n.Stats()) == 0 {
		t.Fatal("expected stats before reset")
	}
	n.Reset()
	if len(n.Stats()) != 0 {
		t.Fatal("expected no stats after reset")
	}
	got, _ := n.Transfer(0, "a", "b", 1000, 0)
	if got != sim.Microsecond {
		t.Fatalf("post-reset delivery = %v, want 1us", got)
	}
}

// Property: delivery time is nondecreasing in message size and never
// earlier than injection + base latency + serialization at bottleneck.
func TestTransferLowerBoundProperty(t *testing.T) {
	n := New()
	n.AddLink("a", "b", 25e9, 500*sim.Nanosecond, 1)
	n.AddLink("b", "c", 32e9, 200*sim.Nanosecond, 1)
	f := func(sz uint16, at uint16) bool {
		n.Reset()
		bytes := int64(sz) + 1
		t0 := sim.Time(at) * sim.Nanosecond
		got, err := n.Transfer(t0, "a", "c", bytes, 0)
		if err != nil {
			return false
		}
		lb := t0 + n.BaseLatency("a", "c") + sim.TransferTime(bytes, n.PeakBandwidth("a", "c"))
		return got >= lb
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestLinkStatsUtilization(t *testing.T) {
	s := LinkStats{BusyTime: sim.Microsecond}
	if u := s.Utilization(2 * sim.Microsecond); u != 0.5 {
		t.Fatalf("utilization = %v, want 0.5", u)
	}
	if u := s.Utilization(0); u != 0 {
		t.Fatalf("utilization horizon 0 = %v, want 0", u)
	}
}

func TestPanicOnBadLink(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for zero bandwidth")
		}
	}()
	NewLink("bad", 0, 0)
}

func TestCutThroughVsStoreAndForward(t *testing.T) {
	// DESIGN.md ablation #1: on a multi-hop path, store-and-forward
	// pays serialization per hop while cut-through pays it once.
	build := func() *Network {
		n := New()
		n.AddLink("a", "b", 1e9, 100*sim.Nanosecond, 1)
		n.AddLink("b", "c", 1e9, 100*sim.Nanosecond, 1)
		n.AddLink("c", "d", 1e9, 100*sim.Nanosecond, 1)
		return n
	}
	const bytes = 100000 // 100 us serialization per hop at 1 GB/s
	sf, err := build().Transfer(0, "a", "d", bytes, 0)
	if err != nil {
		t.Fatal(err)
	}
	ct, err := build().TransferCutThrough(0, "a", "d", bytes, 0)
	if err != nil {
		t.Fatal(err)
	}
	ser := sim.TransferTime(bytes, 1e9)
	lat := 300 * sim.Nanosecond
	if sf != 3*ser+lat {
		t.Fatalf("store-and-forward = %v, want 3 ser + lat = %v", sf, 3*ser+lat)
	}
	if ct != ser+lat {
		t.Fatalf("cut-through = %v, want 1 ser + lat = %v", ct, ser+lat)
	}
	// Single hop: the two models agree exactly.
	n1 := New()
	n1.AddLink("x", "y", 1e9, 100*sim.Nanosecond, 1)
	a, _ := n1.Transfer(0, "x", "y", bytes, 0)
	n2 := New()
	n2.AddLink("x", "y", 1e9, 100*sim.Nanosecond, 1)
	b, _ := n2.TransferCutThrough(0, "x", "y", bytes, 0)
	if a != b {
		t.Fatalf("single hop: s&f %v != cut-through %v", a, b)
	}
}

func TestCutThroughPreservesContention(t *testing.T) {
	n := New()
	n.AddLink("a", "b", 1e9, 0, 1)
	first, _ := n.TransferCutThrough(0, "a", "b", 1000, 0)
	second, _ := n.TransferCutThrough(0, "a", "b", 1000, 0)
	if second <= first {
		t.Fatalf("cut-through must still queue: %v then %v", first, second)
	}
}

func TestLookaheadBound(t *testing.T) {
	n := New()
	if got := n.LookaheadBound(); got != 0 {
		t.Fatalf("linkless fabric lookahead = %v, want 0", got)
	}
	n.AddLink("a", "b", 1e9, 500*sim.Nanosecond, 2)
	n.AddLink("b", "c", 1e9, 100*sim.Nanosecond, 1)
	n.AddLink("c", "d", 1e9, 900*sim.Nanosecond, 1)
	if got := n.LookaheadBound(); got != 100*sim.Nanosecond {
		t.Fatalf("lookahead = %v, want 100ns", got)
	}
	// Per-node bound: node a only sees its own 500 ns links, so its
	// outgoing horizon is looser than the global bound.
	if got := n.MustLookaheadFrom("a"); got != 500*sim.Nanosecond {
		t.Fatalf("LookaheadFrom(a) = %v, want 500ns", got)
	}
	if got, err := n.LookaheadFrom("b"); err != nil || got != 100*sim.Nanosecond {
		t.Fatalf("LookaheadFrom(b) = %v, %v, want 100ns", got, err)
	}
	n.AddNode("island")
	if got, err := n.LookaheadFrom("island"); err != nil || got != 0 {
		t.Fatalf("LookaheadFrom(island) = %v, %v, want 0", got, err)
	}
	// Unknown nodes are an error, not a panic: generated topologies
	// feed arbitrary names here.
	if _, err := n.LookaheadFrom("nope"); err == nil {
		t.Fatal("LookaheadFrom on unknown node should error")
	}
	if _, err := n.PathTo("nope", "a"); err == nil {
		t.Fatal("PathTo from unknown node should error")
	}
	if _, err := n.RouteTo("a", "nope"); err == nil {
		t.Fatal("RouteTo to unknown node should error")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("MustLookaheadFrom on unknown node should panic")
		}
	}()
	n.MustLookaheadFrom("nope")
}
