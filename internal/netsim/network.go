package netsim

import (
	"fmt"
	"math"
	"sort"
	"sync"

	"msgroofline/internal/sim"
)

// channelGroup is the set of parallel links (port groups / lanes)
// carrying traffic from one node to a neighbor. A message picks one
// member by channel index; concurrent messages on distinct channels
// do not contend with each other.
type channelGroup struct {
	to    string
	links []*Link
}

// Network is a directed multigraph of nodes joined by channel groups.
// Routing is static shortest-path (hop count, ties broken by insertion
// order), computed lazily and cached: each (src, dst) pair resolves
// once to a *Path carrying the hop list and precomputed route metrics,
// so steady-state sends do a single map probe and no allocation.
// Callers on hot paths can hold the *Path themselves (see PathTo) and
// skip even that probe.
//
// The topology itself (nodes, links, adjacency) is immutable once
// construction finishes — generators build the whole fabric before the
// first rank runs — and AddLink during a run has never been supported
// (it already mutated the adjacency without synchronization). That
// contract lets route resolution read the graph without any lock; only
// the path/route caches need synchronization, and those are sharded
// (cacheShards ways by pair hash) so parallel window workers resolving
// distinct pairs past the prewarm limit no longer serialize on one
// mutex.
type Network struct {
	nodes     []string
	nodeIndex map[string]int
	adj       map[string][]*channelGroup
	// adjx mirrors adj with dense node indices so BFS runs over int32
	// slices instead of string-keyed maps (the map-based walk dominated
	// first-touch route resolution on 1K-node fabrics). Entry order per
	// node matches adj exactly — BFS tie-breaking is unchanged.
	adjx [][]xgroup
	// cache holds the lazily-populated path and route caches, sharded
	// by (src, dst) hash. Large generated fabrics resolve routes on
	// first use from concurrently executing node-group engines, so
	// resolution must be race-free; the resolved values are pure
	// functions of the static topology, so neither lazy population nor
	// the resolve-outside-the-lock build order perturbs simulated
	// timing.
	cache [cacheShards]cacheShard
	// gen counts topology mutations (AddLink); cached Paths record
	// the generation they were resolved under so stale holders can be
	// detected (see Path.Stale).
	gen int
	// routing selects the route-choice policy (minimal by default);
	// detours lists the candidate intermediate nodes Valiant-style
	// non-minimal routes may bounce through (see route.go).
	routing Routing
	detours []string
	// minPicks / altPicks count adaptive route decisions (see
	// RoutingStats). Mutated only under the deterministic transfer
	// orderings (window barrier / owning engine), like link state.
	minPicks int64
	altPicks int64
	// faults, when non-nil, perturbs transfers (see faults.go).
	faults *faultState
}

// xgroup is one outgoing edge of the index-based adjacency: the dense
// index of the neighbour plus the channel group reaching it.
type xgroup struct {
	to int32
	g  *channelGroup
}

// cacheShards is the path/route cache shard count (power of two). 16
// shards keep parallel window workers from serializing on resolution
// while costing four words of mutex state per shard.
const cacheShards = 16

// cacheShard is one lock-striped slice of the resolution caches.
type cacheShard struct {
	mu     sync.RWMutex
	paths  map[[2]string]*Path
	routes map[[2]string]*Route
}

// shardFor hashes a node pair onto its cache shard (FNV-1a over both
// names; any stable hash works — the caches are invisible to simulated
// state).
func shardFor(src, dst string) uint32 {
	h := uint32(2166136261)
	for i := 0; i < len(src); i++ {
		h = (h ^ uint32(src[i])) * 16777619
	}
	h = (h ^ 0xff) * 16777619 // separator so ("ab","c") != ("a","bc")
	for i := 0; i < len(dst); i++ {
		h = (h ^ uint32(dst[i])) * 16777619
	}
	return h & (cacheShards - 1)
}

// New returns an empty network.
func New() *Network {
	n := &Network{
		nodeIndex: make(map[string]int),
		adj:       make(map[string][]*channelGroup),
	}
	for i := range n.cache {
		n.cache[i].paths = make(map[[2]string]*Path)
		n.cache[i].routes = make(map[[2]string]*Route)
	}
	return n
}

// Path is a resolved route between two nodes: the channel groups along
// the shortest route plus route metrics precomputed at resolution
// time. A Path stays valid until the topology changes (AddLink); hot
// paths cache it to make per-message routing allocation- and
// hash-free.
type Path struct {
	net     *Network
	gen     int
	groups  []*channelGroup
	hops    int
	baseLat sim.Time
	peakBW  float64
	aggBW   float64
	minCh   int
}

// Stale reports whether the topology has changed (AddLink) since this
// Path was resolved. A stale Path remains safe to use — its links are
// still part of the fabric — but it no longer reflects the shortest
// route; holders that care should re-resolve with PathTo.
func (p *Path) Stale() bool { return p.net != nil && p.net.gen != p.gen }

// Hops returns the number of hops (0 for a same-node path).
func (p *Path) Hops() int { return p.hops }

// BaseLatency returns the summed propagation latency along the route
// (zero-byte wire time, no contention).
func (p *Path) BaseLatency() sim.Time { return p.baseLat }

// PeakBandwidth returns the single-channel bottleneck bandwidth
// (bytes/s) along the route.
func (p *Path) PeakBandwidth() float64 { return p.peakBW }

// AggregateBandwidth returns the bottleneck of per-hop summed channel
// bandwidth (bytes/s).
func (p *Path) AggregateBandwidth() float64 { return p.aggBW }

// Channels returns the minimum number of parallel channels along the
// route (the usable injection-splitting width).
func (p *Path) Channels() int { return p.minCh }

// Transfer delivers a message of the given size along the path,
// injected at time at on channel ch, using store-and-forward timing
// per hop with FIFO link contention. It returns the delivery time of
// the last byte. When fault injection is installed on the owning
// network, the delivery may additionally suffer a latency spike or
// drop-and-retransmit rounds (see faults.go).
func (p *Path) Transfer(at sim.Time, bytes int64, ch int) sim.Time {
	t := p.transferOnce(at, bytes, ch)
	if p.net != nil && p.net.faults != nil {
		t = p.net.faults.apply(t, func(again sim.Time) sim.Time {
			return p.transferOnce(again, bytes, ch)
		})
	}
	return t
}

// transferOnce is one fault-free transmission attempt along the path.
func (p *Path) transferOnce(at sim.Time, bytes int64, ch int) sim.Time {
	t := at
	for _, g := range p.groups {
		l := g.links[((ch%len(g.links))+len(g.links))%len(g.links)]
		_, t = l.Reserve(t, bytes)
	}
	return t
}

// TransferPacket routes a fixed-occupancy packet (atomic transaction)
// along the path injected at time at on channel ch: each hop is held
// for `occupancy` against later packets while the packet itself cuts
// through at propagation latency. Installed fault injection applies to
// packets exactly as to messages.
func (p *Path) TransferPacket(at, occupancy sim.Time, ch int) sim.Time {
	t := p.packetOnce(at, occupancy, ch)
	if p.net != nil && p.net.faults != nil {
		t = p.net.faults.apply(t, func(again sim.Time) sim.Time {
			return p.packetOnce(again, occupancy, ch)
		})
	}
	return t
}

func (p *Path) packetOnce(at, occupancy sim.Time, ch int) sim.Time {
	t := at
	for _, g := range p.groups {
		l := g.links[((ch%len(g.links))+len(g.links))%len(g.links)]
		_, t = l.ReservePacket(t, occupancy)
	}
	return t
}

// metrics fills in the precomputed route summaries from the hop list.
func (p *Path) metrics() {
	p.hops = len(p.groups)
	p.peakBW = math.Inf(1)
	p.aggBW = math.Inf(1)
	p.minCh = math.MaxInt
	for _, g := range p.groups {
		p.baseLat += g.links[0].Latency()
		if b := g.links[0].Bandwidth(); b < p.peakBW {
			p.peakBW = b
		}
		sum := 0.0
		for _, l := range g.links {
			sum += l.Bandwidth()
		}
		if sum < p.aggBW {
			p.aggBW = sum
		}
		if len(g.links) < p.minCh {
			p.minCh = len(g.links)
		}
	}
	if math.IsInf(p.peakBW, 1) {
		p.peakBW = 0
	}
	if math.IsInf(p.aggBW, 1) {
		p.aggBW = 0
	}
	if p.minCh == math.MaxInt {
		p.minCh = 1
	}
}

// AddNode registers a node name. Adding an existing node is a no-op.
func (n *Network) AddNode(name string) {
	if _, ok := n.nodeIndex[name]; ok {
		return
	}
	n.nodeIndex[name] = len(n.nodes)
	n.nodes = append(n.nodes, name)
	n.adjx = append(n.adjx, nil)
}

// Nodes returns all node names in insertion order.
func (n *Network) Nodes() []string {
	out := make([]string, len(n.nodes))
	copy(out, n.nodes)
	return out
}

// HasNode reports whether name is a registered node.
func (n *Network) HasNode(name string) bool {
	_, ok := n.nodeIndex[name]
	return ok
}

// AddLink joins a and b with a bidirectional channel group: `channels`
// parallel full-duplex links, each with the given per-link bandwidth
// (bytes/s) and propagation latency. Both endpoints are registered as
// nodes if needed. Adding a link invalidates cached routes.
func (n *Network) AddLink(a, b string, bandwidth float64, latency sim.Time, channels int) {
	n.AddClassLink(a, b, "", bandwidth, latency, channels)
}

// AddClassLink is AddLink with a topology link class attached to every
// created link (e.g. "local" / "global" on a dragonfly, "edge" /
// "aggregation" / "core" on a fat-tree). Classes feed per-class
// utilization stats (ClassStats) and routing diagnostics; they do not
// affect routing or timing. Channel counts and link parameters are
// programmer inputs here and must be validated upstream (generated
// topology specs validate before building — see machine.Topology).
func (n *Network) AddClassLink(a, b, class string, bandwidth float64, latency sim.Time, channels int) {
	if channels < 1 {
		panic(fmt.Sprintf("netsim: link %s-%s: channels must be >= 1, got %d", a, b, channels))
	}
	n.AddNode(a)
	n.AddNode(b)
	fwd := &channelGroup{to: b}
	rev := &channelGroup{to: a}
	for c := 0; c < channels; c++ {
		fl := NewLink(fmt.Sprintf("%s->%s#%d", a, b, c), bandwidth, latency)
		rl := NewLink(fmt.Sprintf("%s->%s#%d", b, a, c), bandwidth, latency)
		fl.class, rl.class = class, class
		fwd.links = append(fwd.links, fl)
		rev.links = append(rev.links, rl)
	}
	n.adj[a] = append(n.adj[a], fwd)
	n.adj[b] = append(n.adj[b], rev)
	ai, bi := n.nodeIndex[a], n.nodeIndex[b]
	n.adjx[ai] = append(n.adjx[ai], xgroup{to: int32(bi), g: fwd})
	n.adjx[bi] = append(n.adjx[bi], xgroup{to: int32(ai), g: rev})
	for i := range n.cache {
		sh := &n.cache[i]
		sh.mu.Lock()
		sh.paths = make(map[[2]string]*Path)
		sh.routes = make(map[[2]string]*Route)
		sh.mu.Unlock()
	}
	n.gen++
}

// PathTo resolves (and caches) the shortest (fewest-hop) route from
// src to dst. Unknown nodes and disconnected pairs return errors. The
// returned Path is shared: callers must treat it as read-only, and may
// hold it for the lifetime of the topology to bypass the cache probe
// entirely. Resolution is safe to call concurrently: the BFS reads
// only the immutable topology, so it runs without any lock, and the
// double-checked shard insert guarantees every caller sees the same
// canonical *Path for a pair (racing resolvers build identical values;
// the insert loser adopts the winner's).
func (n *Network) PathTo(src, dst string) (*Path, error) {
	if !n.HasNode(src) {
		return nil, fmt.Errorf("netsim: unknown node %q", src)
	}
	if !n.HasNode(dst) {
		return nil, fmt.Errorf("netsim: unknown node %q", dst)
	}
	key := [2]string{src, dst}
	sh := &n.cache[shardFor(src, dst)]
	sh.mu.RLock()
	p, ok := sh.paths[key]
	sh.mu.RUnlock()
	if ok {
		return p, nil
	}
	return n.resolvePath(sh, key)
}

// resolvePath builds the path for key outside any lock, then installs
// it in the shard under a double-check.
func (n *Network) resolvePath(sh *cacheShard, key [2]string) (*Path, error) {
	p := &Path{net: n, gen: n.gen}
	if key[0] != key[1] {
		groups, err := n.bfs(key[0], key[1])
		if err != nil {
			return nil, err
		}
		p.groups = groups
	}
	p.metrics()
	sh.mu.Lock()
	defer sh.mu.Unlock()
	if q, ok := sh.paths[key]; ok {
		return q, nil // lost a resolve race; the winner is canonical
	}
	sh.paths[key] = p
	return p, nil
}

// bfs finds the shortest route, remembering the group used to reach
// each node. It walks the index-based adjacency with flat predecessor
// slices — first-seen marking over the same per-node edge order as the
// historical map-based walk, so every tie breaks identically.
func (n *Network) bfs(src, dst string) ([]*channelGroup, error) {
	si := int32(n.nodeIndex[src])
	di := int32(n.nodeIndex[dst])
	prev := make([]int32, len(n.nodes))
	for i := range prev {
		prev[i] = -1
	}
	via := make([]*channelGroup, len(n.nodes))
	queue := make([]int32, 0, len(n.nodes))
	prev[si] = si // self-predecessor marks the root visited
	queue = append(queue, si)
	for qi := 0; qi < len(queue); qi++ {
		cur := queue[qi]
		if cur == di {
			break
		}
		for _, x := range n.adjx[cur] {
			if prev[x.to] != -1 {
				continue
			}
			prev[x.to] = cur
			via[x.to] = x.g
			queue = append(queue, x.to)
		}
	}
	if prev[di] == -1 {
		return nil, fmt.Errorf("netsim: no route from %q to %q", src, dst)
	}
	var rev []*channelGroup
	for cur := di; cur != si; cur = prev[cur] {
		rev = append(rev, via[cur])
	}
	p := make([]*channelGroup, len(rev))
	for i := range rev {
		p[i] = rev[len(rev)-1-i]
	}
	return p, nil
}

// Transfer delivers a message of the given size from src to dst,
// injected at time at, using channel ch (messages on distinct channel
// indices ride parallel links where the topology provides them). It
// returns the delivery time of the last byte, using store-and-forward
// timing per hop with FIFO link contention.
func (n *Network) Transfer(at sim.Time, src, dst string, bytes int64, ch int) (sim.Time, error) {
	p, err := n.PathTo(src, dst)
	if err != nil {
		return 0, err
	}
	return p.Transfer(at, bytes, ch), nil
}

// TransferPacket routes a fixed-occupancy packet (atomic transaction)
// from src to dst injected at time at on channel ch: each hop is held
// for `occupancy` against later packets while the packet itself cuts
// through at propagation latency.
func (n *Network) TransferPacket(at sim.Time, src, dst string, occupancy sim.Time, ch int) (sim.Time, error) {
	p, err := n.PathTo(src, dst)
	if err != nil {
		return 0, err
	}
	return p.TransferPacket(at, occupancy, ch), nil
}

// Hops returns the number of hops between src and dst (0 for the same
// node), or -1 if unreachable.
func (n *Network) Hops(src, dst string) int {
	p, err := n.PathTo(src, dst)
	if err != nil {
		return -1
	}
	return p.Hops()
}

// Channels returns the minimum number of parallel channels along the
// route (the usable injection-splitting width), or 0 if unreachable.
func (n *Network) Channels(src, dst string) int {
	p, err := n.PathTo(src, dst)
	if err != nil {
		return 0
	}
	return p.Channels()
}

// PeakBandwidth returns the single-channel bottleneck bandwidth
// (bytes/s) along the route, or 0 if unreachable. This is the ceiling
// a single serialized message stream can achieve.
func (n *Network) PeakBandwidth(src, dst string) float64 {
	p, err := n.PathTo(src, dst)
	if err != nil {
		return 0
	}
	return p.PeakBandwidth()
}

// AggregateBandwidth returns the bottleneck of per-hop summed channel
// bandwidth (bytes/s): the ceiling reachable by splitting a message
// across all parallel channels.
func (n *Network) AggregateBandwidth(src, dst string) float64 {
	p, err := n.PathTo(src, dst)
	if err != nil {
		return 0
	}
	return p.AggregateBandwidth()
}

// BaseLatency returns the sum of propagation latencies along the
// route (zero-byte wire time, no contention).
func (n *Network) BaseLatency(src, dst string) sim.Time {
	p, err := n.PathTo(src, dst)
	if err != nil {
		return 0
	}
	return p.BaseLatency()
}

// LookaheadBound returns the minimum propagation latency over every
// link in the fabric. No message can cross between distinct nodes in
// less simulated time than this, so it is the conservative-parallel
// lookahead bound a sharded event engine may use to advance shards
// past the global horizon safely (DESIGN.md §11). A linkless fabric
// returns 0: no lookahead exists and sharding must stay disabled.
func (n *Network) LookaheadBound() sim.Time {
	min := sim.Time(-1)
	for _, groups := range n.adj {
		for _, g := range groups {
			for _, l := range g.links {
				if min < 0 || l.Latency() < min {
					min = l.Latency()
				}
			}
		}
	}
	if min < 0 {
		return 0
	}
	return min
}

// LookaheadFrom returns the minimum propagation latency over the
// channel groups leaving `node` — the per-link-class lookahead a
// placement that confines the node's ranks to one shard could use
// for that shard's outgoing horizon (tighter than the global
// LookaheadBound on heterogeneous fabrics). It returns an error on
// unknown nodes — node names now come from generated topology specs,
// not only hand-audited literals — and 0 for a node with no outgoing
// links.
func (n *Network) LookaheadFrom(node string) (sim.Time, error) {
	if !n.HasNode(node) {
		return 0, fmt.Errorf("netsim: unknown node %q", node)
	}
	min := sim.Time(-1)
	for _, g := range n.adj[node] {
		for _, l := range g.links {
			if min < 0 || l.Latency() < min {
				min = l.Latency()
			}
		}
	}
	if min < 0 {
		return 0, nil
	}
	return min, nil
}

// MustLookaheadFrom is LookaheadFrom for callers whose node name is
// known-good by construction (e.g. taken from Nodes()); it panics on
// an unknown node.
func (n *Network) MustLookaheadFrom(node string) sim.Time {
	t, err := n.LookaheadFrom(node)
	if err != nil {
		panic(err.Error())
	}
	return t
}

// Reset clears reservation state and counters on every link, plus the
// adaptive-routing pick counters.
func (n *Network) Reset() {
	for _, groups := range n.adj {
		for _, g := range groups {
			for _, l := range g.links {
				l.Reset()
			}
		}
	}
	n.minPicks, n.altPicks = 0, 0
}

// Stats returns cumulative counters for every link that carried at
// least one message, sorted by name.
func (n *Network) Stats() []LinkStats {
	var out []LinkStats
	for _, node := range n.nodes {
		for _, g := range n.adj[node] {
			for _, l := range g.links {
				if s := l.Stats(); s.Messages > 0 {
					out = append(out, s)
				}
			}
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// ClassStats is the per-link-class aggregate of link counters: how
// much of the fabric's traffic each topology tier (intra-router /
// local / global, edge / aggregation / core) carried.
type ClassStats struct {
	Class    string
	Links    int // directed links in the class
	Messages int64
	Bytes    int64
	BusyTime sim.Time
}

// MeanUtilization returns the class's mean per-link busy fraction over
// [0, horizon].
func (s ClassStats) MeanUtilization(horizon sim.Time) float64 {
	if horizon <= 0 || s.Links == 0 {
		return 0
	}
	return float64(s.BusyTime) / float64(horizon) / float64(s.Links)
}

// ClassStatsAll aggregates link counters by link class (including
// links that carried no traffic, so per-class utilization has the
// right denominator), sorted by class name. Unclassified links
// aggregate under "".
func (n *Network) ClassStatsAll() []ClassStats {
	agg := map[string]*ClassStats{}
	for _, node := range n.nodes {
		for _, g := range n.adj[node] {
			for _, l := range g.links {
				c, ok := agg[l.class]
				if !ok {
					c = &ClassStats{Class: l.class}
					agg[l.class] = c
				}
				c.Links++
				c.Messages += l.messages
				c.Bytes += l.bytes
				c.BusyTime += l.busy
			}
		}
	}
	out := make([]ClassStats, 0, len(agg))
	for _, c := range agg {
		out = append(out, *c)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Class < out[j].Class })
	return out
}

// TransferCutThrough is the alternative timing model of DESIGN.md
// ablation #1: the message head propagates hop by hop while the body
// streams behind it, so serialization is paid once at the bottleneck
// instead of per hop. Each link is still occupied for the bottleneck
// serialization time (contention is preserved); only the delivery
// latency differs from Transfer's store-and-forward timing.
func (n *Network) TransferCutThrough(at sim.Time, src, dst string, bytes int64, ch int) (sim.Time, error) {
	p, err := n.PathTo(src, dst)
	if err != nil {
		return 0, err
	}
	ser := sim.TransferTime(bytes, p.PeakBandwidth())
	t := at
	for _, g := range p.groups {
		l := g.links[((ch%len(g.links))+len(g.links))%len(g.links)]
		start := t
		if l.freeAt > start {
			start = l.freeAt
		}
		l.freeAt = start + ser
		l.busy += ser
		l.bytes += bytes
		l.messages++
		t = start + l.lat
	}
	return t + ser, nil
}
