package netsim

import (
	"fmt"
	"math"
	"sort"

	"msgroofline/internal/sim"
)

// channelGroup is the set of parallel links (port groups / lanes)
// carrying traffic from one node to a neighbor. A message picks one
// member by channel index; concurrent messages on distinct channels
// do not contend with each other.
type channelGroup struct {
	to    string
	links []*Link
}

// Network is a directed multigraph of nodes joined by channel groups.
// Routing is static shortest-path (hop count, ties broken by insertion
// order), computed lazily and cached.
type Network struct {
	nodes     []string
	nodeIndex map[string]int
	adj       map[string][]*channelGroup
	routes    map[[2]string][]*channelGroup
}

// New returns an empty network.
func New() *Network {
	return &Network{
		nodeIndex: make(map[string]int),
		adj:       make(map[string][]*channelGroup),
		routes:    make(map[[2]string][]*channelGroup),
	}
}

// AddNode registers a node name. Adding an existing node is a no-op.
func (n *Network) AddNode(name string) {
	if _, ok := n.nodeIndex[name]; ok {
		return
	}
	n.nodeIndex[name] = len(n.nodes)
	n.nodes = append(n.nodes, name)
}

// Nodes returns all node names in insertion order.
func (n *Network) Nodes() []string {
	out := make([]string, len(n.nodes))
	copy(out, n.nodes)
	return out
}

// HasNode reports whether name is a registered node.
func (n *Network) HasNode(name string) bool {
	_, ok := n.nodeIndex[name]
	return ok
}

// AddLink joins a and b with a bidirectional channel group: `channels`
// parallel full-duplex links, each with the given per-link bandwidth
// (bytes/s) and propagation latency. Both endpoints are registered as
// nodes if needed. Adding a link invalidates cached routes.
func (n *Network) AddLink(a, b string, bandwidth float64, latency sim.Time, channels int) {
	if channels < 1 {
		panic(fmt.Sprintf("netsim: link %s-%s: channels must be >= 1, got %d", a, b, channels))
	}
	n.AddNode(a)
	n.AddNode(b)
	fwd := &channelGroup{to: b}
	rev := &channelGroup{to: a}
	for c := 0; c < channels; c++ {
		fwd.links = append(fwd.links, NewLink(fmt.Sprintf("%s->%s#%d", a, b, c), bandwidth, latency))
		rev.links = append(rev.links, NewLink(fmt.Sprintf("%s->%s#%d", b, a, c), bandwidth, latency))
	}
	n.adj[a] = append(n.adj[a], fwd)
	n.adj[b] = append(n.adj[b], rev)
	n.routes = make(map[[2]string][]*channelGroup)
}

// path returns the channel groups along the shortest (fewest-hop)
// route from src to dst, caching the result. It panics on unknown
// nodes and returns an error for disconnected pairs.
func (n *Network) path(src, dst string) ([]*channelGroup, error) {
	if !n.HasNode(src) {
		panic(fmt.Sprintf("netsim: unknown node %q", src))
	}
	if !n.HasNode(dst) {
		panic(fmt.Sprintf("netsim: unknown node %q", dst))
	}
	if src == dst {
		return nil, nil
	}
	key := [2]string{src, dst}
	if p, ok := n.routes[key]; ok {
		return p, nil
	}
	// BFS over nodes, remembering the group used to reach each node.
	type hop struct {
		prev  string
		group *channelGroup
	}
	seen := map[string]hop{src: {}}
	queue := []string{src}
	for len(queue) > 0 {
		cur := queue[0]
		queue = queue[1:]
		if cur == dst {
			break
		}
		for _, g := range n.adj[cur] {
			if _, ok := seen[g.to]; ok {
				continue
			}
			seen[g.to] = hop{prev: cur, group: g}
			queue = append(queue, g.to)
		}
	}
	if _, ok := seen[dst]; !ok {
		return nil, fmt.Errorf("netsim: no route from %q to %q", src, dst)
	}
	var rev []*channelGroup
	for cur := dst; cur != src; {
		h := seen[cur]
		rev = append(rev, h.group)
		cur = h.prev
	}
	p := make([]*channelGroup, len(rev))
	for i := range rev {
		p[i] = rev[len(rev)-1-i]
	}
	n.routes[key] = p
	return p, nil
}

// Transfer delivers a message of the given size from src to dst,
// injected at time at, using channel ch (messages on distinct channel
// indices ride parallel links where the topology provides them). It
// returns the delivery time of the last byte, using store-and-forward
// timing per hop with FIFO link contention.
func (n *Network) Transfer(at sim.Time, src, dst string, bytes int64, ch int) (sim.Time, error) {
	p, err := n.path(src, dst)
	if err != nil {
		return 0, err
	}
	t := at
	for _, g := range p {
		l := g.links[((ch%len(g.links))+len(g.links))%len(g.links)]
		_, t = l.Reserve(t, bytes)
	}
	return t, nil
}

// TransferPacket routes a fixed-occupancy packet (atomic transaction)
// from src to dst injected at time at on channel ch: each hop is held
// for `occupancy` against later packets while the packet itself cuts
// through at propagation latency.
func (n *Network) TransferPacket(at sim.Time, src, dst string, occupancy sim.Time, ch int) (sim.Time, error) {
	p, err := n.path(src, dst)
	if err != nil {
		return 0, err
	}
	t := at
	for _, g := range p {
		l := g.links[((ch%len(g.links))+len(g.links))%len(g.links)]
		_, t = l.ReservePacket(t, occupancy)
	}
	return t, nil
}

// Hops returns the number of hops between src and dst (0 for the same
// node), or -1 if unreachable.
func (n *Network) Hops(src, dst string) int {
	p, err := n.path(src, dst)
	if err != nil {
		return -1
	}
	return len(p)
}

// Channels returns the minimum number of parallel channels along the
// route (the usable injection-splitting width), or 0 if unreachable.
func (n *Network) Channels(src, dst string) int {
	p, err := n.path(src, dst)
	if err != nil {
		return 0
	}
	min := math.MaxInt
	for _, g := range p {
		if len(g.links) < min {
			min = len(g.links)
		}
	}
	if min == math.MaxInt {
		return 1
	}
	return min
}

// PeakBandwidth returns the single-channel bottleneck bandwidth
// (bytes/s) along the route, or 0 if unreachable. This is the ceiling
// a single serialized message stream can achieve.
func (n *Network) PeakBandwidth(src, dst string) float64 {
	p, err := n.path(src, dst)
	if err != nil {
		return 0
	}
	bw := math.Inf(1)
	for _, g := range p {
		if b := g.links[0].Bandwidth(); b < bw {
			bw = b
		}
	}
	if math.IsInf(bw, 1) {
		return 0
	}
	return bw
}

// AggregateBandwidth returns the bottleneck of per-hop summed channel
// bandwidth (bytes/s): the ceiling reachable by splitting a message
// across all parallel channels.
func (n *Network) AggregateBandwidth(src, dst string) float64 {
	p, err := n.path(src, dst)
	if err != nil {
		return 0
	}
	bw := math.Inf(1)
	for _, g := range p {
		sum := 0.0
		for _, l := range g.links {
			sum += l.Bandwidth()
		}
		if sum < bw {
			bw = sum
		}
	}
	if math.IsInf(bw, 1) {
		return 0
	}
	return bw
}

// BaseLatency returns the sum of propagation latencies along the
// route (zero-byte wire time, no contention).
func (n *Network) BaseLatency(src, dst string) sim.Time {
	p, err := n.path(src, dst)
	if err != nil {
		return 0
	}
	var lat sim.Time
	for _, g := range p {
		lat += g.links[0].Latency()
	}
	return lat
}

// Reset clears reservation state and counters on every link.
func (n *Network) Reset() {
	for _, groups := range n.adj {
		for _, g := range groups {
			for _, l := range g.links {
				l.Reset()
			}
		}
	}
}

// Stats returns cumulative counters for every link that carried at
// least one message, sorted by name.
func (n *Network) Stats() []LinkStats {
	var out []LinkStats
	for _, node := range n.nodes {
		for _, g := range n.adj[node] {
			for _, l := range g.links {
				if s := l.Stats(); s.Messages > 0 {
					out = append(out, s)
				}
			}
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// TransferCutThrough is the alternative timing model of DESIGN.md
// ablation #1: the message head propagates hop by hop while the body
// streams behind it, so serialization is paid once at the bottleneck
// instead of per hop. Each link is still occupied for the bottleneck
// serialization time (contention is preserved); only the delivery
// latency differs from Transfer's store-and-forward timing.
func (n *Network) TransferCutThrough(at sim.Time, src, dst string, bytes int64, ch int) (sim.Time, error) {
	p, err := n.path(src, dst)
	if err != nil {
		return 0, err
	}
	ser := sim.TransferTime(bytes, n.PeakBandwidth(src, dst))
	t := at
	for _, g := range p {
		l := g.links[((ch%len(g.links))+len(g.links))%len(g.links)]
		start := t
		if l.freeAt > start {
			start = l.freeAt
		}
		l.freeAt = start + ser
		l.busy += ser
		l.bytes += bytes
		l.messages++
		t = start + l.lat
	}
	return t + ser, nil
}
