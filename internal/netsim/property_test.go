package netsim

import (
	"math/rand"
	"testing"
	"testing/quick"

	"msgroofline/internal/sim"
)

// Property: link busy-time accounting is conserved — the sum of
// serialization times of all transfers equals the accumulated busy
// counters, and utilization never exceeds 1 over the span actually
// used.
func TestPropertyBusyConservation(t *testing.T) {
	f := func(seed int64, nRaw uint8) bool {
		n := int(nRaw%50) + 1
		rng := rand.New(rand.NewSource(seed))
		net := New()
		net.AddLink("a", "b", 10e9, 100*sim.Nanosecond, 1)
		var expectBusy sim.Time
		var last sim.Time
		at := sim.Time(0)
		for i := 0; i < n; i++ {
			bytes := int64(rng.Intn(1<<16)) + 1
			expectBusy += sim.TransferTime(bytes, 10e9)
			deliver, err := net.Transfer(at, "a", "b", bytes, 0)
			if err != nil {
				return false
			}
			if deliver > last {
				last = deliver
			}
			at += sim.Time(rng.Intn(1000)) * sim.Nanosecond
		}
		stats := net.Stats()
		if len(stats) != 1 {
			return false
		}
		s := stats[0]
		if s.BusyTime != expectBusy || s.Messages != int64(n) {
			return false
		}
		return s.Utilization(last) <= 1.0000001
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

// Property: FIFO — deliveries on one channel never reorder relative
// to injection order.
func TestPropertyFIFODelivery(t *testing.T) {
	f := func(seed int64, nRaw uint8) bool {
		n := int(nRaw%30) + 2
		rng := rand.New(rand.NewSource(seed))
		net := New()
		net.AddLink("a", "b", 5e9, 250*sim.Nanosecond, 1)
		var prev sim.Time
		at := sim.Time(0)
		for i := 0; i < n; i++ {
			at += sim.Time(rng.Intn(500)) * sim.Nanosecond
			deliver, err := net.Transfer(at, "a", "b", int64(rng.Intn(4096)+1), 0)
			if err != nil || deliver < prev {
				return false
			}
			prev = deliver
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

// Property: packet reservations never deliver before propagation
// latency and enforce occupancy spacing.
func TestPropertyPacketSpacing(t *testing.T) {
	f := func(nRaw uint8) bool {
		n := int(nRaw%20) + 2
		net := New()
		occ := 500 * sim.Nanosecond
		net.AddLink("a", "b", 32e9, 250*sim.Nanosecond, 1)
		var deliveries []sim.Time
		for i := 0; i < n; i++ {
			d, err := net.TransferPacket(0, "a", "b", occ, 0)
			if err != nil {
				return false
			}
			deliveries = append(deliveries, d)
		}
		for i, d := range deliveries {
			want := sim.Time(i)*occ + 250*sim.Nanosecond
			if d != want {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}
