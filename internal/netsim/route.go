package netsim

import (
	"fmt"

	"msgroofline/internal/sim"
)

// Routing selects the network's route-choice policy.
type Routing int

const (
	// RouteMinimal always takes the shortest (fewest-hop) path — the
	// BFS route PathTo resolves. This is the historical behaviour and
	// the default.
	RouteMinimal Routing = iota
	// RouteAdaptive chooses per message between the minimal path and
	// Valiant-style non-minimal detours through registered
	// intermediate nodes, picking the candidate with the lowest
	// congestion-aware cost estimate at injection time (UGAL-lite).
	// The minimal path wins ties, so an idle fabric routes exactly as
	// RouteMinimal does.
	RouteAdaptive
)

// String names the policy as used in figures.
func (r Routing) String() string {
	if r == RouteAdaptive {
		return "adaptive"
	}
	return "minimal"
}

// SetRouting selects the route-choice policy. Call during topology
// construction, before any route resolves.
func (n *Network) SetRouting(r Routing) {
	n.routing = r
}

// RoutingPolicy returns the configured policy.
func (n *Network) RoutingPolicy() Routing { return n.routing }

// AddDetour registers a candidate intermediate node for non-minimal
// (Valiant-style) routes. Topology generators register one detour per
// dragonfly group (a router) so adaptive routes can bounce traffic
// through a lightly-loaded third group. Detours are consulted in
// registration order, which keeps alternative-route construction
// deterministic.
func (n *Network) AddDetour(node string) {
	n.detours = append(n.detours, node)
}

// maxAltsPerRoute caps the non-minimal candidates a route carries;
// evaluating every registered detour per message would make the
// per-send cost scale with the topology, not the path.
const maxAltsPerRoute = 4

// Route is a resolved routing decision between two nodes: the minimal
// path plus (under RouteAdaptive) a bounded set of precomputed
// non-minimal alternatives. Like Path, a Route is shared and
// read-only; per-message state lives entirely in the links.
type Route struct {
	net  *Network
	min  *Path
	alts []*Path
}

// RouteTo resolves (and caches) the Route from src to dst under the
// network's routing policy. Under RouteMinimal (or with no registered
// detours) the Route degenerates to the minimal Path and behaves
// byte-for-byte identically to it. Safe to call concurrently: the
// route is composed from canonical cached paths without holding any
// lock (path resolution synchronizes per path-cache shard on its own),
// then installed in its route shard under a double-check, so parallel
// workers resolving distinct pairs never serialize on a shared mutex.
func (n *Network) RouteTo(src, dst string) (*Route, error) {
	if !n.HasNode(src) {
		return nil, fmt.Errorf("netsim: unknown node %q", src)
	}
	if !n.HasNode(dst) {
		return nil, fmt.Errorf("netsim: unknown node %q", dst)
	}
	key := [2]string{src, dst}
	sh := &n.cache[shardFor(src, dst)]
	sh.mu.RLock()
	r, ok := sh.routes[key]
	sh.mu.RUnlock()
	if ok {
		return r, nil
	}
	min, err := n.PathTo(src, dst)
	if err != nil {
		return nil, err
	}
	r = &Route{net: n, min: min}
	if n.routing == RouteAdaptive && src != dst {
		r.alts = n.buildAlts(src, dst, min)
	}
	sh.mu.Lock()
	defer sh.mu.Unlock()
	if q, ok := sh.routes[key]; ok {
		return q, nil // lost a resolve race; the winner is canonical
	}
	sh.routes[key] = r
	return r, nil
}

// buildAlts composes Valiant-style two-leg detour paths src -> via ->
// dst for registered detour nodes, keeping at most maxAltsPerRoute of
// the shortest (ties broken by registration order, so the set is
// deterministic). Detours that coincide with an endpoint, are
// unreachable, or degenerate to the minimal hop count are skipped —
// a "detour" no longer than the minimal path is the minimal path's
// job. The via legs resolve through the sharded path cache (PathTo),
// so building alternatives takes no lock of its own and detour legs
// shared between routes are BFS'd once.
func (n *Network) buildAlts(src, dst string, min *Path) []*Path {
	type cand struct {
		p    *Path
		hops int
	}
	var cands []cand
	for _, via := range n.detours {
		if via == src || via == dst || !n.HasNode(via) {
			continue
		}
		a, err := n.PathTo(src, via)
		if err != nil {
			continue
		}
		b, err := n.PathTo(via, dst)
		if err != nil {
			continue
		}
		hops := a.hops + b.hops
		if hops <= min.hops {
			continue
		}
		p := &Path{net: n, gen: n.gen}
		p.groups = append(append([]*channelGroup{}, a.groups...), b.groups...)
		p.metrics()
		cands = append(cands, cand{p: p, hops: hops})
	}
	// Stable selection of the shortest candidates: registration order
	// breaks ties because the insertion sort below never swaps equals.
	for i := 1; i < len(cands); i++ {
		for j := i; j > 0 && cands[j].hops < cands[j-1].hops; j-- {
			cands[j], cands[j-1] = cands[j-1], cands[j]
		}
	}
	if len(cands) > maxAltsPerRoute {
		cands = cands[:maxAltsPerRoute]
	}
	alts := make([]*Path, len(cands))
	for i, c := range cands {
		alts[i] = c.p
	}
	return alts
}

// Min returns the minimal path of the route.
func (r *Route) Min() *Path { return r.min }

// Alts returns the precomputed non-minimal alternatives (empty under
// RouteMinimal).
func (r *Route) Alts() []*Path { return r.alts }

// Hops, BaseLatency, PeakBandwidth, AggregateBandwidth and Channels
// describe the minimal path: latency-sensitive queries (lookahead,
// model fitting, atomics) always see minimal-route metrics, because
// detours are taken only under congestion.
func (r *Route) Hops() int                   { return r.min.Hops() }
func (r *Route) BaseLatency() sim.Time       { return r.min.BaseLatency() }
func (r *Route) PeakBandwidth() float64      { return r.min.PeakBandwidth() }
func (r *Route) AggregateBandwidth() float64 { return r.min.AggregateBandwidth() }
func (r *Route) Channels() int               { return r.min.Channels() }

// cost estimates the congestion-aware delivery cost of sending a
// message along p at time at on channel ch: propagation plus per-hop
// store-and-forward serialization plus the queueing delay of each
// hop's chosen link (how far past `at` the link is already booked).
// It reads link state without mutating it.
func pathCost(p *Path, at sim.Time, bytes int64, ch int) sim.Time {
	cost := p.baseLat
	for _, g := range p.groups {
		l := g.links[((ch%len(g.links))+len(g.links))%len(g.links)]
		cost += sim.TransferTime(bytes, l.bw)
		if l.freeAt > at {
			cost += l.freeAt - at
		}
	}
	return cost
}

// Transfer delivers a message along the route: under RouteMinimal (or
// when no alternatives exist) it is exactly the minimal Path's
// Transfer; under RouteAdaptive it first estimates the
// congestion-aware cost of the minimal path and each alternative and
// takes the cheapest, with the minimal path winning ties. The choice
// reads link reservation state, so calls must happen under the same
// deterministic orderings that link mutation requires (owning engine
// or window barrier) — which makes the pick sequence, and therefore
// simulated output, invariant under worker counts.
func (r *Route) Transfer(at sim.Time, bytes int64, ch int) sim.Time {
	if len(r.alts) == 0 {
		return r.min.Transfer(at, bytes, ch)
	}
	best := r.min
	bestCost := pathCost(r.min, at, bytes, ch)
	for _, alt := range r.alts {
		if c := pathCost(alt, at, bytes, ch); c < bestCost {
			best, bestCost = alt, c
		}
	}
	if best == r.min {
		r.net.minPicks++
	} else {
		r.net.altPicks++
	}
	return best.Transfer(at, bytes, ch)
}

// TransferPacket routes a fixed-occupancy packet along the minimal
// path. Atomic transactions are latency-bound request/response pairs;
// bouncing them through detours would only stretch the round trip, so
// adaptive routing applies to bulk transfers, not packets.
func (r *Route) TransferPacket(at, occupancy sim.Time, ch int) sim.Time {
	return r.min.TransferPacket(at, occupancy, ch)
}

// RoutingStats reports how many adaptive transfers took the minimal
// path vs a non-minimal detour. Both are 0 under RouteMinimal (the
// policy never evaluates a choice) and after Reset.
func (n *Network) RoutingStats() (minimal, nonMinimal int64) {
	return n.minPicks, n.altPicks
}
