package netsim

import (
	"testing"

	"msgroofline/internal/sim"
)

// diamond builds a-b joined directly (1 hop) and via a 2-hop detour
// through c, with a detour registered. Adaptive routing can then
// choose per message between the short congested path and the longer
// idle one.
func diamond(routing Routing) *Network {
	n := New()
	n.AddLink("a", "b", 1e9, 100*sim.Nanosecond, 1)
	n.AddLink("a", "c", 1e9, 100*sim.Nanosecond, 1)
	n.AddLink("c", "b", 1e9, 100*sim.Nanosecond, 1)
	n.SetRouting(routing)
	n.AddDetour("c")
	return n
}

func TestRouteMinimalDegeneratesToPath(t *testing.T) {
	// Under RouteMinimal the Route must time transfers byte-for-byte
	// like the minimal Path, even with detours registered.
	nr := diamond(RouteMinimal)
	np := diamond(RouteMinimal)
	r, err := nr.RouteTo("a", "b")
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Alts()) != 0 {
		t.Fatalf("minimal routing built %d alts", len(r.Alts()))
	}
	p, err := np.PathTo("a", "b")
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		at := sim.Time(i) * 10 * sim.Nanosecond
		if got, want := r.Transfer(at, 1000, 0), p.Transfer(at, 1000, 0); got != want {
			t.Fatalf("transfer %d: route %v != path %v", i, got, want)
		}
	}
	if min, alt := nr.RoutingStats(); min != 0 || alt != 0 {
		t.Fatalf("minimal policy should never tally picks: %d/%d", min, alt)
	}
}

func TestAdaptiveIdleTakesMinimal(t *testing.T) {
	n := diamond(RouteAdaptive)
	r, err := n.RouteTo("a", "b")
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Alts()) != 1 {
		t.Fatalf("alts = %d, want 1 (via c)", len(r.Alts()))
	}
	// Idle fabric: the minimal path wins the tiebreak and timing
	// matches plain minimal routing.
	ref := diamond(RouteMinimal)
	p, _ := ref.PathTo("a", "b")
	if got, want := r.Transfer(0, 1000, 0), p.Transfer(0, 1000, 0); got != want {
		t.Fatalf("idle adaptive transfer = %v, want minimal %v", got, want)
	}
	if min, alt := n.RoutingStats(); min != 1 || alt != 0 {
		t.Fatalf("picks = %d/%d, want 1 minimal, 0 alt", min, alt)
	}
}

func TestAdaptiveDivertsUnderCongestion(t *testing.T) {
	n := diamond(RouteAdaptive)
	// Congest the direct a-b link: book it far into the future.
	for i := 0; i < 10; i++ {
		if _, err := n.Transfer(0, "a", "b", 100000, 0); err != nil {
			t.Fatal(err)
		}
	}
	r, _ := n.RouteTo("a", "b")
	got := r.Transfer(0, 1000, 0)
	// The 2-hop detour is idle: 2 x (1 us serialization + 100 ns).
	want := 2 * (sim.Microsecond + 100*sim.Nanosecond)
	if got != want {
		t.Fatalf("congested transfer = %v, want detour %v", got, want)
	}
	if _, alt := n.RoutingStats(); alt != 1 {
		t.Fatalf("altPicks = %d, want 1", alt)
	}
	// Reset clears the pick counters with the rest of the state.
	n.Reset()
	if min, alt := n.RoutingStats(); min != 0 || alt != 0 {
		t.Fatalf("post-reset picks = %d/%d", min, alt)
	}
}

func TestAdaptiveDeterminism(t *testing.T) {
	// The same injection sequence on two identical fabrics must make
	// identical choices and produce identical times.
	run := func() []sim.Time {
		n := diamond(RouteAdaptive)
		r, _ := n.RouteTo("a", "b")
		var out []sim.Time
		for i := 0; i < 20; i++ {
			out = append(out, r.Transfer(sim.Time(i%3)*sim.Nanosecond, 50000, 0))
		}
		min, alt := n.RoutingStats()
		out = append(out, sim.Time(min), sim.Time(alt))
		return out
	}
	a, b := run(), run()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("run diverged at %d: %v != %v", i, a[i], b[i])
		}
	}
}

func TestRouteAltsSkipDegenerateDetours(t *testing.T) {
	n := New()
	n.AddLink("a", "b", 1e9, 10, 1)
	n.SetRouting(RouteAdaptive)
	n.AddDetour("a")     // endpoint: skipped
	n.AddDetour("b")     // endpoint: skipped
	n.AddDetour("ghost") // not in fabric: skipped
	r, err := n.RouteTo("a", "b")
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Alts()) != 0 {
		t.Fatalf("degenerate detours produced %d alts", len(r.Alts()))
	}
	// Packet transfers always ride minimal, even under adaptive.
	if got := r.TransferPacket(0, 5*sim.Nanosecond, 0); got <= 0 {
		t.Fatalf("packet transfer = %v", got)
	}
}

func TestClassStatsAll(t *testing.T) {
	n := New()
	n.AddClassLink("a", "b", "global", 1e9, 0, 1)
	n.AddClassLink("b", "c", "local", 1e9, 0, 2)
	n.AddClassLink("c", "d", "global", 2e9, 0, 1) // idle, same class as a-b
	if _, err := n.Transfer(0, "a", "b", 1000, 0); err != nil {
		t.Fatal(err)
	}
	cs := n.ClassStatsAll()
	if len(cs) != 2 || cs[0].Class != "global" || cs[1].Class != "local" {
		t.Fatalf("classes = %+v", cs)
	}
	g := cs[0]
	// Two undirected global links = 4 directed; the idle c-d pair must
	// still count toward the denominator.
	if g.Links != 4 || g.Messages != 1 || g.Bytes != 1000 {
		t.Fatalf("global stats = %+v", g)
	}
	if g.BusyTime != sim.Microsecond {
		t.Fatalf("global busy = %v, want 1us", g.BusyTime)
	}
	// Mean utilization: 1 us busy over 4 links x 1 us horizon.
	if u := g.MeanUtilization(sim.Microsecond); u != 0.25 {
		t.Fatalf("global mean utilization = %v, want 0.25", u)
	}
	if u := g.MeanUtilization(0); u != 0 {
		t.Fatalf("zero-horizon utilization = %v", u)
	}
	if cs[1].Messages != 0 || cs[1].Links != 4 {
		t.Fatalf("local stats = %+v", cs[1])
	}
	// Link Class accessor and Stats plumbing.
	p, _ := n.PathTo("a", "b")
	if p == nil {
		t.Fatal("path missing")
	}
	found := false
	for _, ls := range n.Stats() {
		if ls.Name == "a->b#0" {
			found = true
			if ls.Class != "global" {
				t.Fatalf("link stats class = %q, want global", ls.Class)
			}
		}
	}
	if !found {
		t.Fatal("a->b#0 missing from Stats()")
	}
}
