package netsim

import (
	"testing"

	"msgroofline/internal/sim"
)

// TestAddLinkMidRunInvalidatesPaths mutates the topology after routes
// have been resolved and traffic sent: the path cache must be dropped
// (new lookups see the shorter route) and Paths held across the
// mutation must report Stale so long-lived holders can re-resolve.
func TestAddLinkMidRunInvalidatesPaths(t *testing.T) {
	n := New()
	n.AddLink("a", "c", 1e9, 100*sim.Nanosecond, 1)
	n.AddLink("c", "b", 1e9, 100*sim.Nanosecond, 1)

	old, err := n.PathTo("a", "b")
	if err != nil {
		t.Fatal(err)
	}
	if old.Hops() != 2 {
		t.Fatalf("a->b hops = %d, want 2 via c", old.Hops())
	}
	if old.Stale() {
		t.Fatal("fresh path reports stale")
	}
	if again, _ := n.PathTo("a", "b"); again != old {
		t.Fatal("repeat lookup did not hit the cache")
	}
	// First send over the cached route.
	slow := old.Transfer(0, 4096, 0)

	// Topology grows mid-run: a direct a-b cable appears.
	n.AddLink("a", "b", 1e9, 100*sim.Nanosecond, 1)
	if !old.Stale() {
		t.Fatal("held path does not report staleness after AddLink")
	}
	fresh, err := n.PathTo("a", "b")
	if err != nil {
		t.Fatal(err)
	}
	if fresh == old {
		t.Fatal("AddLink did not invalidate the path cache")
	}
	if fresh.Stale() {
		t.Fatal("re-resolved path reports stale")
	}
	if fresh.Hops() != 1 {
		t.Fatalf("a->b hops after AddLink = %d, want 1", fresh.Hops())
	}
	if fresh.BaseLatency() >= old.BaseLatency() {
		t.Fatalf("direct route latency %v not below relayed %v",
			fresh.BaseLatency(), old.BaseLatency())
	}
	// The new route's links start idle: a same-size transfer cannot be
	// slower than the relayed one was, and the stale handle keeps
	// working (it still owns its old links) for callers that ignore
	// the staleness signal.
	if fast := fresh.Transfer(0, 4096, 0); fast > slow {
		t.Fatalf("direct transfer finished at %v, relayed at %v", fast, slow)
	}
	_ = old.Transfer(0, 64, 0)
}
