// Package plot renders the paper's figures as terminal ASCII charts
// (log-log bandwidth vs. message size with ceilings and latency
// diagonals) and emits the underlying series as CSV for external
// plotting.
package plot

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strings"
)

// Series is one named line/scatter on a chart.
type Series struct {
	Name string
	X    []float64
	Y    []float64
}

// markers cycle across series in a chart.
var markers = []byte{'o', 'x', '+', '*', '#', '@', '%', '&', '^', '~'}

// Chart is an ASCII chart specification.
type Chart struct {
	Title  string
	XLabel string
	YLabel string
	XLog   bool
	YLog   bool
	Width  int // plot area columns (default 72)
	Height int // plot area rows (default 24)
	Series []Series
}

// Add appends a series.
func (c *Chart) Add(s Series) { c.Series = append(c.Series, s) }

// AddXY appends a series from x/y slices.
func (c *Chart) AddXY(name string, x, y []float64) {
	c.Add(Series{Name: name, X: x, Y: y})
}

func (c *Chart) dims() (w, h int) {
	w, h = c.Width, c.Height
	if w <= 0 {
		w = 72
	}
	if h <= 0 {
		h = 24
	}
	return
}

// Render draws the chart.
func (c *Chart) Render() string {
	var b strings.Builder
	c.RenderTo(&b)
	return b.String()
}

// RenderTo draws the chart to w.
func (c *Chart) RenderTo(out io.Writer) {
	w, h := c.dims()
	xmin, xmax := math.Inf(1), math.Inf(-1)
	ymin, ymax := math.Inf(1), math.Inf(-1)
	tx := func(v float64) float64 {
		if c.XLog {
			return math.Log10(v)
		}
		return v
	}
	ty := func(v float64) float64 {
		if c.YLog {
			return math.Log10(v)
		}
		return v
	}
	any := false
	for _, s := range c.Series {
		for i := range s.X {
			x, y := s.X[i], s.Y[i]
			if c.XLog && x <= 0 || c.YLog && y <= 0 {
				continue
			}
			if math.IsNaN(x) || math.IsNaN(y) || math.IsInf(x, 0) || math.IsInf(y, 0) {
				continue
			}
			any = true
			xmin, xmax = math.Min(xmin, tx(x)), math.Max(xmax, tx(x))
			ymin, ymax = math.Min(ymin, ty(y)), math.Max(ymax, ty(y))
		}
	}
	if c.Title != "" {
		fmt.Fprintf(out, "%s\n", c.Title)
	}
	if !any {
		fmt.Fprintln(out, "(no data)")
		return
	}
	if xmax == xmin {
		xmax = xmin + 1
	}
	if ymax == ymin {
		ymax = ymin + 1
	}
	grid := make([][]byte, h)
	for r := range grid {
		grid[r] = []byte(strings.Repeat(" ", w))
	}
	for si, s := range c.Series {
		m := markers[si%len(markers)]
		for i := range s.X {
			x, y := s.X[i], s.Y[i]
			if c.XLog && x <= 0 || c.YLog && y <= 0 {
				continue
			}
			if math.IsNaN(x) || math.IsNaN(y) || math.IsInf(x, 0) || math.IsInf(y, 0) {
				continue
			}
			col := int((tx(x) - xmin) / (xmax - xmin) * float64(w-1))
			row := h - 1 - int((ty(y)-ymin)/(ymax-ymin)*float64(h-1))
			if col < 0 || col >= w || row < 0 || row >= h {
				continue
			}
			grid[row][col] = m
		}
	}
	yTicks := axisTicks(ymin, ymax, c.YLog)
	labelW := 10
	for r := 0; r < h; r++ {
		label := strings.Repeat(" ", labelW)
		frac := 1 - float64(r)/float64(h-1)
		v := ymin + frac*(ymax-ymin)
		for _, tick := range yTicks {
			tr := h - 1 - int((tick-ymin)/(ymax-ymin)*float64(h-1))
			if tr == r {
				tv := tick
				if c.YLog {
					tv = math.Pow(10, tick)
				}
				label = fmt.Sprintf("%*s", labelW, formatTick(tv))
				break
			}
		}
		_ = v
		fmt.Fprintf(out, "%s |%s\n", label, string(grid[r]))
	}
	fmt.Fprintf(out, "%s +%s\n", strings.Repeat(" ", labelW), strings.Repeat("-", w))
	// X tick labels on one line.
	xline := []byte(strings.Repeat(" ", w))
	for _, tick := range axisTicks(xmin, xmax, c.XLog) {
		col := int((tick - xmin) / (xmax - xmin) * float64(w-1))
		tv := tick
		if c.XLog {
			tv = math.Pow(10, tick)
		}
		s := formatTick(tv)
		for i := 0; i < len(s) && col+i < w; i++ {
			xline[col+i] = s[i]
		}
	}
	fmt.Fprintf(out, "%s  %s\n", strings.Repeat(" ", labelW), string(xline))
	if c.XLabel != "" || c.YLabel != "" {
		fmt.Fprintf(out, "%s  x: %s    y: %s\n", strings.Repeat(" ", labelW), c.XLabel, c.YLabel)
	}
	for si, s := range c.Series {
		fmt.Fprintf(out, "%s   %c %s\n", strings.Repeat(" ", labelW), markers[si%len(markers)], s.Name)
	}
}

// axisTicks picks tick positions in transformed space: integer decades
// for log axes, ~5 even steps for linear.
func axisTicks(lo, hi float64, logScale bool) []float64 {
	var ticks []float64
	if logScale {
		for d := math.Ceil(lo); d <= math.Floor(hi)+1e-9; d++ {
			ticks = append(ticks, d)
		}
		if len(ticks) > 8 {
			step := (len(ticks) + 7) / 8
			var thin []float64
			for i := 0; i < len(ticks); i += step {
				thin = append(thin, ticks[i])
			}
			ticks = thin
		}
		return ticks
	}
	for i := 0; i <= 4; i++ {
		ticks = append(ticks, lo+(hi-lo)*float64(i)/4)
	}
	return ticks
}

func formatTick(v float64) string {
	av := math.Abs(v)
	switch {
	case av >= 1e9:
		return fmt.Sprintf("%.0fG", v/1e9)
	case av >= 1e6:
		return fmt.Sprintf("%.0fM", v/1e6)
	case av >= 1e3:
		return fmt.Sprintf("%.0fK", v/1e3)
	case av >= 1:
		return fmt.Sprintf("%.3g", v)
	case av == 0:
		return "0"
	default:
		return fmt.Sprintf("%.2g", v)
	}
}

// WriteCSV emits all series in long form: series,x,y.
func WriteCSV(w io.Writer, series []Series) error {
	if _, err := fmt.Fprintln(w, "series,x,y"); err != nil {
		return err
	}
	for _, s := range series {
		if len(s.X) != len(s.Y) {
			return fmt.Errorf("plot: series %q has %d x values but %d y values", s.Name, len(s.X), len(s.Y))
		}
		for i := range s.X {
			if _, err := fmt.Fprintf(w, "%s,%g,%g\n", csvEscape(s.Name), s.X[i], s.Y[i]); err != nil {
				return err
			}
		}
	}
	return nil
}

func csvEscape(s string) string {
	if strings.ContainsAny(s, ",\"\n") {
		return `"` + strings.ReplaceAll(s, `"`, `""`) + `"`
	}
	return s
}

// SortedByX returns a copy of s with points ordered by X (line charts
// expect monotonic X).
func SortedByX(s Series) Series {
	type pt struct{ x, y float64 }
	pts := make([]pt, len(s.X))
	for i := range s.X {
		pts[i] = pt{s.X[i], s.Y[i]}
	}
	sort.Slice(pts, func(i, j int) bool { return pts[i].x < pts[j].x })
	out := Series{Name: s.Name, X: make([]float64, len(pts)), Y: make([]float64, len(pts))}
	for i, p := range pts {
		out.X[i], out.Y[i] = p.x, p.y
	}
	return out
}
