package plot

import (
	"bytes"
	"math"
	"strings"
	"testing"
)

func TestRenderBasicChart(t *testing.T) {
	c := Chart{
		Title: "Fig X", XLabel: "message size", YLabel: "GB/s",
		XLog: true, YLog: true, Width: 40, Height: 10,
	}
	var x, y []float64
	for b := 8.0; b <= 1<<20; b *= 4 {
		x = append(x, b)
		y = append(y, b/(b/25e9+5e-6)/1e9)
	}
	c.AddXY("two-sided", x, y)
	out := c.Render()
	if !strings.Contains(out, "Fig X") {
		t.Fatal("missing title")
	}
	if !strings.Contains(out, "two-sided") {
		t.Fatal("missing legend")
	}
	if !strings.Contains(out, "o") {
		t.Fatal("missing markers")
	}
	if !strings.Contains(out, "x: message size") {
		t.Fatal("missing axis labels")
	}
}

func TestRenderEmpty(t *testing.T) {
	c := Chart{Title: "empty"}
	if out := c.Render(); !strings.Contains(out, "(no data)") {
		t.Fatalf("empty chart output: %q", out)
	}
}

func TestRenderSkipsNonPositiveOnLogAxes(t *testing.T) {
	c := Chart{XLog: true, YLog: true, Width: 20, Height: 8}
	c.AddXY("s", []float64{0, -5, 10, math.NaN()}, []float64{1, 1, 100, 1})
	out := c.Render()
	if out == "" || strings.Contains(out, "(no data)") {
		t.Fatalf("valid point should render: %q", out)
	}
}

func TestMultipleSeriesDistinctMarkers(t *testing.T) {
	c := Chart{Width: 30, Height: 8}
	c.AddXY("a", []float64{1, 2, 3}, []float64{1, 2, 3})
	c.AddXY("b", []float64{1, 2, 3}, []float64{3, 2, 1})
	out := c.Render()
	if !strings.Contains(out, "o a") || !strings.Contains(out, "x b") {
		t.Fatalf("legend markers missing:\n%s", out)
	}
}

func TestWriteCSV(t *testing.T) {
	var b bytes.Buffer
	err := WriteCSV(&b, []Series{
		{Name: "plain", X: []float64{1, 2}, Y: []float64{3, 4}},
		{Name: `with,comma "q"`, X: []float64{5}, Y: []float64{6}},
	})
	if err != nil {
		t.Fatal(err)
	}
	out := b.String()
	if !strings.HasPrefix(out, "series,x,y\n") {
		t.Fatalf("missing header: %q", out)
	}
	if !strings.Contains(out, "plain,1,3") {
		t.Fatalf("missing row: %q", out)
	}
	if !strings.Contains(out, `"with,comma ""q""",5,6`) {
		t.Fatalf("bad escaping: %q", out)
	}
}

func TestWriteCSVMismatched(t *testing.T) {
	var b bytes.Buffer
	if err := WriteCSV(&b, []Series{{Name: "bad", X: []float64{1}, Y: nil}}); err == nil {
		t.Fatal("expected error for mismatched series")
	}
}

func TestSortedByX(t *testing.T) {
	s := SortedByX(Series{Name: "s", X: []float64{3, 1, 2}, Y: []float64{30, 10, 20}})
	for i, want := range []float64{1, 2, 3} {
		if s.X[i] != want || s.Y[i] != want*10 {
			t.Fatalf("sorted = %+v", s)
		}
	}
}

func TestAxisTicksLog(t *testing.T) {
	ticks := axisTicks(0.1, 6.2, true) // decades 1..6
	if len(ticks) == 0 {
		t.Fatal("no ticks")
	}
	for _, tk := range ticks {
		if tk != math.Floor(tk) {
			t.Fatalf("log tick %v not an integer decade", tk)
		}
	}
}
