// Package pointcache is a content-addressed, two-tier memoization
// cache for the deterministic simulation kernels behind the sweep
// figures. Every cached value is the simulated elapsed time of one
// bench kernel run — a sweep point, a CAS latency, or a Fig-10 split
// run — and the key is a cryptographic hash of everything that
// determines that value: the fully-resolved machine.Config parameter
// set (see machine.Config.AppendFingerprint), the kernel kind, the
// transport, the rank count, the per-point coordinates, and a schema
// salt that is bumped whenever simulation semantics change outside the
// fingerprinted parameters. A hit is therefore provably the *same*
// simulation — same code version, same calibration, same coordinates —
// and any parameter or schema change misses cleanly instead of serving
// stale timings.
//
// Tiers: an in-memory map always fronts the cache; ModeDisk adds a
// persistent directory of one JSON entry per key (written atomically
// via rename), so repeated suite runs — local iteration and CI —
// simulate only the diff. Disk entries are self-checking: a parse
// failure, schema mismatch, or key mismatch counts as a miss and the
// caller re-simulates, so a corrupted cache can cost time but never
// correctness.
//
// All methods are safe for concurrent use and safe on a nil *Cache
// (every operation is a no-op miss), so call sites need no guards.
package pointcache

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"

	"msgroofline/internal/machine"
	"msgroofline/internal/sim"
)

// SchemaSalt versions the simulation semantics that the machine
// fingerprint cannot capture: the engine's timing rules, the transport
// protocols in internal/mpi, internal/shmem and internal/runtime, and
// the fabric topology builders. Bump it in any PR that deliberately
// changes simulated output (the same PRs that regenerate
// results/experiments-quick.txt); every existing cache entry then
// misses and is re-simulated under the new semantics. See DESIGN.md
// §10 for the policy.
const SchemaSalt = "msgroof-pointcache/v1"

// Kind names the simulation kernel family a key belongs to, so points
// of different kernels can never collide even at equal coordinates.
type Kind string

const (
	// KindSweep is one bench.measure sweep point (n messages of B bytes).
	KindSweep Kind = "sweep"
	// KindCAS is one averaged compare-and-swap latency measurement.
	KindCAS Kind = "cas"
	// KindSplit is one Fig-10 split run (volume sent in `parts` parts).
	KindSplit Kind = "split"
	// KindTrigger is one averaged stream-trigger delivery latency
	// measurement (stream-triggered transport micro-number).
	KindTrigger Kind = "trigger"
	// KindChan is one memory-channel open-handshake cost measurement
	// (cold-minus-warm single-message send).
	KindChan Kind = "chanopen"
)

// Key is the content address of one simulated point.
type Key [sha256.Size]byte

// String returns the hex form used for disk file names.
func (k Key) String() string { return hex.EncodeToString(k[:]) }

// KeyOf derives the content address of one kernel run. transport is
// the bench-level protocol name (bench.Transport.String(), which
// distinguishes the strict one-sided discipline from the windowed
// one); a and b are the kernel coordinates: (n, bytes) for sweeps,
// (dst, reps) for CAS, (parts, volume) for split runs.
func KeyOf(cfg *machine.Config, kind Kind, transport string, ranks int, a int, b int64) Key {
	buf := make([]byte, 0, 512)
	buf = append(buf, SchemaSalt...)
	buf = append(buf, 0)
	buf = append(buf, kind...)
	buf = append(buf, 0)
	buf = append(buf, transport...)
	buf = append(buf, 0)
	buf = appendCoord(buf, int64(ranks))
	buf = appendCoord(buf, int64(a))
	buf = appendCoord(buf, b)
	buf = cfg.AppendFingerprint(buf)
	return sha256.Sum256(buf)
}

// appendCoord writes a fixed-width big-endian int64, keeping the
// coordinate block self-delimiting ahead of the fingerprint.
func appendCoord(buf []byte, v int64) []byte {
	return append(buf,
		byte(v>>56), byte(v>>48), byte(v>>40), byte(v>>32),
		byte(v>>24), byte(v>>16), byte(v>>8), byte(v))
}

// Mode selects the cache tiers.
type Mode int

const (
	// Off disables the cache entirely; every lookup misses.
	Off Mode = iota
	// Mem caches in memory only — shared within one process run.
	Mem
	// Disk layers a persistent per-key entry directory under the
	// in-memory tier.
	Disk
)

// ParseMode maps the CLI flag values off|mem|disk to a Mode.
func ParseMode(s string) (Mode, error) {
	switch s {
	case "off":
		return Off, nil
	case "mem":
		return Mem, nil
	case "disk":
		return Disk, nil
	}
	return Off, fmt.Errorf("pointcache: unknown cache mode %q (want off, mem or disk)", s)
}

// Tier reports which tier served a hit.
type Tier int

const (
	// TierNone marks a miss.
	TierNone Tier = iota
	// TierMem marks an in-memory hit.
	TierMem
	// TierDisk marks a hit read (and promoted) from the entry directory.
	TierDisk
)

// Stats are cumulative cache counters. The Cache's own snapshot
// aggregates across all users of the process; bench.Sweep additionally
// fills a per-sweep Stats into Result.Sched.Cache.
type Stats struct {
	// Lookups counts Get calls that reached an enabled cache.
	Lookups int64
	// Hits = MemHits + DiskHits.
	Hits     int64
	MemHits  int64
	DiskHits int64
	// Misses counts lookups that found no (valid) entry.
	Misses int64
	// Stores counts Put calls that inserted an entry.
	Stores int64
	// BadEntries counts disk entries rejected as corrupt (unparseable,
	// wrong schema, or key mismatch); each also counts as a miss.
	BadEntries int64
	// BytesSaved sums the simulated payload volume (messages x bytes)
	// of the simulations that hits made unnecessary.
	BytesSaved int64
}

// HitRate is Hits/Lookups in [0,1] (0 when nothing was looked up).
func (s Stats) HitRate() float64 {
	if s.Lookups == 0 {
		return 0
	}
	return float64(s.Hits) / float64(s.Lookups)
}

func (s Stats) String() string {
	return fmt.Sprintf("%d lookups, %d hits (%d mem, %d disk), %d misses, hit rate %.1f%%, %d stores, %d bad entries, %.3f simulated GB saved",
		s.Lookups, s.Hits, s.MemHits, s.DiskHits, s.Misses, 100*s.HitRate(), s.Stores, s.BadEntries, float64(s.BytesSaved)/1e9)
}

// Cache is the two-tier store. The zero value and the nil pointer are
// both valid, disabled caches.
type Cache struct {
	mode Mode
	dir  string

	mu  sync.RWMutex
	mem map[Key]sim.Time

	lookups, memHits, diskHits, misses, stores, bad, bytesSaved atomic.Int64
}

// New builds a cache. Mode Disk requires dir, which is created if
// missing; Off returns a nil cache (valid everywhere).
func New(mode Mode, dir string) (*Cache, error) {
	switch mode {
	case Off:
		return nil, nil
	case Mem:
		return &Cache{mode: Mem, mem: map[Key]sim.Time{}}, nil
	case Disk:
		if dir == "" {
			return nil, fmt.Errorf("pointcache: disk mode needs a directory")
		}
		if err := os.MkdirAll(dir, 0o755); err != nil {
			return nil, fmt.Errorf("pointcache: %w", err)
		}
		return &Cache{mode: Disk, dir: dir, mem: map[Key]sim.Time{}}, nil
	}
	return nil, fmt.Errorf("pointcache: unknown mode %d", int(mode))
}

// Enabled reports whether lookups can ever hit.
func (c *Cache) Enabled() bool { return c != nil && c.mode != Off }

// Mode returns the cache mode (Off for a nil cache).
func (c *Cache) Mode() Mode {
	if c == nil {
		return Off
	}
	return c.mode
}

// entry is the on-disk JSON form. Key and Schema make every entry
// self-checking: an entry that does not re-state its own address and
// schema is rejected as corrupt.
type entry struct {
	Schema  string `json:"schema"`
	Key     string `json:"key"`
	Elapsed int64  `json:"elapsed_ps"`
}

const entrySchema = "pointcache-entry/v1"

// Get looks up a key and returns the memoized simulated elapsed time.
// A disk hit is promoted to the memory tier.
func (c *Cache) Get(k Key) (sim.Time, Tier, bool) {
	if !c.Enabled() {
		return 0, TierNone, false
	}
	c.lookups.Add(1)
	c.mu.RLock()
	el, ok := c.mem[k]
	c.mu.RUnlock()
	if ok {
		c.memHits.Add(1)
		return el, TierMem, true
	}
	if c.mode == Disk {
		if el, ok := c.readDisk(k); ok {
			c.diskHits.Add(1)
			c.mu.Lock()
			c.mem[k] = el
			c.mu.Unlock()
			return el, TierDisk, true
		}
	}
	c.misses.Add(1)
	return 0, TierNone, false
}

// Put memoizes the simulated elapsed time of one kernel run.
func (c *Cache) Put(k Key, elapsed sim.Time) {
	if !c.Enabled() {
		return
	}
	c.stores.Add(1)
	c.mu.Lock()
	c.mem[k] = elapsed
	c.mu.Unlock()
	if c.mode == Disk {
		c.writeDisk(k, elapsed)
	}
}

// AddBytesSaved accounts the simulated payload volume a hit skipped.
func (c *Cache) AddBytesSaved(v int64) {
	if c.Enabled() {
		c.bytesSaved.Add(v)
	}
}

// Stats snapshots the cumulative counters.
func (c *Cache) Stats() Stats {
	if c == nil {
		return Stats{}
	}
	s := Stats{
		Lookups:    c.lookups.Load(),
		MemHits:    c.memHits.Load(),
		DiskHits:   c.diskHits.Load(),
		Misses:     c.misses.Load(),
		Stores:     c.stores.Load(),
		BadEntries: c.bad.Load(),
		BytesSaved: c.bytesSaved.Load(),
	}
	s.Hits = s.MemHits + s.DiskHits
	return s
}

// path shards entries by the first key byte to keep directories small.
func (c *Cache) path(k Key) string {
	h := k.String()
	return filepath.Join(c.dir, h[:2], h+".json")
}

// readDisk loads and validates one entry; any inconsistency — IO
// error aside — marks the entry corrupt and reports a miss, so the
// caller falls back to simulating. Bad bytes are never served.
func (c *Cache) readDisk(k Key) (sim.Time, bool) {
	data, err := os.ReadFile(c.path(k))
	if err != nil {
		return 0, false
	}
	var e entry
	if json.Unmarshal(data, &e) != nil || e.Schema != entrySchema || e.Key != k.String() {
		c.bad.Add(1)
		return 0, false
	}
	return sim.Time(e.Elapsed), true
}

// writeDisk persists one entry atomically (temp file + rename), so a
// concurrent reader sees either no entry or a complete one. Write
// failures are silent: the disk tier is an accelerator, never a
// correctness dependency.
func (c *Cache) writeDisk(k Key, elapsed sim.Time) {
	p := c.path(k)
	if err := os.MkdirAll(filepath.Dir(p), 0o755); err != nil {
		return
	}
	data, err := json.Marshal(entry{Schema: entrySchema, Key: k.String(), Elapsed: int64(elapsed)})
	if err != nil {
		return
	}
	tmp, err := os.CreateTemp(filepath.Dir(p), "."+k.String()+".tmp*")
	if err != nil {
		return
	}
	name := tmp.Name()
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		os.Remove(name)
		return
	}
	if err := tmp.Close(); err != nil {
		os.Remove(name)
		return
	}
	if err := os.Rename(name, p); err != nil {
		os.Remove(name)
	}
}
