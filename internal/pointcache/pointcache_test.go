package pointcache

import (
	"fmt"
	"os"
	"reflect"
	"sync"
	"testing"

	"msgroofline/internal/machine"
	"msgroofline/internal/sim"
)

// testConfig builds a standalone config (not from the catalog) so the
// perturbation walker can mutate it freely.
func testConfig() *machine.Config {
	return &machine.Config{
		Name:           "test-cpu",
		Title:          "Test CPU",
		Kind:           machine.CPU,
		MaxRanks:       64,
		TheoreticalGBs: 32,
		Transports: map[machine.Transport]machine.TransportParams{
			machine.TwoSided: {
				OpOverhead: 150 * sim.Nanosecond, OpsPerMsg: 2,
				SoftLatency: 2700 * sim.Nanosecond, Gap: 50 * sim.Nanosecond,
				AtomicTime: sim.Microsecond, SyncRoundTrips: 1,
			},
			machine.OneSided: {
				OpOverhead: 30 * sim.Nanosecond, OpsPerMsg: 4,
				SoftLatency: 2250 * sim.Nanosecond, Gap: 40 * sim.Nanosecond,
				AtomicTime: 1600 * sim.Nanosecond, SyncRoundTrips: 2,
				AtomicLinkOccupancy: 5 * sim.Nanosecond,
				CrossSocketExtra:    100 * sim.Nanosecond,
				HostStaged:          true,
			},
		},
		GPU: &machine.GPUConfig{
			BlocksPerGPU: 80, ComputeScale: 4,
			KernelLaunch: 6 * sim.Microsecond, Channels: 4,
		},
		MemBandwidth: 100e9,
		MemLatency:   90 * sim.Nanosecond,
		TableRow:     machine.TableRow{CPUs: "2x64", CPUInterconnect: "IF"},
		// All three topology specs at once: semantically invalid (Build
		// enforces exactly-one-of) but ideal for the walker, which must
		// see every fingerprinted field of every spec kind.
		Topology: machine.Topology{
			Explicit: &machine.Explicit{
				Links: []machine.LinkSpec{
					{A: "t:s0", B: "t:s1", GBs: 32, LatencyNs: 150, Channels: 4, Class: "socket"},
				},
				Place: machine.Placement{
					Kind:    machine.PlaceBlock,
					Nodes:   []string{"t:s0", "t:s1"},
					Sockets: []int{0, 1},
					Hosts:   []string{"t:h", "t:h"},
				},
				Detours: []string{"t:s0"},
			},
			Dragonfly: &machine.Dragonfly{
				Groups: 2, RoutersPerGroup: 2, NodesPerRouter: 1, GlobalLinksPerRouter: 1,
				RanksPerNode: 1,
				NodeGBs:      1, NodeLatencyNs: 1,
				LocalGBs: 1, LocalLatencyNs: 1,
				GlobalGBs: 1, GlobalLatencyNs: 1,
				Prefix: "x",
			},
			FatTree: &machine.FatTree{
				Radix: 4, Levels: 3, RanksPerHost: 1,
				HostGBs: 1, HostLatencyNs: 1,
				EdgeGBs: 1, EdgeLatencyNs: 1,
				CoreGBs: 1, CoreLatencyNs: 1,
				Prefix: "y",
			},
			Routing: machine.RoutingAdaptive,
		},
	}
}

func cloneConfig(c *machine.Config) *machine.Config {
	cp := *c
	cp.Transports = make(map[machine.Transport]machine.TransportParams, len(c.Transports))
	for k, v := range c.Transports {
		cp.Transports[k] = v
	}
	if c.GPU != nil {
		g := *c.GPU
		cp.GPU = &g
	}
	return &cp
}

// TestKeySensitivity walks every exported leaf field of
// machine.Config (including nested TransportParams and GPUConfig)
// via reflection, perturbs each one in isolation, and asserts the
// content key changes. Because the walk enumerates fields
// reflectively, adding a new Config field without extending
// AppendFingerprint fails this test — the fingerprint can never
// silently fall behind the struct.
func TestKeySensitivity(t *testing.T) {
	cfg := testConfig()
	base := KeyOf(cfg, KindSweep, "two-sided", 2, 16, 512)
	perturbLeaves(t, reflect.ValueOf(cfg).Elem(), "Config", func(path string) {
		if got := KeyOf(cfg, KindSweep, "two-sided", 2, 16, 512); got == base {
			t.Errorf("perturbing %s did not change the key", path)
		}
	})
	// Coordinates and identity components must each change the key too.
	variants := []Key{
		KeyOf(cfg, KindCAS, "two-sided", 2, 16, 512),
		KeyOf(cfg, KindSplit, "two-sided", 2, 16, 512),
		KeyOf(cfg, KindSweep, "one-sided", 2, 16, 512),
		KeyOf(cfg, KindSweep, "one-sided-strict", 2, 16, 512),
		KeyOf(cfg, KindSweep, "two-sided", 4, 16, 512),
		KeyOf(cfg, KindSweep, "two-sided", 2, 17, 512),
		KeyOf(cfg, KindSweep, "two-sided", 2, 16, 513),
	}
	seen := map[Key]bool{base: true}
	for i, k := range variants {
		if seen[k] {
			t.Errorf("variant %d collides with an earlier key", i)
		}
		seen[k] = true
	}
}

// perturbLeaves mutates each exported leaf under v one at a time,
// invoking check after each mutation and restoring the old value.
func perturbLeaves(t *testing.T, v reflect.Value, path string, check func(path string)) {
	t.Helper()
	switch v.Kind() {
	case reflect.Struct:
		st := v.Type()
		for i := 0; i < st.NumField(); i++ {
			f := st.Field(i)
			if f.PkgPath != "" { // unexported (e.g. the fabric builder func)
				continue
			}
			perturbLeaves(t, v.Field(i), path+"."+f.Name, check)
		}
	case reflect.Map:
		for _, mk := range v.MapKeys() {
			elem := reflect.New(v.Type().Elem()).Elem()
			orig := v.MapIndex(mk)
			elem.Set(orig)
			perturbLeaves(t, elem, fmt.Sprintf("%s[%v]", path, mk), func(p string) {
				v.SetMapIndex(mk, elem)
				check(p)
			})
			v.SetMapIndex(mk, orig)
		}
		// Removing an entry and adding a new one must both change keys.
		mk := v.MapKeys()[0]
		orig := v.MapIndex(mk)
		v.SetMapIndex(mk, reflect.Value{})
		check(path + " (entry removed)")
		v.SetMapIndex(mk, orig)
		novel := reflect.ValueOf(machine.NotifiedAccess)
		if !v.MapIndex(novel).IsValid() {
			v.SetMapIndex(novel, reflect.New(v.Type().Elem()).Elem())
			check(path + " (entry added)")
			v.SetMapIndex(novel, reflect.Value{})
		}
	case reflect.Pointer:
		if v.IsNil() {
			return
		}
		perturbLeaves(t, v.Elem(), path, check)
		old := v.Interface()
		v.Set(reflect.Zero(v.Type()))
		check(path + " (nil)")
		v.Set(reflect.ValueOf(old))
	case reflect.String:
		old := v.String()
		v.SetString(old + "x")
		check(path)
		v.SetString(old)
	case reflect.Bool:
		old := v.Bool()
		v.SetBool(!old)
		check(path)
		v.SetBool(old)
	case reflect.Int, reflect.Int8, reflect.Int16, reflect.Int32, reflect.Int64:
		old := v.Int()
		v.SetInt(old + 1)
		check(path)
		v.SetInt(old)
	case reflect.Float32, reflect.Float64:
		old := v.Float()
		v.SetFloat(old + 1)
		check(path)
		v.SetFloat(old)
	case reflect.Slice:
		for i := 0; i < v.Len(); i++ {
			perturbLeaves(t, v.Index(i), fmt.Sprintf("%s[%d]", path, i), check)
		}
		// Length must be fingerprinted too: growing the slice by a
		// zero element must change the key (two dragonfly placements
		// differing only in node count must never collide).
		old := v.Interface()
		v.Set(reflect.Append(v, reflect.New(v.Type().Elem()).Elem()))
		check(path + " (element appended)")
		v.Set(reflect.ValueOf(old))
	case reflect.Func:
		// not fingerprintable; covered by the schema salt policy
	default:
		t.Fatalf("unhandled field kind %v at %s: extend AppendFingerprint and this walker", v.Kind(), path)
	}
}

// TestKeyIgnoresSerializationIrrelevantVariation: value-equal configs
// hash identically regardless of map insertion order or copying.
func TestKeyIgnoresSerializationIrrelevantVariation(t *testing.T) {
	a := testConfig()
	// Rebuild the transports map in reverse insertion order.
	b := cloneConfig(a)
	keys := []machine.Transport{}
	for k := range a.Transports {
		keys = append(keys, k)
	}
	b.Transports = map[machine.Transport]machine.TransportParams{}
	for i := len(keys) - 1; i >= 0; i-- {
		b.Transports[keys[i]] = a.Transports[keys[i]]
	}
	ka := KeyOf(a, KindSweep, "two-sided", 2, 16, 512)
	kb := KeyOf(b, KindSweep, "two-sided", 2, 16, 512)
	if ka != kb {
		t.Fatal("map insertion order leaked into the key")
	}
	if kc := KeyOf(cloneConfig(a), KindSweep, "two-sided", 2, 16, 512); kc != ka {
		t.Fatal("copying the config changed the key")
	}
	// And twice on the very same config, for determinism.
	if k2 := KeyOf(a, KindSweep, "two-sided", 2, 16, 512); k2 != ka {
		t.Fatal("KeyOf is not deterministic")
	}
}

func TestMemTier(t *testing.T) {
	c, err := New(Mem, "")
	if err != nil {
		t.Fatal(err)
	}
	k := KeyOf(testConfig(), KindSweep, "two-sided", 2, 1, 8)
	if _, _, ok := c.Get(k); ok {
		t.Fatal("hit on empty cache")
	}
	c.Put(k, 42*sim.Microsecond)
	el, tier, ok := c.Get(k)
	if !ok || el != 42*sim.Microsecond || tier != TierMem {
		t.Fatalf("Get = (%v, %v, %v)", el, tier, ok)
	}
	s := c.Stats()
	if s.Lookups != 2 || s.Hits != 1 || s.MemHits != 1 || s.Misses != 1 || s.Stores != 1 {
		t.Fatalf("stats = %+v", s)
	}
}

func TestDiskTierPersistsAcrossProcessesAndPromotes(t *testing.T) {
	dir := t.TempDir()
	k := KeyOf(testConfig(), KindSweep, "one-sided", 2, 16, 4096)
	c1, err := New(Disk, dir)
	if err != nil {
		t.Fatal(err)
	}
	c1.Put(k, 7*sim.Microsecond)

	// A fresh cache over the same directory models a new process.
	c2, err := New(Disk, dir)
	if err != nil {
		t.Fatal(err)
	}
	el, tier, ok := c2.Get(k)
	if !ok || el != 7*sim.Microsecond || tier != TierDisk {
		t.Fatalf("disk Get = (%v, %v, %v)", el, tier, ok)
	}
	// Promotion: the second lookup is served from memory.
	if _, tier, _ := c2.Get(k); tier != TierMem {
		t.Fatalf("second Get tier = %v, want mem", tier)
	}
}

// TestCorruptDiskEntryFallsBackToSimulating proves the self-check: a
// corrupted or mismatched entry is a miss (counted as bad), never a
// served value.
func TestCorruptDiskEntryFallsBackToSimulating(t *testing.T) {
	cfg := testConfig()
	k := KeyOf(cfg, KindSweep, "two-sided", 2, 4, 64)
	k2 := KeyOf(cfg, KindSweep, "two-sided", 2, 4, 128)
	cases := []struct {
		name    string
		corrupt func(c *Cache)
	}{
		{"garbage bytes", func(c *Cache) {
			os.WriteFile(c.path(k), []byte("{not json"), 0o644)
		}},
		{"truncated", func(c *Cache) {
			data, _ := os.ReadFile(c.path(k))
			os.WriteFile(c.path(k), data[:len(data)/2], 0o644)
		}},
		{"wrong schema", func(c *Cache) {
			os.WriteFile(c.path(k), []byte(`{"schema":"pointcache-entry/v999","key":"`+k.String()+`","elapsed_ps":1}`), 0o644)
		}},
		{"key mismatch (entry moved)", func(c *Cache) {
			data, _ := os.ReadFile(c.path(k2))
			os.WriteFile(c.path(k), data, 0o644)
		}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			c, err := New(Disk, t.TempDir())
			if err != nil {
				t.Fatal(err)
			}
			c.Put(k, 3*sim.Microsecond)
			c.Put(k2, 9*sim.Microsecond)
			tc.corrupt(c)
			// Drop the memory tier so the corrupted file is consulted.
			c.mu.Lock()
			c.mem = map[Key]sim.Time{}
			c.mu.Unlock()
			if el, _, ok := c.Get(k); ok {
				t.Fatalf("corrupt entry served: %v", el)
			}
			if c.Stats().BadEntries != 1 {
				t.Fatalf("bad entries = %d, want 1", c.Stats().BadEntries)
			}
			// The caller re-simulates and overwrites; the entry heals.
			c.Put(k, 3*sim.Microsecond)
			if el, _, ok := c.Get(k); !ok || el != 3*sim.Microsecond {
				t.Fatalf("healed Get = (%v, %v)", el, ok)
			}
		})
	}
}

func TestNilAndOffCacheAreInert(t *testing.T) {
	var c *Cache
	k := Key{1}
	if c.Enabled() {
		t.Fatal("nil cache enabled")
	}
	c.Put(k, 1)
	c.AddBytesSaved(10)
	if _, _, ok := c.Get(k); ok {
		t.Fatal("nil cache hit")
	}
	if s := c.Stats(); s != (Stats{}) {
		t.Fatalf("nil stats = %+v", s)
	}
	off, err := New(Off, "")
	if err != nil || off != nil {
		t.Fatalf("New(Off) = (%v, %v), want nil cache", off, err)
	}
}

func TestParseMode(t *testing.T) {
	for s, want := range map[string]Mode{"off": Off, "mem": Mem, "disk": Disk} {
		got, err := ParseMode(s)
		if err != nil || got != want {
			t.Fatalf("ParseMode(%q) = (%v, %v)", s, got, err)
		}
	}
	if _, err := ParseMode("bogus"); err == nil {
		t.Fatal("want error for unknown mode")
	}
}

func TestConcurrentAccess(t *testing.T) {
	c, err := New(Disk, t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	cfg := testConfig()
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				k := KeyOf(cfg, KindSweep, "two-sided", 2, i%10, int64(i%7))
				if el, _, ok := c.Get(k); ok && el != sim.Time(i%10*7+i%7) {
					t.Errorf("stale value %v", el)
				}
				c.Put(k, sim.Time(i%10*7+i%7))
			}
		}(w)
	}
	wg.Wait()
}
