// Package ridgeline is the 2D distributed roofline ("ridgeline") the
// Message Roofline generalizes to at scale: performance as the min of
// three ceilings over the plane of arithmetic intensity (flops per
// DRAM byte) and communication intensity (flops per network byte),
//
//	Perf(ai, ci) = min(PeakFlops, ai*MemBW, ci*NetBW)
//
// all per rank. The binding ceiling classifies a kernel compute-,
// memory-, or network-bound. The network ceiling is where topology
// enters: NetBW is the min of what the transport's LogGP parameters
// sustain at the kernel's message size and the rank's share of the
// fabric's bisection-limiting tier under uniform traffic
// (machine.TopoMetrics.UniformGBsPerRank) — so the same kernel can be
// compute-bound on a full-bisection fat-tree and network-bound on a
// tapered dragonfly at the same rank count.
package ridgeline

import (
	"fmt"

	"msgroofline/internal/loggp"
	"msgroofline/internal/machine"
	"msgroofline/internal/sim"
)

// Class names the binding ceiling of a kernel on a surface.
type Class int

const (
	// NetworkBound kernels are limited by ci*NetBW.
	NetworkBound Class = iota
	// MemoryBound kernels are limited by ai*MemBW.
	MemoryBound
	// ComputeBound kernels are limited by PeakFlops.
	ComputeBound
)

// String names the class as used in figures.
func (c Class) String() string {
	switch c {
	case NetworkBound:
		return "network"
	case MemoryBound:
		return "memory"
	default:
		return "compute"
	}
}

// Surface is one machine/transport/scale point of the ridgeline: the
// three per-rank ceilings.
type Surface struct {
	// Name labels the surface in figures (e.g. "dragonfly one-sided").
	Name string
	// PeakFlops is the per-rank compute ceiling (flop/s).
	PeakFlops float64
	// MemBW is the per-rank DRAM bandwidth (bytes/s).
	MemBW float64
	// NetBW is the per-rank sustainable network bandwidth (bytes/s)
	// at the operating message size, already derated by the topology
	// share (see NetBWPerRank).
	NetBW float64
}

// Validate rejects non-positive ceilings.
func (s Surface) Validate() error {
	if s.PeakFlops <= 0 || s.MemBW <= 0 || s.NetBW <= 0 {
		return fmt.Errorf("ridgeline: surface %q ceilings must be positive: %+v", s.Name, s)
	}
	return nil
}

// Perf evaluates the ridgeline at one (ai, ci) point: flop/s per rank.
// ai and ci must be positive.
func (s Surface) Perf(ai, ci float64) float64 {
	p, _ := s.Bound(ai, ci)
	return p
}

// Classify names the binding ceiling at (ai, ci).
func (s Surface) Classify(ai, ci float64) Class {
	_, c := s.Bound(ai, ci)
	return c
}

// Bound evaluates the ridgeline and names the binding ceiling. Ties
// resolve network before memory before compute: when two ceilings
// coincide, the one that scaling (more ranks, weaker network share)
// degrades first is reported.
func (s Surface) Bound(ai, ci float64) (float64, Class) {
	perf := ci * s.NetBW
	class := NetworkBound
	if m := ai * s.MemBW; m < perf {
		perf, class = m, MemoryBound
	}
	if s.PeakFlops < perf {
		perf, class = s.PeakFlops, ComputeBound
	}
	return perf, class
}

// NetworkCrossoverCI is the communication intensity above which the
// network stops binding at arithmetic intensity ai: kernels with
// ci >= the crossover hit the memory or compute ceiling first. This
// is the ridge line of the surface along the ci axis.
func (s Surface) NetworkCrossoverCI(ai float64) float64 {
	rest := ai * s.MemBW
	if s.PeakFlops < rest {
		rest = s.PeakFlops
	}
	return rest / s.NetBW
}

// Kernel is one application point on the intensity plane.
type Kernel struct {
	Name string
	// AI is arithmetic intensity: flops per DRAM byte moved.
	AI float64
	// CI is communication intensity: flops per network byte sent.
	CI float64
	// MsgBytes is the kernel's operating message size, which sets the
	// LogGP-effective bandwidth inside NetBWPerRank.
	MsgBytes int64
}

// NetBWPerRank derives the per-rank network ceiling for a transport
// parameter set on a generated topology: the LogGP rounded (saturated
// steady-state) bandwidth at the operating message size, capped by
// the rank's uniform-traffic share of the topology's limiting tier.
// wireLatNs adds the fabric's propagation latency (TopoMetrics
// .MaxWireLatencyNs) to the software latency inside L.
func NetBWPerRank(tp machine.TransportParams, m machine.TopoMetrics, msgBytes int64) float64 {
	rt := tp.SyncRoundTrips
	if rt < 1 {
		rt = 1
	}
	p := loggp.Params{
		L:         sim.Time(rt) * (tp.SoftLatency + sim.FromNanoseconds(m.MaxWireLatencyNs)),
		O:         tp.OpOverhead,
		Gap:       tp.Gap,
		Bandwidth: m.InjectionGBs * 1e9,
		OpsPerMsg: tp.OpsPerMsg,
		Trigger:   tp.TriggerLatency,
	}
	bw := p.RoundedBandwidth(msgBytes)
	if share := m.UniformGBsPerRank * 1e9; share < bw {
		bw = share
	}
	return bw
}

// SurfaceFor assembles the ridgeline surface of one transport on one
// generated topology at one operating message size. peakFlops and
// memBW are per rank.
func SurfaceFor(name string, tp machine.TransportParams, m machine.TopoMetrics, msgBytes int64, peakFlops, memBW float64) Surface {
	return Surface{
		Name:      name,
		PeakFlops: peakFlops,
		MemBW:     memBW,
		NetBW:     NetBWPerRank(tp, m, msgBytes),
	}
}
