package ridgeline

import (
	"testing"
	"testing/quick"

	"msgroofline/internal/machine"
)

func TestBoundPicksMinimum(t *testing.T) {
	s := Surface{Name: "t", PeakFlops: 1e12, MemBW: 1e11, NetBW: 1e9}
	// ai=1, ci=1: net 1e9 < mem 1e11 < peak 1e12.
	if p, c := s.Bound(1, 1); p != 1e9 || c != NetworkBound {
		t.Fatalf("Bound(1,1) = %v, %v", p, c)
	}
	// High ci frees the network; ai=1 leaves memory binding.
	if p, c := s.Bound(1, 1e4); p != 1e11 || c != MemoryBound {
		t.Fatalf("Bound(1,1e4) = %v, %v", p, c)
	}
	// Both intensities high: compute ceiling.
	if p, c := s.Bound(1e3, 1e4); p != 1e12 || c != ComputeBound {
		t.Fatalf("Bound(1e3,1e4) = %v, %v", p, c)
	}
	if s.Perf(1, 1) != 1e9 || s.Classify(1, 1) != NetworkBound {
		t.Fatal("Perf/Classify disagree with Bound")
	}
}

func TestBoundTieOrder(t *testing.T) {
	// All three ceilings coincide at ai=ci=1: network reports first,
	// then memory wins over compute.
	s := Surface{PeakFlops: 1e9, MemBW: 1e9, NetBW: 1e9}
	if _, c := s.Bound(1, 1); c != NetworkBound {
		t.Fatalf("three-way tie class = %v, want network", c)
	}
	s.NetBW = 1e12
	if _, c := s.Bound(1, 1); c != MemoryBound {
		t.Fatalf("mem/compute tie class = %v, want memory", c)
	}
}

func TestNetworkCrossoverCI(t *testing.T) {
	s := Surface{PeakFlops: 1e12, MemBW: 1e11, NetBW: 1e9}
	ai := 2.0
	ci := s.NetworkCrossoverCI(ai) // 2e11/1e9 = 200
	if ci != 200 {
		t.Fatalf("crossover = %v, want 200", ci)
	}
	if _, c := s.Bound(ai, ci*0.99); c != NetworkBound {
		t.Fatal("just below crossover must be network-bound")
	}
	if _, c := s.Bound(ai, ci*1.01); c == NetworkBound {
		t.Fatal("just above crossover must not be network-bound")
	}
}

// Property: Perf is nondecreasing in both intensities and never
// exceeds any ceiling.
func TestPerfMonotoneProperty(t *testing.T) {
	s := Surface{PeakFlops: 5e11, MemBW: 8e10, NetBW: 2e9}
	f := func(a, b, c, d uint16) bool {
		ai1, ci1 := float64(a)+1, float64(b)+1
		ai2, ci2 := ai1+float64(c), ci1+float64(d)
		p1, p2 := s.Perf(ai1, ci1), s.Perf(ai2, ci2)
		return p1 <= p2 && p2 <= s.PeakFlops &&
			p1 <= ai1*s.MemBW && p1 <= ci1*s.NetBW
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestNetBWPerRankDerates(t *testing.T) {
	cfg, err := machine.Get("dragonfly-1k")
	if err != nil {
		t.Fatal(err)
	}
	tp, ok := cfg.Params(machine.OneSided)
	if !ok {
		t.Fatal("dragonfly-1k must offer one-sided")
	}
	m, err := cfg.Topology.Dragonfly.Metrics()
	if err != nil {
		t.Fatal(err)
	}
	// The tapered global tier must bind below the per-rank NIC share.
	if m.UniformGBsPerRank >= m.InjectionGBs/4 {
		t.Fatalf("dragonfly-1k should taper: uniform %v vs injection share %v",
			m.UniformGBsPerRank, m.InjectionGBs/4)
	}
	big := NetBWPerRank(tp, m, 1<<20)
	small := NetBWPerRank(tp, m, 64)
	if big <= small {
		t.Fatalf("large messages should sustain more bandwidth: %v vs %v", big, small)
	}
	// Large messages saturate to exactly the topology share.
	if want := m.UniformGBsPerRank * 1e9; big != want {
		t.Fatalf("saturated NetBW = %v, want topology share %v", big, want)
	}
	// Small messages are op-overhead-limited, well under the share.
	if small >= big/2 {
		t.Fatalf("64B NetBW = %v should be overhead-limited (saturated %v)", small, big)
	}
}

func TestFatTreeVsDragonflyCeilings(t *testing.T) {
	// Same rank count: the full-bisection fat-tree must offer a higher
	// per-rank network ceiling than the tapered dragonfly.
	df := machine.DragonflyForRanks(10000)
	ft := machine.FatTreeForRanks(10000)
	dm, err := df.Metrics()
	if err != nil {
		t.Fatal(err)
	}
	fm, err := ft.Metrics()
	if err != nil {
		t.Fatal(err)
	}
	cfg, _ := machine.Get("dragonfly-1k")
	tp, _ := cfg.Params(machine.OneSided)
	const msg = 64 << 10
	if dfBW, ftBW := NetBWPerRank(tp, dm, msg), NetBWPerRank(tp, fm, msg); dfBW >= ftBW {
		t.Fatalf("dragonfly %v should sit below fat-tree %v at 10K ranks", dfBW, ftBW)
	}
	// A surface built from each: the same kernel can change class.
	sDf := SurfaceFor("df", tp, dm, msg, 5e11, 8e10)
	sFt := SurfaceFor("ft", tp, fm, msg, 5e11, 8e10)
	if err := sDf.Validate(); err != nil {
		t.Fatal(err)
	}
	if err := sFt.Validate(); err != nil {
		t.Fatal(err)
	}
	if sDf.NetworkCrossoverCI(1) <= sFt.NetworkCrossoverCI(1) {
		t.Fatal("tapered dragonfly must stay network-bound to higher ci than fat-tree")
	}
}

func TestSurfaceValidate(t *testing.T) {
	if err := (Surface{PeakFlops: 1, MemBW: 1, NetBW: 0}).Validate(); err == nil {
		t.Fatal("zero NetBW must fail validation")
	}
	if err := (Surface{PeakFlops: 1, MemBW: 1, NetBW: 1}).Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestClassString(t *testing.T) {
	if NetworkBound.String() != "network" || MemoryBound.String() != "memory" || ComputeBound.String() != "compute" {
		t.Fatal("Class.String broken")
	}
}
