package runtime

import (
	"msgroofline/internal/machine"
	"msgroofline/internal/sim"
)

// Channel is one RAMC-style ordered memory channel from a source
// endpoint to a destination rank: a FIFO byte stream where ordering
// replaces per-op completion. Writes are sequence-numbered at the
// sender; the receiver applies them strictly in sequence order (a
// resequencer stashes overtaking arrivals — fault retransmissions and
// latency spikes legally reorder the wire), so "the bytes arrived"
// means "every earlier byte on this channel arrived too". Quiet and
// fence map to Drain: wait until the channel has no writes in flight.
//
// Ownership is split exactly like the runtime's other primitives:
// sender state (sequence counter, in-flight count, credit waits) lives
// on the source rank's engine; receiver state (resequencer cursor,
// stash, arrival log) is touched only inside Inject delivery callbacks
// on the destination rank's engine. Cross-group sends ride Inject's
// window-barrier deferral and therefore serialize in the established
// (at, senderRank<<40|senderCounter) order.
type Channel struct {
	src *Endpoint
	dst int
	tp  machine.TransportParams

	// Sender side (source engine only).
	opened   bool
	nextSeq  uint64
	inFlight int
	cond     *sim.Cond // credit release and drain wakeups

	// Receiver side (destination engine only).
	nextDeliver uint64
	pending     map[uint64]stashed
	arrivals    []uint64 // seqs in application (post-resequencer) order

	// unordered bypasses the resequencer: arrivals apply in wire order.
	// This deliberately breaks the FIFO contract; it exists so the
	// conformance channel-ordering oracle can prove it catches the
	// violation (see internal/conformance).
	unordered bool
}

type stashed struct {
	apply func(at sim.Time)
}

// NewChannel opens a (lazy) channel from src to rank dst with the
// transport's credit and open-cost parameters.
func NewChannel(src *Endpoint, dst int, tp machine.TransportParams) *Channel {
	return &Channel{
		src:     src,
		dst:     dst,
		tp:      tp,
		cond:    sim.NewCond(src.eng()),
		pending: make(map[uint64]stashed),
	}
}

// SetUnordered toggles the deliberate FIFO break.
func (c *Channel) SetUnordered(v bool) { c.unordered = v }

// Dst returns the destination rank.
func (c *Channel) Dst() int { return c.dst }

// Send writes one message into the channel: charges the per-op
// overhead (one op per message — ordering subsumes completion ops),
// pays the one-time channel-open cost on first use, waits for a send
// credit when the transport bounds in-flight writes, and injects the
// bytes nonblockingly. apply runs on the destination engine when the
// write is *applied* — in channel order, after every earlier write on
// this channel — which may be later than its wire arrival.
func (c *Channel) Send(p *sim.Proc, bytes int64, ch int, apply func(at sim.Time)) {
	c.src.ChargeOp(p, c.tp)
	if !c.opened {
		c.opened = true
		p.Sleep(c.tp.ChannelOpen)
	}
	if cr := c.tp.ChannelCredits; cr > 0 {
		c.cond.WaitFor(p, func() bool { return c.inFlight < cr })
	}
	seq := c.nextSeq
	c.nextSeq++
	c.inFlight++
	c.src.Inject(c.tp, c.dst, bytes, ch,
		func(at sim.Time) { c.arrive(seq, at, apply) },
		func(at sim.Time) {
			c.inFlight--
			c.cond.Broadcast()
		})
}

// arrive runs on the destination engine at wire-arrival time. In
// ordered mode the resequencer applies the write only once every
// earlier sequence number has been applied, draining any stashed
// successors at the same instant.
func (c *Channel) arrive(seq uint64, at sim.Time, apply func(at sim.Time)) {
	if c.unordered {
		c.deliver(seq, at, apply)
		return
	}
	if seq != c.nextDeliver {
		c.pending[seq] = stashed{apply: apply}
		return
	}
	c.deliver(seq, at, apply)
	c.nextDeliver++
	for {
		st, ok := c.pending[c.nextDeliver]
		if !ok {
			return
		}
		delete(c.pending, c.nextDeliver)
		c.deliver(c.nextDeliver, at, st.apply)
		c.nextDeliver++
	}
}

func (c *Channel) deliver(seq uint64, at sim.Time, apply func(at sim.Time)) {
	c.arrivals = append(c.arrivals, seq)
	if apply != nil {
		apply(at)
	}
}

// Drain blocks until the channel has no writes in flight — the
// transport's quiet/fence primitive. One op overhead models the
// tail-check doorbell read.
func (c *Channel) Drain(p *sim.Proc) {
	c.src.ChargeOp(p, c.tp)
	c.cond.WaitFor(p, func() bool { return c.inFlight == 0 })
}

// InFlight returns the sender-side count of writes not yet applied.
func (c *Channel) InFlight() int { return c.inFlight }

// Sent returns how many writes entered the channel.
func (c *Channel) Sent() uint64 { return c.nextSeq }

// Opened reports whether the lazy open handshake has been paid.
func (c *Channel) Opened() bool { return c.opened }

// Arrivals returns the applied sequence numbers in application order.
// After a clean (ordered) run this is exactly 0..Sent()-1; the
// conformance FIFO oracle checks precisely that. Read only after the
// world has run to completion.
func (c *Channel) Arrivals() []uint64 { return c.arrivals }
