package runtime

import (
	"fmt"
	"testing"

	"msgroofline/internal/machine"
	"msgroofline/internal/netsim"
	"msgroofline/internal/sim"
)

func channelParams(t testing.TB, name string) (*machine.Config, machine.TransportParams) {
	t.Helper()
	cfg, err := machine.Get(name)
	if err != nil {
		t.Fatal(err)
	}
	tp, ok := cfg.Params(machine.MemChannel)
	if !ok {
		t.Fatalf("%s has no memory-channel transport", name)
	}
	return cfg, tp
}

// TestChannelOpenPaidOnce: the first send on a channel pays the open
// handshake, subsequent sends do not.
func TestChannelOpenPaidOnce(t *testing.T) {
	cfg, tp := channelParams(t, "perlmutter-cpu")
	w, err := NewWorld(cfg, 2)
	if err != nil {
		t.Fatal(err)
	}
	ep := w.Endpoint(0)
	c := NewChannel(ep, 1, tp)
	var first, second sim.Time
	w.Spawn(0, "sender", func(p *sim.Proc) {
		start := p.Now()
		c.Send(p, 8, ep.AutoChannel(), nil)
		first = p.Now() - start
		start = p.Now()
		c.Send(p, 8, ep.AutoChannel(), nil)
		second = p.Now() - start
		c.Drain(p)
	})
	if err := w.Run(); err != nil {
		t.Fatal(err)
	}
	if !c.Opened() {
		t.Fatal("channel never opened")
	}
	if got := first - second; got != tp.ChannelOpen {
		t.Fatalf("open cost = %v, want %v (first send %v, second %v)",
			got, tp.ChannelOpen, first, second)
	}
}

// TestChannelCreditsBound: the transport's credit limit bounds the
// sender's in-flight writes; Send blocks until a credit frees.
func TestChannelCreditsBound(t *testing.T) {
	cfg, tp := channelParams(t, "perlmutter-cpu")
	if tp.ChannelCredits <= 0 {
		t.Fatalf("calibration has no credit bound: %d", tp.ChannelCredits)
	}
	tp.ChannelCredits = 2
	w, err := NewWorld(cfg, 2)
	if err != nil {
		t.Fatal(err)
	}
	ep := w.Endpoint(0)
	c := NewChannel(ep, 1, tp)
	over := 0
	w.Spawn(0, "sender", func(p *sim.Proc) {
		for i := 0; i < 12; i++ {
			c.Send(p, 1<<16, ep.AutoChannel(), nil)
			if c.InFlight() > 2 {
				over++
			}
		}
		c.Drain(p)
	})
	if err := w.Run(); err != nil {
		t.Fatal(err)
	}
	if over != 0 {
		t.Fatalf("in-flight exceeded the 2-credit bound %d times", over)
	}
	if c.InFlight() != 0 {
		t.Fatalf("drain left %d writes in flight", c.InFlight())
	}
	if c.Sent() != 12 {
		t.Fatalf("sent %d writes, want 12", c.Sent())
	}
}

// FuzzChannelOrder fuzzes the channel resequencer: two sender ranks
// run fuzz-derived interleavings of channel sends, drains and compute
// phases toward a common destination, under a fuzz-seeded schedule
// perturbation plus network fault injection (latency spikes and
// drop-with-retransmit legally reorder the wire). Invariants checked:
//
//   - every channel applies its writes strictly in sequence order
//     (Arrivals is the identity permutation), regardless of wire
//     reordering;
//   - the apply callbacks observe the payload ids in send order;
//   - every drain leaves the channel with zero writes in flight;
//   - a channel opens iff it carried at least one write.
func FuzzChannelOrder(f *testing.F) {
	f.Add([]byte{}, uint64(1))
	f.Add([]byte{3, 250, 17, 99}, uint64(42))
	f.Add([]byte{0xff, 0, 0xff, 0, 7, 7, 7, 7, 200, 13, 13, 13, 90, 90}, uint64(2026))
	f.Fuzz(func(t *testing.T, plan []byte, seed uint64) {
		if len(plan) > 64 {
			plan = plan[:64]
		}
		cfg, tp := channelParams(t, "perlmutter-cpu")
		w, err := NewWorld(cfg, 3)
		if err != nil {
			t.Fatal(err)
		}
		w.SetPerturbation(&sim.Perturbation{
			Seed: seed, Reorder: true, MaxJitter: 2 * sim.Microsecond,
		})
		w.Inst.Net.SetFaults(&netsim.Faults{
			Seed:      seed*0x9e3779b97f4a7c15 + 0x2545f4914f6cdd1d,
			DropProb:  0.02,
			SpikeProb: 0.05,
			MaxSpike:  3 * sim.Microsecond,
		})
		senders := []int{0, 2}
		chans := make(map[int]*Channel, len(senders))
		applied := make(map[int][]uint64, len(senders))
		var errs []string
		for _, r := range senders {
			ep := w.Endpoint(r)
			c := NewChannel(ep, 1, tp)
			chans[r] = c
			rank := r
			w.Spawn(rank, fmt.Sprintf("sender%d", rank), func(p *sim.Proc) {
				var sent uint64
				for _, b := range plan {
					// Decorrelate the two senders' op streams.
					op := b ^ byte(rank*0xa5)
					switch {
					case op%8 < 5: // send, size from the high bits
						id := sent
						sent++
						c.Send(p, int64(8+int(op>>3)*64), ep.AutoChannel(), func(sim.Time) {
							applied[rank] = append(applied[rank], id)
						})
					case op%8 == 5:
						c.Drain(p)
						if n := c.InFlight(); n != 0 {
							errs = append(errs, fmt.Sprintf("rank %d: drain left %d in flight", rank, n))
						}
					default:
						p.Sleep(sim.Time(op) * 10 * sim.Nanosecond)
					}
				}
				c.Drain(p)
			})
		}
		if err := w.Run(); err != nil {
			t.Fatal(err)
		}
		for _, msg := range errs {
			t.Error(msg)
		}
		for _, r := range senders {
			c := chans[r]
			if c.InFlight() != 0 {
				t.Errorf("rank %d: %d writes in flight after final drain", r, c.InFlight())
			}
			if c.Opened() != (c.Sent() > 0) {
				t.Errorf("rank %d: opened=%v with %d writes", r, c.Opened(), c.Sent())
			}
			arr := c.Arrivals()
			if uint64(len(arr)) != c.Sent() {
				t.Fatalf("rank %d: %d of %d writes applied", r, len(arr), c.Sent())
			}
			for i, seq := range arr {
				if seq != uint64(i) {
					t.Fatalf("rank %d: FIFO violated: write %d applied at position %d (order %v)",
						r, seq, i, arr)
				}
			}
			for i, id := range applied[r] {
				if id != uint64(i) {
					t.Fatalf("rank %d: apply callbacks out of order at %d: %v", r, i, applied[r])
				}
			}
		}
	})
}
