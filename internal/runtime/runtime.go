// Package runtime glues the simulation layers together: it realizes a
// machine.Instance as a set of communicating endpoints (one per MPI
// rank or SHMEM PE) on the coupled conservative-lookahead engine, and
// provides the primitive cost operations the mpi and shmem layers are
// built from — charging per-op CPU overhead, injecting messages
// through a NIC with a LogGP gap, timing the wire journey on the
// netsim fabric, and round-trip remote atomics.
//
// Per-rank state is rank-confined: a rank's endpoint (NIC channels,
// wire plans, injection stats) and everything the stacks build on top
// of it (window memory, CQ bookkeeping, PE heaps) live with the
// rank's node group and are touched only from that group's engine.
// Cross-group effects — puts, gets, atomics, signals — arrive as
// events on the owning group's engine, and mutations of shared fabric
// state (link-bandwidth reservations, atomic-unit arbitration, fault
// draws) are deferred to the window barrier where they apply in the
// (at, senderRank<<40|senderCounter) total order (sim.CoupledEngine).
package runtime

import (
	"fmt"
	"time"

	"msgroofline/internal/machine"
	"msgroofline/internal/netsim"
	"msgroofline/internal/sim"
)

// World is one simulated job: a coupled engine (one sequential
// sub-engine per fabric node group), a machine instance, and one
// endpoint per rank.
type World struct {
	Inst *machine.Instance
	eng  *sim.CoupledEngine
	eps  []*Endpoint
	// shards records the -shards request for this world (worker
	// parallelism; clamped by the engine to the node-group count).
	shards int
}

// NewWorld builds a world with `ranks` endpoints on the given machine.
func NewWorld(cfg *machine.Config, ranks int) (*World, error) {
	return NewWorldSharded(cfg, ranks, 1)
}

// NewWorldSharded builds a world with `ranks` endpoints on the
// sharded (coupled conservative-lookahead) engine. Ranks are grouped
// by fabric node — the unit at which delivery is stateless shared
// memory — and each group owns a private sequential sub-engine;
// `shards` sets only how many groups may execute a conservative
// window concurrently (clamped to [1, groups]; <= 0 means 1).
//
// Because the group structure, the window bounds, and the
// (at, senderRank<<40|senderCounter) barrier order are all
// topology-determined, simulated output is byte-identical at every
// -shards value by construction — certified by the per-group
// event-order digests (Digest) — while -shards > 1 buys wall-clock
// parallelism on multi-node machines. There is no sequential fallback
// path: every world, including a single-node one (where the lone
// group degenerates to exact sequential execution), runs on the same
// engine.
func NewWorldSharded(cfg *machine.Config, ranks, shards int) (*World, error) {
	inst, err := cfg.Instantiate(ranks)
	if err != nil {
		return nil, err
	}
	if shards < 1 {
		shards = 1
	}
	if shards > ranks {
		shards = ranks
	}
	groupOf, err := nodeGroups(inst, ranks)
	if err != nil {
		return nil, err
	}
	eng, err := sim.NewCoupled(groupOf, inst.Net.LookaheadBound(), shards)
	if err != nil {
		return nil, fmt.Errorf("runtime: %w", err)
	}
	w := &World{
		Inst:   inst,
		eng:    eng,
		shards: shards,
	}
	prewarmPaths(inst, ranks)
	channels := 1
	if cfg.GPU != nil {
		channels = cfg.GPU.Channels
	}
	for r := 0; r < ranks; r++ {
		w.eps = append(w.eps, &Endpoint{
			world:    w,
			rank:     r,
			chanFree: make([]sim.Time, channels),
		})
	}
	return w, nil
}

// nodeGroups assigns each rank the dense index of its fabric node, in
// order of first appearance over the rank sequence. Same group ⟺ same
// node ⟺ shared-memory delivery, so every cross-group flight pays at
// least one fabric link and the network's LookaheadBound is a valid
// conservative window for the grouping.
func nodeGroups(inst *machine.Instance, ranks int) ([]int, error) {
	groupOf := make([]int, ranks)
	idx := make(map[string]int)
	for r := 0; r < ranks; r++ {
		node := inst.Places[r].Node
		g, ok := idx[node]
		if !ok {
			g = len(idx)
			idx[node] = g
		}
		groupOf[r] = g
	}
	return groupOf, nil
}

// prewarmSigLimit bounds the node-signature count prewarmPaths will
// warm all-pairs: beyond it the quadratic BFS sweep dominates world
// construction on generated fabrics (a 1K-node dragonfly is ~10^6
// resolutions), so big worlds rely on the lazy, sharded route cache
// instead (16 lock shards keyed by endpoint-pair hash; see
// netsim.cacheShards). Laziness never changes simulated output: route
// resolution is a pure function of the static topology.
const prewarmSigLimit = 64

// prewarmPaths resolves every fabric route the world can use — direct
// node-to-node plus host-staged legs — so netsim's lazy route cache is
// fully populated before any window runs on paper-scale machines.
// Unreachable pairs are left for use-time panics, exactly as before.
// Worlds over prewarmSigLimit distinct nodes skip the sweep and
// resolve routes on demand under the network's per-shard cache locks
// (path/route construction itself runs lock-free on the immutable
// topology, so concurrent window workers only contend on insertion).
func prewarmPaths(inst *machine.Instance, ranks int) {
	type sig struct{ node, host string }
	seen := map[sig]bool{}
	var sigs []sig
	for r := 0; r < ranks; r++ {
		s := sig{inst.Places[r].Node, inst.Places[r].Host}
		if !seen[s] {
			seen[s] = true
			sigs = append(sigs, s)
		}
	}
	if len(sigs) > prewarmSigLimit {
		return
	}
	warm := func(a, b string) {
		if a != b {
			inst.Net.RouteTo(a, b) //nolint:errcheck // warming only
		}
	}
	for _, a := range sigs {
		for _, b := range sigs {
			if a.node == b.node {
				continue
			}
			warm(a.node, b.node)
			if a.host != "" && b.host != "" {
				warm(a.node, a.host)
				warm(a.host, b.host)
				warm(b.host, b.node)
			}
		}
	}
}

// Size returns the number of endpoints (ranks/PEs).
func (w *World) Size() int { return len(w.eps) }

// Shards returns the -shards worker-parallelism recorded for this
// world (the engine clamps the effective worker count to Groups).
func (w *World) Shards() int { return w.shards }

// Groups returns the node-group (sub-engine) count.
func (w *World) Groups() int { return w.eng.Groups() }

// GroupOf returns the node group owning a rank.
func (w *World) GroupOf(rank int) int { return w.eng.GroupOf(rank) }

// Lookahead returns the fabric's conservative lookahead bound: the
// minimum link propagation latency of the instantiated network (0 on
// a single-node world, where no window protocol is needed).
func (w *World) Lookahead() sim.Time { return w.Inst.Net.LookaheadBound() }

// Endpoint returns the endpoint for a rank.
func (w *World) Endpoint(rank int) *Endpoint {
	return w.eps[rank]
}

// EngineOf returns the sequential sub-engine owning a rank. Every
// process and condition variable belonging to the rank must bind to
// it; that confinement is what lets groups execute in parallel.
func (w *World) EngineOf(rank int) *sim.Engine { return w.eng.EngineOf(rank) }

// Spawn starts a process owned by rank on the rank's engine.
func (w *World) Spawn(rank int, name string, fn func(*sim.Proc)) {
	w.eng.EngineOf(rank).Spawn(name, fn)
}

// SetPerturbation installs schedule fuzzing on every group engine
// (stream g for group g; see sim.Perturbation). Call before spawning.
func (w *World) SetPerturbation(p *sim.Perturbation) { w.eng.SetPerturbation(p) }

// SetEventLimit caps total dispatched events across all groups.
func (w *World) SetEventLimit(n uint64) { w.eng.SetEventLimit(n) }

// Run drives the simulation to completion and surfaces deadlocks.
func (w *World) Run() error {
	err := w.eng.Run()
	noteUsage(w)
	return err
}

// Elapsed returns the latest executed-event time across all groups.
func (w *World) Elapsed() sim.Time { return w.eng.Elapsed() }

// Digest folds the per-group event-order digests into one summary of
// the run; equal digests across -shards values certify the worker
// split changed no event order.
func (w *World) Digest() uint64 { return w.eng.Digest() }

// Windows returns how many conservative windows the run executed.
func (w *World) Windows() uint64 { return w.eng.Windows() }

// GroupStats returns per-node-group execution summaries.
func (w *World) GroupStats() []sim.ShardStats { return w.eng.GroupStats() }

// BusyWall reports summed per-group busy time over wall time.
func (w *World) BusyWall(wall time.Duration) float64 { return w.eng.BusyWall(wall) }

// Coupled exposes the underlying coupled engine (Defer/At plumbing
// for layers that extend the runtime).
func (w *World) Coupled() *sim.CoupledEngine { return w.eng }

// Endpoint is one rank's attachment to the fabric: its placement plus
// a NIC with one or more injection channels, each pacing injections at
// the transport's LogGP gap.
type Endpoint struct {
	world    *World
	rank     int
	chanFree []sim.Time // per-channel earliest next injection
	rr       int        // round-robin cursor for AutoChannel
	injected int64      // messages injected (stats)
	bytesOut int64
	// atomicFree serializes remote atomics targeting this endpoint's
	// memory (one at a time at the memory controller). It is mutated
	// only from this endpoint's own engine (owner-computes).
	atomicFree sim.Time
	// plans caches the resolved fabric route(s) to each destination
	// rank (lazily built; topology is static after instantiation), so
	// the per-send path does no map probes and no allocation. Owned by
	// the rank's group: built from its engine or at a window barrier.
	plans []*wirePlan
}

// wirePlan is the cached routing decision from one endpoint to one
// destination rank.
type wirePlan struct {
	sameNode    bool
	crossSocket bool
	// direct is the node-to-node route (nil when sameNode): the
	// minimal path plus, under adaptive routing, its precomputed
	// non-minimal alternatives.
	direct      *netsim.Route
	staged      []*netsim.Path // host-staged legs, built on first staged send
	stagedBuilt bool
}

// planTo returns the cached wire plan from ep to rank dst, resolving
// it on first use.
func (ep *Endpoint) planTo(dst int) *wirePlan {
	if ep.plans == nil {
		ep.plans = make([]*wirePlan, ep.world.Size())
	}
	if pl := ep.plans[dst]; pl != nil {
		return pl
	}
	inst := ep.world.Inst
	pl := &wirePlan{
		sameNode:    inst.SameNode(ep.rank, dst),
		crossSocket: inst.CrossSocket(ep.rank, dst),
	}
	if !pl.sameNode {
		r, err := inst.Net.RouteTo(inst.Places[ep.rank].Node, inst.Places[dst].Node)
		if err != nil {
			panic(fmt.Sprintf("runtime: %v", err))
		}
		pl.direct = r
	}
	ep.plans[dst] = pl
	return pl
}

// stagedLegs resolves (once) the device->host, host->host, host->device
// legs of a host-staged transfer toward dst. Legs whose endpoints
// coincide resolve to nil and are skipped at send time. It returns nil
// when either side has no host (the caller falls back to the direct
// route).
func (ep *Endpoint) stagedLegs(pl *wirePlan, dst int) []*netsim.Path {
	if !pl.stagedBuilt {
		pl.stagedBuilt = true
		inst := ep.world.Inst
		srcPlace, dstPlace := inst.Places[ep.rank], inst.Places[dst]
		if srcPlace.Host != "" && dstPlace.Host != "" {
			legs := [][2]string{
				{srcPlace.Node, srcPlace.Host},
				{srcPlace.Host, dstPlace.Host},
				{dstPlace.Host, dstPlace.Node},
			}
			pl.staged = make([]*netsim.Path, len(legs))
			for i, leg := range legs {
				if leg[0] == leg[1] {
					continue
				}
				p, err := inst.Net.PathTo(leg[0], leg[1])
				if err != nil {
					panic(fmt.Sprintf("runtime: %v", err))
				}
				pl.staged[i] = p
			}
		}
	}
	return pl.staged
}

// Rank returns the endpoint's rank id.
func (ep *Endpoint) Rank() int { return ep.rank }

// eng returns the sequential engine owning this endpoint's rank.
func (ep *Endpoint) eng() *sim.Engine { return ep.world.eng.EngineOf(ep.rank) }

// Channels returns the number of NIC injection channels.
func (ep *Endpoint) Channels() int { return len(ep.chanFree) }

// Stats returns cumulative injection counters.
func (ep *Endpoint) Stats() (messages, bytes int64) {
	return ep.injected, ep.bytesOut
}

// AutoChannel returns the next channel in round-robin order; message
// streams that do not care about placement use it to spread load over
// parallel links.
func (ep *Endpoint) AutoChannel() int {
	c := ep.rr
	ep.rr = (ep.rr + 1) % len(ep.chanFree)
	return c
}

// ChargeOp blocks p for one library-operation overhead.
func (ep *Endpoint) ChargeOp(p *sim.Proc, tp machine.TransportParams) {
	p.Sleep(tp.OpOverhead)
}

// Compute blocks p for d of CPU (or GPU SM) time.
func (ep *Endpoint) Compute(p *sim.Proc, d sim.Time) {
	p.Sleep(d)
}

// Inject sends bytes toward dst on the given channel and schedules
// the delivery callbacks at the arrival time of the last byte. The
// calling process is NOT blocked (nonblocking semantics); callers
// charge op overhead separately via ChargeOp. The injection is paced
// by the transport gap on the chosen channel, then the message takes
// the software pipeline latency plus the fabric (or shared-memory)
// journey.
//
// The two callbacks split the delivery by ownership: `remote` runs on
// dst's engine (mutate target-rank state there — window memory,
// receive queues, signals), `local` runs on the sender's engine at
// the same timestamp (origin-side completion — outstanding-op
// decrements, local conds). Either may be nil. When src and dst share
// a node group both run, remote first, as one event.
//
// Same-node delivery is stateless (latency + memory bandwidth) and is
// scheduled immediately; a cross-node journey reserves fabric link
// bandwidth, so it is deferred to the window barrier where all
// reservations apply in the global (at, sender) order.
func (ep *Endpoint) Inject(tp machine.TransportParams, dst int, bytes int64, ch int, remote, local func(at sim.Time)) {
	if dst < 0 || dst >= ep.world.Size() {
		panic(fmt.Sprintf("runtime: rank %d injecting to invalid destination %d", ep.rank, dst))
	}
	now := ep.eng().Now()
	c := ((ch % len(ep.chanFree)) + len(ep.chanFree)) % len(ep.chanFree)
	start := now
	if ep.chanFree[c] > start {
		start = ep.chanFree[c]
	}
	ep.chanFree[c] = start + tp.Gap
	ep.injected++
	ep.bytesOut += bytes

	w := ep.world
	if w.eng.GroupOf(ep.rank) == w.eng.GroupOf(dst) {
		deliver := ep.wireTime(tp, start, dst, bytes, c)
		ep.eng().At(deliver, func() {
			if remote != nil {
				remote(deliver)
			}
			if local != nil {
				local(deliver)
			}
		})
		return
	}
	// Cross-group: the wire journey mutates shared link state, so it
	// is computed at the barrier, in deferred-op total order. The
	// delivery lands at least SoftLatency (>> lookahead) past `start`,
	// so scheduling it onto the target group from the barrier can
	// never violate the window bound.
	me, src := ep.rank, ep
	w.eng.Defer(me, start, func() {
		deliver := src.wireTime(tp, start, dst, bytes, c)
		w.eng.At(dst, deliver, func() {
			if remote != nil {
				remote(deliver)
			}
		})
		if local != nil {
			w.eng.At(me, deliver, func() { local(deliver) })
		}
	})
}

// wireTime computes the arrival time of the last byte at dst for a
// message leaving the NIC at start, using the cached wire plan. The
// same-node path is stateless; cross-node paths reserve link
// bandwidth and must only run from the rank's own engine (same-group
// deliveries) or from a window barrier.
func (ep *Endpoint) wireTime(tp machine.TransportParams, start sim.Time, dst int, bytes int64, ch int) sim.Time {
	inst := ep.world.Inst
	pl := ep.planTo(dst)
	if pl.sameNode {
		// Shared memory: pipeline latency + copy at memory bandwidth.
		return start + tp.SoftLatency + inst.Cfg.MemLatency +
			sim.TransferTime(bytes, inst.Cfg.MemBandwidth)
	}
	lat := tp.SoftLatency
	if tp.CrossSocketExtra > 0 && pl.crossSocket {
		lat += tp.CrossSocketExtra
	}
	t := start + lat
	if tp.HostStaged {
		if legs := ep.stagedLegs(pl, dst); legs != nil {
			// Device -> host copy, host-to-host MPI, host -> device
			// copy: three fabric legs, each reserving its links.
			for _, leg := range legs {
				if leg == nil {
					continue
				}
				t = leg.Transfer(t, bytes, ch)
			}
			return t
		}
	}
	return pl.direct.Transfer(t, bytes, ch)
}

// WireLatency is the zero-contention propagation latency from this
// endpoint to dst: the fabric's base latency, or the shared-memory
// latency when the ranks co-reside. Hardware atomics ride this path
// directly, bypassing the software pipeline latency that full
// messages pay.
func (ep *Endpoint) WireLatency(dst int) sim.Time {
	pl := ep.planTo(dst)
	if pl.sameNode {
		return ep.world.Inst.Cfg.MemLatency
	}
	return pl.direct.BaseLatency()
}

// RemoteAtomic performs a blocking remote atomic against dst: the
// calling process pays one op overhead, a request flight, the remote
// AtomicTime service, and the response flight. apply runs at the
// remote service instant on the target's engine (mutating target
// memory) and its return value is handed back to the caller.
//
// Atomic request/response packets are tiny and bypass the data-path
// gap pacing; hardware atomics ride a dedicated queue. Contention for
// the remote location itself is serialized by atomicFree, mutated
// only on the target's engine (owner-computes), so arbitration order
// is the target group's event order — invariant under the worker
// count. Cross-group flights reserve fabric links at the window
// barrier; the response is scheduled strictly after apply runs, so
// the caller can never observe a result before the remote mutation,
// under any perturbation.
func (ep *Endpoint) RemoteAtomic(p *sim.Proc, tp machine.TransportParams, dst int, apply func() uint64) uint64 {
	ep.ChargeOp(p, tp)
	w := ep.world
	target := w.eps[dst]
	myEng := ep.eng()
	me := ep.rank

	var result uint64
	fired := false
	done := sim.NewCond(myEng)

	service := func(arrive sim.Time, respondFrom func(svcEnd sim.Time)) {
		// Runs on the target's engine: arbitrate the memory unit,
		// apply at the service instant, then launch the response.
		svcStart := arrive
		if target.atomicFree > svcStart {
			svcStart = target.atomicFree
		}
		svcEnd := svcStart + tp.AtomicTime
		target.atomicFree = svcEnd
		w.eng.At(dst, svcEnd, func() {
			result = apply()
			respondFrom(svcEnd)
		})
	}

	if w.eng.GroupOf(me) == w.eng.GroupOf(dst) {
		// Same node group: flights are intra-group (shared memory or
		// same-node fabric), link-stateless or group-owned; run the
		// whole transaction inline on the shared engine.
		arrive := ep.atomicFlight(tp, me, dst, myEng.Now())
		service(arrive, func(svcEnd sim.Time) {
			respond := ep.atomicFlight(tp, dst, me, svcEnd)
			myEng.At(respond, func() {
				fired = true
				done.Broadcast()
			})
		})
	} else {
		req := myEng.Now()
		w.eng.Defer(me, req, func() {
			// Barrier: the request flight reserves links in total order.
			arrive := ep.atomicFlight(tp, me, dst, req)
			w.eng.At(dst, arrive, func() {
				service(arrive, func(svcEnd sim.Time) {
					// Response flight also reserves links: defer it
					// from the service event to the next barrier.
					w.eng.Defer(dst, svcEnd, func() {
						respond := ep.atomicFlight(tp, dst, me, svcEnd)
						w.eng.At(me, respond, func() {
							fired = true
							done.Broadcast()
						})
					})
				})
			})
		})
	}
	done.WaitFor(p, func() bool { return fired })
	return result
}

// atomicFlight times one direction of an atomic transaction from
// rank `from` to rank `to` leaving at `at`. When the transport sets
// AtomicLinkOccupancy, the packet holds each fabric link on the path
// for that long (transaction-rate-limited fabrics); otherwise it
// rides at pure propagation latency.
func (ep *Endpoint) atomicFlight(tp machine.TransportParams, from, to int, at sim.Time) sim.Time {
	src := ep.world.eps[from]
	pl := src.planTo(to)
	if pl.sameNode {
		return at + ep.world.Inst.Cfg.MemLatency
	}
	if tp.AtomicLinkOccupancy > 0 {
		return pl.direct.TransferPacket(at, tp.AtomicLinkOccupancy, src.AutoChannel())
	}
	return at + pl.direct.BaseLatency()
}
