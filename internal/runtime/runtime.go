// Package runtime glues the simulation layers together: it realizes a
// machine.Instance as a set of communicating endpoints (one per MPI
// rank or SHMEM PE) on a shared discrete-event engine, and provides
// the primitive cost operations the mpi and shmem layers are built
// from — charging per-op CPU overhead, injecting messages through a
// NIC with a LogGP gap, timing the wire journey on the netsim fabric,
// and round-trip remote atomics.
package runtime

import (
	"fmt"

	"msgroofline/internal/machine"
	"msgroofline/internal/netsim"
	"msgroofline/internal/sim"
)

// World is one simulated job: an engine, a machine instance, and one
// endpoint per rank.
type World struct {
	Eng  *sim.Engine
	Inst *machine.Instance
	eps  []*Endpoint
	// shards and shardOf record the engine shard layout requested for
	// this world (see NewWorldSharded).
	shards  int
	shardOf func(rank int) int
}

// NewWorld builds a world with `ranks` endpoints on the given machine.
func NewWorld(cfg *machine.Config, ranks int) (*World, error) {
	return NewWorldSharded(cfg, ranks, 1)
}

// NewWorldSharded builds a world with `ranks` endpoints and records a
// rank→shard placement over `shards` engine shards (clamped to the
// rank count; <= 0 means 1). Placement follows sim.BlockPlacement so
// it agrees with the sharded engine's default.
//
// The coupled mpi/shmem stacks built on a World share mutable state
// across ranks — window memory, link reservations, atomic
// serialization — so their simulation always executes on the single
// sequential engine regardless of the shard count: output is
// byte-identical at every -shards value by construction (the
// deterministic fallback, DESIGN.md §11). The recorded placement and
// the fabric's Lookahead feed the sim.ShardedEngine path for
// workloads whose state is rank-confined.
func NewWorldSharded(cfg *machine.Config, ranks, shards int) (*World, error) {
	inst, err := cfg.Instantiate(ranks)
	if err != nil {
		return nil, err
	}
	if shards < 1 {
		shards = 1
	}
	if shards > ranks {
		shards = ranks
	}
	w := &World{
		Eng:     sim.NewEngine(),
		Inst:    inst,
		shards:  shards,
		shardOf: sim.BlockPlacement(ranks, shards),
	}
	channels := 1
	if cfg.GPU != nil {
		channels = cfg.GPU.Channels
	}
	for r := 0; r < ranks; r++ {
		w.eps = append(w.eps, &Endpoint{
			world:    w,
			rank:     r,
			chanFree: make([]sim.Time, channels),
		})
	}
	return w, nil
}

// Size returns the number of endpoints (ranks/PEs).
func (w *World) Size() int { return len(w.eps) }

// Shards returns the engine shard count recorded for this world.
func (w *World) Shards() int { return w.shards }

// ShardOf returns the shard rank is placed on (block placement over
// the recorded shard count).
func (w *World) ShardOf(rank int) int { return w.shardOf(rank) }

// Lookahead returns the fabric's conservative lookahead bound: the
// minimum link propagation latency of the instantiated network. It is
// 0 when every rank shares one fabric node (no links), in which case
// no conservative horizon exists and sharded execution must stay
// disabled.
func (w *World) Lookahead() sim.Time { return w.Inst.Net.LookaheadBound() }

// Endpoint returns the endpoint for a rank.
func (w *World) Endpoint(rank int) *Endpoint {
	return w.eps[rank]
}

// Run drives the simulation to completion and surfaces deadlocks.
func (w *World) Run() error { return w.Eng.Run() }

// Endpoint is one rank's attachment to the fabric: its placement plus
// a NIC with one or more injection channels, each pacing injections at
// the transport's LogGP gap.
type Endpoint struct {
	world    *World
	rank     int
	chanFree []sim.Time // per-channel earliest next injection
	rr       int        // round-robin cursor for AutoChannel
	injected int64      // messages injected (stats)
	bytesOut int64
	// atomicFree serializes remote atomics targeting this endpoint's
	// memory (one at a time at the memory controller).
	atomicFree sim.Time
	// plans caches the resolved fabric route(s) to each destination
	// rank (lazily built; topology is static after instantiation), so
	// the per-send path does no map probes and no allocation.
	plans []*wirePlan
}

// wirePlan is the cached routing decision from one endpoint to one
// destination rank.
type wirePlan struct {
	sameNode    bool
	crossSocket bool
	direct      *netsim.Path   // node-to-node route (nil when sameNode)
	staged      []*netsim.Path // host-staged legs, built on first staged send
	stagedBuilt bool
}

// planTo returns the cached wire plan from ep to rank dst, resolving
// it on first use.
func (ep *Endpoint) planTo(dst int) *wirePlan {
	if ep.plans == nil {
		ep.plans = make([]*wirePlan, ep.world.Size())
	}
	if pl := ep.plans[dst]; pl != nil {
		return pl
	}
	inst := ep.world.Inst
	pl := &wirePlan{
		sameNode:    inst.SameNode(ep.rank, dst),
		crossSocket: inst.CrossSocket(ep.rank, dst),
	}
	if !pl.sameNode {
		p, err := inst.Net.PathTo(inst.Places[ep.rank].Node, inst.Places[dst].Node)
		if err != nil {
			panic(fmt.Sprintf("runtime: %v", err))
		}
		pl.direct = p
	}
	ep.plans[dst] = pl
	return pl
}

// stagedLegs resolves (once) the device->host, host->host, host->device
// legs of a host-staged transfer toward dst. Legs whose endpoints
// coincide resolve to nil and are skipped at send time. It returns nil
// when either side has no host (the caller falls back to the direct
// route).
func (ep *Endpoint) stagedLegs(pl *wirePlan, dst int) []*netsim.Path {
	if !pl.stagedBuilt {
		pl.stagedBuilt = true
		inst := ep.world.Inst
		srcPlace, dstPlace := inst.Places[ep.rank], inst.Places[dst]
		if srcPlace.Host != "" && dstPlace.Host != "" {
			legs := [][2]string{
				{srcPlace.Node, srcPlace.Host},
				{srcPlace.Host, dstPlace.Host},
				{dstPlace.Host, dstPlace.Node},
			}
			pl.staged = make([]*netsim.Path, len(legs))
			for i, leg := range legs {
				if leg[0] == leg[1] {
					continue
				}
				p, err := inst.Net.PathTo(leg[0], leg[1])
				if err != nil {
					panic(fmt.Sprintf("runtime: %v", err))
				}
				pl.staged[i] = p
			}
		}
	}
	return pl.staged
}

// Rank returns the endpoint's rank id.
func (ep *Endpoint) Rank() int { return ep.rank }

// Channels returns the number of NIC injection channels.
func (ep *Endpoint) Channels() int { return len(ep.chanFree) }

// Stats returns cumulative injection counters.
func (ep *Endpoint) Stats() (messages, bytes int64) {
	return ep.injected, ep.bytesOut
}

// AutoChannel returns the next channel in round-robin order; message
// streams that do not care about placement use it to spread load over
// parallel links.
func (ep *Endpoint) AutoChannel() int {
	c := ep.rr
	ep.rr = (ep.rr + 1) % len(ep.chanFree)
	return c
}

// ChargeOp blocks p for one library-operation overhead.
func (ep *Endpoint) ChargeOp(p *sim.Proc, tp machine.TransportParams) {
	p.Sleep(tp.OpOverhead)
}

// Compute blocks p for d of CPU (or GPU SM) time.
func (ep *Endpoint) Compute(p *sim.Proc, d sim.Time) {
	p.Sleep(d)
}

// Inject sends bytes toward dst on the given channel and schedules
// onDeliver at the arrival time of the last byte. The calling process
// is NOT blocked (nonblocking semantics); callers charge op overhead
// separately via ChargeOp. The injection is paced by the transport
// gap on the chosen channel, then the message takes the software
// pipeline latency plus the fabric (or shared-memory) journey.
func (ep *Endpoint) Inject(tp machine.TransportParams, dst int, bytes int64, ch int, onDeliver func(at sim.Time)) {
	if dst < 0 || dst >= ep.world.Size() {
		panic(fmt.Sprintf("runtime: rank %d injecting to invalid destination %d", ep.rank, dst))
	}
	eng := ep.world.Eng
	now := eng.Now()
	c := ((ch % len(ep.chanFree)) + len(ep.chanFree)) % len(ep.chanFree)
	start := now
	if ep.chanFree[c] > start {
		start = ep.chanFree[c]
	}
	ep.chanFree[c] = start + tp.Gap
	ep.injected++
	ep.bytesOut += bytes

	deliver := ep.wireTime(tp, start, dst, bytes, c)
	eng.At(deliver, func() { onDeliver(deliver) })
}

// wireTime computes the arrival time of the last byte at dst for a
// message leaving the NIC at start, using the cached wire plan.
func (ep *Endpoint) wireTime(tp machine.TransportParams, start sim.Time, dst int, bytes int64, ch int) sim.Time {
	inst := ep.world.Inst
	pl := ep.planTo(dst)
	if pl.sameNode {
		// Shared memory: pipeline latency + copy at memory bandwidth.
		return start + tp.SoftLatency + inst.Cfg.MemLatency +
			sim.TransferTime(bytes, inst.Cfg.MemBandwidth)
	}
	lat := tp.SoftLatency
	if tp.CrossSocketExtra > 0 && pl.crossSocket {
		lat += tp.CrossSocketExtra
	}
	t := start + lat
	if tp.HostStaged {
		if legs := ep.stagedLegs(pl, dst); legs != nil {
			// Device -> host copy, host-to-host MPI, host -> device
			// copy: three fabric legs, each reserving its links.
			for _, leg := range legs {
				if leg == nil {
					continue
				}
				t = leg.Transfer(t, bytes, ch)
			}
			return t
		}
	}
	return pl.direct.Transfer(t, bytes, ch)
}

// WireLatency is the zero-contention propagation latency from this
// endpoint to dst: the fabric's base latency, or the shared-memory
// latency when the ranks co-reside. Hardware atomics ride this path
// directly, bypassing the software pipeline latency that full
// messages pay.
func (ep *Endpoint) WireLatency(dst int) sim.Time {
	pl := ep.planTo(dst)
	if pl.sameNode {
		return ep.world.Inst.Cfg.MemLatency
	}
	return pl.direct.BaseLatency()
}

// RemoteAtomic performs a blocking remote atomic against dst: the
// calling process pays one op overhead, a request flight, the remote
// AtomicTime service, and the response flight. apply runs at the
// remote service instant (mutating target memory) and its return
// value is handed back to the caller.
//
// Atomic request/response packets are tiny and bypass the data-path
// gap pacing; hardware atomics ride a dedicated queue. Contention for
// the remote location itself is serialized by atomicFree on the
// target endpoint.
func (ep *Endpoint) RemoteAtomic(p *sim.Proc, tp machine.TransportParams, dst int, apply func() uint64) uint64 {
	ep.ChargeOp(p, tp)
	target := ep.world.eps[dst]
	eng := ep.world.Eng

	arrive := ep.atomicFlight(tp, ep.rank, dst, eng.Now())
	// Serialize atomics at the target memory controller.
	svcStart := arrive
	if target.atomicFree > svcStart {
		svcStart = target.atomicFree
	}
	svcEnd := svcStart + tp.AtomicTime
	target.atomicFree = svcEnd
	respond := ep.atomicFlight(tp, dst, ep.rank, svcEnd)

	var result uint64
	done := sim.NewCond(eng)
	fired := false
	if eng.Perturbed() {
		// Under schedule perturbation the service and response events
		// carry independent jitter, so the response is scheduled from
		// inside the service event: the caller must never observe the
		// response before apply has mutated target memory. (The flight
		// itself was timed above, so link reservations are unchanged.)
		eng.At(svcEnd, func() {
			result = apply()
			eng.At(respond, func() {
				fired = true
				done.Broadcast()
			})
		})
	} else {
		eng.At(svcEnd, func() { result = apply() })
		eng.At(respond, func() {
			fired = true
			done.Broadcast()
		})
	}
	done.WaitFor(p, func() bool { return fired })
	return result
}

// atomicFlight times one direction of an atomic transaction from
// rank `from` to rank `to` leaving at `at`. When the transport sets
// AtomicLinkOccupancy, the packet holds each fabric link on the path
// for that long (transaction-rate-limited fabrics); otherwise it
// rides at pure propagation latency.
func (ep *Endpoint) atomicFlight(tp machine.TransportParams, from, to int, at sim.Time) sim.Time {
	src := ep.world.eps[from]
	pl := src.planTo(to)
	if pl.sameNode {
		return at + ep.world.Inst.Cfg.MemLatency
	}
	if tp.AtomicLinkOccupancy > 0 {
		return pl.direct.TransferPacket(at, tp.AtomicLinkOccupancy, src.AutoChannel())
	}
	return at + pl.direct.BaseLatency()
}
