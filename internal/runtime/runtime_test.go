package runtime

import (
	"testing"

	"msgroofline/internal/machine"
	"msgroofline/internal/sim"
)

func newWorld(t *testing.T, name string, ranks int) *World {
	t.Helper()
	cfg, err := machine.Get(name)
	if err != nil {
		t.Fatal(err)
	}
	w, err := NewWorld(cfg, ranks)
	if err != nil {
		t.Fatal(err)
	}
	return w
}

func TestWorldConstruction(t *testing.T) {
	w := newWorld(t, "perlmutter-cpu", 8)
	if w.Size() != 8 {
		t.Fatalf("Size = %d", w.Size())
	}
	if w.Endpoint(3).Rank() != 3 {
		t.Fatal("endpoint rank mismatch")
	}
	if w.Endpoint(0).Channels() != 1 {
		t.Fatal("CPU endpoints should have 1 injection channel")
	}
	g := newWorld(t, "perlmutter-gpu", 4)
	if g.Endpoint(0).Channels() != 4 {
		t.Fatal("Perlmutter GPU endpoints should have 4 channels")
	}
}

func TestNewWorldRejectsOversubscription(t *testing.T) {
	cfg, _ := machine.Get("perlmutter-gpu")
	if _, err := NewWorld(cfg, 5); err == nil {
		t.Fatal("5 PEs on a 4-GPU machine should fail")
	}
}

func TestInjectDeliveryTiming(t *testing.T) {
	w := newWorld(t, "perlmutter-cpu", 128)
	tp, _ := w.Inst.Cfg.Params(machine.TwoSided)
	var delivered sim.Time
	w.Spawn(0, "sender", func(p *sim.Proc) {
		// Cross-socket: rank 0 (socket 0) to rank 127 (socket 1).
		w.Endpoint(0).Inject(tp, 127, 8, 0, func(at sim.Time) { delivered = at }, nil)
	})
	if err := w.Run(); err != nil {
		t.Fatal(err)
	}
	// Expected: soft latency (2.7us) + IF wire (150ns) + tiny ser.
	lo := tp.SoftLatency + sim.FromNanoseconds(150)
	hi := lo + sim.FromNanoseconds(10)
	if delivered < lo || delivered > hi {
		t.Fatalf("delivered at %v, want in [%v, %v]", delivered, lo, hi)
	}
}

func TestInjectGapPacing(t *testing.T) {
	w := newWorld(t, "perlmutter-cpu", 128)
	tp, _ := w.Inst.Cfg.Params(machine.TwoSided)
	var deliveries []sim.Time
	w.Spawn(0, "sender", func(p *sim.Proc) {
		for i := 0; i < 3; i++ {
			w.Endpoint(0).Inject(tp, 127, 8, 0, func(at sim.Time) {
				deliveries = append(deliveries, at)
			}, nil)
		}
	})
	if err := w.Run(); err != nil {
		t.Fatal(err)
	}
	if len(deliveries) != 3 {
		t.Fatalf("got %d deliveries", len(deliveries))
	}
	// Back-to-back injections are paced by the gap (50 ns).
	d01 := deliveries[1] - deliveries[0]
	if d01 < tp.Gap {
		t.Fatalf("spacing %v below gap %v", d01, tp.Gap)
	}
	msgs, bytes := w.Endpoint(0).Stats()
	if msgs != 3 || bytes != 24 {
		t.Fatalf("stats = %d msgs, %d bytes", msgs, bytes)
	}
}

func TestSameNodeUsesMemoryPath(t *testing.T) {
	w := newWorld(t, "perlmutter-cpu", 4) // ranks 0,1 socket 0
	tp, _ := w.Inst.Cfg.Params(machine.TwoSided)
	var delivered sim.Time
	w.Spawn(0, "sender", func(p *sim.Proc) {
		w.Endpoint(0).Inject(tp, 1, 1000, 0, func(at sim.Time) { delivered = at }, nil)
	})
	if err := w.Run(); err != nil {
		t.Fatal(err)
	}
	want := tp.SoftLatency + w.Inst.Cfg.MemLatency + sim.TransferTime(1000, w.Inst.Cfg.MemBandwidth)
	if delivered != want {
		t.Fatalf("delivered = %v, want %v", delivered, want)
	}
}

func TestAutoChannelRoundRobin(t *testing.T) {
	w := newWorld(t, "perlmutter-gpu", 4)
	ep := w.Endpoint(0)
	seen := map[int]int{}
	for i := 0; i < 8; i++ {
		seen[ep.AutoChannel()]++
	}
	for c := 0; c < 4; c++ {
		if seen[c] != 2 {
			t.Fatalf("channel %d used %d times, want 2 (round robin)", c, seen[c])
		}
	}
}

func TestParallelChannelsBeatSingleChannel(t *testing.T) {
	// The Fig 10 mechanism at runtime level: 4 messages of B/4 on
	// distinct channels finish sooner than one message of B.
	sizes := int64(1 << 20)
	single := transferDuration(t, false, sizes)
	split := transferDuration(t, true, sizes)
	if split >= single {
		t.Fatalf("split %v should beat single %v", split, single)
	}
	speedup := float64(single) / float64(split)
	if speedup < 2.5 || speedup > 4.2 {
		t.Fatalf("split speedup = %.2f, want ~3-4x for 1 MiB", speedup)
	}
}

func transferDuration(t *testing.T, split bool, bytes int64) sim.Time {
	t.Helper()
	w := newWorld(t, "perlmutter-gpu", 2)
	tp, _ := w.Inst.Cfg.Params(machine.GPUShmem)
	var last sim.Time
	w.Spawn(0, "sender", func(p *sim.Proc) {
		record := func(at sim.Time) {
			if at > last {
				last = at
			}
		}
		if split {
			for c := 0; c < 4; c++ {
				w.Endpoint(0).Inject(tp, 1, bytes/4, c, record, nil)
			}
		} else {
			w.Endpoint(0).Inject(tp, 1, bytes, 0, record, nil)
		}
	})
	if err := w.Run(); err != nil {
		t.Fatal(err)
	}
	return last
}

func TestRemoteAtomicCalibration(t *testing.T) {
	// Summit GPU CAS: ~0.95us in-island, ~1.65us cross-island (paper:
	// 1us / 1.6us §III-C). Perlmutter GPU: ~0.8us.
	cases := []struct {
		machine  string
		ranks    int
		dst      int
		tr       machine.Transport
		loUS, hi float64
	}{
		{"summit-gpu", 6, 1, machine.GPUShmem, 0.85, 1.15},
		{"summit-gpu", 6, 3, machine.GPUShmem, 1.45, 1.85},
		{"perlmutter-gpu", 4, 1, machine.GPUShmem, 0.7, 0.95},
		{"perlmutter-cpu", 128, 127, machine.OneSided, 1.7, 2.3},
	}
	for _, c := range cases {
		w := newWorld(t, c.machine, c.ranks)
		tp, ok := w.Inst.Cfg.Params(c.tr)
		if !ok {
			t.Fatalf("%s lacks %v", c.machine, c.tr)
		}
		var elapsed sim.Time
		var got uint64
		w.Spawn(0, "cas", func(p *sim.Proc) {
			start := p.Now()
			got = w.Endpoint(0).RemoteAtomic(p, tp, c.dst, func() uint64 { return 42 })
			elapsed = p.Now() - start
		})
		if err := w.Run(); err != nil {
			t.Fatal(err)
		}
		if got != 42 {
			t.Fatalf("%s: atomic result = %d", c.machine, got)
		}
		us := elapsed.Microseconds()
		if us < c.loUS || us > c.hi {
			t.Errorf("%s CAS to rank %d = %.2fus, want [%.2f, %.2f]",
				c.machine, c.dst, us, c.loUS, c.hi)
		}
	}
}

func TestRemoteAtomicSerialization(t *testing.T) {
	// Two concurrent atomics against the same target serialize at the
	// target's memory controller.
	w := newWorld(t, "perlmutter-gpu", 3)
	tp, _ := w.Inst.Cfg.Params(machine.GPUShmem)
	counter := uint64(0)
	var ends []sim.Time
	for r := 0; r < 2; r++ {
		rank := r
		w.Spawn(rank, "cas", func(p *sim.Proc) {
			w.Endpoint(rank).RemoteAtomic(p, tp, 2, func() uint64 {
				counter++
				return counter
			})
			ends = append(ends, p.Now())
		})
	}
	if err := w.Run(); err != nil {
		t.Fatal(err)
	}
	if counter != 2 {
		t.Fatalf("counter = %d", counter)
	}
	gap := ends[1] - ends[0]
	if gap < 0 {
		gap = -gap
	}
	if gap < tp.AtomicTime/2 {
		t.Fatalf("atomics did not serialize: completion gap %v", gap)
	}
}

func TestInjectPanicsOnBadDst(t *testing.T) {
	w := newWorld(t, "perlmutter-cpu", 2)
	tp, _ := w.Inst.Cfg.Params(machine.TwoSided)
	w.Spawn(0, "bad", func(p *sim.Proc) {
		defer func() {
			if recover() == nil {
				t.Error("expected panic for invalid destination")
			}
		}()
		w.Endpoint(0).Inject(tp, 7, 8, 0, func(sim.Time) {}, nil)
	})
	if err := w.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestDeterministicWorld(t *testing.T) {
	run := func() sim.Time {
		w := newWorld(t, "summit-gpu", 6)
		tp, _ := w.Inst.Cfg.Params(machine.GPUShmem)
		var last sim.Time
		for r := 0; r < 6; r++ {
			rank := r
			w.Spawn(rank, "p", func(p *sim.Proc) {
				for i := 0; i < 10; i++ {
					dst := (rank + 1 + i) % 6
					w.Endpoint(rank).Inject(tp, dst, int64(64*(i+1)), i, func(at sim.Time) {
						if at > last {
							last = at
						}
					}, nil)
					p.Sleep(100 * sim.Nanosecond)
				}
			})
		}
		if err := w.Run(); err != nil {
			t.Fatal(err)
		}
		return last
	}
	if a, b := run(), run(); a != b {
		t.Fatalf("nondeterministic: %v vs %v", a, b)
	}
}

func TestComputeAdvancesClock(t *testing.T) {
	w := newWorld(t, "perlmutter-cpu", 2)
	var after sim.Time
	w.Spawn(0, "c", func(p *sim.Proc) {
		w.Endpoint(0).Compute(p, 7*sim.Microsecond)
		after = p.Now()
	})
	if err := w.Run(); err != nil {
		t.Fatal(err)
	}
	if after != 7*sim.Microsecond {
		t.Fatalf("compute advanced to %v, want 7us", after)
	}
}

func TestWireLatency(t *testing.T) {
	w := newWorld(t, "perlmutter-cpu", 128)
	// Same socket: memory latency.
	if got := w.Endpoint(0).WireLatency(1); got != w.Inst.Cfg.MemLatency {
		t.Fatalf("same-node wire = %v", got)
	}
	// Cross socket: fabric base latency (IF hop, 150 ns).
	if got := w.Endpoint(0).WireLatency(127); got != sim.FromNanoseconds(150) {
		t.Fatalf("cross-socket wire = %v, want 150ns", got)
	}
}

func TestHostStagedWireJourney(t *testing.T) {
	// Host-staged messages pay the PCIe legs: device -> host -> device.
	w := newWorld(t, "perlmutter-gpu", 2)
	tp, ok := w.Inst.Cfg.Params(machine.TwoSided)
	if !ok {
		t.Fatal("no host MPI on perlmutter-gpu")
	}
	var staged sim.Time
	w.Spawn(0, "s", func(p *sim.Proc) {
		w.Endpoint(0).Inject(tp, 1, 1<<20, 0, func(at sim.Time) { staged = at }, nil)
	})
	if err := w.Run(); err != nil {
		t.Fatal(err)
	}
	// Direct NVSHMEM journey of the same megabyte for comparison.
	w2 := newWorld(t, "perlmutter-gpu", 2)
	sp, _ := w2.Inst.Cfg.Params(machine.GPUShmem)
	var direct sim.Time
	w2.Spawn(0, "s", func(p *sim.Proc) {
		w2.Endpoint(0).Inject(sp, 1, 1<<20, 0, func(at sim.Time) { direct = at }, nil)
	})
	if err := w2.Run(); err != nil {
		t.Fatal(err)
	}
	if staged <= direct {
		t.Fatalf("host-staged 1 MiB (%v) should be slower than direct (%v): two PCIe serializations", staged, direct)
	}
	// Lower bound: two PCIe legs of 1 MiB at 25 GB/s each.
	lb := 2 * sim.TransferTime(1<<20, 25e9)
	if staged < lb {
		t.Fatalf("staged %v below two-PCIe-legs bound %v", staged, lb)
	}
}

func TestCrossSocketExtraCharged(t *testing.T) {
	// Summit GPU cross-island puts pay the host-proxy penalty.
	w := newWorld(t, "summit-gpu", 6)
	tp, _ := w.Inst.Cfg.Params(machine.GPUShmem)
	deliver := func(dst int) sim.Time {
		ww := newWorld(t, "summit-gpu", 6)
		var at sim.Time
		ww.Spawn(0, "s", func(p *sim.Proc) {
			ww.Endpoint(0).Inject(tp, dst, 8, 0, func(a sim.Time) { at = a }, nil)
		})
		if err := ww.Run(); err != nil {
			t.Fatal(err)
		}
		return at
	}
	in := deliver(1)    // in-island
	cross := deliver(3) // cross-island
	if cross-in < tp.CrossSocketExtra {
		t.Fatalf("cross-island delivery %v vs in-island %v: proxy penalty %v not charged",
			cross, in, tp.CrossSocketExtra)
	}
	_ = w
}
