package runtime

import "sync"

// Payload staging pool. One-sided puts stage the caller's bytes at
// issue time (the origin buffer may be legally reused once the local
// completion lands, which can precede the remote delivery event in
// real execution order) and release the staging copy after the
// delivery closure has written it into the target's memory. Pooling
// those buffers removes the dominant allocation stream of the put
// workloads; it is safe because a released buffer is never read
// again and every borrow overwrites the full length it asked for.
//
// Borrow/Release are concurrency-safe: delivery closures run on the
// target group's engine, which may be a different goroutine than the
// origin's when window workers > 1.
var stagePool sync.Pool

// BorrowBuf returns a length-n byte slice whose contents are
// unspecified — the caller must overwrite all n bytes. Release it
// with ReleaseBuf once no reference escapes.
func BorrowBuf(n int) []byte {
	if v := stagePool.Get(); v != nil {
		b := v.(*[]byte)
		if cap(*b) >= n {
			return (*b)[:n]
		}
		// Too small for this borrower: drop it rather than cycling
		// undersized buffers through a growing workload.
	}
	return make([]byte, n)
}

// ReleaseBuf returns a buffer to the pool. The caller must not touch
// the slice afterwards. Buffers that escape to user code (two-sided
// receives alias the staged send buffer, for example) must never be
// released.
func ReleaseBuf(b []byte) {
	if cap(b) == 0 {
		return
	}
	stagePool.Put(&b)
}
