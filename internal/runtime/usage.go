package runtime

import (
	"sync"
	"time"
)

// Process-wide shard-utilization tally. Every completed World.Run
// folds its coupled engine's execution summary in here so a
// command-line binary can end with one stderr line proving the
// grouped (sharded) path actually executed — see
// cliflags.ReportShards. The tally never feeds back into simulation
// state, so stdout determinism is untouched; commands running many
// worlds concurrently (-jobs) serialize on the mutex only once per
// world.

// UsageSummary aggregates coupled-engine execution across every
// world the process has run.
type UsageSummary struct {
	// Worlds counts completed World.Run calls; Grouped counts the
	// subset whose fabric topology produced more than one node group
	// (the worlds that exercise the window protocol).
	Worlds  int
	Grouped int
	// Windows is the total conservative windows executed.
	Windows uint64
	// Events sums executed events by node-group index (ragged across
	// machines: index 0 aggregates every world's first group, and so
	// on up to the largest group count seen).
	Events []int64
	// MaxWorkers is the largest window worker parallelism used.
	MaxWorkers int
	// Busy is the summed per-group busy time inside windows; divided
	// by a command's wall time it gives the parallel-efficiency
	// figure (see sim.CoupledEngine.BusyWall).
	Busy time.Duration
	// ExecWall, BarrierWall and ScanWall attribute the window loops'
	// wall time to their three phases — group execution, barrier
	// deferred-op application, and window-bound maintenance (min-tree
	// reads plus active-set collection) — the engine-layer start of a
	// Breaking-Band-style cost breakdown (see
	// sim.CoupledEngine.PhaseWall).
	ExecWall    time.Duration
	BarrierWall time.Duration
	ScanWall    time.Duration
}

var (
	usageMu sync.Mutex
	usage   UsageSummary
)

// noteUsage folds one finished world into the process tally.
func noteUsage(w *World) {
	gs := w.GroupStats()
	usageMu.Lock()
	defer usageMu.Unlock()
	usage.Worlds++
	if len(gs) > 1 {
		usage.Grouped++
	}
	usage.Windows += w.Windows()
	for len(usage.Events) < len(gs) {
		usage.Events = append(usage.Events, 0)
	}
	for g, s := range gs {
		usage.Events[g] += s.Executed
		usage.Busy += s.Busy
	}
	if w.eng.Workers() > usage.MaxWorkers {
		usage.MaxWorkers = w.eng.Workers()
	}
	exec, barrier, scan := w.eng.PhaseWall()
	usage.ExecWall += exec
	usage.BarrierWall += barrier
	usage.ScanWall += scan
}

// Usage returns a copy of the process-wide shard-utilization tally.
func Usage() UsageSummary {
	usageMu.Lock()
	defer usageMu.Unlock()
	u := usage
	u.Events = append([]int64(nil), usage.Events...)
	return u
}
