// Package sched is a bounded worker-pool scheduler for independent,
// bit-reproducible simulation runs. Every sweep point and every
// experiment in this repository is a self-contained discrete-event
// simulation (its own engine, fabric, and ranks), so runs may execute
// on any goroutine in any order — the only thing that must stay fixed
// is the order results are reported in. The scheduler therefore
// executes jobs on up to `workers` goroutines but collects results in
// submission (index) order, which keeps all downstream output
// byte-identical to a sequential run.
//
// Failure semantics: the first job error stops the intake — jobs not
// yet started are abandoned — while already-running jobs finish.
// Every error that did occur is aggregated (in index order) into the
// returned error. A panicking job is captured and reported as an
// error rather than tearing down the process.
package sched

import (
	"errors"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"time"
)

// Stats records measurement-host (wall-clock) scheduling costs. They
// describe how fast the simulations were *regenerated*, never the
// simulated quantities themselves, and must not be mixed into
// simulation output (they vary run to run; simulation results do not).
type Stats struct {
	// Jobs is the number of submitted jobs.
	Jobs int
	// Started is how many jobs actually began (equals Jobs unless a
	// failure canceled the tail of the queue).
	Started int
	// Workers is the pool size used.
	Workers int
	// Wall is the end-to-end wall time of the whole batch.
	Wall time.Duration
	// JobWall holds the per-job wall time, indexed by job; zero for
	// jobs that were canceled before starting.
	JobWall []time.Duration
}

// Busy sums the per-job wall times: the serial cost the pool amortized.
func (s *Stats) Busy() time.Duration {
	var total time.Duration
	for _, d := range s.JobWall {
		total += d
	}
	return total
}

// Speedup is Busy/Wall: how much faster the batch ran than a
// sequential execution of the same jobs (1.0 on one worker).
func (s *Stats) Speedup() float64 {
	if s.Wall <= 0 {
		return 1
	}
	return float64(s.Busy()) / float64(s.Wall)
}

// Throughput is completed jobs per wall-clock second.
func (s *Stats) Throughput() float64 {
	if s.Wall <= 0 {
		return 0
	}
	return float64(s.Started) / s.Wall.Seconds()
}

func (s *Stats) String() string {
	return fmt.Sprintf("%d jobs on %d workers in %v (busy %v, %.2fx, %.1f jobs/s)",
		s.Jobs, s.Workers, s.Wall.Round(time.Microsecond), s.Busy().Round(time.Microsecond),
		s.Speedup(), s.Throughput())
}

// Run executes fn(i) for every i in [0, n) on up to `workers`
// goroutines. workers <= 0 selects runtime.GOMAXPROCS(0); the pool
// never exceeds n. On the first failure no further jobs are started;
// the aggregated error joins every job error in index order.
func Run(workers, n int, fn func(i int) error) (*Stats, error) {
	if n < 0 {
		return nil, fmt.Errorf("sched: negative job count %d", n)
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > n {
		workers = n
	}
	stats := &Stats{Jobs: n, Workers: workers, JobWall: make([]time.Duration, n)}
	if n == 0 {
		return stats, nil
	}
	errs := make([]error, n)
	var (
		next    atomic.Int64
		started atomic.Int64
		failed  atomic.Bool
		wg      sync.WaitGroup
	)
	begin := time.Now()
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				if failed.Load() {
					return
				}
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				started.Add(1)
				t0 := time.Now()
				if err := runJob(i, fn); err != nil {
					errs[i] = err
					failed.Store(true)
				}
				stats.JobWall[i] = time.Since(t0)
			}
		}()
	}
	wg.Wait()
	stats.Wall = time.Since(begin)
	stats.Started = int(started.Load())
	var agg []error
	for _, err := range errs {
		if err != nil {
			agg = append(agg, err)
		}
	}
	return stats, errors.Join(agg...)
}

// runJob invokes one job, converting a panic into an error so a bad
// job cancels the batch instead of crashing the process.
func runJob(i int, fn func(i int) error) (err error) {
	defer func() {
		if r := recover(); r != nil {
			err = fmt.Errorf("sched: job %d panicked: %v", i, r)
		}
	}()
	return fn(i)
}

// Map runs fn(i) for every i in [0, n) on up to `workers` goroutines
// and returns the results in submission order, so output built from
// the slice is byte-identical to a sequential run. Error and
// cancellation semantics are those of Run; on error the results of
// completed jobs are still returned (failed or canceled slots hold
// the zero value).
func Map[T any](workers, n int, fn func(i int) (T, error)) ([]T, *Stats, error) {
	out := make([]T, n)
	stats, err := Run(workers, n, func(i int) error {
		v, err := fn(i)
		if err != nil {
			return err
		}
		out[i] = v
		return nil
	})
	return out, stats, err
}
