package sched

import (
	"errors"
	"fmt"
	"strings"
	"testing"

	"msgroofline/internal/sim"
)

// perturbedElapsed runs a small event cascade on a schedule-perturbed
// engine and returns the finish time. Each seed yields its own (still
// deterministic) schedule, so pool workers execute genuinely different
// event interleavings.
func perturbedElapsed(seed uint64) sim.Time {
	eng := sim.NewEngine()
	eng.SetPerturbation(&sim.Perturbation{
		Seed: seed, Reorder: true, MaxJitter: sim.Microsecond,
	})
	for i := 0; i < 8; i++ {
		d := sim.Time(i) * sim.Nanosecond
		eng.At(d, func() {
			eng.At(eng.Now()+sim.Nanosecond, func() {})
		})
	}
	if err := eng.Run(); err != nil {
		panic(err)
	}
	return eng.Now()
}

// TestMapDeterministicWithPerturbedEngines runs a pool of jobs that
// each drive a perturbed simulation; two pool runs (and a serial run)
// must produce identical index-ordered results regardless of which
// worker picked up which seed.
func TestMapDeterministicWithPerturbedEngines(t *testing.T) {
	fn := func(i int) (sim.Time, error) {
		return perturbedElapsed(uint64(i) + 1), nil
	}
	pooled, _, err := Map(4, 12, fn)
	if err != nil {
		t.Fatal(err)
	}
	again, _, err := Map(4, 12, fn)
	if err != nil {
		t.Fatal(err)
	}
	serial, _, err := Map(1, 12, fn)
	if err != nil {
		t.Fatal(err)
	}
	for i := range pooled {
		if pooled[i] != again[i] || pooled[i] != serial[i] {
			t.Fatalf("job %d not deterministic: %v / %v / %v", i, pooled[i], again[i], serial[i])
		}
	}
}

// TestCancelStopsIntakeWithPerturbedEngines checks first-error
// cancellation while workers are busy inside simulations: once a job
// fails, the scheduler must stop admitting new jobs and report the
// failure (plus any later-index failures already running) in index
// order.
func TestCancelStopsIntakeWithPerturbedEngines(t *testing.T) {
	const n = 64
	var started [n]bool
	stats, err := Run(2, n, func(i int) error {
		started[i] = true
		perturbedElapsed(uint64(i))
		if i == 3 {
			return fmt.Errorf("job %d: injected failure", i)
		}
		return nil
	})
	if err == nil {
		t.Fatal("injected failure not reported")
	}
	if !strings.Contains(err.Error(), "job 3") {
		t.Fatalf("wrong error: %v", err)
	}
	if stats.Started >= n {
		t.Fatalf("intake never stopped: started all %d jobs after early failure", stats.Started)
	}
	count := 0
	for _, s := range started {
		if s {
			count++
		}
	}
	if count != stats.Started {
		t.Fatalf("stats say %d started, observed %d", stats.Started, count)
	}
}

// TestPanicInsidePerturbedEngineBecomesError plants a panic inside a
// perturbed engine callback: the scheduler must convert it into an
// ordinary error (joined with any injected failures), not tear down
// the process, and must keep the sibling jobs' completed results.
func TestPanicInsidePerturbedEngineBecomesError(t *testing.T) {
	results, _, err := Map(3, 8, func(i int) (sim.Time, error) {
		if i == 5 {
			eng := sim.NewEngine()
			eng.SetPerturbation(&sim.Perturbation{Seed: 99, Reorder: true, MaxJitter: sim.Microsecond})
			eng.At(sim.Nanosecond, func() { panic("boom at t=1ns") })
			eng.Run()
			return 0, errors.New("unreachable: panic expected")
		}
		return perturbedElapsed(uint64(i) + 1), nil
	})
	if err == nil {
		t.Fatal("panic not surfaced as error")
	}
	if !strings.Contains(err.Error(), "job 5 panicked") || !strings.Contains(err.Error(), "boom at t=1ns") {
		t.Fatalf("panic detail lost: %v", err)
	}
	for i := 0; i < 4; i++ {
		if want := perturbedElapsed(uint64(i) + 1); results[i] != want {
			t.Fatalf("completed result %d lost after sibling panic: got %v want %v", i, results[i], want)
		}
	}
}
