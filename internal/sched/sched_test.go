package sched

import (
	"errors"
	"fmt"
	"strings"
	"sync/atomic"
	"testing"
	"time"
)

func TestMapPreservesSubmissionOrder(t *testing.T) {
	// Jobs finish out of order (later indices sleep less), yet the
	// result slice must follow submission order.
	const n = 16
	out, stats, err := Map(8, n, func(i int) (int, error) {
		time.Sleep(time.Duration(n-i) * time.Millisecond)
		return i * i, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range out {
		if v != i*i {
			t.Fatalf("out[%d] = %d, want %d", i, v, i*i)
		}
	}
	if stats.Jobs != n || stats.Started != n {
		t.Fatalf("stats = %+v", stats)
	}
}

func TestRunUsesAllWorkers(t *testing.T) {
	var inFlight, peak atomic.Int64
	_, stats, err := Map(4, 32, func(i int) (struct{}, error) {
		cur := inFlight.Add(1)
		for {
			p := peak.Load()
			if cur <= p || peak.CompareAndSwap(p, cur) {
				break
			}
		}
		time.Sleep(2 * time.Millisecond)
		inFlight.Add(-1)
		return struct{}{}, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if stats.Workers != 4 {
		t.Fatalf("workers = %d", stats.Workers)
	}
	// GOMAXPROCS may be 1, but goroutines still interleave across the
	// sleeps, so more than one job should have been in flight.
	if peak.Load() < 2 {
		t.Fatalf("peak in-flight = %d, want >= 2", peak.Load())
	}
}

func TestErrorAggregationInIndexOrder(t *testing.T) {
	boom := func(i int) error { return fmt.Errorf("job-%d-boom", i) }
	// One worker: jobs run strictly in order, job 1 fails, intake
	// stops, so job 3's error never happens.
	_, err := Run(1, 4, func(i int) error {
		if i == 1 || i == 3 {
			return boom(i)
		}
		return nil
	})
	if err == nil {
		t.Fatal("want error")
	}
	if !strings.Contains(err.Error(), "job-1-boom") {
		t.Fatalf("missing job 1 error: %v", err)
	}
	if strings.Contains(err.Error(), "job-3-boom") {
		t.Fatalf("job 3 should have been canceled: %v", err)
	}
}

func TestCancellationOnFirstFailure(t *testing.T) {
	var ran atomic.Int64
	stats, err := Run(1, 100, func(i int) error {
		ran.Add(1)
		if i == 2 {
			return errors.New("fail fast")
		}
		return nil
	})
	if err == nil {
		t.Fatal("want error")
	}
	if got := ran.Load(); got != 3 {
		t.Fatalf("ran %d jobs, want 3 (0,1,2)", got)
	}
	if stats.Started != 3 {
		t.Fatalf("stats.Started = %d, want 3", stats.Started)
	}
}

func TestPanicBecomesError(t *testing.T) {
	_, err := Run(2, 4, func(i int) error {
		if i == 0 {
			panic("kaboom")
		}
		return nil
	})
	if err == nil || !strings.Contains(err.Error(), "kaboom") {
		t.Fatalf("panic not captured: %v", err)
	}
}

func TestWorkerNormalization(t *testing.T) {
	// workers <= 0 means GOMAXPROCS; pool never exceeds job count.
	stats, err := Run(0, 2, func(int) error { return nil })
	if err != nil {
		t.Fatal(err)
	}
	if stats.Workers < 1 || stats.Workers > 2 {
		t.Fatalf("workers = %d", stats.Workers)
	}
	if _, err := Run(4, -1, func(int) error { return nil }); err == nil {
		t.Fatal("negative job count should error")
	}
}

func TestEmptyBatch(t *testing.T) {
	out, stats, err := Map(4, 0, func(int) (int, error) { return 0, nil })
	if err != nil || len(out) != 0 || stats.Jobs != 0 {
		t.Fatalf("empty batch: out=%v stats=%+v err=%v", out, stats, err)
	}
	if stats.Speedup() != 1 || stats.Throughput() != 0 {
		t.Fatalf("degenerate stats: %+v", stats)
	}
}

func TestStatsAccounting(t *testing.T) {
	stats, err := Run(2, 6, func(i int) error {
		time.Sleep(time.Millisecond)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if stats.Busy() < 6*time.Millisecond {
		t.Fatalf("busy = %v, want >= 6ms", stats.Busy())
	}
	for i, d := range stats.JobWall {
		if d <= 0 {
			t.Fatalf("job %d wall = %v", i, d)
		}
	}
	if s := stats.String(); !strings.Contains(s, "6 jobs on 2 workers") {
		t.Fatalf("stats string: %s", s)
	}
}
