package shmem_test

import (
	"fmt"

	"msgroofline/internal/machine"
	"msgroofline/internal/shmem"
)

// ExampleJob_Launch shows the put-with-signal pattern every GPU
// workload in the paper uses: the sender fuses data and signal, the
// receiver waits on the signal and then reads the data.
func ExampleJob_Launch() {
	cfg, _ := machine.Get("perlmutter-gpu")
	job, _ := shmem.NewJob(cfg, 2, 128)
	_ = job.Launch(func(c *shmem.Ctx) {
		switch c.MyPE() {
		case 0:
			c.PutSignalNBI(1, 0, []byte("halo"), 64, 1)
		case 1:
			c.WaitUntilAll([]int{64}, 1)
			fmt.Printf("PE 1 received %q at t=%v\n", c.PE().Heap()[:4], c.Now())
		}
	})
	// Output:
	// PE 1 received "halo" at t=3.860us
}

// ExampleCtx_AtomicCompareSwap shows the hashtable insert primitive.
func ExampleCtx_AtomicCompareSwap() {
	cfg, _ := machine.Get("perlmutter-gpu")
	job, _ := shmem.NewJob(cfg, 2, 64)
	_ = job.Launch(func(c *shmem.Ctx) {
		if c.MyPE() != 0 {
			return
		}
		old := c.AtomicCompareSwap(1, 0, 0, 42) // empty slot: wins
		fmt.Printf("first CAS saw %d\n", old)
		old = c.AtomicCompareSwap(1, 0, 0, 77) // occupied: loses
		fmt.Printf("second CAS saw %d\n", old)
	})
	fmt.Printf("slot holds %d\n", job.PE(1).Uint64At(0))
	// Output:
	// first CAS saw 0
	// second CAS saw 42
	// slot holds 42
}

// ExampleCtx_ForkJoin shows thread-block-level concurrency: 80 blocks
// computing in parallel take one block's time.
func ExampleCtx_ForkJoin() {
	cfg, _ := machine.Get("perlmutter-gpu")
	job, _ := shmem.NewJob(cfg, 1, 8)
	_ = job.Launch(func(c *shmem.Ctx) {
		c.ForkJoin(80, func(blk *shmem.Ctx, i int) {
			blk.Compute(1000000) // 1 us each, concurrent
		})
	})
	fmt.Printf("80 concurrent 1us blocks took %v\n", job.Elapsed())
	// Output:
	// 80 concurrent 1us blocks took 1.000us
}
