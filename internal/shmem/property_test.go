package shmem

import (
	"math/rand"
	"testing"
	"testing/quick"

	"msgroofline/internal/machine"
	"msgroofline/internal/sim"
)

func newJobProp(npes, heap int) *Job {
	cfg, err := machine.Get("perlmutter-gpu")
	if err != nil {
		panic(err)
	}
	j, err := NewJob(cfg, npes, heap)
	if err != nil {
		panic(err)
	}
	return j
}

// Property: concurrent random fetch-adds from all PEs and blocks sum
// exactly.
func TestPropertyAtomicSumExact(t *testing.T) {
	f := func(seed int64, addsRaw, blocksRaw uint8) bool {
		adds := int(addsRaw%30) + 1
		blocks := int(blocksRaw%6) + 1
		j := newJobProp(4, 64)
		deltas := make([][]uint64, 4)
		var want uint64
		rng := rand.New(rand.NewSource(seed))
		for pe := range deltas {
			for i := 0; i < adds; i++ {
				d := uint64(rng.Intn(1000) + 1)
				deltas[pe] = append(deltas[pe], d)
				want += d
			}
		}
		err := j.Launch(func(c *Ctx) {
			mine := deltas[c.MyPE()]
			c.ForkJoin(blocks, func(blk *Ctx, bi int) {
				for i := bi; i < len(mine); i += blocks {
					blk.AtomicFetchAdd(0, 0, mine[i])
				}
			})
		})
		if err != nil {
			return false
		}
		return j.PE(0).Uint64At(0) == want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

// Property: a signal is never observed before its data, for any
// message size.
func TestPropertySignalOrdering(t *testing.T) {
	f := func(szRaw uint16) bool {
		sz := int(szRaw%4096) + 1
		j := newJobProp(2, sz+64)
		ok := true
		err := j.Launch(func(c *Ctx) {
			switch c.MyPE() {
			case 0:
				payload := make([]byte, sz)
				for i := range payload {
					payload[i] = 0xAB
				}
				c.PutSignalNBI(1, 0, payload, sz+8, 7)
			case 1:
				c.WaitUntilAll([]int{sz + 8}, 7)
				heap := c.PE().Heap()
				for i := 0; i < sz; i++ {
					if heap[i] != 0xAB {
						ok = false
						break
					}
				}
			}
		})
		return err == nil && ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

// Property: delivery time is at least software latency + wire latency
// + serialization, for any size and destination.
func TestPropertyPutLowerBound(t *testing.T) {
	cfg, _ := machine.Get("summit-gpu")
	tp, _ := cfg.Params(machine.GPUShmem)
	f := func(szRaw uint16, dstRaw uint8) bool {
		sz := int(szRaw%8192) + 1
		dst := int(dstRaw%5) + 1
		j, err := NewJob(cfg, 6, sz+64)
		if err != nil {
			return false
		}
		var elapsed sim.Time
		err = j.Launch(func(c *Ctx) {
			if c.MyPE() != 0 {
				return
			}
			start := c.Now()
			c.PutSignalNBI(dst, 0, make([]byte, sz), sz+8, 1)
			c.Quiet()
			elapsed = c.Now() - start
		})
		if err != nil {
			return false
		}
		in, _ := cfg.Instantiate(6)
		wire := in.Net.BaseLatency(in.Places[0].Node, in.Places[dst].Node)
		ser := sim.TransferTime(int64(sz+8), in.Net.PeakBandwidth(in.Places[0].Node, in.Places[dst].Node))
		lb := tp.SoftLatency + wire + ser
		return elapsed >= lb
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}
