// Package shmem provides a simulated NVSHMEM-style PGAS layer for the
// GPU machines: a symmetric heap per PE, device-initiated nonblocking
// puts, the fused put-with-signal operation the paper's GPU codes use
// (nvshmem_double_put_signal_nbi), signal waiting
// (wait_until_all / wait_until_any), remote atomics
// (compare-and-swap, fetch-and-add), quiet, and a dissemination
// barrier. Ring collectives live in the separate internal/ccl layer.
//
// GPU execution is modeled with contexts (Ctx): every PE gets one
// kernel context, and ForkJoin spawns additional block contexts so
// workloads can express the thread-block-level concurrency that gives
// GPUs their messaging and compute throughput.
package shmem

import (
	"encoding/binary"
	"fmt"

	"msgroofline/internal/machine"
	"msgroofline/internal/runtime"
	"msgroofline/internal/sim"
)

// Job is one SHMEM program: npes PEs with symmetric heaps on a GPU
// machine.
type Job struct {
	world *runtime.World
	tp    machine.TransportParams
	pes   []*PE
	// putHook, when set, observes every user put at delivery time.
	putHook PutHook
}

// PutHook observes a put: source PE, destination PE, payload size
// (including a ridden signal word), issue time and delivery time.
type PutHook func(src, dst int, bytes int64, issue, deliver sim.Time)

// SetPutHook installs a delivery observer for user puts (internal
// barrier traffic excluded). Call before Launch.
func (j *Job) SetPutHook(h PutHook) { j.putHook = h }

// NewJob builds a SHMEM job with npes PEs, each exposing heapBytes of
// symmetric memory. The machine must provide the GPUShmem transport.
func NewJob(cfg *machine.Config, npes, heapBytes int) (*Job, error) {
	return NewJobSharded(cfg, npes, heapBytes, 1)
}

// NewJobSharded is NewJob with a -shards worker count for the
// underlying world (see runtime.NewWorldSharded: PEs are grouped by
// fabric node on the coupled conservative-lookahead engine, and
// shards sets how many node groups execute concurrently; results are
// byte-identical at every shard count).
func NewJobSharded(cfg *machine.Config, npes, heapBytes, shards int) (*Job, error) {
	tp, ok := cfg.Params(machine.GPUShmem)
	if !ok {
		return nil, fmt.Errorf("shmem: machine %s has no GPU-initiated transport", cfg.Name)
	}
	if heapBytes < 0 {
		return nil, fmt.Errorf("shmem: negative heap size")
	}
	w, err := runtime.NewWorldSharded(cfg, npes, shards)
	if err != nil {
		return nil, err
	}
	j := &Job{world: w, tp: tp}
	for pe := 0; pe < npes; pe++ {
		eng := w.EngineOf(pe)
		j.pes = append(j.pes, &PE{
			job:      j,
			id:       pe,
			ep:       w.Endpoint(pe),
			heap:     make([]byte, heapBytes),
			landed:   sim.NewCond(eng),
			quiesced: sim.NewCond(eng),
			barSig:   make([]uint64, 64),
			barCond:  sim.NewCond(eng),
		})
	}
	return j, nil
}

// NPEs returns the number of PEs.
func (j *Job) NPEs() int { return len(j.pes) }

// World exposes the underlying simulated world.
func (j *Job) World() *runtime.World { return j.world }

// Digest folds the per-group event-order digests of the underlying
// world into one summary of the run (see runtime.World.Digest).
func (j *Job) Digest() uint64 { return j.world.Digest() }

// Elapsed returns the simulated time consumed so far.
func (j *Job) Elapsed() sim.Time { return j.world.Elapsed() }

// PE returns PE number i (for post-run inspection of heaps).
func (j *Job) PE(i int) *PE { return j.pes[i] }

// Launch starts one kernel context per PE running body and drives the
// simulation to completion.
func (j *Job) Launch(body func(c *Ctx)) error {
	for _, pe := range j.pes {
		p := pe
		j.world.Spawn(p.id, fmt.Sprintf("pe%d", p.id), func(proc *sim.Proc) {
			body(&Ctx{pe: p, proc: proc})
		})
	}
	return j.world.Run()
}

// PE is one processing element (a GPU) with its symmetric heap.
type PE struct {
	job  *Job
	id   int
	ep   *runtime.Endpoint
	heap []byte

	outstanding int       // device-initiated puts not yet delivered
	landed      *sim.Cond // signaled when data lands in this PE's heap
	quiesced    *sim.Cond // signaled when one of this PE's puts completes

	barSig  []uint64 // internal barrier signal slots (per round)
	barCond *sim.Cond
	barSeq  int

	puts, atomics int64
}

// ID returns the PE number.
func (pe *PE) ID() int { return pe.id }

// Heap returns the PE's symmetric heap for direct local access.
func (pe *PE) Heap() []byte { return pe.heap }

// Uint64At reads a little-endian uint64 at off in the local heap.
func (pe *PE) Uint64At(off int) uint64 {
	return binary.LittleEndian.Uint64(pe.heap[off : off+8])
}

// SetUint64At writes a little-endian uint64 at off in the local heap.
func (pe *PE) SetUint64At(off int, v uint64) {
	binary.LittleEndian.PutUint64(pe.heap[off:off+8], v)
}

// OpStats returns cumulative put and atomic counts for this PE.
func (pe *PE) OpStats() (puts, atomics int64) { return pe.puts, pe.atomics }

// Outstanding returns the number of this PE's puts still in flight
// (conformance oracles check it is zero after Quiet and at exit).
func (pe *PE) Outstanding() int { return pe.outstanding }

// Ctx is an execution context: the kernel main context created by
// Launch, or a block context created by ForkJoin. All communication
// is issued through a Ctx so concurrent blocks interleave correctly.
type Ctx struct {
	pe   *PE
	proc *sim.Proc
}

// PE returns the owning processing element.
func (c *Ctx) PE() *PE { return c.pe }

// MyPE returns the PE number (shmem_my_pe).
func (c *Ctx) MyPE() int { return c.pe.id }

// NPEs returns the job size (shmem_n_pes).
func (c *Ctx) NPEs() int { return c.pe.job.NPEs() }

// Proc exposes the simulated process (for Sleep etc.).
func (c *Ctx) Proc() *sim.Proc { return c.proc }

// Now returns the current simulated time.
func (c *Ctx) Now() sim.Time { return c.proc.Now() }

// Compute blocks the context for d of SM time.
func (c *Ctx) Compute(d sim.Time) { c.proc.Sleep(d) }

// ForkJoin spawns n block contexts running body concurrently on this
// PE and blocks until all complete — the thread-block parallelism of
// a GPU kernel.
func (c *Ctx) ForkJoin(n int, body func(blk *Ctx, i int)) {
	if n <= 0 {
		return
	}
	// Block contexts belong to this PE, so they spawn on its engine.
	eng := c.proc.Engine()
	done := 0
	cond := sim.NewCond(eng)
	for i := 0; i < n; i++ {
		idx := i
		eng.Spawn(fmt.Sprintf("pe%d/blk%d", c.pe.id, idx), func(proc *sim.Proc) {
			body(&Ctx{pe: c.pe, proc: proc}, idx)
			done++
			cond.Broadcast()
		})
	}
	cond.WaitFor(c.proc, func() bool { return done == n })
}

// PutNBI starts a nonblocking put of data into dst's heap at dstOff
// (nvshmem_putmem_nbi). Completion is observed via Quiet.
func (c *Ctx) PutNBI(dst, dstOff int, data []byte) {
	c.putNBIOn(dst, dstOff, data, -1, 0, c.pe.ep.AutoChannel(), 1)
}

// PutSignalNBI is the fused put-with-signal
// (nvshmem_double_put_signal_nbi): data lands at dstOff, then the
// uint64 signal at sigOff is set to sigVal, ordered after the data.
func (c *Ctx) PutSignalNBI(dst, dstOff int, data []byte, sigOff int, sigVal uint64) {
	c.putNBIOn(dst, dstOff, data, sigOff, sigVal, c.pe.ep.AutoChannel(), 2)
}

// PutSignalNBICh is PutSignalNBI pinned to an injection channel, used
// by the message-splitting experiments to place sub-messages on
// distinct NVLink port groups.
func (c *Ctx) PutSignalNBICh(dst, dstOff int, data []byte, sigOff int, sigVal uint64, ch int) {
	c.putNBIOn(dst, dstOff, data, sigOff, sigVal, ch, 2)
}

func (c *Ctx) putNBIOn(dst, dstOff int, data []byte, sigOff int, sigVal uint64, ch, ops int) {
	pe := c.pe
	job := pe.job
	if dst < 0 || dst >= job.NPEs() {
		panic(fmt.Sprintf("shmem: put to invalid PE %d", dst))
	}
	target := job.pes[dst]
	if dstOff < 0 || dstOff+len(data) > len(target.heap) {
		panic(fmt.Sprintf("shmem: put [%d,%d) outside PE %d heap (%d bytes)",
			dstOff, dstOff+len(data), dst, len(target.heap)))
	}
	if sigOff >= 0 && sigOff+8 > len(target.heap) {
		panic(fmt.Sprintf("shmem: signal offset %d outside PE %d heap", sigOff, dst))
	}
	// The fused operation charges both the put and the signal issue.
	for i := 0; i < ops; i++ {
		pe.ep.ChargeOp(c.proc, job.tp)
	}
	buf := runtime.BorrowBuf(len(data))
	copy(buf, data)
	bytes := int64(len(data))
	if sigOff >= 0 {
		bytes += 8 // the signal word rides the same message
	}
	pe.outstanding++
	pe.puts++
	issue := c.proc.Now()
	// Split delivery: heap write, signal word, hook and target wake on
	// the target PE's engine; completion accounting on this PE's.
	pe.ep.Inject(job.tp, dst, bytes, ch, func(at sim.Time) {
		copy(target.heap[dstOff:], buf)
		runtime.ReleaseBuf(buf)
		if sigOff >= 0 {
			target.SetUint64At(sigOff, sigVal)
		}
		if job.putHook != nil {
			job.putHook(pe.id, dst, bytes, issue, at)
		}
		target.landed.Broadcast()
	}, func(at sim.Time) {
		pe.outstanding--
		pe.quiesced.Broadcast()
	})
}

// Quiet blocks until all puts issued by this PE have completed
// remotely (nvshmem_quiet).
func (c *Ctx) Quiet() {
	c.pe.ep.ChargeOp(c.proc, c.pe.job.tp)
	c.pe.quiesced.WaitFor(c.proc, func() bool { return c.pe.outstanding == 0 })
}

// WaitUntilAll blocks until every listed local signal slot equals
// val (nvshmem_uint64_wait_until_all).
func (c *Ctx) WaitUntilAll(sigOffs []int, val uint64) {
	c.pe.landed.WaitFor(c.proc, func() bool {
		for _, off := range sigOffs {
			if c.pe.Uint64At(off) != val {
				return false
			}
		}
		return true
	})
}

// WaitUntilAny blocks until at least one unmasked local signal slot
// equals val, and returns its index (nvshmem_uint64_wait_until_any).
// mask[i] true means slot i is already consumed and is skipped; the
// caller typically sets mask[i] after processing.
func (c *Ctx) WaitUntilAny(sigOffs []int, mask []bool, val uint64) int {
	found := -1
	c.pe.landed.WaitFor(c.proc, func() bool {
		for i, off := range sigOffs {
			if mask != nil && mask[i] {
				continue
			}
			if c.pe.Uint64At(off) == val {
				found = i
				return true
			}
		}
		return false
	})
	return found
}

// Landed returns the condition signaled when any remote data lands in
// this PE's heap; custom polling loops wait on it.
func (pe *PE) Landed() *sim.Cond { return pe.landed }

// AtomicCompareSwap performs a remote CAS on the uint64 at (dst, off):
// if it equals cond it becomes val; the previous value is returned
// (nvshmem_uint64_atomic_compare_swap). Blocks for the round trip.
func (c *Ctx) AtomicCompareSwap(dst, off int, cond, val uint64) uint64 {
	target := c.pe.job.pes[dst]
	c.pe.atomics++
	return c.pe.ep.RemoteAtomic(c.proc, c.pe.job.tp, dst, func() uint64 {
		old := target.Uint64At(off)
		if old == cond {
			target.SetUint64At(off, val)
		}
		return old
	})
}

// AtomicFetchAdd atomically adds delta to the remote uint64 and
// returns the previous value (nvshmem_uint64_atomic_fetch_add).
func (c *Ctx) AtomicFetchAdd(dst, off int, delta uint64) uint64 {
	target := c.pe.job.pes[dst]
	c.pe.atomics++
	return c.pe.ep.RemoteAtomic(c.proc, c.pe.job.tp, dst, func() uint64 {
		old := target.Uint64At(off)
		target.SetUint64At(off, old+delta)
		return old
	})
}

// Barrier synchronizes all PEs (nvshmem_barrier_all): quiet, then a
// dissemination exchange over internal signal slots, paying
// log2(NPEs) small-message latencies.
func (c *Ctx) Barrier() {
	c.Quiet()
	n := c.NPEs()
	if n == 1 {
		return
	}
	pe := c.pe
	job := pe.job
	seq := pe.barSeq
	pe.barSeq++
	round := 0
	for k := 1; k < n; k <<= 1 {
		dst := job.pes[(pe.id+k)%n]
		slot := (seq*8 + round) % len(dst.barSig)
		gen := uint64(seq + 1)
		// Tiny internal message carrying the round signal.
		pe.ep.ChargeOp(c.proc, job.tp)
		pe.outstanding++
		pe.ep.Inject(job.tp, dst.id, 8, pe.ep.AutoChannel(), func(at sim.Time) {
			dst.barSig[slot] = gen
			dst.barCond.Broadcast()
		}, func(at sim.Time) {
			pe.outstanding--
			pe.quiesced.Broadcast()
		})
		mySlot := (seq*8 + round) % len(pe.barSig)
		pe.barCond.WaitFor(c.proc, func() bool { return pe.barSig[mySlot] >= uint64(seq+1) })
		round++
	}
}
