package shmem

import (
	"bytes"
	"testing"

	"msgroofline/internal/machine"
	"msgroofline/internal/sim"
)

func newJob(t *testing.T, name string, npes, heap int) *Job {
	t.Helper()
	cfg, err := machine.Get(name)
	if err != nil {
		t.Fatal(err)
	}
	j, err := NewJob(cfg, npes, heap)
	if err != nil {
		t.Fatal(err)
	}
	return j
}

func TestNewJobRequiresGPU(t *testing.T) {
	cfg, _ := machine.Get("perlmutter-cpu")
	if _, err := NewJob(cfg, 2, 64); err == nil {
		t.Fatal("CPU machine should not offer GPU shmem")
	}
}

func TestPutSignalDelivery(t *testing.T) {
	j := newJob(t, "perlmutter-gpu", 2, 1024)
	payload := []byte("device-initiated")
	err := j.Launch(func(c *Ctx) {
		switch c.MyPE() {
		case 0:
			c.PutSignalNBI(1, 0, payload, 512, 1)
		case 1:
			c.WaitUntilAll([]int{512}, 1)
			if !bytes.Equal(c.PE().Heap()[:len(payload)], payload) {
				t.Error("signal fired before data landed")
			}
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestPutLatencyCalibration(t *testing.T) {
	// §II: Perlmutter GPU single put-with-signal ~4 us; Summit ~5 us.
	for _, tc := range []struct {
		machine string
		npes    int
		lo, hi  float64
	}{
		{"perlmutter-gpu", 2, 3.5, 4.6},
		{"summit-gpu", 2, 4.4, 5.6},
	} {
		j := newJob(t, tc.machine, tc.npes, 256)
		var elapsed sim.Time
		err := j.Launch(func(c *Ctx) {
			if c.MyPE() == 1 {
				start := c.Now()
				c.WaitUntilAll([]int{128}, 1)
				elapsed = c.Now() - start
			} else {
				c.PutSignalNBI(1, 0, make([]byte, 8), 128, 1)
			}
		})
		if err != nil {
			t.Fatal(err)
		}
		if us := elapsed.Microseconds(); us < tc.lo || us > tc.hi {
			t.Errorf("%s put-with-signal = %.2fus, want [%.1f, %.1f]", tc.machine, us, tc.lo, tc.hi)
		}
	}
}

func TestWaitUntilAny(t *testing.T) {
	j := newJob(t, "perlmutter-gpu", 3, 256)
	var order []int
	err := j.Launch(func(c *Ctx) {
		switch c.MyPE() {
		case 0:
			// Receive two messages via wait_until_any + mask.
			sig := []int{0, 8}
			mask := make([]bool, 2)
			for n := 0; n < 2; n++ {
				i := c.WaitUntilAny(sig, mask, 1)
				mask[i] = true
				order = append(order, i)
			}
		case 1:
			c.Compute(sim.FromMicroseconds(20))
			c.PutSignalNBI(0, 100, []byte{1}, 0, 1)
		case 2:
			c.PutSignalNBI(0, 101, []byte{2}, 8, 1)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	// PE 2 sends immediately, PE 1 after 20us: slot 1 must fire first.
	if len(order) != 2 || order[0] != 1 || order[1] != 0 {
		t.Fatalf("order = %v, want [1 0]", order)
	}
}

func TestQuiet(t *testing.T) {
	j := newJob(t, "perlmutter-gpu", 2, 1<<21)
	err := j.Launch(func(c *Ctx) {
		if c.MyPE() == 0 {
			c.PutNBI(1, 0, make([]byte, 1<<20))
			c.Quiet()
			// After quiet, data must be in the remote heap.
			if j.PE(1).Heap()[0] != 0 {
				t.Error("unexpected heap content")
			}
			if got := j.PE(1).Heap()[1<<20-1]; got != 0 {
				t.Error("unexpected tail")
			}
			if p, _ := c.PE().OpStats(); p != 1 {
				t.Errorf("puts = %d", p)
			}
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestAtomicCompareSwapRace(t *testing.T) {
	// All PEs CAS the same slot; exactly one must win.
	j := newJob(t, "summit-gpu", 6, 64)
	wins := 0
	err := j.Launch(func(c *Ctx) {
		old := c.AtomicCompareSwap(0, 0, 0, uint64(c.MyPE())+1)
		if old == 0 {
			wins++
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	if wins != 1 {
		t.Fatalf("wins = %d, want exactly 1", wins)
	}
}

func TestAtomicFetchAddExact(t *testing.T) {
	j := newJob(t, "perlmutter-gpu", 4, 64)
	err := j.Launch(func(c *Ctx) {
		for i := 0; i < 10; i++ {
			c.AtomicFetchAdd(0, 8, 1)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	if got := j.PE(0).Uint64At(8); got != 40 {
		t.Fatalf("counter = %d, want 40", got)
	}
}

func TestCASCalibrationCrossSocket(t *testing.T) {
	// Summit GPU: CAS ~1us in-island, ~1.6us across (§III-C).
	measure := func(dst int) float64 {
		j := newJob(t, "summit-gpu", 6, 64)
		var elapsed sim.Time
		if err := j.Launch(func(c *Ctx) {
			if c.MyPE() != 0 {
				return
			}
			start := c.Now()
			c.AtomicCompareSwap(dst, 0, 0, 1)
			elapsed = c.Now() - start
		}); err != nil {
			t.Fatal(err)
		}
		return elapsed.Microseconds()
	}
	in := measure(1)
	cross := measure(3)
	if in < 0.8 || in > 1.2 {
		t.Errorf("in-island CAS = %.2fus, want ~1us", in)
	}
	if cross < 1.4 || cross > 1.9 {
		t.Errorf("cross-island CAS = %.2fus, want ~1.6us", cross)
	}
}

func TestBarrier(t *testing.T) {
	j := newJob(t, "summit-gpu", 6, 64)
	after := make([]sim.Time, 6)
	slow := sim.FromMicroseconds(300)
	err := j.Launch(func(c *Ctx) {
		if c.MyPE() == 4 {
			c.Compute(slow)
		}
		c.Barrier()
		after[c.MyPE()] = c.Now()
	})
	if err != nil {
		t.Fatal(err)
	}
	for pe, at := range after {
		if at < slow {
			t.Fatalf("PE %d left barrier at %v before PE 4 arrived", pe, at)
		}
	}
}

func TestRepeatedBarriers(t *testing.T) {
	j := newJob(t, "perlmutter-gpu", 4, 64)
	err := j.Launch(func(c *Ctx) {
		for i := 0; i < 12; i++ {
			c.Barrier()
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestForkJoinBlocks(t *testing.T) {
	j := newJob(t, "perlmutter-gpu", 1, 64)
	total := 0
	err := j.Launch(func(c *Ctx) {
		c.ForkJoin(80, func(blk *Ctx, i int) {
			blk.Compute(sim.Microsecond)
			total++
		})
		if total != 80 {
			t.Errorf("ForkJoin returned before all blocks: %d", total)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	// 80 blocks of 1us run concurrently: elapsed ~1us, not 80us.
	if j.Elapsed() > sim.FromMicroseconds(5) {
		t.Fatalf("blocks did not run concurrently: %v", j.Elapsed())
	}
}

func TestForkJoinConcurrentComms(t *testing.T) {
	// Blocks issuing puts concurrently spread over channels and beat
	// a serial issue loop.
	j := newJob(t, "perlmutter-gpu", 2, 1<<22)
	err := j.Launch(func(c *Ctx) {
		if c.MyPE() != 0 {
			return
		}
		c.ForkJoin(4, func(blk *Ctx, i int) {
			blk.PutSignalNBICh(1, i*1024, make([]byte, 1024), 1<<22-64+8*i, 1, i)
		})
		c.Quiet()
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestSplitMessageSpeedup(t *testing.T) {
	// Fig 10 mechanism at the SHMEM level: 1 MiB as one message vs
	// four 256 KiB messages on distinct channels.
	const size = 1 << 20
	run := func(split bool) sim.Time {
		j := newJob(t, "perlmutter-gpu", 2, 2*size)
		err := j.Launch(func(c *Ctx) {
			if c.MyPE() != 0 {
				return
			}
			if split {
				quarter := size / 4
				for i := 0; i < 4; i++ {
					c.PutSignalNBICh(1, i*quarter, make([]byte, quarter), 2*size-64+8*i, 1, i)
				}
			} else {
				c.PutSignalNBICh(1, 0, make([]byte, size), 2*size-64, 1, 0)
			}
			c.Quiet()
		})
		if err != nil {
			t.Fatal(err)
		}
		return j.Elapsed()
	}
	single, split := run(false), run(true)
	sp := float64(single) / float64(split)
	if sp < 2.3 || sp > 4.0 {
		t.Fatalf("split speedup = %.2f, want ~2.9x (paper Fig 10)", sp)
	}
}

func TestPutBoundsPanic(t *testing.T) {
	j := newJob(t, "perlmutter-gpu", 2, 64)
	err := j.Launch(func(c *Ctx) {
		if c.MyPE() != 0 {
			return
		}
		defer func() {
			if recover() == nil {
				t.Error("expected panic")
			}
		}()
		c.PutNBI(1, 60, make([]byte, 8))
	})
	if err != nil {
		t.Fatal(err)
	}
}
