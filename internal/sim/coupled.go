package sim

// Coupled conservative-lookahead engine (DESIGN.md §11).
//
// CoupledEngine runs the process-coupled stacks (internal/runtime and
// the mpi/shmem/comm layers above it) under the same YAWNS-style
// conservative-window protocol as ShardedEngine, but with sequential
// Engines as the substrate so blocking procs, condition variables and
// arbitrary event closures keep working unchanged. Ranks are grouped
// by fabric node (same node ⟺ stateless shared-memory delivery), each
// group owns a private Engine, and every window executes each group's
// events in [minNext, minNext+lookahead) — in parallel across up to
// `workers` goroutines — before a single-threaded barrier applies the
// window's deferred cross-group operations.
//
// Cross-group effects never mutate a peer group's state mid-window.
// They are expressed one of two ways:
//
//   - direct scheduling (At) of an event on the target group's engine
//     at a timestamp provably at least `lookahead` past the sender's
//     clock (pure-latency flights: same-window scheduling is safe
//     because the window bound guarantees the target has not executed
//     that far);
//   - deferred operations (Defer) for anything that must serialize
//     through shared state — link-bandwidth reservations, fault
//     draws, atomic-unit arbitration. Deferred ops carry the key
//     (at, senderRank<<counterBits|senderCounter) drawn from the
//     originating rank's monotone counter, and the barrier applies
//     them in that total order. Because a rank's emissions depend
//     only on its own executed prefix, the order — and therefore
//     every simulated output — is invariant under the worker count,
//     certified by the per-group event-order digests.
//
// A one-group world (every rank on one fabric node) delegates Run to
// the lone Engine verbatim, preserving exact sequential semantics
// including deadlock reporting.

import (
	"errors"
	"fmt"
	"slices"
	"sort"
	"sync"
	"time"
)

// deferredOp is one cross-group operation awaiting the window barrier.
type deferredOp struct {
	at  Time
	key uint64
	run func()
}

// CoupledEngine couples per-node-group sequential Engines under
// conservative windows. Construct with NewCoupled, spawn processes on
// the group engines (EngineOf), then Run exactly once.
type CoupledEngine struct {
	subs      []*Engine
	groupOf   []int32
	nranks    []int // ranks per group
	lookahead Time
	workers   int

	counter []uint64       // per-rank deferred-op stream counters
	ops     [][]deferredOp // per-group deferred ops this window
	gerr    []error        // first group-confined error (Defer/At misuse)
	mcap    int
	maxEv   uint64

	windows uint64
	busy    []time.Duration
	// loopBusy is the whole-loop busy time of an inline (workers <= 1)
	// run, measured once instead of per group per window; GroupStats
	// and BusyWall fold it back in, attributed by executed events.
	loopBusy time.Duration
	batch    []deferredOp // barrier scratch, reused across windows
	werrs    []error      // parallel-window scratch, reused across windows
	wpanics  []any
	wsem     chan struct{}
	started  bool
}

// NewCoupled builds a coupled engine for ranks placed into node
// groups by groupOf (group ids must be dense, 0-based). lookahead is
// the minimum cross-group event delay (the fabric's minimum link
// latency) and must be positive when more than one group exists.
// workers caps how many groups execute concurrently inside one
// window; 1 (or less) runs windows inline on the caller's goroutine.
// The window and event structure is identical at every worker count.
func NewCoupled(groupOf []int, lookahead Time, workers int) (*CoupledEngine, error) {
	if len(groupOf) == 0 {
		return nil, errors.New("sim: coupled engine needs >= 1 rank")
	}
	if len(groupOf) >= maxShardRanks {
		return nil, fmt.Errorf("sim: coupled engine supports < %d ranks, got %d", maxShardRanks, len(groupOf))
	}
	groups := 0
	for _, g := range groupOf {
		if g < 0 {
			return nil, fmt.Errorf("sim: negative group id %d", g)
		}
		if g+1 > groups {
			groups = g + 1
		}
	}
	if lookahead <= 0 && groups > 1 {
		return nil, fmt.Errorf("sim: %d coupled groups need positive lookahead, got %v", groups, lookahead)
	}
	if workers < 1 {
		workers = 1
	}
	if workers > groups {
		workers = groups
	}
	ce := &CoupledEngine{
		groupOf:   make([]int32, len(groupOf)),
		nranks:    make([]int, groups),
		lookahead: lookahead,
		workers:   workers,
		counter:   make([]uint64, len(groupOf)),
		ops:       make([][]deferredOp, groups),
		gerr:      make([]error, groups),
		mcap:      DefaultMailboxCap,
		busy:      make([]time.Duration, groups),
	}
	for r, g := range groupOf {
		ce.groupOf[r] = int32(g)
		ce.nranks[g]++
	}
	for g, n := range ce.nranks {
		if n == 0 {
			return nil, fmt.Errorf("sim: coupled group ids must be dense, group %d has no ranks", g)
		}
	}
	for g := 0; g < groups; g++ {
		ce.subs = append(ce.subs, NewEngine())
	}
	return ce, nil
}

// Groups returns the node-group (sub-engine) count.
func (ce *CoupledEngine) Groups() int { return len(ce.subs) }

// Workers returns the window worker-parallelism (clamped to Groups).
func (ce *CoupledEngine) Workers() int { return ce.workers }

// Lookahead returns the conservative window bound.
func (ce *CoupledEngine) Lookahead() Time { return ce.lookahead }

// GroupOf returns the node group owning a rank.
func (ce *CoupledEngine) GroupOf(rank int) int { return int(ce.groupOf[rank]) }

// EngineOf returns the sequential engine owning a rank's events and
// processes. All of the rank's conds and spawns must bind to it.
func (ce *CoupledEngine) EngineOf(rank int) *Engine { return ce.subs[ce.groupOf[rank]] }

// Sub returns the engine of node group g (group order is the digest
// fold order).
func (ce *CoupledEngine) Sub(g int) *Engine { return ce.subs[g] }

// SetMailboxCap bounds each group's deferred-op mailbox to n ops per
// window (default DefaultMailboxCap). Exceeding the bound aborts the
// run with an error rather than growing without limit.
func (ce *CoupledEngine) SetMailboxCap(n int) {
	if n < 1 {
		panic(fmt.Sprintf("sim: mailbox cap must be >= 1, got %d", n))
	}
	ce.mcap = n
}

// SetEventLimit installs a safety cap on total dispatched events
// across all groups (checked at window barriers, and per group inside
// a window so a zero-delay loop cannot stall a window forever). Zero
// means no limit.
func (ce *CoupledEngine) SetEventLimit(n uint64) {
	ce.maxEv = n
	for _, sub := range ce.subs {
		sub.SetEventLimit(n)
	}
}

// SetPerturbation installs schedule fuzzing on every group engine,
// giving group g decision stream g. Must be called before any process
// is spawned or event scheduled.
func (ce *CoupledEngine) SetPerturbation(p *Perturbation) {
	for g, sub := range ce.subs {
		sub.setPerturbationStream(p, g)
	}
}

// Defer enqueues a cross-group operation on behalf of rank, to be
// applied at the current window's barrier. Ops are applied
// single-threaded in (at, senderRank<<counterBits|senderCounter)
// order, giving shared-state mutations (link reservations, atomic
// arbitration, fault draws) one explicit serialization point whose
// order is invariant under the worker count. Defer may only be called
// from the rank's own engine context (or from the barrier itself).
func (ce *CoupledEngine) Defer(rank int, at Time, run func()) {
	g := ce.groupOf[rank]
	c := ce.counter[rank]
	if c > counterMask {
		panic(fmt.Sprintf("sim: rank %d exhausted its %d-bit deferred-op counter", rank, counterBits))
	}
	ce.counter[rank] = c + 1
	if len(ce.ops[g]) >= ce.mcap {
		if ce.gerr[g] == nil {
			ce.gerr[g] = fmt.Errorf("sim: coupled mailbox group %d over capacity %d (raise SetMailboxCap)",
				g, ce.mcap)
		}
		return
	}
	ce.ops[g] = append(ce.ops[g], deferredOp{at: at, key: uint64(rank)<<counterBits | c, run: run})
}

// At schedules fn on rank's engine at absolute time t, clamping t
// into the engine's executed present when it lies in the past (the
// coupled analogue of Engine.At's clamp). It is the cross-group
// scheduling primitive: call it from a barrier-deferred op, or from
// any context when the target shares the caller's group.
func (ce *CoupledEngine) At(rank int, t Time, fn func()) {
	g := ce.groupOf[rank]
	sub := ce.subs[g]
	// Mirror Engine.At's past-time clamp: under schedule perturbation
	// the upstream event that computed t may itself have been jittered
	// past t, and the receiving group may have run to the window edge
	// before the barrier delivered this op. The clamp target — the
	// sub-engine's Now at barrier time — is fixed once its window
	// completed, so the result is deterministic and independent of the
	// worker count.
	if t < sub.Now() {
		t = sub.Now()
	}
	sub.At(t, fn)
}

// Elapsed returns the latest executed-event time across all groups
// (the coupled analogue of Engine.Now after Run).
func (ce *CoupledEngine) Elapsed() Time {
	var max Time
	for _, sub := range ce.subs {
		if now := sub.Now(); now > max {
			max = now
		}
	}
	return max
}

// Executed returns the total number of dispatched events.
func (ce *CoupledEngine) Executed() uint64 {
	var n uint64
	for _, sub := range ce.subs {
		n += sub.Executed()
	}
	return n
}

// Windows returns how many conservative windows Run executed (1 for a
// delegated one-group run).
func (ce *CoupledEngine) Windows() uint64 { return ce.windows }

// Digest folds every group engine's event-order digest in group order
// into one summary of the full execution. Group structure is
// topology-determined, so the digest is invariant under the worker
// count — the certificate the shard-determinism suite compares.
func (ce *CoupledEngine) Digest() uint64 {
	h := fnvOffsetBasis
	for _, sub := range ce.subs {
		h = mixDigest(h, sub.Digest())
	}
	return h
}

// GroupStats returns per-group execution summaries in group order. An
// inline run measures busy time once for the whole loop; it is
// attributed to groups proportionally to their executed events.
func (ce *CoupledEngine) GroupStats() []ShardStats {
	out := make([]ShardStats, len(ce.subs))
	var total int64
	for g, sub := range ce.subs {
		out[g] = ShardStats{Ranks: ce.nranks[g], Executed: int64(sub.Executed()), Busy: ce.busy[g]}
		total += out[g].Executed
	}
	if ce.loopBusy > 0 && total > 0 {
		for g := range out {
			out[g].Busy += time.Duration(int64(ce.loopBusy) * out[g].Executed / total)
		}
	}
	return out
}

// BusyWall summarizes parallel efficiency for a run that took `wall`
// of wall-clock time: summed per-group busy time divided by wall (see
// ShardedEngine.BusyWall).
func (ce *CoupledEngine) BusyWall(wall time.Duration) float64 {
	if wall <= 0 {
		return 0
	}
	busy := ce.loopBusy
	for _, d := range ce.busy {
		busy += d
	}
	return float64(busy) / float64(wall)
}

// firstErr collects the first group-confined error in group order.
func (ce *CoupledEngine) firstErr() error {
	for _, err := range ce.gerr {
		if err != nil {
			return err
		}
	}
	return nil
}

// Run drives the coupled simulation to completion: repeated
// conservative windows of (possibly parallel) group execution, each
// closed by a single-threaded barrier applying the deferred
// cross-group ops in total order. It returns a DeadlockError if
// processes are still parked when every queue drains, or the first
// bound/capacity violation.
func (ce *CoupledEngine) Run() error {
	if ce.started {
		return errors.New("sim: CoupledEngine.Run called twice")
	}
	ce.started = true
	if len(ce.subs) == 1 {
		// One group: the sequential engine is exact; no windows, no
		// barriers, native deadlock reporting.
		ce.windows = 1
		t0 := time.Now()
		err := ce.subs[0].Run()
		ce.busy[0] += time.Since(t0)
		if err == nil {
			err = ce.firstErr()
		}
		return err
	}
	if ce.workers <= 1 {
		// Inline windows run on this goroutine back to back: one
		// whole-loop measurement replaces two clock reads per group
		// per window (the per-window pairs cost more than the windows
		// on short-event workloads).
		t0 := time.Now()
		defer func() { ce.loopBusy = time.Since(t0) }()
	}
	for {
		minNext := timeMax
		any := false
		for _, sub := range ce.subs {
			if at, ok := sub.NextAt(); ok && at < minNext {
				minNext = at
				any = true
			}
		}
		if !any {
			return ce.finish()
		}
		w1 := timeMax
		if minNext <= timeMax-ce.lookahead {
			w1 = minNext + ce.lookahead
		}
		ce.windows++
		if err := ce.window(w1); err != nil {
			return err
		}
		if err := ce.applyDeferred(); err != nil {
			return err
		}
		if err := ce.firstErr(); err != nil {
			return err
		}
		if ce.maxEv != 0 && ce.Executed() > ce.maxEv {
			return fmt.Errorf("sim: coupled event limit %d exceeded at t=%v", ce.maxEv, ce.Elapsed())
		}
	}
}

// window executes one conservative window on every group. With one
// worker the groups run inline (panics propagate natively); with more,
// each group runs on its own goroutine — capped at `workers` in
// flight — and a worker panic is re-raised on the caller's goroutine
// so recovery semantics match the sequential engine at every worker
// count.
func (ce *CoupledEngine) window(w1 Time) error {
	if ce.workers <= 1 {
		for _, sub := range ce.subs {
			if err := sub.RunBefore(w1); err != nil {
				return err
			}
		}
		return nil
	}
	if ce.wsem == nil {
		ce.werrs = make([]error, len(ce.subs))
		ce.wpanics = make([]any, len(ce.subs))
		ce.wsem = make(chan struct{}, ce.workers)
	}
	var wg sync.WaitGroup
	errs, panics, sem := ce.werrs, ce.wpanics, ce.wsem
	for g := range ce.subs {
		errs[g], panics[g] = nil, nil
	}
	for g := range ce.subs {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			defer func() {
				if r := recover(); r != nil {
					panics[g] = r
				}
			}()
			t0 := time.Now()
			errs[g] = ce.subs[g].RunBefore(w1)
			ce.busy[g] += time.Since(t0)
		}(g)
	}
	wg.Wait()
	for _, r := range panics {
		if r != nil {
			panic(r)
		}
	}
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

// applyDeferred is the window barrier: it drains every group's
// deferred ops, applies them single-threaded in (at, key) order, and
// repeats until no op remains (an op may defer follow-ups).
func (ce *CoupledEngine) applyDeferred() error {
	for {
		batch := ce.batch[:0]
		for g := range ce.ops {
			batch = append(batch, ce.ops[g]...)
			ce.ops[g] = ce.ops[g][:0]
		}
		ce.batch = batch // keep any growth for the next window
		if len(batch) == 0 {
			return nil
		}
		// (at, key) pairs are unique — key embeds the sender's monotone
		// counter — so the unstable sort is still a total order.
		slices.SortFunc(batch, func(a, b deferredOp) int {
			switch {
			case a.at != b.at:
				if a.at < b.at {
					return -1
				}
				return 1
			case a.key < b.key:
				return -1
			case a.key > b.key:
				return 1
			}
			return 0
		})
		for i := range batch {
			batch[i].run()
		}
		if err := ce.firstErr(); err != nil {
			return err
		}
	}
}

// finish handles run termination: clean completion, a first recorded
// group error, or an aggregated deadlock report across all groups.
func (ce *CoupledEngine) finish() error {
	if err := ce.firstErr(); err != nil {
		return err
	}
	var parked []string
	for _, sub := range ce.subs {
		parked = sub.parkedNames(parked)
	}
	if len(parked) > 0 {
		sort.Strings(parked)
		return &DeadlockError{Time: ce.Elapsed(), Parked: parked}
	}
	return nil
}
