package sim

// Coupled conservative-lookahead engine (DESIGN.md §11, scaling
// internals §14).
//
// CoupledEngine runs the process-coupled stacks (internal/runtime and
// the mpi/shmem/comm layers above it) under the same YAWNS-style
// conservative-window protocol as ShardedEngine, but with sequential
// Engines as the substrate so blocking procs, condition variables and
// arbitrary event closures keep working unchanged. Ranks are grouped
// by fabric node (same node ⟺ stateless shared-memory delivery), each
// group owns a private Engine, and every window executes each group's
// events in [minNext, minNext+lookahead) — in parallel across up to
// `workers` persistent pool workers — before a single-threaded
// barrier applies the window's deferred cross-group operations.
//
// The window loop is built to scale to thousands of mostly-idle
// groups (a 10K-rank dragonfly decomposes into 1024 node groups, of
// which only a few dozen are typically eligible per window):
//
//   - a persistent worker pool (startPool) replaces the historical
//     goroutine-per-group-per-window spawns: long-lived workers pull
//     group indices from an atomic cursor over the window's active
//     set, so a window costs O(workers) channel operations however
//     many groups exist;
//   - active-group dispatch: only groups whose next event beats the
//     window bound are dispatched; idle groups skip the dispatch, the
//     clock reads, and the deferred-op scan entirely;
//   - an incremental 4-ary tournament tree (mintree.go) over per-group
//     NextAt values replaces the O(G) min scan per window — only
//     groups that executed or received barrier ops re-publish;
//   - the barrier is a k-way merge over per-group deferred-op runs
//     that the (parallel) workers pre-sorted, instead of a full
//     single-threaded sort of the concatenated batch, with all run
//     and merge storage pooled across windows.
//
// Cross-group effects never mutate a peer group's state mid-window.
// They are expressed one of two ways:
//
//   - direct scheduling (At) of an event on the target group's engine
//     at a timestamp provably at least `lookahead` past the sender's
//     clock (pure-latency flights: same-window scheduling is safe
//     because the window bound guarantees the target has not executed
//     that far);
//   - deferred operations (Defer) for anything that must serialize
//     through shared state — link-bandwidth reservations, fault
//     draws, atomic-unit arbitration. Deferred ops carry the key
//     (at, senderRank<<counterBits|senderCounter) drawn from the
//     originating rank's monotone counter, and the barrier applies
//     them in that total order. Because a rank's emissions depend
//     only on its own executed prefix, the order — and therefore
//     every simulated output — is invariant under the worker count,
//     certified by the per-group event-order digests.
//
// A one-group world (every rank on one fabric node) delegates Run to
// the lone Engine verbatim, preserving exact sequential semantics
// including deadlock reporting.

import (
	"errors"
	"fmt"
	"slices"
	"sort"
	"sync/atomic"
	"time"
)

// deferredOp is one cross-group operation awaiting the window barrier.
type deferredOp struct {
	at  Time
	key uint64
	run func()
}

// CoupledEngine couples per-node-group sequential Engines under
// conservative windows. Construct with NewCoupled, spawn processes on
// the group engines (EngineOf), then Run exactly once.
type CoupledEngine struct {
	subs      []*Engine
	groupOf   []int32
	nranks    []int // ranks per group
	lookahead Time
	workers   int

	counter []uint64       // per-rank deferred-op stream counters
	ops     [][]deferredOp // per-group deferred ops this window (front buffer)
	opsBack [][]deferredOp // per-group back buffer, swapped in by takeRun
	gerr    []error        // first group-confined error (Defer/At misuse)
	mcap    int
	maxEv   uint64

	windows    uint64
	dispatches uint64 // total group-window dispatches (sum of active-set sizes)
	busy       []time.Duration
	// loopBusy is the whole-loop busy time of an inline (workers <= 1)
	// run, measured once instead of per group per window; GroupStats
	// and BusyWall fold it back in, attributed by executed events.
	loopBusy time.Duration
	// Per-phase wall attribution of the window loop (PhaseWall):
	// group execution, barrier deferred-op application, and
	// min-tracker maintenance (bound computation + active-set
	// collection + horizon refresh).
	execWall    time.Duration
	barrierWall time.Duration
	scanWall    time.Duration

	tree   minTree // per-group NextAt horizons
	active []int32 // groups dispatched in the current window, ascending

	// Barrier state. inBarrier is true only while the single-threaded
	// merge executes deferred ops; At uses it to publish new horizons
	// incrementally and Defer to record follow-up candidates (bops).
	inBarrier bool
	bops      []int32
	bscratch  []int32

	// Merge scratch, reused across windows.
	runs     [][]deferredOp
	mergePos []int32
	mergeHp  []mergeEnt

	// Persistent worker pool (workers > 1). w1 and active are
	// published before the start tokens are sent and read back after
	// the done tokens arrive, so the channel handshake orders every
	// access. cursor hands out indices into active.
	w1      Time
	cursor  atomic.Int64
	wstart  []chan struct{}
	wdone   chan struct{}
	werrs   []error
	wpanics []any

	started bool
}

// NewCoupled builds a coupled engine for ranks placed into node
// groups by groupOf (group ids must be dense, 0-based). lookahead is
// the minimum cross-group event delay (the fabric's minimum link
// latency) and must be positive when more than one group exists.
// workers caps how many groups execute concurrently inside one
// window; 1 (or less) runs windows inline on the caller's goroutine.
// The window and event structure is identical at every worker count.
func NewCoupled(groupOf []int, lookahead Time, workers int) (*CoupledEngine, error) {
	if len(groupOf) == 0 {
		return nil, errors.New("sim: coupled engine needs >= 1 rank")
	}
	if len(groupOf) >= maxShardRanks {
		return nil, fmt.Errorf("sim: coupled engine supports < %d ranks, got %d", maxShardRanks, len(groupOf))
	}
	groups := 0
	for _, g := range groupOf {
		if g < 0 {
			return nil, fmt.Errorf("sim: negative group id %d", g)
		}
		if g+1 > groups {
			groups = g + 1
		}
	}
	if lookahead <= 0 && groups > 1 {
		return nil, fmt.Errorf("sim: %d coupled groups need positive lookahead, got %v", groups, lookahead)
	}
	if workers < 1 {
		workers = 1
	}
	if workers > groups {
		workers = groups
	}
	ce := &CoupledEngine{
		groupOf:   make([]int32, len(groupOf)),
		nranks:    make([]int, groups),
		lookahead: lookahead,
		workers:   workers,
		counter:   make([]uint64, len(groupOf)),
		ops:       make([][]deferredOp, groups),
		opsBack:   make([][]deferredOp, groups),
		gerr:      make([]error, groups),
		mcap:      DefaultMailboxCap,
		busy:      make([]time.Duration, groups),
	}
	for r, g := range groupOf {
		ce.groupOf[r] = int32(g)
		ce.nranks[g]++
	}
	for g, n := range ce.nranks {
		if n == 0 {
			return nil, fmt.Errorf("sim: coupled group ids must be dense, group %d has no ranks", g)
		}
	}
	for g := 0; g < groups; g++ {
		ce.subs = append(ce.subs, NewEngine())
	}
	return ce, nil
}

// Groups returns the node-group (sub-engine) count.
func (ce *CoupledEngine) Groups() int { return len(ce.subs) }

// Workers returns the window worker-parallelism (clamped to Groups).
func (ce *CoupledEngine) Workers() int { return ce.workers }

// Lookahead returns the conservative window bound.
func (ce *CoupledEngine) Lookahead() Time { return ce.lookahead }

// GroupOf returns the node group owning a rank.
func (ce *CoupledEngine) GroupOf(rank int) int { return int(ce.groupOf[rank]) }

// EngineOf returns the sequential engine owning a rank's events and
// processes. All of the rank's conds and spawns must bind to it.
func (ce *CoupledEngine) EngineOf(rank int) *Engine { return ce.subs[ce.groupOf[rank]] }

// Sub returns the engine of node group g (group order is the digest
// fold order).
func (ce *CoupledEngine) Sub(g int) *Engine { return ce.subs[g] }

// SetMailboxCap bounds each group's deferred-op mailbox to n ops per
// window (default DefaultMailboxCap). Exceeding the bound aborts the
// run with an error rather than growing without limit.
func (ce *CoupledEngine) SetMailboxCap(n int) {
	if n < 1 {
		panic(fmt.Sprintf("sim: mailbox cap must be >= 1, got %d", n))
	}
	ce.mcap = n
}

// SetEventLimit installs a safety cap on total dispatched events
// across all groups (checked at window barriers, and per group inside
// a window so a zero-delay loop cannot stall a window forever). Zero
// means no limit.
func (ce *CoupledEngine) SetEventLimit(n uint64) {
	ce.maxEv = n
	for _, sub := range ce.subs {
		sub.SetEventLimit(n)
	}
}

// SetPerturbation installs schedule fuzzing on every group engine,
// giving group g decision stream g. Must be called before any process
// is spawned or event scheduled.
func (ce *CoupledEngine) SetPerturbation(p *Perturbation) {
	for g, sub := range ce.subs {
		sub.setPerturbationStream(p, g)
	}
}

// Defer enqueues a cross-group operation on behalf of rank, to be
// applied at the current window's barrier. Ops are applied
// single-threaded in (at, senderRank<<counterBits|senderCounter)
// order, giving shared-state mutations (link reservations, atomic
// arbitration, fault draws) one explicit serialization point whose
// order is invariant under the worker count. Defer may only be called
// from the rank's own engine context (or from the barrier itself).
func (ce *CoupledEngine) Defer(rank int, at Time, run func()) {
	g := ce.groupOf[rank]
	c := ce.counter[rank]
	if c > counterMask {
		panic(fmt.Sprintf("sim: rank %d exhausted its %d-bit deferred-op counter", rank, counterBits))
	}
	ce.counter[rank] = c + 1
	if len(ce.ops[g]) >= ce.mcap {
		if ce.gerr[g] == nil {
			ce.gerr[g] = fmt.Errorf("sim: coupled mailbox group %d over capacity %d (raise SetMailboxCap)",
				g, ce.mcap)
		}
		return
	}
	if ce.inBarrier {
		// A barrier-emitted follow-up: record the group so the next
		// merge round can find its run without scanning all groups.
		ce.bops = append(ce.bops, g)
	}
	ce.ops[g] = append(ce.ops[g], deferredOp{at: at, key: uint64(rank)<<counterBits | c, run: run})
}

// At schedules fn on rank's engine at absolute time t, clamping t
// into the engine's executed present when it lies in the past (the
// coupled analogue of Engine.At's clamp). It is the cross-group
// scheduling primitive: call it from a barrier-deferred op, or from
// any context when the target shares the caller's group.
func (ce *CoupledEngine) At(rank int, t Time, fn func()) {
	g := ce.groupOf[rank]
	sub := ce.subs[g]
	// Mirror Engine.At's past-time clamp: under schedule perturbation
	// the upstream event that computed t may itself have been jittered
	// past t, and the receiving group may have run to the window edge
	// before the barrier delivered this op. The clamp target — the
	// sub-engine's Now at barrier time — is fixed once its window
	// completed, so the result is deterministic and independent of the
	// worker count.
	if t < sub.Now() {
		t = sub.Now()
	}
	ev := sub.At(t, fn)
	if ce.inBarrier {
		// Barrier delivery may re-awaken an idle group (or move an
		// active group's horizon earlier): publish incrementally so
		// the next window's bound sees it without a group scan. The
		// event's own time is used — perturbation jitter may have
		// moved it. Window-time At calls target the caller's group,
		// which re-publishes wholesale after the window, so only the
		// barrier needs this.
		if at := ev.At(); at < ce.tree.get(int(g)) {
			ce.tree.update(int(g), at)
		}
	}
}

// Elapsed returns the latest executed-event time across all groups
// (the coupled analogue of Engine.Now after Run).
func (ce *CoupledEngine) Elapsed() Time {
	var max Time
	for _, sub := range ce.subs {
		if now := sub.Now(); now > max {
			max = now
		}
	}
	return max
}

// Executed returns the total number of dispatched events.
func (ce *CoupledEngine) Executed() uint64 {
	var n uint64
	for _, sub := range ce.subs {
		n += sub.Executed()
	}
	return n
}

// Windows returns how many conservative windows Run executed (1 for a
// delegated one-group run).
func (ce *CoupledEngine) Windows() uint64 { return ce.windows }

// Dispatches returns the total number of group-window dispatches (the
// sum over windows of each window's active-group count). With G
// groups, Dispatches << Windows×G is the active-group filter working:
// idle groups are never touched. A delegated one-group run reports 1.
func (ce *CoupledEngine) Dispatches() uint64 { return ce.dispatches }

// PhaseWall returns the wall-clock time the window loop spent in its
// three phases: executing group events (including each group's
// deferred-run pre-sort), applying deferred ops at barriers (the
// k-way merge), and maintaining the window bound (min-tracker reads,
// active-set collection, horizon refresh). The split is the
// engine-layer start of a Breaking-Band-style cost attribution; it is
// wall-clock metadata and never feeds back into simulated state.
func (ce *CoupledEngine) PhaseWall() (exec, barrier, scan time.Duration) {
	return ce.execWall, ce.barrierWall, ce.scanWall
}

// Digest folds every group engine's event-order digest in group order
// into one summary of the full execution. Group structure is
// topology-determined, so the digest is invariant under the worker
// count — the certificate the shard-determinism suite compares.
func (ce *CoupledEngine) Digest() uint64 {
	h := fnvOffsetBasis
	for _, sub := range ce.subs {
		h = mixDigest(h, sub.Digest())
	}
	return h
}

// GroupStats returns per-group execution summaries in group order. An
// inline run measures busy time once for the whole loop; it is
// attributed to groups proportionally to their executed events.
func (ce *CoupledEngine) GroupStats() []ShardStats {
	out := make([]ShardStats, len(ce.subs))
	var total int64
	for g, sub := range ce.subs {
		out[g] = ShardStats{Ranks: ce.nranks[g], Executed: int64(sub.Executed()), Busy: ce.busy[g]}
		total += out[g].Executed
	}
	if ce.loopBusy > 0 && total > 0 {
		for g := range out {
			out[g].Busy += time.Duration(int64(ce.loopBusy) * out[g].Executed / total)
		}
	}
	return out
}

// BusyWall summarizes parallel efficiency for a run that took `wall`
// of wall-clock time: summed per-group busy time divided by wall (see
// ShardedEngine.BusyWall).
func (ce *CoupledEngine) BusyWall(wall time.Duration) float64 {
	if wall <= 0 {
		return 0
	}
	busy := ce.loopBusy
	for _, d := range ce.busy {
		busy += d
	}
	return float64(busy) / float64(wall)
}

// firstErr collects the first group-confined error in group order.
func (ce *CoupledEngine) firstErr() error {
	for _, err := range ce.gerr {
		if err != nil {
			return err
		}
	}
	return nil
}

// Run drives the coupled simulation to completion: repeated
// conservative windows of (possibly parallel) group execution, each
// closed by a single-threaded barrier applying the deferred
// cross-group ops in total order. It returns a DeadlockError if
// processes are still parked when every queue drains, or the first
// bound/capacity violation.
func (ce *CoupledEngine) Run() error {
	if ce.started {
		return errors.New("sim: CoupledEngine.Run called twice")
	}
	ce.started = true
	if len(ce.subs) == 1 {
		// One group: the sequential engine is exact; no windows, no
		// barriers, native deadlock reporting.
		ce.windows = 1
		ce.dispatches = 1
		t0 := time.Now()
		err := ce.subs[0].Run()
		ce.busy[0] += time.Since(t0)
		ce.execWall += ce.busy[0]
		if err == nil {
			err = ce.firstErr()
		}
		return err
	}
	// Seed the horizon tree from the post-spawn queues; from here on
	// it is maintained incrementally (post-window refresh of dispatched
	// groups, barrier At publications).
	ce.tree.init(len(ce.subs))
	for g, sub := range ce.subs {
		if at, ok := sub.NextAt(); ok {
			ce.tree.update(g, at)
		}
	}
	if ce.workers > 1 {
		ce.startPool()
		defer ce.stopPool()
	} else {
		// Inline windows run on this goroutine back to back: one
		// whole-loop measurement replaces two clock reads per group
		// per window (the per-window pairs cost more than the windows
		// on short-event workloads).
		t0 := time.Now()
		defer func() { ce.loopBusy = time.Since(t0) }()
	}
	for {
		s0 := time.Now()
		minNext := ce.tree.min()
		if minNext == timeMax {
			return ce.finish()
		}
		w1 := timeMax
		if minNext <= timeMax-ce.lookahead {
			w1 = minNext + ce.lookahead
		}
		ce.active = ce.tree.collect(w1, ce.active[:0])
		ce.scanWall += time.Since(s0)
		ce.windows++
		ce.dispatches += uint64(len(ce.active))
		e0 := time.Now()
		err := ce.window(w1)
		e1 := time.Now()
		ce.execWall += e1.Sub(e0)
		// Dispatched groups re-publish their horizons; undisturbed
		// groups keep their published value (nothing else may touch a
		// group's queue outside its own window or the barrier).
		for _, g := range ce.active {
			at, ok := ce.subs[g].NextAt()
			if !ok {
				at = timeMax
			}
			ce.tree.update(int(g), at)
		}
		ce.scanWall += time.Since(e1)
		if err != nil {
			return err
		}
		b0 := time.Now()
		err = ce.applyDeferred()
		ce.barrierWall += time.Since(b0)
		if err != nil {
			return err
		}
		if err := ce.firstErr(); err != nil {
			return err
		}
		if ce.maxEv != 0 && ce.Executed() > ce.maxEv {
			return fmt.Errorf("sim: coupled event limit %d exceeded at t=%v", ce.maxEv, ce.Elapsed())
		}
	}
}

// window executes one conservative window on every active group. With
// one worker (or one active group) the groups run inline; with more,
// the persistent pool workers pull group indices from the shared
// cursor, and a worker panic is re-raised on the caller's goroutine so
// recovery semantics match the sequential engine at every worker
// count. Error and panic selection is by ascending group index —
// identical at every worker count — and each group's deferred-op run
// is pre-sorted by whoever executed it, in parallel under the pool.
func (ce *CoupledEngine) window(w1 Time) error {
	active := ce.active
	if ce.workers <= 1 {
		for _, g := range active {
			if err := ce.subs[g].RunBefore(w1); err != nil {
				return err
			}
			sortOps(ce.ops[g])
		}
		return nil
	}
	if len(active) == 1 {
		// One eligible group: skip the pool handshake. Inline panics
		// propagate natively — observably identical to the pool's
		// recover/re-raise.
		g := active[0]
		t0 := time.Now()
		err := ce.subs[g].RunBefore(w1)
		if err == nil {
			sortOps(ce.ops[g])
		}
		ce.busy[g] += time.Since(t0)
		return err
	}
	ce.w1 = w1
	ce.cursor.Store(0)
	for _, ch := range ce.wstart {
		ch <- struct{}{}
	}
	for range ce.wstart {
		<-ce.wdone
	}
	for _, g := range active {
		if r := ce.wpanics[g]; r != nil {
			panic(r)
		}
	}
	for _, g := range active {
		if err := ce.werrs[g]; err != nil {
			return err
		}
	}
	return nil
}

// startPool launches the persistent window workers. Workers park on
// their start channels between windows and exit when Run closes them.
func (ce *CoupledEngine) startPool() {
	ce.werrs = make([]error, len(ce.subs))
	ce.wpanics = make([]any, len(ce.subs))
	ce.wdone = make(chan struct{}, ce.workers)
	ce.wstart = make([]chan struct{}, ce.workers)
	for w := range ce.wstart {
		ce.wstart[w] = make(chan struct{}, 1)
		go ce.poolWorker(ce.wstart[w])
	}
}

// stopPool retires the workers (deferred from Run, so the pool dies
// with the run whether it completed, errored, or panicked).
func (ce *CoupledEngine) stopPool() {
	for _, ch := range ce.wstart {
		close(ch)
	}
}

// poolWorker is one persistent window worker: per start token it
// drains the shared cursor over the active set, then reports done.
func (ce *CoupledEngine) poolWorker(start chan struct{}) {
	for range start {
		for {
			i := ce.cursor.Add(1) - 1
			if i >= int64(len(ce.active)) {
				break
			}
			ce.runGroup(int(ce.active[i]))
		}
		ce.wdone <- struct{}{}
	}
}

// runGroup executes one group's window on the calling worker. The
// per-group error/panic slots are reset here — only for dispatched
// groups, folded into the dispatch itself — and the busy timer starts
// after the queue handoff, so pool wait time is never charged to the
// group and busy/wall ratios stay meaningful.
func (ce *CoupledEngine) runGroup(g int) {
	t0 := time.Now()
	ce.werrs[g], ce.wpanics[g] = nil, nil
	func() {
		defer func() {
			if r := recover(); r != nil {
				ce.wpanics[g] = r
			}
		}()
		ce.werrs[g] = ce.subs[g].RunBefore(ce.w1)
	}()
	if ce.werrs[g] == nil && ce.wpanics[g] == nil {
		// Pre-sort this group's deferred run for the merge barrier —
		// on the worker, so the sort parallelizes with other groups'
		// execution instead of serializing at the barrier.
		sortOps(ce.ops[g])
	}
	ce.busy[g] += time.Since(t0)
}

// sortOps orders one deferred-op run by (at, key). Keys embed each
// sender's monotone counter, so pairs are unique and the unstable
// sort is still a total order.
func sortOps(ops []deferredOp) {
	if len(ops) < 2 {
		return
	}
	slices.SortFunc(ops, func(a, b deferredOp) int {
		switch {
		case a.at != b.at:
			if a.at < b.at {
				return -1
			}
			return 1
		case a.key < b.key:
			return -1
		case a.key > b.key:
			return 1
		}
		return 0
	})
}

// takeRun detaches group g's deferred run for merging and installs
// the group's back buffer (emptied) as the new front, so follow-up
// Defers during the merge land in fresh storage while the detached
// run is iterated. Both buffers persist across windows — the
// steady-state barrier allocates nothing.
func (ce *CoupledEngine) takeRun(g int) []deferredOp {
	r := ce.ops[g]
	ce.ops[g] = ce.opsBack[g][:0]
	ce.opsBack[g] = r
	return r
}

// applyDeferred is the window barrier: it merges every active group's
// pre-sorted deferred run and applies the ops single-threaded in
// (at, key) order, repeating until no op remains (an op may defer
// follow-ups). Only the window's active groups — plus groups that
// deferred during the barrier itself — are consulted; idle groups are
// never scanned.
func (ce *CoupledEngine) applyDeferred() error {
	cand := ce.active
	for round := 0; ; round++ {
		runs := ce.runs[:0]
		for _, g := range cand {
			if len(ce.ops[g]) == 0 {
				continue // empty, or a duplicate candidate already taken
			}
			r := ce.takeRun(int(g))
			if round > 0 {
				// Barrier-emitted follow-ups arrive in barrier order,
				// not (at, key) order: sort before merging.
				sortOps(r)
			}
			runs = append(runs, r)
		}
		ce.runs = runs // keep any growth for the next window
		if len(runs) == 0 {
			return nil
		}
		ce.bops = ce.bops[:0]
		ce.inBarrier = true
		ce.mergeExec(runs)
		ce.inBarrier = false
		if err := ce.firstErr(); err != nil {
			return err
		}
		// Follow-up candidates are copied out of the collector so the
		// next round can reset it without aliasing its own input.
		ce.bscratch = append(ce.bscratch[:0], ce.bops...)
		cand = ce.bscratch
	}
}

// mergeEnt is one run head inside the barrier's k-way merge heap.
type mergeEnt struct {
	at  Time
	key uint64
	run int32
}

func mergeLess(a, b *mergeEnt) bool {
	return a.at < b.at || (a.at == b.at && a.key < b.key)
}

// mergeExec applies the runs' ops in globally ascending (at, key)
// order via a k-way merge: a binary heap holds each run's head, and
// every pop advances one run. Comparisons are O(n log k) against the
// retired full sort's O(n log n), and — unlike the full sort — the
// per-run ordering work already happened on the window workers.
func (ce *CoupledEngine) mergeExec(runs [][]deferredOp) {
	if len(runs) == 1 {
		for i := range runs[0] {
			runs[0][i].run()
		}
		return
	}
	pos := ce.mergePos[:0]
	hp := ce.mergeHp[:0]
	for r := range runs {
		op := &runs[r][0]
		hp = append(hp, mergeEnt{at: op.at, key: op.key, run: int32(r)})
		pos = append(pos, 0)
	}
	ce.mergePos, ce.mergeHp = pos, hp
	// Heapify (sift-down from the last parent).
	for i := len(hp)/2 - 1; i >= 0; i-- {
		mergeSiftDown(hp, i)
	}
	for len(hp) > 0 {
		r := hp[0].run
		op := &runs[r][pos[r]]
		pos[r]++
		if int(pos[r]) < len(runs[r]) {
			nxt := &runs[r][pos[r]]
			hp[0] = mergeEnt{at: nxt.at, key: nxt.key, run: r}
		} else {
			hp[0] = hp[len(hp)-1]
			hp = hp[:len(hp)-1]
		}
		if len(hp) > 1 {
			mergeSiftDown(hp, 0)
		}
		op.run()
	}
}

// mergeSiftDown restores the binary-heap order below node i.
func mergeSiftDown(hp []mergeEnt, i int) {
	n := len(hp)
	for {
		c := 2*i + 1
		if c >= n {
			return
		}
		if c+1 < n && mergeLess(&hp[c+1], &hp[c]) {
			c++
		}
		if !mergeLess(&hp[c], &hp[i]) {
			return
		}
		hp[i], hp[c] = hp[c], hp[i]
		i = c
	}
}

// finish handles run termination: clean completion, a first recorded
// group error, or an aggregated deadlock report across all groups.
func (ce *CoupledEngine) finish() error {
	if err := ce.firstErr(); err != nil {
		return err
	}
	var parked []string
	for _, sub := range ce.subs {
		parked = sub.parkedNames(parked)
	}
	if len(parked) > 0 {
		sort.Strings(parked)
		return &DeadlockError{Time: ce.Elapsed(), Parked: parked}
	}
	return nil
}
