package sim

// White-box tests for the window-engine scaling internals: the 4-ary
// tournament min-tree that replaces the per-window O(G) NextAt scan,
// and the property that the k-way merge barrier applies deferred ops
// in exactly the order the retired flatten-and-full-sort
// implementation did — including barrier-emitted follow-up rounds.

import (
	"math/rand"
	"slices"
	"testing"
)

func TestMinTreeBasics(t *testing.T) {
	var tr minTree
	tr.init(5) // pads to 16 leaves: ghosts must never surface
	if tr.min() != timeMax {
		t.Fatalf("empty tree min = %v", tr.min())
	}
	tr.update(3, 70)
	tr.update(0, 90)
	tr.update(4, 80)
	if tr.min() != 70 {
		t.Fatalf("min = %v, want 70", tr.min())
	}
	if got := tr.get(3); got != 70 {
		t.Fatalf("get(3) = %v", got)
	}
	// Raising the current minimum must re-min through siblings.
	tr.update(3, 95)
	if tr.min() != 80 {
		t.Fatalf("min after raise = %v, want 80", tr.min())
	}
	// collect enumerates ascending group order, strictly below w1.
	got := tr.collect(91, nil)
	want := []int32{0, 4}
	if !slices.Equal(got, want) {
		t.Fatalf("collect(91) = %v, want %v", got, want)
	}
	// Boundary: a horizon equal to w1 is not active.
	if got := tr.collect(80, nil); !slices.Equal(got, []int32{}) && got != nil {
		t.Fatalf("collect(80) = %v, want empty", got)
	}
	// Idle transition removes a group from every future active set.
	tr.update(0, timeMax)
	tr.update(4, timeMax)
	tr.update(3, timeMax)
	if tr.min() != timeMax {
		t.Fatalf("all-idle min = %v", tr.min())
	}
	if got := tr.collect(timeMax, nil); len(got) != 0 {
		t.Fatalf("all-idle collect = %v", got)
	}
}

func TestMinTreeRandomizedAgainstScan(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 50; trial++ {
		n := 1 + rng.Intn(70)
		var tr minTree
		tr.init(n)
		ref := make([]Time, n)
		for i := range ref {
			ref[i] = timeMax
		}
		for step := 0; step < 200; step++ {
			g := rng.Intn(n)
			var at Time
			if rng.Intn(5) == 0 {
				at = timeMax
			} else {
				at = Time(rng.Intn(1000))
			}
			tr.update(g, at)
			ref[g] = at
			min := timeMax
			for _, v := range ref {
				if v < min {
					min = v
				}
			}
			if tr.min() != min {
				t.Fatalf("n=%d step=%d: tree min %v, scan min %v", n, step, tr.min(), min)
			}
			w1 := Time(rng.Intn(1200))
			var want []int32
			for i, v := range ref {
				if v < w1 {
					want = append(want, int32(i))
				}
			}
			got := tr.collect(w1, nil)
			if !slices.Equal(got, want) {
				t.Fatalf("n=%d step=%d: collect(%v) = %v, want %v", n, step, w1, got, want)
			}
		}
	}
}

// opSpec is a pregenerated deferred-op shape: who defers it, when it
// fires, and which follow-up ops its execution defers from the barrier
// itself. Specs are instantiated separately per engine so the merge
// path and the reference full-sort path run identical workloads.
type opSpec struct {
	id       int
	rank     int
	at       Time
	children []*opSpec
}

// genSpecs builds a randomized batch of root op specs with occasional
// barrier-emitted children (and grandchildren), using small at ranges
// so same-time ties are common and only the sender-counter key breaks
// them.
func genSpecs(rng *rand.Rand, ranks int, next *int, depth int) []*opSpec {
	count := rng.Intn(12)
	if depth == 0 {
		count = 2 + rng.Intn(40)
	}
	specs := make([]*opSpec, count)
	for i := range specs {
		s := &opSpec{id: *next, rank: rng.Intn(ranks), at: Time(rng.Intn(6))}
		*next++
		if depth < 2 && rng.Intn(4) == 0 {
			s.children = genSpecs(rng, ranks, next, depth+1)
		}
		specs[i] = s
	}
	return specs
}

// instantiate turns a spec tree into live Defer calls on ce, recording
// execution order into log.
func instantiate(ce *CoupledEngine, s *opSpec, log *[]int) func() {
	return func() {
		*log = append(*log, s.id)
		for _, c := range s.children {
			ce.Defer(c.rank, c.at, instantiate(ce, c, log))
		}
	}
}

// refApplyDeferred is the retired barrier implementation: flatten all
// groups' runs, full-sort by (at, key), execute, repeat until no op
// remains.
func refApplyDeferred(ce *CoupledEngine) {
	var batch []deferredOp
	for {
		batch = batch[:0]
		for g := range ce.ops {
			batch = append(batch, ce.ops[g]...)
			ce.ops[g] = ce.ops[g][:0]
		}
		if len(batch) == 0 {
			return
		}
		slices.SortFunc(batch, func(a, b deferredOp) int {
			switch {
			case a.at != b.at:
				if a.at < b.at {
					return -1
				}
				return 1
			case a.key < b.key:
				return -1
			case a.key > b.key:
				return 1
			}
			return 0
		})
		for i := range batch {
			batch[i].run()
		}
	}
}

// TestCoupledMergeMatchesFullSort is the barrier-equivalence property:
// over randomized op batches (including barrier-emitted follow-ups,
// which arrive unsorted), the k-way merge barrier must execute ops in
// byte-identical order to the old flatten-and-full-sort barrier.
func TestCoupledMergeMatchesFullSort(t *testing.T) {
	for seed := int64(0); seed < 40; seed++ {
		groups := 2 + rand.New(rand.NewSource(seed)).Intn(8)
		ranksPerGroup := 1 + rand.New(rand.NewSource(seed^0x5f)).Intn(3)
		groupOf := make([]int, groups*ranksPerGroup)
		for r := range groupOf {
			groupOf[r] = r % groups
		}
		build := func() (*CoupledEngine, *[]int) {
			ce, err := NewCoupled(groupOf, Microsecond, 1)
			if err != nil {
				t.Fatal(err)
			}
			ce.tree.init(groups) // applyDeferred publishes through it
			var log []int
			rng := rand.New(rand.NewSource(seed))
			var next int
			for _, s := range genSpecs(rng, len(groupOf), &next, 0) {
				ce.Defer(s.rank, s.at, instantiate(ce, s, &log))
			}
			return ce, &log
		}

		merged, mergedLog := build()
		merged.active = merged.active[:0]
		for g := 0; g < groups; g++ {
			// The window workers pre-sort each dispatched group's run;
			// mimic that contract before invoking the merge barrier.
			sortOps(merged.ops[g])
			merged.active = append(merged.active, int32(g))
		}
		if err := merged.applyDeferred(); err != nil {
			t.Fatalf("seed %d: applyDeferred: %v", seed, err)
		}

		ref, refLog := build()
		refApplyDeferred(ref)

		if !slices.Equal(*mergedLog, *refLog) {
			t.Fatalf("seed %d: merge order %v != full-sort order %v", seed, *mergedLog, *refLog)
		}
		if len(*mergedLog) == 0 {
			t.Fatalf("seed %d: degenerate batch, no ops executed", seed)
		}
	}
}
