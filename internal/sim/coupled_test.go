package sim_test

// Tests for the coupled conservative-lookahead engine: construction
// validation, the deferred-op mailbox bound, and the one-group
// delegation path. The heavyweight invariance property (identical
// digests at every worker count) is exercised end-to-end by
// internal/conformance's TestShardCountInvariant* suite.

import (
	"strings"
	"testing"

	"msgroofline/internal/sim"
)

func TestCoupledConstructionErrors(t *testing.T) {
	if _, err := sim.NewCoupled(nil, sim.Microsecond, 1); err == nil {
		t.Error("empty groupOf should fail")
	}
	if _, err := sim.NewCoupled([]int{0, 2}, sim.Microsecond, 1); err == nil {
		t.Error("non-dense group ids should fail")
	}
	if _, err := sim.NewCoupled([]int{0, 1}, 0, 1); err == nil {
		t.Error("zero lookahead with two groups should fail")
	}
	ce, err := sim.NewCoupled([]int{0, 1, 0, 1}, sim.Microsecond, 64)
	if err != nil {
		t.Fatal(err)
	}
	if ce.Groups() != 2 {
		t.Fatalf("Groups = %d", ce.Groups())
	}
	if ce.Workers() != 2 {
		t.Fatalf("workers should clamp to the group count, got %d", ce.Workers())
	}
}

func TestCoupledMailboxCap(t *testing.T) {
	ce, err := sim.NewCoupled([]int{0, 1}, sim.Microsecond, 1)
	if err != nil {
		t.Fatal(err)
	}
	ce.SetMailboxCap(4)
	ce.Sub(0).Spawn("burst", func(p *sim.Proc) {
		for i := 0; i < 10; i++ {
			ce.Defer(0, p.Now(), func() {})
		}
	})
	err = ce.Run()
	if err == nil || !strings.Contains(err.Error(), "over capacity") {
		t.Fatalf("want mailbox capacity error, got %v", err)
	}
}

func TestCoupledOneGroupDelegates(t *testing.T) {
	// A single node group needs no window protocol (and a linkless
	// topology has no lookahead): Run must delegate to the sub-engine
	// and still count one window.
	ce, err := sim.NewCoupled([]int{0, 0, 0}, 0, 8)
	if err != nil {
		t.Fatal(err)
	}
	var ticks int
	ce.Sub(0).Spawn("p", func(p *sim.Proc) {
		for i := 0; i < 5; i++ {
			p.Sleep(sim.Microsecond)
			ticks++
		}
	})
	if err := ce.Run(); err != nil {
		t.Fatal(err)
	}
	if ticks != 5 {
		t.Fatalf("ticks = %d", ticks)
	}
	if ce.Windows() != 1 {
		t.Fatalf("one-group run should report 1 window, got %d", ce.Windows())
	}
	if ce.Elapsed() != 5*sim.Microsecond {
		t.Fatalf("elapsed = %v", ce.Elapsed())
	}
}
