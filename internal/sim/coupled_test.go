package sim_test

// Tests for the coupled conservative-lookahead engine: construction
// validation, the deferred-op mailbox bound, and the one-group
// delegation path. The heavyweight invariance property (identical
// digests at every worker count) is exercised end-to-end by
// internal/conformance's TestShardCountInvariant* suite.

import (
	"fmt"
	"strings"
	"testing"

	"msgroofline/internal/sim"
	"msgroofline/internal/sim/simbench"
)

func TestCoupledConstructionErrors(t *testing.T) {
	if _, err := sim.NewCoupled(nil, sim.Microsecond, 1); err == nil {
		t.Error("empty groupOf should fail")
	}
	if _, err := sim.NewCoupled([]int{0, 2}, sim.Microsecond, 1); err == nil {
		t.Error("non-dense group ids should fail")
	}
	if _, err := sim.NewCoupled([]int{0, 1}, 0, 1); err == nil {
		t.Error("zero lookahead with two groups should fail")
	}
	ce, err := sim.NewCoupled([]int{0, 1, 0, 1}, sim.Microsecond, 64)
	if err != nil {
		t.Fatal(err)
	}
	if ce.Groups() != 2 {
		t.Fatalf("Groups = %d", ce.Groups())
	}
	if ce.Workers() != 2 {
		t.Fatalf("workers should clamp to the group count, got %d", ce.Workers())
	}
}

func TestCoupledMailboxCap(t *testing.T) {
	ce, err := sim.NewCoupled([]int{0, 1}, sim.Microsecond, 1)
	if err != nil {
		t.Fatal(err)
	}
	ce.SetMailboxCap(4)
	ce.Sub(0).Spawn("burst", func(p *sim.Proc) {
		for i := 0; i < 10; i++ {
			ce.Defer(0, p.Now(), func() {})
		}
	})
	err = ce.Run()
	if err == nil || !strings.Contains(err.Error(), "over capacity") {
		t.Fatalf("want mailbox capacity error, got %v", err)
	}
}

func TestCoupledOneGroupDelegates(t *testing.T) {
	// A single node group needs no window protocol (and a linkless
	// topology has no lookahead): Run must delegate to the sub-engine
	// and still count one window.
	ce, err := sim.NewCoupled([]int{0, 0, 0}, 0, 8)
	if err != nil {
		t.Fatal(err)
	}
	var ticks int
	ce.Sub(0).Spawn("p", func(p *sim.Proc) {
		for i := 0; i < 5; i++ {
			p.Sleep(sim.Microsecond)
			ticks++
		}
	})
	if err := ce.Run(); err != nil {
		t.Fatal(err)
	}
	if ticks != 5 {
		t.Fatalf("ticks = %d", ticks)
	}
	if ce.Windows() != 1 {
		t.Fatalf("one-group run should report 1 window, got %d", ce.Windows())
	}
	if ce.Elapsed() != 5*sim.Microsecond {
		t.Fatalf("elapsed = %v", ce.Elapsed())
	}
}

// poolScenario builds a 6-group world where groups 2 and 4 both
// misbehave (per bad, invoked at setup for each failing group) inside
// the first window while the other groups idle far in the future — so
// the window's active set is exactly {2, 4} and the engine must pick
// the surfaced failure by ascending group order, not completion order,
// at every worker count.
func poolScenario(t *testing.T, workers int, bad func(ce *sim.CoupledEngine, g int)) *sim.CoupledEngine {
	t.Helper()
	ce, err := sim.NewCoupled([]int{0, 1, 2, 3, 4, 5}, sim.Microsecond, workers)
	if err != nil {
		t.Fatal(err)
	}
	for g := 0; g < 6; g++ {
		switch g {
		case 2, 4:
			bad(ce, g)
		default:
			ce.Sub(g).Spawn("quiet", func(p *sim.Proc) {
				p.Sleep(100 * sim.Microsecond)
			})
		}
	}
	return ce
}

// TestCoupledPoolErrorPropagation pins the worker-pool error contract:
// when several groups fail in one window, the surfaced error is the
// lowest-numbered failing group's, and the error string is identical
// at workers 1, 2, G, and G+1 (clamped to G).
func TestCoupledPoolErrorPropagation(t *testing.T) {
	var want string
	for _, workers := range []int{1, 2, 6, 7} {
		ce := poolScenario(t, workers, func(ce *sim.CoupledEngine, g int) {
			ce.Sub(g).Spawn("bad", func(p *sim.Proc) {
				// Exceed the event limit inside the window; groups 2
				// and 4 trip it at different simulated times so their
				// error strings differ and ordering mistakes show.
				for i := 0; i < 100; i++ {
					p.Sleep(sim.Nanosecond * sim.Time(1+g))
				}
			})
		})
		ce.SetEventLimit(20)
		err := ce.Run()
		if err == nil {
			t.Fatalf("workers=%d: want event-limit error", workers)
		}
		if !strings.Contains(err.Error(), "event limit") {
			t.Fatalf("workers=%d: unexpected error %v", workers, err)
		}
		if want == "" {
			want = err.Error()
		} else if err.Error() != want {
			t.Fatalf("workers=%d: error %q != workers=1 error %q", workers, err.Error(), want)
		}
	}
}

// TestCoupledPoolPanicPropagation pins the panic contract: a panic in
// an event closure executes on whichever pool worker dispatched it and
// must be re-raised on Run's goroutine; the chosen panic is the
// lowest-numbered panicking group's — identical at workers 1, 2, G,
// and G+1. (Panics in proc bodies are outside this contract: procs own
// their goroutines at every worker count.)
func TestCoupledPoolPanicPropagation(t *testing.T) {
	for _, workers := range []int{1, 2, 6, 7} {
		ce := poolScenario(t, workers, func(ce *sim.CoupledEngine, g int) {
			ce.Sub(g).At(sim.Microsecond, func() {
				panic(fmt.Sprintf("boom-%d", g))
			})
		})
		got := func() (r any) {
			defer func() { r = recover() }()
			_ = ce.Run()
			return nil
		}()
		if got != "boom-2" {
			t.Fatalf("workers=%d: recovered %v, want boom-2", workers, got)
		}
	}
}

// TestCoupledActiveSkipReawaken drives a long two-group volley while a
// third group goes idle after one event, then re-awakens it with a
// barrier-delivered At. The idle group must not be dispatched while
// idle (Dispatches stays near one group per window), must wake exactly
// at the delivered time, and the event-order digest must not depend on
// the worker count.
func TestCoupledActiveSkipReawaken(t *testing.T) {
	const la = sim.Microsecond
	const rounds = 16
	run := func(workers int) (woke sim.Time, windows, dispatches uint64, digest uint64) {
		ce, err := sim.NewCoupled([]int{0, 1, 2}, la, workers)
		if err != nil {
			t.Fatal(err)
		}
		ce.Sub(2).Spawn("idler", func(p *sim.Proc) {
			p.Sleep(la) // one event, then the group has no work at all
		})
		var volley func(me, other, k int)
		volley = func(me, other, k int) {
			now := ce.Sub(me).Now()
			if k == rounds {
				ce.Defer(me, now, func() {
					ce.At(2, now+la, func() {
						woke = ce.Sub(2).Now()
					})
				})
				return
			}
			ce.Defer(me, now, func() {
				ce.At(other, now+la, func() { volley(other, me, k+1) })
			})
		}
		ce.Sub(0).Spawn("kick", func(p *sim.Proc) {
			p.Sleep(la)
			volley(0, 1, 0)
		})
		if err := ce.Run(); err != nil {
			t.Fatal(err)
		}
		return woke, ce.Windows(), ce.Dispatches(), ce.Digest()
	}

	woke1, win1, disp1, dig1 := run(1)
	if woke1 != sim.Time(rounds+2)*la {
		t.Fatalf("re-awakened at %v, want %v", woke1, sim.Time(rounds+2)*la)
	}
	if win1 < rounds {
		t.Fatalf("windows = %d, want >= %d (one per volley hop)", win1, rounds)
	}
	// The volley keeps exactly one group eligible per window (plus the
	// first window's extra starters); without active-group dispatch
	// this would be 3 per window.
	if disp1 > win1+3 {
		t.Fatalf("dispatches = %d over %d windows: idle groups were dispatched", disp1, win1)
	}
	for _, workers := range []int{2, 3} {
		woke, win, disp, dig := run(workers)
		if woke != woke1 || win != win1 || disp != disp1 || dig != dig1 {
			t.Fatalf("workers=%d: (woke,windows,dispatches,digest)=(%v,%d,%d,%x) != workers=1 (%v,%d,%d,%x)",
				workers, woke, win, disp, dig, woke1, win1, disp1, dig1)
		}
	}
}

// TestCoupledWindowsWorkerInvariance certifies the benchmark workload
// itself: the CoupledWindows token storm must execute the same event
// population in the same order (digest, count, elapsed) at every
// worker count.
func TestCoupledWindowsWorkerInvariance(t *testing.T) {
	ref := simbench.CoupledWindows(48, 1, 30000, 7)
	if ref.Executed() == 0 {
		t.Fatal("workload dispatched no events")
	}
	for _, workers := range []int{2, 4} {
		ce := simbench.CoupledWindows(48, workers, 30000, 7)
		if ce.Digest() != ref.Digest() || ce.Executed() != ref.Executed() || ce.Elapsed() != ref.Elapsed() {
			t.Fatalf("workers=%d: (digest,events,elapsed)=(%x,%d,%v) != workers=1 (%x,%d,%v)",
				workers, ce.Digest(), ce.Executed(), ce.Elapsed(),
				ref.Digest(), ref.Executed(), ref.Elapsed())
		}
	}
}
