package sim

import (
	"fmt"
	"math"
	"sort"
)

// Event is a cancelable handle to a scheduled callback. The engine
// recycles event storage through a free list, so the handle addresses
// its slot through a generation counter: canceling after the event has
// fired (and its slot has been reused by a later event) is a safe
// no-op. The zero Event is inert.
//
// Events with equal timestamps fire in the order they were scheduled
// (FIFO), which keeps runs deterministic.
type Event struct {
	eng      *Engine
	at       Time
	slot     int32
	gen      uint32
	canceled bool
}

// Cancel prevents the event from firing. Canceling an already-fired or
// already-canceled event is a no-op.
func (ev *Event) Cancel() {
	if ev.canceled {
		return
	}
	ev.canceled = true
	if ev.eng == nil {
		return
	}
	if nd := &ev.eng.nodes[ev.slot]; nd.gen == ev.gen {
		nd.canceled = true
	}
}

// Canceled reports whether Cancel was called on this handle.
func (ev *Event) Canceled() bool { return ev.canceled }

// At returns the simulated time the event is scheduled for.
func (ev *Event) At() Time { return ev.at }

// eventNode is the pooled storage behind an Event. A node either
// carries a callback (fn) or is a pre-bound process wakeup (wake);
// wakeups carry no closure, so the Sleep/Signal hot path allocates
// nothing. gen increments every time the slot is recycled.
type eventNode struct {
	at       Time
	seq      uint64
	fn       func()
	wake     *Proc
	gen      uint32
	canceled bool
}

// heapEnt is one entry of the time-ordered queue. The ordering key
// (at, seq) is stored inline so sift comparisons never chase a node
// pointer, and the slice layout avoids the interface boxing of
// container/heap's Push/Pop.
type heapEnt struct {
	at   Time
	seq  uint64
	slot int32
}

func heapLess(a, b *heapEnt) bool {
	return a.at < b.at || (a.at == b.at && a.seq < b.seq)
}

// nowEnt is one entry of the same-timestamp FIFO ring. All queued
// entries are scheduled for the current time, so only seq (for
// ordering against equal-time heap entries) and the slot are kept.
type nowEnt struct {
	seq  uint64
	slot int32
}

// Engine is a sequential discrete-event simulator. It is not safe for
// concurrent use from multiple goroutines except through the Proc
// coroutine handshake, which guarantees only one simulated process (or
// the engine itself) runs at any moment.
//
// Internally the pending-event set is split in two: a FIFO "now queue"
// ring buffer for events at the current timestamp (the dominant class:
// Sleep(0), Signal/Broadcast wakeups, Spawn starts and eager-protocol
// deliveries all schedule at delay zero) and an inlined 4-ary min-heap
// keyed on (at, seq) for future events. Event storage is pooled on a
// free list. See DESIGN.md §7 for the invariants.
type Engine struct {
	now      Time
	seq      uint64
	executed uint64
	digest   uint64 // order-sensitive fold of dispatched (at, key) pairs
	maxEv    uint64 // 0 = unlimited
	horizon  Time   // RunUntil bound; handoffs must not dispatch beyond it

	nodes []eventNode // slot-addressed pool
	free  []int32     // free-list stack of recycled slots

	heap []heapEnt // 4-ary min-heap of future events

	nowq    []nowEnt // ring buffer of events at the current time
	nowHead int
	nowLen  int

	turn chan struct{} // procs yield control back on this channel
	live int           // spawned, not yet finished procs

	parkedHead *Proc // intrusive list of cond-parked procs (deadlock reporting)
	parkedN    int

	// perturb, when non-nil, enables the schedule-fuzzing mode of
	// perturb.go: every allocation draws (or replays) one decision
	// that may jitter the firing time and randomize the ordering key.
	// perturbStream is this engine's decision-stream index within the
	// perturbation (node-group index on a coupled world, 0 otherwise);
	// perturbScript/perturbReplay hold the pre-sliced stream script.
	perturb       *Perturbation
	perturbStream int
	perturbScript []PerturbDecision
	perturbReplay bool
	rngState      uint64
}

// NewEngine returns an empty engine at time zero.
func NewEngine() *Engine {
	return &Engine{
		turn:    make(chan struct{}),
		horizon: math.MaxInt64,
		digest:  fnvOffsetBasis,
	}
}

// Now returns the current simulated time.
func (e *Engine) Now() Time { return e.now }

// Executed returns the number of events dispatched so far.
func (e *Engine) Executed() uint64 { return e.executed }

// Digest returns the order-sensitive fingerprint of the events
// dispatched so far: each event's (firing time, ordering key) pair is
// folded into an FNV-style hash in dispatch order. Two runs with
// identical schedules produce equal digests; any reordering, jitter,
// or divergent event set changes the value. The sharded engine
// exposes the same construction per rank (ShardedEngine.RankDigest),
// and the shard-determinism suite compares both to prove engine
// schedules are invariant under the recorded shard count.
func (e *Engine) Digest() uint64 { return e.digest }

// SetEventLimit installs a safety cap on dispatched events; Run returns
// an error when it is exceeded. Zero (the default) means no limit.
func (e *Engine) SetEventLimit(n uint64) { e.maxEv = n }

// alloc takes a slot from the free list (or grows the pool) and stamps
// it with the scheduling time and the next sequence number. In
// perturbation mode the ordering key's high bits come from the
// per-event decision (randomizing same-timestamp order) and the firing
// time absorbs the decision's jitter.
func (e *Engine) alloc(at Time) int32 {
	var slot int32
	if n := len(e.free); n > 0 {
		slot = e.free[n-1]
		e.free = e.free[:n-1]
	} else {
		e.nodes = append(e.nodes, eventNode{})
		slot = int32(len(e.nodes) - 1)
	}
	nd := &e.nodes[slot]
	idx := e.seq
	e.seq++
	key := idx
	if e.perturb != nil {
		if idx > 1<<32-1 {
			panic("sim: perturbation mode supports at most 2^32 events per run")
		}
		d := e.perturbDecision(idx)
		at += d.Jitter
		key = uint64(d.Prio)<<32 | idx
	}
	nd.at = at
	nd.seq = key
	return slot
}

// freeSlot recycles a node. Bumping gen invalidates every outstanding
// Event handle to the old occupant, which is what makes Cancel safe
// after recycling.
func (e *Engine) freeSlot(slot int32) {
	nd := &e.nodes[slot]
	nd.fn = nil
	nd.wake = nil
	nd.canceled = false
	nd.gen++
	e.free = append(e.free, slot)
}

// enqueue routes a freshly allocated slot to the now queue (at == now)
// or the heap (at > now). Callers clamp at to >= e.now first. In
// perturbation mode everything goes through the heap: the now-queue
// ring is FIFO by construction, which is exactly the ordering the
// fuzzer must be free to break.
func (e *Engine) enqueue(slot int32) {
	nd := &e.nodes[slot]
	if nd.at <= e.now && e.perturb == nil {
		e.nowPush(nowEnt{seq: nd.seq, slot: slot})
	} else {
		e.heapPush(heapEnt{at: nd.at, seq: nd.seq, slot: slot})
	}
}

// Schedule registers fn to run after delay. A negative delay is an
// immediate event (fires at the current time, after already-queued
// events with the same timestamp).
func (e *Engine) Schedule(delay Time, fn func()) Event {
	if delay < 0 {
		delay = 0
	}
	return e.At(e.now+delay, fn)
}

// At registers fn to run at absolute time t (clamped to now).
func (e *Engine) At(t Time, fn func()) Event {
	if t < e.now {
		t = e.now
	}
	slot := e.alloc(t)
	nd := &e.nodes[slot]
	nd.fn = fn
	e.enqueue(slot)
	// nd.at, not t: perturbation jitter may have moved the event.
	return Event{eng: e, at: nd.at, slot: slot, gen: nd.gen}
}

// scheduleWake registers a pre-bound wakeup of p after delay: the
// pooled node carries only the *Proc, so the call allocates nothing.
func (e *Engine) scheduleWake(delay Time, p *Proc) {
	if delay < 0 {
		delay = 0
	}
	slot := e.alloc(e.now + delay)
	e.nodes[slot].wake = p
	e.enqueue(slot)
}

// --- now-queue ring buffer ---

func (e *Engine) nowPush(ent nowEnt) {
	if e.nowLen == len(e.nowq) {
		e.nowGrow()
	}
	e.nowq[(e.nowHead+e.nowLen)&(len(e.nowq)-1)] = ent
	e.nowLen++
}

func (e *Engine) nowGrow() {
	if len(e.nowq) == 0 {
		e.nowq = make([]nowEnt, 64)
		return
	}
	grown := make([]nowEnt, 2*len(e.nowq))
	for i := 0; i < e.nowLen; i++ {
		grown[i] = e.nowq[(e.nowHead+i)&(len(e.nowq)-1)]
	}
	e.nowq = grown
	e.nowHead = 0
}

func (e *Engine) nowPop() nowEnt {
	ent := e.nowq[e.nowHead]
	e.nowHead = (e.nowHead + 1) & (len(e.nowq) - 1)
	e.nowLen--
	return ent
}

// --- 4-ary min-heap ---

func (e *Engine) heapPush(ent heapEnt) {
	h := append(e.heap, ent)
	i := len(h) - 1
	for i > 0 {
		parent := (i - 1) >> 2
		if !heapLess(&h[i], &h[parent]) {
			break
		}
		h[i], h[parent] = h[parent], h[i]
		i = parent
	}
	e.heap = h
}

func (e *Engine) heapPop() heapEnt {
	h := e.heap
	top := h[0]
	n := len(h) - 1
	h[0] = h[n]
	h = h[:n]
	e.heap = h
	i := 0
	for {
		c := i<<2 + 1
		if c >= n {
			break
		}
		m := c
		end := c + 4
		if end > n {
			end = n
		}
		for j := c + 1; j < end; j++ {
			if heapLess(&h[j], &h[m]) {
				m = j
			}
		}
		if !heapLess(&h[m], &h[i]) {
			break
		}
		h[i], h[m] = h[m], h[i]
		i = m
	}
	return top
}

// --- dispatch core ---

// dropCanceled frees canceled events sitting at the head of either
// queue, so peeks and pops see only live events at the front.
func (e *Engine) dropCanceled() {
	for e.nowLen > 0 && e.nodes[e.nowq[e.nowHead].slot].canceled {
		e.freeSlot(e.nowPop().slot)
	}
	for len(e.heap) > 0 && e.nodes[e.heap[0].slot].canceled {
		e.freeSlot(e.heapPop().slot)
	}
}

// peekMin returns the time and slot of the earliest live pending
// event without removing it. Clock invariant: every now-queue entry is
// scheduled for exactly e.now (the clock only advances when the now
// queue is empty), and every heap entry has at >= e.now, so the now
// queue wins unless the heap holds an equal-time entry with an earlier
// sequence number.
func (e *Engine) peekMin() (Time, int32, bool) {
	e.dropCanceled()
	if e.nowLen > 0 {
		q := &e.nowq[e.nowHead]
		if len(e.heap) > 0 {
			if h := &e.heap[0]; h.at == e.now && h.seq < q.seq {
				return h.at, h.slot, true
			}
		}
		return e.now, q.slot, true
	}
	if len(e.heap) > 0 {
		return e.heap[0].at, e.heap[0].slot, true
	}
	return 0, -1, false
}

// popMin removes and returns the slot of the earliest pending event
// (canceled entries included; callers filter), or -1 when none remain.
func (e *Engine) popMin() int32 {
	if e.nowLen > 0 {
		q := &e.nowq[e.nowHead]
		if len(e.heap) > 0 {
			if h := &e.heap[0]; h.at == e.now && h.seq < q.seq {
				return e.heapPop().slot
			}
		}
		return e.nowPop().slot
	}
	if len(e.heap) > 0 {
		return e.heapPop().slot
	}
	return -1
}

// step dispatches the next event. It reports false when the queue is
// empty.
func (e *Engine) step() bool {
	for {
		slot := e.popMin()
		if slot < 0 {
			return false
		}
		nd := &e.nodes[slot]
		if nd.canceled {
			e.freeSlot(slot)
			continue
		}
		if nd.at > e.now {
			e.now = nd.at
		}
		e.executed++
		e.digest = mixDigest(mixDigest(e.digest, uint64(nd.at)), nd.seq)
		p, fn := nd.wake, nd.fn
		e.freeSlot(slot)
		if p != nil {
			if p.preWake != nil {
				p.preWake()
			}
			e.dispatch(p)
		} else {
			fn()
		}
		return true
	}
}

// handoffTarget pops and returns the process behind the globally next
// event when that event is a pre-bound wakeup the parking process may
// execute itself — the direct proc-to-proc handoff fast path (one
// channel handshake per context switch instead of two). It returns nil
// when the next event is a callback (or none exists), when the event
// limit has been reached, or when the wakeup lies beyond the RunUntil
// horizon; the engine loop then takes over.
func (e *Engine) handoffTarget() *Proc {
	for {
		if e.maxEv != 0 && e.executed >= e.maxEv {
			return nil
		}
		at, slot, ok := e.peekMin()
		if !ok || at > e.horizon {
			return nil
		}
		p := e.nodes[slot].wake
		if p == nil {
			return nil
		}
		e.popMin()
		if at > e.now {
			e.now = at
		}
		e.executed++
		e.digest = mixDigest(mixDigest(e.digest, uint64(at)), e.nodes[slot].seq)
		e.freeSlot(slot)
		if p.done {
			continue // stale wakeup for a finished process
		}
		if p.preWake != nil {
			p.preWake()
		}
		return p
	}
}

// Run dispatches events until none remain. It returns a DeadlockError
// if simulated processes are still parked when the queue drains, or an
// event-limit error if the configured cap is exceeded.
func (e *Engine) Run() error {
	e.horizon = math.MaxInt64
	for e.step() {
		if e.maxEv != 0 && e.executed > e.maxEv {
			return fmt.Errorf("sim: event limit %d exceeded at t=%v", e.maxEv, e.now)
		}
	}
	if e.parkedN > 0 {
		return e.deadlock()
	}
	return nil
}

// NextAt returns the timestamp of the earliest live pending event and
// whether one exists. It does not advance the clock.
func (e *Engine) NextAt() (Time, bool) {
	at, _, ok := e.peekMin()
	return at, ok
}

// RunBefore dispatches every event with timestamp strictly less than
// t. Unlike RunUntil it never advances the clock idly: Now() stays at
// the last dispatched event, so Elapsed-style readings reflect real
// activity. Parked processes are not treated as a deadlock (they may
// be waiting on stimuli another engine will deliver at the next
// window barrier). It is the per-window execution step of the coupled
// engine (coupled.go).
func (e *Engine) RunBefore(t Time) error {
	e.horizon = t - 1
	for {
		// Inlined peekMin bound check: dropCanceled keeps both queue
		// heads live, so step's own pop cannot skip past the bound.
		e.dropCanceled()
		var at Time
		if e.nowLen > 0 {
			at = e.now
		} else if len(e.heap) > 0 {
			at = e.heap[0].at
		} else {
			break
		}
		if at >= t {
			break
		}
		e.step()
		if e.maxEv != 0 && e.executed > e.maxEv {
			e.horizon = math.MaxInt64
			return fmt.Errorf("sim: event limit %d exceeded at t=%v", e.maxEv, e.now)
		}
	}
	e.horizon = math.MaxInt64
	return nil
}

// parkedNames appends the names of every cond-parked process to dst
// (used by the coupled engine to aggregate deadlock reports).
func (e *Engine) parkedNames(dst []string) []string {
	for p := e.parkedHead; p != nil; p = p.parkedNext {
		dst = append(dst, p.name)
	}
	return dst
}

// RunUntil dispatches events with timestamps <= t, then advances the
// clock to t. Parked processes are not treated as a deadlock (they may
// be legitimately waiting for stimuli the caller will inject later).
func (e *Engine) RunUntil(t Time) error {
	e.horizon = t
	for {
		at, _, ok := e.peekMin()
		if !ok || at > t {
			break
		}
		e.step()
		if e.maxEv != 0 && e.executed > e.maxEv {
			e.horizon = math.MaxInt64
			return fmt.Errorf("sim: event limit %d exceeded at t=%v", e.maxEv, e.now)
		}
	}
	e.horizon = math.MaxInt64
	if t > e.now {
		e.now = t
	}
	return nil
}

// DeadlockError reports simulated processes that can never resume: the
// event queue drained while they were parked on conditions.
type DeadlockError struct {
	Time   Time
	Parked []string // process names, sorted
}

func (d *DeadlockError) Error() string {
	return fmt.Sprintf("sim: deadlock at t=%v: %d process(es) parked forever: %v",
		d.Time, len(d.Parked), d.Parked)
}

func (e *Engine) deadlock() error {
	names := make([]string, 0, e.parkedN)
	for p := e.parkedHead; p != nil; p = p.parkedNext {
		names = append(names, p.name)
	}
	sort.Strings(names)
	return &DeadlockError{Time: e.now, Parked: names}
}

// addParked links p into the cond-parked list (deadlock accounting).
func (e *Engine) addParked(p *Proc) {
	p.isParked = true
	p.parkedNext = e.parkedHead
	if e.parkedHead != nil {
		e.parkedHead.parkedPrev = p
	}
	e.parkedHead = p
	e.parkedN++
}

// removeParked unlinks p; a no-op if p is not in the list.
func (e *Engine) removeParked(p *Proc) {
	if !p.isParked {
		return
	}
	p.isParked = false
	if p.parkedPrev != nil {
		p.parkedPrev.parkedNext = p.parkedNext
	} else {
		e.parkedHead = p.parkedNext
	}
	if p.parkedNext != nil {
		p.parkedNext.parkedPrev = p.parkedPrev
	}
	p.parkedPrev, p.parkedNext = nil, nil
	e.parkedN--
}
