package sim

import (
	"container/heap"
	"fmt"
	"sort"
)

// Event is a scheduled callback. Events with equal timestamps fire in
// the order they were scheduled (FIFO), which keeps runs deterministic.
type Event struct {
	at       Time
	seq      uint64
	fn       func()
	canceled bool
	index    int // heap index, -1 once popped
}

// Cancel prevents the event from firing. Canceling an already-fired or
// already-canceled event is a no-op.
func (ev *Event) Cancel() { ev.canceled = true }

// Canceled reports whether Cancel was called.
func (ev *Event) Canceled() bool { return ev.canceled }

// At returns the simulated time the event is scheduled for.
func (ev *Event) At() Time { return ev.at }

type eventHeap []*Event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int) {
	h[i], h[j] = h[j], h[i]
	h[i].index = i
	h[j].index = j
}
func (h *eventHeap) Push(x any) {
	ev := x.(*Event)
	ev.index = len(*h)
	*h = append(*h, ev)
}
func (h *eventHeap) Pop() any {
	old := *h
	n := len(old)
	ev := old[n-1]
	old[n-1] = nil
	ev.index = -1
	*h = old[:n-1]
	return ev
}

// Engine is a sequential discrete-event simulator. It is not safe for
// concurrent use from multiple goroutines except through the Proc
// coroutine handshake, which guarantees only one simulated process (or
// the engine itself) runs at any moment.
type Engine struct {
	now    Time
	events eventHeap
	seq    uint64

	turn     chan struct{} // procs yield control back on this channel
	live     int           // spawned, not yet finished procs
	parked   map[*Proc]struct{}
	running  *Proc
	executed uint64
	maxEv    uint64 // 0 = unlimited
}

// NewEngine returns an empty engine at time zero.
func NewEngine() *Engine {
	return &Engine{
		turn:   make(chan struct{}),
		parked: make(map[*Proc]struct{}),
	}
}

// Now returns the current simulated time.
func (e *Engine) Now() Time { return e.now }

// Executed returns the number of events dispatched so far.
func (e *Engine) Executed() uint64 { return e.executed }

// SetEventLimit installs a safety cap on dispatched events; Run returns
// an error when it is exceeded. Zero (the default) means no limit.
func (e *Engine) SetEventLimit(n uint64) { e.maxEv = n }

// Schedule registers fn to run after delay. A negative delay is an
// immediate event (fires at the current time, after already-queued
// events with the same timestamp).
func (e *Engine) Schedule(delay Time, fn func()) *Event {
	if delay < 0 {
		delay = 0
	}
	return e.At(e.now+delay, fn)
}

// At registers fn to run at absolute time t (clamped to now).
func (e *Engine) At(t Time, fn func()) *Event {
	if t < e.now {
		t = e.now
	}
	ev := &Event{at: t, seq: e.seq, fn: fn}
	e.seq++
	heap.Push(&e.events, ev)
	return ev
}

// step dispatches the next event. It reports false when the queue is
// empty.
func (e *Engine) step() bool {
	for e.events.Len() > 0 {
		ev := heap.Pop(&e.events).(*Event)
		if ev.canceled {
			continue
		}
		if ev.at > e.now {
			e.now = ev.at
		}
		e.executed++
		ev.fn()
		return true
	}
	return false
}

// Run dispatches events until none remain. It returns a DeadlockError
// if simulated processes are still parked when the queue drains, or an
// event-limit error if the configured cap is exceeded.
func (e *Engine) Run() error {
	for e.step() {
		if e.maxEv != 0 && e.executed > e.maxEv {
			return fmt.Errorf("sim: event limit %d exceeded at t=%v", e.maxEv, e.now)
		}
	}
	if len(e.parked) > 0 {
		return e.deadlock()
	}
	return nil
}

// RunUntil dispatches events with timestamps <= t, then advances the
// clock to t. Parked processes are not treated as a deadlock (they may
// be legitimately waiting for stimuli the caller will inject later).
func (e *Engine) RunUntil(t Time) error {
	for e.events.Len() > 0 {
		next := e.events[0]
		if next.canceled {
			heap.Pop(&e.events)
			continue
		}
		if next.at > t {
			break
		}
		e.step()
		if e.maxEv != 0 && e.executed > e.maxEv {
			return fmt.Errorf("sim: event limit %d exceeded at t=%v", e.maxEv, e.now)
		}
	}
	if t > e.now {
		e.now = t
	}
	return nil
}

// DeadlockError reports simulated processes that can never resume: the
// event queue drained while they were parked on conditions.
type DeadlockError struct {
	Time   Time
	Parked []string // process names, sorted
}

func (d *DeadlockError) Error() string {
	return fmt.Sprintf("sim: deadlock at t=%v: %d process(es) parked forever: %v",
		d.Time, len(d.Parked), d.Parked)
}

func (e *Engine) deadlock() error {
	names := make([]string, 0, len(e.parked))
	for p := range e.parked {
		names = append(names, p.name)
	}
	sort.Strings(names)
	return &DeadlockError{Time: e.now, Parked: names}
}
