package sim_test

// Engine hot-path microbenchmarks over the canonical simbench
// workloads. Each benchmark sizes the workload by b.N, so ns/op and
// allocs/op are per simulated iteration; ns/event (reported metric)
// divides wall time by the number of dispatched events.
//
// CI gate: BenchmarkEngineSleepSignal and BenchmarkEngineSleepYield
// must report 0 allocs/op at steady state (see .github/workflows/ci.yml
// and the acceptance criteria in DESIGN.md §7).

import (
	"fmt"
	"testing"

	"msgroofline/internal/sim"
	"msgroofline/internal/sim/simbench"
)

func reportPerEvent(b *testing.B, e *sim.Engine) {
	b.Helper()
	if ev := e.Executed(); ev > 0 {
		b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(ev), "ns/event")
	}
}

// BenchmarkEngineSleepSignal is the steady-state Sleep/Signal
// ping-pong: the zero-allocation acceptance benchmark.
func BenchmarkEngineSleepSignal(b *testing.B) {
	b.ReportAllocs()
	e := simbench.PingPong(b.N)
	reportPerEvent(b, e)
}

// BenchmarkEngineSleepYield measures the Sleep(0) same-timestamp
// fast path (now-queue / self-handoff).
func BenchmarkEngineSleepYield(b *testing.B) {
	b.ReportAllocs()
	e := simbench.SleepYield(b.N)
	reportPerEvent(b, e)
}

// BenchmarkEngineTimerChurn measures the time-ordered heap path with
// 64 processes sleeping pseudorandom durations.
func BenchmarkEngineTimerChurn(b *testing.B) {
	b.ReportAllocs()
	n := b.N/64 + 1
	e := simbench.TimerChurn(64, n)
	reportPerEvent(b, e)
}

// BenchmarkEngineShardedPhold measures the conservative-parallel
// engine on the PHOLD token storm at 1, 2, and 4 shards (8192 ranks,
// block placement). Steady state must stay at 0 allocs/op — the
// sharded gate in ci.yml enforces it alongside the sequential
// engine's. On multi-core runners ns/event shrinks with shard count;
// on single-core runners compare the busy/wall ratio recorded by
// TestRecordShardedPerf instead.
func BenchmarkEngineShardedPhold(b *testing.B) {
	for _, shards := range []int{1, 2, 4} {
		b.Run(fmt.Sprintf("shards=%d", shards), func(b *testing.B) {
			b.ReportAllocs()
			e := simbench.ShardedPhold(8192, shards, b.N, 1)
			if ev := e.Executed(); ev > 0 {
				b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(ev), "ns/event")
			}
		})
	}
}

// BenchmarkEngineCoupledWindows measures the coupled engine's window
// loop on the prepared-closure token storm (64 single-rank groups) at
// 1, 2, and 4 workers. Steady state must stay at 0 allocs/op — the
// dispatch path (persistent pool, active-set collection, min-tree
// maintenance) and the barrier (pooled runs, k-way merge) reuse all
// storage across windows; ci.yml gates on it. On single-core runners
// compare busy/wall from TestRecordWindowEngine instead of ns/event.
func BenchmarkEngineCoupledWindows(b *testing.B) {
	for _, workers := range []int{1, 2, 4} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			b.ReportAllocs()
			ce := simbench.CoupledWindows(64, workers, b.N, 1)
			if ev := ce.Executed(); ev > 0 {
				b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(ev), "ns/event")
			}
		})
	}
}

// BenchmarkEngineBroadcast measures fan-out wakeups: 32 waiters woken
// together per round.
func BenchmarkEngineBroadcast(b *testing.B) {
	b.ReportAllocs()
	n := b.N/32 + 1
	e := simbench.Broadcast(32, n)
	reportPerEvent(b, e)
}
