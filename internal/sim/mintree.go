package sim

// minTree is a 4-ary tournament tree over per-group next-event times:
// leaf g holds group g's NextAt (timeMax when the group is idle) and
// every internal node holds the minimum of its children, so the root
// is the global window horizon. It replaces the O(G) NextAt scan the
// coupled engine used to run per window: after a window only the
// groups that executed (or received barrier ops) re-publish their
// horizon, each an O(log₄ G) path update, and the set of groups that
// must run in the next window is enumerated by descending only the
// subtrees whose minimum beats the window bound — O(A·log₄ G) for A
// active groups instead of O(G).
type minTree struct {
	n    int    // leaf (group) count
	base int    // index of leaf 0 (= internal node count)
	vals []Time // tree nodes; padding leaves beyond n stay timeMax
}

// init sizes the tree for n groups: the leaf level is the smallest
// power of four >= n so every internal node has exactly four children.
func (t *minTree) init(n int) {
	leaves := 1
	for leaves < n {
		leaves <<= 2
	}
	t.n = n
	t.base = (leaves - 1) / 3
	t.vals = make([]Time, t.base+leaves)
	for i := range t.vals {
		t.vals[i] = timeMax
	}
}

// min returns the smallest published horizon (timeMax when every
// group is idle).
func (t *minTree) min() Time { return t.vals[0] }

// get returns group g's published horizon.
func (t *minTree) get(g int) Time { return t.vals[t.base+g] }

// update publishes group g's horizon and re-mins the ancestor path.
func (t *minTree) update(g int, at Time) {
	i := t.base + g
	if t.vals[i] == at {
		return
	}
	t.vals[i] = at
	for i > 0 {
		p := (i - 1) >> 2
		c := p<<2 + 1
		m := t.vals[c]
		if v := t.vals[c+1]; v < m {
			m = v
		}
		if v := t.vals[c+2]; v < m {
			m = v
		}
		if v := t.vals[c+3]; v < m {
			m = v
		}
		if t.vals[p] == m {
			return // ancestors already agree
		}
		t.vals[p] = m
		i = p
	}
}

// collect appends (in ascending group order) every group whose
// published horizon is strictly below w1 — the active set of the next
// conservative window. Subtrees whose minimum is >= w1 are pruned
// without touching their leaves, so idle groups cost nothing.
func (t *minTree) collect(w1 Time, dst []int32) []int32 {
	if t.vals[0] >= w1 {
		return dst
	}
	return t.walk(0, w1, dst)
}

func (t *minTree) walk(i int, w1 Time, dst []int32) []int32 {
	if i >= t.base {
		if g := i - t.base; g < t.n {
			dst = append(dst, int32(g))
		}
		return dst
	}
	c := i<<2 + 1
	for j := c; j < c+4; j++ {
		if t.vals[j] < w1 {
			dst = t.walk(j, w1, dst)
		}
	}
	return dst
}
