package sim

// Schedule perturbation: an opt-in fuzzing mode for the conformance
// harness (internal/conformance). From a seed, the engine randomly
// permutes the firing order of same-timestamp events and injects
// bounded latency jitter into every scheduled event, exposing transport
// implementations to the adversarial orderings a real network produces.
// With no perturbation installed (the default) nothing here runs and
// event dispatch is byte-identical to the committed golden output.
//
// Every perturbed event consumes exactly one PerturbDecision. In Record
// mode the decisions are captured; a captured trace replayed through
// Script reproduces the run exactly, and a shrunk script (decisions
// zeroed back to neutral) replays the minimal perturbation that still
// triggers a failure. Decision k always applies to the k-th allocated
// event, so a script remains meaningful while it is being shrunk even
// though later schedule contents change.

// PerturbDecision records how one scheduled event was perturbed. The
// zero value is neutral: no jitter, FIFO placement among equal
// timestamps (exactly the unperturbed schedule).
type PerturbDecision struct {
	// Jitter is extra delay added to the event's firing time. It is
	// never negative, so causality (an event scheduled from another)
	// is preserved.
	Jitter Time
	// Prio replaces the high bits of the same-timestamp ordering key:
	// among events with equal firing times, lower Prio fires first,
	// ties broken by allocation order. Zero keeps pure FIFO.
	Prio uint32
}

// IsNeutral reports whether the decision leaves the event unperturbed.
func (d PerturbDecision) IsNeutral() bool { return d.Jitter == 0 && d.Prio == 0 }

// Perturbation configures engine schedule fuzzing. Install with
// Engine.SetPerturbation before any event is scheduled.
type Perturbation struct {
	// Seed drives the deterministic decision stream. Equal seeds on
	// equal programs reproduce runs bit-for-bit.
	Seed uint64
	// Reorder randomizes the firing order of same-timestamp events.
	Reorder bool
	// MaxJitter, when positive, adds a uniform extra delay in
	// [0, MaxJitter] to every scheduled event.
	MaxJitter Time
	// Script, when non-nil, replays recorded decisions instead of
	// drawing from the seed: event k gets Script[k], and events past
	// the end get the neutral decision. Used to replay and shrink
	// failing schedules.
	Script []PerturbDecision
	// Record captures the decision stream; read it back with Trace.
	Record bool

	trace []PerturbDecision
}

// Trace returns the decisions recorded during the run (Record mode).
func (p *Perturbation) Trace() []PerturbDecision { return p.trace }

// SetPerturbation installs the perturbation mode. It must be called on
// a fresh engine — before any Spawn, Schedule or At — because already
// queued events would otherwise mix perturbed and unperturbed ordering
// keys. Passing nil is a no-op on a fresh engine.
func (e *Engine) SetPerturbation(p *Perturbation) {
	if e.seq != 0 || e.nowLen != 0 || len(e.heap) != 0 {
		panic("sim: SetPerturbation on an engine with scheduled events")
	}
	e.perturb = p
	if p != nil {
		e.rngState = p.Seed
	}
}

// Perturbed reports whether a perturbation mode is installed.
func (e *Engine) Perturbed() bool { return e.perturb != nil }

// rngNext is splitmix64: a tiny, stable PRNG so perturbed schedules
// never depend on the Go version's math/rand internals.
func (e *Engine) rngNext() uint64 {
	e.rngState += 0x9e3779b97f4a7c15
	z := e.rngState
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// perturbDecision produces the decision for allocation index idx,
// either replayed from the script or drawn from the seeded stream.
func (e *Engine) perturbDecision(idx uint64) PerturbDecision {
	p := e.perturb
	var d PerturbDecision
	if p.Script != nil {
		if int(idx) < len(p.Script) {
			d = p.Script[idx]
		}
	} else {
		if p.Reorder {
			d.Prio = uint32(e.rngNext() >> 32)
		}
		if p.MaxJitter > 0 {
			d.Jitter = Time(e.rngNext() % uint64(p.MaxJitter+1))
		}
	}
	if p.Record {
		p.trace = append(p.trace, d)
	}
	return d
}
