package sim

// Schedule perturbation: an opt-in fuzzing mode for the conformance
// harness (internal/conformance). From a seed, the engine randomly
// permutes the firing order of same-timestamp events and injects
// bounded latency jitter into every scheduled event, exposing transport
// implementations to the adversarial orderings a real network produces.
// With no perturbation installed (the default) nothing here runs and
// event dispatch is byte-identical to the committed golden output.
//
// Every perturbed event consumes exactly one PerturbDecision. In Record
// mode the decisions are captured; a captured trace replayed through
// Script reproduces the run exactly, and a shrunk script (decisions
// zeroed back to neutral) replays the minimal perturbation that still
// triggers a failure. Decision k always applies to the k-th allocated
// event, so a script remains meaningful while it is being shrunk even
// though later schedule contents change.

// PerturbDecision records how one scheduled event was perturbed. The
// zero value is neutral: no jitter, FIFO placement among equal
// timestamps (exactly the unperturbed schedule).
type PerturbDecision struct {
	// Jitter is extra delay added to the event's firing time. It is
	// never negative, so causality (an event scheduled from another)
	// is preserved.
	Jitter Time
	// Prio replaces the high bits of the same-timestamp ordering key:
	// among events with equal firing times, lower Prio fires first,
	// ties broken by allocation order. Zero keeps pure FIFO.
	Prio uint32
}

// IsNeutral reports whether the decision leaves the event unperturbed.
func (d PerturbDecision) IsNeutral() bool { return d.Jitter == 0 && d.Prio == 0 }

// Perturbation configures engine schedule fuzzing. Install with
// Engine.SetPerturbation before any event is scheduled.
type Perturbation struct {
	// Seed drives the deterministic decision stream. Equal seeds on
	// equal programs reproduce runs bit-for-bit.
	Seed uint64
	// Reorder randomizes the firing order of same-timestamp events.
	Reorder bool
	// MaxJitter, when positive, adds a uniform extra delay in
	// [0, MaxJitter] to every scheduled event.
	MaxJitter Time
	// Script, when non-nil, replays recorded decisions instead of
	// drawing from the seed: event k gets Script[k], and events past
	// the end get the neutral decision. Used to replay and shrink
	// failing schedules.
	Script []PerturbDecision
	// StreamLens describes a Script recorded on a multi-engine
	// (coupled) world: Script is the concatenation of the per-engine
	// decision streams in engine order, and engine g replays the slice
	// of length StreamLens[g] starting at sum(StreamLens[:g]). Nil
	// means a single stream — engine 0 replays the whole script and
	// every other engine replays neutral decisions. Slices clamp to
	// the script length, so a shrunk (tail-trimmed) flat script stays
	// replayable: trimmed decisions are neutral.
	StreamLens []int
	// Record captures the decision stream; read it back with Trace.
	Record bool

	// traces holds the recorded decisions, one stream per engine. Each
	// engine appends only to its own stream, so recording is safe under
	// the coupled engine's parallel windows.
	traces [][]PerturbDecision
}

// Trace returns the decisions recorded during the run (Record mode),
// flattened in engine-stream order. Pair it with TraceLens to replay
// on a multi-engine world.
func (p *Perturbation) Trace() []PerturbDecision {
	if len(p.traces) == 1 {
		return p.traces[0]
	}
	var out []PerturbDecision
	for _, tr := range p.traces {
		out = append(out, tr...)
	}
	return out
}

// TraceLens returns the per-stream decision counts of a recorded run
// (the StreamLens to replay Trace's flattened script with).
func (p *Perturbation) TraceLens() []int {
	lens := make([]int, len(p.traces))
	for i, tr := range p.traces {
		lens[i] = len(tr)
	}
	return lens
}

// SetPerturbation installs the perturbation mode. It must be called on
// a fresh engine — before any Spawn, Schedule or At — because already
// queued events would otherwise mix perturbed and unperturbed ordering
// keys. Passing nil is a no-op on a fresh engine.
func (e *Engine) SetPerturbation(p *Perturbation) {
	e.setPerturbationStream(p, 0)
}

// setPerturbationStream installs p on the engine as decision stream
// `stream` of a multi-engine world. Stream 0 draws from p.Seed exactly
// (bit-identical to the single-engine mode); higher streams draw from
// a seed mixed with the stream index so sibling engines perturb
// independently. The stream index is the engine's node-group index,
// which is topology-determined — never shard- or worker-dependent — so
// perturbed schedules stay invariant under -shards.
func (e *Engine) setPerturbationStream(p *Perturbation, stream int) {
	if e.seq != 0 || e.nowLen != 0 || len(e.heap) != 0 {
		panic("sim: SetPerturbation on an engine with scheduled events")
	}
	e.perturb = p
	e.perturbStream = stream
	e.perturbScript = nil
	e.perturbReplay = false
	if p == nil {
		return
	}
	e.rngState = streamSeed(p.Seed, stream)
	if p.Record {
		for len(p.traces) <= stream {
			p.traces = append(p.traces, nil)
		}
	}
	if p.Script != nil {
		e.perturbReplay = true
		e.perturbScript = streamScript(p.Script, p.StreamLens, stream)
	}
}

// streamSeed derives the decision-stream seed for one engine: stream 0
// keeps the user seed verbatim, higher streams decorrelate with a
// splitmix-style mix.
func streamSeed(seed uint64, stream int) uint64 {
	if stream == 0 {
		return seed
	}
	z := seed + uint64(stream)*0x9e3779b97f4a7c15
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// streamScript slices the flat replay script down to one engine's
// stream, clamping to the script length (shrunk scripts lose tail
// decisions; the lost ones replay as neutral).
func streamScript(script []PerturbDecision, lens []int, stream int) []PerturbDecision {
	if lens == nil {
		if stream == 0 {
			return script
		}
		return nil
	}
	if stream >= len(lens) {
		return nil
	}
	off := 0
	for g := 0; g < stream; g++ {
		off += lens[g]
	}
	if off >= len(script) {
		return nil
	}
	end := off + lens[stream]
	if end > len(script) {
		end = len(script)
	}
	return script[off:end]
}

// Perturbed reports whether a perturbation mode is installed.
func (e *Engine) Perturbed() bool { return e.perturb != nil }

// rngNext is splitmix64: a tiny, stable PRNG so perturbed schedules
// never depend on the Go version's math/rand internals.
func (e *Engine) rngNext() uint64 {
	e.rngState += 0x9e3779b97f4a7c15
	z := e.rngState
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// perturbDecision produces the decision for allocation index idx,
// either replayed from the engine's stream slice of the script or
// drawn from the stream-seeded generator.
func (e *Engine) perturbDecision(idx uint64) PerturbDecision {
	p := e.perturb
	var d PerturbDecision
	if e.perturbReplay {
		if int(idx) < len(e.perturbScript) {
			d = e.perturbScript[idx]
		}
	} else {
		if p.Reorder {
			d.Prio = uint32(e.rngNext() >> 32)
		}
		if p.MaxJitter > 0 {
			d.Jitter = Time(e.rngNext() % uint64(p.MaxJitter+1))
		}
	}
	if p.Record {
		p.traces[e.perturbStream] = append(p.traces[e.perturbStream], d)
	}
	return d
}
