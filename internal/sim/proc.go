package sim

// Proc is a simulated process: a goroutine that runs only when the
// engine hands it the turn, and parks whenever it waits for simulated
// time to pass or for a condition to be signaled. At most one Proc (or
// the engine loop) executes at any wall-clock instant, so simulated
// code needs no locking and every run is deterministic.
type Proc struct {
	eng     *Engine
	name    string
	resume  chan struct{}
	done    bool
	preWake func() // set during WaitTimeout to discriminate signal vs timeout

	waitIdx int // absolute position in the Cond's waiter queue while parked

	// intrusive membership in the engine's cond-parked list
	isParked               bool
	parkedNext, parkedPrev *Proc
}

// Spawn creates a simulated process running fn. The process starts at
// the current simulated time (after already-queued events at that
// time). Spawn may be called from the engine's context (inside events
// or other processes) or before Run.
func (e *Engine) Spawn(name string, fn func(p *Proc)) *Proc {
	p := &Proc{eng: e, name: name, resume: make(chan struct{})}
	e.live++
	go func() {
		<-p.resume // wait for the first turn
		fn(p)
		p.done = true
		e.live--
		// Final yield: hand the turn straight to the next wakeup when
		// possible, otherwise back to the engine loop.
		if q := e.handoffTarget(); q != nil {
			q.resume <- struct{}{}
		} else {
			e.turn <- struct{}{}
		}
	}()
	e.scheduleWake(0, p)
	return p
}

// dispatch hands the turn to p and blocks until p parks or finishes.
// It must be called from the engine loop (inside an event callback).
func (e *Engine) dispatch(p *Proc) {
	if p.done {
		return
	}
	p.resume <- struct{}{}
	<-e.turn
}

// park yields the turn and blocks until dispatched again. The caller
// must have arranged a wakeup (a scheduled event or a condition
// registration) or the run will end in a deadlock report.
//
// Fast paths: when the globally next event is a pre-bound wakeup, the
// parking process dispatches it directly — consuming its own wakeup
// without any channel operation (Sleep with nothing else pending), or
// handing the turn to the woken process in a single channel handshake
// instead of routing through the engine goroutine.
func (p *Proc) park() {
	e := p.eng
	if q := e.handoffTarget(); q != nil {
		if q == p {
			return // consumed our own wakeup; keep running
		}
		q.resume <- struct{}{}
	} else {
		e.turn <- struct{}{}
	}
	<-p.resume
}

// Name returns the process name given at Spawn.
func (p *Proc) Name() string { return p.name }

// Engine returns the engine this process belongs to.
func (p *Proc) Engine() *Engine { return p.eng }

// Now returns the current simulated time.
func (p *Proc) Now() Time { return p.eng.now }

// Sleep advances this process's local view of time by d: it parks and
// resumes once the simulated clock has advanced past d. Sleep(0) yields
// the turn (other events at the same timestamp run first). The wakeup
// is a pre-bound pooled event: no closure, no allocation.
func (p *Proc) Sleep(d Time) {
	p.eng.scheduleWake(d, p)
	p.park()
}

// Cond is a condition variable for simulated processes. Waiters park;
// Signal and Broadcast schedule wakeups at the current simulated time.
// All operations must happen inside the engine's context.
//
// The waiter queue is FIFO (Signal wakes the longest-waiting process —
// this ordering is a determinism invariant) with O(1) amortized
// removal: timed-out waiters are nil-ed in place via their recorded
// queue position rather than spliced out, and the front is compacted
// as it drains. A swap-remove would be O(1) too but would reorder
// waiters and change simulated wake order.
type Cond struct {
	eng     *Engine
	waiters []*Proc
	head    int // index of the first live entry in waiters
	off     int // absolute position of waiters[0] (grows with compaction)
	n       int // live (non-removed) waiters
}

// NewCond returns a condition variable bound to e.
func NewCond(e *Engine) *Cond { return &Cond{eng: e} }

// push appends p to the waiter queue, recording its absolute position
// for O(1) removal.
func (c *Cond) push(p *Proc) {
	p.waitIdx = c.off + len(c.waiters)
	c.waiters = append(c.waiters, p)
	c.n++
}

// popFront returns the longest-waiting live waiter, or nil.
func (c *Cond) popFront() *Proc {
	for c.head < len(c.waiters) {
		p := c.waiters[c.head]
		c.waiters[c.head] = nil
		c.head++
		if p != nil {
			c.compact()
			c.n--
			return p
		}
	}
	c.compact()
	return nil
}

// compact reclaims the drained front so the queue stays O(live)
// amortized even when it never fully empties.
func (c *Cond) compact() {
	if c.head == len(c.waiters) {
		c.off += c.head
		c.head = 0
		c.waiters = c.waiters[:0]
	} else if c.head > 32 && c.head*2 >= len(c.waiters) {
		kept := copy(c.waiters, c.waiters[c.head:])
		c.off += c.head
		c.head = 0
		c.waiters = c.waiters[:kept]
	}
}

// remove drops p from the waiter queue in O(1) via its recorded
// position (used by the WaitTimeout timeout path).
func (c *Cond) remove(p *Proc) {
	i := p.waitIdx - c.off
	if i >= c.head && i < len(c.waiters) && c.waiters[i] == p {
		c.waiters[i] = nil
		c.n--
	}
}

// Wait parks p until the condition is signaled. As with sync.Cond, the
// awakened process must re-check its predicate.
func (c *Cond) Wait(p *Proc) {
	if p.eng != c.eng {
		panic("sim: Cond.Wait with process from a different engine")
	}
	c.push(p)
	c.eng.addParked(p)
	p.park()
}

// WaitTimeout parks p until the condition is signaled or d elapses,
// whichever comes first. It reports true if the wakeup came from a
// signal and false on timeout.
func (c *Cond) WaitTimeout(p *Proc, d Time) bool {
	signaled := false
	fired := false
	c.push(p)
	c.eng.addParked(p)
	var timer Event
	timer = c.eng.Schedule(d, func() {
		if fired {
			return
		}
		fired = true
		c.remove(p)
		c.eng.removeParked(p)
		c.eng.dispatch(p)
	})
	p.preWake = func() {
		if !fired {
			fired = true
			signaled = true
			timer.Cancel()
		}
	}
	p.park()
	p.preWake = nil
	return signaled
}

// Signal wakes the longest-waiting process, if any. The wakeup is a
// pre-bound pooled event at the current time: no closure, no
// allocation.
func (c *Cond) Signal() {
	p := c.popFront()
	if p == nil {
		return
	}
	c.eng.removeParked(p)
	c.eng.scheduleWake(0, p)
}

// Broadcast wakes every waiting process, in FIFO order.
func (c *Cond) Broadcast() {
	for {
		p := c.popFront()
		if p == nil {
			return
		}
		c.eng.removeParked(p)
		c.eng.scheduleWake(0, p)
	}
}

// WaitFor blocks p until pred() is true, re-checking each time c is
// signaled. pred must be cheap and side-effect free.
func (c *Cond) WaitFor(p *Proc, pred func() bool) {
	for !pred() {
		c.Wait(p)
	}
}

// NumWaiters reports how many processes are currently parked on c.
func (c *Cond) NumWaiters() int { return c.n }
