package sim

// Proc is a simulated process: a goroutine that runs only when the
// engine hands it the turn, and parks whenever it waits for simulated
// time to pass or for a condition to be signaled. At most one Proc (or
// the engine loop) executes at any wall-clock instant, so simulated
// code needs no locking and every run is deterministic.
type Proc struct {
	eng     *Engine
	name    string
	resume  chan struct{}
	done    bool
	preWake func() // set during WaitTimeout to discriminate signal vs timeout
}

// Spawn creates a simulated process running fn. The process starts at
// the current simulated time (after already-queued events at that
// time). Spawn may be called from the engine's context (inside events
// or other processes) or before Run.
func (e *Engine) Spawn(name string, fn func(p *Proc)) *Proc {
	p := &Proc{eng: e, name: name, resume: make(chan struct{})}
	e.live++
	go func() {
		<-p.resume // wait for the first turn
		fn(p)
		p.done = true
		e.live--
		e.turn <- struct{}{} // final yield
	}()
	e.Schedule(0, func() { e.dispatch(p) })
	return p
}

// dispatch hands the turn to p and blocks until p parks or finishes.
// It must be called from the engine loop (inside an event callback).
func (e *Engine) dispatch(p *Proc) {
	if p.done {
		return
	}
	prev := e.running
	e.running = p
	p.resume <- struct{}{}
	<-e.turn
	e.running = prev
}

// park yields the turn back to the engine and blocks until dispatched
// again. The caller must have arranged a wakeup (a scheduled event or
// a condition registration) or the run will end in a deadlock report.
func (p *Proc) park() {
	p.eng.turn <- struct{}{}
	<-p.resume
}

// Name returns the process name given at Spawn.
func (p *Proc) Name() string { return p.name }

// Engine returns the engine this process belongs to.
func (p *Proc) Engine() *Engine { return p.eng }

// Now returns the current simulated time.
func (p *Proc) Now() Time { return p.eng.now }

// Sleep advances this process's local view of time by d: it parks and
// resumes once the simulated clock has advanced past d. Sleep(0) yields
// the turn (other events at the same timestamp run first).
func (p *Proc) Sleep(d Time) {
	if d < 0 {
		d = 0
	}
	p.eng.Schedule(d, func() { p.eng.dispatch(p) })
	p.park()
}

// Cond is a condition variable for simulated processes. Waiters park;
// Signal and Broadcast schedule wakeups at the current simulated time.
// All operations must happen inside the engine's context.
type Cond struct {
	eng     *Engine
	waiters []*Proc
}

// NewCond returns a condition variable bound to e.
func NewCond(e *Engine) *Cond { return &Cond{eng: e} }

// Wait parks p until the condition is signaled. As with sync.Cond, the
// awakened process must re-check its predicate.
func (c *Cond) Wait(p *Proc) {
	if p.eng != c.eng {
		panic("sim: Cond.Wait with process from a different engine")
	}
	c.waiters = append(c.waiters, p)
	c.eng.parked[p] = struct{}{}
	p.park()
}

// WaitTimeout parks p until the condition is signaled or d elapses,
// whichever comes first. It reports true if the wakeup came from a
// signal and false on timeout.
func (c *Cond) WaitTimeout(p *Proc, d Time) bool {
	signaled := false
	fired := false
	c.waiters = append(c.waiters, p)
	c.eng.parked[p] = struct{}{}
	var timer *Event
	timer = c.eng.Schedule(d, func() {
		if fired {
			return
		}
		fired = true
		c.remove(p)
		delete(c.eng.parked, p)
		c.eng.dispatch(p)
	})
	p.preWake = func() {
		if !fired {
			fired = true
			signaled = true
			timer.Cancel()
		}
	}
	p.park()
	p.preWake = nil
	return signaled
}

func (c *Cond) remove(p *Proc) {
	for i, w := range c.waiters {
		if w == p {
			c.waiters = append(c.waiters[:i], c.waiters[i+1:]...)
			return
		}
	}
}

// Signal wakes the longest-waiting process, if any.
func (c *Cond) Signal() {
	if len(c.waiters) == 0 {
		return
	}
	p := c.waiters[0]
	c.waiters = c.waiters[1:]
	delete(c.eng.parked, p)
	c.eng.Schedule(0, func() {
		if p.preWake != nil {
			p.preWake()
		}
		c.eng.dispatch(p)
	})
}

// Broadcast wakes every waiting process, in FIFO order.
func (c *Cond) Broadcast() {
	ws := c.waiters
	c.waiters = nil
	for _, p := range ws {
		delete(c.eng.parked, p)
		q := p
		c.eng.Schedule(0, func() {
			if q.preWake != nil {
				q.preWake()
			}
			c.eng.dispatch(q)
		})
	}
}

// WaitFor blocks p until pred() is true, re-checking each time c is
// signaled. pred must be cheap and side-effect free.
func (c *Cond) WaitFor(p *Proc, pred func() bool) {
	for !pred() {
		c.Wait(p)
	}
}

// NumWaiters reports how many processes are currently parked on c.
func (c *Cond) NumWaiters() int { return len(c.waiters) }
