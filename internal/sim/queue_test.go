package sim

// Tests for the engine's event-queue internals: a property test that
// replays randomized schedules on both the production queue (4-ary
// heap + now-queue ring + pooled nodes) and a reference
// container/heap implementation of the documented semantics, and
// pool-recycling tests for the generation-counter Cancel guarantees.

import (
	"container/heap"
	"testing"
)

// --- reference implementation (the documented (at, seq) FIFO order) ---

type refEvent struct {
	at       Time
	seq      uint64
	fn       func()
	canceled bool
}

type refHeap []*refEvent

func (h refHeap) Len() int { return len(h) }
func (h refHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h refHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *refHeap) Push(x any)   { *h = append(*h, x.(*refEvent)) }
func (h *refHeap) Pop() any     { old := *h; n := len(old); ev := old[n-1]; *h = old[:n-1]; return ev }

type refEngine struct {
	h   refHeap
	now Time
	seq uint64
}

func (r *refEngine) schedule(d Time, fn func()) func() {
	if d < 0 {
		d = 0
	}
	ev := &refEvent{at: r.now + d, seq: r.seq, fn: fn}
	r.seq++
	heap.Push(&r.h, ev)
	return func() { ev.canceled = true }
}

func (r *refEngine) run() {
	for r.h.Len() > 0 {
		ev := heap.Pop(&r.h).(*refEvent)
		if ev.canceled {
			continue
		}
		if ev.at > r.now {
			r.now = ev.at
		}
		ev.fn()
	}
}

// --- schedule-script driver ---

// scheduler abstracts the production engine and the reference so one
// script drives both.
type scheduler interface {
	schedule(d Time, fn func()) (cancel func())
	run()
	currentTime() Time
}

type simSched struct{ e *Engine }

func (s simSched) schedule(d Time, fn func()) func() {
	ev := s.e.Schedule(d, fn)
	return ev.Cancel
}
func (s simSched) run()              { _ = s.e.Run() }
func (s simSched) currentTime() Time { return s.e.Now() }

type refSched struct{ r *refEngine }

func (s refSched) schedule(d Time, fn func()) func() { return s.r.schedule(d, fn) }
func (s refSched) run()                              { s.r.run() }
func (s refSched) currentTime() Time                 { return s.r.now }

// mix is a deterministic per-(seed,id,salt) hash so both replicas draw
// identical "random" choices regardless of internal state.
func mix(seed, id, salt int64) int64 {
	x := uint64(seed)*0x9E3779B97F4A7C15 ^ uint64(id)*0xBF58476D1CE4E5B9 ^ uint64(salt)*0x94D049BB133111EB
	x ^= x >> 31
	x *= 0xBF58476D1CE4E5B9
	x ^= x >> 27
	return int64(x >> 1)
}

// playScript schedules `roots` root events with pseudorandom delays;
// each fired event may spawn children (recursively, bounded depth,
// many at delay zero to stress the now-queue) and may cancel a
// pseudorandomly chosen earlier event. Returns the firing order of
// event ids and the final clock.
func playScript(s scheduler, seed int64, roots int) ([]int, Time) {
	var order []int
	cancels := make(map[int]func())
	nextID := 0
	var spawn func(id, depth int)
	spawn = func(id, depth int) {
		// Half the delays are zero so equal-timestamp FIFO (the
		// now-queue path) is exercised as hard as the time heap.
		delay := Time(0)
		if mix(seed, int64(id), 1)%2 == 0 {
			delay = Time(mix(seed, int64(id), 2) % 40)
		}
		cancels[id] = s.schedule(delay, func() {
			order = append(order, id)
			if depth < 4 {
				n := int(mix(seed, int64(id), 3) % 3)
				for k := 0; k < n; k++ {
					cid := nextID
					nextID++
					spawn(cid, depth+1)
				}
			}
			if mix(seed, int64(id), 4)%4 == 0 && nextID > 0 {
				target := int(mix(seed, int64(id), 5) % int64(nextID))
				if c := cancels[target]; c != nil {
					c() // may hit pending, fired, or already-canceled events
				}
			}
		})
	}
	for i := 0; i < roots; i++ {
		cid := nextID
		nextID++
		spawn(cid, 0)
	}
	s.run()
	return order, s.currentTime()
}

func TestQueueMatchesReferenceHeap(t *testing.T) {
	for seed := int64(1); seed <= 40; seed++ {
		gotOrder, gotNow := playScript(simSched{NewEngine()}, seed, 30)
		wantOrder, wantNow := playScript(refSched{&refEngine{}}, seed, 30)
		if len(gotOrder) != len(wantOrder) {
			t.Fatalf("seed %d: fired %d events, reference fired %d", seed, len(gotOrder), len(wantOrder))
		}
		for i := range wantOrder {
			if gotOrder[i] != wantOrder[i] {
				t.Fatalf("seed %d: firing order diverges at %d: engine %v vs reference %v",
					seed, i, gotOrder[i], wantOrder[i])
			}
		}
		if gotNow != wantNow {
			t.Fatalf("seed %d: final clock %v, reference %v", seed, gotNow, wantNow)
		}
	}
}

// --- event-pool recycling ---

// TestEventPoolCancelAfterFire: canceling a handle whose event already
// fired (and whose slot has been recycled by a new event) must not
// cancel the new occupant.
func TestEventPoolCancelAfterFire(t *testing.T) {
	e := NewEngine()
	fired1 := false
	ev := e.Schedule(5, func() { fired1 = true })
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if !fired1 {
		t.Fatal("first event did not fire")
	}
	// The pool now holds the recycled slot; this reuses it.
	fired2 := false
	ev2 := e.Schedule(5, func() { fired2 = true })
	if ev2.slot != ev.slot {
		t.Fatalf("expected slot reuse (got %d, want %d): pool not recycling", ev2.slot, ev.slot)
	}
	ev.Cancel() // stale handle: must be a no-op for the new occupant
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if !fired2 {
		t.Fatal("stale Cancel killed the recycled slot's new event")
	}
	if ev2.Canceled() {
		t.Fatal("new handle reports canceled")
	}
}

// TestEventPoolCancelAfterRecycle: canceling a handle that was already
// canceled, after its slot was recycled, must also be a no-op — and
// the canceled handle keeps reporting its own state.
func TestEventPoolCancelAfterRecycle(t *testing.T) {
	e := NewEngine()
	ev := e.Schedule(5, func() { t.Error("canceled event fired") })
	ev.Cancel()
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	fired := false
	ev2 := e.Schedule(7, func() { fired = true })
	if ev2.slot != ev.slot {
		t.Fatalf("expected slot reuse (got %d, want %d)", ev2.slot, ev.slot)
	}
	ev.Cancel() // second cancel through a stale handle
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if !fired {
		t.Fatal("stale double-Cancel killed the recycled slot's new event")
	}
	if !ev.Canceled() {
		t.Fatal("original handle lost its canceled state")
	}
	if ev.At() != 5 || ev2.At() != 7 {
		t.Fatalf("handles lost their times: %v, %v", ev.At(), ev2.At())
	}
}

// TestEventZeroValueCancel: the zero Event is inert.
func TestEventZeroValueCancel(t *testing.T) {
	var ev Event
	ev.Cancel()
	if !ev.Canceled() {
		t.Fatal("zero Event should report canceled after Cancel")
	}
}

// TestPoolSteadyState: a long Sleep/Signal run must keep the node pool
// at its steady-state size (recycling, not growing).
func TestPoolSteadyState(t *testing.T) {
	e := NewEngine()
	c := NewCond(e)
	const rounds = 10_000
	e.Spawn("pong", func(p *Proc) {
		for i := 0; i < rounds; i++ {
			c.Wait(p)
		}
	})
	e.Spawn("ping", func(p *Proc) {
		for i := 0; i < rounds; i++ {
			c.Signal()
			p.Sleep(1)
		}
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if n := len(e.nodes); n > 16 {
		t.Fatalf("event pool grew to %d nodes over %d rounds; recycling is broken", n, rounds)
	}
}
