package sim

// Sharded conservative-lookahead engine (DESIGN.md §11).
//
// ShardedEngine is the parallel counterpart of Engine for workloads
// whose per-rank state is shard-confined: ranks are partitioned
// across per-core shards, each shard owns a private event heap, and
// shards advance independently inside conservative windows bounded by
// the fabric lookahead (YAWNS-style: every window executes events in
// [minNext, minNext+lookahead), so a cross-shard message emitted
// inside the window — which must be timestamped at least `lookahead`
// in the future — can never arrive in the sender's own window).
// Cross-shard events travel through bounded per-(src,dst) mailboxes
// that are drained at the window barrier.
//
// Determinism does not come from the barrier protocol but from the
// event keys: every event is stamped (at, key) where
// key = senderRank<<counterBits | senderCounter, drawn from the
// *originating* rank's monotone counter at emission time. Because a
// rank's emissions depend only on its own executed prefix, the key
// stream — and hence the total order (at, key) and every per-rank
// execution sequence — is invariant under the shard count. The
// per-rank digests folded during execution (Digest, RankDigest)
// certify exactly this: byte-equal digests at -shards 1 and -shards N
// mean the shard split did not change a single event's order.
//
// ShardedEngine serves handler-style workloads (PHOLD, simbench)
// whose per-rank state is a value passed back to a RankHandler. The
// coupled mpi/shmem/comm stacks — which need blocking processes and
// condition variables — run on the process-capable sibling
// CoupledEngine (coupled.go), which applies the same window protocol
// and event-key total order over per-node-group sequential Engines;
// see internal/runtime for how the -shards knob is surfaced there.

import (
	"errors"
	"fmt"
	"math"
	"time"
)

const (
	// counterBits is the per-rank stream-counter width inside an event
	// key; the rank id occupies the bits above it.
	counterBits = 40
	counterMask = (1 << counterBits) - 1
	// maxShardRanks bounds the rank id so rank<<counterBits cannot
	// overflow the 64-bit key.
	maxShardRanks = 1 << (64 - counterBits)

	timeMax = Time(math.MaxInt64)

	// DefaultMailboxCap bounds each (src shard, dst shard) mailbox: the
	// number of cross-shard events one shard may emit toward another
	// within a single window. Exceeding it is a hard error (raise with
	// SetMailboxCap), keeping worst-case memory proportional to
	// shards² × cap instead of unbounded.
	DefaultMailboxCap = 1 << 20
)

// ShardEvent is one scheduled occurrence delivered to a RankHandler:
// the timestamp, an application-defined kind, and two payload words.
// Larger payloads belong in rank-confined state owned by the sender
// or receiver; the event carries only what must cross shards.
type ShardEvent struct {
	At   Time
	Kind uint32
	A, B uint64
}

// RankHandler is the per-event callback of a ShardedEngine. It runs
// on the shard owning ctx.Self() and must touch only that rank's
// state (plus immutable shared data); all inter-rank influence must
// flow through ctx.Send. Violating rank confinement voids both the
// determinism guarantee and the data-race freedom of the engine.
type RankHandler func(ctx *ShardCtx, ev ShardEvent)

// shardEvt is the internal event representation: the public fields
// plus the (target rank, stream key) pair that orders it.
type shardEvt struct {
	at   Time
	key  uint64
	rank int32
	kind uint32
	a, b uint64
}

func evLess(x, y shardEvt) bool {
	return x.at < y.at || (x.at == y.at && x.key < y.key)
}

// ShardStats is one shard's execution summary.
type ShardStats struct {
	// Ranks is the number of ranks placed on the shard.
	Ranks int
	// Executed is the number of events the shard dispatched.
	Executed int64
	// Busy is the wall-clock time the shard's worker spent executing
	// events (excluding barrier waits). On a single-core runner the
	// sum of Busy over shards approaches the total wall time; on a
	// multi-core runner wall time approaches max(Busy).
	Busy time.Duration
}

// shard is one partition of the engine: a private 4-ary event heap
// plus the context handed to handlers executing on it.
type shard struct {
	idx      int
	heap     []shardEvt
	minAt    Time // heap-min timestamp after the last drain (timeMax when empty)
	executed int64
	nranks   int
	busy     time.Duration
	err      error
	ctx      ShardCtx
}

// ShardedEngine runs a rank-partitioned discrete-event simulation
// under conservative-lookahead synchronization. Construct with
// NewSharded, seed initial events with Seed, then Run exactly once.
type ShardedEngine struct {
	ranks     int
	lookahead Time
	handler   RankHandler

	shardOf []int32  // rank -> owning shard
	counter []uint64 // per-rank stream counters (owner-shard confined)
	digest  []uint64 // per-rank event-order digests (owner-shard confined)

	sh   []*shard
	mail [][]shardEvt // mail[src*K+dst]: events emitted by shard src for shard dst this window
	mcap int

	w1         Time // current window bound (exclusive)
	eventLimit int64
	started    bool
	finished   bool
	err        error

	start []chan uint8 // per-shard phase commands
	done  chan int     // shard completion notifications
}

// phase commands sent to shard workers.
const (
	cmdExec uint8 = iota + 1
	cmdDrain
	cmdQuit
)

// NewSharded builds an engine with `ranks` ranks partitioned over
// `shards` shards under the given lookahead bound. Lookahead must be
// positive when shards > 1: it is the minimum timestamp increment of
// a cross-rank Send, normally the fabric's minimum link latency
// (netsim.Network.LookaheadBound). Placement defaults to contiguous
// blocks (BlockPlacement); override with SetPlacement before seeding.
func NewSharded(ranks, shards int, lookahead Time, h RankHandler) (*ShardedEngine, error) {
	if ranks < 1 {
		return nil, fmt.Errorf("sim: sharded engine needs >= 1 rank, got %d", ranks)
	}
	if ranks >= maxShardRanks {
		return nil, fmt.Errorf("sim: sharded engine supports < %d ranks, got %d", maxShardRanks, ranks)
	}
	if shards < 1 {
		return nil, fmt.Errorf("sim: sharded engine needs >= 1 shard, got %d", shards)
	}
	if h == nil {
		return nil, errors.New("sim: sharded engine needs a rank handler")
	}
	if shards > ranks {
		shards = ranks
	}
	if lookahead <= 0 && shards > 1 {
		return nil, fmt.Errorf("sim: %d shards need positive lookahead, got %v", shards, lookahead)
	}
	e := &ShardedEngine{
		ranks:     ranks,
		lookahead: lookahead,
		handler:   h,
		shardOf:   make([]int32, ranks),
		counter:   make([]uint64, ranks),
		digest:    make([]uint64, ranks),
		mail:      make([][]shardEvt, shards*shards),
		mcap:      DefaultMailboxCap,
		done:      make(chan int, shards),
	}
	for s := 0; s < shards; s++ {
		sh := &shard{idx: s, minAt: timeMax}
		sh.ctx = ShardCtx{e: e, shard: int32(s)}
		e.sh = append(e.sh, sh)
		e.start = append(e.start, make(chan uint8, 1))
	}
	e.place(BlockPlacement(ranks, shards))
	return e, nil
}

// BlockPlacement returns the default rank→shard map: contiguous
// near-equal blocks (rank r goes to shard r*shards/ranks), which
// keeps neighbor-heavy traffic shard-local under block-decomposed
// workloads. internal/runtime uses the same function so engine-level
// and world-level placement agree.
func BlockPlacement(ranks, shards int) func(rank int) int {
	if shards > ranks {
		shards = ranks
	}
	return func(rank int) int { return rank * shards / ranks }
}

// SetPlacement overrides the rank→shard map. Must be called before
// any Seed or Run; every rank must map into [0, Shards()).
func (e *ShardedEngine) SetPlacement(f func(rank int) int) error {
	if e.started || e.seeded() {
		return errors.New("sim: SetPlacement after Seed or Run")
	}
	return e.place(f)
}

func (e *ShardedEngine) place(f func(rank int) int) error {
	counts := make([]int, len(e.sh))
	for r := 0; r < e.ranks; r++ {
		s := f(r)
		if s < 0 || s >= len(e.sh) {
			return fmt.Errorf("sim: placement maps rank %d to shard %d of %d", r, s, len(e.sh))
		}
		e.shardOf[r] = int32(s)
		counts[s]++
	}
	for i, sh := range e.sh {
		sh.nranks = counts[i]
	}
	return nil
}

func (e *ShardedEngine) seeded() bool {
	for _, sh := range e.sh {
		if len(sh.heap) > 0 {
			return true
		}
	}
	return false
}

// SetMailboxCap bounds each per-(src,dst) shard mailbox to n events
// per window (default DefaultMailboxCap). Exceeding the bound aborts
// the run with an error rather than growing without limit.
func (e *ShardedEngine) SetMailboxCap(n int) {
	if n < 1 {
		panic(fmt.Sprintf("sim: mailbox cap must be >= 1, got %d", n))
	}
	e.mcap = n
}

// SetEventLimit aborts Run with an error after roughly n dispatched
// events (checked at window barriers) — a runaway guard for tests.
func (e *ShardedEngine) SetEventLimit(n int64) { e.eventLimit = n }

// Shards returns the shard count (after clamping to the rank count).
func (e *ShardedEngine) Shards() int { return len(e.sh) }

// Ranks returns the rank count.
func (e *ShardedEngine) Ranks() int { return e.ranks }

// Lookahead returns the lookahead bound.
func (e *ShardedEngine) Lookahead() Time { return e.lookahead }

// ShardOf returns the shard owning a rank.
func (e *ShardedEngine) ShardOf(rank int) int { return int(e.shardOf[rank]) }

// allocKey draws the next stream key from rank's counter. Emission
// order within a rank is deterministic, so the key stream — and with
// it the (at, key) total order — is shard-count-invariant.
func (e *ShardedEngine) allocKey(rank int32) uint64 {
	c := e.counter[rank]
	if c > counterMask {
		panic(fmt.Sprintf("sim: rank %d exhausted its %d-bit event counter", rank, counterBits))
	}
	e.counter[rank] = c + 1
	return uint64(rank)<<counterBits | c
}

// Seed schedules an initial event for rank at the given time, keyed
// from the rank's own stream. Only valid before Run.
func (e *ShardedEngine) Seed(rank int, at Time, kind uint32, a, b uint64) {
	if e.started {
		panic("sim: Seed after Run")
	}
	if rank < 0 || rank >= e.ranks {
		panic(fmt.Sprintf("sim: Seed rank %d out of range [0,%d)", rank, e.ranks))
	}
	if at < 0 {
		panic(fmt.Sprintf("sim: Seed at negative time %v", at))
	}
	r := int32(rank)
	e.sh[e.shardOf[r]].push(shardEvt{at: at, key: e.allocKey(r), rank: r, kind: kind, a: a, b: b})
}

// ShardCtx is the handler's view of the engine while executing one
// event: the current rank, its clock, and the emission primitives.
// A ShardCtx is only valid for the duration of the handler call.
type ShardCtx struct {
	e     *ShardedEngine
	shard int32
	rank  int32
	now   Time
}

// Now returns the executing event's timestamp.
func (c *ShardCtx) Now() Time { return c.now }

// Self returns the executing rank.
func (c *ShardCtx) Self() int { return int(c.rank) }

// After schedules a follow-up event for the executing rank itself,
// delay >= 0 after Now.
func (c *ShardCtx) After(delay Time, kind uint32, a, b uint64) {
	if delay < 0 {
		c.fail(fmt.Errorf("sim: rank %d After with negative delay %v", c.rank, delay))
		return
	}
	sh := c.e.sh[c.shard]
	sh.push(shardEvt{at: c.now + delay, key: c.e.allocKey(c.rank), rank: c.rank, kind: kind, a: a, b: b})
}

// Send schedules an event at rank `to`, delay after Now. Cross-rank
// sends must respect the lookahead bound (delay >= Lookahead)
// regardless of whether the destination shares the sender's shard —
// the uniform rule keeps behavior, and any bound violations,
// identical at every shard count. Same-shard destinations go straight
// into the local heap; cross-shard destinations ride the bounded
// mailbox and are delivered at the next window barrier (which the
// lookahead bound guarantees is early enough).
func (c *ShardCtx) Send(to int, delay Time, kind uint32, a, b uint64) {
	e := c.e
	if to < 0 || to >= e.ranks {
		c.fail(fmt.Errorf("sim: rank %d sending to invalid rank %d", c.rank, to))
		return
	}
	if int32(to) == c.rank {
		c.After(delay, kind, a, b)
		return
	}
	if delay < e.lookahead {
		c.fail(fmt.Errorf("sim: rank %d sending to rank %d with delay %v below lookahead %v",
			c.rank, to, delay, e.lookahead))
		return
	}
	ev := shardEvt{at: c.now + delay, key: e.allocKey(c.rank), rank: int32(to), kind: kind, a: a, b: b}
	dst := e.shardOf[to]
	if dst == c.shard {
		e.sh[c.shard].push(ev)
		return
	}
	box := &e.mail[int(c.shard)*len(e.sh)+int(dst)]
	if len(*box) >= e.mcap {
		c.fail(fmt.Errorf("sim: mailbox shard %d -> %d over capacity %d (raise SetMailboxCap)",
			c.shard, dst, e.mcap))
		return
	}
	*box = append(*box, ev)
}

// fail records the first handler error on the executing shard; the
// window aborts at the next event boundary and Run surfaces it.
func (c *ShardCtx) fail(err error) {
	sh := c.e.sh[c.shard]
	if sh.err == nil {
		sh.err = err
	}
}

// push inserts into the shard's 4-ary min-heap ordered by (at, key).
func (sh *shard) push(ev shardEvt) {
	h := append(sh.heap, ev)
	i := len(h) - 1
	for i > 0 {
		p := (i - 1) >> 2
		if !evLess(h[i], h[p]) {
			break
		}
		h[i], h[p] = h[p], h[i]
		i = p
	}
	sh.heap = h
}

// pop removes and returns the heap minimum.
func (sh *shard) pop() shardEvt {
	h := sh.heap
	min := h[0]
	last := len(h) - 1
	h[0] = h[last]
	h = h[:last]
	sh.heap = h
	i := 0
	for {
		c := i<<2 + 1
		if c >= last {
			break
		}
		m := c
		end := c + 4
		if end > last {
			end = last
		}
		for j := c + 1; j < end; j++ {
			if evLess(h[j], h[m]) {
				m = j
			}
		}
		if !evLess(h[m], h[i]) {
			break
		}
		h[i], h[m] = h[m], h[i]
		i = m
	}
	return min
}

// mix folds one word into an order-sensitive digest (FNV-style: xor
// then multiply by the 64-bit FNV prime).
// fnvOffsetBasis seeds every event-order digest (FNV-1a offset basis).
const fnvOffsetBasis uint64 = 1469598103934665603

func mixDigest(h, v uint64) uint64 { return (h ^ v) * 1099511628211 }

// exec runs one window: pop and dispatch every event with at < w1,
// folding each into its rank's digest.
func (e *ShardedEngine) exec(sh *shard, w1 Time) {
	t0 := time.Now()
	ctx := &sh.ctx
	for len(sh.heap) > 0 && sh.err == nil {
		if sh.heap[0].at >= w1 {
			break
		}
		ev := sh.pop()
		ctx.now = ev.at
		ctx.rank = ev.rank
		d := e.digest[ev.rank]
		d = mixDigest(d, uint64(ev.at))
		d = mixDigest(d, ev.key)
		d = mixDigest(d, uint64(ev.kind))
		d = mixDigest(d, ev.a)
		d = mixDigest(d, ev.b)
		e.digest[ev.rank] = d
		sh.executed++
		e.handler(ctx, ShardEvent{At: ev.at, Kind: ev.kind, A: ev.a, B: ev.b})
	}
	sh.busy += time.Since(t0)
}

// drain moves every mailbox addressed to the shard into its heap and
// recomputes the heap-min horizon for the next window bound.
func (e *ShardedEngine) drain(sh *shard) {
	k := len(e.sh)
	for src := 0; src < k; src++ {
		box := &e.mail[src*k+sh.idx]
		for _, ev := range *box {
			sh.push(ev)
		}
		*box = (*box)[:0]
	}
	if len(sh.heap) > 0 {
		sh.minAt = sh.heap[0].at
	} else {
		sh.minAt = timeMax
	}
}

// worker is one shard's persistent goroutine: it executes phase
// commands until told to quit. All shared-state handoff happens
// through the start/done channel barrier.
func (e *ShardedEngine) worker(sh *shard) {
	for cmd := range e.start[sh.idx] {
		switch cmd {
		case cmdExec:
			e.exec(sh, e.w1)
		case cmdDrain:
			e.drain(sh)
		case cmdQuit:
			e.done <- sh.idx
			return
		}
		e.done <- sh.idx
	}
}

// barrier broadcasts one phase command and waits for every shard.
func (e *ShardedEngine) barrier(cmd uint8) {
	for _, ch := range e.start {
		ch <- cmd
	}
	for range e.sh {
		<-e.done
	}
}

// Run drives the simulation to completion: repeated conservative
// windows of parallel execution and mailbox drains until every heap
// and mailbox is empty. Run may be called once; it returns the first
// handler/bound violation, or an ErrShardEventLimit-wrapped error if
// the event limit tripped.
func (e *ShardedEngine) Run() error {
	if e.started {
		return errors.New("sim: ShardedEngine.Run called twice")
	}
	e.started = true
	for _, sh := range e.sh {
		go e.worker(sh)
	}
	// Initial horizons come straight from the seeded heaps.
	for _, sh := range e.sh {
		if len(sh.heap) > 0 {
			sh.minAt = sh.heap[0].at
		} else {
			sh.minAt = timeMax
		}
	}
	for e.err == nil {
		minNext := timeMax
		for _, sh := range e.sh {
			if sh.minAt < minNext {
				minNext = sh.minAt
			}
		}
		if minNext == timeMax {
			break // every heap empty, every mailbox drained: done
		}
		if len(e.sh) == 1 || minNext > timeMax-e.lookahead {
			// A single shard needs no conservative bound: one window
			// runs the whole simulation in global (at, key) order.
			// (The overflow guard near timeMax degrades to the same.)
			e.w1 = timeMax
		} else {
			e.w1 = minNext + e.lookahead
		}
		e.barrier(cmdExec)
		e.barrier(cmdDrain)
		for _, sh := range e.sh {
			if sh.err != nil && e.err == nil {
				e.err = sh.err
			}
		}
		if e.eventLimit > 0 && e.Executed() > e.eventLimit {
			if e.err == nil {
				e.err = fmt.Errorf("sim: sharded engine exceeded event limit %d", e.eventLimit)
			}
		}
	}
	e.barrier(cmdQuit)
	e.finished = true
	return e.err
}

// Executed returns the total number of dispatched events.
func (e *ShardedEngine) Executed() int64 {
	var n int64
	for _, sh := range e.sh {
		n += sh.executed
	}
	return n
}

// RankDigest returns rank's event-order digest: an order-sensitive
// fold of every event the rank executed. Identical digests across
// shard counts certify identical per-rank execution sequences.
func (e *ShardedEngine) RankDigest(rank int) uint64 { return e.digest[rank] }

// Digest combines every rank digest in rank order into one
// shard-count-invariant summary of the full execution.
func (e *ShardedEngine) Digest() uint64 {
	h := fnvOffsetBasis
	for _, d := range e.digest {
		h = mixDigest(h, d)
	}
	return h
}

// ShardStats returns per-shard execution summaries in shard order.
func (e *ShardedEngine) ShardStats() []ShardStats {
	out := make([]ShardStats, len(e.sh))
	for i, sh := range e.sh {
		out[i] = ShardStats{Ranks: sh.nranks, Executed: sh.executed, Busy: sh.busy}
	}
	return out
}

// BusyWall summarizes parallel efficiency for a run that took `wall`
// of wall-clock time: the summed per-shard busy time divided by wall.
// On an N-core runner an ideally scaling workload approaches N; on a
// single-core runner it approaches 1 from below (the gap is barrier
// and scheduling overhead), which is why BENCH_sim.json records this
// ratio alongside events/sec when the runner cannot demonstrate
// wall-clock speedup.
func (e *ShardedEngine) BusyWall(wall time.Duration) float64 {
	if wall <= 0 {
		return 0
	}
	var busy time.Duration
	for _, sh := range e.sh {
		busy += sh.busy
	}
	return float64(busy) / float64(wall)
}
