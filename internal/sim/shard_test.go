package sim_test

// Tests for the sharded conservative-lookahead engine: the
// shard-count-invariance property (digests and full per-rank event
// traces identical at every shard count), the bound-enforcement and
// misuse errors, and the placement policy.

import (
	"math"
	"strings"
	"testing"

	"msgroofline/internal/sim"
	"msgroofline/internal/sim/simbench"
)

// TestShardedDigestInvariant is the headline determinism property:
// the PHOLD workload's event-order digest, executed-event count, and
// per-rank digests are byte-identical at shards 1, 2, 3, 4, and 8
// across 50 workload seeds.
func TestShardedDigestInvariant(t *testing.T) {
	const ranks, events = 192, 4000
	for seed := uint64(1); seed <= 50; seed++ {
		ref := simbench.ShardedPhold(ranks, 1, events, seed)
		for _, shards := range []int{2, 3, 4, 8} {
			e := simbench.ShardedPhold(ranks, shards, events, seed)
			if e.Executed() != ref.Executed() {
				t.Fatalf("seed %d shards %d: executed %d events, want %d",
					seed, shards, e.Executed(), ref.Executed())
			}
			if e.Digest() != ref.Digest() {
				t.Fatalf("seed %d shards %d: digest %#x, want %#x",
					seed, shards, e.Digest(), ref.Digest())
			}
			for r := 0; r < ranks; r++ {
				if e.RankDigest(r) != ref.RankDigest(r) {
					t.Fatalf("seed %d shards %d: rank %d digest %#x, want %#x",
						seed, shards, r, e.RankDigest(r), ref.RankDigest(r))
				}
			}
		}
	}
}

// traceWorkload runs a small all-to-all workload recording every
// rank's executed (at, kind, a) sequence — the raw form of the
// invariance the digests summarize.
func traceWorkload(t *testing.T, ranks, shards int, seed uint64) [][]sim.ShardEvent {
	t.Helper()
	const lookahead = 5 * sim.Microsecond
	traces := make([][]sim.ShardEvent, ranks)
	e, err := sim.NewSharded(ranks, shards, lookahead, func(ctx *sim.ShardCtx, ev sim.ShardEvent) {
		me := ctx.Self()
		traces[me] = append(traces[me], ev)
		if ev.A == 0 {
			return
		}
		// Deterministic per-rank fan: one forward hop plus a periodic
		// self-wakeup, so streams interleave self and cross events.
		dst := (me*7 + int(ev.A)) % ranks
		ctx.Send(dst, lookahead+sim.Time(me%3)*sim.Nanosecond, 2, ev.A-1, ev.B)
		if ev.A%4 == 0 && ev.Kind != 3 {
			ctx.After(0, 3, ev.A, ev.B)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	e.SetEventLimit(1 << 20) // hang guard: this workload is ~10k events
	for r := 0; r < ranks; r++ {
		e.Seed(r, sim.Time(seed%31)*sim.Nanosecond, 1, uint64(10+r%5), uint64(r))
	}
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	return traces
}

// TestShardedSeqAllocatorInvariant is the seq-allocator property
// test: because event keys are drawn from the originating rank's own
// counter, every rank's executed-event sequence — not just its hash —
// must be identical at any shard count, including zero-delay
// self-sends racing cross-rank arrivals at equal timestamps.
func TestShardedSeqAllocatorInvariant(t *testing.T) {
	const ranks = 24
	for seed := uint64(0); seed < 8; seed++ {
		ref := traceWorkload(t, ranks, 1, seed)
		for _, shards := range []int{2, 4, 5} {
			got := traceWorkload(t, ranks, shards, seed)
			for r := 0; r < ranks; r++ {
				if len(got[r]) != len(ref[r]) {
					t.Fatalf("seed %d shards %d rank %d: %d events, want %d",
						seed, shards, r, len(got[r]), len(ref[r]))
				}
				for i := range got[r] {
					if got[r][i] != ref[r][i] {
						t.Fatalf("seed %d shards %d rank %d event %d: %+v, want %+v",
							seed, shards, r, i, got[r][i], ref[r][i])
					}
				}
			}
		}
	}
}

// TestShardedRerunDeterministic replays one configuration twice and
// expects bit-equal digests: the parallel execution itself is
// reproducible, not just shard-count-invariant.
func TestShardedRerunDeterministic(t *testing.T) {
	a := simbench.ShardedPhold(100, 4, 3000, 7)
	b := simbench.ShardedPhold(100, 4, 3000, 7)
	if a.Digest() != b.Digest() || a.Executed() != b.Executed() {
		t.Fatalf("rerun diverged: digest %#x/%#x, executed %d/%d",
			a.Digest(), b.Digest(), a.Executed(), b.Executed())
	}
}

// TestShardedLookaheadEnforced proves the uniform bound rule: a
// cross-rank send below the lookahead is rejected even when source
// and destination share a shard, so violations cannot hide at low
// shard counts.
func TestShardedLookaheadEnforced(t *testing.T) {
	for _, shards := range []int{2, 4} {
		e, err := sim.NewSharded(8, shards, sim.Microsecond, func(ctx *sim.ShardCtx, ev sim.ShardEvent) {
			// Rank 0 -> rank 1 are co-resident under block placement at
			// both shard counts; the short delay must still be rejected.
			ctx.Send(ctx.Self()+1, sim.Nanosecond, 1, 0, 0)
		})
		if err != nil {
			t.Fatal(err)
		}
		e.Seed(0, 0, 1, 0, 0)
		err = e.Run()
		if err == nil || !strings.Contains(err.Error(), "below lookahead") {
			t.Fatalf("shards %d: want lookahead violation, got %v", shards, err)
		}
	}
}

// TestShardedSelfSendAnyDelay checks that After and self-directed
// Send accept delays below the lookahead, including zero.
func TestShardedSelfSendAnyDelay(t *testing.T) {
	var n int
	e, err := sim.NewSharded(4, 2, sim.Microsecond, func(ctx *sim.ShardCtx, ev sim.ShardEvent) {
		if ctx.Self() == 0 {
			n++
		}
		if ev.A > 0 {
			ctx.Send(ctx.Self(), 0, 1, ev.A-1, 0) // self via Send
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	e.Seed(0, 0, 1, 9, 0)
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if n != 10 {
		t.Fatalf("executed %d self events, want 10", n)
	}
}

// TestShardedMailboxBound checks that a window emitting more
// cross-shard events than the mailbox capacity aborts with a clear
// error instead of growing without limit.
func TestShardedMailboxBound(t *testing.T) {
	const fan = 64
	e, err := sim.NewSharded(2, 2, sim.Microsecond, func(ctx *sim.ShardCtx, ev sim.ShardEvent) {
		for i := 0; i < fan; i++ {
			ctx.Send(1, sim.Microsecond+sim.Time(i), 1, 0, 0)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	e.SetMailboxCap(8)
	e.Seed(0, 0, 1, 0, 0)
	err = e.Run()
	if err == nil || !strings.Contains(err.Error(), "over capacity") {
		t.Fatalf("want mailbox capacity error, got %v", err)
	}
}

// TestShardedEventLimit checks the runaway guard.
func TestShardedEventLimit(t *testing.T) {
	e, err := sim.NewSharded(2, 2, sim.Microsecond, func(ctx *sim.ShardCtx, ev sim.ShardEvent) {
		ctx.Send(1-ctx.Self(), sim.Microsecond, 1, 0, 0) // ping-pong forever
	})
	if err != nil {
		t.Fatal(err)
	}
	e.SetEventLimit(100)
	e.Seed(0, 0, 1, 0, 0)
	err = e.Run()
	if err == nil || !strings.Contains(err.Error(), "event limit") {
		t.Fatalf("want event limit error, got %v", err)
	}
}

// TestShardedConstructionErrors covers NewSharded validation and the
// single-Run contract.
func TestShardedConstructionErrors(t *testing.T) {
	h := func(ctx *sim.ShardCtx, ev sim.ShardEvent) {}
	if _, err := sim.NewSharded(0, 1, 0, h); err == nil {
		t.Error("want error for 0 ranks")
	}
	if _, err := sim.NewSharded(4, 0, 0, h); err == nil {
		t.Error("want error for 0 shards")
	}
	if _, err := sim.NewSharded(4, 2, 0, h); err == nil {
		t.Error("want error for multi-shard without lookahead")
	}
	if _, err := sim.NewSharded(4, 1, 0, nil); err == nil {
		t.Error("want error for nil handler")
	}
	e, err := sim.NewSharded(8, 16, sim.Microsecond, h)
	if err != nil {
		t.Fatal(err)
	}
	if e.Shards() != 8 {
		t.Errorf("shards clamp: got %d, want 8", e.Shards())
	}
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if err := e.Run(); err == nil {
		t.Error("want error for second Run")
	}
}

// TestShardedPlacement checks the default block map and the
// SetPlacement override path.
func TestShardedPlacement(t *testing.T) {
	f := sim.BlockPlacement(10, 4)
	prev := 0
	seen := map[int]bool{}
	for r := 0; r < 10; r++ {
		s := f(r)
		if s < prev || s >= 4 {
			t.Fatalf("block placement not monotone in range: rank %d -> shard %d", r, s)
		}
		prev = s
		seen[s] = true
	}
	if len(seen) != 4 {
		t.Fatalf("block placement used %d shards, want 4", len(seen))
	}

	h := func(ctx *sim.ShardCtx, ev sim.ShardEvent) {}
	e, err := sim.NewSharded(8, 2, sim.Microsecond, h)
	if err != nil {
		t.Fatal(err)
	}
	if err := e.SetPlacement(func(rank int) int { return rank % 2 }); err != nil {
		t.Fatal(err)
	}
	if got := e.ShardOf(3); got != 1 {
		t.Fatalf("ShardOf(3) = %d after round-robin placement, want 1", got)
	}
	if err := e.SetPlacement(func(rank int) int { return 5 }); err == nil {
		t.Error("want error for out-of-range placement")
	}
	e.Seed(0, 0, 1, 0, 0)
	if err := e.SetPlacement(func(rank int) int { return 0 }); err == nil {
		t.Error("want error for SetPlacement after Seed")
	}
}

// TestShardedStats sanity-checks the per-shard summaries and the
// busy/wall ratio plumbing used by the BENCH_sim.json emitter.
func TestShardedStats(t *testing.T) {
	e := simbench.ShardedPhold(64, 4, 2000, 3)
	st := e.ShardStats()
	if len(st) != 4 {
		t.Fatalf("got %d shard stats, want 4", len(st))
	}
	var executed int64
	ranks := 0
	for _, s := range st {
		executed += s.Executed
		ranks += s.Ranks
	}
	if executed != e.Executed() {
		t.Fatalf("shard executed sum %d != total %d", executed, e.Executed())
	}
	if ranks != 64 {
		t.Fatalf("shard rank sum %d != 64", ranks)
	}
	if e.BusyWall(0) != 0 {
		t.Error("BusyWall(0) should be 0")
	}
}

// TestShardedTimeOverflowDegradesToGlobalWindow checks the horizon
// guard at the top of the time axis: when minNext + lookahead would
// overflow the signed 64-bit clock, the engine must degrade to one
// global window (w1 = maximum representable time) instead of wrapping
// negative — and the degraded window must still execute everything in
// the global (at, key) order, so digests stay shard-count-invariant.
func TestShardedTimeOverflowDegradesToGlobalWindow(t *testing.T) {
	const n = 8
	top := sim.Time(math.MaxInt64)
	run := func(shards int) (int64, uint64) {
		t.Helper()
		e, err := sim.NewSharded(4, shards, sim.Microsecond,
			func(ctx *sim.ShardCtx, ev sim.ShardEvent) {})
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < n; i++ {
			// All seeds sit within one lookahead of the clock maximum
			// (the maximum itself is the engine's empty-heap sentinel),
			// so the very first window triggers the overflow guard.
			e.Seed(i%4, top-1-sim.Time(i), 1, uint64(i), 0)
		}
		if err := e.Run(); err != nil {
			t.Fatalf("shards %d: %v", shards, err)
		}
		return e.Executed(), e.Digest()
	}
	exec1, dig1 := run(1)
	exec4, dig4 := run(4)
	if exec1 != n || exec4 != n {
		t.Fatalf("executed %d / %d events, want %d", exec1, exec4, n)
	}
	if dig1 != dig4 {
		t.Fatalf("degraded-window digest differs: %016x != %016x", dig1, dig4)
	}
}
