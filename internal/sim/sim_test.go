package sim

import (
	"errors"
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func TestTimeUnits(t *testing.T) {
	if Second != 1e12*Picosecond {
		t.Fatalf("Second = %d ps, want 1e12", int64(Second))
	}
	if got := FromMicroseconds(3.3); got != 3_300_000*Picosecond {
		t.Fatalf("FromMicroseconds(3.3) = %d, want 3.3e6 ps", int64(got))
	}
	if got := FromSeconds(1.0); got != Second {
		t.Fatalf("FromSeconds(1) = %v, want 1s", got)
	}
	if got := (5 * Microsecond).Microseconds(); got != 5.0 {
		t.Fatalf("Microseconds() = %v, want 5", got)
	}
}

func TestTimeString(t *testing.T) {
	cases := []struct {
		in   Time
		want string
	}{
		{0, "0s"},
		{500 * Picosecond, "500ps"},
		{3300 * Nanosecond, "3.300us"},
		{2 * Millisecond, "2.000ms"},
		{3 * Second, "3.000000s"},
	}
	for _, c := range cases {
		if got := c.in.String(); got != c.want {
			t.Errorf("(%d ps).String() = %q, want %q", int64(c.in), got, c.want)
		}
	}
}

func TestTransferTime(t *testing.T) {
	// 1 GiB at 1 GB/s: 1073741824 / 1e9 s.
	got := TransferTime(1<<30, 1e9)
	want := FromSeconds(float64(1<<30) / 1e9)
	if got < want-1 || got > want+1 {
		t.Fatalf("TransferTime = %v, want about %v", got, want)
	}
	if TransferTime(0, 1e9) != 0 {
		t.Fatal("zero bytes should take zero time")
	}
	if TransferTime(1, 1e12) == 0 {
		t.Fatal("non-empty transfer must take nonzero time")
	}
}

func TestTransferTimeMonotonic(t *testing.T) {
	f := func(a, b uint32) bool {
		x, y := int64(a), int64(b)
		if x > y {
			x, y = y, x
		}
		return TransferTime(x, 25e9) <= TransferTime(y, 25e9)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestEventOrdering(t *testing.T) {
	e := NewEngine()
	var order []int
	e.Schedule(30, func() { order = append(order, 3) })
	e.Schedule(10, func() { order = append(order, 1) })
	e.Schedule(20, func() { order = append(order, 2) })
	e.Schedule(10, func() { order = append(order, 11) }) // FIFO at equal time
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	want := []int{1, 11, 2, 3}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("order = %v, want %v", order, want)
		}
	}
	if e.Now() != 30 {
		t.Fatalf("Now = %v, want 30ps", e.Now())
	}
}

func TestEventCancel(t *testing.T) {
	e := NewEngine()
	fired := false
	ev := e.Schedule(10, func() { fired = true })
	ev.Cancel()
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if fired {
		t.Fatal("canceled event fired")
	}
	if !ev.Canceled() {
		t.Fatal("Canceled() = false after Cancel")
	}
}

func TestEventOrderingRandomized(t *testing.T) {
	// Property: regardless of scheduling order, events fire in
	// nondecreasing time order and the clock matches each firing.
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 50; trial++ {
		e := NewEngine()
		n := 200
		var fired []Time
		for i := 0; i < n; i++ {
			d := Time(rng.Intn(1000))
			e.Schedule(d, func() {
				fired = append(fired, e.Now())
			})
		}
		if err := e.Run(); err != nil {
			t.Fatal(err)
		}
		if len(fired) != n {
			t.Fatalf("fired %d events, want %d", len(fired), n)
		}
		if !sort.SliceIsSorted(fired, func(i, j int) bool { return fired[i] < fired[j] }) {
			t.Fatal("events fired out of time order")
		}
	}
}

func TestProcSleep(t *testing.T) {
	e := NewEngine()
	var wake Time
	e.Spawn("sleeper", func(p *Proc) {
		p.Sleep(5 * Microsecond)
		wake = p.Now()
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if wake != 5*Microsecond {
		t.Fatalf("woke at %v, want 5us", wake)
	}
}

func TestProcInterleaving(t *testing.T) {
	e := NewEngine()
	var trace []string
	for i, d := range []Time{30, 10, 20} {
		name := string(rune('a' + i))
		dd := d
		e.Spawn(name, func(p *Proc) {
			p.Sleep(dd)
			trace = append(trace, p.Name())
		})
	}
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	want := []string{"b", "c", "a"}
	for i := range want {
		if trace[i] != want[i] {
			t.Fatalf("trace = %v, want %v", trace, want)
		}
	}
}

func TestCondSignalBroadcast(t *testing.T) {
	e := NewEngine()
	c := NewCond(e)
	ready := 0
	var got []string
	for _, n := range []string{"w1", "w2", "w3"} {
		name := n
		e.Spawn(name, func(p *Proc) {
			c.WaitFor(p, func() bool { return ready > 0 })
			got = append(got, name)
		})
	}
	e.Spawn("signaler", func(p *Proc) {
		p.Sleep(100)
		ready = 1
		c.Broadcast()
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if len(got) != 3 {
		t.Fatalf("only %d of 3 waiters woke: %v", len(got), got)
	}
}

func TestCondSignalWakesOne(t *testing.T) {
	e := NewEngine()
	c := NewCond(e)
	woke := 0
	for i := 0; i < 3; i++ {
		e.Spawn("w", func(p *Proc) {
			c.Wait(p)
			woke++
		})
	}
	e.Spawn("s", func(p *Proc) {
		p.Sleep(10)
		c.Signal()
		p.Sleep(10)
		c.Signal()
	})
	err := e.Run()
	if woke != 2 {
		t.Fatalf("woke = %d, want 2", woke)
	}
	// The third waiter deadlocks by design.
	var d *DeadlockError
	if !errors.As(err, &d) {
		t.Fatalf("expected deadlock error, got %v", err)
	}
}

func TestDeadlockDetection(t *testing.T) {
	e := NewEngine()
	c := NewCond(e)
	e.Spawn("stuck-a", func(p *Proc) { c.Wait(p) })
	e.Spawn("stuck-b", func(p *Proc) { c.Wait(p) })
	err := e.Run()
	var d *DeadlockError
	if !errors.As(err, &d) {
		t.Fatalf("want DeadlockError, got %v", err)
	}
	if len(d.Parked) != 2 || d.Parked[0] != "stuck-a" || d.Parked[1] != "stuck-b" {
		t.Fatalf("parked = %v", d.Parked)
	}
}

func TestWaitTimeout(t *testing.T) {
	e := NewEngine()
	c := NewCond(e)
	var timedOut, signaled bool
	var tAt, sAt Time
	e.Spawn("timeout", func(p *Proc) {
		ok := c.WaitTimeout(p, 100*Nanosecond)
		timedOut = !ok
		tAt = p.Now()
	})
	e.Spawn("signaled", func(p *Proc) {
		p.Sleep(1) // enter wait after the first proc
		ok := c.WaitTimeout(p, 10*Microsecond)
		signaled = ok
		sAt = p.Now()
	})
	e.Spawn("signaler", func(p *Proc) {
		p.Sleep(200 * Nanosecond)
		c.Signal() // first waiter (timeout) already gone; wakes second
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if !timedOut {
		t.Error("first waiter should have timed out")
	}
	if tAt != 100*Nanosecond {
		t.Errorf("timeout at %v, want 100ns", tAt)
	}
	if !signaled {
		t.Error("second waiter should have been signaled")
	}
	if sAt != 200*Nanosecond {
		t.Errorf("signal at %v, want 200ns", sAt)
	}
}

func TestRunUntil(t *testing.T) {
	e := NewEngine()
	count := 0
	for i := 1; i <= 10; i++ {
		e.Schedule(Time(i)*Microsecond, func() { count++ })
	}
	if err := e.RunUntil(5 * Microsecond); err != nil {
		t.Fatal(err)
	}
	if count != 5 {
		t.Fatalf("count = %d, want 5", count)
	}
	if e.Now() != 5*Microsecond {
		t.Fatalf("Now = %v, want 5us", e.Now())
	}
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if count != 10 {
		t.Fatalf("count = %d, want 10", count)
	}
}

func TestEventLimit(t *testing.T) {
	e := NewEngine()
	e.SetEventLimit(10)
	var respawn func()
	respawn = func() { e.Schedule(1, respawn) }
	e.Schedule(1, respawn)
	if err := e.Run(); err == nil {
		t.Fatal("expected event-limit error")
	}
}

func TestNestedSpawn(t *testing.T) {
	e := NewEngine()
	total := 0
	e.Spawn("parent", func(p *Proc) {
		p.Sleep(10)
		for i := 0; i < 3; i++ {
			p.eng.Spawn("child", func(q *Proc) {
				q.Sleep(5)
				total++
			})
		}
		p.Sleep(100)
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if total != 3 {
		t.Fatalf("total = %d, want 3", total)
	}
}

func TestDeterminism(t *testing.T) {
	run := func() []Time {
		e := NewEngine()
		c := NewCond(e)
		var stamps []Time
		n := 0
		for i := 0; i < 8; i++ {
			d := Time(i * 13)
			e.Spawn("p", func(p *Proc) {
				p.Sleep(d)
				n++
				c.Broadcast()
				c.WaitFor(p, func() bool { return n >= 8 })
				stamps = append(stamps, p.Now())
			})
		}
		if err := e.Run(); err != nil {
			t.Fatal(err)
		}
		return stamps
	}
	a, b := run(), run()
	if len(a) != len(b) {
		t.Fatal("nondeterministic run lengths")
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("run diverged at %d: %v vs %v", i, a[i], b[i])
		}
	}
}

func TestTimeConversionsAndAccessors(t *testing.T) {
	if got := FromNanoseconds(2.5); got != 2500*Picosecond {
		t.Fatalf("FromNanoseconds = %v", got)
	}
	if got := (3 * Microsecond).Nanoseconds(); got != 3000 {
		t.Fatalf("Nanoseconds = %v", got)
	}
	if got := (1500 * Nanosecond).ToDuration(); got.Nanoseconds() != 1500 {
		t.Fatalf("ToDuration = %v", got)
	}
	// Negative durations render through the same unit selection.
	if s := (-3 * Microsecond).String(); s != "-3.000us" {
		t.Fatalf("negative String = %q", s)
	}
}

func TestEngineAtAndExecuted(t *testing.T) {
	e := NewEngine()
	fired := false
	e.At(5*Microsecond, func() { fired = true })
	// At with a past time clamps to now (fires immediately).
	past := false
	e.At(-1, func() { past = true })
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if !fired || !past {
		t.Fatal("At events did not fire")
	}
	if e.Executed() != 2 {
		t.Fatalf("Executed = %d", e.Executed())
	}
}

func TestScheduleNegativeDelay(t *testing.T) {
	e := NewEngine()
	at := Time(-1)
	e.Schedule(10, func() {
		e.Schedule(-5, func() { at = e.Now() })
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if at != 10 {
		t.Fatalf("negative delay fired at %v, want now (10ps)", at)
	}
}

func TestRunUntilSkipsCanceled(t *testing.T) {
	e := NewEngine()
	ev := e.Schedule(5, func() { t.Error("canceled event fired") })
	ev.Cancel()
	later := false
	e.Schedule(20, func() { later = true })
	if err := e.RunUntil(10); err != nil {
		t.Fatal(err)
	}
	if later {
		t.Fatal("event beyond horizon fired")
	}
	if ev.At() != 5 {
		t.Fatalf("At = %v", ev.At())
	}
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if !later {
		t.Fatal("remaining event lost")
	}
}

func TestDeadlockErrorMessage(t *testing.T) {
	e := NewEngine()
	c := NewCond(e)
	e.Spawn("lonely", func(p *Proc) { c.Wait(p) })
	err := e.Run()
	if err == nil || err.Error() == "" {
		t.Fatal("expected descriptive deadlock error")
	}
	if c.NumWaiters() != 1 {
		t.Fatalf("NumWaiters = %d", c.NumWaiters())
	}
}

func TestProcAccessors(t *testing.T) {
	e := NewEngine()
	e.Spawn("named", func(p *Proc) {
		if p.Engine() != e {
			t.Error("Engine() mismatch")
		}
		if p.Name() != "named" {
			t.Error("Name() mismatch")
		}
		p.Sleep(-5) // negative sleep clamps to yield
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestCondWaitWrongEnginePanics(t *testing.T) {
	e1, e2 := NewEngine(), NewEngine()
	c := NewCond(e2)
	e1.Spawn("p", func(p *Proc) {
		defer func() {
			if recover() == nil {
				t.Error("expected panic for cross-engine wait")
			}
		}()
		c.Wait(p)
	})
	_ = e1.Run()
}
