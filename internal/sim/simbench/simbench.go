// Package simbench holds the canonical engine hot-path workloads used
// by the engine microbenchmarks, the BENCH_sim.json perf-trajectory
// emitter, and the CI bench smoke job. Keeping them in one place
// guarantees that "before" and "after" measurements of an engine
// change exercise byte-for-byte the same simulated work.
//
// Every workload is deterministic, uses only the public sim API, and
// returns the engine so callers can read Executed() and convert
// wall-clock cost into ns/event.
package simbench

import (
	"msgroofline/internal/netsim"
	"msgroofline/internal/sim"
)

// PingPong is the steady-state Sleep/Signal workload: two processes
// hand a condition-variable token back and forth n times. Each round
// trip is two Signal wakeups plus two parks — the engine's dominant
// pattern under eager-protocol traffic. This is the workload the
// zero-allocation acceptance gate is measured on.
func PingPong(n int) *sim.Engine {
	e := sim.NewEngine()
	ping, pong := sim.NewCond(e), sim.NewCond(e)
	e.Spawn("pong", func(p *sim.Proc) {
		for i := 0; i < n; i++ {
			pong.Wait(p)
			ping.Signal()
		}
	})
	e.Spawn("ping", func(p *sim.Proc) {
		for i := 0; i < n; i++ {
			pong.Signal()
			ping.Wait(p)
		}
	})
	if err := e.Run(); err != nil {
		panic(err)
	}
	return e
}

// SleepYield is the pure yield workload: one process calls Sleep(0)
// n times. Every iteration is one same-timestamp wake event — the
// now-queue / self-handoff fast path.
func SleepYield(n int) *sim.Engine {
	e := sim.NewEngine()
	e.Spawn("yielder", func(p *sim.Proc) {
		for i := 0; i < n; i++ {
			p.Sleep(0)
		}
	})
	if err := e.Run(); err != nil {
		panic(err)
	}
	return e
}

// TimerChurn is the heap workload: `procs` processes each sleep n
// times for pseudorandom positive durations (deterministic LCG), so
// nearly every event goes through the time-ordered queue rather than
// the same-timestamp fast path.
func TimerChurn(procs, n int) *sim.Engine {
	e := sim.NewEngine()
	for i := 0; i < procs; i++ {
		seed := uint64(i + 1)
		e.Spawn("timer", func(p *sim.Proc) {
			s := seed
			for j := 0; j < n; j++ {
				s = s*6364136223846793005 + 1442695040888963407
				p.Sleep(sim.Time(s%1000 + 1))
			}
		})
	}
	if err := e.Run(); err != nil {
		panic(err)
	}
	return e
}

// pholdGroups is the fabric size of the sharded PHOLD workload: a
// ring of nodes whose link latency supplies the lookahead bound.
const pholdGroups = 16

// kindToken is the single event kind of the PHOLD workload.
const kindToken = 1

// ShardedPhold is the conservative-parallel engine workload: a
// PHOLD-style token storm on the ShardedEngine. `ranks` ranks are
// block-mapped onto a 16-node ring fabric (one µs-latency link per
// hop); the fabric's LookaheadBound is the engine lookahead, and
// every token hop is delayed by lookahead plus the ring base latency
// between the endpoints' nodes, so all cross-rank sends respect the
// bound by construction. Each rank owns an LCG seeded from (seed,
// rank); a token's next destination and timing jitter come from the
// receiving rank's own stream, keeping the event population
// shard-count-invariant. Roughly `events` events are dispatched in
// total. The run panics on engine errors and returns the engine for
// Executed/Digest/ShardStats inspection.
func ShardedPhold(ranks, shards, events int, seed uint64) *sim.ShardedEngine {
	e, err := NewShardedPhold(ranks, shards, events, seed)
	if err != nil {
		panic(err)
	}
	if err := e.Run(); err != nil {
		panic(err)
	}
	return e
}

// NewShardedPhold builds the PHOLD workload without running it, for
// callers that want to time Run itself.
func NewShardedPhold(ranks, shards, events int, seed uint64) (*sim.ShardedEngine, error) {
	// Fabric: a ring of pholdGroups nodes; the link latency is the
	// natural lookahead bound the sharded engine consumes.
	net := netsim.New()
	names := make([]string, pholdGroups)
	for i := range names {
		names[i] = string(rune('a' + i))
	}
	for i := range names {
		net.AddLink(names[i], names[(i+1)%pholdGroups], 10e9, 2*sim.Microsecond, 1)
	}
	lookahead := net.LookaheadBound()

	// Precomputed hop delays: lookahead + ring base latency keeps
	// every cross-rank delay >= lookahead, including same-node pairs.
	var delay [pholdGroups][pholdGroups]sim.Time
	for i := range names {
		for j := range names {
			delay[i][j] = lookahead + net.BaseLatency(names[i], names[j])
		}
	}
	nodeOf := make([]uint8, ranks)
	for r := range nodeOf {
		nodeOf[r] = uint8(r * pholdGroups / ranks)
	}
	// Per-rank LCG streams: all randomness a rank consumes comes from
	// its own state, so token behavior is shard-count-invariant.
	rng := make([]uint64, ranks)
	for r := range rng {
		rng[r] = seed*0x9e3779b97f4a7c15 + uint64(r)*0xbf58476d1ce4e5b9 + 1
	}
	step := func(r int) uint64 {
		s := rng[r]*6364136223846793005 + 1442695040888963407
		rng[r] = s
		return s >> 17
	}

	e, err := sim.NewSharded(ranks, shards, lookahead, func(ctx *sim.ShardCtx, ev sim.ShardEvent) {
		if ev.A == 0 {
			return // token exhausted its hop budget
		}
		me := ctx.Self()
		dst := int(step(me) % uint64(ranks))
		d := delay[nodeOf[me]][nodeOf[dst]] + sim.Time(step(me)%1024)*sim.Nanosecond
		ctx.Send(dst, d, kindToken, ev.A-1, ev.B)
	})
	if err != nil {
		return nil, err
	}
	// Token population: enough concurrent tokens to keep every shard
	// busy; hop budgets sized so total dispatched events ~= events.
	tokens := ranks / 4
	if tokens > 4096 {
		tokens = 4096
	}
	if tokens > events {
		tokens = events
	}
	if tokens < 1 {
		tokens = 1
	}
	hops := events/tokens - 1
	if hops < 0 {
		hops = 0
	}
	for t := 0; t < tokens; t++ {
		owner := t * ranks / tokens
		at := sim.Time(t%977) * sim.Nanosecond
		e.Seed(owner, at, kindToken, uint64(hops), uint64(t))
	}
	return e, nil
}

// CoupledWindows is the coupled-engine window-loop workload: a
// PHOLD-style token storm over `groups` single-rank node groups on
// the CoupledEngine, built so the steady-state dispatch/barrier path
// allocates nothing. Every closure the storm needs (one event fn and
// one barrier op fn per group) is prepared up front; an event on group
// g defers g's op, and the op — running single-threaded at the window
// barrier in (at, key) order — draws the next destination and jitter
// from g's own LCG stream and re-arms the destination's event with
// ce.At. Each hop is delayed at least the lookahead, so scheduling is
// always window-legal, and all shared state (the hop budget, the LCG
// streams) mutates only in barrier order — the storm is deterministic
// and worker-count-invariant by construction. Roughly `events` events
// are dispatched; panics on engine errors.
func CoupledWindows(groups, workers, events int, seed uint64) *sim.CoupledEngine {
	ce, err := NewCoupledWindows(groups, workers, events, seed)
	if err != nil {
		panic(err)
	}
	if err := ce.Run(); err != nil {
		panic(err)
	}
	return ce
}

// NewCoupledWindows builds the coupled window workload without running
// it, for callers that want to time Run itself.
func NewCoupledWindows(groups, workers, events int, seed uint64) (*sim.CoupledEngine, error) {
	groupOf := make([]int, groups)
	for g := range groupOf {
		groupOf[g] = g
	}
	const lookahead = 2 * sim.Microsecond
	ce, err := sim.NewCoupled(groupOf, lookahead, workers)
	if err != nil {
		return nil, err
	}
	// Per-group LCG streams, consumed only from barrier ops (total
	// order), so every draw sequence is worker-count-invariant.
	rng := make([]uint64, groups)
	for g := range rng {
		rng[g] = seed*0x9e3779b97f4a7c15 + uint64(g)*0xbf58476d1ce4e5b9 + 1
	}
	step := func(g int) uint64 {
		s := rng[g]*6364136223846793005 + 1442695040888963407
		rng[g] = s
		return s >> 17
	}
	hopsLeft := events
	evFns := make([]func(), groups)
	opFns := make([]func(), groups)
	for g := range opFns {
		g := g
		opFns[g] = func() {
			if hopsLeft <= 0 {
				return // token retires
			}
			hopsLeft--
			dst := int(step(g) % uint64(groups))
			at := ce.Sub(g).Now() + lookahead + sim.Time(step(g)%1024)*sim.Nanosecond
			ce.At(dst, at, evFns[dst])
		}
		evFns[g] = func() {
			ce.Defer(g, ce.Sub(g).Now(), opFns[g])
		}
	}
	tokens := groups / 2
	if tokens > events {
		tokens = events
	}
	if tokens < 1 {
		tokens = 1
	}
	for t := 0; t < tokens; t++ {
		g := t % groups
		ce.Sub(g).At(sim.Time(t%977)*sim.Nanosecond, evFns[g])
	}
	return ce, nil
}

// Broadcast is the fan-out workload: `procs` waiters park on one
// condition and a driver broadcasts n times; every round wakes all
// waiters at the same timestamp.
func Broadcast(procs, n int) *sim.Engine {
	e := sim.NewEngine()
	c := sim.NewCond(e)
	round := 0
	for i := 0; i < procs; i++ {
		e.Spawn("waiter", func(p *sim.Proc) {
			for r := 1; r <= n; r++ {
				c.WaitFor(p, func() bool { return round >= r })
			}
		})
	}
	e.Spawn("driver", func(p *sim.Proc) {
		for r := 1; r <= n; r++ {
			p.Sleep(10)
			round = r
			c.Broadcast()
		}
	})
	if err := e.Run(); err != nil {
		panic(err)
	}
	return e
}
