// Package simbench holds the canonical engine hot-path workloads used
// by the engine microbenchmarks, the BENCH_sim.json perf-trajectory
// emitter, and the CI bench smoke job. Keeping them in one place
// guarantees that "before" and "after" measurements of an engine
// change exercise byte-for-byte the same simulated work.
//
// Every workload is deterministic, uses only the public sim API, and
// returns the engine so callers can read Executed() and convert
// wall-clock cost into ns/event.
package simbench

import "msgroofline/internal/sim"

// PingPong is the steady-state Sleep/Signal workload: two processes
// hand a condition-variable token back and forth n times. Each round
// trip is two Signal wakeups plus two parks — the engine's dominant
// pattern under eager-protocol traffic. This is the workload the
// zero-allocation acceptance gate is measured on.
func PingPong(n int) *sim.Engine {
	e := sim.NewEngine()
	ping, pong := sim.NewCond(e), sim.NewCond(e)
	e.Spawn("pong", func(p *sim.Proc) {
		for i := 0; i < n; i++ {
			pong.Wait(p)
			ping.Signal()
		}
	})
	e.Spawn("ping", func(p *sim.Proc) {
		for i := 0; i < n; i++ {
			pong.Signal()
			ping.Wait(p)
		}
	})
	if err := e.Run(); err != nil {
		panic(err)
	}
	return e
}

// SleepYield is the pure yield workload: one process calls Sleep(0)
// n times. Every iteration is one same-timestamp wake event — the
// now-queue / self-handoff fast path.
func SleepYield(n int) *sim.Engine {
	e := sim.NewEngine()
	e.Spawn("yielder", func(p *sim.Proc) {
		for i := 0; i < n; i++ {
			p.Sleep(0)
		}
	})
	if err := e.Run(); err != nil {
		panic(err)
	}
	return e
}

// TimerChurn is the heap workload: `procs` processes each sleep n
// times for pseudorandom positive durations (deterministic LCG), so
// nearly every event goes through the time-ordered queue rather than
// the same-timestamp fast path.
func TimerChurn(procs, n int) *sim.Engine {
	e := sim.NewEngine()
	for i := 0; i < procs; i++ {
		seed := uint64(i + 1)
		e.Spawn("timer", func(p *sim.Proc) {
			s := seed
			for j := 0; j < n; j++ {
				s = s*6364136223846793005 + 1442695040888963407
				p.Sleep(sim.Time(s%1000 + 1))
			}
		})
	}
	if err := e.Run(); err != nil {
		panic(err)
	}
	return e
}

// Broadcast is the fan-out workload: `procs` waiters park on one
// condition and a driver broadcasts n times; every round wakes all
// waiters at the same timestamp.
func Broadcast(procs, n int) *sim.Engine {
	e := sim.NewEngine()
	c := sim.NewCond(e)
	round := 0
	for i := 0; i < procs; i++ {
		e.Spawn("waiter", func(p *sim.Proc) {
			for r := 1; r <= n; r++ {
				c.WaitFor(p, func() bool { return round >= r })
			}
		})
	}
	e.Spawn("driver", func(p *sim.Proc) {
		for r := 1; r <= n; r++ {
			p.Sleep(10)
			round = r
			c.Broadcast()
		}
	})
	if err := e.Run(); err != nil {
		panic(err)
	}
	return e
}
