// Package sim provides a deterministic discrete-event simulation engine.
//
// Simulated time is an integer count of picoseconds, which keeps every
// arithmetic operation exact: at 100 GB/s a single byte serializes in
// 10 ps, and an int64 of picoseconds still spans more than 100 days of
// simulated time, far beyond any experiment in this repository.
//
// Simulated processes (see Proc) are goroutines that execute one at a
// time under control of the Engine's event loop, so runs are fully
// reproducible: same inputs, same event order, same timings.
package sim

import (
	"fmt"
	"time"
)

// Time is a point in (or duration of) simulated time, in picoseconds.
type Time int64

// Duration units. These mirror time.Duration but at picosecond
// resolution and in simulated, not wall-clock, time.
const (
	Picosecond  Time = 1
	Nanosecond       = 1000 * Picosecond
	Microsecond      = 1000 * Nanosecond
	Millisecond      = 1000 * Microsecond
	Second           = 1000 * Millisecond
)

// Seconds converts t to floating-point seconds.
func (t Time) Seconds() float64 { return float64(t) / float64(Second) }

// Microseconds converts t to floating-point microseconds.
func (t Time) Microseconds() float64 { return float64(t) / float64(Microsecond) }

// Nanoseconds converts t to floating-point nanoseconds.
func (t Time) Nanoseconds() float64 { return float64(t) / float64(Nanosecond) }

// ToDuration converts a simulated duration to a wall-clock-style
// time.Duration (nanosecond resolution; sub-nanosecond detail is
// truncated). Useful only for display.
func (t Time) ToDuration() time.Duration {
	return time.Duration(t / Nanosecond)
}

// String renders t with an auto-selected unit, e.g. "3.300us".
func (t Time) String() string {
	switch {
	case t == 0:
		return "0s"
	case t < Nanosecond && t > -Nanosecond:
		return fmt.Sprintf("%dps", int64(t))
	case t < Microsecond && t > -Microsecond:
		return fmt.Sprintf("%.3fns", t.Nanoseconds())
	case t < Millisecond && t > -Millisecond:
		return fmt.Sprintf("%.3fus", t.Microseconds())
	case t < Second && t > -Second:
		return fmt.Sprintf("%.3fms", float64(t)/float64(Millisecond))
	default:
		return fmt.Sprintf("%.6fs", t.Seconds())
	}
}

// FromSeconds converts floating-point seconds to simulated Time,
// rounding to the nearest picosecond.
func FromSeconds(s float64) Time { return Time(s*float64(Second) + 0.5) }

// FromMicroseconds converts floating-point microseconds to Time.
func FromMicroseconds(us float64) Time { return Time(us*float64(Microsecond) + 0.5) }

// FromNanoseconds converts floating-point nanoseconds to Time.
func FromNanoseconds(ns float64) Time { return Time(ns*float64(Nanosecond) + 0.5) }

// TransferTime returns the serialization time of b bytes at rate
// bytesPerSecond. It rounds up so that a transfer never takes zero
// time for a non-empty payload.
func TransferTime(b int64, bytesPerSecond float64) Time {
	if b <= 0 || bytesPerSecond <= 0 {
		return 0
	}
	ps := float64(b) / bytesPerSecond * float64(Second)
	t := Time(ps)
	if float64(t) < ps {
		t++
	}
	return t
}
