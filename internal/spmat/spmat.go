// Package spmat provides the sparse-matrix substrate for the SpTRSV
// workload: a synthetic supernodal lower-triangular factor generator
// standing in for the paper's SuperLU_DIST-factored M3D-C1 matrix
// (126K x 126K, 1e8 nonzeros after factorization), plus a reference
// serial solve, elimination-DAG queries, and message-size statistics.
//
// The generator reproduces the communication-relevant properties the
// paper reports rather than the exact numerics of a fusion matrix:
// supernode sizes that put solution-vector messages in the 24 B to
// 1040 B range (3 to 130 doubles), a block sparsity pattern that is
// dense near the diagonal and thins with distance (typical of
// fill-reducing orderings), and one message per dependency edge.
package spmat

import (
	"fmt"
	"math"
	"math/rand"
)

// Snode is one supernode: a contiguous column range [Begin, End).
type Snode struct {
	Begin, End int
}

// Size returns the number of columns in the supernode.
func (s Snode) Size() int { return s.End - s.Begin }

// SupTri is a supernodal lower-triangular factor L with unit-free
// dense diagonal blocks and dense off-diagonal blocks at the nonzero
// positions of the supernodal DAG.
type SupTri struct {
	// N is the matrix dimension.
	N int
	// Snodes partitions the columns.
	Snodes []Snode
	// Dependents[j] lists supernodes i > j with a nonzero block
	// (i, j): solving j produces one message to each.
	Dependents [][]int
	// Parents[i] lists supernodes j < i that i depends on (the
	// transpose of Dependents): i needs one contribution from each.
	Parents [][]int
	// Diag[j] is the dense lower-triangular diagonal block of
	// supernode j, row-major (size s_j x s_j; upper entries zero).
	Diag [][]float64
	// Blocks[(i,j)] is the dense off-diagonal block, row-major with
	// s_i rows and s_j columns.
	Blocks map[[2]int][]float64
}

// Params controls the synthetic generator.
type Params struct {
	// N is the matrix dimension (paper: 126000).
	N int
	// MeanSnode is the average supernode size; sizes vary in
	// [1, 2*MeanSnode-1]. Messages carry s_i doubles, so the paper's
	// 24-1040 B range corresponds to sizes 3..130.
	MeanSnode int
	// Fill in (0, 4] scales how many off-diagonal blocks exist; the
	// expected number of parents of supernode i grows like
	// Fill * log2(i).
	Fill float64
	// Depth is the target elimination-DAG depth (number of level
	// sets). Supernodes are stratified into Depth levels with
	// parents drawn from earlier levels, giving the DAG the
	// width/depth shape of a fill-reduced factorization: width =
	// supernodes/Depth supernodes can solve concurrently. Zero
	// defaults to supernodes/4.
	Depth int
	// Seed makes generation reproducible.
	Seed int64
}

// M3DC1Like are generator parameters shaped after the paper's matrix:
// message sizes 24-1040 bytes averaging ~100 words, a deep elimination
// DAG, and a dimension scaled down 5x so a solve simulates in seconds
// (the paper's communication pattern is preserved; see EXPERIMENTS.md
// for the substitution note).
var M3DC1Like = Params{
	N:         25200,
	MeanSnode: 60,
	Fill:      1.6,
	Depth:     110,
	Seed:      20230901,
}

// Generate builds a synthetic factor.
func Generate(p Params) (*SupTri, error) {
	if p.N < 1 {
		return nil, fmt.Errorf("spmat: N must be positive, got %d", p.N)
	}
	if p.MeanSnode < 1 || p.MeanSnode > p.N {
		return nil, fmt.Errorf("spmat: MeanSnode %d out of range", p.MeanSnode)
	}
	if p.Fill <= 0 || p.Fill > 4 {
		return nil, fmt.Errorf("spmat: Fill %v out of (0, 4]", p.Fill)
	}
	rng := rand.New(rand.NewSource(p.Seed))
	m := &SupTri{N: p.N, Blocks: make(map[[2]int][]float64)}

	// Partition columns into supernodes with sizes in
	// [max(1, mean/20), 2*mean] so message sizes span the paper's
	// 3..130-double range.
	lo := p.MeanSnode / 20
	if lo < 1 {
		lo = 1
	}
	hi := 2 * p.MeanSnode
	for col := 0; col < p.N; {
		s := lo + rng.Intn(hi-lo+1)
		if col+s > p.N {
			s = p.N - col
		}
		m.Snodes = append(m.Snodes, Snode{Begin: col, End: col + s})
		col += s
	}
	k := len(m.Snodes)
	m.Dependents = make([][]int, k)
	m.Parents = make([][]int, k)

	// Diagonal blocks: well-conditioned dense lower triangles.
	m.Diag = make([][]float64, k)
	for j, sn := range m.Snodes {
		s := sn.Size()
		d := make([]float64, s*s)
		for r := 0; r < s; r++ {
			for c := 0; c <= r; c++ {
				if r == c {
					d[r*s+c] = 2 + rng.Float64() // dominant diagonal
				} else {
					d[r*s+c] = 0.5 * (rng.Float64() - 0.5) / float64(s)
				}
			}
		}
		m.Diag[j] = d
	}

	// Off-diagonal pattern: supernodes are stratified into `depth`
	// levels by index (leaves first, root last, as an elimination
	// forest orders them). Each supernode depends on at least one
	// supernode of the previous level — fixing the critical path at
	// ~depth — plus Fill*log2(i) further parents drawn from earlier
	// levels with elimination-tree locality. Everything inside one
	// level is independent, giving the solver width to scale on.
	depth := p.Depth
	if depth <= 0 {
		depth = k / 4
	}
	if depth < 1 {
		depth = 1
	}
	if depth > k {
		depth = k
	}
	levelOf := func(i int) int { return i * depth / k }
	// firstAt[l] is the smallest supernode index on level l.
	firstAt := make([]int, depth+1)
	for l := range firstAt {
		firstAt[l] = (l*k + depth - 1) / depth
	}
	for i := 1; i < k; i++ {
		lvl := levelOf(i)
		if lvl == 0 {
			continue // level-0 supernodes are roots (etree leaves)
		}
		limit := firstAt[lvl] // parents come strictly from [0, limit)
		want := int(p.Fill*math.Log2(float64(i+2)) + 0.5)
		if want < 1 {
			want = 1
		}
		if want > limit {
			want = limit
		}
		seen := map[int]bool{}
		// Anchor on the previous level so the critical path spans
		// every level.
		lo := firstAt[lvl-1]
		seen[lo+rng.Intn(limit-lo)] = true
		for tries := 0; len(seen) < want; tries++ {
			// Geometric-ish preference for recent earlier levels:
			// back is log-uniform in [1, limit], so j covers the
			// whole range with bias toward limit-1.
			back := int(math.Exp(rng.Float64() * math.Log(float64(limit)+0.5)))
			j := limit - back
			if j < 0 || tries > 16*want {
				j = rng.Intn(limit) // uniform fallback
			}
			seen[j] = true
		}
		for j := range seen {
			m.Parents[i] = append(m.Parents[i], j)
			m.Dependents[j] = append(m.Dependents[j], i)
			si, sj := m.Snodes[i].Size(), m.Snodes[j].Size()
			blk := make([]float64, si*sj)
			for x := range blk {
				blk[x] = (rng.Float64() - 0.5) / float64(sj*4)
			}
			m.Blocks[[2]int{i, j}] = blk
		}
	}
	for i := range m.Parents {
		sortInts(m.Parents[i])
		sortInts(m.Dependents[i])
	}
	return m, nil
}

func sortInts(a []int) {
	for i := 1; i < len(a); i++ {
		for j := i; j > 0 && a[j] < a[j-1]; j-- {
			a[j], a[j-1] = a[j-1], a[j]
		}
	}
}

// NumSupernodes returns the supernode count.
func (m *SupTri) NumSupernodes() int { return len(m.Snodes) }

// NNZ returns the number of stored nonzeros (dense block entries plus
// diagonal lower-triangle entries).
func (m *SupTri) NNZ() int64 {
	var nnz int64
	for _, sn := range m.Snodes {
		s := int64(sn.Size())
		nnz += s * (s + 1) / 2
	}
	for key, blk := range m.Blocks {
		_ = key
		nnz += int64(len(blk))
	}
	return nnz
}

// Edges returns the number of DAG edges (= messages per solve).
func (m *SupTri) Edges() int {
	n := 0
	for _, d := range m.Dependents {
		n += len(d)
	}
	return n
}

// MsgBytes returns the distribution of per-edge message sizes in
// bytes: a contribution to supernode i carries s_i doubles.
func (m *SupTri) MsgBytes() []int64 {
	var out []int64
	for j := range m.Dependents {
		for _, i := range m.Dependents[j] {
			out = append(out, int64(8*m.Snodes[i].Size()))
		}
	}
	return out
}

// Levels returns the level sets of the elimination DAG: level 0 holds
// supernodes with no parents, level k those whose longest parent
// chain has length k. GPU runs schedule one level per wave.
func (m *SupTri) Levels() [][]int {
	k := len(m.Snodes)
	lvl := make([]int, k)
	maxLvl := 0
	for i := 0; i < k; i++ {
		for _, p := range m.Parents[i] {
			if lvl[p]+1 > lvl[i] {
				lvl[i] = lvl[p] + 1
			}
		}
		if lvl[i] > maxLvl {
			maxLvl = lvl[i]
		}
	}
	out := make([][]int, maxLvl+1)
	for i, l := range lvl {
		out[l] = append(out[l], i)
	}
	return out
}

// SolveSerial computes x with L x = b by supernodal forward
// substitution, the reference against which distributed solves are
// verified.
func (m *SupTri) SolveSerial(b []float64) ([]float64, error) {
	if len(b) != m.N {
		return nil, fmt.Errorf("spmat: rhs length %d != N %d", len(b), m.N)
	}
	x := make([]float64, m.N)
	copy(x, b)
	for j, sn := range m.Snodes {
		s := sn.Size()
		// x_j = Diag_j^{-1} x_j (forward substitution on the dense
		// lower-triangular diagonal block).
		d := m.Diag[j]
		seg := x[sn.Begin:sn.End]
		for r := 0; r < s; r++ {
			sum := seg[r]
			for c := 0; c < r; c++ {
				sum -= d[r*s+c] * seg[c]
			}
			seg[r] = sum / d[r*s+r]
		}
		// Update dependents: x_i -= L_ij * x_j.
		for _, i := range m.Dependents[j] {
			m.ApplyUpdate(i, j, seg, x[m.Snodes[i].Begin:m.Snodes[i].End])
		}
	}
	return x, nil
}

// SolveDiag solves the dense diagonal block of supernode j in place on
// seg (length s_j): seg <- Diag_j^{-1} seg.
func (m *SupTri) SolveDiag(j int, seg []float64) {
	s := m.Snodes[j].Size()
	d := m.Diag[j]
	for r := 0; r < s; r++ {
		sum := seg[r]
		for c := 0; c < r; c++ {
			sum -= d[r*s+c] * seg[c]
		}
		seg[r] = sum / d[r*s+r]
	}
}

// ApplyUpdate subtracts L_ij * xj from acc (length s_i), the
// contribution a solved supernode j sends toward supernode i.
func (m *SupTri) ApplyUpdate(i, j int, xj, acc []float64) {
	blk := m.Blocks[[2]int{i, j}]
	si := m.Snodes[i].Size()
	sj := m.Snodes[j].Size()
	for r := 0; r < si; r++ {
		sum := 0.0
		row := blk[r*sj : (r+1)*sj]
		for c := 0; c < sj; c++ {
			sum += row[c] * xj[c]
		}
		acc[r] -= sum
	}
}

// UpdateVector computes the contribution message L_ij * xj (length
// s_i) without applying it — this is the payload a distributed solve
// transmits.
func (m *SupTri) UpdateVector(i, j int, xj []float64) []float64 {
	si := m.Snodes[i].Size()
	sj := m.Snodes[j].Size()
	blk := m.Blocks[[2]int{i, j}]
	out := make([]float64, si)
	for r := 0; r < si; r++ {
		sum := 0.0
		row := blk[r*sj : (r+1)*sj]
		for c := 0; c < sj; c++ {
			sum += row[c] * xj[c]
		}
		out[r] = sum
	}
	return out
}

// Residual returns max_i |(L x - b)_i| for a verification check.
func (m *SupTri) Residual(x, b []float64) float64 {
	r := make([]float64, m.N)
	// r = L x
	for j, sn := range m.Snodes {
		s := sn.Size()
		d := m.Diag[j]
		for row := 0; row < s; row++ {
			sum := 0.0
			for c := 0; c <= row; c++ {
				sum += d[row*s+c] * x[sn.Begin+c]
			}
			r[sn.Begin+row] += sum
		}
		for _, i := range m.Dependents[j] {
			u := m.UpdateVector(i, j, x[sn.Begin:sn.End])
			for row, v := range u {
				r[m.Snodes[i].Begin+row] += v
			}
		}
	}
	worst := 0.0
	for i := range r {
		if d := math.Abs(r[i] - b[i]); d > worst {
			worst = d
		}
	}
	return worst
}

// FlopsSolve returns the floating-point work of solving supernode j's
// diagonal block (s^2 flops).
func (m *SupTri) FlopsSolve(j int) int64 {
	s := int64(m.Snodes[j].Size())
	return s * s
}

// FlopsUpdate returns the work of one (i, j) update (2*s_i*s_j flops).
func (m *SupTri) FlopsUpdate(i, j int) int64 {
	return 2 * int64(m.Snodes[i].Size()) * int64(m.Snodes[j].Size())
}
