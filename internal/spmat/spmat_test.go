package spmat

import (
	"math"
	"math/rand"
	"testing"
)

func small(t *testing.T) *SupTri {
	t.Helper()
	m, err := Generate(Params{N: 600, MeanSnode: 12, Fill: 1.0, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func TestGenerateValidation(t *testing.T) {
	for _, p := range []Params{
		{N: 0, MeanSnode: 1, Fill: 1},
		{N: 10, MeanSnode: 0, Fill: 1},
		{N: 10, MeanSnode: 20, Fill: 1},
		{N: 10, MeanSnode: 2, Fill: 0},
		{N: 10, MeanSnode: 2, Fill: 9},
	} {
		if _, err := Generate(p); err == nil {
			t.Fatalf("params %+v should fail", p)
		}
	}
}

func TestPartitionCoversColumns(t *testing.T) {
	m := small(t)
	col := 0
	for _, sn := range m.Snodes {
		if sn.Begin != col {
			t.Fatalf("gap at column %d", col)
		}
		if sn.Size() < 1 {
			t.Fatal("empty supernode")
		}
		col = sn.End
	}
	if col != m.N {
		t.Fatalf("partition ends at %d, want %d", col, m.N)
	}
}

func TestDAGIsLowerTriangular(t *testing.T) {
	m := small(t)
	for j, deps := range m.Dependents {
		for _, i := range deps {
			if i <= j {
				t.Fatalf("dependent %d <= supernode %d", i, j)
			}
			if _, ok := m.Blocks[[2]int{i, j}]; !ok {
				t.Fatalf("missing block (%d,%d)", i, j)
			}
		}
	}
	// Parents is the exact transpose.
	edges := 0
	for i, ps := range m.Parents {
		for _, j := range ps {
			if j >= i {
				t.Fatalf("parent %d >= supernode %d", j, i)
			}
			found := false
			for _, d := range m.Dependents[j] {
				if d == i {
					found = true
				}
			}
			if !found {
				t.Fatalf("edge (%d,%d) not mirrored", i, j)
			}
			edges++
		}
	}
	if edges != m.Edges() {
		t.Fatalf("Edges() = %d, counted %d", m.Edges(), edges)
	}
}

func TestDeterministicGeneration(t *testing.T) {
	a := small(t)
	b := small(t)
	if a.NumSupernodes() != b.NumSupernodes() || a.Edges() != b.Edges() || a.NNZ() != b.NNZ() {
		t.Fatal("generation not deterministic")
	}
}

func TestSolveSerialCorrect(t *testing.T) {
	m := small(t)
	rng := rand.New(rand.NewSource(3))
	b := make([]float64, m.N)
	for i := range b {
		b[i] = rng.NormFloat64()
	}
	x, err := m.SolveSerial(b)
	if err != nil {
		t.Fatal(err)
	}
	if res := m.Residual(x, b); res > 1e-9 {
		t.Fatalf("residual = %g", res)
	}
}

func TestSolveSerialBadRHS(t *testing.T) {
	m := small(t)
	if _, err := m.SolveSerial(make([]float64, 3)); err == nil {
		t.Fatal("short rhs should fail")
	}
}

func TestUpdateVectorMatchesApplyUpdate(t *testing.T) {
	m := small(t)
	for j := range m.Dependents {
		for _, i := range m.Dependents[j] {
			sj := m.Snodes[j].Size()
			si := m.Snodes[i].Size()
			xj := make([]float64, sj)
			for k := range xj {
				xj[k] = float64(k + 1)
			}
			u := m.UpdateVector(i, j, xj)
			acc := make([]float64, si)
			m.ApplyUpdate(i, j, xj, acc)
			for k := range u {
				if math.Abs(acc[k]+u[k]) > 1e-12 {
					t.Fatalf("ApplyUpdate != -UpdateVector at (%d,%d)", i, j)
				}
			}
			return // one block is enough
		}
	}
}

func TestLevels(t *testing.T) {
	m := small(t)
	levels := m.Levels()
	seen := map[int]int{}
	for l, sns := range levels {
		for _, s := range sns {
			seen[s] = l
		}
	}
	if len(seen) != m.NumSupernodes() {
		t.Fatalf("levels cover %d of %d supernodes", len(seen), m.NumSupernodes())
	}
	// Every parent is on a strictly earlier level.
	for i, ps := range m.Parents {
		for _, p := range ps {
			if seen[p] >= seen[i] {
				t.Fatalf("parent %d (level %d) not before %d (level %d)", p, seen[p], i, seen[i])
			}
		}
	}
	// The stratified generator pins the DAG depth near the Depth
	// parameter (default supernodes/4), leaving width to scale on.
	k := m.NumSupernodes()
	if len(levels) < k/5 || len(levels) > k/2 {
		t.Fatalf("DAG depth %d out of expected band for %d supernodes", len(levels), k)
	}
}

func TestDepthParameterControlsLevels(t *testing.T) {
	m, err := Generate(Params{N: 2400, MeanSnode: 12, Fill: 1, Depth: 40, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	got := len(m.Levels())
	if got < 35 || got > 45 {
		t.Fatalf("levels = %d, want ~40 (Depth parameter)", got)
	}
	// Width: some level must hold several concurrent supernodes.
	widest := 0
	for _, l := range m.Levels() {
		if len(l) > widest {
			widest = len(l)
		}
	}
	if widest < 3 {
		t.Fatalf("widest level = %d, want parallelism", widest)
	}
}

func TestMsgBytesInPaperRange(t *testing.T) {
	m, err := Generate(M3DC1Like)
	if err != nil {
		t.Fatal(err)
	}
	sizes := m.MsgBytes()
	if len(sizes) == 0 {
		t.Fatal("no messages")
	}
	var min, max, sum int64
	min = sizes[0]
	for _, s := range sizes {
		if s < min {
			min = s
		}
		if s > max {
			max = s
		}
		sum += s
	}
	// Paper: 24 B to 1040 B, averaging ~100 words (800 B).
	if min < 8 || min > 64 {
		t.Errorf("min message = %d B, want near 24", min)
	}
	if max < 800 || max > 1200 {
		t.Errorf("max message = %d B, want near 1040", max)
	}
	mean := float64(sum) / float64(len(sizes))
	if mean < 200 || mean > 1000 {
		t.Errorf("mean message = %.0f B, want a few hundred", mean)
	}
}

func TestM3DC1LikeScale(t *testing.T) {
	m, err := Generate(M3DC1Like)
	if err != nil {
		t.Fatal(err)
	}
	if m.N != 25200 {
		t.Fatalf("N = %d", m.N)
	}
	k := m.NumSupernodes()
	if k < 300 || k > 1200 {
		t.Fatalf("supernodes = %d", k)
	}
	if m.Edges() < k {
		t.Fatalf("edges = %d, want at least one per supernode", m.Edges())
	}
	if m.NNZ() < 1e5 {
		t.Fatalf("nnz = %d, suspiciously sparse", m.NNZ())
	}
}

func TestFlops(t *testing.T) {
	m := small(t)
	if m.FlopsSolve(0) != int64(m.Snodes[0].Size())*int64(m.Snodes[0].Size()) {
		t.Fatal("FlopsSolve wrong")
	}
	for j := range m.Dependents {
		for _, i := range m.Dependents[j] {
			want := 2 * int64(m.Snodes[i].Size()) * int64(m.Snodes[j].Size())
			if m.FlopsUpdate(i, j) != want {
				t.Fatal("FlopsUpdate wrong")
			}
			return
		}
	}
}
