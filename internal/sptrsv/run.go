package sptrsv

import (
	"fmt"

	"msgroofline/internal/comm"
	"msgroofline/internal/machine"
)

// Run executes the solve once on the transport named by
// cfg.Transport. The kernel is transport-agnostic: solving a
// supernode streams one contribution per remote dependent via
// Deliver into the receiver's precomputed edge slot, and the receive
// loop blocks on WaitAnySlot until its expected count is met. The
// transport realizes delivery with its native protocol — eager Isend
// + Recv(ANY_SOURCE), the strict 4-op put/flush/put/flush plus
// Listing-1 polling, fused notified access, or nvshmem
// put-with-signal + wait_until_any.
func Run(cfg Config) (*Result, error) {
	if err := cfg.fill(); err != nil {
		return nil, err
	}
	m := cfg.Matrix
	perRank, slotOf := remoteIncoming(m, cfg.Ranks)
	stride := 8 * maxSnodeSize(m)
	counts := make([]int, cfg.Ranks)
	for r := range counts {
		counts[r] = len(perRank[r])
	}
	t, err := comm.New(comm.Spec{
		Machine: cfg.Machine, Kind: cfg.Transport, Ranks: cfg.Ranks,
		StreamSlots: counts, SlotBytes: stride, PollCheck: cfg.PollCheck,
		Shards: cfg.Shards, Perturb: cfg.Perturb, Faults: cfg.Faults,
	})
	if err != nil {
		return nil, fmt.Errorf("sptrsv %s: %w", cfg.Transport, err)
	}
	defer t.Close()
	rate := cfg.CPUFlopRate
	if cfg.Machine.Kind == machine.GPU {
		rate = cfg.CPUFlopRate * cfg.GPUSparseScale
	}
	x := make([]float64, m.N)
	err = t.Launch(func(ep comm.Endpoint) {
		me := ep.Rank()
		st := newSolveState(&cfg, me, x, rate)
		edges := perRank[me]
		expected := len(edges)
		// One kernel launch hosts the whole persistent GPU solve.
		if cfg.Machine.Kind == machine.GPU && cfg.Machine.GPU != nil {
			ep.Compute(cfg.Machine.GPU.KernelLaunch)
		}

		// process solves j and recursively drains local chains;
		// remote contributions are delivered as they are produced.
		var process func(j int)
		process = func(j int) {
			ups, flops := st.solveLocal(j)
			ep.Compute(st.flopTime(flops))
			for _, u := range ups {
				if u.dst == me {
					if st.accumulate(u.child, u.payload) {
						process(u.child)
					}
					continue
				}
				ep.Deliver(u.dst, slotOf[edge{child: u.child, parent: j}], encodeFloats(u.payload))
			}
		}
		for _, j := range st.readyRoots() {
			process(j)
		}
		for got := 0; got < expected; got++ {
			slot, data := ep.WaitAnySlot()
			e := edges[slot]
			sz := m.Snodes[e.child].Size()
			if st.accumulate(e.child, decodeFloats(data[:8*sz])) {
				process(e.child)
			}
		}
		ep.Quiet()
	})
	if err != nil {
		return nil, fmt.Errorf("sptrsv %s: %w", cfg.Transport, err)
	}
	rec := t.Recorder()
	return &Result{Elapsed: t.Elapsed(), Comm: rec.Summarize(t.Elapsed()),
		Matrix: rec.Matrix(cfg.Ranks), X: x, Ranks: cfg.Ranks,
		EventDigest: t.Digest()}, nil
}
