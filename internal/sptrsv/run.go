package sptrsv

import (
	"fmt"

	"msgroofline/internal/machine"
	"msgroofline/internal/mpi"
	"msgroofline/internal/netsim"
	"msgroofline/internal/shmem"
	"msgroofline/internal/sim"
	"msgroofline/internal/trace"
)

// applyChaos installs the conformance harness's opt-in schedule
// perturbation and network fault injection on a freshly built world.
// Both fields are nil in normal runs, leaving behavior untouched.
func (cfg Config) applyChaos(eng *sim.Engine, net *netsim.Network) {
	if cfg.Perturb != nil {
		eng.SetPerturbation(cfg.Perturb)
	}
	if cfg.Faults != nil {
		net.SetFaults(cfg.Faults)
	}
}

// RunTwoSided executes the two-sided design: MPI_Isend per remote
// contribution; each rank receives with MPI_Recv(ANY_SOURCE) in a
// loop sized by its expected message count.
func RunTwoSided(cfg Config) (*Result, error) {
	if err := cfg.fill(); err != nil {
		return nil, err
	}
	m := cfg.Matrix
	c, err := mpi.NewComm(cfg.Machine, cfg.Ranks)
	if err != nil {
		return nil, err
	}
	cfg.applyChaos(c.Engine(), c.World().Inst.Net)
	rec := trace.New()
	c.SetSendHook(func(src, dst int, bytes int64, issue, deliver sim.Time) {
		rec.Record(trace.Event{Src: src, Dst: dst, Bytes: bytes, Issue: issue, Deliver: deliver})
	})
	perRank, _ := remoteIncoming(m, cfg.Ranks)
	x := make([]float64, m.N)
	err = c.Launch(func(r *mpi.Rank) {
		st := newSolveState(&cfg, r.Rank(), x, cfg.CPUFlopRate)
		expected := len(perRank[r.Rank()])

		// process solves j and recursively drains local chains;
		// remote contributions are sent as they are produced.
		var process func(j int)
		process = func(j int) {
			ups, flops := st.solveLocal(j)
			r.Compute(st.flopTime(flops))
			for _, u := range ups {
				if u.dst == r.Rank() {
					if st.accumulate(u.child, u.payload) {
						process(u.child)
					}
					continue
				}
				r.Isend(u.dst, u.child, encodeFloats(u.payload))
			}
		}
		for _, j := range st.readyRoots() {
			process(j)
		}
		for got := 0; got < expected; got++ {
			req := r.Recv(mpi.AnySource, mpi.AnyTag)
			rec.Sync() // one message per synchronization (Table II)
			child := req.Tag
			if st.accumulate(child, decodeFloats(req.Data)) {
				process(child)
			}
		}
	})
	if err != nil {
		return nil, fmt.Errorf("sptrsv two-sided: %w", err)
	}
	return &Result{Elapsed: c.Elapsed(), Comm: rec.Summarize(c.Elapsed()),
		Matrix: rec.Matrix(cfg.Ranks), X: x, Ranks: cfg.Ranks}, nil
}

// RunOneSided executes the one-sided design: the strict 4-op protocol
// per contribution (Put data, Win_flush, Put signal, Win_flush) and
// the Listing-1 receiver acknowledgment loop, whose scan over the
// remaining signal slots is charged PollCheck per slot per wakeup.
func RunOneSided(cfg Config) (*Result, error) {
	if err := cfg.fill(); err != nil {
		return nil, err
	}
	m := cfg.Matrix
	c, err := mpi.NewComm(cfg.Machine, cfg.Ranks)
	if err != nil {
		return nil, err
	}
	cfg.applyChaos(c.Engine(), c.World().Inst.Net)
	perRank, slotOf := remoteIncoming(m, cfg.Ranks)
	stride := 8 * maxSnodeSize(m)
	dataSizes := make([]int, cfg.Ranks)
	sigSizes := make([]int, cfg.Ranks)
	for r := range dataSizes {
		dataSizes[r] = stride * len(perRank[r])
		sigSizes[r] = 8 * len(perRank[r])
	}
	dataWin, err := c.NewWinSizes(dataSizes)
	if err != nil {
		return nil, err
	}
	sigWin, err := c.NewWinSizes(sigSizes)
	if err != nil {
		return nil, err
	}
	rec := trace.New()
	dataWin.SetHook(func(src, dst int, bytes int64, issue, deliver sim.Time) {
		rec.Record(trace.Event{Src: src, Dst: dst, Bytes: bytes, Issue: issue, Deliver: deliver})
	})
	one := []byte{1, 0, 0, 0, 0, 0, 0, 0}
	x := make([]float64, m.N)
	err = c.Launch(func(r *mpi.Rank) {
		st := newSolveState(&cfg, r.Rank(), x, cfg.CPUFlopRate)
		edges := perRank[r.Rank()]
		expected := len(edges)
		mask := make([]bool, expected)

		var process func(j int)
		process = func(j int) {
			ups, flops := st.solveLocal(j)
			r.Compute(st.flopTime(flops))
			for _, u := range ups {
				if u.dst == r.Rank() {
					if st.accumulate(u.child, u.payload) {
						process(u.child)
					}
					continue
				}
				slot := slotOf[edge{child: u.child, parent: j}]
				r.Put(dataWin, u.dst, slot*stride, encodeFloats(u.payload))
				r.Flush(dataWin, u.dst)
				r.Put(sigWin, u.dst, slot*8, one)
				r.Flush(sigWin, u.dst)
			}
		}
		for _, j := range st.readyRoots() {
			process(j)
		}
		// Listing 1: loop over the signal array masking out arrivals.
		for got := 0; got < expected; {
			found := -1
			sigWin.TargetSignal(r.Rank()).WaitFor(r.Proc(), func() bool {
				for i := range edges {
					if mask[i] {
						continue
					}
					if sigWin.Uint64At(r.Rank(), 8*i) == 1 {
						found = i
						return true
					}
				}
				return false
			})
			// Charge the scan over the remaining (unmasked) slots.
			if cfg.PollCheck > 0 {
				r.Compute(cfg.PollCheck * sim.Time(expected-got))
			}
			mask[found] = true
			got++
			rec.Sync()
			e := edges[found]
			sz := m.Snodes[e.child].Size()
			u := decodeFloats(dataWin.Local(r.Rank())[found*stride : found*stride+8*sz])
			if st.accumulate(e.child, u) {
				process(e.child)
			}
		}
	})
	if err != nil {
		return nil, fmt.Errorf("sptrsv one-sided: %w", err)
	}
	return &Result{Elapsed: c.Elapsed(), Comm: rec.Summarize(c.Elapsed()),
		Matrix: rec.Matrix(cfg.Ranks), X: x, Ranks: cfg.Ranks}, nil
}

// RunGPU executes the GPU design: nvshmem_double_put_signal_nbi per
// contribution and nvshmem_wait_until_any in a receive loop sized by
// the expected message count.
func RunGPU(cfg Config) (*Result, error) {
	if err := cfg.fill(); err != nil {
		return nil, err
	}
	if cfg.Machine.Kind != machine.GPU {
		return nil, fmt.Errorf("sptrsv: RunGPU needs a GPU machine, got %s", cfg.Machine.Name)
	}
	m := cfg.Matrix
	perRank, slotOf := remoteIncoming(m, cfg.Ranks)
	stride := 8 * maxSnodeSize(m)
	maxEdges := 0
	for _, e := range perRank {
		if len(e) > maxEdges {
			maxEdges = len(e)
		}
	}
	heap := stride*maxEdges + 8*maxEdges + 64
	j, err := shmem.NewJob(cfg.Machine, cfg.Ranks, heap)
	if err != nil {
		return nil, err
	}
	cfg.applyChaos(j.Engine(), j.World().Inst.Net)
	rec := trace.New()
	j.SetPutHook(func(src, dst int, bytes int64, issue, deliver sim.Time) {
		rec.Record(trace.Event{Src: src, Dst: dst, Bytes: bytes, Issue: issue, Deliver: deliver})
	})
	sigBase := stride * maxEdges
	rate := cfg.CPUFlopRate * cfg.GPUSparseScale
	x := make([]float64, m.N)
	err = j.Launch(func(c *shmem.Ctx) {
		me := c.MyPE()
		st := newSolveState(&cfg, me, x, rate)
		edges := perRank[me]
		expected := len(edges)
		sigs := make([]int, expected)
		for i := range sigs {
			sigs[i] = sigBase + 8*i
		}
		mask := make([]bool, expected)
		// One kernel launch hosts the whole persistent solve.
		if cfg.Machine.GPU != nil {
			c.Compute(cfg.Machine.GPU.KernelLaunch)
		}
		var process func(sn int)
		process = func(sn int) {
			ups, flops := st.solveLocal(sn)
			c.Compute(st.flopTime(flops))
			for _, u := range ups {
				if u.dst == me {
					if st.accumulate(u.child, u.payload) {
						process(u.child)
					}
					continue
				}
				slot := slotOf[edge{child: u.child, parent: sn}]
				c.PutSignalNBI(u.dst, slot*stride, encodeFloats(u.payload), sigBase+8*slot, 1)
			}
		}
		for _, sn := range st.readyRoots() {
			process(sn)
		}
		for got := 0; got < expected; got++ {
			i := c.WaitUntilAny(sigs, mask, 1)
			mask[i] = true
			rec.Sync()
			e := edges[i]
			sz := m.Snodes[e.child].Size()
			u := decodeFloats(c.PE().Heap()[i*stride : i*stride+8*sz])
			if st.accumulate(e.child, u) {
				process(e.child)
			}
		}
		c.Quiet()
	})
	if err != nil {
		return nil, fmt.Errorf("sptrsv gpu: %w", err)
	}
	return &Result{Elapsed: j.Elapsed(), Comm: rec.Summarize(j.Elapsed()),
		Matrix: rec.Matrix(cfg.Ranks), X: x, Ranks: cfg.Ranks}, nil
}

// RunNotified executes the extension design of the paper's
// conclusion: one-sided with hardware put-with-signal (notified
// access). Each contribution is ONE fused operation and one flight —
// no second flush round trip, no Listing-1 polling — so it should
// beat two-sided on the latency-bound solve ("one-sided MPI can
// easily outperform the two-sided MPI with hardware-level support for
// put-with-signal", §V; Liu et al. report 1.5x with foMPI).
func RunNotified(cfg Config) (*Result, error) {
	if err := cfg.fill(); err != nil {
		return nil, err
	}
	m := cfg.Matrix
	c, err := mpi.NewComm(cfg.Machine, cfg.Ranks)
	if err != nil {
		return nil, err
	}
	cfg.applyChaos(c.Engine(), c.World().Inst.Net)
	perRank, slotOf := remoteIncoming(m, cfg.Ranks)
	stride := 8 * maxSnodeSize(m)
	sizes := make([]int, cfg.Ranks)
	for r := range sizes {
		// Data slots followed by notification slots in one window.
		sizes[r] = (stride + 8) * len(perRank[r])
	}
	win, err := c.NewWinSizes(sizes)
	if err != nil {
		return nil, err
	}
	rec := trace.New()
	win.SetHook(func(src, dst int, bytes int64, issue, deliver sim.Time) {
		rec.Record(trace.Event{Src: src, Dst: dst, Bytes: bytes, Issue: issue, Deliver: deliver})
	})
	x := make([]float64, m.N)
	sigBase := func(edges int) int { return stride * edges }
	err = c.Launch(func(r *mpi.Rank) {
		st := newSolveState(&cfg, r.Rank(), x, cfg.CPUFlopRate)
		edges := perRank[r.Rank()]
		expected := len(edges)
		base := sigBase(expected)
		sigs := make([]int, expected)
		for i := range sigs {
			sigs[i] = base + 8*i
		}
		mask := make([]bool, expected)

		var process func(j int)
		process = func(j int) {
			ups, flops := st.solveLocal(j)
			r.Compute(st.flopTime(flops))
			for _, u := range ups {
				if u.dst == r.Rank() {
					if st.accumulate(u.child, u.payload) {
						process(u.child)
					}
					continue
				}
				slot := slotOf[edge{child: u.child, parent: j}]
				dstBase := sigBase(len(perRank[u.dst]))
				if err := r.PutNotify(win, u.dst, slot*stride, encodeFloats(u.payload), dstBase+8*slot, 1); err != nil {
					panic(err)
				}
			}
		}
		for _, j := range st.readyRoots() {
			process(j)
		}
		for got := 0; got < expected; got++ {
			i := r.WaitNotifyAny(win, sigs, mask, 1)
			mask[i] = true
			rec.Sync()
			e := edges[i]
			sz := m.Snodes[e.child].Size()
			u := decodeFloats(win.Local(r.Rank())[i*stride : i*stride+8*sz])
			if st.accumulate(e.child, u) {
				process(e.child)
			}
		}
	})
	if err != nil {
		return nil, fmt.Errorf("sptrsv notified: %w", err)
	}
	return &Result{Elapsed: c.Elapsed(), Comm: rec.Summarize(c.Elapsed()),
		Matrix: rec.Matrix(cfg.Ranks), X: x, Ranks: cfg.Ranks}, nil
}
