// Package sptrsv implements the paper's second workload: distributed
// sparse triangular solve over a supernodal elimination DAG (§III-B).
// Supernodes are distributed block-cyclically; solving one supernode
// produces one contribution message per dependent supernode owned by
// another rank. Three variants reproduce the paper's designs:
//
//   - two-sided CPU: MPI_Isend per contribution, the receiver calling
//     MPI_Recv in a loop sized by its expected message count;
//   - one-sided CPU: the strict 4-op protocol per message (Put data,
//     Win_flush, Put signal, Win_flush) plus the user-implemented
//     receiver acknowledgment of Listing 1 — a polling scan over the
//     remaining signal slots whose cost is charged per wakeup;
//   - GPU: nvshmem put-with-signal + wait_until_any in a loop.
//
// All variants carry real numerics: the assembled solution is checked
// against the serial reference solve.
package sptrsv

import (
	"encoding/binary"
	"fmt"
	"math"

	"msgroofline/internal/comm"
	"msgroofline/internal/machine"
	"msgroofline/internal/netsim"
	"msgroofline/internal/sim"
	"msgroofline/internal/spmat"
	"msgroofline/internal/trace"
)

// Defaults for the cost model.
const (
	// DefaultCPUFlopRate is the effective flop rate of one CPU rank
	// on the irregular supernodal kernels.
	DefaultCPUFlopRate = 4e9
	// DefaultGPUSparseScale is the per-GPU throughput advantage over
	// one CPU rank for sparse triangular kernels. Irregular solves
	// do not enjoy dense-kernel speedups; the paper's Fig 8 single
	// GPU beating 32 CPU ranks pins this to order 10-20x.
	DefaultGPUSparseScale = 10
	// DefaultPollCheck is the cost of inspecting one signal slot in
	// the Listing-1 receiver acknowledgment loop.
	DefaultPollCheck = 40 * sim.Nanosecond
)

// Config describes one distributed solve.
type Config struct {
	Machine *machine.Config
	// Transport selects the communication stack the one kernel runs
	// on (comm.TwoSided, comm.OneSided, comm.Notified, comm.Shmem).
	Transport comm.Kind
	Matrix    *spmat.SupTri
	// Ranks is the number of MPI ranks or GPU PEs.
	Ranks int
	// CPUFlopRate overrides DefaultCPUFlopRate when nonzero.
	CPUFlopRate float64
	// GPUSparseScale overrides DefaultGPUSparseScale when nonzero.
	GPUSparseScale float64
	// PollCheck overrides DefaultPollCheck when nonzero; the
	// free-polling ablation passes a negative value to zero it.
	PollCheck sim.Time
	// Shards is the engine shard count recorded on the simulated
	// world (0 means 1; results are byte-identical at every value —
	// see comm.Spec.Shards).
	Shards int
	// Perturb, when non-nil, installs engine schedule fuzzing
	// (conformance harness only; nil leaves runs byte-identical).
	Perturb *sim.Perturbation
	// Faults, when non-nil, installs network fault injection.
	Faults *netsim.Faults
}

func (c *Config) fill() error {
	if c.Machine == nil || c.Matrix == nil {
		return fmt.Errorf("sptrsv: nil machine or matrix")
	}
	if c.Ranks < 1 {
		return fmt.Errorf("sptrsv: ranks = %d", c.Ranks)
	}
	if c.CPUFlopRate == 0 {
		c.CPUFlopRate = DefaultCPUFlopRate
	}
	if c.GPUSparseScale == 0 {
		c.GPUSparseScale = DefaultGPUSparseScale
	}
	switch {
	case c.PollCheck == 0:
		c.PollCheck = DefaultPollCheck
	case c.PollCheck < 0:
		c.PollCheck = 0
	}
	return nil
}

// Result summarizes one solve.
type Result struct {
	// Elapsed is the simulated SOLVE time.
	Elapsed sim.Time
	// Comm summarizes contribution messages.
	Comm trace.Summary
	// Matrix is the per-(src, dst) traffic heat map of the solve.
	Matrix *trace.TrafficMatrix
	// X is the assembled solution (for verification).
	X []float64
	// Ranks is the number of processes used.
	Ranks int
	// EventDigest is the engine's event-order fingerprint
	// (sim.Engine.Digest) captured after the run; the shard-determinism
	// suite compares it across shard counts.
	EventDigest uint64
}

// Rhs builds the deterministic right-hand side used by all runs.
func Rhs(n int) []float64 {
	b := make([]float64, n)
	for i := range b {
		b[i] = math.Sin(float64(i)*0.11) + 1.5
	}
	return b
}

// owner maps supernode j to its block-cyclic owner.
func owner(j, ranks int) int { return j % ranks }

// edge is one DAG dependency (contribution from parent to child).
type edge struct{ child, parent int }

// remoteIncoming enumerates, for every rank, the incoming remote
// edges in deterministic (child, parent) order; the returned map
// gives each edge its slot index at the receiving rank. Senders and
// receivers derive identical numbering from the replicated symbolic
// structure, exactly as SuperLU_DIST precomputes its metadata.
func remoteIncoming(m *spmat.SupTri, ranks int) (perRank [][]edge, slotOf map[edge]int) {
	perRank = make([][]edge, ranks)
	slotOf = make(map[edge]int)
	for child := 0; child < m.NumSupernodes(); child++ {
		r := owner(child, ranks)
		for _, parent := range m.Parents[child] {
			if owner(parent, ranks) == r {
				continue
			}
			e := edge{child: child, parent: parent}
			slotOf[e] = len(perRank[r])
			perRank[r] = append(perRank[r], e)
		}
	}
	return perRank, slotOf
}

// maxSnodeSize returns the largest supernode size (slot stride).
func maxSnodeSize(m *spmat.SupTri) int {
	max := 1
	for _, sn := range m.Snodes {
		if sn.Size() > max {
			max = sn.Size()
		}
	}
	return max
}

// solveState is the per-rank numeric state shared by all variants.
type solveState struct {
	cfg       *Config
	m         *spmat.SupTri
	rank      int
	ranks     int
	lsum      map[int][]float64 // accumulated rhs per owned supernode
	remaining map[int]int       // outstanding parent contributions
	x         []float64         // global solution (shared across ranks)
	flopRate  float64
}

func newSolveState(cfg *Config, rank int, x []float64, flopRate float64) *solveState {
	s := &solveState{
		cfg: cfg, m: cfg.Matrix, rank: rank, ranks: cfg.Ranks,
		lsum: map[int][]float64{}, remaining: map[int]int{},
		x: x, flopRate: flopRate,
	}
	b := Rhs(cfg.Matrix.N)
	for j := 0; j < cfg.Matrix.NumSupernodes(); j++ {
		if owner(j, cfg.Ranks) != rank {
			continue
		}
		sn := cfg.Matrix.Snodes[j]
		seg := make([]float64, sn.Size())
		copy(seg, b[sn.Begin:sn.End])
		s.lsum[j] = seg
		s.remaining[j] = len(cfg.Matrix.Parents[j])
	}
	return s
}

// readyRoots returns owned supernodes with no parents at all.
func (s *solveState) readyRoots() []int {
	var out []int
	for j, rem := range s.remaining {
		if rem == 0 {
			out = append(out, j)
		}
	}
	// Deterministic order.
	for i := 1; i < len(out); i++ {
		for k := i; k > 0 && out[k] < out[k-1]; k-- {
			out[k], out[k-1] = out[k-1], out[k]
		}
	}
	return out
}

// flopTime converts flops to simulated compute time.
func (s *solveState) flopTime(fl int64) sim.Time {
	return sim.FromSeconds(float64(fl) / s.flopRate)
}

// accumulate applies a remote contribution to child and reports
// whether the child became ready.
func (s *solveState) accumulate(child int, u []float64) bool {
	seg := s.lsum[child]
	for i := range u {
		seg[i] -= u[i]
	}
	s.remaining[child]--
	return s.remaining[child] == 0
}

// solveLocal solves supernode j (assumed ready): runs the diagonal
// solve, stores x, and returns the per-dependent update payloads with
// their destinations. The caller charges compute via the returned
// flop count and transmits/applies the updates.
type update struct {
	child   int
	dst     int // owning rank of child
	payload []float64
}

func (s *solveState) solveLocal(j int) (ups []update, flops int64) {
	seg := s.lsum[j]
	s.m.SolveDiag(j, seg)
	sn := s.m.Snodes[j]
	copy(s.x[sn.Begin:sn.End], seg)
	flops = s.m.FlopsSolve(j)
	for _, child := range s.m.Dependents[j] {
		flops += s.m.FlopsUpdate(child, j)
		ups = append(ups, update{
			child:   child,
			dst:     owner(child, s.ranks),
			payload: s.m.UpdateVector(child, j, seg),
		})
	}
	return ups, flops
}

func encodeFloats(v []float64) []byte {
	out := make([]byte, 8*len(v))
	for i, f := range v {
		binary.LittleEndian.PutUint64(out[8*i:], math.Float64bits(f))
	}
	return out
}

func decodeFloats(b []byte) []float64 {
	out := make([]float64, len(b)/8)
	for i := range out {
		out[i] = math.Float64frombits(binary.LittleEndian.Uint64(b[8*i:]))
	}
	return out
}
